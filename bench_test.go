// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation (§4 and §5). Each benchmark regenerates its table/figure at
// a laptop-scaled operating point and prints the same rows or series the
// paper reports; EXPERIMENTS.md records paper-vs-measured values.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Individual figures:
//
//	go test -bench=BenchmarkFig10DNSSECBandwidth
package ldplayer

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/experiments"
)

// benchSim is the simulation operating point for the bench harness:
// large enough that connection dynamics and client skew are realistic,
// small enough that the full suite finishes in minutes.
func benchSim() experiments.SimScale {
	return experiments.SimScale{
		Rate:     3000,
		Duration: 2 * time.Minute,
		Clients:  90000,
		Seed:     1,
	}
}

// benchLive is the live-replay operating point (real sockets and timers,
// so Duration is wall-clock time per trial).
func benchLive() experiments.Scale {
	return experiments.Scale{
		Rate:     1500,
		Duration: 5 * time.Second,
		Clients:  15000,
		Seed:     1,
	}
}

var benchTimeouts = []time.Duration{
	5 * time.Second, 10 * time.Second, 20 * time.Second, 40 * time.Second,
}

var benchRTTs = []time.Duration{
	20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
}

// printOnce gates the row output so repeated benchmark iterations do not
// spam the log.
var printOnce sync.Map

func printRows[T fmt.Stringer](b *testing.B, key string, rows []T) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(key, true); dup {
		return
	}
	for _, r := range rows {
		fmt.Printf("  %s | %s\n", key, r)
	}
}

// BenchmarkTable1TraceStats regenerates Table 1: the statistics of every
// trace family (records, clients, inter-arrival mean and deviation).
func BenchmarkTable1TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Table1", rows)
	}
}

// BenchmarkFig6TimingError regenerates Figure 6: per-query timing error
// of real-time replay for syn-0..4 and a B-Root-like trace
// (paper: quartiles within ±2.5 ms; ±8 ms at the 0.1 s inter-arrival).
func BenchmarkFig6TimingError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6TimingError(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig6", rows)
		if len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].Err.P75*1000, "broot-p75-ms")
		}
	}
}

// BenchmarkFig7InterArrival regenerates Figure 7: inter-arrival CDFs of
// original versus replayed traces (paper: close agreement above 10 ms
// gaps, jitter below 1 ms).
func BenchmarkFig7InterArrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7InterArrival(benchLive())
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig7", rows)
	}
}

// BenchmarkFig8RateAccuracy regenerates Figure 8: per-second query-rate
// differences between replay and original over repeated trials
// (paper: ±0.1% for 95–99% of seconds at 38 k q/s).
func BenchmarkFig8RateAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8RateAccuracy(benchLive(), 3)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig8", rows)
		if len(rows) > 0 {
			b.ReportMetric(rows[0].Within01*100, "pct-within-0.1pct")
		}
	}
}

// BenchmarkFig9Throughput regenerates Figure 9: maximum single-host
// fast-mode replay throughput (paper: 87 k q/s, 60 Mb/s, query
// generation bound).
func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9Throughput(150000)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig9", []*experiments.ThroughputResult{res})
		b.ReportMetric(res.QueriesPerSec, "q/s")
		b.ReportMetric(res.MbitPerSec, "Mb/s")
	}
}

// BenchmarkFig10DNSSECBandwidth regenerates Figure 10: response bandwidth
// under {1024, 2048, rollover} ZSKs × {72.3%, 100%} DO fractions
// (paper: +31% for 72.3%→100% DO, +32% for 1024→2048-bit ZSK).
func BenchmarkFig10DNSSECBandwidth(b *testing.B) {
	sim := benchSim()
	sim.Duration = 90 * time.Second
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10DNSSEC(sim)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig10", rows)
		var do72, do100 float64
		for _, r := range rows {
			if r.Label == "72.3%DO zsk2048" {
				do72 = r.Bandwidth.P50
			}
			if r.Label == "100%DO zsk2048" {
				do100 = r.Bandwidth.P50
			}
		}
		if do72 > 0 {
			b.ReportMetric((do100/do72-1)*100, "do-growth-pct")
		}
	}
}

// BenchmarkFig11CPU regenerates Figure 11: server CPU versus connection
// timeout for the three workloads (paper: original ~10%, all-TCP ~5%,
// all-TLS ~9–10%, flat in timeout; TLS slightly higher at 5 s).
func BenchmarkFig11CPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11CPU(benchSim(), benchTimeouts)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig11", rows)
	}
}

// BenchmarkFig13TCPFootprint regenerates Figure 13: all-TCP server
// memory, established connections, and TIME_WAIT versus timeout
// (paper at 39 k q/s: 15 GB and ~60 k established at 20 s).
func BenchmarkFig13TCPFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FigFootprint(benchSim(), experiments.WorkloadAllTCP, benchTimeouts)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig13", rows)
	}
}

// BenchmarkFig14TLSFootprint regenerates Figure 14: the all-TLS variant
// (paper: 18 GB at 20 s, ~30% above TCP).
func BenchmarkFig14TLSFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FigFootprint(benchSim(), experiments.WorkloadAllTLS, benchTimeouts)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig14", rows)
	}
}

// BenchmarkFig15aLatencyAll regenerates Figure 15a: query latency over
// all clients versus RTT (paper: TCP near UDP thanks to reuse by busy
// clients; tails grow with RTT).
func BenchmarkFig15aLatencyAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15Latency(benchSim(), benchRTTs)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig15a", rows)
	}
}

// BenchmarkFig15bLatencyNonBusy regenerates Figure 15b: latency for
// non-busy clients (<250 queries) versus RTT (paper: TCP ~2 RTT, TLS up
// to 4 RTT, 25th percentile at 1 RTT showing reuse still helps).
func BenchmarkFig15bLatencyNonBusy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15Latency(benchSim(), benchRTTs)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig15b", rows) // rows carry both panels; 15b is the NonBusy column
	}
}

// BenchmarkFig15cClientLoad regenerates Figure 15c: the per-client query
// load distribution (paper: 1% of clients ≈ 75% of load, 81% of clients
// send <10 queries).
func BenchmarkFig15cClientLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15cClientLoad(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Fig15c", []*experiments.ClientLoadResult{res})
		b.ReportMetric(res.Top1PctShare*100, "top1pct-share")
	}
}

// BenchmarkAblationConnectionReuse isolates connection reuse: the same
// all-TCP workload with a 20 s idle timeout versus fresh-per-query
// connections (paper: models predict 100% latency overhead without
// reuse; replay shows reuse absorbs most of it).
func BenchmarkAblationConnectionReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationConnectionReuse(benchSim(), 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "AblReuse", []*experiments.ReuseAblationResult{res})
		b.ReportMetric((res.NoReuse.Mean/res.WithReuse.Mean-1)*100, "no-reuse-mean-overhead-pct")
	}
}

// BenchmarkAblationNagle isolates the Nagle/delayed-ACK model behind the
// paper's latency-tail discovery (§5.2.4) and quantifies what disabling
// Nagle on the server buys back.
func BenchmarkAblationNagle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNagle(benchSim(), 100*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "AblNagle", []*experiments.NagleAblationResult{res})
	}
}

// BenchmarkAblationNameCompression quantifies RFC 1035 name compression
// on referral-shaped responses.
func BenchmarkAblationNameCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNameCompression()
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "AblCompress", []*experiments.CompressionAblationResult{res})
	}
}

// BenchmarkAblationSourceAffinity bounds the value of §2.6's same-source
// delivery guarantee: connection counts under sticky, per-query-unique,
// and fully collapsed source mappings.
func BenchmarkAblationSourceAffinity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSourceAffinity(benchSim())
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "AblAffinity", []*experiments.ReplayDistributionAblation{res})
	}
}

// BenchmarkRecursiveReplay549Zones exercises §2.4's headline scale point:
// a Rec-17-like stub trace replayed live against a recursive server whose
// resolver walks 549 SLD zones (plus TLDs and root) all served by one
// meta-DNS engine, with the cache-warming amplification drop the paper's
// zone-construction design depends on.
func BenchmarkRecursiveReplay549Zones(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RecursiveReplay(experiments.RecursiveReplayConfig{
			Zones:            549,
			Duration:         5 * time.Second,
			MeanInterArrival: 2 * time.Millisecond,
			Seed:             1,
		})
		if err != nil {
			b.Fatal(err)
		}
		printRows(b, "Recursive", []*experiments.RecursiveReplayResult{res})
		b.ReportMetric(res.AmplificationFirst, "amp-first")
		b.ReportMetric(res.AmplificationLast, "amp-last")
	}
}
