# Development targets for the LDplayer reproduction. `make check` is the
# gate every change must pass: vet, the repo's own static analyzers
# (ldlint, including the interprocedural call-graph passes and the
# compiler escape cross-check), build, the full test suite, a
# short-form run of the engine hot-path benchmarks (which also executes
# their allocation sanity assertions), the observability smoke test, and
# a short fuzz budget over the DNS wire codec. The race-detector suite
# (`make race`) runs as its own CI job in parallel with the gate; run it
# locally before pushing concurrency changes.

GO ?= go

.PHONY: check vet lint lint-interproc build test race bench-smoke bench-replay bench-replay-smoke bench-server bench-server-smoke bench-qlog bench-qlog-smoke bench-trace bench-trace-smoke bench obs-smoke qlog-smoke sim-smoke fuzz-smoke

check: vet lint-interproc build test bench-smoke bench-replay-smoke bench-server-smoke bench-qlog-smoke bench-trace-smoke obs-smoke qlog-smoke sim-smoke fuzz-smoke

vet:
	$(GO) vet ./...

# Repo-specific static analysis: enforces the zero-alloc, determinism,
# pool-shape, trace-immutability, and lock-copy contracts. Exits
# non-zero on any diagnostic. `go run ./cmd/ldlint -h` documents the
# -list/-only/-disable flags and the //ldlint: directive grammar.
lint:
	$(GO) run ./cmd/ldlint ./...

# Full static-analysis gate: the per-package suite plus the
# interprocedural call-graph analyzers (noallocprop, determreach,
# shardconfine) and the escapecheck diff of the compiler's escape
# verdicts against the //ldlint:noalloc set. Wall time on the reference
# box: per-package `make lint` ~2.6 s; this target ~7.1 s (the call
# graph is one extra typecheck-and-walk; escapecheck replays cached
# `go build -gcflags='-m -m'` diagnostics, so warm runs stay cheap).
lint-interproc:
	$(GO) run ./cmd/ldlint -interproc -escapecheck ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A fast smoke run of the meta-DNS-server hot path: enough iterations to
# exercise the cached, miss, and many-zone routes without benchmarking
# noise dominating CI time.
bench-smoke:
	$(GO) test -run XXX -bench=EngineRespond -benchtime=100x ./internal/authserver/

# End-to-end observability check: a live meta-DNS-server and a fast-mode
# replay share one registry; /metrics must expose non-zero series from
# both sides and /trace must carry query-lifecycle spans.
obs-smoke:
	$(GO) test -run TestObsSmoke -count=1 ./internal/obs/

# End-to-end telemetry check: a live batched server with a qlog pipeline
# attached streams one event per query into a binary capture whose
# fields, cache-hit flags, and counts must match the traffic exactly.
qlog-smoke:
	$(GO) test -run TestQlogSmoke -count=1 ./internal/qlog/

# One-second qlog pipeline smoke: enqueue, transform, file- and
# TCP-export at reduced scale, validating the JSON it would record
# without touching BENCH_qlog.json.
bench-qlog-smoke:
	$(GO) run ./cmd/ldplayer qlog-bench -smoke >/dev/null && echo "bench-qlog-smoke: ok"

# Full qlog pipeline benchmark: appends a labeled run to BENCH_qlog.json.
bench-qlog:
	$(GO) run ./cmd/ldplayer qlog-bench -label "$${LABEL:-dev}"

# Virtual-time simulation smoke: a seeded chaos scenario under SimClock
# must replay bit-identically (event log and counters), and the
# TTL×RTT what-if sweep must simulate ≥100× faster than wall time.
# Wall-time record for `go test ./internal/netsim/... ./internal/experiments/...`:
# before the virtual clock (PR 7 tree) the time-dependent slice spent
# netsim 1.3s + chaostest 3.5s + experiments 145.4s; after, the
# converted chaos scenarios run in ~1.0s (real sleeps and drain windows
# eliminated) and the new sweep simulates ~16 virtual minutes in ~0.3s —
# the remaining experiments time is compute-bound figure generation,
# not sleeps. The target prints its own wall time for comparison.
sim-smoke:
	@start=$$(date +%s%N); \
	$(GO) test -run 'TestSimScenarioSeedBitReproducible|TestSimScenarioBlackholeTerminates' -count=1 ./internal/netsim/chaostest/ && \
	$(GO) test -run 'TestVirtualWhatIfSweep' -count=1 ./internal/experiments/ || exit 1; \
	end=$$(date +%s%N); \
	echo "sim-smoke: ok in $$(( (end - start) / 1000000 )) ms wall (baseline before vclock: ~150 s for the netsim+experiments slice)"

# Short fuzz budget over the DNS wire codec and the LDTRC02 block trace
# codec: hostile decode must never panic, decode→encode must reach a
# byte-identical fixed point, and arbitrary block files must error
# cleanly through the full open/index/parallel-decode path.
fuzz-smoke:
	$(GO) test -run XXX -fuzz 'FuzzMessageUnpack$$' -fuzztime 5s ./internal/dnswire/
	$(GO) test -run XXX -fuzz 'FuzzPackUnpackRoundTrip$$' -fuzztime 5s ./internal/dnswire/
	$(GO) test -run XXX -fuzz 'FuzzBlockRoundTrip$$' -fuzztime 5s ./internal/trace/
	$(GO) test -run XXX -fuzz 'FuzzBlockDecode$$' -fuzztime 5s ./internal/trace/
	$(GO) test -run XXX -fuzz 'FuzzBlockHeader$$' -fuzztime 5s ./internal/trace/

# One-second replay-datapath smoke: runs the scaled-down loopback suite
# end to end (engine, wheel, batched I/O, sink) and validates the JSON it
# would record, without touching BENCH_replay.json.
bench-replay-smoke:
	$(GO) run ./cmd/ldplayer bench -smoke >/dev/null && echo "bench-replay-smoke: ok"

# Full replay benchmark: appends a labeled run to BENCH_replay.json.
bench-replay:
	$(GO) run ./cmd/ldplayer bench -label "$${LABEL:-dev}"

# Trace-ingestion smoke: decodes a scaled-down recursive trace through
# the LDTRC01 stream and the LDTRC02 block reader (raw and flate) and
# validates the JSON it would record, without touching BENCH_replay.json.
bench-trace-smoke:
	$(GO) run ./cmd/ldplayer trace-bench -smoke >/dev/null && echo "bench-trace-smoke: ok"

# Full trace-ingestion benchmark: appends a labeled run to
# BENCH_replay.json (the ingestion numbers live in the same trajectory
# as the replay datapath they feed).
bench-trace:
	$(GO) run ./cmd/ldplayer trace-bench -label "$${LABEL:-dev}"

# Server-datapath smoke: drives a live meta-DNS-server over loopback in
# all three shapes (per-datagram, batched, batched+GSO/GRO) at reduced
# scale and validates the JSON, without touching BENCH_server.json.
bench-server-smoke:
	$(GO) run ./cmd/metadns bench -smoke >/dev/null && echo "bench-server-smoke: ok"

# Full server benchmark: appends a labeled run to BENCH_server.json.
bench-server:
	$(GO) run ./cmd/metadns bench -label "$${LABEL:-dev}"

# Full benchmark sweep (regenerates the paper's tables and figures).
bench:
	$(GO) test -bench=. -benchtime=1x ./...
