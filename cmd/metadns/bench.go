package main

import (
	"encoding/json"
	"flag"
	"fmt"

	"ldplayer/internal/authserver/bench"
)

// cmdBench runs the loopback server benchmark — single-datagram baseline
// vs the batched sendmmsg/recvmmsg + GSO/GRO datapath — and records the
// labeled results in BENCH_server.json.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	label := fs.String("label", "dev", "trajectory label for this run (e.g. baseline, batched-datapath)")
	out := fs.String("out", "BENCH_server.json", "trajectory file to append to")
	smoke := fs.Bool("smoke", false, "short run: validate JSON output, write nothing")
	scale := fs.Float64("scale", 1, "scale factor for the suite's query counts")
	fs.Parse(args)

	sc := *scale
	if *smoke {
		sc = 0.02 // ~4k queries per shape, a second or two of work
	}
	results, err := bench.Suite(sc)
	if err != nil {
		return err
	}
	for _, r := range results {
		off := "no offload"
		if r.Offload {
			off = "GSO/GRO"
		}
		if !r.Batched {
			off = "per-datagram"
		}
		fmt.Printf("%-20s %-12s: %.0f q/s served, %.2f%% loss, %.1f allocs/query (%d sent, %d responses)\n",
			r.Name, off, r.AchievedQPS, r.LossPct, r.AllocsPerQuery, r.Sent, r.Responses)
	}

	if *smoke {
		rep := bench.NewReport()
		rep.Append("smoke", results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := bench.Validate(data); err != nil {
			return err
		}
		fmt.Println(string(data))
		fmt.Println("bench smoke: JSON output validates")
		return nil
	}

	rep, err := bench.LoadReport(*out)
	if err != nil {
		return err
	}
	rep.Append(*label, results)
	if err := rep.Save(*out); err != nil {
		return err
	}
	fmt.Printf("recorded %q in %s\n", *label, *out)
	return nil
}
