// Command metadns runs the meta-DNS-server: a single authoritative
// instance serving one or more zone files, optionally behind split-horizon
// views so it emulates multiple levels of the DNS hierarchy (§2.4).
//
// Usage:
//
//	metadns -zone root=./root.zone -zone com=./com.zone \
//	        -view 198.18.0.1=root -view 198.18.0.5=com \
//	        -udp 127.0.0.1:5300 -tcp 127.0.0.1:5300
//
// Without -view clauses all zones go into a default view answering every
// client. TLS requires -tls plus an in-memory self-signed certificate
// (generated automatically for the host in -tls-host).
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/obs"
	"ldplayer/internal/qlog"
	"ldplayer/internal/zone"
)

// multiFlag accumulates repeated -zone / -view flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := cmdBench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "metadns bench:", err)
			os.Exit(1)
		}
		return
	}
	var zoneFlags, viewFlags multiFlag
	flag.Var(&zoneFlags, "zone", "NAME=FILE zone to load (repeatable); NAME 'root' means '.'")
	flag.Var(&viewFlags, "view", "ADDR=NAME[,NAME...] split-horizon view matching source ADDR (repeatable)")
	udp := flag.String("udp", "127.0.0.1:5300", "UDP listen address")
	tcp := flag.String("tcp", "", "TCP listen address (empty = disabled)")
	tlsAddr := flag.String("tls", "", "TLS listen address (empty = disabled)")
	tlsHost := flag.String("tls-host", "127.0.0.1", "hostname or IP for the self-signed TLS certificate")
	idle := flag.Duration("idle-timeout", authserver.DefaultIdleTimeout, "TCP/TLS idle connection timeout")
	obsListen := flag.String("obs-listen", "", "observability HTTP address serving /metrics, /metrics.json, /trace and /debug/pprof (empty = disabled)")
	obsSample := flag.Int("obs-sample", authserver.DefaultObsSampleEvery, "trace and time 1 in N queries when -obs-listen is set")
	impair := flag.String("impair", "", "fault-inject the UDP listener, e.g. 'drop=0.2,jitter=5ms,seed=1'")
	workers := flag.Int("udp-workers", 4, "UDP worker (and with -reuseport, socket) count")
	batch := flag.Int("udp-batch", authserver.DefaultUDPBatchSize, "datagrams per recvmmsg/sendmmsg batch on the batched datapath; 0 = per-datagram loop")
	noOffload := flag.Bool("no-offload", false, "disable UDP GSO/GRO coalescing on the batched datapath")
	reusePort := flag.Bool("reuseport", true, "one SO_REUSEPORT UDP socket per worker where supported")
	qlogFile := flag.String("qlog", "", "stream per-query telemetry to this rotating binary qlog file (empty = disabled)")
	qlogTCP := flag.String("qlog-tcp", "", "stream per-query telemetry to this TCP collector address (empty = disabled)")
	qlogRotate := flag.Int("qlog-rotate-mb", 256, "rotate the -qlog file after this many MiB (0 = never)")
	qlogSample := flag.Int("qlog-sample", 1, "export 1 in N telemetry events")
	qlogSuffix := flag.String("qlog-suffix", "", "comma-separated qname suffix keep-list for telemetry export (empty = all)")
	qlogAnon := flag.String("qlog-anon", "", "anonymize exported qnames with this keyed-hash secret (empty = off)")
	qlogSlow := flag.Duration("qlog-slow", 0, "tag exported events with sampled latency above this as slow (0 = off)")
	qlogRing := flag.Int("qlog-ring", 0, "telemetry ring capacity per producer (0 = default)")
	flag.Parse()

	srvOpts := serverOpts{
		workers:   *workers,
		batch:     *batch,
		noOffload: *noOffload,
		reusePort: *reusePort,
	}
	qopts := qlog.Options{
		File:         *qlogFile,
		FileRotateMB: *qlogRotate,
		TCP:          *qlogTCP,
		Sample:       *qlogSample,
		Suffixes:     *qlogSuffix,
		AnonKey:      *qlogAnon,
		Slow:         *qlogSlow,
		RingSize:     *qlogRing,
	}
	if err := run(zoneFlags, viewFlags, *udp, *tcp, *tlsAddr, *tlsHost, *idle, *obsListen, *obsSample, *impair, qopts, srvOpts); err != nil {
		fmt.Fprintln(os.Stderr, "metadns:", err)
		os.Exit(1)
	}
}

// serverOpts carries the UDP datapath shape from flags to run.
type serverOpts struct {
	workers   int
	batch     int
	noOffload bool
	reusePort bool
}

func run(zoneFlags, viewFlags []string, udp, tcp, tlsAddr, tlsHost string, idle time.Duration, obsListen string, obsSample int, impair string, qopts qlog.Options, srvOpts serverOpts) error {
	if len(zoneFlags) == 0 {
		return fmt.Errorf("at least one -zone is required")
	}
	zones := make(map[string]*zone.Zone)
	for _, zf := range zoneFlags {
		name, file, ok := strings.Cut(zf, "=")
		if !ok {
			return fmt.Errorf("bad -zone %q (want NAME=FILE)", zf)
		}
		origin := name
		if name == "root" {
			origin = "."
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		z, err := zone.Parse(f, dnswire.CanonicalName(origin))
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", file, err)
		}
		if errs := z.Validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "metadns: warning:", e)
			}
		}
		zones[name] = z
		fmt.Printf("loaded zone %s (%d records) from %s\n", z.Origin, z.NumRecords(), file)
	}

	engine := authserver.NewEngine()
	if len(viewFlags) == 0 {
		var all []*zone.Zone
		for _, z := range zones {
			all = append(all, z)
		}
		if err := engine.AddView(&authserver.View{Name: "default", Zones: all}); err != nil {
			return err
		}
	} else {
		for _, vf := range viewFlags {
			addrStr, names, ok := strings.Cut(vf, "=")
			if !ok {
				return fmt.Errorf("bad -view %q (want ADDR=NAME,...)", vf)
			}
			addr, err := netip.ParseAddr(addrStr)
			if err != nil {
				return fmt.Errorf("bad -view address %q: %v", addrStr, err)
			}
			v := &authserver.View{Name: vf, Sources: []netip.Addr{addr}}
			for _, n := range strings.Split(names, ",") {
				z, ok := zones[n]
				if !ok {
					return fmt.Errorf("-view %q references unknown zone %q", vf, n)
				}
				v.Zones = append(v.Zones, z)
			}
			if err := engine.AddView(v); err != nil {
				return err
			}
		}
	}

	// The qlog pipeline attaches before Server.Start so batch shards bind
	// their producers at creation; its defer is registered before the
	// server's, so (LIFO) the pipeline drains after the listeners stop.
	var qpipe *qlog.Pipeline
	if qopts.Enabled() {
		var err error
		qpipe, err = qlog.NewFromOptions(qopts)
		if err != nil {
			return err
		}
		defer func() {
			if err := qpipe.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "metadns: qlog:", err)
			}
			qst := qpipe.Stats()
			fmt.Printf("qlog: %d events captured, %d shed (ring), %d filtered, %d exported, %d sink-dropped\n",
				qst.Published, qst.RingDrops, qst.TransformDrops, qst.SinkWritten, qst.SinkDropped)
		}()
		engine.SetQlog(qpipe)
		if qopts.File != "" {
			fmt.Println("qlog telemetry to file", qopts.File)
		}
		if qopts.TCP != "" {
			fmt.Println("qlog telemetry to tcp", qopts.TCP)
		}
	}

	if obsListen != "" {
		reg := obs.NewRegistry()
		// The engine gates which queries trace (1 in -obs-sample), so the
		// tracer itself keeps every span it is handed.
		tracer := obs.NewTracer(1024, 1)
		engine.Instrument(reg, tracer, obsSample)
		if qpipe != nil {
			qpipe.Instrument(reg)
		}
		osrv, err := obs.Serve(obsListen, reg, tracer)
		if err != nil {
			return err
		}
		defer osrv.Close()
		sampler := obs.NewSampler(reg, time.Second)
		sampler.Start()
		defer sampler.Stop()
		fmt.Println("observability on http://" + osrv.Addr().String() + "/metrics")
	}

	srv := &authserver.Server{
		Engine:      engine,
		IdleTimeout: idle,
		UDPWorkers:  srvOpts.workers,
		ReusePort:   srvOpts.reusePort,
		Batch:       srvOpts.batch > 0,
		BatchSize:   srvOpts.batch,
		NoOffload:   srvOpts.noOffload,
	}
	if tlsAddr != "" {
		serverTLS, _, err := authserver.SelfSignedTLSConfig(tlsHost)
		if err != nil {
			return err
		}
		srv.TLSConfig = serverTLS
	}
	// With -impair, the server binds UDP on an internal loopback port and
	// a lossy relay listens on the public address in front of it.
	serveUDP := udp
	var imp netsim.Impairment
	if impair != "" {
		var err error
		if imp, err = netsim.ParseImpairment(impair); err != nil {
			return err
		}
		if udp == "" {
			return fmt.Errorf("-impair requires a -udp listen address")
		}
		serveUDP = "127.0.0.1:0"
	}
	if err := srv.Start(serveUDP, tcp, tlsAddr); err != nil {
		return err
	}
	defer srv.Close()
	if impair != "" {
		relay, err := netsim.NewUDPRelay(udp, srv.UDPAddr().String(), imp)
		if err != nil {
			return err
		}
		defer relay.Close()
		fmt.Printf("udp listening on %s (impaired: %s)\n", relay.Addr(), imp)
	} else if a := srv.UDPAddr(); a != nil {
		fmt.Println("udp listening on", a)
	}
	if a := srv.TCPAddr(); a != nil {
		fmt.Println("tcp listening on", a)
	}
	if a := srv.TLSAddr(); a != nil {
		fmt.Println("tls listening on", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := engine.Stats()
	fmt.Printf("\nserved %d queries (%d bytes out), %d truncated, %d refused\n",
		st.Queries, st.ResponseBytes, st.Truncated, st.Refused)
	return nil
}
