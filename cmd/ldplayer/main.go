// Command ldplayer is the LDplayer driver: trace replay against live
// servers, trace statistics, what-if mutation, and regeneration of the
// paper's experiments.
//
// Usage:
//
//	ldplayer stats  -in trace.bin
//	ldplayer mutate -in trace.bin -out tcp.bin -protocol tcp -do
//	ldplayer replay -in trace.bin -udp 127.0.0.1:5300 [-tcp ...] [-fast]
//	ldplayer experiment -name fig10 [-paper-scale]
//	ldplayer demo
//
// Input format is selected by extension: .pcap, .txt, or .bin.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
	"time"

	"ldplayer/internal/experiments"
	"ldplayer/internal/mutate"
	"ldplayer/internal/netsim"
	"ldplayer/internal/obs"
	"ldplayer/internal/pcap"
	"ldplayer/internal/qlog"
	qbench "ldplayer/internal/qlog/bench"
	"ldplayer/internal/replay"
	"ldplayer/internal/replay/bench"
	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "mutate":
		err = cmdMutate(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "trace-bench":
		err = cmdTraceBench(os.Args[2:])
	case "qlog-bench":
		err = cmdQlogBench(os.Args[2:])
	case "experiment":
		err = cmdExperiment(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ldplayer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ldplayer <gen|stats|mutate|replay|bench|trace-bench|qlog-bench|experiment|demo> [flags]
  gen         -kind broot|rec|syn -out FILE synthesize a Table-1 trace family
  stats       -in FILE                      print Table-1 style statistics
  mutate      -in FILE -out FILE [flags]    rewrite a trace (protocol, DO, tags)
  replay      -in FILE -udp HOST:PORT ...   replay against live servers
  bench       -label NAME [-out FILE]       loopback replay self-benchmark
  trace-bench -label NAME [-out FILE]       trace-ingestion decode/size benchmark
  qlog-bench  -label NAME [-out FILE]       telemetry pipeline self-benchmark
  experiment  -name NAME                    regenerate a paper figure/table
  demo                                      end-to-end self-contained demo`)
}

// openTrace opens a trace file by extension.
func openTrace(path string) (trace.Reader, func() error, error) {
	if strings.HasSuffix(path, ".blk") {
		// Block traces open by path: the reader mmaps and paces its own
		// parallel decode pipeline.
		br, err := trace.OpenBlockFile(path)
		if err != nil {
			return nil, nil, err
		}
		return br, br.Close, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	switch {
	case strings.HasSuffix(path, ".pcapng"):
		r, err := pcap.NewNgTraceReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f.Close, nil
	case strings.HasSuffix(path, ".pcap"):
		r, err := pcap.NewTraceReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return r, f.Close, nil
	case strings.HasSuffix(path, ".txt"):
		return trace.NewTextReader(f), f.Close, nil
	case strings.HasSuffix(path, ".qlog"), strings.HasSuffix(path, ".qlog.z"):
		return qlog.NewEntryReader(f), f.Close, nil
	default:
		return trace.NewBinaryReader(f), f.Close, nil
	}
}

// createWriter creates a trace writer by extension; closeFn flushes.
func createWriter(path string) (trace.Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if strings.HasSuffix(path, ".txt") {
		w := trace.NewTextWriter(f)
		return w, func() error {
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Close()
		}, nil
	}
	if strings.HasSuffix(path, ".blk") {
		w := trace.NewBlockWriter(f)
		return w, func() error {
			if err := w.Close(); err != nil {
				return err
			}
			return f.Close()
		}, nil
	}
	w := trace.NewBinaryWriter(f)
	return w, func() error {
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Close()
	}, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "broot", "trace family: broot, rec, or syn")
	out := fs.String("out", "", "output trace (.txt or .bin)")
	duration := fs.Duration("duration", 10*time.Second, "trace duration")
	rate := fs.Float64("rate", 1000, "broot: median queries/second")
	clients := fs.Int("clients", 10000, "broot: client population")
	gap := fs.Duration("interarrival", 10*time.Millisecond, "syn: fixed inter-arrival")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var r trace.Reader
	var err error
	switch *kind {
	case "broot":
		r, err = traceg.BRoot(traceg.BRootConfig{
			Duration: *duration, MedianRate: *rate, Clients: *clients,
			TCPFraction: 0.03, DOFraction: 0.723, Seed: *seed,
		})
	case "rec":
		r, err = traceg.Recursive(traceg.RecursiveConfig{Duration: *duration, Seed: *seed})
	case "syn":
		r, err = traceg.Synthetic(traceg.SyntheticConfig{
			InterArrival: *gap, Duration: *duration, Clients: *clients, Seed: *seed,
		})
	default:
		return fmt.Errorf("gen: unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	w, closeOut, err := createWriter(*out)
	if err != nil {
		return err
	}
	n := 0
	for {
		e, nerr := r.Next()
		if nerr != nil {
			break
		}
		if err := w.Write(e); err != nil {
			return err
		}
		n++
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Printf("generated %d entries to %s\n", n, *out)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input trace (.pcap/.txt/.bin)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	r, closeFn, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closeFn()
	st, err := traceg.ComputeStats(r)
	if err != nil {
		return err
	}
	fmt.Printf("records:        %d\n", st.Records)
	fmt.Printf("clients:        %d\n", st.Clients)
	fmt.Printf("duration:       %v\n", st.Duration)
	fmt.Printf("inter-arrival:  %.6fs ± %.6fs\n", st.MeanInterArriv.Seconds(), st.StdInterArriv.Seconds())
	fmt.Printf("tcp fraction:   %.3f\n", st.TCPFraction)
	fmt.Printf("do fraction:    %.3f\n", st.DOFraction)
	return nil
}

func cmdMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	out := fs.String("out", "", "output trace (.txt or .bin)")
	protocol := fs.String("protocol", "", "force protocol: udp, tcp or tls")
	do := fs.Bool("do", false, "set the EDNS DO bit on every query")
	tag := fs.String("tag", "", "prepend unique labels with this prefix (§4.2)")
	dst := fs.String("dst", "", "rewrite every destination to this host:port")
	queriesOnly := fs.Bool("queries-only", false, "drop responses")
	limit := fs.Int("limit", 0, "keep at most N entries")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("mutate: -in and -out are required")
	}

	var muts []mutate.Mutation
	if *queriesOnly {
		muts = append(muts, mutate.QueriesOnly())
	}
	if *protocol != "" {
		p, ok := trace.ParseProtocol(*protocol)
		if !ok {
			return fmt.Errorf("mutate: bad protocol %q", *protocol)
		}
		muts = append(muts, mutate.SetProtocol(p))
	}
	if *do {
		muts = append(muts, mutate.SetDO(true))
	}
	if *tag != "" {
		muts = append(muts, mutate.PrependUnique(*tag))
	}
	if *dst != "" {
		ap, err := netip.ParseAddrPort(*dst)
		if err != nil {
			return fmt.Errorf("mutate: bad -dst: %v", err)
		}
		muts = append(muts, mutate.RewriteDst(ap))
	}
	if *limit > 0 {
		muts = append(muts, mutate.Limit(*limit))
	}

	r, closeIn, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closeIn()
	w, closeOut, err := createWriter(*out)
	if err != nil {
		return err
	}
	src := mutate.NewPipeline(muts...).Reader(r)
	n := 0
	for {
		e, err := src.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return fmt.Errorf("mutate: entry %d: %w", n+1, err)
			}
			break
		}
		if err := w.Write(e); err != nil {
			return err
		}
		n++
	}
	if err := closeOut(); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries to %s\n", n, *out)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "input trace")
	udp := fs.String("udp", "", "UDP target host:port")
	tcp := fs.String("tcp", "", "TCP target host:port")
	fast := fs.Bool("fast", false, "ignore trace timing, send as fast as possible")
	distributors := fs.Int("distributors", 1, "distributor processes")
	queriers := fs.Int("queriers", 6, "queriers per distributor")
	idle := fs.Duration("idle-timeout", 20*time.Second, "client connection reuse timeout")
	udpRetries := fs.Int("udp-retries", 0, "UDP retransmissions per unanswered query (0 = fire and forget)")
	udpRetryTimeout := fs.Duration("udp-retry-timeout", 250*time.Millisecond, "wait before the first UDP retransmission (doubles per retry)")
	impair := fs.String("impair", "", "fault-inject the UDP path, e.g. 'drop=0.2,dup=0.05,jitter=5ms,seed=1'")
	clients := fs.String("clients", "", "comma-separated ldclient addresses: act as remote controller (Figure 5)")
	obsListen := fs.String("obs-listen", "", "observability HTTP address serving /metrics, /metrics.json and /debug/pprof (empty = disabled)")
	qlogFile := fs.String("qlog", "", "stream per-send telemetry to this binary qlog file (empty = disabled)")
	qlogTCP := fs.String("qlog-tcp", "", "stream per-send telemetry to this TCP collector address (empty = disabled)")
	qlogSample := fs.Int("qlog-sample", 1, "export 1 in N telemetry events")
	qlogAnon := fs.String("qlog-anon", "", "anonymize exported qnames with this keyed-hash secret (empty = off)")
	qlogRing := fs.Int("qlog-ring", 0, "telemetry ring capacity per producer (0 = default)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("replay: -in is required")
	}
	r, closeFn, err := openTrace(*in)
	if err != nil {
		return err
	}
	defer closeFn()
	if *clients != "" {
		// Remote-controller mode: stream the trace to ldclient instances
		// over TCP links; they own the sockets and the timing.
		rc, err := replay.DialClients(strings.Split(*clients, ",")...)
		if err != nil {
			return err
		}
		if err := rc.Run(r); err != nil {
			return err
		}
		fmt.Println("trace distributed to", *clients)
		return nil
	}
	udpTarget := *udp
	var relay *netsim.UDPRelay
	if *impair != "" {
		imp, perr := netsim.ParseImpairment(*impair)
		if perr != nil {
			return fmt.Errorf("replay: %w", perr)
		}
		if udpTarget == "" {
			return fmt.Errorf("replay: -impair requires a -udp target")
		}
		// Interpose a lossy relay between the queriers and the target so
		// the real sockets traverse the fault model.
		relay, err = netsim.NewUDPRelay("127.0.0.1:0", udpTarget, imp)
		if err != nil {
			return err
		}
		defer relay.Close()
		udpTarget = relay.Addr().String()
		fmt.Printf("impairing UDP path to %s: %s\n", *udp, imp)
	}
	qopts := qlog.Options{
		File:     *qlogFile,
		TCP:      *qlogTCP,
		Sample:   *qlogSample,
		AnonKey:  *qlogAnon,
		RingSize: *qlogRing,
	}
	var qpipe *qlog.Pipeline
	if qopts.Enabled() {
		var qerr error
		if qpipe, qerr = qlog.NewFromOptions(qopts); qerr != nil {
			return qerr
		}
	}
	en, err := replay.New(replay.Config{
		Distributors:           *distributors,
		QueriersPerDistributor: *queriers,
		UDPTarget:              udpTarget,
		TCPTarget:              *tcp,
		IdleTimeout:            *idle,
		UDPRetries:             *udpRetries,
		UDPRetryTimeout:        *udpRetryTimeout,
		FastMode:               *fast,
		Qlog:                   qpipe,
	})
	if err != nil {
		return err
	}
	if *obsListen != "" {
		reg := obs.NewRegistry()
		en.Instrument(reg)
		if qpipe != nil {
			qpipe.Instrument(reg)
		}
		osrv, oerr := obs.Serve(*obsListen, reg, nil)
		if oerr != nil {
			return oerr
		}
		defer osrv.Close()
		fmt.Println("observability on http://" + osrv.Addr().String() + "/metrics")
	}
	st, err := en.Replay(context.Background(), r)
	if qpipe != nil {
		if cerr := qpipe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "ldplayer: qlog:", cerr)
		}
		qst := qpipe.Stats()
		fmt.Printf("qlog: %d events captured, %d shed (ring), %d filtered, %d exported, %d sink-dropped\n",
			qst.Published, qst.RingDrops, qst.TransformDrops, qst.SinkWritten, qst.SinkDropped)
	}
	if err != nil {
		return err
	}
	fmt.Printf("sent=%d responses=%d errors=%d conns=%d sources=%d duration=%v (%.0f q/s)\n",
		st.Sent, st.Responses, st.Errors, st.ConnsOpened, st.Sources,
		st.Duration.Round(time.Millisecond), float64(st.Sent)/st.Duration.Seconds())
	if st.UDPRetransmits+st.Giveups+st.Duplicates > 0 {
		fmt.Printf("retransmits=%d giveups=%d dup-responses=%d\n",
			st.UDPRetransmits, st.Giveups, st.Duplicates)
	}
	if relay != nil {
		is := relay.Stats()
		fmt.Printf("impairment: offered=%d dropped=%d duplicated=%d reordered=%d corrupted=%d\n",
			is.Offered, is.Dropped, is.Duplicated, is.Reordered, is.Corrupted)
	}
	return nil
}

// cmdBench runs the loopback replay self-benchmark and records the
// results in a BENCH_replay.json trajectory file. -smoke runs a scaled-
// down suite, validates the JSON it would write, and prints it to stdout
// without touching the trajectory file (the CI gate).
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	label := fs.String("label", "dev", "trajectory label for this run (e.g. baseline, batched-io)")
	out := fs.String("out", "BENCH_replay.json", "trajectory file to append to")
	smoke := fs.Bool("smoke", false, "short run: validate JSON output, write nothing")
	scale := fs.Float64("scale", 1, "scale factor for the suite's trace sizes")
	fs.Parse(args)

	sc := *scale
	if *smoke {
		sc = 0.04 // ~1 second of work
	}
	results, err := bench.Suite(sc)
	if err != nil {
		return err
	}
	for _, r := range results {
		mode := fmt.Sprintf("paced @%.0f q/s", r.Rate)
		if r.FastMode {
			mode = "fast mode"
		}
		fmt.Printf("%-12s %s: %.0f q/s, sched err p50=%.0fµs p99=%.0fµs, %.1f allocs/query (%d sent, %d responses)\n",
			r.Name, mode, r.AchievedQPS, r.P50SchedErrUS, r.P99SchedErrUS, r.AllocsPerQuery, r.Sent, r.Responses)
	}

	if *smoke {
		rep := bench.NewReport()
		rep.Append("smoke", results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := bench.Validate(data); err != nil {
			return err
		}
		fmt.Println(string(data))
		fmt.Println("bench smoke: JSON output validates")
		return nil
	}

	rep, err := bench.LoadReport(*out)
	if err != nil {
		return err
	}
	rep.Append(*label, results)
	if err := rep.Save(*out); err != nil {
		return err
	}
	fmt.Printf("recorded %q in %s\n", *label, *out)
	return nil
}

// cmdTraceBench runs the trace-ingestion benchmarks: decode throughput
// of the LDTRC01 stream versus LDTRC02 blocks (single-worker and
// parallel) and the compressed block format's size ratio, on a
// traceg-generated recursive trace. Results land in the same
// BENCH_replay.json trajectory as the replay benchmarks.
func cmdTraceBench(args []string) error {
	fs := flag.NewFlagSet("trace-bench", flag.ExitOnError)
	label := fs.String("label", "dev", "trajectory label for this run (e.g. baseline, block-format)")
	out := fs.String("out", "BENCH_replay.json", "trajectory file to append to")
	smoke := fs.Bool("smoke", false, "short run: validate JSON output, write nothing")
	scale := fs.Float64("scale", 1, "scale factor for the trace size")
	fs.Parse(args)

	sc := *scale
	if *smoke {
		sc = 0.04 // ~1 second of work
	}
	results, err := bench.TraceSuite(sc)
	if err != nil {
		return err
	}
	for _, r := range results {
		ratio := ""
		if r.CompressionX > 0 {
			ratio = fmt.Sprintf(", %.2fx vs LDTRC01", r.CompressionX)
		}
		fmt.Printf("%-26s %.2fM entries/s, %.3f allocs/entry, %d bytes%s\n",
			r.Name, r.AchievedQPS/1e6, r.AllocsPerQuery, r.TraceBytes, ratio)
	}

	if *smoke {
		rep := bench.NewReport()
		rep.Append("smoke", results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := bench.Validate(data); err != nil {
			return err
		}
		fmt.Println("trace-bench smoke: JSON output validates")
		return nil
	}

	rep, err := bench.LoadReport(*out)
	if err != nil {
		return err
	}
	rep.Append(*label, results)
	if err := rep.Save(*out); err != nil {
		return err
	}
	fmt.Printf("recorded %q in %s\n", *label, *out)
	return nil
}

// cmdQlogBench runs the telemetry-pipeline self-benchmark and records
// the results in a BENCH_qlog.json trajectory file. -smoke runs a
// scaled-down suite, validates the JSON it would write, and prints it to
// stdout without touching the trajectory file (the CI gate).
func cmdQlogBench(args []string) error {
	fs := flag.NewFlagSet("qlog-bench", flag.ExitOnError)
	label := fs.String("label", "dev", "trajectory label for this run")
	out := fs.String("out", "BENCH_qlog.json", "trajectory file to append to")
	smoke := fs.Bool("smoke", false, "short run: validate JSON output, write nothing")
	scale := fs.Float64("scale", 1, "scale factor for per-case duration")
	fs.Parse(args)

	sc := *scale
	if *smoke {
		sc = 0.08 // ~0.5s of work
	}
	results, err := qbench.Suite(sc)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-14s sink=%-7s producers=%d: %.2fM enq/s, %.2fM export/s (%.1f MB/s), %d shed\n",
			r.Name, r.Sink, r.Producers, r.ProducePerSec/1e6, r.ExportPerSec/1e6, r.MBPerSec, r.RingDrops)
	}

	if *smoke {
		rep := qbench.NewReport()
		rep.Append("smoke", results)
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := qbench.Validate(data); err != nil {
			return err
		}
		fmt.Println(string(data))
		fmt.Println("qlog-bench smoke: JSON output validates")
		return nil
	}

	rep, err := qbench.LoadReport(*out)
	if err != nil {
		return err
	}
	rep.Append(*label, results)
	if err := rep.Save(*out); err != nil {
		return err
	}
	fmt.Printf("recorded %q in %s\n", *label, *out)
	return nil
}

func cmdExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	name := fs.String("name", "", "table1|fig6|fig7|fig8|fig9|fig10|fig11|fig13|fig14|fig15|fig15c|all")
	paperScale := fs.Bool("paper-scale", false, "run simulations at the paper's full operating point (slow)")
	fs.Parse(args)
	sim := experiments.DefaultSimScale()
	if *paperScale {
		sim = experiments.PaperSimScale()
	}
	live := experiments.DefaultScale()
	timeouts := []time.Duration{5 * time.Second, 10 * time.Second, 15 * time.Second,
		20 * time.Second, 25 * time.Second, 30 * time.Second, 35 * time.Second, 40 * time.Second}
	rtts := []time.Duration{0, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond,
		120 * time.Millisecond, 160 * time.Millisecond}

	run := func(n string) error {
		fmt.Printf("=== %s ===\n", n)
		switch n {
		case "table1":
			rows, err := experiments.Table1(live)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig6":
			rows, err := experiments.Fig6TimingError(live)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig7":
			rows, err := experiments.Fig7InterArrival(live)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig8":
			rows, err := experiments.Fig8RateAccuracy(live, 5)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig9":
			res, err := experiments.Fig9Throughput(300000)
			if err != nil {
				return err
			}
			fmt.Println(res)
		case "fig10":
			rows, err := experiments.Fig10DNSSEC(sim)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig11":
			rows, err := experiments.Fig11CPU(sim, timeouts)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig13":
			rows, err := experiments.FigFootprint(sim, experiments.WorkloadAllTCP, timeouts)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig14":
			rows, err := experiments.FigFootprint(sim, experiments.WorkloadAllTLS, timeouts)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig15":
			rows, err := experiments.Fig15Latency(sim, rtts)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
		case "fig15c":
			res, err := experiments.Fig15cClientLoad(sim)
			if err != nil {
				return err
			}
			fmt.Println(res)
		default:
			return fmt.Errorf("experiment: unknown -name %q", n)
		}
		return nil
	}
	if *name == "all" {
		for _, n := range []string{"table1", "fig6", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig13", "fig14", "fig15", "fig15c"} {
			if err := run(n); err != nil {
				return err
			}
		}
		return nil
	}
	if *name == "" {
		return fmt.Errorf("experiment: -name is required")
	}
	return run(*name)
}

// cmdDemo generates a trace, writes it in all three formats, and replays
// it against an in-process root server — a self-contained smoke run.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	fs.Parse(args)
	rows, err := experiments.Table1(experiments.Scale{
		Rate: 500, Duration: 3 * time.Second, Clients: 3000, Seed: 1,
	})
	if err != nil {
		return err
	}
	fmt.Println("generated trace families:")
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	res, err := experiments.Fig9Throughput(50000)
	if err != nil {
		return err
	}
	fmt.Println("fast-replay check:", res)
	return nil
}
