package main

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

func testEntries(t *testing.T, n int) []trace.Entry {
	t.Helper()
	base := time.Unix(1461234567, 0)
	out := make([]trace.Entry, n)
	for i := range out {
		m := dnswire.NewQuery(uint16(i+1), fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * time.Millisecond),
			Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i)}), 5353),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: trace.Protocol(i % 3),
			Message:  wire,
		}
	}
	return out
}

func writeBinary(t *testing.T, path string, entries []trace.Entry) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readTrace(t *testing.T, path string) []trace.Entry {
	t.Helper()
	var r trace.Reader
	if filepath.Ext(path) == ".blk" {
		br, err := trace.OpenBlockFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer br.Close()
		r = br
	} else {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		r = trace.NewBinaryReader(f)
	}
	entries, err := trace.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	// Deep-copy: block entries alias the reader's mmap/slabs, which die
	// with the deferred Close.
	for i := range entries {
		entries[i] = entries[i].Clone()
	}
	return entries
}

// TestConvertBinaryBlockRoundTrip drives the CLI's run() through
// LDTRC01 -> LDTRC02 -> LDTRC01 (raw, then compressed blocks) and
// requires byte-identical entries back.
func TestConvertBinaryBlockRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			dir := t.TempDir()
			binIn := filepath.Join(dir, "in.bin")
			blk := filepath.Join(dir, "mid.blk")
			binOut := filepath.Join(dir, "out.bin")
			want := testEntries(t, 300)
			writeBinary(t, binIn, want)

			if err := run(binIn, blk, false, compress); err != nil {
				t.Fatal(err)
			}
			if err := run(blk, binOut, false, false); err != nil {
				t.Fatal(err)
			}

			mid := readTrace(t, blk)
			got := readTrace(t, binOut)
			for _, round := range [][]trace.Entry{mid, got} {
				if len(round) != len(want) {
					t.Fatalf("round trip produced %d entries, want %d", len(round), len(want))
				}
				for i := range round {
					a, b := round[i], want[i]
					if !a.Time.Equal(b.Time) || a.Src != b.Src || a.Dst != b.Dst ||
						a.Protocol != b.Protocol || string(a.Message) != string(b.Message) {
						t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, a, b)
					}
				}
			}
		})
	}
}

// TestConvertTextBlock exercises text -> blocks -> text.
func TestConvertTextBlock(t *testing.T) {
	dir := t.TempDir()
	binIn := filepath.Join(dir, "in.bin")
	txt := filepath.Join(dir, "a.txt")
	blk := filepath.Join(dir, "b.blk")
	txt2 := filepath.Join(dir, "c.txt")
	writeBinary(t, binIn, testEntries(t, 50))

	for _, step := range [][2]string{{binIn, txt}, {txt, blk}, {blk, txt2}} {
		if err := run(step[0], step[1], false, false); err != nil {
			t.Fatalf("%s -> %s: %v", step[0], step[1], err)
		}
	}
	a, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(txt2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("text -> blk -> text round trip changed the text form")
	}
}
