// Command traceconv converts between LDplayer's trace formats (Figure 3):
// pcap network captures, editable plain text, the length-prefixed binary
// stream (LDTRC01), and the block-structured format (LDTRC02, .blk) the
// replay engine mmaps and decodes in parallel. Query-log telemetry
// captures (.qlog / .qlog.z, from metadns -qlog or a TCP collector) read
// as traces too, so a live capture converts straight into replay input.
//
// Usage:
//
//	traceconv -in capture.pcap -out queries.txt     # pcap  -> text
//	traceconv -in queries.txt  -out queries.bin     # text  -> binary
//	traceconv -in queries.bin  -out queries.pcap    # binary -> pcap
//	traceconv -in server.qlog  -out queries.bin     # qlog  -> binary
//	traceconv -in queries.bin  -out queries.blk     # binary -> blocks
//	traceconv -in queries.blk  -out queries.txt -compress  # and back
//
// Formats are selected by extension (.pcap/.txt/.bin/.blk/.qlog input);
// -compress DEFLATEs .blk output blocks (archival; raw is replay-speed).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ldplayer/internal/pcap"
	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace")
	out := flag.String("out", "", "output trace")
	queriesOnly := flag.Bool("queries-only", false, "keep queries, drop responses")
	compress := flag.Bool("compress", false, "DEFLATE .blk output blocks (archival)")
	flag.Parse()
	if err := run(*in, *out, *queriesOnly, *compress); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func run(in, out string, queriesOnly, compress bool) error {
	if in == "" || out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	var r trace.Reader
	if strings.HasSuffix(in, ".blk") {
		br, err := trace.OpenBlockFile(in)
		if err != nil {
			return err
		}
		defer br.Close()
		r = br
		return convert(r, out, queriesOnly, compress)
	}
	inF, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inF.Close()

	switch {
	case strings.HasSuffix(in, ".pcapng"):
		if r, err = pcap.NewNgTraceReader(inF); err != nil {
			return err
		}
	case strings.HasSuffix(in, ".pcap"):
		if r, err = pcap.NewTraceReader(inF); err != nil {
			return err
		}
	case strings.HasSuffix(in, ".txt"):
		r = trace.NewTextReader(inF)
	case strings.HasSuffix(in, ".qlog"), strings.HasSuffix(in, ".qlog.z"):
		r = qlog.NewEntryReader(inF)
	default:
		r = trace.NewBinaryReader(inF)
	}
	return convert(r, out, queriesOnly, compress)
}

func convert(r trace.Reader, out string, queriesOnly, compress bool) error {

	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	defer outF.Close()

	n := 0
	if strings.HasSuffix(out, ".pcap") {
		// pcap output buffers entries because the writer needs per-flow
		// TCP sequence state in one pass.
		var entries []trace.Entry
		for {
			e, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return err
			}
			if queriesOnly && isResponse(e) {
				continue
			}
			entries = append(entries, e)
		}
		if err := pcap.WriteDNSPcap(outF, entries); err != nil {
			return err
		}
		n = len(entries)
	} else {
		var w trace.Writer
		var flush func() error
		switch {
		case strings.HasSuffix(out, ".txt"):
			tw := trace.NewTextWriter(outF)
			w, flush = tw, tw.Flush
		case strings.HasSuffix(out, ".blk"):
			codec := trace.BlockRaw
			if compress {
				codec = trace.BlockFlate
			}
			kw := trace.NewBlockWriterOptions(outF, trace.BlockWriterOptions{Codec: codec})
			w, flush = kw, kw.Close
		default:
			bw := trace.NewBinaryWriter(outF)
			w, flush = bw, bw.Flush
		}
		for {
			e, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return err
			}
			if queriesOnly && isResponse(e) {
				continue
			}
			if err := w.Write(e); err != nil {
				return err
			}
			n++
		}
		if err := flush(); err != nil {
			return err
		}
	}
	fmt.Printf("converted %d entries -> %s\n", n, out)
	return nil
}

func isResponse(e trace.Entry) bool {
	return len(e.Message) >= 3 && e.Message[2]&0x80 != 0
}
