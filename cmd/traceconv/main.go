// Command traceconv converts between LDplayer's trace formats (Figure 3):
// pcap network captures, editable plain text, and the length-prefixed
// binary stream of internal messages used for fast replay. Query-log
// telemetry captures (.qlog, from metadns -qlog or a TCP collector) read
// as traces too, so a live capture converts straight into replay input.
//
// Usage:
//
//	traceconv -in capture.pcap -out queries.txt     # pcap  -> text
//	traceconv -in queries.txt  -out queries.bin     # text  -> binary
//	traceconv -in queries.bin  -out queries.pcap    # binary -> pcap
//	traceconv -in server.qlog  -out queries.bin     # qlog  -> binary
//
// Formats are selected by extension (.pcap/.txt/.bin/.qlog input).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ldplayer/internal/pcap"
	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
)

func main() {
	in := flag.String("in", "", "input trace")
	out := flag.String("out", "", "output trace")
	queriesOnly := flag.Bool("queries-only", false, "keep queries, drop responses")
	flag.Parse()
	if err := run(*in, *out, *queriesOnly); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func run(in, out string, queriesOnly bool) error {
	if in == "" || out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	inF, err := os.Open(in)
	if err != nil {
		return err
	}
	defer inF.Close()

	var r trace.Reader
	switch {
	case strings.HasSuffix(in, ".pcapng"):
		if r, err = pcap.NewNgTraceReader(inF); err != nil {
			return err
		}
	case strings.HasSuffix(in, ".pcap"):
		if r, err = pcap.NewTraceReader(inF); err != nil {
			return err
		}
	case strings.HasSuffix(in, ".txt"):
		r = trace.NewTextReader(inF)
	case strings.HasSuffix(in, ".qlog"):
		r = qlog.NewEntryReader(inF)
	default:
		r = trace.NewBinaryReader(inF)
	}

	outF, err := os.Create(out)
	if err != nil {
		return err
	}
	defer outF.Close()

	n := 0
	if strings.HasSuffix(out, ".pcap") {
		// pcap output buffers entries because the writer needs per-flow
		// TCP sequence state in one pass.
		var entries []trace.Entry
		for {
			e, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return err
			}
			if queriesOnly && isResponse(e) {
				continue
			}
			entries = append(entries, e)
		}
		if err := pcap.WriteDNSPcap(outF, entries); err != nil {
			return err
		}
		n = len(entries)
	} else {
		var w trace.Writer
		var flush func() error
		if strings.HasSuffix(out, ".txt") {
			tw := trace.NewTextWriter(outF)
			w, flush = tw, tw.Flush
		} else {
			bw := trace.NewBinaryWriter(outF)
			w, flush = bw, bw.Flush
		}
		for {
			e, err := r.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				return err
			}
			if queriesOnly && isResponse(e) {
				continue
			}
			if err := w.Write(e); err != nil {
				return err
			}
			n++
		}
		if err := flush(); err != nil {
			return err
		}
	}
	fmt.Printf("converted %d entries: %s -> %s\n", n, in, out)
	return nil
}

func isResponse(e trace.Entry) bool {
	return len(e.Message) >= 3 && e.Message[2]&0x80 != 0
}
