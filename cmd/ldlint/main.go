// Command ldlint runs the repository's static-analysis suite: five
// analyzers (noalloc, determinism, poolput, msgimmutable, atomiccopy)
// that enforce the performance and determinism contracts documented in
// DESIGN.md, built entirely on the stdlib toolchain. It exits non-zero
// when any contract is violated.
//
// Usage:
//
//	ldlint [-list] [-only a,b] [-disable a,b] [-C dir] [./...]
package main

import (
	"os"

	"ldplayer/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
