// Command zoneconstruct rebuilds zone files from a captured response
// trace (§2.3): point it at a pcap or binary trace recorded at a
// recursive server's upstream interface and it emits one master file per
// reconstructed zone, ready for metadns to serve.
//
// Usage:
//
//	zoneconstruct -in upstream.pcap -out ./zones -root-hints 198.41.0.4,199.9.14.201
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strings"

	"ldplayer/internal/pcap"
	"ldplayer/internal/trace"
	"ldplayer/internal/zonecon"
)

func main() {
	in := flag.String("in", "", "input capture (.pcap or .bin)")
	out := flag.String("out", "zones", "output directory for zone files")
	hints := flag.String("root-hints", "", "comma-separated root server addresses")
	flag.Parse()
	if err := run(*in, *out, *hints); err != nil {
		fmt.Fprintln(os.Stderr, "zoneconstruct:", err)
		os.Exit(1)
	}
}

func run(in, out, hints string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	var r trace.Reader
	switch {
	case strings.HasSuffix(in, ".pcapng"):
		if r, err = pcap.NewNgTraceReader(f); err != nil {
			return err
		}
	case strings.HasSuffix(in, ".pcap"):
		if r, err = pcap.NewTraceReader(f); err != nil {
			return err
		}
	default:
		r = trace.NewBinaryReader(f)
	}

	var opts zonecon.Options
	if hints != "" {
		for _, h := range strings.Split(hints, ",") {
			a, err := netip.ParseAddr(strings.TrimSpace(h))
			if err != nil {
				return fmt.Errorf("bad root hint %q: %v", h, err)
			}
			opts.RootHints = append(opts.RootHints, a)
		}
	}

	con, err := zonecon.Construct(r, opts)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, origin := range con.Origins() {
		z := con.Zones[origin]
		name := strings.TrimSuffix(origin, ".")
		if name == "" {
			name = "root"
		}
		path := filepath.Join(out, name+".zone")
		zf, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := z.Write(zf); err != nil {
			zf.Close()
			return err
		}
		if err := zf.Close(); err != nil {
			return err
		}
		fmt.Printf("%-30s %5d records -> %s\n", origin, z.NumRecords(), path)
	}
	fmt.Printf("zones=%d dropped=%d conflicts=%d synthesized-soa=%d synthesized-ns=%d\n",
		len(con.Zones), con.Dropped, con.Conflicts, len(con.SynthesizedSOA), len(con.SynthesizedNS))
	return nil
}
