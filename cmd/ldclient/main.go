// Command ldclient runs a remote client instance (Figure 4): a
// distributor plus querier pool that listens for a controller's TCP link,
// receives the framed query stream with its time-synchronization
// broadcast, and replays against the configured targets. Combine with
// `ldplayer replay -clients host1:port,host2:port` on the controller host
// to reproduce the multi-host topology of Figure 5.
//
// Usage:
//
//	ldclient -listen :9053 -udp server:53 -tcp server:53 -queriers 6
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"ldplayer/internal/obs"
	"ldplayer/internal/replay"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9053", "address to accept the controller link on")
	udp := flag.String("udp", "", "UDP target host:port")
	tcp := flag.String("tcp", "", "TCP target host:port")
	queriers := flag.Int("queriers", 6, "querier pool size")
	idle := flag.Duration("idle-timeout", 20*time.Second, "connection reuse timeout")
	once := flag.Bool("once", false, "exit after one replay instead of serving forever")
	obsListen := flag.String("obs-listen", "", "observability HTTP address serving /metrics, /metrics.json and /debug/pprof (empty = disabled)")
	flag.Parse()

	if err := run(*listen, *udp, *tcp, *queriers, *idle, *once, *obsListen); err != nil {
		fmt.Fprintln(os.Stderr, "ldclient:", err)
		os.Exit(1)
	}
}

func run(listen, udp, tcp string, queriers int, idle time.Duration, once bool, obsListen string) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Println("client instance listening on", ln.Addr())

	// One registry outlives the per-replay engines: each fresh engine's
	// Instrument re-points the scrape functions at itself, so /metrics
	// always reflects the current (or most recent) replay.
	var reg *obs.Registry
	if obsListen != "" {
		reg = obs.NewRegistry()
		osrv, oerr := obs.Serve(obsListen, reg, nil)
		if oerr != nil {
			return oerr
		}
		defer osrv.Close()
		fmt.Println("observability on http://" + osrv.Addr().String() + "/metrics")
	}

	for {
		en, err := replay.New(replay.Config{
			Distributors:           1,
			QueriersPerDistributor: queriers,
			UDPTarget:              udp,
			TCPTarget:              tcp,
			IdleTimeout:            idle,
		})
		if err != nil {
			return err
		}
		en.Instrument(reg)
		st, err := replay.ServeClient(ln, en)
		if err != nil {
			return err
		}
		fmt.Printf("replayed: sent=%d responses=%d errors=%d conns=%d sources=%d in %v (%.0f q/s)\n",
			st.Sent, st.Responses, st.Errors, st.ConnsOpened, st.Sources,
			st.Duration.Round(time.Millisecond), float64(st.Sent)/st.Duration.Seconds())
		if once {
			return nil
		}
	}
}
