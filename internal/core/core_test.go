package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/mutate"
	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
	"ldplayer/internal/zone"
)

const wildcardZone = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
*.example.com.	300	IN	A	192.0.2.81
`

func newPlayer(t *testing.T, cfg Config) *Player {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(wildcardZone), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Zones = append(cfg.Zones, z)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func synTrace(t *testing.T, gap time.Duration, dur time.Duration) trace.Reader {
	t.Helper()
	g, err := traceg.Synthetic(traceg.SyntheticConfig{
		InterArrival: gap, Duration: dur, Clients: 20, Seed: 1,
		Start: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlayerEndToEndUDP(t *testing.T) {
	p := newPlayer(t, Config{MatchResponses: true})
	rep, err := p.Replay(context.Background(), synTrace(t, 5*time.Millisecond, 500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 100 {
		t.Errorf("sent = %d", rep.Sent)
	}
	if rep.Responses != rep.Sent {
		t.Errorf("responses = %d of %d", rep.Responses, rep.Sent)
	}
	if rep.Latency.N != int(rep.Sent) {
		t.Errorf("matched latencies = %d", rep.Latency.N)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P50 > 0.1 {
		t.Errorf("median latency = %v", rep.Latency.P50)
	}
	// Timing error on an idle machine stays within the paper's ±2.5ms
	// quartile band (generously doubled for CI noise).
	if rep.TimingError.P25 < -0.005 || rep.TimingError.P75 > 0.01 {
		t.Errorf("timing error quartiles = %+v", rep.TimingError)
	}
	if rep.ServerStats.Queries != 100 {
		t.Errorf("server queries = %d", rep.ServerStats.Queries)
	}
	if len(rep.SendRates) == 0 {
		t.Error("no send-rate series")
	}
}

func TestPlayerMutationToTCP(t *testing.T) {
	p := newPlayer(t, Config{
		EnableTCP:      true,
		Mutations:      []mutate.Mutation{mutate.SetProtocol(trace.TCP)},
		MatchResponses: true,
	})
	rep, err := p.Replay(context.Background(), synTrace(t, 2*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 100 || rep.Responses != 100 {
		t.Errorf("stats = %+v", rep.Stats)
	}
	if rep.ConnsOpened == 0 || rep.ConnsOpened > 20 {
		t.Errorf("conns opened = %d, want ~#sources", rep.ConnsOpened)
	}
	if got := p.Server.TotalTCPConns(); got != rep.ConnsOpened {
		t.Errorf("server conns %d != client conns %d", got, rep.ConnsOpened)
	}
}

func TestPlayerTLS(t *testing.T) {
	p := newPlayer(t, Config{
		EnableTLS: true,
		Mutations: []mutate.Mutation{mutate.SetProtocol(trace.TLS)},
	})
	rep, err := p.Replay(context.Background(), synTrace(t, 4*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 50 || rep.Responses != 50 {
		t.Errorf("stats = %+v", rep.Stats)
	}
}

func TestPlayerInterArrivalSeries(t *testing.T) {
	p := newPlayer(t, Config{})
	rep, err := p.Replay(context.Background(), synTrace(t, 10*time.Millisecond, 400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SendInterArrivals) != int(rep.Sent)-1 {
		t.Fatalf("gaps = %d", len(rep.SendInterArrivals))
	}
}
