// Package core is LDplayer's top-level orchestration (Figure 1): it wires
// zones into a meta-DNS-server, stands up the distributed query engine
// against it, threads an optional mutation pipeline into the input, and
// collects the measurements the evaluation relies on — per-query timing
// error, send rates, response latency, and server-side statistics.
package core

import (
	"context"
	"sync"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/metrics"
	"ldplayer/internal/mutate"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

// Config assembles a Player.
type Config struct {
	// Zones are served through a default (match-all) view; use Views for
	// split-horizon hierarchy emulation.
	Zones []*zone.Zone
	// Views configure split-horizon service (§2.4).
	Views []*authserver.View

	// EnableTCP and EnableTLS add the respective listeners; UDP is
	// always on.
	EnableTCP bool
	EnableTLS bool
	// ServerIdleTimeout is the server-side connection timeout.
	ServerIdleTimeout time.Duration

	// Engine carries the replay-engine knobs (distributors, queriers,
	// idle timeout, fast mode). Targets and TLS material are filled in by
	// Start.
	Engine replay.Config

	// Mutations transform the input stream before replay (§2.5).
	Mutations []mutate.Mutation

	// MatchResponses records per-query latency by matching the unique
	// query name in each response (the §4.2 technique). Requires the
	// trace (or a PrependUnique mutation) to make names unique.
	MatchResponses bool
}

// Player owns a running server and replay engine.
type Player struct {
	cfg    Config
	Server *authserver.Server
	engine *replay.Engine

	latency *metrics.LatencyRecorder
}

// Report summarizes one replay run.
type Report struct {
	replay.Stats
	// TimingError summarizes per-query scheduling error in seconds
	// (Figure 6's quantity).
	TimingError metrics.Summary
	// SendInterArrivals are the observed gaps between consecutive sends
	// in seconds (Figure 7's replayed series).
	SendInterArrivals []float64
	// SendRates are per-second send counts (Figure 8's replayed series).
	SendRates []float64
	// Latency summarizes matched query→response latency in seconds.
	Latency metrics.Summary
	// ServerStats snapshots the authoritative engine's counters.
	ServerStats authserver.Stats
}

// New builds a Player. Call Start before Replay and Close afterwards.
func New(cfg Config) (*Player, error) {
	engine := authserver.NewEngine()
	for _, v := range cfg.Views {
		if err := engine.AddView(v); err != nil {
			return nil, err
		}
	}
	if len(cfg.Zones) > 0 {
		if err := engine.AddView(&authserver.View{Name: "default", Zones: cfg.Zones}); err != nil {
			return nil, err
		}
	}
	if cfg.ServerIdleTimeout <= 0 {
		cfg.ServerIdleTimeout = authserver.DefaultIdleTimeout
	}
	p := &Player{
		cfg:    cfg,
		Server: &authserver.Server{Engine: engine, IdleTimeout: cfg.ServerIdleTimeout},
	}
	return p, nil
}

// Start binds the server listeners on loopback and configures the replay
// engine's targets.
func (p *Player) Start() error {
	tcpAddr, tlsAddr := "", ""
	if p.cfg.EnableTCP {
		tcpAddr = "127.0.0.1:0"
	}
	if p.cfg.EnableTLS {
		serverTLS, clientTLS, err := authserver.SelfSignedTLSConfig("127.0.0.1")
		if err != nil {
			return err
		}
		p.Server.TLSConfig = serverTLS
		p.cfg.Engine.TLSConfig = clientTLS
		tlsAddr = "127.0.0.1:0"
	}
	if err := p.Server.Start("127.0.0.1:0", tcpAddr, tlsAddr); err != nil {
		return err
	}
	p.cfg.Engine.UDPTarget = p.Server.UDPAddr().String()
	if p.cfg.EnableTCP {
		p.cfg.Engine.TCPTarget = p.Server.TCPAddr().String()
	}
	if p.cfg.EnableTLS {
		p.cfg.Engine.TLSTarget = p.Server.TLSAddr().String()
	}
	return nil
}

// Close shuts the server down.
func (p *Player) Close() {
	if p.Server != nil {
		p.Server.Close()
	}
}

// Replay runs r through the mutation pipeline and the query engine and
// returns the measurement report.
func (p *Player) Replay(ctx context.Context, r trace.Reader) (*Report, error) {
	var (
		mu        sync.Mutex
		schedErrs []float64
		sendTimes []time.Time
	)
	rates := metrics.NewRateCounter(time.Second)
	p.latency = metrics.NewLatencyRecorder()

	cfg := p.cfg.Engine
	userOnSend, userOnResponse := cfg.OnSend, cfg.OnResponse
	cfg.OnSend = func(e *trace.Entry, at time.Time, schedErr time.Duration) {
		mu.Lock()
		schedErrs = append(schedErrs, schedErr.Seconds())
		sendTimes = append(sendTimes, at)
		mu.Unlock()
		rates.Add(at)
		if p.cfg.MatchResponses {
			if key, ok := qnameOf(e.Message); ok {
				p.latency.Send(key, at)
			}
		}
		if userOnSend != nil {
			userOnSend(e, at, schedErr)
		}
	}
	cfg.OnResponse = func(msg []byte, at time.Time) {
		if p.cfg.MatchResponses {
			if key, ok := qnameOf(msg); ok {
				p.latency.Recv(key, at)
			}
		}
		if userOnResponse != nil {
			userOnResponse(msg, at)
		}
	}
	engine, err := replay.New(cfg)
	if err != nil {
		return nil, err
	}
	p.engine = engine

	input := r
	if len(p.cfg.Mutations) > 0 {
		input = mutate.NewPipeline(p.cfg.Mutations...).Reader(r)
	}
	stats, err := engine.Replay(ctx, input)
	if err != nil {
		return nil, err
	}

	mu.Lock()
	defer mu.Unlock()
	var gaps []float64
	for i := 1; i < len(sendTimes); i++ {
		gaps = append(gaps, sendTimes[i].Sub(sendTimes[i-1]).Seconds())
	}
	return &Report{
		Stats:             *stats,
		TimingError:       metrics.Summarize(schedErrs),
		SendInterArrivals: gaps,
		SendRates:         rates.Rates(),
		Latency:           metrics.Summarize(p.latency.Latencies()),
		ServerStats:       p.Server.Engine.Stats(),
	}, nil
}

// qnameOf extracts the first question name from a wire message without a
// full unpack (hot path: called per send and per response).
func qnameOf(msg []byte) (string, bool) {
	var m dnswire.Message
	if err := m.Unpack(msg); err != nil || len(m.Question) == 0 {
		return "", false
	}
	return m.Question[0].Name, true
}
