// Package resolver implements an iterative (recursive-mode) DNS resolver:
// the "Recursive Server" box of Figure 1. Given a cold cache it walks the
// emulated hierarchy — root, TLD, SLD — issuing one query per level
// exactly like a production resolver, which is what makes replayed
// recursive traces exercise every level of the meta-DNS-server. With a
// warm cache it answers from memory, reproducing the cache interplay that
// makes naive trace replay incomplete (§2.3).
package resolver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
	"ldplayer/internal/vclock"
)

// Exchanger performs one query/response exchange with a nameserver. Both
// the netsim transport and a live UDP transport implement it.
type Exchanger interface {
	Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error)
}

// Config configures a Resolver.
type Config struct {
	// Roots are the root nameserver addresses (priming data).
	Roots []netip.Addr
	// Exchanger performs network exchanges.
	Exchanger Exchanger
	// MaxIterations bounds referral chasing per query (default 16).
	MaxIterations int
	// MaxCNAME bounds cross-zone CNAME restarts (default 8).
	MaxCNAME int
	// QueryTimeout bounds a whole exchange with one server, across all
	// its attempts (default 2s).
	QueryTimeout time.Duration
	// AttemptsPerServer is how many times one exchange retries a server
	// with exponentially growing per-attempt timeouts before failing the
	// exchange — at which point the resolve loop fails over to the next
	// server of the NS set. Default 2.
	AttemptsPerServer int
	// AttemptTimeout bounds the first attempt; each retry doubles it
	// (capped by QueryTimeout overall). Default QueryTimeout divided by
	// AttemptsPerServer.
	AttemptTimeout time.Duration
	// Clock drives the query and per-attempt timeouts. Nil means the real
	// clock (production unchanged); a vclock.SimClock lets retry and
	// failover behaviour play out in simulated time.
	Clock vclock.Clock
	// Now supplies time (for cache TTLs); defaults to Clock.Now.
	Now func() time.Time
	// Rand selects among equivalent nameservers; defaults to a private
	// source. Deterministic tests inject their own.
	Rand *rand.Rand
}

// Resolver is an iterative resolver with a shared cache. It is safe for
// concurrent use.
type Resolver struct {
	cfg   Config
	cache *Cache

	mu  sync.Mutex
	rng *rand.Rand

	queriesSent int64

	// retries counts attempts re-sent to the same server after a
	// per-attempt timeout; giveups counts exchanges abandoned after every
	// attempt failed (each giveup triggers next-server failover in the
	// resolve loop).
	retries atomic.Int64
	giveups atomic.Int64

	// depth, when instrumented, records the upstream exchange count of
	// each top-level resolution (0 = pure cache hit), so the histogram's
	// mass at zero IS the cache hit ratio and its tail shows how deep
	// iteration walks the hierarchy.
	depth atomic.Pointer[obs.Histogram]
}

// Instrument registers the resolver's cache and iteration metrics with
// reg. Reads happen at scrape time via function metrics.
func (r *Resolver) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("resolver_cache_hits_total", "", "cache lookups answered from memory", func() int64 {
		h, _ := r.cache.HitsMisses()
		return h
	})
	reg.CounterFunc("resolver_cache_misses_total", "", "cache lookups that went upstream", func() int64 {
		_, m := r.cache.HitsMisses()
		return m
	})
	reg.CounterFunc("resolver_queries_sent_total", "", "upstream queries issued", r.QueriesSent)
	reg.CounterFunc("resolver_retries_total", "", "per-attempt timeouts retried against the same server", r.retries.Load)
	reg.CounterFunc("resolver_giveups_total", "", "exchanges abandoned after all attempts (next-server failover)", r.giveups.Load)
	reg.GaugeFunc("resolver_cache_entries", "", "live RRset cache entries", func() int64 {
		return int64(r.cache.Len())
	})
	r.depth.Store(reg.Histogram("resolver_iteration_depth", "", "upstream exchanges per resolution"))
}

// Answer is the result of a resolution.
type Answer struct {
	Rcode   dnswire.Rcode
	Records []dnswire.RR
	// Upstream counts the network exchanges this resolution needed
	// (0 = pure cache hit).
	Upstream int
}

// Errors returned by Resolve.
var (
	ErrNoServers     = errors.New("resolver: no nameservers to contact")
	ErrIterationLoop = errors.New("resolver: too many referrals")
	ErrCNAMEChain    = errors.New("resolver: CNAME chain too long")
)

// New creates a Resolver.
func New(cfg Config) (*Resolver, error) {
	if len(cfg.Roots) == 0 {
		return nil, errors.New("resolver: no root servers configured")
	}
	if cfg.Exchanger == nil {
		return nil, errors.New("resolver: no exchanger configured")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 16
	}
	if cfg.MaxCNAME <= 0 {
		cfg.MaxCNAME = 8
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 2 * time.Second
	}
	if cfg.AttemptsPerServer <= 0 {
		cfg.AttemptsPerServer = 2
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = cfg.QueryTimeout / time.Duration(cfg.AttemptsPerServer)
	}
	cfg.Clock = vclock.Or(cfg.Clock)
	if cfg.Now == nil {
		cfg.Now = cfg.Clock.Now
	}
	rng := cfg.Rand
	if rng == nil {
		// Seed off the injected clock: identical wiring under the real
		// clock, a fixed (reproducible) seed under a SimClock epoch.
		rng = rand.New(rand.NewSource(cfg.Clock.Now().UnixNano()))
	}
	return &Resolver{cfg: cfg, cache: NewCache(), rng: rng}, nil
}

// Cache exposes the resolver's cache (for flushing between experiments
// and inspecting hit rates).
func (r *Resolver) Cache() *Cache { return r.cache }

// QueriesSent returns the number of upstream queries issued.
func (r *Resolver) QueriesSent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queriesSent
}

// Retries returns the number of per-attempt timeouts retried against the
// same server.
func (r *Resolver) Retries() int64 { return r.retries.Load() }

// Giveups returns the number of exchanges abandoned after every attempt
// failed.
func (r *Resolver) Giveups() int64 { return r.giveups.Load() }

// Resolve answers (name, type) iteratively.
func (r *Resolver) Resolve(ctx context.Context, name string, qtype dnswire.Type) (*Answer, error) {
	st := &resolveState{gluelessBudget: 4}
	ans, err := r.resolveWith(ctx, st, dnswire.CanonicalName(name), qtype, 0)
	if ans != nil && err == nil {
		if h := r.depth.Load(); h != nil {
			h.Record(int64(ans.Upstream))
		}
	}
	return ans, err
}

// resolveState carries per-resolution bookkeeping across recursive calls:
// the glueless budget bounds how many NS-address side-quests one query may
// trigger, so broken delegations cannot recurse forever.
type resolveState struct {
	gluelessBudget int
	upstream       int
}

func (r *Resolver) resolveWith(ctx context.Context, st *resolveState, qname string, qtype dnswire.Type, cnameDepth int) (*Answer, error) {
	if cnameDepth > r.cfg.MaxCNAME {
		return nil, ErrCNAMEChain
	}
	now := r.cfg.Now()
	ans := &Answer{}

	// Cache first.
	if rrs, neg, ok := r.cache.Get(qname, qtype, now); ok {
		if neg {
			ans.Rcode = dnswire.RcodeNXDomain
			return ans, nil
		}
		ans.Records = rrs
		return ans, nil
	}
	// A cached CNAME redirects even when the target type missed.
	if rrs, neg, ok := r.cache.Get(qname, dnswire.TypeCNAME, now); ok && !neg && len(rrs) > 0 && qtype != dnswire.TypeCNAME {
		target := rrs[0].Data.(dnswire.CNAME).Target
		sub, err := r.resolveWith(ctx, st, target, qtype, cnameDepth+1)
		if err != nil {
			return nil, err
		}
		sub.Records = append(append([]dnswire.RR(nil), rrs...), sub.Records...)
		return sub, nil
	}

	// Find the deepest known delegation to start from.
	zoneName, nsSet := r.cache.bestNS(qname, now)
	var servers []netip.AddrPort
	if nsSet != nil {
		servers = r.serverAddrs(nsSet, now)
	}
	if len(servers) == 0 {
		zoneName = "."
		for _, a := range r.cfg.Roots {
			servers = append(servers, netip.AddrPortFrom(a, 53))
		}
	}
	_ = zoneName

	for iter := 0; iter < r.cfg.MaxIterations; iter++ {
		if len(servers) == 0 {
			return nil, ErrNoServers
		}
		server := servers[r.intn(len(servers))]
		resp, err := r.exchange(ctx, server, qname, qtype)
		if err != nil {
			// Try another server once; a real resolver rotates through
			// the NS set on timeouts.
			servers = removeServer(servers, server)
			continue
		}
		ans.Upstream++

		switch classify(resp, qname, qtype) {
		case kindAnswer:
			rrs := answerRecords(resp, qname, qtype)
			r.cacheResponse(resp, now)
			// Handle a CNAME that needs cross-zone chasing: if the final
			// record is a CNAME whose target wasn't answered, restart.
			if last, target := trailingCNAME(rrs, qtype); last {
				sub, err := r.resolveWith(ctx, st, target, qtype, cnameDepth+1)
				if err != nil {
					return nil, err
				}
				ans.Rcode = sub.Rcode
				ans.Records = append(rrs, sub.Records...)
				ans.Upstream += sub.Upstream
				return ans, nil
			}
			ans.Records = rrs
			return ans, nil
		case kindNXDomain:
			r.cacheNegative(resp, qname, qtype, now)
			ans.Rcode = dnswire.RcodeNXDomain
			ans.Records = nil
			return ans, nil
		case kindNoData:
			r.cacheNegative(resp, qname, qtype, now)
			ans.Rcode = dnswire.RcodeNoError
			return ans, nil
		case kindReferral:
			r.cacheResponse(resp, now)
			next := r.referralServers(ctx, st, resp, now)
			if len(next) == 0 {
				return nil, ErrNoServers
			}
			servers = next
		default: // lame or error response: drop this server
			servers = removeServer(servers, server)
		}
	}
	return nil, ErrIterationLoop
}

func (r *Resolver) intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Intn(n)
}

// exchange performs one query/response exchange with server: up to
// AttemptsPerServer attempts, each bounded by an exponentially growing
// per-attempt timeout, the whole exchange bounded by QueryTimeout. When
// every attempt fails the caller (the resolve loop) rotates to the next
// server of the NS set — per-attempt timeout plus next-server failover,
// the way production resolvers survive lossy paths and dead servers.
func (r *Resolver) exchange(ctx context.Context, server netip.AddrPort, qname string, qtype dnswire.Type) (*dnswire.Message, error) {
	r.mu.Lock()
	id := uint16(r.rng.Intn(1 << 16))
	r.mu.Unlock()
	q := dnswire.NewQuery(id, qname, qtype)
	q.Header.RD = false // iterative
	ctx, cancel := vclock.WithTimeout(ctx, r.cfg.Clock, r.cfg.QueryTimeout)
	defer cancel()

	var lastErr error
	for attempt := 0; attempt < r.cfg.AttemptsPerServer; attempt++ {
		r.mu.Lock()
		r.queriesSent++
		r.mu.Unlock()
		actx, acancel := vclock.WithTimeout(ctx, r.cfg.Clock, r.cfg.AttemptTimeout<<attempt)
		resp, err := r.cfg.Exchanger.Exchange(actx, server, q)
		acancel()
		if err == nil {
			if resp.Header.ID != id {
				return nil, fmt.Errorf("resolver: response ID mismatch")
			}
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // whole-exchange deadline or parent cancellation
		}
		if attempt+1 < r.cfg.AttemptsPerServer {
			r.retries.Add(1)
		}
	}
	r.giveups.Add(1)
	return nil, lastErr
}

// responseKind classifies an upstream response.
type responseKind int

const (
	kindAnswer responseKind = iota
	kindReferral
	kindNXDomain
	kindNoData
	kindLame
)

func classify(resp *dnswire.Message, qname string, qtype dnswire.Type) responseKind {
	switch {
	case resp.Header.Rcode == dnswire.RcodeNXDomain:
		return kindNXDomain
	case resp.Header.Rcode != dnswire.RcodeNoError:
		return kindLame
	case len(resp.Answer) > 0:
		return kindAnswer
	case !resp.Header.AA && hasNS(resp.Authority):
		return kindReferral
	case resp.Header.AA:
		return kindNoData
	}
	return kindLame
}

func hasNS(rrs []dnswire.RR) bool {
	for _, rr := range rrs {
		if rr.Type() == dnswire.TypeNS {
			return true
		}
	}
	return false
}

// answerRecords extracts the relevant answer chain for (qname, qtype).
func answerRecords(resp *dnswire.Message, qname string, qtype dnswire.Type) []dnswire.RR {
	return append([]dnswire.RR(nil), resp.Answer...)
}

// trailingCNAME reports whether the answer ends in an unchased CNAME and
// returns its target.
func trailingCNAME(rrs []dnswire.RR, qtype dnswire.Type) (bool, string) {
	if qtype == dnswire.TypeCNAME || len(rrs) == 0 {
		return false, ""
	}
	last := rrs[len(rrs)-1]
	if last.Type() != dnswire.TypeCNAME {
		return false, ""
	}
	return true, last.Data.(dnswire.CNAME).Target
}

// cacheResponse stores every RRset from all sections.
func (r *Resolver) cacheResponse(resp *dnswire.Message, now time.Time) {
	for _, sec := range [][]dnswire.RR{resp.Answer, resp.Authority, resp.Additional} {
		bySet := make(map[cacheKey][]dnswire.RR)
		for _, rr := range sec {
			k := cacheKey{dnswire.CanonicalName(rr.Name), rr.Type()}
			bySet[k] = append(bySet[k], rr)
		}
		for k, rrs := range bySet {
			r.cache.Put(k.name, k.typ, rrs, now)
		}
	}
}

// cacheNegative stores an NXDOMAIN/NODATA for the SOA minimum TTL.
func (r *Resolver) cacheNegative(resp *dnswire.Message, qname string, qtype dnswire.Type, now time.Time) {
	ttl := uint32(60)
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			ttl = soa.Minimum
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
			break
		}
	}
	r.cache.PutNegative(qname, qtype, ttl, now)
}

// referralServers resolves the delegation NS set in resp to addresses,
// using glue when present and recursing (bounded) when not.
func (r *Resolver) referralServers(ctx context.Context, st *resolveState, resp *dnswire.Message, now time.Time) []netip.AddrPort {
	var nsSet []dnswire.RR
	for _, rr := range resp.Authority {
		if rr.Type() == dnswire.TypeNS {
			nsSet = append(nsSet, rr)
		}
	}
	out := r.serverAddrs(nsSet, now)
	if len(out) > 0 {
		return out
	}
	// Glueless delegation: resolve the nameserver addresses themselves,
	// within the per-query side-quest budget.
	for _, rr := range nsSet {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok || st.gluelessBudget <= 0 {
			continue
		}
		st.gluelessBudget--
		sub, err := r.resolveWith(ctx, st, ns.Host, dnswire.TypeA, 0)
		if err != nil || sub.Rcode != dnswire.RcodeNoError {
			continue
		}
		for _, a := range sub.Records {
			if v, ok := a.Data.(dnswire.A); ok {
				out = append(out, netip.AddrPortFrom(v.Addr, 53))
			}
		}
		if len(out) > 0 {
			break
		}
	}
	return out
}

// serverAddrs maps NS records to addresses via the cache.
func (r *Resolver) serverAddrs(nsSet []dnswire.RR, now time.Time) []netip.AddrPort {
	var out []netip.AddrPort
	for _, rr := range nsSet {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		if rrs, neg, ok := r.cache.Get(ns.Host, dnswire.TypeA, now); ok && !neg {
			for _, a := range rrs {
				if v, ok := a.Data.(dnswire.A); ok {
					out = append(out, netip.AddrPortFrom(v.Addr, 53))
				}
			}
		}
		if rrs, neg, ok := r.cache.Get(ns.Host, dnswire.TypeAAAA, now); ok && !neg {
			for _, a := range rrs {
				if v, ok := a.Data.(dnswire.AAAA); ok {
					out = append(out, netip.AddrPortFrom(v.Addr, 53))
				}
			}
		}
	}
	return out
}

func removeServer(servers []netip.AddrPort, s netip.AddrPort) []netip.AddrPort {
	out := servers[:0]
	for _, v := range servers {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
