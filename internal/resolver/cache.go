package resolver

import (
	"sync"
	"time"

	"ldplayer/internal/dnswire"
)

// cacheKey identifies a cached RRset.
type cacheKey struct {
	name string
	typ  dnswire.Type
}

// cacheEntry is a cached RRset with its expiry.
type cacheEntry struct {
	rrs      []dnswire.RR
	expires  time.Time
	negative bool // cached nonexistence (NXDOMAIN/NODATA)
}

// Cache is a TTL-respecting RRset cache. It doubles as the infrastructure
// cache: NS RRsets and nameserver addresses live in the same store, which
// is what lets a warm resolver skip upper levels of the hierarchy — the
// caching interplay the paper's experiments depend on.
type Cache struct {
	mu      sync.RWMutex
	entries map[cacheKey]cacheEntry

	hits   int64
	misses int64
}

// NewCache creates an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]cacheEntry)}
}

// Put stores an RRset under (name, type) for the minimum TTL in the set.
func (c *Cache) Put(name string, t dnswire.Type, rrs []dnswire.RR, now time.Time) {
	if len(rrs) == 0 {
		return
	}
	ttl := rrs[0].TTL
	for _, rr := range rrs[1:] {
		if rr.TTL < ttl {
			ttl = rr.TTL
		}
	}
	c.mu.Lock()
	c.entries[cacheKey{dnswire.CanonicalName(name), t}] = cacheEntry{
		rrs:     append([]dnswire.RR(nil), rrs...),
		expires: now.Add(time.Duration(ttl) * time.Second),
	}
	c.mu.Unlock()
}

// PutNegative records the nonexistence of (name, type) for ttl seconds.
func (c *Cache) PutNegative(name string, t dnswire.Type, ttl uint32, now time.Time) {
	c.mu.Lock()
	c.entries[cacheKey{dnswire.CanonicalName(name), t}] = cacheEntry{
		negative: true,
		expires:  now.Add(time.Duration(ttl) * time.Second),
	}
	c.mu.Unlock()
}

// Get returns the cached RRset and whether the hit was negative. ok is
// false on miss or expiry.
func (c *Cache) Get(name string, t dnswire.Type, now time.Time) (rrs []dnswire.RR, negative, ok bool) {
	key := cacheKey{dnswire.CanonicalName(name), t}
	c.mu.RLock()
	e, found := c.entries[key]
	c.mu.RUnlock()
	if !found || now.After(e.expires) {
		c.mu.Lock()
		if found {
			delete(c.entries, key)
		}
		c.misses++
		c.mu.Unlock()
		return nil, false, false
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return e.rrs, e.negative, true
}

// Len returns the number of live entries (including expired ones not yet
// evicted).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Flush empties the cache (cold-cache experiment resets).
func (c *Cache) Flush() {
	c.mu.Lock()
	c.entries = make(map[cacheKey]cacheEntry)
	c.mu.Unlock()
}

// HitsMisses returns the hit and miss counters.
func (c *Cache) HitsMisses() (hits, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// bestNS walks qname toward the root and returns the deepest cached NS
// RRset, giving the starting point for iteration.
func (c *Cache) bestNS(qname string, now time.Time) (zoneName string, ns []dnswire.RR) {
	name := dnswire.CanonicalName(qname)
	for {
		if rrs, neg, ok := c.Get(name, dnswire.TypeNS, now); ok && !neg && len(rrs) > 0 {
			return name, rrs
		}
		if name == "." {
			return "", nil
		}
		name = dnswire.ParentName(name)
	}
}
