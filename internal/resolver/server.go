package resolver

import (
	"context"
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/dnswire"
)

// Server exposes a Resolver as a recursive DNS server over UDP — the
// "Recursive Server" box of Figure 1 that recursive-trace replay targets.
// Stub queries arrive with RD set; the server resolves them iteratively
// through the emulated hierarchy (walking root → TLD → SLD on a cold
// cache) and answers with RA set.
type Server struct {
	Resolver *Resolver
	// Timeout bounds one recursive resolution (default 5 s).
	Timeout time.Duration
	// Workers is the handler pool size (default 8): one slow resolution
	// must not head-of-line block the rest.
	Workers int

	conn   *net.UDPConn
	wg     sync.WaitGroup
	closed atomic.Bool

	queries  atomic.Int64
	failures atomic.Int64
}

// Start binds the server to addr ("127.0.0.1:0" forms allowed).
func (s *Server) Start(addr string) error {
	if s.Resolver == nil {
		return errors.New("resolver: Server.Resolver is nil")
	}
	if s.Timeout <= 0 {
		s.Timeout = 5 * time.Second
	}
	if s.Workers <= 0 {
		s.Workers = 8
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	if s.conn, err = net.ListenUDP("udp", uaddr); err != nil {
		return err
	}
	// One reader fans queries out to a worker pool over a channel; the
	// workers resolve and respond.
	type job struct {
		query []byte
		from  netip.AddrPort
	}
	jobs := make(chan job, 256)
	for i := 0; i < s.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range jobs {
				s.handle(j.query, j.from)
			}
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(jobs)
		buf := make([]byte, 64*1024)
		for {
			n, from, err := s.conn.ReadFromUDPAddrPort(buf)
			if err != nil {
				return // closed
			}
			q := make([]byte, n)
			copy(q, buf[:n])
			select {
			case jobs <- job{query: q, from: from}:
			default:
				// Pool saturated: drop, like a real resolver under DoS.
			}
		}
	}()
	return nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr {
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr().(*net.UDPAddr)
}

// Queries returns the number of stub queries handled.
func (s *Server) Queries() int64 { return s.queries.Load() }

// Failures returns the number of resolutions that ended in SERVFAIL.
func (s *Server) Failures() int64 { return s.failures.Load() }

// Close shuts the server down and waits for in-flight resolutions.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.conn != nil {
		s.conn.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(query []byte, from netip.AddrPort) {
	var q dnswire.Message
	if err := q.Unpack(query); err != nil || q.Header.QR || len(q.Question) != 1 {
		return // undecodable stub queries are dropped, like BIND's formerr path
	}
	s.queries.Add(1)
	resp := dnswire.ResponseTo(&q)
	resp.Header.RA = true

	ctx, cancel := context.WithTimeout(context.Background(), s.Timeout)
	ans, err := s.Resolver.Resolve(ctx, q.Question[0].Name, q.Question[0].Type)
	cancel()
	switch {
	case err != nil:
		s.failures.Add(1)
		resp.Header.Rcode = dnswire.RcodeServFail
	default:
		resp.Header.Rcode = ans.Rcode
		resp.Answer = ans.Records
	}
	wire, err := resp.Pack(nil)
	if err != nil {
		return
	}
	_, _ = s.conn.WriteToUDPAddrPort(wire, from)
}
