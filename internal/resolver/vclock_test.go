package resolver

import (
	"context"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/vclock"
)

// Virtual-time retry tests: the resolver's per-attempt and whole-query
// timeouts run on an injected SimClock, so seconds of exponential
// backoff play out in microseconds of wall time and the elapsed virtual
// time is exactly the sum of the configured timeouts — an assertion
// real-clock tests can only approximate with slack.

// timeoutThenAnswerExchanger burns the first `fails` attempts by
// sleeping virtual time until the per-attempt context expires, then
// answers immediately. The sleep is a coarse poll on the SimClock so
// the exchanger stays inside the clock's idle barrier while it waits.
type timeoutThenAnswerExchanger struct {
	clk   *vclock.SimClock
	fails int
	mu    sync.Mutex
	calls int
}

func (e *timeoutThenAnswerExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	e.mu.Lock()
	e.calls++
	n := e.calls
	e.mu.Unlock()
	if n <= e.fails {
		for ctx.Err() == nil {
			e.clk.Sleep(10 * time.Millisecond)
		}
		return nil, ctx.Err()
	}
	resp := &dnswire.Message{
		Header:   dnswire.Header{ID: q.Header.ID, QR: true, AA: true},
		Question: q.Question,
		Answer: []dnswire.RR{{
			Name: q.Question[0].Name,
			TTL:  60,
			Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")},
		}},
	}
	return resp, nil
}

func (e *timeoutThenAnswerExchanger) callCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// TestResolverVirtualRetryBackoff times out the first two attempts of
// an exchange under a SimClock. The per-attempt timeouts are 1s then 2s
// (exponential), so the third attempt answers at exactly t=3s virtual —
// while the whole test runs in wall-clock milliseconds.
func TestResolverVirtualRetryBackoff(t *testing.T) {
	clk := vclock.NewSim(time.Time{})
	ex := &timeoutThenAnswerExchanger{clk: clk, fails: 2}
	r, err := New(Config{
		Roots:             []netip.Addr{netip.MustParseAddr("198.41.0.4")},
		Exchanger:         ex,
		Clock:             clk,
		QueryTimeout:      10 * time.Second,
		AttemptsPerServer: 3,
		AttemptTimeout:    time.Second,
		Rand:              rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}

	start := clk.Now()
	var ans *Answer
	var resolveErr error
	clk.Go(func() {
		ans, resolveErr = r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	})
	end := clk.Run()

	if resolveErr != nil {
		t.Fatal(resolveErr)
	}
	if len(ans.Records) != 1 || ans.Records[0].Data.String() != "192.0.2.1" {
		t.Fatalf("answer = %+v", ans)
	}
	if got := ex.callCount(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := r.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := r.Giveups(); got != 0 {
		t.Errorf("giveups = %d", got)
	}
	// Attempt 1 times out at 1s, attempt 2 at 1s+2s; attempt 3 answers
	// instantly. Virtual elapsed is exactly the backoff schedule.
	if elapsed := end.Sub(start); elapsed != 3*time.Second {
		t.Errorf("virtual elapsed = %v, want exactly 3s", elapsed)
	}
}

// TestResolverVirtualGiveup blackholes every attempt: the exchange must
// give up after the full backoff schedule (1s + 2s), return the
// attempt's deadline error, and leave the giveup counter at one per
// contacted server.
func TestResolverVirtualGiveup(t *testing.T) {
	clk := vclock.NewSim(time.Time{})
	ex := &timeoutThenAnswerExchanger{clk: clk, fails: 1 << 30}
	r, err := New(Config{
		Roots:             []netip.Addr{netip.MustParseAddr("198.41.0.4")},
		Exchanger:         ex,
		Clock:             clk,
		QueryTimeout:      10 * time.Second,
		AttemptsPerServer: 2,
		AttemptTimeout:    time.Second,
		Rand:              rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}

	start := clk.Now()
	var resolveErr error
	clk.Go(func() {
		_, resolveErr = r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	})
	end := clk.Run()

	if resolveErr == nil {
		t.Fatal("resolution through a blackholed exchanger succeeded")
	}
	if got := r.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := r.Giveups(); got != 1 {
		t.Errorf("giveups = %d, want 1", got)
	}
	if elapsed := end.Sub(start); elapsed != 3*time.Second {
		t.Errorf("virtual elapsed = %v, want exactly 3s (1s + 2s attempts)", elapsed)
	}
}
