package resolver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
)

// NetsimExchanger exchanges queries over a netsim node, emulating UDP
// sockets: each in-flight exchange owns an ephemeral source port and
// responses are demultiplexed by destination port.
type NetsimExchanger struct {
	node *netsim.Node
	addr netip.Addr

	mu       sync.Mutex
	nextPort uint16
	pending  map[uint16]chan netsim.Datagram
}

// NewNetsimExchanger wires an exchanger to node, sourcing traffic from
// addr (one of the node's addresses). It installs the node's handler.
func NewNetsimExchanger(node *netsim.Node, addr netip.Addr) *NetsimExchanger {
	e := &NetsimExchanger{
		node:     node,
		addr:     addr,
		nextPort: 32768,
		pending:  make(map[uint16]chan netsim.Datagram),
	}
	node.Handle(e.deliver)
	return e
}

func (e *NetsimExchanger) deliver(d netsim.Datagram) {
	e.mu.Lock()
	ch, ok := e.pending[d.Dst.Port()]
	e.mu.Unlock()
	if !ok {
		return // late or unsolicited response
	}
	select {
	case ch <- d:
	default:
	}
}

// Exchange implements Exchanger.
func (e *NetsimExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	ch := make(chan netsim.Datagram, 1)
	e.mu.Lock()
	port := e.nextPort
	e.nextPort++
	if e.nextPort < 1024 {
		e.nextPort = 32768
	}
	e.pending[port] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, port)
		e.mu.Unlock()
	}()

	e.node.Send(netsim.Datagram{
		Src:     netip.AddrPortFrom(e.addr, port),
		Dst:     server,
		Payload: wire,
	})
	select {
	case d := <-ch:
		if d.Src != server {
			return nil, fmt.Errorf("resolver: response from %v, queried %v", d.Src, server)
		}
		var resp dnswire.Message
		if err := resp.Unpack(d.Payload); err != nil {
			return nil, err
		}
		return &resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// UDPExchanger exchanges queries over real UDP sockets (live mode).
type UDPExchanger struct {
	// MaxSize is the receive buffer size; defaults to 64 KiB.
	MaxSize int
}

// Exchange implements Exchanger over a fresh UDP socket per query, the
// way a cold-path resolver query goes out.
func (e *UDPExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("udp", server.String())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	size := e.MaxSize
	if size <= 0 {
		size = 64 * 1024
	}
	buf := make([]byte, size)
	n, err := conn.Read(buf)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, context.DeadlineExceeded
		}
		return nil, err
	}
	var resp dnswire.Message
	if err := resp.Unpack(buf[:n]); err != nil {
		return nil, err
	}
	return &resp, nil
}
