package resolver

import (
	"context"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/proxy"
	"ldplayer/internal/zone"
)

// TestHierarchyEmulationEndToEnd wires the complete Figure 2 deployment in
// netsim: a recursive resolver whose port-53 egress is captured by the
// recursive proxy, a single meta-DNS-server node hosting root, com, org
// and example.com behind split-horizon views, and the authoritative proxy
// capturing its responses. A cold-cache resolution must walk all three
// hierarchy levels and produce the right answer, with zero leaked
// (dropped) packets.
func TestHierarchyEmulationEndToEnd(t *testing.T) {
	recAddr := netip.MustParseAddr("10.1.0.1")
	metaAddr := netip.MustParseAddr("10.2.0.1")

	n := netsim.New(0)
	defer n.Close()
	recNode, err := n.AddNode("recursive", recAddr)
	if err != nil {
		t.Fatal(err)
	}
	metaNode, err := n.AddNode("meta-dns", metaAddr)
	if err != nil {
		t.Fatal(err)
	}

	// Proxies: queries leaving the recursive go to the meta server;
	// responses leaving the meta server go back to the recursive.
	recProxy := proxy.Attach(recNode, n, proxy.CaptureQueries, metaAddr, proxy.Options{})
	defer recProxy.Close()
	authProxy := proxy.Attach(metaNode, n, proxy.CaptureResponses, recAddr, proxy.Options{})
	defer authProxy.Close()

	// The meta-DNS-server with the full view set.
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	engine := authserver.NewEngine()
	views := []*authserver.View{
		{Name: "root", Sources: []netip.Addr{rootNS}, Zones: []*zone.Zone{parse(rootText, ".")}},
		{Name: "com", Sources: []netip.Addr{comNS}, Zones: []*zone.Zone{parse(comText, "com.")}},
		{Name: "org", Sources: []netip.Addr{orgNS}, Zones: []*zone.Zone{parse(orgText, "org.")}},
		{Name: "example", Sources: []netip.Addr{exNS}, Zones: []*zone.Zone{parse(exText, "example.com."), parse(gluelessText, "glueless.com.")}},
	}
	for _, v := range views {
		if err := engine.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	authserver.AttachNetsim(engine, metaNode)

	// The resolver sends to *public* nameserver addresses; only the
	// proxies make that work inside the testbed.
	ex := NewNetsimExchanger(recNode, recAddr)
	r, err := New(Config{
		Roots:     []netip.Addr{rootNS},
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(42)),
	})
	if err != nil {
		t.Fatal(err)
	}

	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 1 || ans.Records[0].Data.String() != "192.0.2.80" {
		t.Errorf("answer = %+v", ans)
	}
	if ans.Upstream != 3 {
		t.Errorf("upstream = %d, want 3 (root, com, example)", ans.Upstream)
	}

	// Every query the resolver emitted crossed the recursive proxy; every
	// reply crossed the authoritative proxy; nothing leaked.
	if s := recProxy.Stats(); s.Captured != 3 {
		t.Errorf("recursive proxy captured %d, want 3", s.Captured)
	}
	if s := authProxy.Stats(); s.Captured != 3 {
		t.Errorf("authoritative proxy captured %d, want 3", s.Captured)
	}
	if n.Dropped() != 0 {
		t.Errorf("dropped (leaked) packets: %d", n.Dropped())
	}

	// A second, cross-zone resolution through the same plumbing.
	ans, err = r.Resolve(context.Background(), "alias.org.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	last := ans.Records[len(ans.Records)-1]
	if last.Data.String() != "192.0.2.80" {
		t.Errorf("cross-zone answer = %v", ans.Records)
	}
	// The org branch was cold (root referral + org query), but the CNAME
	// restart into example.com is answered entirely from cache.
	if ans.Upstream != 2 {
		t.Errorf("upstream = %d, want 2 (root + org; CNAME target cached)", ans.Upstream)
	}

	st := engine.Stats()
	if st.Queries != 5 {
		t.Errorf("meta server saw %d queries, want 5", st.Queries)
	}
}
