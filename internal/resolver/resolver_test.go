package resolver

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

var (
	rootNS = netip.MustParseAddr("198.41.0.4")
	comNS  = netip.MustParseAddr("192.5.6.30")
	orgNS  = netip.MustParseAddr("199.19.56.1")
	exNS   = netip.MustParseAddr("192.0.2.1")
)

const rootText = `
.	86400	IN	SOA	a.root-servers.net. nstld. 1 1800 900 604800 86400
.	518400	IN	NS	a.root-servers.net.
a.root-servers.net.	518400	IN	A	198.41.0.4
com.	172800	IN	NS	a.gtld-servers.net.
a.gtld-servers.net.	172800	IN	A	192.5.6.30
org.	172800	IN	NS	a0.org-servers.net.
a0.org-servers.net.	172800	IN	A	199.19.56.1
`

const comText = `
com.	900	IN	SOA	a.gtld-servers.net. nstld. 1 1800 900 604800 900
com.	172800	IN	NS	a.gtld-servers.net.
example.com.	172800	IN	NS	ns1.example.com.
ns1.example.com.	172800	IN	A	192.0.2.1
glueless.com.	172800	IN	NS	ns1.example.com.
`

const orgText = `
org.	900	IN	SOA	a0.org-servers.net. nstld. 1 1800 900 604800 900
org.	172800	IN	NS	a0.org-servers.net.
alias.org.	300	IN	CNAME	www.example.com.
`

const exText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
www.example.com.	300	IN	A	192.0.2.80
`

// gluelessText is a second zone hosted by the same nameserver as
// example.com (one server, many zones — the view carries both).
const gluelessText = `
glueless.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
glueless.com.	3600	IN	NS	ns1.example.com.
web.glueless.com.	60	IN	A	192.0.2.90
`

// engineExchanger answers exchanges from an authserver.Engine, passing the
// *queried server address* as the split-horizon source — precisely the
// transformation the proxies perform on the wire.
type engineExchanger struct {
	engine *authserver.Engine

	mu    sync.Mutex
	calls []netip.Addr
	fail  map[netip.Addr]bool
}

func (e *engineExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	e.mu.Lock()
	e.calls = append(e.calls, server.Addr())
	failed := e.fail[server.Addr()]
	e.mu.Unlock()
	if failed {
		return nil, errors.New("server unreachable")
	}
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	out, err := e.engine.Respond(wire, server.Addr(), authserver.UDP)
	if err != nil {
		return nil, err
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (e *engineExchanger) callCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.calls)
}

func buildHierarchy(t *testing.T) *engineExchanger {
	t.Helper()
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	e := authserver.NewEngine()
	views := []*authserver.View{
		{Name: "root", Sources: []netip.Addr{rootNS}, Zones: []*zone.Zone{parse(rootText, ".")}},
		{Name: "com", Sources: []netip.Addr{comNS}, Zones: []*zone.Zone{parse(comText, "com.")}},
		{Name: "org", Sources: []netip.Addr{orgNS}, Zones: []*zone.Zone{parse(orgText, "org.")}},
		{Name: "example", Sources: []netip.Addr{exNS}, Zones: []*zone.Zone{parse(exText, "example.com."), parse(gluelessText, "glueless.com.")}},
	}
	for _, v := range views {
		if err := e.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	return &engineExchanger{engine: e, fail: make(map[netip.Addr]bool)}
}

func newResolver(t *testing.T, ex Exchanger, now func() time.Time) *Resolver {
	t.Helper()
	r, err := New(Config{
		Roots:     []netip.Addr{rootNS},
		Exchanger: ex,
		Now:       now,
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestColdCacheWalksHierarchy(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rcode != dnswire.RcodeNoError || len(ans.Records) != 1 {
		t.Fatalf("answer = %+v", ans)
	}
	if ans.Records[0].Data.String() != "192.0.2.80" {
		t.Errorf("records = %v", ans.Records)
	}
	// Cold cache must touch exactly root -> com -> example.
	if ans.Upstream != 3 {
		t.Errorf("upstream = %d, want 3", ans.Upstream)
	}
	want := []netip.Addr{rootNS, comNS, exNS}
	for i, a := range ex.calls {
		if a != want[i] {
			t.Errorf("call %d went to %v, want %v", i, a, want[i])
		}
	}
}

func TestWarmCacheAnswersLocally(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	if _, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	before := ex.callCount()
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Upstream != 0 {
		t.Errorf("warm resolve used %d upstream queries", ans.Upstream)
	}
	if ex.callCount() != before {
		t.Errorf("warm resolve hit the network")
	}
}

func TestWarmCacheSkipsUpperHierarchy(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	if _, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	ex.mu.Lock()
	ex.calls = nil
	ex.mu.Unlock()
	// A sibling name in the same zone: the cached example.com. NS set
	// means only the example server is contacted, not root or com.
	ans, err := r.Resolve(context.Background(), "ns1.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Upstream != 0 {
		// ns1 A came as glue, so it may be answered entirely from cache.
		for _, a := range ex.calls {
			if a == rootNS || a == comNS {
				t.Errorf("warm resolver contacted upper hierarchy: %v", ex.calls)
			}
		}
	}
}

func TestNXDomainAndNegativeCache(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	ans, err := r.Resolve(context.Background(), "missing.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("rcode = %v", ans.Rcode)
	}
	before := ex.callCount()
	ans, err = r.Resolve(context.Background(), "missing.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rcode != dnswire.RcodeNXDomain || ex.callCount() != before {
		t.Errorf("negative cache miss: rcode=%v calls %d->%d", ans.Rcode, before, ex.callCount())
	}
}

func TestCrossZoneCNAME(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	ans, err := r.Resolve(context.Background(), "alias.org.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) < 2 {
		t.Fatalf("records = %v", ans.Records)
	}
	if ans.Records[0].Type() != dnswire.TypeCNAME {
		t.Errorf("first record = %v", ans.Records[0])
	}
	last := ans.Records[len(ans.Records)-1]
	if last.Type() != dnswire.TypeA || last.Data.String() != "192.0.2.80" {
		t.Errorf("last record = %v", last)
	}
}

func TestGluelessDelegation(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	// glueless.com. is delegated to ns1.example.com with no glue in com.
	ans, err := r.Resolve(context.Background(), "web.glueless.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 1 || ans.Records[0].Data.String() != "192.0.2.90" {
		t.Errorf("records = %v", ans.Records)
	}
}

func TestTTLExpiryForcesRefetch(t *testing.T) {
	ex := buildHierarchy(t)
	current := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return current
	}
	r := newResolver(t, ex, now)
	if _, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	// Advance beyond the 300 s answer TTL but below the NS TTLs.
	mu.Lock()
	current = current.Add(10 * time.Minute)
	mu.Unlock()
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Upstream == 0 {
		t.Error("expired answer served from cache")
	}
	if ans.Upstream != 1 {
		t.Errorf("refetch used %d queries; cached NS should limit it to 1", ans.Upstream)
	}
}

func TestServerFailureRotation(t *testing.T) {
	ex := buildHierarchy(t)
	// Two roots; the first is dead.
	deadRoot := netip.MustParseAddr("198.41.0.5")
	ex.fail[deadRoot] = true
	r, err := New(Config{
		Roots:     []netip.Addr{deadRoot, rootNS},
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(3)), // seed chosen to hit the dead root first
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 1 {
		t.Errorf("records = %v", ans.Records)
	}
}

func TestResolveTypeMismatchNoData(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rcode != dnswire.RcodeNoError || len(ans.Records) != 0 {
		t.Errorf("NODATA answer = %+v", ans)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache()
	now := time.Unix(0, 0)
	rr := dnswire.RR{Name: "x.example.", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.7")}}
	c.Put("x.example.", dnswire.TypeA, []dnswire.RR{rr}, now)
	if got, _, ok := c.Get("X.EXAMPLE.", dnswire.TypeA, now.Add(59*time.Second)); !ok || len(got) != 1 {
		t.Error("cache miss before expiry (case-insensitive)")
	}
	if _, _, ok := c.Get("x.example.", dnswire.TypeA, now.Add(61*time.Second)); ok {
		t.Error("cache hit after expiry")
	}
	c.PutNegative("gone.example.", dnswire.TypeA, 30, now)
	if _, neg, ok := c.Get("gone.example.", dnswire.TypeA, now); !ok || !neg {
		t.Error("negative entry lost")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush left entries")
	}
}

// TestLameServerRotation: a nameserver answering REFUSED (lame) must be
// dropped in favour of its siblings.
func TestLameServerRotation(t *testing.T) {
	ex := buildHierarchy(t)
	// A second example.com nameserver that is not configured in any view:
	// queries to it return REFUSED, making it lame.
	lameNS := netip.MustParseAddr("192.0.2.2")
	r, err := New(Config{
		Roots:     []netip.Addr{rootNS},
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache so the resolver knows both example.com servers,
	// one of them lame.
	now := time.Now()
	r.Cache().Put("example.com.", dnswire.TypeNS, []dnswire.RR{
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns1.example.com."}},
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns2.example.com."}},
	}, now)
	r.Cache().Put("ns1.example.com.", dnswire.TypeA, []dnswire.RR{
		{Name: "ns1.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: exNS}},
	}, now)
	r.Cache().Put("ns2.example.com.", dnswire.TypeA, []dnswire.RR{
		{Name: "ns2.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: lameNS}},
	}, now)

	// Run several resolutions; regardless of which server the RNG picks
	// first, every one must eventually succeed via the healthy server.
	for i := 0; i < 5; i++ {
		r.Cache().Flush()
		r.Cache().Put("example.com.", dnswire.TypeNS, []dnswire.RR{
			{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns1.example.com."}},
			{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns2.example.com."}},
		}, now)
		r.Cache().Put("ns1.example.com.", dnswire.TypeA, []dnswire.RR{
			{Name: "ns1.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: exNS}},
		}, now)
		r.Cache().Put("ns2.example.com.", dnswire.TypeA, []dnswire.RR{
			{Name: "ns2.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: lameNS}},
		}, now)
		ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(ans.Records) != 1 || ans.Records[0].Data.String() != "192.0.2.80" {
			t.Fatalf("iteration %d: records = %v", i, ans.Records)
		}
	}
}

// TestResolverConcurrentSafe hammers one resolver from many goroutines.
func TestResolverConcurrentSafe(t *testing.T) {
	ex := buildHierarchy(t)
	r := newResolver(t, ex, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				name := "www.example.com."
				if (i+j)%3 == 0 {
					name = "web.glueless.com."
				}
				if _, err := r.Resolve(context.Background(), name, dnswire.TypeA); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
