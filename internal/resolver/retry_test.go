package resolver

import (
	"context"
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/proxy"
	"ldplayer/internal/zone"
)

// flakyExchanger fails every odd-numbered exchange attempt, so each
// upstream exchange needs exactly one same-server retry to succeed.
type flakyExchanger struct {
	inner Exchanger
	mu    sync.Mutex
	calls int
}

func (f *flakyExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls%2 == 1
	f.mu.Unlock()
	if fail {
		return nil, errors.New("transient loss")
	}
	return f.inner.Exchange(ctx, server, q)
}

// TestResolverRetriesFlakyTransport: with per-attempt retries, a
// transport that loses every first attempt still resolves, and the retry
// counters account for every re-send.
func TestResolverRetriesFlakyTransport(t *testing.T) {
	flaky := &flakyExchanger{inner: buildHierarchy(t)}
	r, err := New(Config{
		Roots:             []netip.Addr{rootNS},
		Exchanger:         flaky,
		AttemptsPerServer: 2,
		AttemptTimeout:    time.Second,
		Rand:              rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Records) != 1 || ans.Records[0].Data.String() != "192.0.2.80" {
		t.Errorf("answer = %+v", ans)
	}
	if ans.Upstream != 3 {
		t.Errorf("upstream = %d, want 3", ans.Upstream)
	}
	if got := r.Retries(); got != 3 {
		t.Errorf("retries = %d, want 3 (one per exchange)", got)
	}
	if got := r.Giveups(); got != 0 {
		t.Errorf("giveups = %d", got)
	}
	// Every attempt is an upstream query: 3 exchanges x 2 attempts.
	if got := r.QueriesSent(); got != 6 {
		t.Errorf("queries sent = %d, want 6", got)
	}
}

// TestResolverGiveupOnBlackholedRoot runs the full netsim pipeline with a
// 100%-loss impairment on the root's query link: every attempt times out
// per-attempt, the exchange gives up, and the resolve loop fails with no
// servers left — quickly, not hanging on the whole-query timeout.
func TestResolverGiveupOnBlackholedRoot(t *testing.T) {
	recAddr := netip.MustParseAddr("10.1.0.1")
	metaAddr := netip.MustParseAddr("10.2.0.1")

	n := netsim.New(0)
	defer n.Close()
	recNode, err := n.AddNode("recursive", recAddr)
	if err != nil {
		t.Fatal(err)
	}
	metaNode, err := n.AddNode("meta-dns", metaAddr)
	if err != nil {
		t.Fatal(err)
	}
	recProxy := proxy.Attach(recNode, n, proxy.CaptureQueries, metaAddr, proxy.Options{})
	defer recProxy.Close()
	authProxy := proxy.Attach(metaNode, n, proxy.CaptureResponses, recAddr, proxy.Options{})
	defer authProxy.Close()

	z, err := zone.Parse(strings.NewReader(rootText), ".")
	if err != nil {
		t.Fatal(err)
	}
	engine := authserver.NewEngine()
	if err := engine.AddView(&authserver.View{Name: "root", Sources: []netip.Addr{rootNS}, Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	authserver.AttachNetsim(engine, metaNode)

	// Post-OQDA-rewrite, queries to the root traverse the (rootNS, meta)
	// link; blackhole it.
	if err := n.SetLinkImpairment(rootNS, metaAddr, netsim.Impairment{Drop: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	r, err := New(Config{
		Roots:             []netip.Addr{rootNS},
		Exchanger:         NewNetsimExchanger(recNode, recAddr),
		QueryTimeout:      300 * time.Millisecond,
		AttemptsPerServer: 2,
		AttemptTimeout:    50 * time.Millisecond,
		Rand:              rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = r.Resolve(context.Background(), "www.example.com.", dnswire.TypeA)
	if err == nil {
		t.Fatal("resolution through a blackholed root succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("giveup took %v; per-attempt timeouts should bound it", elapsed)
	}
	if got := r.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := r.Giveups(); got != 1 {
		t.Errorf("giveups = %d, want 1", got)
	}
	if st := n.ImpairStats(); st.Dropped < 2 {
		t.Errorf("impairment dropped %d, want both attempts", st.Dropped)
	}
}
