// Package netio provides batched UDP datagram I/O: many messages per
// syscall via sendmmsg/recvmmsg on Linux, with a portable loop fallback
// elsewhere. At replay rates approaching the paper's ~87k queries/s —
// and well past it — per-datagram syscalls dominate the client's CPU
// budget; batching turns a burst of due queries into one kernel crossing.
//
// A UDPBatch wraps one *net.UDPConn with preallocated message headers,
// iovecs, and receive buffers, so steady-state Send/Recv perform no
// allocation. The same type serves both sides of a loopback benchmark:
// connected replay sockets (Send/Recv) and an unconnected echo sink
// (Recv with peer addresses, then Echo).
//
// All methods are safe for the usual one-reader/one-writer socket
// discipline: Recv and Echo share receive state and must be called from
// one goroutine; Send keeps its own state and may run from another.
package netio

// MaxBatch is the largest per-call message count a UDPBatch supports;
// constructors clamp to it.
const MaxBatch = 1024

// BatchConfig shapes a UDPBatch. The zero value of each field selects
// the same defaults as NewUDPBatch.
type BatchConfig struct {
	// SendMsgs and RecvMsgs bound the messages staged per send call and
	// the buffers filled per receive call.
	SendMsgs int
	RecvMsgs int
	// BufSize is the per-receive-buffer size. Size for up to 64 GRO
	// segments per buffer when peers may send coalesced.
	BufSize int
	// Addrs enables peer-address capture (required for Echo, PeerAddr,
	// and Stage/SendStaged on unconnected sockets).
	Addrs bool
	// NoOffload disables UDP GSO send coalescing and GRO receive even
	// when the kernel supports them, degrading to plain per-datagram
	// sendmmsg/recvmmsg. For A/B measurement and fault isolation.
	NoOffload bool
}

// clampBatch normalizes a requested batch shape. Send and receive
// capacities are independent so a sender can batch wide without paying
// for receive buffers it will never fill.
func clampBatch(sendN, recvN, bufSize int) (int, int, int) {
	clamp := func(n int) int {
		if n <= 0 {
			return 1
		}
		if n > MaxBatch {
			return MaxBatch
		}
		return n
	}
	if bufSize <= 0 {
		bufSize = 2048
	}
	return clamp(sendN), clamp(recvN), bufSize
}
