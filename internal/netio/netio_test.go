package netio

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"
)

// segments invokes fn for every datagram in received buffer i, walking
// GRO-coalesced buffers at their segment stride.
func segments(b *UDPBatch, i int, fn func(m []byte)) int {
	m := b.Msg(i)
	seg := b.SegSize(i)
	if seg <= 0 || seg >= len(m) {
		fn(m)
		return 1
	}
	n := 0
	for off := 0; off < len(m); off += seg {
		end := off + seg
		if end > len(m) {
			end = len(m)
		}
		fn(m[off:end])
		n++
	}
	return n
}

// TestBatchSendRecvEcho round-trips a burst: a connected client Sends a
// batch (coalesced via GSO where supported), an unconnected sink Recvs
// with peer addresses, flips a byte in every datagram, and Echoes; the
// client Recvs the responses. Exercises the GSO/GRO segment accounting
// on both directions.
func TestBatchSendRecvEcho(t *testing.T) {
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()
	sink, err := NewUDPBatch(sinkConn, 32, 32, 512, true)
	if err != nil {
		t.Fatal(err)
	}

	raddr := sinkConn.LocalAddr().(*net.UDPAddr)
	clientConn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()
	client, err := NewUDPBatch(clientConn, 32, 32, 512, false)
	if err != nil {
		t.Fatal(err)
	}

	const burst = 20
	msgs := make([][]byte, burst)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("msg-%03d", i))
	}
	sent, err := client.Send(msgs)
	if err != nil || sent != burst {
		t.Fatalf("Send = %d, %v", sent, err)
	}

	// Sink: drain the burst (possibly across several Recv calls), echo
	// each batch back with the first byte of every datagram flipped.
	echoed := 0
	sinkConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for echoed < burst {
		n, err := sink.Recv()
		if err != nil {
			t.Fatalf("sink recv after %d: %v", echoed, err)
		}
		for i := 0; i < n; i++ {
			echoed += segments(sink, i, func(m []byte) { m[0] = 'M' })
		}
		en, err := sink.Echo(n)
		if err != nil || en != n {
			t.Fatalf("Echo = %d, %v", en, err)
		}
	}

	// Client: collect all responses, splitting coalesced buffers.
	got := map[string]bool{}
	clientConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < burst {
		n, err := client.Recv()
		if err != nil {
			t.Fatalf("client recv after %d: %v", len(got), err)
		}
		for i := 0; i < n; i++ {
			segments(client, i, func(m []byte) { got[string(m)] = true })
		}
	}
	for i := 0; i < burst; i++ {
		want := fmt.Sprintf("Msg-%03d", i)
		if !got[want] {
			t.Errorf("response %q missing (got %v)", want, got)
		}
	}
}

// TestBatchSendOversizedBatch sends more messages than the batch capacity
// in one call; Send must loop internally and submit them all.
func TestBatchSendOversizedBatch(t *testing.T) {
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()

	clientConn, err := net.DialUDP("udp", nil, sinkConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer clientConn.Close()
	client, err := NewUDPBatch(clientConn, 4, 4, 512, false)
	if err != nil {
		t.Fatal(err)
	}

	msgs := make([][]byte, 11)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 0xAB}
	}
	sent, err := client.Send(msgs)
	if err != nil || sent != len(msgs) {
		t.Fatalf("Send = %d, %v", sent, err)
	}
	buf := make([]byte, 512)
	seen := make(map[byte]bool)
	sinkConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(seen) < len(msgs) {
		n, _, err := sinkConn.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("sink read after %d: %v", len(seen), err)
		}
		if n != 2 || !bytes.Equal(buf[1:2], []byte{0xAB}) {
			t.Fatalf("bad datagram % x", buf[:n])
		}
		seen[buf[0]] = true
	}
}
