//go:build !linux || !(amd64 || arm64)

package netio

import (
	"net"
	"net/netip"
)

// BatchSyscalls reports whether this build uses real sendmmsg/recvmmsg.
const BatchSyscalls = false

// UDPBatch is the portable fallback: the same API over per-datagram
// Write/ReadFromUDP loops, so callers batch unconditionally and only the
// syscall count differs between platforms.
type UDPBatch struct {
	conn  *net.UDPConn
	bufs  [][]byte
	lens  []int
	addrs []netip.AddrPort
	peers bool

	stageMsgs [][]byte
	stageIdx  []int
}

// NewUDPBatch builds batched I/O state for c; see the Linux variant for
// the contract. The fallback sends with a loop, so sendN only bounds the
// progress-check chunking and receive state is sized by recvN.
func NewUDPBatch(c *net.UDPConn, sendN, recvN, bufSize int, withAddrs bool) (*UDPBatch, error) {
	return NewUDPBatchConfig(c, BatchConfig{SendMsgs: sendN, RecvMsgs: recvN, BufSize: bufSize, Addrs: withAddrs})
}

// NewUDPBatchConfig builds batched I/O state for c from cfg. The
// fallback never coalesces, so cfg.NoOffload changes nothing.
func NewUDPBatchConfig(c *net.UDPConn, cfg BatchConfig) (*UDPBatch, error) {
	_, n, bufSize := clampBatch(cfg.SendMsgs, cfg.RecvMsgs, cfg.BufSize)
	b := &UDPBatch{
		conn:  c,
		bufs:  make([][]byte, n),
		lens:  make([]int, n),
		addrs: make([]netip.AddrPort, n),
		peers: cfg.Addrs,
	}
	for i := range b.bufs {
		b.bufs[i] = make([]byte, bufSize)
	}
	return b, nil
}

// Cap returns the per-call receive message capacity.
func (b *UDPBatch) Cap() int { return len(b.bufs) }

// Send transmits msgs with one Write per datagram. Progress contract as
// on Linux: sent < len(msgs) implies err != nil.
//
//ldlint:noalloc
func (b *UDPBatch) Send(msgs [][]byte) (int, error) {
	for i, m := range msgs {
		if _, err := b.conn.Write(m); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// Recv reads one datagram (the portable loop cannot drain a burst in one
// call without deadline games).
func (b *UDPBatch) Recv() (int, error) {
	var (
		n   int
		err error
	)
	if b.peers {
		n, b.addrs[0], err = b.conn.ReadFromUDPAddrPort(b.bufs[0])
	} else {
		n, err = b.conn.Read(b.bufs[0])
	}
	if err != nil {
		return 0, err
	}
	b.lens[0] = n
	return 1, nil
}

// Msg returns received datagram i from the last Recv.
func (b *UDPBatch) Msg(i int) []byte { return b.bufs[i][:b.lens[i]] }

// SegSize returns the GRO segment size of received buffer i; the
// portable fallback never coalesces, so it is always 0.
func (b *UDPBatch) SegSize(i int) int { return 0 }

// PeerAddr returns the sender address of received datagram i. Only valid
// when the UDPBatch was built with addresses, between a Recv and the
// next.
//
//ldlint:noalloc
func (b *UDPBatch) PeerAddr(i int) netip.AddrPort {
	a := b.addrs[i]
	return netip.AddrPortFrom(a.Addr().Unmap(), a.Port())
}

// Echo sends back the first n received datagrams to their senders.
//
//ldlint:noalloc
func (b *UDPBatch) Echo(n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := b.conn.WriteToUDPAddrPort(b.bufs[i][:b.lens[i]], b.addrs[i]); err != nil {
			return i, err
		}
	}
	return n, nil
}

// Stage queues msg as a reply to the sender of received datagram i.
//
//ldlint:noalloc
func (b *UDPBatch) Stage(i int, msg []byte) {
	b.stageMsgs = append(b.stageMsgs, msg)
	b.stageIdx = append(b.stageIdx, i)
}

// SendStaged transmits every staged reply, one write per datagram, and
// resets the staging queue. Progress contract as on Linux.
//
//ldlint:noalloc
func (b *UDPBatch) SendStaged() (int, error) {
	for i, m := range b.stageMsgs {
		if _, err := b.conn.WriteToUDPAddrPort(m, b.addrs[b.stageIdx[i]]); err != nil {
			b.stageMsgs = b.stageMsgs[:0]
			b.stageIdx = b.stageIdx[:0]
			return i, err
		}
	}
	n := len(b.stageMsgs)
	b.stageMsgs = b.stageMsgs[:0]
	b.stageIdx = b.stageIdx[:0]
	return n, nil
}
