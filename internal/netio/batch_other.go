//go:build !linux || !(amd64 || arm64)

package netio

import (
	"net"
)

// BatchSyscalls reports whether this build uses real sendmmsg/recvmmsg.
const BatchSyscalls = false

// UDPBatch is the portable fallback: the same API over per-datagram
// Write/ReadFromUDP loops, so callers batch unconditionally and only the
// syscall count differs between platforms.
type UDPBatch struct {
	conn  *net.UDPConn
	bufs  [][]byte
	lens  []int
	addrs []*net.UDPAddr
	peers bool
}

// NewUDPBatch builds batched I/O state for c; see the Linux variant for
// the contract. The fallback sends with a loop, so sendN only bounds the
// progress-check chunking and receive state is sized by recvN.
func NewUDPBatch(c *net.UDPConn, sendN, recvN, bufSize int, withAddrs bool) (*UDPBatch, error) {
	_, n, bufSize := clampBatch(sendN, recvN, bufSize)
	b := &UDPBatch{
		conn:  c,
		bufs:  make([][]byte, n),
		lens:  make([]int, n),
		addrs: make([]*net.UDPAddr, n),
		peers: withAddrs,
	}
	for i := range b.bufs {
		b.bufs[i] = make([]byte, bufSize)
	}
	return b, nil
}

// Cap returns the per-call receive message capacity.
func (b *UDPBatch) Cap() int { return len(b.bufs) }

// Send transmits msgs with one Write per datagram. Progress contract as
// on Linux: sent < len(msgs) implies err != nil.
//
//ldlint:noalloc
func (b *UDPBatch) Send(msgs [][]byte) (int, error) {
	for i, m := range msgs {
		if _, err := b.conn.Write(m); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}

// Recv reads one datagram (the portable loop cannot drain a burst in one
// call without deadline games).
func (b *UDPBatch) Recv() (int, error) {
	var (
		n   int
		err error
	)
	if b.peers {
		n, b.addrs[0], err = b.conn.ReadFromUDP(b.bufs[0])
	} else {
		n, err = b.conn.Read(b.bufs[0])
	}
	if err != nil {
		return 0, err
	}
	b.lens[0] = n
	return 1, nil
}

// Msg returns received datagram i from the last Recv.
func (b *UDPBatch) Msg(i int) []byte { return b.bufs[i][:b.lens[i]] }

// SegSize returns the GRO segment size of received buffer i; the
// portable fallback never coalesces, so it is always 0.
func (b *UDPBatch) SegSize(i int) int { return 0 }

// Echo sends back the first n received datagrams to their senders.
//
//ldlint:noalloc
func (b *UDPBatch) Echo(n int) (int, error) {
	for i := 0; i < n; i++ {
		if _, err := b.conn.WriteToUDP(b.bufs[i][:b.lens[i]], b.addrs[i]); err != nil {
			return i, err
		}
	}
	return n, nil
}
