//go:build linux && arm64

package netio

// Syscall numbers absent from the frozen syscall package table.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
