//go:build linux && (amd64 || arm64)

package netio

import (
	"net"
	"testing"
)

// BenchmarkSendmmsgFloor measures the raw per-packet loopback cost of
// plain sendmmsg batches against an unread sink: the hard kernel ceiling
// for a non-GSO datapath on this machine.
func BenchmarkSendmmsgFloor(b *testing.B) {
	benchSendFloor(b, false)
}

// BenchmarkSendGSOFloor measures the same ceiling with UDP_SEGMENT
// coalescing (64 equal-size datagrams per super-packet).
func BenchmarkSendGSOFloor(b *testing.B) {
	benchSendFloor(b, true)
}

func benchSendFloor(b *testing.B, gso bool) {
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer sinkConn.Close()
	c, err := net.DialUDP("udp", nil, sinkConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ub, err := NewUDPBatch(c, 128, 1, 2048, false)
	if err != nil {
		b.Fatal(err)
	}
	if gso && !ub.gso {
		b.Skip("kernel lacks UDP_SEGMENT")
	}
	ub.gso = gso
	msg := make([]byte, 40)
	msgs := make([][]byte, 128)
	for i := range msgs {
		msgs[i] = msg
	}
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		n, err := ub.Send(msgs)
		if err != nil {
			b.Fatal(err)
		}
		sent += n
	}
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "pkts/s")
}

// TestSendZeroAllocs guards the batched send fast path: staging a full
// batch of messages into sendmmsg (with GSO coalescing) must not allocate
// — one allocation per call is one allocation per query at replay rates.
func TestSendZeroAllocs(t *testing.T) {
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()
	c, err := net.DialUDP("udp", nil, sinkConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ub, err := NewUDPBatch(c, 128, 1, 2048, false)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 40)
	msgs := make([][]byte, 128)
	for i := range msgs {
		msgs[i] = msg
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := ub.Send(msgs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Send allocates %.1f times per batch, want 0", allocs)
	}
}
