//go:build linux && (amd64 || arm64)

package netio

import (
	"net"
	"net/netip"
	"runtime"
	"syscall"
	"unsafe"
)

// BatchSyscalls reports whether this build uses real sendmmsg/recvmmsg.
const BatchSyscalls = true

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-written
// received-length field. The trailing pad keeps the array stride at the
// kernel's 8-byte alignment.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// UDP-level socket options for generic segmentation/receive offload
// (linux/udp.h). With UDP_SEGMENT a single send carries many equal-size
// datagrams in one skb; with UDP_GRO the receiving socket accepts that
// skb whole and reports the segment size via cmsg. On loopback the two
// together let a super-packet cross the stack without ever being
// segmented, collapsing the per-datagram kernel cost on both sides.
const (
	solUDP     = 17
	udpSegment = 103
	udpGRO     = 104

	// gsoMaxSegs is the kernel's UDP_MAX_SEGMENTS floor (64 until 5.19).
	gsoMaxSegs = 64
	// gsoMaxBytes keeps a segmented send under the IPv4 datagram limit.
	gsoMaxBytes = 60000
)

// cmsgSeg is one aligned control-message slot: a cmsghdr plus room for
// the UDP_SEGMENT (__u16) or UDP_GRO (int) payload. Struct layout keeps
// the data field naturally aligned; both supported GOARCHes are
// little-endian, so storing uint32(v) yields the right __u16 bytes.
type cmsgSeg struct {
	hdr  syscall.Cmsghdr
	data uint32
	_    [4]byte
}

const (
	cmsgSegSpace = int(unsafe.Sizeof(cmsgSeg{}))
	cmsgLenU16   = syscall.SizeofCmsghdr + 2
	cmsgLenInt   = syscall.SizeofCmsghdr + 4
)

// UDPBatch is a batched I/O facade over one UDP socket.
type UDPBatch struct {
	conn *net.UDPConn
	rc   syscall.RawConn

	// gso/gro record whether the kernel accepted the respective socket
	// options at construction time; when false the corresponding path
	// degrades to plain per-datagram sendmmsg/recvmmsg.
	gso bool
	gro bool

	// send state
	sendIovs []syscall.Iovec
	sendHdrs []mmsghdr
	sendCtl  []cmsgSeg
	sendRuns []int // messages carried by each staged header

	// receive state
	bufs     [][]byte
	recvIovs []syscall.Iovec
	recvHdrs []mmsghdr
	recvCtl  []cmsgSeg
	lens     []int
	segs     []int // GRO segment size per received buffer (0 = plain)

	// peer-address state (withAddrs only): raw sockaddr storage written
	// by recvmmsg and echoed back verbatim by sendmmsg.
	names    [][]byte
	echoIovs []syscall.Iovec
	echoHdrs []mmsghdr
	echoCtl  []cmsgSeg

	// reply staging (withAddrs only): arbitrary response payloads queued
	// against received-buffer indices, flushed by SendStaged. Grown by
	// append and reused across batches.
	stageMsgs [][]byte
	stageIdx  []int

	// Prebuilt RawConn callbacks with their in/out parameters staged in
	// the fields below: a literal closure passed to rc.Read/rc.Write
	// escapes and costs one heap allocation per syscall batch, which at
	// replay rates is an allocation per query.
	sendFn    func(fd uintptr) bool
	sendChunk int // in: headers staged in sendHdrs
	sendDone  int // out: headers submitted
	sendErr   error
	recvFn    func(fd uintptr) bool
	recvGot   int // out: messages received
	recvErr   error
	echoFn    func(fd uintptr) bool
	echoN     int // in: messages staged in echoIovs
	echoDone  int // out: messages submitted
	echoErr   error
}

// sockaddrStorage is large enough for any AF_INET/AF_INET6 sockaddr.
const sockaddrStorage = 28

// NewUDPBatch builds batched I/O state for c: up to sendN messages per
// send call, recvN buffers per receive call, each receive buffer bufSize
// bytes. withAddrs enables peer-address capture (required for Echo on
// unconnected sockets). When the kernel supports it, sends coalesce runs
// of equal-size messages into single GSO super-datagrams and receives
// accept coalesced buffers — size receive buffers for up to 64 segments
// per buffer when responses may arrive coalesced.
func NewUDPBatch(c *net.UDPConn, sendN, recvN, bufSize int, withAddrs bool) (*UDPBatch, error) {
	return NewUDPBatchConfig(c, BatchConfig{SendMsgs: sendN, RecvMsgs: recvN, BufSize: bufSize, Addrs: withAddrs})
}

// NewUDPBatchConfig builds batched I/O state for c from cfg; see
// NewUDPBatch for the base contract. cfg.NoOffload skips the GSO/GRO
// probes entirely, pinning the socket to plain per-datagram batching.
func NewUDPBatchConfig(c *net.UDPConn, cfg BatchConfig) (*UDPBatch, error) {
	sendN, n, bufSize := clampBatch(cfg.SendMsgs, cfg.RecvMsgs, cfg.BufSize)
	withAddrs := cfg.Addrs
	rc, err := c.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &UDPBatch{
		conn:     c,
		rc:       rc,
		sendIovs: make([]syscall.Iovec, sendN),
		sendHdrs: make([]mmsghdr, sendN),
		sendCtl:  make([]cmsgSeg, sendN),
		sendRuns: make([]int, sendN),
		recvIovs: make([]syscall.Iovec, n),
		recvHdrs: make([]mmsghdr, n),
		recvCtl:  make([]cmsgSeg, n),
		lens:     make([]int, n),
		segs:     make([]int, n),
	}
	// Probe segmentation offload support: setting a zero segment size is
	// a no-op on kernels that know the option and ENOPROTOOPT on ones
	// that don't. GRO is enabled for the socket's lifetime.
	if !cfg.NoOffload {
		ctlErr := rc.Control(func(fd uintptr) {
			if syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil {
				b.gso = true
			}
			if syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil {
				b.gro = true
			}
		})
		if ctlErr != nil {
			return nil, ctlErr
		}
	}
	slab := make([]byte, n*bufSize)
	b.bufs = make([][]byte, n)
	for i := range b.bufs {
		b.bufs[i] = slab[i*bufSize : (i+1)*bufSize : (i+1)*bufSize]
	}
	for i := range b.recvHdrs {
		b.recvIovs[i].Base = &b.bufs[i][0]
		b.recvIovs[i].SetLen(bufSize)
		b.recvHdrs[i].hdr.Iov = &b.recvIovs[i]
		b.recvHdrs[i].hdr.Iovlen = 1
	}
	if withAddrs {
		nameSlab := make([]byte, n*sockaddrStorage)
		b.names = make([][]byte, n)
		b.echoIovs = make([]syscall.Iovec, n)
		b.echoHdrs = make([]mmsghdr, n)
		b.echoCtl = make([]cmsgSeg, n)
		for i := range b.names {
			b.names[i] = nameSlab[i*sockaddrStorage : (i+1)*sockaddrStorage]
			b.recvHdrs[i].hdr.Name = &b.names[i][0]
			b.echoHdrs[i].hdr.Iov = &b.echoIovs[i]
			b.echoHdrs[i].hdr.Iovlen = 1
			b.echoHdrs[i].hdr.Name = &b.names[i][0]
		}
	}
	b.sendFn = func(fd uintptr) bool {
		for b.sendDone < b.sendChunk {
			r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&b.sendHdrs[b.sendDone])), uintptr(b.sendChunk-b.sendDone), 0, 0, 0)
			switch {
			case errno == syscall.EAGAIN:
				return false
			case errno == syscall.EINTR:
				continue
			case errno != 0:
				b.sendErr = errno
				return true
			}
			b.sendDone += int(r1)
		}
		return true
	}
	b.recvFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&b.recvHdrs[0])), uintptr(len(b.recvHdrs)), 0, 0, 0)
			switch {
			case errno == syscall.EAGAIN:
				return false
			case errno == syscall.EINTR:
				continue
			case errno != 0:
				b.recvErr = errno
				return true
			}
			b.recvGot = int(r1)
			return true
		}
	}
	b.echoFn = func(fd uintptr) bool {
		for b.echoDone < b.echoN {
			r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&b.echoHdrs[b.echoDone])), uintptr(b.echoN-b.echoDone), 0, 0, 0)
			switch {
			case errno == syscall.EAGAIN:
				return false
			case errno == syscall.EINTR:
				continue
			case errno != 0:
				b.echoErr = errno
				return true
			}
			b.echoDone += int(r1)
		}
		return true
	}
	return b, nil
}

// Cap returns the per-call receive message capacity.
func (b *UDPBatch) Cap() int { return len(b.recvHdrs) }

// stageSeg fills control slot ctl with a UDP_SEGMENT cmsg of size seg
// and attaches it to hd.
//
//ldlint:noalloc
func stageSeg(hd *syscall.Msghdr, ctl *cmsgSeg, seg int) {
	ctl.hdr.SetLen(cmsgLenU16)
	ctl.hdr.Level = solUDP
	ctl.hdr.Type = udpSegment
	ctl.data = uint32(seg)
	hd.Control = (*byte)(unsafe.Pointer(ctl))
	hd.SetControllen(cmsgSegSpace)
}

// Send transmits up to len(msgs) datagrams on the (connected) socket in
// one or more sendmmsg calls, coalescing runs of equal-size messages
// into GSO super-datagrams when the kernel supports UDP_SEGMENT. It
// returns the number of messages fully submitted; on a per-message error,
// sent counts the messages before the failing header and err describes
// the failure. Send guarantees progress: sent < len(msgs) implies
// err != nil.
//
//ldlint:noalloc
func (b *UDPBatch) Send(msgs [][]byte) (int, error) {
	total := 0
	for total < len(msgs) {
		h, iov, mi := 0, 0, total
		for mi < len(msgs) && h < len(b.sendHdrs) && iov < len(b.sendIovs) {
			sz := len(msgs[mi])
			run := 1
			if b.gso && sz > 0 {
				maxRun := gsoMaxBytes / sz
				if maxRun > gsoMaxSegs {
					maxRun = gsoMaxSegs
				}
				for mi+run < len(msgs) && run < maxRun && iov+run < len(b.sendIovs) &&
					len(msgs[mi+run]) == sz {
					run++
				}
			}
			for k := 0; k < run; k++ {
				m := msgs[mi+k]
				if len(m) > 0 {
					b.sendIovs[iov+k].Base = &m[0]
				} else {
					b.sendIovs[iov+k].Base = nil
				}
				b.sendIovs[iov+k].SetLen(len(m))
			}
			hd := &b.sendHdrs[h].hdr
			hd.Iov = &b.sendIovs[iov]
			hd.Iovlen = uint64(run)
			// SendStaged shares these headers and sets peer addresses;
			// the connected-socket path must not inherit one.
			hd.Name = nil
			hd.Namelen = 0
			if run > 1 {
				stageSeg(hd, &b.sendCtl[h], sz)
			} else {
				hd.Control = nil
				hd.SetControllen(0)
			}
			b.sendRuns[h] = run
			h++
			iov += run
			mi += run
		}
		b.sendChunk = h
		b.sendDone = 0
		b.sendErr = nil
		err := b.rc.Write(b.sendFn)
		runtime.KeepAlive(msgs)
		for i := 0; i < b.sendDone; i++ {
			total += b.sendRuns[i]
		}
		if err == nil {
			err = b.sendErr
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Recv drains up to Cap() coalesced buffers in one recvmmsg call,
// blocking until at least one arrives. Buffer i is Msg(i) with GRO
// segment size SegSize(i); buffers are valid until the next Recv.
//
//ldlint:noalloc
func (b *UDPBatch) Recv() (int, error) {
	for i := range b.recvHdrs {
		if b.names != nil {
			b.recvHdrs[i].hdr.Namelen = sockaddrStorage
		}
		if b.gro {
			b.recvCtl[i].data = 0
			b.recvHdrs[i].hdr.Control = (*byte)(unsafe.Pointer(&b.recvCtl[i]))
			b.recvHdrs[i].hdr.SetControllen(cmsgSegSpace)
		}
	}
	b.recvGot = 0
	b.recvErr = nil
	err := b.rc.Read(b.recvFn)
	runtime.KeepAlive(b)
	if err == nil {
		err = b.recvErr
	}
	if err != nil {
		return 0, err
	}
	got := b.recvGot
	for i := 0; i < got; i++ {
		b.lens[i] = int(b.recvHdrs[i].msgLen)
		b.segs[i] = 0
		if b.gro && b.recvHdrs[i].hdr.Controllen >= cmsgLenInt &&
			b.recvCtl[i].hdr.Level == solUDP && b.recvCtl[i].hdr.Type == udpGRO {
			b.segs[i] = int(int32(b.recvCtl[i].data))
		}
	}
	return got, nil
}

// Msg returns received buffer i from the last Recv. When SegSize(i) > 0
// the buffer holds several datagrams of that size (the last possibly
// shorter) coalesced by GRO.
func (b *UDPBatch) Msg(i int) []byte { return b.bufs[i][:b.lens[i]] }

// SegSize returns the GRO segment size of received buffer i, or 0 when
// the buffer is a single plain datagram.
func (b *UDPBatch) SegSize(i int) int { return b.segs[i] }

// Echo sends back the first n received buffers (possibly modified in
// place via Msg) to their senders in one or more sendmmsg calls.
// Coalesced buffers are re-segmented on the wire with their original GRO
// segment size. Only valid when the UDPBatch was built withAddrs.
//
//ldlint:noalloc
func (b *UDPBatch) Echo(n int) (int, error) {
	for i := 0; i < n; i++ {
		b.echoIovs[i].Base = &b.bufs[i][0]
		b.echoIovs[i].SetLen(b.lens[i])
		hd := &b.echoHdrs[i].hdr
		hd.Namelen = b.recvHdrs[i].hdr.Namelen
		if b.gso && b.segs[i] > 0 && b.segs[i] < b.lens[i] {
			stageSeg(hd, &b.echoCtl[i], b.segs[i])
		} else {
			hd.Control = nil
			hd.SetControllen(0)
		}
	}
	b.echoN = n
	b.echoDone = 0
	b.echoErr = nil
	err := b.rc.Write(b.echoFn)
	runtime.KeepAlive(b)
	if err == nil {
		err = b.echoErr
	}
	return b.echoDone, err
}

// PeerAddr decodes the sender address of received buffer i from the raw
// sockaddr recvmmsg wrote. Only valid when the UDPBatch was built with
// addresses, between a Recv and the next. IPv4-mapped IPv6 senders are
// unmapped so the result compares equal to a plain IPv4 address.
//
//ldlint:noalloc
func (b *UDPBatch) PeerAddr(i int) netip.AddrPort {
	sa := b.names[i]
	// sa_family_t is host-endian; both supported GOARCHes are
	// little-endian. The port that follows is big-endian per sockaddr_in.
	switch uint16(sa[0]) | uint16(sa[1])<<8 {
	case syscall.AF_INET:
		port := uint16(sa[2])<<8 | uint16(sa[3])
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte(sa[4:8])), port)
	case syscall.AF_INET6:
		port := uint16(sa[2])<<8 | uint16(sa[3])
		return netip.AddrPortFrom(netip.AddrFrom16([16]byte(sa[8:24])).Unmap(), port)
	}
	return netip.AddrPort{}
}

// Stage queues msg as a reply to the sender of received buffer i. msg
// must stay immutable until SendStaged returns; it typically points into
// a caller-owned slab reused per batch. Only valid when the UDPBatch was
// built with addresses, between a Recv and the next.
//
//ldlint:noalloc
func (b *UDPBatch) Stage(i int, msg []byte) {
	b.stageMsgs = append(b.stageMsgs, msg)
	b.stageIdx = append(b.stageIdx, i)
}

// SendStaged transmits every staged reply in one or more sendmmsg calls
// and resets the staging queue. Consecutive equal-size replies to the
// same received buffer (therefore the same peer) coalesce into GSO
// super-datagrams when the kernel supports UDP_SEGMENT — the natural
// case on a loopback bench, where GRO hands the server a run of
// same-peer queries whose equal-size responses stage back to back. A
// reply whose size differs from its neighbours (e.g. a truncated
// response among full answers) never joins a run: GSO segments must be
// equal-sized, so it ships as its own plain datagram, never clipped.
// Returns the number of replies fully submitted; sent < staged implies
// err != nil. SendStaged shares send state with Send — serialize them.
//
//ldlint:noalloc
func (b *UDPBatch) SendStaged() (int, error) {
	total := 0
	for total < len(b.stageMsgs) {
		h, iov, mi := 0, 0, total
		for mi < len(b.stageMsgs) && h < len(b.sendHdrs) && iov < len(b.sendIovs) {
			sz := len(b.stageMsgs[mi])
			idx := b.stageIdx[mi]
			run := 1
			if b.gso && sz > 0 {
				maxRun := gsoMaxBytes / sz
				if maxRun > gsoMaxSegs {
					maxRun = gsoMaxSegs
				}
				for mi+run < len(b.stageMsgs) && run < maxRun && iov+run < len(b.sendIovs) &&
					len(b.stageMsgs[mi+run]) == sz && b.stageIdx[mi+run] == idx {
					run++
				}
			}
			for k := 0; k < run; k++ {
				m := b.stageMsgs[mi+k]
				if len(m) > 0 {
					b.sendIovs[iov+k].Base = &m[0]
				} else {
					b.sendIovs[iov+k].Base = nil
				}
				b.sendIovs[iov+k].SetLen(len(m))
			}
			hd := &b.sendHdrs[h].hdr
			hd.Iov = &b.sendIovs[iov]
			hd.Iovlen = uint64(run)
			hd.Name = &b.names[idx][0]
			hd.Namelen = b.recvHdrs[idx].hdr.Namelen
			if run > 1 {
				stageSeg(hd, &b.sendCtl[h], sz)
			} else {
				hd.Control = nil
				hd.SetControllen(0)
			}
			b.sendRuns[h] = run
			h++
			iov += run
			mi += run
		}
		b.sendChunk = h
		b.sendDone = 0
		b.sendErr = nil
		err := b.rc.Write(b.sendFn)
		runtime.KeepAlive(b)
		for i := 0; i < b.sendDone; i++ {
			total += b.sendRuns[i]
		}
		if err == nil {
			err = b.sendErr
		}
		if err != nil {
			b.resetStage()
			return total, err
		}
	}
	b.resetStage()
	return total, nil
}

// resetStage clears the staging queue for the next batch.
//
//ldlint:noalloc
func (b *UDPBatch) resetStage() {
	b.stageMsgs = b.stageMsgs[:0]
	b.stageIdx = b.stageIdx[:0]
}
