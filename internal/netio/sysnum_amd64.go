//go:build linux && amd64

package netio

// Syscall numbers absent from the frozen syscall package table.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
