package zonecon

import (
	"context"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/resolver"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

// capturingExchanger resolves against an engine and records every response
// as it would appear at the recursive's upstream interface.
type capturingExchanger struct {
	engine *authserver.Engine

	mu      sync.Mutex
	capture []trace.Entry
	now     time.Time
}

func (e *capturingExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	out, err := e.engine.Respond(wire, server.Addr(), authserver.UDP)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.now = e.now.Add(time.Millisecond)
	e.capture = append(e.capture, trace.Entry{
		Time:     e.now,
		Src:      server, // response comes from the authoritative server
		Dst:      netip.MustParseAddrPort("192.168.1.254:53"),
		Protocol: trace.UDP,
		Message:  append([]byte(nil), out...),
	})
	e.mu.Unlock()
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		return nil, err
	}
	return &resp, nil
}

// buildAndCapture resolves names through a synthesized hierarchy with a
// cold cache, capturing the upstream responses — the paper's one-time
// Internet pass.
func buildAndCapture(t *testing.T, slds, names []string) (*hierarchy.Hierarchy, []trace.Entry) {
	t.Helper()
	h, err := hierarchy.Build(slds, hierarchy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	engine := authserver.NewEngine()
	for _, v := range h.Views() {
		if err := engine.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	ex := &capturingExchanger{engine: engine, now: time.Unix(1_700_000_000, 0)}
	r, err := resolver.New(resolver.Config{
		Roots:     h.NSAddrs["."][:3],
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(11)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if _, err := r.Resolve(context.Background(), name, dnswire.TypeA); err != nil {
			t.Fatalf("resolving %s: %v", name, err)
		}
	}
	return h, ex.capture
}

func TestConstructRebuildsHierarchy(t *testing.T) {
	slds := []string{"example.com.", "foo.org."}
	names := []string{"www.example.com.", "mail.example.com.", "www.foo.org."}
	h, capture := buildAndCapture(t, slds, names)

	con, err := Construct(trace.NewSliceReader(capture), Options{RootHints: h.NSAddrs["."]})
	if err != nil {
		t.Fatal(err)
	}
	// Zones for root, com, org, and both SLDs must exist.
	for _, origin := range []string{".", "com.", "org.", "example.com.", "foo.org."} {
		if _, ok := con.Zones[origin]; !ok {
			t.Errorf("zone %s not reconstructed (have %v)", origin, con.Origins())
		}
	}
	if con.Dropped != 0 {
		t.Errorf("dropped %d records", con.Dropped)
	}
	// The reconstructed root delegates com. with glue.
	res := con.Zones["."].Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Referral || len(res.Additional) == 0 {
		t.Errorf("reconstructed root: kind=%v glue=%v", res.Kind, res.Additional)
	}
	// The reconstructed SLD answers the exercised names authoritatively.
	res = con.Zones["example.com."].Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Kind != zone.Answer {
		t.Errorf("reconstructed example.com: kind = %v", res.Kind)
	}
	// The answer matches the original zone's data.
	orig := h.SLDs["example.com."].Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{})
	if res.Records[0].Data.String() != orig.Records[0].Data.String() {
		t.Errorf("reconstructed %v != original %v", res.Records[0], orig.Records[0])
	}
}

// TestReplayAgainstReconstructedZones is the paper's core repeatability
// claim: replaying the same queries against the reconstructed hierarchy,
// with no Internet access, yields the same answers.
func TestReplayAgainstReconstructedZones(t *testing.T) {
	slds := []string{"example.com.", "foo.org.", "bar.com."}
	names := []string{"www.example.com.", "www.foo.org.", "mail.bar.com.", "bar.com."}
	h, capture := buildAndCapture(t, slds, names)

	con, err := Construct(trace.NewSliceReader(capture), Options{RootHints: h.NSAddrs["."]})
	if err != nil {
		t.Fatal(err)
	}

	// Stand up a fresh meta-DNS engine from the reconstruction.
	engine := authserver.NewEngine()
	for origin, z := range con.Zones {
		v := &authserver.View{Name: "rebuilt-" + origin, Sources: con.NSAddrs[origin], Zones: []*zone.Zone{z}}
		if err := engine.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	ex := &capturingExchanger{engine: engine, now: time.Unix(1_800_000_000, 0)}
	r, err := resolver.New(resolver.Config{
		Roots:     con.NSAddrs["."][:1],
		Exchanger: ex,
		Rand:      rand.New(rand.NewSource(13)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		ans, err := r.Resolve(context.Background(), name, dnswire.TypeA)
		if err != nil {
			t.Fatalf("replay resolve %s: %v", name, err)
		}
		if ans.Rcode != dnswire.RcodeNoError || len(ans.Records) == 0 {
			t.Errorf("replay %s: rcode=%v records=%v", name, ans.Rcode, ans.Records)
			continue
		}
		// Compare the final address with the original hierarchy's answer.
		origZone := h.SLDs[sldOf(name)]
		orig := origZone.Lookup(name, dnswire.TypeA, zone.LookupOptions{})
		if len(orig.Records) == 0 {
			t.Fatalf("original zone has no records for %s", name)
		}
		if ans.Records[len(ans.Records)-1].Data.String() != orig.Records[len(orig.Records)-1].Data.String() {
			t.Errorf("%s: replay answer %v != original %v", name, ans.Records, orig.Records)
		}
	}
}

func sldOf(name string) string {
	n := dnswire.CanonicalName(name)
	for dnswire.CountLabels(n) > 2 {
		n = dnswire.ParentName(n)
	}
	return n
}

func TestSOARecoverySynthesized(t *testing.T) {
	// A capture with only a referral (no SOA anywhere).
	referral := &dnswire.Message{Header: dnswire.Header{ID: 1, QR: true}}
	referral.Question = []dnswire.Question{{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	referral.Authority = []dnswire.RR{
		{Name: "com.", Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.NS{Host: "a.gtld.com."}},
	}
	referral.Additional = []dnswire.RR{
		{Name: "a.gtld.com.", Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.A{Addr: netip.MustParseAddr("198.18.0.5")}},
	}
	wire, err := referral.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	rootAddr := netip.MustParseAddr("198.18.0.1")
	entries := []trace.Entry{{
		Time:    time.Unix(0, 0),
		Src:     netip.AddrPortFrom(rootAddr, 53),
		Dst:     netip.MustParseAddrPort("192.168.1.254:40000"),
		Message: wire,
	}}
	con, err := Construct(trace.NewSliceReader(entries), Options{RootHints: []netip.Addr{rootAddr}})
	if err != nil {
		t.Fatal(err)
	}
	root := con.Zones["."]
	if root == nil {
		t.Fatal("no root zone")
	}
	if _, ok := root.SOA(); !ok {
		t.Error("synthetic SOA missing")
	}
	if len(con.SynthesizedSOA) == 0 {
		t.Error("SynthesizedSOA not reported")
	}
	// The referral data must be in the root zone.
	if len(root.RRset("com.", dnswire.TypeNS)) != 1 {
		t.Error("delegation lost")
	}
}

func TestFirstAnswerWinsOnConflict(t *testing.T) {
	// Two responses from the same server give different CNAME targets for
	// the same name (CDN churn); the first must win.
	server := netip.MustParseAddr("198.18.0.9")
	mkResp := func(id uint16, target string) trace.Entry {
		m := &dnswire.Message{Header: dnswire.Header{ID: id, QR: true, AA: true}}
		m.Question = []dnswire.Question{{Name: "cdn.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
		m.Answer = []dnswire.RR{
			{Name: "cdn.example.com.", Class: dnswire.ClassINET, TTL: 30, Data: dnswire.CNAME{Target: target}},
		}
		m.Authority = []dnswire.RR{
			{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns.example.com."}},
		}
		m.Additional = []dnswire.RR{
			{Name: "ns.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: server}},
		}
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		return trace.Entry{
			Time:    time.Unix(int64(id), 0),
			Src:     netip.AddrPortFrom(server, 53),
			Dst:     netip.MustParseAddrPort("192.168.1.254:40000"),
			Message: wire,
		}
	}
	entries := []trace.Entry{mkResp(1, "edge-a.cdn.net."), mkResp(2, "edge-b.cdn.net.")}
	con, err := Construct(trace.NewSliceReader(entries), Options{})
	if err != nil {
		t.Fatal(err)
	}
	z := con.Zones["example.com."]
	if z == nil {
		t.Fatalf("zones = %v", con.Origins())
	}
	set := z.RRset("cdn.example.com.", dnswire.TypeCNAME)
	if len(set) != 1 || set[0].Data.(dnswire.CNAME).Target != "edge-a.cdn.net." {
		t.Errorf("CNAME set = %v", set)
	}
	if con.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", con.Conflicts)
	}
}

func TestUnattributableRecordsDropped(t *testing.T) {
	// A response from an address no NS record maps to, with no root hints:
	// everything is dropped, nothing invents a zone.
	m := &dnswire.Message{Header: dnswire.Header{ID: 1, QR: true, AA: true}}
	m.Question = []dnswire.Question{{Name: "x.example.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	m.Answer = []dnswire.RR{{Name: "x.example.", Class: dnswire.ClassINET, TTL: 1, Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}}
	wire, _ := m.Pack(nil)
	entries := []trace.Entry{{
		Time:    time.Unix(0, 0),
		Src:     netip.MustParseAddrPort("203.0.113.7:53"),
		Dst:     netip.MustParseAddrPort("192.168.1.254:40000"),
		Message: wire,
	}}
	con, err := Construct(trace.NewSliceReader(entries), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if con.Dropped == 0 {
		t.Error("expected dropped records")
	}
	if len(con.Zones) != 0 {
		t.Errorf("zones = %v", con.Origins())
	}
}

func TestQueriesIgnored(t *testing.T) {
	q := dnswire.NewQuery(7, "www.example.com.", dnswire.TypeA)
	wire, _ := q.Pack(nil)
	entries := []trace.Entry{{
		Time:    time.Unix(0, 0),
		Src:     netip.MustParseAddrPort("192.168.1.5:5353"),
		Dst:     netip.MustParseAddrPort("198.18.0.1:53"),
		Message: wire,
	}}
	con, err := Construct(trace.NewSliceReader(entries), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(con.Zones) != 0 || con.Dropped != 0 {
		t.Errorf("construction from queries: %+v", con)
	}
}
