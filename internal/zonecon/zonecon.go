// Package zonecon rebuilds DNS zones from captured response traffic,
// implementing §2.3: scan every response for NS records and nameserver
// addresses, group the nameservers serving each domain, aggregate the
// response data by the responding server's address, split the aggregate
// by zone cut into per-origin zone files, recover missing SOA/NS records
// (a fake but valid SOA when none was observed), and resolve conflicting
// answers by keeping the first (CDN-style churn produces the conflicts;
// simulating CDN behaviour is future work in the paper too).
package zonecon

import (
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

// Options configures construction.
type Options struct {
	// RootHints identifies root-server addresses: the one part of the
	// hierarchy a resolver knows a priori rather than from responses.
	RootHints []netip.Addr
	// SyntheticSOASerial seeds fake SOA records (default 1).
	SyntheticSOASerial uint32
}

// Construction is the rebuilt hierarchy.
type Construction struct {
	// Zones maps canonical origins to reconstructed zones.
	Zones map[string]*zone.Zone
	// NSAddrs maps each origin to the nameserver addresses observed
	// serving it — the split-horizon match sets for replay.
	NSAddrs map[string][]netip.Addr
	// Dropped counts records that could not be attributed to any zone.
	Dropped int
	// Conflicts counts later records discarded under first-answer-wins.
	Conflicts int
	// SynthesizedSOA and SynthesizedNS list origins that needed recovery.
	SynthesizedSOA []string
	SynthesizedNS  []string
}

// attributed is one response record plus the server that sent it.
type attributed struct {
	rr     dnswire.RR
	server netip.Addr
}

// Construct drains r (a capture taken at the recursive server's upstream
// interface: responses from authoritative servers) and rebuilds the zones.
func Construct(r trace.Reader, opts Options) (*Construction, error) {
	if opts.SyntheticSOASerial == 0 {
		opts.SyntheticSOASerial = 1
	}

	// Pass 1: harvest all records, NS sets, and nameserver addresses.
	var records []attributed
	nsSets := make(map[string]map[string]struct{}) // origin -> NS hosts
	hostAddrs := make(map[string][]netip.Addr)     // NS host -> addresses
	var msg dnswire.Message
	for {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		if err := msg.Unpack(e.Message); err != nil {
			continue // tolerate undecodable packets in captures
		}
		if !msg.Header.QR {
			continue // queries carry no zone data
		}
		server := e.Src.Addr()
		for _, sec := range [][]dnswire.RR{msg.Answer, msg.Authority, msg.Additional} {
			for _, rr := range sec {
				rr.Name = dnswire.CanonicalName(rr.Name)
				records = append(records, attributed{rr: rr, server: server})
				switch d := rr.Data.(type) {
				case dnswire.NS:
					set := nsSets[rr.Name]
					if set == nil {
						set = make(map[string]struct{})
						nsSets[rr.Name] = set
					}
					set[dnswire.CanonicalName(d.Host)] = struct{}{}
				case dnswire.A:
					hostAddrs[rr.Name] = appendAddrOnce(hostAddrs[rr.Name], d.Addr)
				case dnswire.AAAA:
					hostAddrs[rr.Name] = appendAddrOnce(hostAddrs[rr.Name], d.Addr)
				}
			}
		}
	}

	// Derive the server-address → served-zones mapping: address A serves
	// zone O when some NS host of O resolves to A. Root hints serve ".".
	addrZones := make(map[netip.Addr]map[string]struct{})
	addZone := func(a netip.Addr, origin string) {
		z := addrZones[a]
		if z == nil {
			z = make(map[string]struct{})
			addrZones[a] = z
		}
		z[origin] = struct{}{}
	}
	c := &Construction{
		Zones:   make(map[string]*zone.Zone),
		NSAddrs: make(map[string][]netip.Addr),
	}
	for origin, hosts := range nsSets {
		for host := range hosts {
			for _, a := range hostAddrs[host] {
				addZone(a, origin)
				c.NSAddrs[origin] = appendAddrOnce(c.NSAddrs[origin], a)
			}
		}
	}
	hasRootHints := len(opts.RootHints) > 0
	for _, a := range opts.RootHints {
		addZone(a, ".")
		c.NSAddrs["."] = appendAddrOnce(c.NSAddrs["."], a)
	}

	// The reconstructed zone set: every origin we saw NS records for,
	// plus the root when hints were given.
	zoneFor := func(origin string) *zone.Zone {
		z := c.Zones[origin]
		if z == nil {
			z = zone.New(origin)
			c.Zones[origin] = z
		}
		return z
	}
	for origin := range nsSets {
		zoneFor(origin)
	}
	if hasRootHints {
		zoneFor(".")
	}

	// Pass 2: attribute each record to the longest-origin zone among the
	// zones its sending server serves. Singleton types (SOA, CNAME) keep
	// the first-seen value.
	type singletonKey struct {
		origin, name string
		typ          dnswire.Type
	}
	firstSeen := make(map[singletonKey]string)
	for _, ar := range records {
		zones := addrZones[ar.server]
		best := ""
		for origin := range zones {
			if dnswire.IsSubdomain(ar.rr.Name, origin) && dnswire.CountLabels(origin) >= dnswire.CountLabels(best) {
				if best == "" || dnswire.CountLabels(origin) > dnswire.CountLabels(best) {
					best = origin
				}
			}
		}
		if best == "" {
			c.Dropped++
			continue
		}
		if t := ar.rr.Type(); t == dnswire.TypeSOA || t == dnswire.TypeCNAME {
			key := singletonKey{best, ar.rr.Name, t}
			if prev, seen := firstSeen[key]; seen {
				if prev != ar.rr.Data.String() {
					c.Conflicts++
				}
				continue
			}
			firstSeen[key] = ar.rr.Data.String()
		}
		if err := zoneFor(best).Add(ar.rr); err != nil {
			c.Dropped++
		}
	}

	// Recovery: fake SOA and apex NS where the capture lacked them.
	for origin, z := range c.Zones {
		if _, ok := z.SOA(); !ok {
			soa := dnswire.SOA{
				MName:   "reconstructed." + zoneApexHost(origin),
				RName:   "hostmaster." + zoneApexHost(origin),
				Serial:  opts.SyntheticSOASerial,
				Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
			}
			if err := z.Add(dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: 3600, Data: soa}); err != nil {
				return nil, fmt.Errorf("zonecon: synthesizing SOA for %s: %w", origin, err)
			}
			c.SynthesizedSOA = append(c.SynthesizedSOA, origin)
		}
		if len(z.RRset(origin, dnswire.TypeNS)) == 0 {
			if hosts, ok := nsSets[origin]; ok {
				for host := range hosts {
					rr := dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: host}}
					if err := z.Add(rr); err != nil {
						return nil, err
					}
				}
				c.SynthesizedNS = append(c.SynthesizedNS, origin)
			}
		}
	}
	sort.Strings(c.SynthesizedSOA)
	sort.Strings(c.SynthesizedNS)
	return c, nil
}

// zoneApexHost makes a syntactically valid host label base for synthetic
// SOA fields ("." -> "root.", "com." -> "com.").
func zoneApexHost(origin string) string {
	if origin == "." {
		return "root."
	}
	return origin
}

// appendAddrOnce appends a if absent.
func appendAddrOnce(s []netip.Addr, a netip.Addr) []netip.Addr {
	for _, x := range s {
		if x == a {
			return s
		}
	}
	return append(s, a)
}

// Origins lists reconstructed zone origins in canonical order.
func (c *Construction) Origins() []string {
	out := make([]string, 0, len(c.Zones))
	for o := range c.Zones {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return dnswire.CompareNames(out[i], out[j]) < 0 })
	return out
}
