package qlog

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 1234567890123456789, Latency: 42000, Peer: netip.MustParseAddr("198.18.0.7"),
			View: "root", ID: 7, QType: 1, QClass: 1, Rcode: 0, Transport: 0, Flags: FlagCacheHit},
		{Time: 2, Latency: -1, Peer: netip.MustParseAddr("2001:db8::9"),
			View: "", ID: 65535, QType: 28, QClass: 1, Rcode: 3, Transport: 2, Flags: FlagDropped | FlagSlow},
		{Time: 3, Latency: -1}, // no peer, no view, no qname
	}
	w, _ := nameToWire("www.example.com")
	events[0].SetQName(w)
	w2, _ := nameToWire("x.org")
	events[1].SetQName(w2)

	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for i := range events {
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bw.BytesWritten(); got != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, stream is %d", got, buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	var ev Event
	for i := range events {
		if err := r.Next(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		want := events[i]
		if ev.Time != want.Time || ev.Latency != want.Latency || ev.Peer != want.Peer ||
			ev.View != want.View || ev.ID != want.ID || ev.QType != want.QType ||
			ev.QClass != want.QClass || ev.Rcode != want.Rcode ||
			ev.Transport != want.Transport || ev.Flags != want.Flags ||
			ev.QNameLen != want.QNameLen ||
			!bytes.Equal(ev.QName[:ev.QNameLen], want.QName[:want.QNameLen]) {
			t.Errorf("event %d: round trip mismatch\n got %+v\nwant %+v", i, ev, want)
		}
	}
	if err := r.Next(&ev); err != io.EOF {
		t.Fatalf("after last event: %v, want io.EOF", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	ev := Event{Time: 1}
	w, _ := nameToWire("a.example.com")
	ev.SetQName(w)
	for i := 0; i < 3; i++ {
		if err := bw.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()

	// Cut mid-record: the reader must deliver the whole records and then
	// report the tear as ErrUnexpectedEOF, not EOF.
	cut := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(cut))
	var out Event
	n := 0
	var err error
	for {
		if err = r.Next(&out); err != nil {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("decoded %d whole records, want 2", n)
	}
	if err != io.ErrUnexpectedEOF {
		t.Errorf("tear reported as %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTQLOG0xxxx")))
	var ev Event
	if err := r.Next(&ev); err == nil || err == io.EOF {
		t.Fatalf("bad magic: %v, want parse error", err)
	}
}
