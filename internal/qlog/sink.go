package qlog

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Sink receives transformed event batches from the collector goroutine.
// Sinks self-account instead of returning errors: a sink that cannot
// write sheds the batch (counting it dropped), so one broken sink never
// wedges the pipeline or steals events from its siblings. WriteBatch is
// called from one goroutine; Stats may be read concurrently.
type Sink interface {
	Name() string
	WriteBatch(evs []Event)
	Stats() SinkStats
	Close() error
}

// SinkStats is one sink's accounting: Written + Dropped equals the
// events the pipeline offered it.
type SinkStats struct {
	Written int64
	Dropped int64
	Errors  int64
}

// sinkCounters is the shared accounting implementation.
type sinkCounters struct {
	written atomic.Int64
	dropped atomic.Int64
	errors  atomic.Int64
}

func (c *sinkCounters) Stats() SinkStats {
	return SinkStats{Written: c.written.Load(), Dropped: c.dropped.Load(), Errors: c.errors.Load()}
}

// streamWriter is the writer surface shared by the LDQLOG01 record
// format (Writer) and the LDQLOG02 block format (BlockWriter).
type streamWriter interface {
	Write(*Event) error
	Flush() error
	BytesWritten() int64
}

// FileSink writes the binary stream to a file, rotating by size:
// the live file is always `path`; on rotation it is renamed to
// `path.<seq>` and the oldest rotations beyond the keep budget are
// removed, bounding total disk to roughly (keep+1) × rotateBytes.
//
// A path ending in ".z" selects the compressed LDQLOG02 block format;
// anything else gets the plain record stream. Reader auto-detects
// either, so downstream tooling does not care.
type FileSink struct {
	sinkCounters
	path        string
	rotateBytes int64
	keep        int
	compress    bool
	f           *os.File
	w           streamWriter
	seq         int
}

// NewFileSink opens (truncating) path. rotateBytes <= 0 disables
// rotation; keep <= 0 keeps 8 rotated files.
func NewFileSink(path string, rotateBytes int64, keep int) (*FileSink, error) {
	if keep <= 0 {
		keep = 8
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &FileSink{path: path, rotateBytes: rotateBytes, keep: keep, f: f,
		compress: strings.HasSuffix(path, ".z")}
	s.w = s.newWriter(f)
	return s, nil
}

// newWriter builds the stream writer matching the sink's format choice.
func (s *FileSink) newWriter(f *os.File) streamWriter {
	if s.compress {
		return NewBlockWriter(f)
	}
	return NewWriter(f)
}

// Name implements Sink.
func (s *FileSink) Name() string { return "file" }

// WriteBatch implements Sink.
func (s *FileSink) WriteBatch(evs []Event) {
	if s.f == nil {
		s.dropped.Add(int64(len(evs)))
		return
	}
	for i := range evs {
		if err := s.w.Write(&evs[i]); err != nil {
			s.errors.Add(1)
			s.dropped.Add(int64(len(evs) - i))
			return
		}
		s.written.Add(1)
	}
	if s.rotateBytes > 0 && s.w.BytesWritten() >= s.rotateBytes {
		if err := s.rotate(); err != nil {
			s.errors.Add(1)
		}
	}
}

// rotate renames the live file aside and starts a fresh one.
func (s *FileSink) rotate() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.seq++
	if err := os.Rename(s.path, s.path+"."+strconv.Itoa(s.seq)); err != nil {
		return err
	}
	if old := s.seq - s.keep; old >= 1 {
		_ = os.Remove(s.path + "." + strconv.Itoa(old))
	}
	f, err := os.Create(s.path)
	if err != nil {
		s.f, s.w = nil, nil
		return err
	}
	s.f = f
	s.w = s.newWriter(f)
	return nil
}

// Close implements Sink.
func (s *FileSink) Close() error {
	if s.f == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// TCPSink streams the binary format to a collector address. Writes carry
// a per-batch deadline, so a stalled peer sheds batches instead of
// stalling the pipeline; a broken connection is redialed with backoff,
// and each new connection restarts the stream (magic included), which
// Reader handles naturally on the receiving side.
type TCPSink struct {
	sinkCounters
	addr    string
	timeout time.Duration

	conn     net.Conn
	w        *Writer
	nextDial time.Time
	backoff  time.Duration
}

// DefaultTCPTimeout is the per-batch write deadline.
const DefaultTCPTimeout = time.Second

// NewTCPSink creates a sink streaming to addr ("host:port"). The
// connection is dialed lazily on first write, so a collector that is not
// up yet costs drops, not a failed start. timeout <= 0 means
// DefaultTCPTimeout.
func NewTCPSink(addr string, timeout time.Duration) *TCPSink {
	if timeout <= 0 {
		timeout = DefaultTCPTimeout
	}
	return &TCPSink{addr: addr, timeout: timeout}
}

// Name implements Sink.
func (s *TCPSink) Name() string { return "tcp" }

// WriteBatch implements Sink.
func (s *TCPSink) WriteBatch(evs []Event) {
	if s.conn == nil && !s.redial() {
		s.dropped.Add(int64(len(evs)))
		return
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	for i := range evs {
		if err := s.w.Write(&evs[i]); err != nil {
			s.fail(int64(len(evs) - i))
			return
		}
	}
	if err := s.w.Flush(); err != nil {
		s.fail(int64(len(evs)))
		return
	}
	s.written.Add(int64(len(evs)))
	s.backoff = 0
}

// redial attempts a (rate-limited) reconnect, reporting success.
func (s *TCPSink) redial() bool {
	now := time.Now()
	if now.Before(s.nextDial) {
		return false
	}
	conn, err := net.DialTimeout("tcp", s.addr, s.timeout)
	if err != nil {
		s.errors.Add(1)
		s.bumpBackoff(now)
		return false
	}
	s.conn = conn
	s.w = NewWriter(conn)
	return true
}

// fail drops n events, tears the connection down, and arms the redial
// backoff.
func (s *TCPSink) fail(n int64) {
	s.errors.Add(1)
	s.dropped.Add(n)
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.w = nil
	}
	s.bumpBackoff(time.Now())
}

func (s *TCPSink) bumpBackoff(now time.Time) {
	if s.backoff == 0 {
		s.backoff = 10 * time.Millisecond
	} else if s.backoff < 500*time.Millisecond {
		s.backoff *= 2
	}
	s.nextDial = now.Add(s.backoff)
}

// Close implements Sink.
func (s *TCPSink) Close() error {
	if s.conn == nil {
		return nil
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.timeout))
	if err := s.w.Flush(); err != nil {
		s.conn.Close()
		return err
	}
	return s.conn.Close()
}

// TraceSink converts events into trace entries and writes them through
// an internal/trace writer (text or binary), so a live capture is
// immediately a replayable trace. Events without a recorded qname cannot
// synthesize a query message and are counted dropped.
type TraceSink struct {
	sinkCounters
	w     entryWriter
	flush func() error
}

// entryWriter matches trace.Writer without importing it here (entry.go
// owns the trace dependency).
type entryWriter interface {
	write(ev *Event) error
}

// Name implements Sink.
func (s *TraceSink) Name() string { return "trace" }

// WriteBatch implements Sink.
func (s *TraceSink) WriteBatch(evs []Event) {
	for i := range evs {
		if err := s.w.write(&evs[i]); err != nil {
			if err == errNoQName {
				s.dropped.Add(1)
				continue
			}
			s.errors.Add(1)
			s.dropped.Add(int64(len(evs) - i))
			return
		}
		s.written.Add(1)
	}
}

// Close implements Sink.
func (s *TraceSink) Close() error {
	if s.flush != nil {
		return s.flush()
	}
	return nil
}

var errNoQName = fmt.Errorf("qlog: event has no qname to synthesize a query from")

// DiscardSink counts events and throws them away — the bench harness's
// no-op sink, isolating ring+collector throughput from encode cost.
type DiscardSink struct {
	sinkCounters
}

// NewDiscardSink creates a DiscardSink.
func NewDiscardSink() *DiscardSink { return &DiscardSink{} }

// Name implements Sink.
func (s *DiscardSink) Name() string { return "discard" }

// WriteBatch implements Sink.
func (s *DiscardSink) WriteBatch(evs []Event) { s.written.Add(int64(len(evs))) }

// Close implements Sink.
func (s *DiscardSink) Close() error { return nil }
