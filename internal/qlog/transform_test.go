package qlog

import (
	"strings"
	"testing"
	"time"
)

func mkEvent(t *testing.T, name string) Event {
	t.Helper()
	var ev Event
	if name != "" {
		w, err := nameToWire(name)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetQName(w)
	}
	return ev
}

func TestSampler(t *testing.T) {
	s := NewSampler(4)
	kept := 0
	for i := 0; i < 100; i++ {
		var ev Event
		if s.Transform(&ev) {
			kept++
		}
	}
	if kept != 25 {
		t.Errorf("1-in-4 sampler kept %d of 100", kept)
	}
	all := NewSampler(0)
	var ev Event
	if !all.Transform(&ev) {
		t.Error("sampler with every<=1 must keep everything")
	}
}

func TestSuffixFilter(t *testing.T) {
	f, err := NewSuffixFilter("example.com", "ORG.")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		keep bool
	}{
		{"www.example.com.", true},
		{"Example.COM.", true},
		{"a.b.c.example.com.", true},
		{"wwwexample.com.", false}, // not at a label boundary
		{"example.org.", true},
		{"example.net.", false},
		{"", false}, // no qname recorded → cannot satisfy the keep-list
	} {
		ev := mkEvent(t, tc.name)
		if got := f.Transform(&ev); got != tc.keep {
			t.Errorf("suffix filter %q = %v, want %v", tc.name, got, tc.keep)
		}
	}
	if _, err := NewSuffixFilter(); err == nil {
		t.Error("empty suffix list must be rejected")
	}
}

func TestAnonymizer(t *testing.T) {
	a := NewAnonymizer("secret")
	ev1 := mkEvent(t, "www.example.com.")
	ev2 := mkEvent(t, "WWW.EXAMPLE.com.")
	ev3 := mkEvent(t, "mail.example.com.")
	for _, ev := range []*Event{&ev1, &ev2, &ev3} {
		if !a.Transform(ev) {
			t.Fatal("anonymizer must never drop")
		}
	}
	n1, n2, n3 := ev1.QNameString(), ev2.QNameString(), ev3.QNameString()
	if n1 != n2 {
		t.Errorf("case-insensitive names hash apart: %q vs %q", n1, n2)
	}
	if n1 == n3 {
		t.Errorf("distinct names collide: %q", n1)
	}
	if !strings.HasSuffix(n1, ".com.") {
		t.Errorf("TLD not preserved: %q", n1)
	}
	if strings.Contains(n1, "www") || strings.Contains(n1, "example") {
		t.Errorf("original labels leak: %q", n1)
	}
	// A different key must produce a different pseudonym.
	b := NewAnonymizer("other")
	ev4 := mkEvent(t, "www.example.com.")
	b.Transform(&ev4)
	if ev4.QNameString() == n1 {
		t.Error("pseudonym independent of key")
	}
	// TLD-only and empty names pass through untouched.
	ev5 := mkEvent(t, "com.")
	a.Transform(&ev5)
	if ev5.QNameString() != "com." {
		t.Errorf("TLD-only name rewritten to %q", ev5.QNameString())
	}
}

func TestTagger(t *testing.T) {
	tg := NewTagger(time.Millisecond)
	ev := mkEvent(t, "www.example.com.")
	ev.Latency = 2 * time.Millisecond.Nanoseconds()
	tg.Transform(&ev)
	if ev.Flags&FlagSlow == 0 {
		t.Error("2ms latency not tagged slow at 1ms threshold")
	}
	fast := mkEvent(t, "www.example.com.")
	fast.Latency = -1
	tg.Transform(&fast)
	if fast.Flags&FlagSlow != 0 {
		t.Error("untimed event tagged slow")
	}
	tunnel := mkEvent(t, strings.Repeat("a", 40)+".example.com.")
	tg.Transform(&tunnel)
	if tunnel.Flags&FlagSuspicious == 0 {
		t.Error("40-byte label not tagged suspicious")
	}
	deep := mkEvent(t, strings.TrimSuffix(strings.Repeat("x.", 20), ".")+".")
	tg.Transform(&deep)
	if deep.Flags&FlagSuspicious == 0 {
		t.Error("20-label name not tagged suspicious")
	}
	if ev.Flags&FlagSuspicious != 0 {
		t.Error("ordinary name tagged suspicious")
	}
	// slow=0 disables the latency tag but keeps shape tagging.
	off := NewTagger(0)
	lat := mkEvent(t, "www.example.com.")
	lat.Latency = time.Second.Nanoseconds()
	off.Transform(&lat)
	if lat.Flags&FlagSlow != 0 {
		t.Error("latency tagged with slow=0")
	}
}

func TestWireQNameLen(t *testing.T) {
	wire, err := nameToWire("www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 12)
	msg[5] = 1 // QDCOUNT=1
	msg = append(msg, wire...)
	msg = append(msg, 0, 1, 0, 1) // qtype qclass
	if got := WireQNameLen(msg); got != len(wire) {
		t.Errorf("WireQNameLen = %d, want %d", got, len(wire))
	}
	// Truncated (missing qclass byte).
	if got := WireQNameLen(msg[:len(msg)-1]); got != 0 {
		t.Errorf("truncated question: got %d, want 0", got)
	}
	// QDCOUNT=0.
	none := make([]byte, 64)
	if got := WireQNameLen(none); got != 0 {
		t.Errorf("QDCOUNT=0: got %d, want 0", got)
	}
	// Compression pointer in the name.
	comp := make([]byte, 12)
	comp[5] = 1
	comp = append(comp, 0xC0, 0x0C, 0, 1, 0, 1)
	if got := WireQNameLen(comp); got != 0 {
		t.Errorf("compressed name: got %d, want 0", got)
	}
}
