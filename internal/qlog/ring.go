package qlog

import (
	"sync"
	"sync/atomic"
)

// DefaultRingSize is the per-producer event ring capacity. At ~300 bytes
// per slot a ring is ~2.4 MiB; one ring per batch worker keeps the
// backlog a collector stall can absorb proportional to worker count.
const DefaultRingSize = 8192

// pad separates the hot atomics onto their own cache lines so the
// producer's tail store and the consumer's head store never false-share.
type pad [56]byte

// ring is a bounded single-producer single-consumer queue of Events.
// Slots are stored inline: the producer writes its event directly into
// the slot it reserved, so publishing is the field stores plus one
// release-store of tail. The consumer copies slots out in batches and
// release-stores head; the producer's acquire-load of head is what
// licenses slot reuse. This is the Go-memory-model shape of the classic
// Lamport queue: atomic.Store is a release, atomic.Load an acquire.
type ring struct {
	slots []Event
	mask  uint64

	_     pad
	head  atomic.Uint64 // next slot the consumer will read
	_     pad
	tail  atomic.Uint64 // next slot the producer will write
	_     pad
	drops atomic.Int64 // events shed because the ring was full
}

func newRing(size int) *ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{slots: make([]Event, n), mask: uint64(n - 1)}
}

// drain copies up to len(dst) pending events out of the ring, returning
// how many it took. Consumer side only (the collector goroutine).
func (r *ring) drain(dst []Event) int {
	h := r.head.Load()
	t := r.tail.Load() // acquire: slot writes up to t are visible
	n := int(t - h)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.slots[(h+uint64(i))&r.mask]
	}
	r.head.Store(h + uint64(n)) // release: slots are free to reuse
	return n
}

// depth is the current backlog. Approximate under concurrency; exact at
// quiescence.
func (r *ring) depth() int64 { return int64(r.tail.Load() - r.head.Load()) }

// published is the total number of events ever committed.
func (r *ring) published() int64 { return int64(r.tail.Load()) }

// Producer is the single-producer handle to one ring. The owning
// goroutine (a batch shard's worker, a replay querier) calls Reserve to
// claim the next slot, fills it in place, and Commit publishes it:
//
//	if ev := p.Reserve(); ev != nil {
//		ev.Time = now
//		...
//		p.Commit()
//	}
//
// Reserve returns nil — and counts a drop — when the ring is full; the
// caller simply skips the event. Zero-value Producers (no pipeline
// attached) are not usable; hot paths guard with a nil check on the
// Producer pointer itself.
//
// The single-producer half of the contract is machine-checked:
// //ldlint:confined makes ldlint's shardconfine analyzer flag any
// Producer value escaping the goroutine that owns it.
//
//ldlint:confined
type Producer struct {
	r *ring
	// tail mirrors r.tail locally so the hot path stores, never loads,
	// the shared counter; headCache amortizes the acquire-load of head to
	// once per ring-size of progress.
	tail      uint64
	headCache uint64
}

// Reserve claims the next slot for writing, or returns nil (counting a
// drop) when the ring is full. The slot contents are unspecified; fill
// every field before Commit.
//
//ldlint:noalloc
func (p *Producer) Reserve() *Event {
	r := p.r
	if p.tail-p.headCache >= uint64(len(r.slots)) {
		p.headCache = r.head.Load()
		if p.tail-p.headCache >= uint64(len(r.slots)) {
			r.drops.Add(1)
			return nil
		}
	}
	return &r.slots[p.tail&r.mask]
}

// Commit publishes the slot returned by the last successful Reserve.
//
//ldlint:noalloc
func (p *Producer) Commit() {
	p.tail++
	p.r.tail.Store(p.tail) // release: pairs with drain's tail load
}

// LockedProducer wraps a Producer in a mutex for paths with multiple
// emitting goroutines (the shared Respond path serving per-datagram UDP,
// TCP, and TLS). The lock is held across the slot fill — tens of
// nanoseconds — and an enqueue still never blocks on the collector or a
// sink: a full ring drops exactly as in the SPSC case.
type LockedProducer struct {
	mu sync.Mutex
	p  Producer
}

// Reserve locks and claims the next slot. On success the lock is held
// until Commit; on a full ring it is released and nil returned.
//
//ldlint:noalloc
func (lp *LockedProducer) Reserve() *Event {
	lp.mu.Lock()
	ev := lp.p.Reserve()
	if ev == nil {
		lp.mu.Unlock()
	}
	return ev
}

// Commit publishes the slot claimed by Reserve and releases the lock.
//
//ldlint:noalloc
func (lp *LockedProducer) Commit() {
	lp.p.Commit()
	lp.mu.Unlock()
}
