package qlog

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"ldplayer/internal/trace"
)

// The LDQLOG02 block stream: the record stream's events, re-framed into
// the LDTRC02 block frame (internal/trace's 40-byte header: count,
// raw/stored lengths, first/last timestamps, CRC-32C) with varint/delta
// payload encoding and per-block DEFLATE. Timestamps are deltas against
// the previous event, latencies and the small integer fields are
// varints, and the whole payload deflates as one unit — repetitive
// capture fields (same peer, same view, same qname suffixes) compress
// across records, which a per-record scheme cannot do. Blocks that fail
// to shrink are stored raw, so a hostile or incompressible stream never
// grows past the record format plus the 40-byte per-block frame.
//
//	file  := magic8 "LDQLOG02" block*
//	block := trace block header | payload (DEFLATE or raw per header codec)
//	event := timeΔ zigzag-varint | latency zigzag-varint |
//	         u8 fam(0|4|16) addr[fam] |
//	         uvarint id | uvarint qtype | uvarint qclass |
//	         u8 rcode | u8 transport | u8 flags |
//	         uvarint viewLen view | uvarint qnameLen qname
//
// There is no footer index: qlog files are append-and-rotate streams,
// read sequentially. A file cut mid-block (crash, kill -9) yields every
// complete block and then a clean EOF, same contract as the record
// stream's torn-record handling.

var qlogBlockMagic = [8]byte{'L', 'D', 'Q', 'L', 'O', 'G', '0', '2'}

// Block geometry: cut at whichever limit hits first.
const (
	blockEvents   = 1024
	blockMaxBytes = 256 * 1024
)

var (
	errQlogBlockColumn = errors.New("qlog: block event truncated or malformed")
	errQlogBlockCRC    = errors.New("qlog: block payload CRC mismatch")
)

// BlockWriter writes the LDQLOG02 block stream. Same surface as Writer
// (Write/Flush/BytesWritten), so FileSink swaps one for the other on a
// ".z" path. Flush cuts the in-progress block — frequent flushing costs
// compression, which is why the sink only flushes at rotation and Close.
type BlockWriter struct {
	w         *bufio.Writer
	wroteHead bool
	bytes     int64

	count     int
	firstNano int64
	lastNano  int64
	prevNano  int64
	payload   []byte

	scratch []byte
	zbuf    bytes.Buffer
	zw      *flate.Writer
}

// NewBlockWriter creates a BlockWriter on w.
func NewBlockWriter(w io.Writer) *BlockWriter {
	return &BlockWriter{w: bufio.NewWriterSize(w, 256*1024)}
}

// Write implements the event-writer surface: the event joins the
// current block, which is cut at the block geometry.
func (w *BlockWriter) Write(ev *Event) error {
	if !w.wroteHead {
		if _, err := w.w.Write(qlogBlockMagic[:]); err != nil {
			return err
		}
		w.bytes += int64(len(qlogBlockMagic))
		w.wroteHead = true
	}
	if w.count == 0 {
		w.firstNano = ev.Time
		w.prevNano = ev.Time
	}
	w.lastNano = ev.Time

	p := w.payload
	p = binary.AppendVarint(p, ev.Time-w.prevNano)
	w.prevNano = ev.Time
	p = binary.AppendVarint(p, ev.Latency)
	switch {
	case ev.Peer.Is4():
		a := ev.Peer.As4()
		p = append(p, 4)
		p = append(p, a[:]...)
	case ev.Peer.Is6():
		a := ev.Peer.As16()
		p = append(p, 16)
		p = append(p, a[:]...)
	default:
		p = append(p, 0)
	}
	p = binary.AppendUvarint(p, uint64(ev.ID))
	p = binary.AppendUvarint(p, uint64(ev.QType))
	p = binary.AppendUvarint(p, uint64(ev.QClass))
	p = append(p, ev.Rcode, ev.Transport, ev.Flags)
	view := ev.View
	if len(view) > 255 {
		view = view[:255]
	}
	p = binary.AppendUvarint(p, uint64(len(view)))
	p = append(p, view...)
	p = binary.AppendUvarint(p, uint64(ev.QNameLen))
	p = append(p, ev.QName[:ev.QNameLen]...)
	w.payload = p
	w.count++

	if w.count >= blockEvents || len(w.payload) >= blockMaxBytes {
		return w.cutBlock()
	}
	return nil
}

// cutBlock deflates and writes the accumulated block.
func (w *BlockWriter) cutBlock() error {
	if w.count == 0 {
		return nil
	}
	codec := trace.BlockFlate
	stored := w.payload
	w.zbuf.Reset()
	if w.zw == nil {
		zw, err := flate.NewWriter(&w.zbuf, flate.DefaultCompression)
		if err != nil {
			return err
		}
		w.zw = zw
	} else {
		w.zw.Reset(&w.zbuf)
	}
	if _, err := w.zw.Write(w.payload); err != nil {
		return err
	}
	if err := w.zw.Close(); err != nil {
		return err
	}
	if w.zbuf.Len() < len(w.payload) {
		stored = w.zbuf.Bytes()
	} else {
		codec = trace.BlockRaw
	}

	hdr := trace.BlockHeader{
		Codec:     codec,
		Count:     uint32(w.count),
		RawLen:    uint32(len(w.payload)),
		StoredLen: uint32(len(stored)),
		FirstNano: w.firstNano,
		LastNano:  w.lastNano,
		CRC:       trace.BlockCRC(stored),
	}
	w.scratch = trace.AppendBlockHeader(w.scratch[:0], hdr)
	if _, err := w.w.Write(w.scratch); err != nil {
		return err
	}
	if _, err := w.w.Write(stored); err != nil {
		return err
	}
	w.bytes += int64(trace.BlockHeaderSize + len(stored))
	w.count = 0
	w.payload = w.payload[:0]
	return nil
}

// Flush cuts the in-progress block and flushes buffered output.
func (w *BlockWriter) Flush() error {
	if err := w.cutBlock(); err != nil {
		return err
	}
	return w.w.Flush()
}

// BytesWritten is the total stream size produced so far (including
// bytes still in the bufio buffer).
func (w *BlockWriter) BytesWritten() int64 { return w.bytes }

// blockCursor decodes events sequentially out of one inflated payload.
type blockCursor struct {
	buf      []byte
	off      int
	remain   uint32
	prevNano int64
}

func (c *blockCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, errQlogBlockColumn
	}
	c.off += n
	return v, nil
}

func (c *blockCursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, errQlogBlockColumn
	}
	c.off += n
	return v, nil
}

func (c *blockCursor) take(n int) ([]byte, error) {
	if n < 0 || n > len(c.buf)-c.off {
		return nil, errQlogBlockColumn
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b, nil
}

// next decodes one event.
func (c *blockCursor) next(ev *Event) error {
	dt, err := c.varint()
	if err != nil {
		return err
	}
	c.prevNano += dt
	ev.Time = c.prevNano
	if ev.Latency, err = c.varint(); err != nil {
		return err
	}
	famB, err := c.take(1)
	if err != nil {
		return err
	}
	switch famB[0] {
	case 0:
		ev.Peer = netip.Addr{}
	case 4:
		a, err := c.take(4)
		if err != nil {
			return err
		}
		ev.Peer = netip.AddrFrom4([4]byte(a))
	case 16:
		a, err := c.take(16)
		if err != nil {
			return err
		}
		ev.Peer = netip.AddrFrom16([16]byte(a))
	default:
		return fmt.Errorf("qlog: bad peer family %d in block", famB[0])
	}
	id, err := c.uvarint()
	if err != nil || id > 0xffff {
		return errQlogBlockColumn
	}
	ev.ID = uint16(id)
	qt, err := c.uvarint()
	if err != nil || qt > 0xffff {
		return errQlogBlockColumn
	}
	ev.QType = uint16(qt)
	qc, err := c.uvarint()
	if err != nil || qc > 0xffff {
		return errQlogBlockColumn
	}
	ev.QClass = uint16(qc)
	fixed, err := c.take(3)
	if err != nil {
		return err
	}
	ev.Rcode, ev.Transport, ev.Flags = fixed[0], fixed[1], fixed[2]
	vlen, err := c.uvarint()
	if err != nil || vlen > 255 {
		return errQlogBlockColumn
	}
	view, err := c.take(int(vlen))
	if err != nil {
		return err
	}
	ev.View = string(view)
	qlen, err := c.uvarint()
	if err != nil || qlen > MaxQName {
		return errQlogBlockColumn
	}
	qname, err := c.take(int(qlen))
	if err != nil {
		return err
	}
	ev.QNameLen = uint8(copy(ev.QName[:], qname))
	c.remain--
	return nil
}

// readBlock reads and decodes the next block frame off r into c.
// io.EOF at a frame boundary is a clean end of stream; a torn header or
// payload reports io.ErrUnexpectedEOF, mirroring the record stream.
func (c *blockCursor) readBlock(r *bufio.Reader, slab *[]byte) error {
	var hdrBuf [trace.BlockHeaderSize]byte
	if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	hdr, err := trace.ParseBlockHeader(hdrBuf[:])
	if err != nil {
		return err
	}
	if cap(*slab) < int(hdr.StoredLen) {
		*slab = make([]byte, hdr.StoredLen)
	}
	stored := (*slab)[:hdr.StoredLen]
	if _, err := io.ReadFull(r, stored); err != nil {
		return io.ErrUnexpectedEOF
	}
	if trace.BlockCRC(stored) != hdr.CRC {
		return errQlogBlockCRC
	}
	raw := stored
	if hdr.Codec == trace.BlockFlate {
		inflated := make([]byte, hdr.RawLen)
		zr := flate.NewReader(bytes.NewReader(stored))
		if _, err := io.ReadFull(zr, inflated); err != nil {
			return fmt.Errorf("qlog: inflating block: %w", err)
		}
		var one [1]byte
		if n, _ := zr.Read(one[:]); n != 0 {
			return errQlogBlockColumn
		}
		raw = inflated
	} else if uint64(len(raw)) != uint64(hdr.RawLen) {
		return errQlogBlockColumn
	}
	c.buf = raw
	c.off = 0
	c.remain = hdr.Count
	c.prevNano = hdr.FirstNano
	return nil
}
