package qlog

import (
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/obs"
)

// Config shapes a Pipeline.
type Config struct {
	// RingSize is the per-producer ring capacity, rounded up to a power
	// of two. Default DefaultRingSize.
	RingSize int
	// BatchSize is how many events the collector moves per ring sweep.
	// Default 512.
	BatchSize int
	// Poll is the collector's idle nap when every ring is empty. Default
	// 200µs — short enough that a ring holds seconds of headroom at any
	// sane rate, long enough to cost nothing when idle.
	Poll time.Duration
	// Transformers run in order on the collector goroutine; the first one
	// to return false drops the event (counted per transformer).
	Transformers []Transformer
	// Sinks receive every surviving event batch. Sinks self-account
	// (written/dropped/errors) and must never block indefinitely: a slow
	// sink stalls the collector, rings fill, and producers shed — by
	// design — but a *stuck* sink would pin the final drain.
	Sinks []Sink
}

// Pipeline owns the rings, the collector goroutine, the transformer
// chain, and the sinks. Typical lifecycle:
//
//	p := qlog.New(cfg)
//	p.Start()
//	... hand p to authserver.Engine.SetQlog / replay.Config.Qlog ...
//	... serve ...
//	p.Close() // final drain + sink close; stop producers first
type Pipeline struct {
	cfg Config

	mu    sync.Mutex // guards ring registration (copy-on-write)
	rings atomic.Pointer[[]*ring]

	// tdrops[i] counts events dropped by cfg.Transformers[i]; written by
	// the collector, read at scrape time.
	tdrops []atomic.Int64

	sinkBusy atomic.Int64 // cumulative ns spent inside sink WriteBatch

	started atomic.Bool
	closed  atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// New creates a Pipeline. Call Start to launch the collector.
func New(cfg Config) *Pipeline {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Microsecond
	}
	p := &Pipeline{
		cfg:    cfg,
		tdrops: make([]atomic.Int64, len(cfg.Transformers)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.rings.Store(&[]*ring{})
	return p
}

// Producer registers a new SPSC ring and returns its producer handle.
// Call once per emitting goroutine, before that goroutine starts
// emitting (shards take theirs at NewShard, queriers at construction).
func (p *Pipeline) Producer() *Producer {
	r := newRing(p.cfg.RingSize)
	p.addRing(r)
	return &Producer{r: r}
}

// SharedProducer registers a ring whose producer side is mutex-guarded,
// for paths emitted from multiple goroutines.
func (p *Pipeline) SharedProducer() *LockedProducer {
	r := newRing(p.cfg.RingSize)
	p.addRing(r)
	lp := &LockedProducer{}
	lp.p.r = r
	return lp
}

func (p *Pipeline) addRing(r *ring) {
	p.mu.Lock()
	cur := *p.rings.Load()
	next := make([]*ring, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = r
	p.rings.Store(&next)
	p.mu.Unlock()
}

// Start launches the collector goroutine. Idempotent.
func (p *Pipeline) Start() {
	if p.started.CompareAndSwap(false, true) {
		go p.run()
	}
}

// Close drains what the rings still hold, flushes and closes every sink,
// and returns the first sink close error. Stop the producers (the
// server, the replay engine) first: events emitted after Close are
// counted as ring drops, not exported.
func (p *Pipeline) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	if p.started.Load() {
		close(p.stop)
		<-p.done
	} else {
		// Never started: drain inline so file sinks still capture
		// everything emitted before Close.
		batch := make([]Event, p.cfg.BatchSize)
		for p.sweep(batch) > 0 {
		}
	}
	var err error
	for _, s := range p.cfg.Sinks {
		if e := s.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// run is the collector loop: sweep every ring, transform, fan out;
// sleep only when everything was empty.
func (p *Pipeline) run() {
	defer close(p.done)
	batch := make([]Event, p.cfg.BatchSize)
	for {
		n := p.sweep(batch)
		select {
		case <-p.stop:
			for p.sweep(batch) > 0 {
			}
			return
		default:
		}
		if n == 0 {
			time.Sleep(p.cfg.Poll)
		}
	}
}

// sweep drains each ring once (up to one batch each) and processes what
// it finds, returning the total events moved.
func (p *Pipeline) sweep(batch []Event) int {
	total := 0
	for _, r := range *p.rings.Load() {
		n := r.drain(batch)
		if n > 0 {
			p.process(batch[:n])
			total += n
		}
	}
	return total
}

// process runs one drained batch through the transformer chain (in
// place, compacting) and hands the survivors to every sink.
func (p *Pipeline) process(evs []Event) {
	kept := 0
	for i := range evs {
		dropped := false
		for ti := range p.cfg.Transformers {
			if !p.cfg.Transformers[ti].Transform(&evs[i]) {
				p.tdrops[ti].Add(1)
				dropped = true
				break
			}
		}
		if !dropped {
			if kept != i {
				evs[kept] = evs[i]
			}
			kept++
		}
	}
	if kept == 0 || len(p.cfg.Sinks) == 0 {
		return
	}
	t0 := time.Now()
	for _, s := range p.cfg.Sinks {
		s.WriteBatch(evs[:kept])
	}
	p.sinkBusy.Add(time.Since(t0).Nanoseconds())
}

// Stats is an accounting snapshot. At quiescence (producers stopped,
// pipeline closed) the invariants hold exactly:
//
//	Published + RingDrops  == events offered by the datapath
//	Published              == TransformDrops + SinkOffered(per sink)
//	SinkWritten + SinkDropped == SinkOffered(summed)
type Stats struct {
	Published      int64 // events committed into rings
	RingDrops      int64 // events shed at full rings
	TransformDrops int64 // events dropped by the transformer chain
	SinkWritten    int64 // events successfully written, summed over sinks
	SinkDropped    int64 // events a sink shed (down conn, write error)
	SinkErrors     int64 // sink error transitions
	Depth          int64 // current ring backlog
	SinkBusyNS     int64 // cumulative ns the collector spent in sinks
}

// Stats returns the current accounting snapshot.
func (p *Pipeline) Stats() Stats {
	var st Stats
	for _, r := range *p.rings.Load() {
		st.Published += r.published()
		st.RingDrops += r.drops.Load()
		st.Depth += r.depth()
	}
	for i := range p.tdrops {
		st.TransformDrops += p.tdrops[i].Load()
	}
	for _, s := range p.cfg.Sinks {
		ss := s.Stats()
		st.SinkWritten += ss.Written
		st.SinkDropped += ss.Dropped
		st.SinkErrors += ss.Errors
	}
	st.SinkBusyNS = p.sinkBusy.Load()
	return st
}

// Instrument federates the pipeline's self-metrics into reg: event and
// drop counters by stage, per-sink written/dropped/error counters, the
// ring-depth gauge, and collector sink-busy time. Everything reads the
// existing atomics at scrape time; the datapath pays nothing.
func (p *Pipeline) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("qlog_events_total", "", "events published into qlog rings",
		func() int64 { return p.Stats().Published })
	reg.CounterFunc("qlog_dropped_total", obs.LabelValue("stage", "ring"),
		"events shed at full rings (datapath never blocks)",
		func() int64 { return p.Stats().RingDrops })
	for i, t := range p.cfg.Transformers {
		idx := i
		reg.CounterFunc("qlog_dropped_total", obs.LabelValue("stage", "transform:"+t.Name()),
			"events dropped by a transformer",
			func() int64 { return p.tdrops[idx].Load() })
	}
	for _, s := range p.cfg.Sinks {
		sink := s
		reg.CounterFunc("qlog_sink_written_total", obs.LabelValue("sink", sink.Name()),
			"events written by each sink",
			func() int64 { return sink.Stats().Written })
		reg.CounterFunc("qlog_sink_dropped_total", obs.LabelValue("sink", sink.Name()),
			"events shed by each sink (backpressure, broken peer)",
			func() int64 { return sink.Stats().Dropped })
		reg.CounterFunc("qlog_sink_errors_total", obs.LabelValue("sink", sink.Name()),
			"sink error transitions",
			func() int64 { return sink.Stats().Errors })
	}
	reg.GaugeFunc("qlog_ring_depth", "", "events waiting in rings for the collector",
		func() int64 { return p.Stats().Depth })
	reg.CounterFunc("qlog_sink_busy_ns_total", "", "collector time spent inside sinks (ns)",
		p.sinkBusy.Load)
}
