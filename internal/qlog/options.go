package qlog

import (
	"fmt"
	"strings"
	"time"
)

// Options is the flag-level description of a pipeline, shared by the
// metadns and ldplayer -qlog-* flags so both binaries configure
// telemetry identically.
type Options struct {
	// File streams events to this path as a rotating binary qlog file
	// ("" = no file sink).
	File string
	// FileRotateMB rotates the file after this many MiB (0 = never).
	FileRotateMB int
	// FileKeep bounds how many rotated files are retained (0 = default).
	FileKeep int
	// TCP streams events to this collector address ("" = no TCP sink).
	TCP string
	// TCPTimeout is the per-batch write deadline (0 = default).
	TCPTimeout time.Duration
	// Sample keeps 1 in N events (<= 1 keeps all).
	Sample int
	// Suffixes, when non-empty, is a comma-separated keep-list of qname
	// suffixes.
	Suffixes string
	// AnonKey, when non-empty, anonymizes qnames with this keyed hash.
	AnonKey string
	// Slow tags events with sampled latency above this threshold (0
	// disables the latency tag; suspicious-qname tagging runs whenever
	// any tagging is on).
	Slow time.Duration
	// Tag enables the slow/suspicious tagger even when Slow is 0.
	Tag bool
	// RingSize overrides the per-producer ring capacity (0 = default).
	RingSize int
}

// Enabled reports whether any sink is configured.
func (o Options) Enabled() bool { return o.File != "" || o.TCP != "" }

// NewFromOptions builds and starts a pipeline from o. Transformer order
// is fixed: sample → suffix filter → tag → anonymize, so tagging and
// filtering see real qnames and only the export is pseudonymous.
func NewFromOptions(o Options) (*Pipeline, error) {
	if !o.Enabled() {
		return nil, fmt.Errorf("qlog: no sink configured (need a file or TCP address)")
	}
	cfg := Config{RingSize: o.RingSize}
	if o.Sample > 1 {
		cfg.Transformers = append(cfg.Transformers, NewSampler(o.Sample))
	}
	if o.Suffixes != "" {
		f, err := NewSuffixFilter(strings.Split(o.Suffixes, ",")...)
		if err != nil {
			return nil, err
		}
		cfg.Transformers = append(cfg.Transformers, f)
	}
	if o.Slow > 0 || o.Tag {
		cfg.Transformers = append(cfg.Transformers, NewTagger(o.Slow))
	}
	if o.AnonKey != "" {
		cfg.Transformers = append(cfg.Transformers, NewAnonymizer(o.AnonKey))
	}
	if o.File != "" {
		fs, err := NewFileSink(o.File, int64(o.FileRotateMB)<<20, o.FileKeep)
		if err != nil {
			return nil, err
		}
		cfg.Sinks = append(cfg.Sinks, fs)
	}
	if o.TCP != "" {
		cfg.Sinks = append(cfg.Sinks, NewTCPSink(o.TCP, o.TCPTimeout))
	}
	p := New(cfg)
	p.Start()
	return p, nil
}
