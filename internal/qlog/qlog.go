// Package qlog is the streaming query-log telemetry pipeline: one
// compact binary event per query, exported off the datapath without
// perturbing it. It is the dnstap-style collectors → transformers →
// loggers architecture, specialized for this repo's hot paths:
//
//   - Producers (one per authserver batch shard, one per replay querier,
//     plus a mutex-wrapped producer for the shared Respond path) write
//     events directly into per-producer bounded SPSC rings. An enqueue
//     is a bounds check and a handful of stores — never a syscall, never
//     a lock on the SPSC rings, never a block. When a ring is full the
//     event is counted as dropped and the datapath moves on; telemetry
//     load-sheds, service never does.
//
//   - A single collector goroutine sweeps the rings, runs each event
//     through a pluggable transformer chain (sampling, qname suffix
//     filtering, keyed-hash anonymization, slow/suspicious tagging) and
//     fans the survivors out to sinks: a rotating binary file, a
//     length-prefixed TCP stream, or conversion into the existing
//     text/pcap trace formats so captured streams feed straight back
//     into `ldplayer replay`.
//
// Every stage accounts what it sheds: ring drops, per-transformer drops,
// and per-sink written/dropped/error counts federate into the obs
// registry via Pipeline.Instrument, so "events + drops == queries" is an
// auditable invariant, not a hope.
package qlog

import "net/netip"

// MaxQName is the largest wire-form domain name (RFC 1035 §3.1), root
// terminator included. Event stores qnames inline at this bound so ring
// slots are fixed-size and an enqueue never chases a pointer.
const MaxQName = 255

// Event flag bits.
const (
	// FlagCacheHit marks a query answered from the packed-response cache.
	FlagCacheHit uint8 = 1 << 0
	// FlagSlow is set by the Tagger when the sampled latency exceeds its
	// threshold.
	FlagSlow uint8 = 1 << 1
	// FlagSuspicious is set by the Tagger for qnames matching its
	// tunnel-ish heuristics (overlong labels, excessive label counts).
	FlagSuspicious uint8 = 1 << 2
	// FlagDropped marks a query that produced no response (undecodable,
	// or policy-dropped).
	FlagDropped uint8 = 1 << 3
	// FlagClientSend marks a replay-side transmission event (the peer is
	// the emulated source); server-side events leave it clear.
	FlagClientSend uint8 = 1 << 4
)

// Event is one query's telemetry record. It is a fixed-size value — the
// qname is stored inline in wire form — so producers copy fields straight
// into a ring slot with no per-event allocation and no shared buffers.
//
// Peer is the client identity: the query's source address on the server
// side, the emulated original source on the replay side. View names the
// split-horizon view that answered ("" when unknown). Latency is the
// engine-measured service time in nanoseconds for queries the obs sampler
// timed, and -1 for the rest — latency is sampled, events are not.
type Event struct {
	Time    int64 // unix nanoseconds at receive (server) or send (client)
	Latency int64 // sampled service latency in ns; -1 = not timed

	Peer netip.Addr // client identity; see Event doc
	View string     // split-horizon view name; aliases engine-owned memory

	ID     uint16 // DNS message ID
	QType  uint16
	QClass uint16

	Rcode     uint8
	Transport uint8 // trace.Protocol / authserver.Transport numbering
	Flags     uint8
	QNameLen  uint8 // wire-form length incl. root terminator; 0 = unknown

	QName [MaxQName]byte // wire-form (length-prefixed labels), not unpacked
}

// SetQName stores a wire-form qname (root terminator included) inline.
// Overlong or empty names store as unknown.
//
//ldlint:noalloc
func (ev *Event) SetQName(wire []byte) {
	if len(wire) == 0 || len(wire) > len(ev.QName) {
		ev.QNameLen = 0
		return
	}
	ev.QNameLen = uint8(copy(ev.QName[:], wire))
}

// QNameString renders the stored qname in presentation form ("." for the
// root, "" when unknown). Collector/test-side only; it allocates.
func (ev *Event) QNameString() string {
	q := ev.QName[:ev.QNameLen]
	if len(q) == 0 {
		return ""
	}
	var b []byte
	for off := 0; off < len(q); {
		l := int(q[off])
		off++
		if l == 0 || off+l > len(q) {
			break
		}
		b = append(b, q[off:off+l]...)
		b = append(b, '.')
		off += l
	}
	if len(b) == 0 {
		return "."
	}
	return string(b)
}

// WireQNameLen returns the length, root terminator included, of the first
// question name of the wire-format DNS message msg, or 0 when the
// question is absent, compressed, malformed, or not followed by a full
// qtype+qclass. Queries on this repo's paths never compress the question,
// so 0 reliably means "no name to log".
//
//ldlint:noalloc
func WireQNameLen(msg []byte) int {
	if len(msg) < 12+1+4 {
		return 0
	}
	if int(msg[4])<<8|int(msg[5]) == 0 {
		return 0 // QDCOUNT == 0
	}
	off := 12
	for off < len(msg) {
		l := int(msg[off])
		if l == 0 {
			n := off + 1 - 12
			if n > MaxQName || off+1+4 > len(msg) {
				return 0
			}
			return n
		}
		if l > 63 {
			return 0 // compression pointer or malformed label
		}
		off += 1 + l
	}
	return 0
}
