package qlog

import (
	"fmt"
	"strings"
	"time"
)

// Transformer rewrites or filters events on the collector goroutine.
// Transform may mutate ev in place; returning false drops the event
// (counted against the transformer by the pipeline). Transformers are
// called from exactly one goroutine, so they may keep plain state.
type Transformer interface {
	Name() string
	Transform(ev *Event) bool
}

// Sampler keeps 1 in every N events (the first of each stride, so a
// short capture is never empty). N <= 1 keeps everything.
type Sampler struct {
	every uint64
	n     uint64
}

// NewSampler creates a 1-in-every sampler.
func NewSampler(every int) *Sampler {
	if every < 1 {
		every = 1
	}
	return &Sampler{every: uint64(every)}
}

// Name implements Transformer.
func (s *Sampler) Name() string { return "sample" }

// Transform implements Transformer.
func (s *Sampler) Transform(ev *Event) bool {
	k := s.n
	s.n++
	return k%s.every == 0
}

// SuffixFilter keeps only events whose qname falls under one of the
// configured domain suffixes (matching at label boundaries, case-
// insensitively, the zone-cut sense of "under"). Events with no recorded
// qname are dropped: a keep-list that cannot be checked is not satisfied.
type SuffixFilter struct {
	sufs [][]byte // wire-form, lowercased, terminator included
}

// NewSuffixFilter builds a keep-filter from presentation-form suffixes
// ("example.com", "com.", "." for everything).
func NewSuffixFilter(suffixes ...string) (*SuffixFilter, error) {
	f := &SuffixFilter{}
	for _, s := range suffixes {
		w, err := nameToWire(s)
		if err != nil {
			return nil, err
		}
		f.sufs = append(f.sufs, w)
	}
	if len(f.sufs) == 0 {
		return nil, fmt.Errorf("qlog: suffix filter needs at least one suffix")
	}
	return f, nil
}

// Name implements Transformer.
func (f *SuffixFilter) Name() string { return "suffix" }

// Transform implements Transformer.
func (f *SuffixFilter) Transform(ev *Event) bool {
	q := ev.QName[:ev.QNameLen]
	if len(q) == 0 {
		return false
	}
	for off := 0; off < len(q); {
		rest := q[off:]
		for _, s := range f.sufs {
			if len(rest) == len(s) && wireEqualFold(rest, s) {
				return true
			}
		}
		l := int(q[off])
		if l == 0 || off+1+l > len(q) {
			break
		}
		off += 1 + l
	}
	return false
}

// Anonymizer replaces every label left of the final (TLD) label with one
// 16-hex-digit label: a keyed FNV-1a hash of the lowercased original
// labels. The same name hashes to the same pseudonym — per-name
// statistics (cache behavior, popularity skew) survive — but without the
// key the original qname does not. The TLD stays visible so zone-level
// aggregation still works.
type Anonymizer struct {
	key uint64
}

// NewAnonymizer derives the hash key from secret.
func NewAnonymizer(secret string) *Anonymizer {
	h := uint64(fnvOffset)
	for i := 0; i < len(secret); i++ {
		h ^= uint64(secret[i])
		h *= fnvPrime
	}
	return &Anonymizer{key: h}
}

// Name implements Transformer.
func (a *Anonymizer) Name() string { return "anonymize" }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Transform implements Transformer.
func (a *Anonymizer) Transform(ev *Event) bool {
	q := ev.QName[:ev.QNameLen]
	// Locate the final label; single-label (TLD-only) and root names have
	// nothing to hide.
	lastOff := -1
	for off := 0; off < len(q); {
		l := int(q[off])
		if l == 0 {
			break
		}
		if off+1+l > len(q) {
			return true // malformed; pass through untouched
		}
		lastOff = off
		off += 1 + l
	}
	if lastOff <= 0 {
		return true
	}
	h := a.key
	for _, b := range q[:lastOff] {
		h ^= uint64(lowerByte(b))
		h *= fnvPrime
	}
	var out [MaxQName]byte
	out[0] = 16
	const hexdig = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		out[1+i] = hexdig[(h>>uint(60-4*i))&0xF]
	}
	n := 17 + copy(out[17:], q[lastOff:])
	copy(ev.QName[:], out[:n])
	ev.QNameLen = uint8(n)
	return true
}

// Tagger sets FlagSlow on events whose sampled latency exceeds slow
// (when slow > 0) and FlagSuspicious on qnames with tunnel-ish shape:
// any label longer than 32 bytes, or more than 16 labels.
type Tagger struct {
	slow int64 // ns; 0 disables the latency tag
}

// NewTagger creates a Tagger with the given slow-query threshold.
func NewTagger(slow time.Duration) *Tagger {
	return &Tagger{slow: slow.Nanoseconds()}
}

// Name implements Transformer.
func (t *Tagger) Name() string { return "tag" }

// Suspicion heuristics: DNS tunnels and exfiltration encode payloads in
// qnames, which shows up as very long labels and deep label stacks.
const (
	suspiciousLabelLen = 32
	suspiciousLabels   = 16
)

// Transform implements Transformer.
func (t *Tagger) Transform(ev *Event) bool {
	if t.slow > 0 && ev.Latency >= t.slow {
		ev.Flags |= FlagSlow
	}
	q := ev.QName[:ev.QNameLen]
	labels := 0
	for off := 0; off < len(q); {
		l := int(q[off])
		if l == 0 || off+1+l > len(q) {
			break
		}
		labels++
		if l > suspiciousLabelLen || labels > suspiciousLabels {
			ev.Flags |= FlagSuspicious
			break
		}
		off += 1 + l
	}
	return true
}

// nameToWire converts a presentation-form domain name to lowercased wire
// form with the root terminator.
func nameToWire(name string) ([]byte, error) {
	name = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(name)), ".")
	if name == "" {
		return []byte{0}, nil
	}
	var w []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("qlog: bad label %q in %q", label, name)
		}
		w = append(w, byte(len(label)))
		w = append(w, label...)
	}
	w = append(w, 0)
	if len(w) > MaxQName {
		return nil, fmt.Errorf("qlog: name %q exceeds %d wire bytes", name, MaxQName)
	}
	return w, nil
}

// wireEqualFold compares wire-form names ASCII-case-insensitively.
func wireEqualFold(a, b []byte) bool {
	for i := range a {
		if lowerByte(a[i]) != lowerByte(b[i]) {
			return false
		}
	}
	return true
}

func lowerByte(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}
