package qlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
)

// The qlog binary stream mirrors internal/trace's framing discipline
// (§2.5's "length pre-pended so the reader carves without parsing"): an
// 8-byte magic, then length-prefixed records. Events are small, so the
// length prefix is uint16. Layout per record (big endian):
//
//	uint16  payload length (everything after this field)
//	int64   time, unix nanoseconds
//	int64   latency, nanoseconds (-1 = not timed)
//	uint8   peer family: 0 (none), 4, or 16
//	[n]byte peer address
//	uint16  DNS message ID
//	uint16  qtype
//	uint16  qclass
//	uint8   rcode
//	uint8   transport
//	uint8   flags
//	uint8   view length, then view bytes
//	uint8   qname length, then wire-form qname
//
// The same format crosses the TCP sink verbatim, so one Reader decodes a
// rotated file and a live stream alike.

var qlogMagic = [8]byte{'L', 'D', 'Q', 'L', 'O', 'G', '0', '1'}

// maxRecord bounds one marshalled event: fixed fields + address + view +
// qname. Views are short strings; 255 is already generous.
const maxRecord = 8 + 8 + 1 + 16 + 2 + 2 + 2 + 1 + 1 + 1 + 1 + 255 + 1 + MaxQName

// MarshalEvent appends ev's record payload (no length prefix) to dst.
func MarshalEvent(dst []byte, ev *Event) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(ev.Time))
	dst = binary.BigEndian.AppendUint64(dst, uint64(ev.Latency))
	switch {
	case ev.Peer.Is4():
		a := ev.Peer.As4()
		dst = append(dst, 4)
		dst = append(dst, a[:]...)
	case ev.Peer.Is6():
		a := ev.Peer.As16()
		dst = append(dst, 16)
		dst = append(dst, a[:]...)
	default:
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint16(dst, ev.ID)
	dst = binary.BigEndian.AppendUint16(dst, ev.QType)
	dst = binary.BigEndian.AppendUint16(dst, ev.QClass)
	dst = append(dst, ev.Rcode, ev.Transport, ev.Flags)
	view := ev.View
	if len(view) > 255 {
		view = view[:255]
	}
	dst = append(dst, uint8(len(view)))
	dst = append(dst, view...)
	dst = append(dst, ev.QNameLen)
	dst = append(dst, ev.QName[:ev.QNameLen]...)
	return dst
}

// UnmarshalEvent decodes one record payload into ev. The view string is
// copied out of buf, so buf may be reused.
func UnmarshalEvent(buf []byte, ev *Event) error {
	bad := func() error { return fmt.Errorf("qlog: truncated event record (%d bytes)", len(buf)) }
	if len(buf) < 8+8+1 {
		return bad()
	}
	ev.Time = int64(binary.BigEndian.Uint64(buf))
	ev.Latency = int64(binary.BigEndian.Uint64(buf[8:]))
	fam := buf[16]
	off := 17
	switch fam {
	case 0:
		ev.Peer = netip.Addr{}
	case 4:
		if len(buf) < off+4 {
			return bad()
		}
		ev.Peer = netip.AddrFrom4([4]byte(buf[off : off+4]))
		off += 4
	case 16:
		if len(buf) < off+16 {
			return bad()
		}
		ev.Peer = netip.AddrFrom16([16]byte(buf[off : off+16]))
		off += 16
	default:
		return fmt.Errorf("qlog: bad peer family %d", fam)
	}
	if len(buf) < off+2+2+2+1+1+1+1 {
		return bad()
	}
	ev.ID = binary.BigEndian.Uint16(buf[off:])
	ev.QType = binary.BigEndian.Uint16(buf[off+2:])
	ev.QClass = binary.BigEndian.Uint16(buf[off+4:])
	ev.Rcode = buf[off+6]
	ev.Transport = buf[off+7]
	ev.Flags = buf[off+8]
	off += 9
	vlen := int(buf[off])
	off++
	if len(buf) < off+vlen+1 {
		return bad()
	}
	ev.View = string(buf[off : off+vlen])
	off += vlen
	qlen := int(buf[off])
	off++
	if qlen > MaxQName || len(buf) < off+qlen {
		return bad()
	}
	ev.QNameLen = uint8(copy(ev.QName[:], buf[off:off+qlen]))
	return nil
}

// Writer writes the qlog binary stream. It buffers; call Flush (or let
// the owning sink's Close do it) before handing the underlying stream
// off. BytesWritten tracks post-buffer payload size for rotation.
type Writer struct {
	w         *bufio.Writer
	wroteHead bool
	scratch   []byte
	bytes     int64
}

// NewWriter creates a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 256*1024)}
}

// Write appends one event record (writing the stream magic first when
// needed).
func (w *Writer) Write(ev *Event) error {
	if !w.wroteHead {
		if _, err := w.w.Write(qlogMagic[:]); err != nil {
			return err
		}
		w.bytes += int64(len(qlogMagic))
		w.wroteHead = true
	}
	w.scratch = MarshalEvent(w.scratch[:0], ev)
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(w.scratch)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return err
	}
	w.bytes += int64(2 + len(w.scratch))
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// BytesWritten is the total stream size produced so far (including
// bytes still in the buffer).
func (w *Writer) BytesWritten() int64 { return w.bytes }

// Reader reads either qlog binary stream — the LDQLOG01 record format
// or the LDQLOG02 block format (block.go) — switching on the magic, so
// every consumer (qlogdump, replay -in, traceconv) handles both without
// caring which one a sink produced.
type Reader struct {
	r        *bufio.Reader
	readHead bool
	buf      []byte

	blocks bool // LDQLOG02: decode via the block cursor
	cur    blockCursor
	slab   []byte
}

// NewReader creates a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 256*1024)}
}

// Next decodes the next event into ev. It returns io.EOF at a clean end
// of stream and io.ErrUnexpectedEOF when the stream stops mid-record (a
// killed TCP connection, a crash mid-write).
func (r *Reader) Next(ev *Event) error {
	if !r.readHead {
		var magic [8]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			if err == io.EOF {
				return io.EOF
			}
			return fmt.Errorf("qlog: reading magic: %w", err)
		}
		switch magic {
		case qlogMagic:
		case qlogBlockMagic:
			r.blocks = true
		default:
			return fmt.Errorf("qlog: bad magic %q", magic[:])
		}
		r.readHead = true
	}
	if r.blocks {
		for r.cur.remain == 0 {
			if err := r.cur.readBlock(r.r, &r.slab); err != nil {
				return err
			}
		}
		return r.cur.next(ev)
	}
	var hdr [2]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return io.ErrUnexpectedEOF
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if n > maxRecord {
		return fmt.Errorf("qlog: record of %d bytes exceeds limit", n)
	}
	if cap(r.buf) < n {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return io.ErrUnexpectedEOF
	}
	return UnmarshalEvent(buf, ev)
}
