// Package bench is the qlog telemetry self-benchmark: synthetic
// producers hammer the SPSC rings while the collector drains into a
// chosen sink, measuring the sustained event rate end to end. The suite
// is the evidence behind the pipeline's throughput claim (≥1M events/s),
// recorded as a trajectory in BENCH_qlog.json like the replay bench.
package bench

import (
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ldplayer/internal/qlog"
)

// Result is one benchmark case's outcome.
type Result struct {
	Name      string `json:"name"`
	Sink      string `json:"sink"`
	Producers int    `json:"producers"`
	// Produced counts enqueue attempts: events published plus events the
	// full ring shed. Producers never slow down for a saturated pipeline,
	// so Produced measures the hot path and Exported the collector.
	Produced  int64   `json:"produced"`
	Exported  int64   `json:"exported"`
	RingDrops int64   `json:"ring_drops"`
	Seconds   float64 `json:"seconds"`
	// ProducePerSec is the hot-path enqueue rate; ExportPerSec is what
	// reached the sink. The acceptance gate reads ExportPerSec.
	ProducePerSec float64 `json:"produce_per_sec"`
	ExportPerSec  float64 `json:"export_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
}

// benchQNames is the rotating qname set producers stamp into events, in
// wire form — realistic copy cost without per-event formatting.
func benchQNames() [][]byte {
	names := make([][]byte, 256)
	for i := range names {
		label := fmt.Sprintf("q%06d", i)
		w := []byte{byte(len(label))}
		w = append(w, label...)
		w = append(w, 7)
		w = append(w, "example"...)
		w = append(w, 3)
		w = append(w, "com"...)
		w = append(w, 0)
		names[i] = w
	}
	return names
}

// Suite runs every benchmark case. scale stretches or shrinks the
// per-case duration (1 ≈ 1.5s each; the smoke run passes a small scale).
func Suite(scale float64) ([]Result, error) {
	if scale <= 0 {
		scale = 1
	}
	dur := time.Duration(float64(1500*time.Millisecond) * scale)
	if dur < 80*time.Millisecond {
		dur = 80 * time.Millisecond
	}

	tmp, err := os.MkdirTemp("", "qlogbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	// Discard collector for the TCP case.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				_, _ = io.Copy(io.Discard, c)
				c.Close()
			}()
		}
	}()

	// Bench rings are deeper than the datapath default and drained in
	// bigger batches: a saturated ring has producer and consumer chasing
	// each other's cache lines, and distance between them is what keeps
	// the copies local. Datapath rings run near-empty and don't care.
	base := qlog.Config{RingSize: 65536, BatchSize: 4096}
	var results []Result
	cases := []struct {
		name      string
		producers int
		mk        func() (qlog.Config, error)
	}{
		{"enqueue", 4, func() (qlog.Config, error) {
			cfg := base
			cfg.Sinks = []qlog.Sink{qlog.NewDiscardSink()}
			return cfg, nil
		}},
		{"transform", 4, func() (qlog.Config, error) {
			cfg := base
			cfg.Transformers = []qlog.Transformer{qlog.NewTagger(time.Millisecond), qlog.NewAnonymizer("bench-key")}
			cfg.Sinks = []qlog.Sink{qlog.NewDiscardSink()}
			return cfg, nil
		}},
		{"export-file", 2, func() (qlog.Config, error) {
			fs, err := qlog.NewFileSink(filepath.Join(tmp, "bench.qlog"), 256<<20, 2)
			if err != nil {
				return qlog.Config{}, err
			}
			cfg := base
			cfg.Sinks = []qlog.Sink{fs}
			return cfg, nil
		}},
		{"export-tcp", 2, func() (qlog.Config, error) {
			cfg := base
			cfg.Sinks = []qlog.Sink{qlog.NewTCPSink(ln.Addr().String(), time.Second)}
			return cfg, nil
		}},
	}
	for _, c := range cases {
		cfg, err := c.mk()
		if err != nil {
			return nil, err
		}
		r, err := runCase(c.name, c.producers, cfg, dur)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// runCase drives producers goroutines against one pipeline for dur.
func runCase(name string, producers int, cfg qlog.Config, dur time.Duration) (Result, error) {
	names := benchQNames()
	p := qlog.New(cfg)
	p.Start()

	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < producers; w++ {
		peer := netip.AddrFrom4([4]byte{198, 18, 0, byte(w + 1)})
		wg.Add(1)
		// The Producer is constructed in the spawn's argument list —
		// ownership transfer at birth, the shape shardconfine sanctions —
		// so the SPSC handle never exists on this goroutine.
		go func(w int, prod *qlog.Producer) {
			defer wg.Done()
			base := start.UnixNano()
			for i := uint64(0); ; i++ {
				if i%1024 == 0 && time.Now().After(deadline) {
					return
				}
				ev := prod.Reserve()
				if ev == nil {
					// A real producer does per-query work between emits; a
					// tight drop spin would just hammer the head cache line
					// the collector needs. Yield like a sane client.
					runtime.Gosched()
					continue
				}
				q := names[i%uint64(len(names))]
				ev.Time = base + int64(i)
				ev.Latency = int64(i % 4096)
				ev.Peer = peer
				ev.View = "bench"
				ev.ID = uint16(i)
				ev.QType = 1
				ev.QClass = 1
				ev.Rcode = 0
				ev.Transport = 0
				ev.Flags = 0
				ev.QNameLen = uint8(copy(ev.QName[:], q))
				prod.Commit()
			}
		}(w, p.Producer())
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		return Result{}, fmt.Errorf("qlog bench %s: %w", name, err)
	}
	elapsed := time.Since(start)

	st := p.Stats()
	sinkName := "none"
	if len(cfg.Sinks) > 0 {
		sinkName = cfg.Sinks[0].Name()
	}
	// Approximate byte throughput from one representative record.
	var sample qlog.Event
	sample.Peer = netip.AddrFrom4([4]byte{198, 18, 0, 1})
	sample.View = "bench"
	sample.QNameLen = uint8(copy(sample.QName[:], names[0]))
	recBytes := len(qlog.MarshalEvent(nil, &sample))

	produced := st.Published + st.RingDrops
	sec := elapsed.Seconds()
	return Result{
		Name:          name,
		Sink:          sinkName,
		Producers:     producers,
		Produced:      produced,
		Exported:      st.SinkWritten,
		RingDrops:     st.RingDrops,
		Seconds:       sec,
		ProducePerSec: float64(produced) / sec,
		ExportPerSec:  float64(st.SinkWritten) / sec,
		MBPerSec:      float64(st.SinkWritten) * float64(recBytes) / sec / (1 << 20),
	}, nil
}
