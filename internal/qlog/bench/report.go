package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Report is the on-disk shape of BENCH_qlog.json: an append-only
// trajectory of labeled suite runs, mirroring the replay bench so
// pipeline changes keep their before/after numbers in one file.
type Report struct {
	Bench  string        `json:"bench"`
	GOOS   string        `json:"goos"`
	GOARCH string        `json:"goarch"`
	CPUs   int           `json:"cpus"`
	Runs   []RecordedRun `json:"runs"`
}

// RecordedRun is one labeled suite execution.
type RecordedRun struct {
	Label   string   `json:"label"`
	Date    string   `json:"date"`
	Results []Result `json:"results"`
}

// NewReport creates an empty report stamped with the host shape.
func NewReport() *Report {
	return &Report{
		Bench:  "qlog-export",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
	}
}

// LoadReport reads path, returning an empty report when the file does
// not exist yet.
func LoadReport(path string) (*Report, error) {
	rep := NewReport()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return nil, err
	}
	if len(data) == 0 {
		return rep, nil
	}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("qlog bench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// Append records one labeled suite.
func (r *Report) Append(label string, results []Result) {
	r.Runs = append(r.Runs, RecordedRun{
		Label:   label,
		Date:    time.Now().UTC().Format(time.RFC3339),
		Results: results,
	})
}

// Save writes the report to path, validating that the output parses back.
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate sanity-checks serialized report JSON: it must parse and every
// result must have produced and exported events. The bench-qlog-smoke CI
// gate calls this on the output of a short run.
func Validate(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("qlog bench: report does not parse: %w", err)
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("qlog bench: report has no runs")
	}
	for _, run := range rep.Runs {
		if len(run.Results) == 0 {
			return fmt.Errorf("qlog bench: run %q has no results", run.Label)
		}
		for _, res := range run.Results {
			if res.Produced <= 0 {
				return fmt.Errorf("qlog bench: run %q case %q produced nothing", run.Label, res.Name)
			}
			if res.ExportPerSec <= 0 {
				return fmt.Errorf("qlog bench: run %q case %q exported nothing", run.Label, res.Name)
			}
		}
	}
	return nil
}
