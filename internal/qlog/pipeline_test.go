package qlog

import (
	"testing"
	"time"
)

// blockingSink stalls every WriteBatch until released — the worst-case
// sink (a TCP peer that accepted the connection and then froze).
type blockingSink struct {
	sinkCounters
	release chan struct{}
}

func (s *blockingSink) Name() string { return "blocking" }
func (s *blockingSink) WriteBatch(evs []Event) {
	<-s.release
	s.written.Add(int64(len(evs)))
}
func (s *blockingSink) Close() error { return nil }

// TestStalledSinkNeverBlocksProducer is the load-shedding contract: with
// the collector wedged inside a stalled sink, producers keep enqueueing
// at full speed, shedding to the drop counter when the ring fills —
// never waiting. The accounting must balance exactly.
func TestStalledSinkNeverBlocksProducer(t *testing.T) {
	const emit = 10000
	sink := &blockingSink{release: make(chan struct{})}
	p := New(Config{RingSize: 64, Sinks: []Sink{sink}})
	p.Start()
	prod := p.Producer()

	start := time.Now()
	for i := 0; i < emit; i++ {
		if ev := prod.Reserve(); ev != nil {
			ev.Time = int64(i)
			prod.Commit()
		}
	}
	elapsed := time.Since(start)
	// 10k enqueues at a few stores each: even a heavily loaded CI box
	// finishes in well under a second unless something blocked.
	if elapsed > time.Second {
		t.Errorf("10k enqueues against a stalled sink took %v; producer blocked", elapsed)
	}

	st := p.Stats()
	if st.Published+st.RingDrops != emit {
		t.Errorf("published %d + ring drops %d != %d emitted", st.Published, st.RingDrops, emit)
	}
	if st.RingDrops == 0 {
		t.Error("a 64-slot ring behind a stalled sink shed nothing; test is vacuous")
	}

	close(sink.release) // un-wedge so Close's final drain completes
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// After the final drain every published event reached the sink.
	st = p.Stats()
	if st.SinkWritten != st.Published {
		t.Errorf("sink wrote %d of %d published after drain", st.SinkWritten, st.Published)
	}
}

// TestPipelineTransformAccounting runs events through a dropping
// transformer chain and checks every count lands somewhere.
func TestPipelineTransformAccounting(t *testing.T) {
	const emit = 1000
	sink := NewDiscardSink()
	p := New(Config{
		RingSize:     2048,
		Transformers: []Transformer{NewSampler(4)},
		Sinks:        []Sink{sink},
	})
	p.Start()
	prod := p.Producer()
	for i := 0; i < emit; i++ {
		ev := prod.Reserve()
		if ev == nil {
			t.Fatal("ring full with a live collector and 2048 slots")
		}
		ev.Time = int64(i)
		prod.Commit()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Published != emit || st.RingDrops != 0 {
		t.Fatalf("published=%d drops=%d, want %d/0", st.Published, st.RingDrops, emit)
	}
	if st.TransformDrops+st.SinkWritten != emit {
		t.Errorf("transform drops %d + sink written %d != %d", st.TransformDrops, st.SinkWritten, emit)
	}
	if st.SinkWritten != emit/4 {
		t.Errorf("1-in-4 sampler passed %d of %d", st.SinkWritten, emit)
	}
}

// TestPipelineCloseWithoutStart drains inline so short-lived tools that
// never started the collector still flush their events.
func TestPipelineCloseWithoutStart(t *testing.T) {
	sink := NewDiscardSink()
	p := New(Config{Sinks: []Sink{sink}})
	prod := p.Producer()
	for i := 0; i < 100; i++ {
		if ev := prod.Reserve(); ev != nil {
			ev.Time = int64(i)
			prod.Commit()
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SinkWritten != 100 {
		t.Errorf("inline drain exported %d of 100", st.SinkWritten)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
