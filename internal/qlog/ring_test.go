package qlog

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingOrderAndWraparound(t *testing.T) {
	r := newRing(8)
	p := &Producer{r: r}
	dst := make([]Event, 8)
	next := int64(0) // next value expected out
	emitted := int64(0)
	for round := 0; round < 5; round++ {
		// Fill to capacity, then verify drops are counted, then drain and
		// check FIFO order across the wrap.
		for {
			ev := p.Reserve()
			if ev == nil {
				break
			}
			ev.Time = emitted
			emitted++
			p.Commit()
		}
		if got := r.drops.Load(); got != int64(round+1) {
			t.Fatalf("round %d: drops = %d, want %d", round, got, round+1)
		}
		for {
			n := r.drain(dst)
			if n == 0 {
				break
			}
			for i := 0; i < n; i++ {
				if dst[i].Time != next {
					t.Fatalf("event out of order: got %d, want %d", dst[i].Time, next)
				}
				next++
			}
		}
	}
	if next != emitted {
		t.Fatalf("drained %d events, emitted %d", next, emitted)
	}
	if got := r.published(); got != emitted {
		t.Fatalf("published = %d, want %d", got, emitted)
	}
}

func TestRingSizePowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultRingSize}, {1, 1}, {3, 4}, {8, 8}, {1000, 1024},
	} {
		if r := newRing(tc.ask); len(r.slots) != tc.want {
			t.Errorf("newRing(%d) size = %d, want %d", tc.ask, len(r.slots), tc.want)
		}
	}
}

// TestRingSPSCHammer moves a stream through a tiny ring with the
// producer and consumer on separate goroutines; under -race this is the
// memory-model check for the Lamport pairing, and the sequence check
// proves every event that commits arrives exactly once, in order. The
// producer yields on a full ring (each failed Reserve is an accounted
// drop, not a retry slot — the datapath never retries).
func TestRingSPSCHammer(t *testing.T) {
	const total = 50000
	r := newRing(64)
	p := &Producer{r: r}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < total; {
			if ev := p.Reserve(); ev != nil {
				ev.Time = i
				ev.Latency = -i
				p.Commit()
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	dst := make([]Event, 48)
	next := int64(0)
	for next < total {
		n := r.drain(dst)
		for i := 0; i < n; i++ {
			if dst[i].Time != next || dst[i].Latency != -next {
				t.Fatalf("got event %d/%d, want %d", dst[i].Time, dst[i].Latency, next)
			}
			next++
		}
		if n == 0 {
			runtime.Gosched()
		}
	}
	wg.Wait()
	if got := r.published(); got != total {
		t.Fatalf("published = %d, want %d", got, total)
	}
}

// TestLockedProducerConcurrent hammers a shared producer from several
// goroutines, then checks every committed event arrived intact.
func TestLockedProducerConcurrent(t *testing.T) {
	const (
		workers = 4
		each    = 5000
	)
	r := newRing(1 << 15) // holds everything: no drops expected
	lp := &LockedProducer{}
	lp.p.r = r
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ev := lp.Reserve()
				if ev == nil {
					t.Error("ring full despite capacity")
					return
				}
				ev.ID = uint16(w)
				ev.Time = int64(i)
				lp.Commit()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint16]int)
	dst := make([]Event, 512)
	for {
		n := r.drain(dst)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			seen[dst[i].ID]++
		}
	}
	for w := 0; w < workers; w++ {
		if seen[uint16(w)] != each {
			t.Errorf("worker %d: %d events drained, want %d", w, seen[uint16(w)], each)
		}
	}
	if r.drops.Load() != 0 {
		t.Errorf("drops = %d, want 0", r.drops.Load())
	}
}
