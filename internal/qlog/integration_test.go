package qlog_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
	"ldplayer/internal/pcap"
	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

const zoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
*.example.com.	300	IN	A	192.0.2.81
`

func testEngine(t *testing.T) *authserver.Engine {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	e := authserver.NewEngine()
	if err := e.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestQlogSmoke runs the full production shape end to end: a live
// batched UDP server with a qlog pipeline attached streams one event per
// query into a binary file, the obs registry federates the pipeline's
// self-metrics, and the capture's per-event fields match the traffic.
func TestQlogSmoke(t *testing.T) {
	const (
		uniques = 20
		repeats = 5 // per unique name; repeats hit the shard cache
	)
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.qlog")

	fs, err := qlog.NewFileSink(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe := qlog.New(qlog.Config{Sinks: []qlog.Sink{fs}})
	pipe.Start()

	e := testEngine(t)
	e.SetQlog(pipe) // before Start: shards bind producers at creation
	reg := obs.NewRegistry()
	pipe.Instrument(reg)

	srv := &authserver.Server{Engine: e, UDPWorkers: 2, ReusePort: true, Batch: true}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	sent := 0
	for rep := 0; rep < repeats; rep++ {
		for i := 0; i < uniques; i++ {
			name := fmt.Sprintf("q%d.example.com.", i)
			w, err := dnswire.NewQuery(uint16(sent+1), name, dnswire.TypeA).Pack(nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(w); err != nil {
				t.Fatal(err)
			}
			_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := conn.Read(buf); err != nil {
				t.Fatalf("query %d: %v", sent, err)
			}
			sent++
		}
	}
	conn.Close()

	// Server first (all emits finished), then the pipeline's final drain.
	srv.Close()
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	st := pipe.Stats()
	if st.Published != int64(sent) || st.RingDrops != 0 {
		t.Fatalf("published=%d ringDrops=%d, want %d/0", st.Published, st.RingDrops, sent)
	}
	if es := e.Stats(); es.Queries != st.Published+st.RingDrops {
		t.Errorf("engine queries %d != events %d + drops %d", es.Queries, st.Published, st.RingDrops)
	}
	if s, ok := reg.Find("qlog_events_total", ""); !ok || s.Value != int64(sent) {
		t.Errorf("qlog_events_total = %+v, want %d", s, sent)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := qlog.NewReader(f)
	var ev qlog.Event
	clientAddr := netip.MustParseAddrPort(conn.LocalAddr().String()).Addr()
	got, hits, misses := 0, 0, 0
	for {
		err := r.Next(&ev)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
		if ev.View != "default" {
			t.Fatalf("event view %q, want default", ev.View)
		}
		if ev.Transport != uint8(authserver.UDP) {
			t.Fatalf("event transport %d, want UDP", ev.Transport)
		}
		if ev.Peer != clientAddr {
			t.Fatalf("event peer %v, want %v", ev.Peer, clientAddr)
		}
		if ev.QType != uint16(dnswire.TypeA) || ev.Rcode != uint8(dnswire.RcodeNoError) {
			t.Fatalf("event qtype=%d rcode=%d", ev.QType, ev.Rcode)
		}
		if !strings.HasSuffix(ev.QNameString(), ".example.com.") {
			t.Fatalf("event qname %q", ev.QNameString())
		}
		if ev.Flags&qlog.FlagCacheHit != 0 {
			hits++
		} else {
			misses++
		}
		if ev.Time == 0 {
			t.Fatal("event has no timestamp")
		}
	}
	if got != sent {
		t.Fatalf("capture holds %d events, want %d", got, sent)
	}
	// Every repeat after the first for a name served by the same shard is
	// a cache hit; one client socket pins one shard, so exactly the first
	// pass misses.
	if misses != uniques || hits != sent-uniques {
		t.Errorf("cache flags: %d misses, %d hits; want %d/%d", misses, hits, uniques, sent-uniques)
	}
}

// captureEvents builds a synthetic capture the way the server would have
// produced it and returns the qlog binary stream.
func captureEvents(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := qlog.NewWriter(&buf)
	base := time.Now().Truncate(time.Second)
	for i := 0; i < n; i++ {
		var ev qlog.Event
		ev.Time = base.Add(time.Duration(i) * 2 * time.Millisecond).UnixNano()
		ev.Latency = -1
		ev.Peer = netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i%5)})
		ev.View = "default"
		ev.ID = uint16(i + 1)
		ev.QType = uint16(dnswire.TypeA)
		ev.QClass = uint16(dnswire.ClassINET)
		name := fmt.Sprintf("q%d.example.com.", i)
		wire, err := dnswire.NewQuery(ev.ID, name, dnswire.TypeA).Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		qlen := qlog.WireQNameLen(wire)
		if qlen == 0 {
			t.Fatal("synthetic query has no parsable qname")
		}
		ev.SetQName(wire[12 : 12+qlen])
		if err := w.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, r trace.Reader) []trace.Entry {
	t.Helper()
	var out []trace.Entry
	for {
		e, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
}

func question(t *testing.T, e trace.Entry) (uint16, string) {
	t.Helper()
	var m dnswire.Message
	if err := m.Unpack(e.Message); err != nil {
		t.Fatal(err)
	}
	if len(m.Question) != 1 {
		t.Fatalf("entry has %d questions", len(m.Question))
	}
	return m.Header.ID, m.Question[0].Name
}

// TestQlogTraceRoundTrip closes the loop of the package doc: a qlog
// capture converts into the text and pcap trace formats with fields
// preserved, and feeds straight back into the replay engine.
func TestQlogTraceRoundTrip(t *testing.T) {
	const n = 30
	capture := captureEvents(t, n)

	// qlog → trace entries.
	entries := readAll(t, qlog.NewEntryReader(bytes.NewReader(capture)))
	if len(entries) != n {
		t.Fatalf("entry reader yielded %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		id, name := question(t, e)
		if int(id) != i+1 {
			t.Fatalf("entry %d: ID %d", i, id)
		}
		if want := fmt.Sprintf("q%d.example.com.", i); name != want {
			t.Fatalf("entry %d: qname %q, want %q", i, name, want)
		}
		if e.Protocol != trace.UDP {
			t.Fatalf("entry %d: protocol %v", i, e.Protocol)
		}
		if want := netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + i%5)}); e.Src.Addr() != want {
			t.Fatalf("entry %d: src %v, want %v", i, e.Src.Addr(), want)
		}
	}

	// → text and back.
	var txt bytes.Buffer
	tw := trace.NewTextWriter(&txt)
	for _, e := range entries {
		if err := tw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	fromText := readAll(t, trace.NewTextReader(bytes.NewReader(txt.Bytes())))
	if len(fromText) != n {
		t.Fatalf("text round trip yielded %d entries", len(fromText))
	}
	for i := range fromText {
		id, name := question(t, fromText[i])
		wid, wname := question(t, entries[i])
		if id != wid || name != wname {
			t.Fatalf("text entry %d: %d/%q, want %d/%q", i, id, name, wid, wname)
		}
	}

	// → pcap and back (IPv4 sources, dst port 53: extractable).
	var pc bytes.Buffer
	if err := pcap.WriteDNSPcap(&pc, entries); err != nil {
		t.Fatal(err)
	}
	pr, err := pcap.NewTraceReader(bytes.NewReader(pc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fromPcap := readAll(t, pr)
	if len(fromPcap) != n {
		t.Fatalf("pcap round trip yielded %d entries", len(fromPcap))
	}
	for i := range fromPcap {
		id, name := question(t, fromPcap[i])
		wid, wname := question(t, entries[i])
		if id != wid || name != wname {
			t.Fatalf("pcap entry %d: %d/%q, want %d/%q", i, id, name, wid, wname)
		}
		// pcap stores microsecond timestamps.
		if got, want := fromPcap[i].Time.Truncate(time.Microsecond), entries[i].Time.Truncate(time.Microsecond); !got.Equal(want) {
			t.Fatalf("pcap entry %d: time %v, want %v", i, got, want)
		}
	}
}
