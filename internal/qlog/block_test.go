package qlog

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
)

// blockTestEvents builds n varied events for block round-trip tests.
func blockTestEvents(t *testing.T, n int) []Event {
	t.Helper()
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{
			Time:    1700000000000000000 + int64(i)*137_000,
			Latency: int64(i%7)*1000 - 1, // mixes -1 in
			ID:      uint16(i),
			QType:   uint16(1 + i%40),
			QClass:  1,
			Rcode:   uint8(i % 16),
			Flags:   uint8(i % 32),
		}
		switch i % 3 {
		case 0:
			events[i].Peer = netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i)})
			events[i].View = "root"
		case 1:
			events[i].Peer = netip.MustParseAddr("2001:db8::9")
		}
		w, err := nameToWire(fmt.Sprintf("q%d.bench.example.com", i))
		if err != nil {
			t.Fatal(err)
		}
		events[i].SetQName(w)
	}
	return events
}

func eventsEqual(t *testing.T, i int, got, want Event) {
	t.Helper()
	if got.Time != want.Time || got.Latency != want.Latency || got.Peer != want.Peer ||
		got.View != want.View || got.ID != want.ID || got.QType != want.QType ||
		got.QClass != want.QClass || got.Rcode != want.Rcode ||
		got.Transport != want.Transport || got.Flags != want.Flags ||
		got.QNameLen != want.QNameLen ||
		!bytes.Equal(got.QName[:got.QNameLen], want.QName[:want.QNameLen]) {
		t.Errorf("event %d: round trip mismatch\n got %+v\nwant %+v", i, got, want)
	}
}

// TestBlockStreamRoundTrip writes LDQLOG02 across several blocks and
// reads it back through the auto-detecting Reader.
func TestBlockStreamRoundTrip(t *testing.T) {
	events := blockTestEvents(t, 2500) // > 2 full blocks + a tail
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf)
	for i := range events {
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := bw.BytesWritten(); got != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, stream is %d", got, buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	var ev Event
	for i := range events {
		if err := r.Next(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		eventsEqual(t, i, ev, events[i])
	}
	if err := r.Next(&ev); err != io.EOF {
		t.Fatalf("after last event: %v, want io.EOF", err)
	}
}

// TestBlockStreamCompresses: the block stream must be materially
// smaller than the record stream on a realistic repetitive capture.
func TestBlockStreamCompresses(t *testing.T) {
	events := blockTestEvents(t, 4000)
	var rec, blk bytes.Buffer
	rw := NewWriter(&rec)
	bw := NewBlockWriter(&blk)
	for i := range events {
		if err := rw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if blk.Len()*2 >= rec.Len() {
		t.Errorf("block stream %d B vs record stream %d B: want at least 2x smaller", blk.Len(), rec.Len())
	}
	t.Logf("record %d B, block %d B (%.1fx)", rec.Len(), blk.Len(), float64(rec.Len())/float64(blk.Len()))
}

// TestBlockStreamTornTail cuts the stream mid-block: complete blocks
// must decode, then io.ErrUnexpectedEOF — same contract as torn records.
func TestBlockStreamTornTail(t *testing.T) {
	events := blockTestEvents(t, 1500) // one full block + a tail block
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf)
	for i := range events {
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-7]
	r := NewReader(bytes.NewReader(data))
	var ev Event
	n := 0
	var err error
	for {
		if err = r.Next(&ev); err != nil {
			break
		}
		n++
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn tail: got %v, want io.ErrUnexpectedEOF", err)
	}
	if n != blockEvents {
		t.Errorf("decoded %d events before the torn block, want %d (the complete block)", n, blockEvents)
	}
}

// TestBlockStreamCRCDamage flips a payload byte: the reader must refuse
// the block, not hand back corrupt events.
func TestBlockStreamCRCDamage(t *testing.T) {
	events := blockTestEvents(t, 100)
	var buf bytes.Buffer
	bw := NewBlockWriter(&buf)
	for i := range events {
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(qlogBlockMagic)+40+5] ^= 0xff
	r := NewReader(bytes.NewReader(data))
	var ev Event
	if err := r.Next(&ev); err != errQlogBlockCRC {
		t.Fatalf("got %v, want errQlogBlockCRC", err)
	}
}

// TestFileSinkCompressedSuffix: a ".z" path writes LDQLOG02 and the
// file reads back through the standard Reader and EntryReader.
func TestFileSinkCompressedSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "capture.qlog.z")
	s, err := NewFileSink(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := blockTestEvents(t, 300)
	s.WriteBatch(events)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Written != int64(len(events)) || st.Dropped != 0 {
		t.Fatalf("sink stats %+v, want %d written", st, len(events))
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, qlogBlockMagic[:]) {
		t.Fatalf("file does not start with the LDQLOG02 magic: %q", data[:8])
	}
	r := NewReader(bytes.NewReader(data))
	var ev Event
	for i := range events {
		if err := r.Next(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		eventsEqual(t, i, ev, events[i])
	}

	// And through the trace bridge, as `ldplayer replay -in x.qlog.z`
	// consumes it.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	er := NewEntryReader(f)
	n := 0
	for {
		if _, err := er.Next(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		n++
	}
	if n != len(events) {
		t.Fatalf("EntryReader yielded %d entries, want %d", n, len(events))
	}
}
