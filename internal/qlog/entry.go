package qlog

import (
	"io"
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

// Bridging qlog captures back into the trace toolchain: EventEntry
// synthesizes the query a logged event describes, EntryReader adapts a
// qlog stream into a trace.Reader (so `ldplayer replay -in x.qlog` and
// traceconv work unchanged), and NewTraceSink converts live events into
// any trace.Writer (text, binary, and from there pcap).

// EventEntry synthesizes the trace entry for ev: a wire-format query
// with the logged ID/qname/qtype/qclass, sourced from the peer address
// (the client identity on both server- and replay-side events) and
// destined for the unspecified address on port 53 — the capture does not
// record the local listener, and replay targets come from flags anyway.
// Events without a recorded qname return ok=false: there is no question
// to rebuild.
func EventEntry(ev *Event) (e trace.Entry, ok bool) {
	if ev.QNameLen == 0 {
		return trace.Entry{}, false
	}
	qt := dnswire.Type(ev.QType)
	if qt == 0 {
		qt = dnswire.TypeA
	}
	qc := dnswire.Class(ev.QClass)
	if qc == 0 {
		qc = dnswire.ClassINET
	}
	m := dnswire.Message{
		Header: dnswire.Header{ID: ev.ID, RD: true},
		Question: []dnswire.Question{{
			Name:  dnswire.CanonicalName(ev.QNameString()),
			Type:  qt,
			Class: qc,
		}},
	}
	wire, err := m.Pack(nil)
	if err != nil {
		return trace.Entry{}, false
	}
	src := ev.Peer
	dst := netip.IPv4Unspecified()
	if !src.IsValid() {
		src = netip.IPv4Unspecified()
	}
	// The binary trace format stores one address family for both ends.
	if src.Is6() {
		dst = netip.IPv6Unspecified()
	}
	proto := trace.Protocol(ev.Transport)
	if proto > trace.TLS {
		proto = trace.UDP
	}
	return trace.Entry{
		Time:     time.Unix(0, ev.Time),
		Src:      netip.AddrPortFrom(src, 0),
		Dst:      netip.AddrPortFrom(dst, 53),
		Protocol: proto,
		Message:  wire,
	}, true
}

// EntryReader adapts a qlog binary stream into a trace.Reader, skipping
// events that carry no qname. A partially-captured final record (e.g. a
// TCP stream cut mid-write) terminates the trace cleanly at EOF.
type EntryReader struct {
	r  *Reader
	ev Event
}

// NewEntryReader wraps a qlog binary stream.
func NewEntryReader(r io.Reader) *EntryReader {
	return &EntryReader{r: NewReader(r)}
}

// Next implements trace.Reader.
func (er *EntryReader) Next() (trace.Entry, error) {
	for {
		if err := er.r.Next(&er.ev); err != nil {
			if err == io.ErrUnexpectedEOF {
				return trace.Entry{}, io.EOF
			}
			return trace.Entry{}, err
		}
		if e, ok := EventEntry(&er.ev); ok {
			return e, nil
		}
	}
}

// traceEntryWriter adapts a trace.Writer to the sink's internal shape.
type traceEntryWriter struct {
	w trace.Writer
}

func (t traceEntryWriter) write(ev *Event) error {
	e, ok := EventEntry(ev)
	if !ok {
		return errNoQName
	}
	return t.w.Write(e)
}

// NewTraceSink wraps a trace.Writer (text or binary) as a qlog sink.
// flush, if non-nil, runs at Close (pass the writer's Flush).
func NewTraceSink(w trace.Writer, flush func() error) *TraceSink {
	return &TraceSink{w: traceEntryWriter{w: w}, flush: flush}
}
