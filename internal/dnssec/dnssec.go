// Package dnssec signs zones with size-exact, deterministic keys and
// signatures. The §5.1 experiment measures response *bandwidth* under
// different ZSK sizes and DO fractions; what matters is that DNSKEY and
// RRSIG records occupy exactly the octets real RSA keys of the configured
// size would, not that the signatures verify. Signature bytes are derived
// deterministically (SHA-256 expansion of the covered RRset's identity),
// so signed zones are reproducible artifacts, per the repeatability
// requirement of §2.1.
package dnssec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

// Config selects key sizes and rollover state.
type Config struct {
	// ZSKBits is the zone-signing key modulus size (1024 or 2048 in the
	// paper's Figure 10).
	ZSKBits int
	// KSKBits is the key-signing key size (2048 in practice).
	KSKBits int
	// Rollover pre-publishes a second ZSK and double-signs the DNSKEY
	// RRset, reproducing the paper's "rollover" bars.
	Rollover bool
	// Algorithm is the DNSSEC algorithm number; default 8 (RSA/SHA-256).
	Algorithm uint8
	// TTL for generated DNSKEY/NSEC records; default 3600.
	TTL uint32
	// Inception/Expiration of signatures; defaults span 30 days from a
	// fixed epoch so zones stay byte-identical across runs.
	Inception  uint32
	Expiration uint32
}

func (c *Config) setDefaults() error {
	if c.ZSKBits <= 0 {
		c.ZSKBits = 2048
	}
	if c.KSKBits <= 0 {
		c.KSKBits = 2048
	}
	if c.ZSKBits%8 != 0 || c.KSKBits%8 != 0 {
		return fmt.Errorf("dnssec: key sizes must be multiples of 8 bits")
	}
	if c.Algorithm == 0 {
		c.Algorithm = 8
	}
	if c.TTL == 0 {
		c.TTL = 3600
	}
	if c.Inception == 0 {
		c.Inception = uint32(time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC).Unix())
	}
	if c.Expiration == 0 {
		c.Expiration = c.Inception + 30*86400
	}
	return nil
}

// Key flag values.
const (
	flagsZSK = 256
	flagsKSK = 257
)

// deriveBytes expands a seed string into n deterministic octets.
func deriveBytes(seed string, n int) []byte {
	out := make([]byte, 0, n+sha256.Size)
	var counter uint32
	for len(out) < n {
		h := sha256.New()
		h.Write([]byte(seed))
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], counter)
		h.Write(c[:])
		out = h.Sum(out)
		counter++
	}
	return out[:n]
}

// rsaPublicKeyLen returns the DNSKEY public-key field length for an RSA
// modulus of bits: 1-octet exponent length + 3-octet exponent + modulus.
func rsaPublicKeyLen(bits int) int { return 1 + 3 + bits/8 }

// makeKey builds a deterministic DNSKEY of the right wire size.
func makeKey(origin string, flags uint16, bits int, alg uint8, variant string) dnswire.DNSKEY {
	return dnswire.DNSKEY{
		Flags:     flags,
		Protocol:  3,
		Algorithm: alg,
		PublicKey: deriveBytes(fmt.Sprintf("key/%s/%d/%d/%s", origin, flags, bits, variant), rsaPublicKeyLen(bits)),
	}
}

// KeyTag computes the RFC 4034 Appendix B key tag of a DNSKEY.
func KeyTag(k dnswire.DNSKEY) uint16 {
	rdata, _ := packRData(k)
	var ac uint32
	for i, b := range rdata {
		if i&1 == 1 {
			ac += uint32(b)
		} else {
			ac += uint32(b) << 8
		}
	}
	ac += ac >> 16 & 0xFFFF
	return uint16(ac)
}

// packRData serializes just a DNSKEY's rdata.
func packRData(k dnswire.DNSKEY) ([]byte, error) {
	m := dnswire.Message{Answer: []dnswire.RR{{Name: ".", Class: dnswire.ClassINET, Data: k}}}
	wire, err := m.Pack(nil)
	if err != nil {
		return nil, err
	}
	// Skip header(12) + owner(1) + type/class/ttl/rdlen(10).
	return wire[12+1+10:], nil
}

// SignZone signs z in place: DNSKEY RRset at the apex, one RRSIG per
// RRset, and an NSEC chain for authenticated denial. Pre-existing
// DNSSEC records are replaced semantics-free (records are added; callers
// sign fresh zones).
func SignZone(z *zone.Zone, cfg Config) error {
	if err := cfg.setDefaults(); err != nil {
		return err
	}
	origin := z.Origin

	// Apex keys.
	zsk := makeKey(origin, flagsZSK, cfg.ZSKBits, cfg.Algorithm, "zsk-a")
	ksk := makeKey(origin, flagsKSK, cfg.KSKBits, cfg.Algorithm, "ksk")
	keys := []dnswire.DNSKEY{zsk, ksk}
	if cfg.Rollover {
		keys = append(keys, makeKey(origin, flagsZSK, cfg.ZSKBits, cfg.Algorithm, "zsk-b"))
	}
	for _, k := range keys {
		if err := z.Add(dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: cfg.TTL, Data: k}); err != nil {
			return err
		}
	}

	// NSEC chain over the pre-signing owner names (snapshot before adding
	// NSEC records themselves, then account for them in bitmaps).
	names := z.Names()
	typesAt := func(name string) []dnswire.Type {
		seen := map[dnswire.Type]bool{dnswire.TypeRRSIG: true, dnswire.TypeNSEC: true}
		var out []dnswire.Type
		out = append(out, dnswire.TypeRRSIG, dnswire.TypeNSEC)
		for _, rr := range recordsAt(z, name) {
			if !seen[rr.Type()] {
				seen[rr.Type()] = true
				out = append(out, rr.Type())
			}
		}
		return out
	}
	for i, name := range names {
		next := names[(i+1)%len(names)]
		nsec := dnswire.NSEC{NextName: next, Types: typesAt(name)}
		if err := z.Add(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: cfg.TTL, Data: nsec}); err != nil {
			return err
		}
	}

	// Sign every RRset (including DNSKEY and NSEC). DNSKEY RRsets are
	// signed by the KSK (and double-signed during rollover); everything
	// else by the ZSK.
	zskTag, kskTag := KeyTag(zsk), KeyTag(ksk)
	type setKey struct {
		name string
		typ  dnswire.Type
	}
	sets := make(map[setKey]uint32) // -> TTL
	for _, name := range z.Names() {
		for _, rr := range recordsAt(z, name) {
			if rr.Type() == dnswire.TypeRRSIG {
				continue
			}
			sets[setKey{rr.Name, rr.Type()}] = rr.TTL
		}
	}
	for sk, ttl := range sets {
		tags := []uint16{zskTag}
		bits := cfg.ZSKBits
		if sk.typ == dnswire.TypeDNSKEY {
			tags = []uint16{kskTag}
			bits = cfg.KSKBits
			if cfg.Rollover {
				tags = append(tags, zskTag)
			}
		}
		for _, tag := range tags {
			sigBits := bits
			if sk.typ == dnswire.TypeDNSKEY && tag == zskTag {
				sigBits = cfg.ZSKBits
			}
			sig := dnswire.RRSIG{
				TypeCovered: sk.typ,
				Algorithm:   cfg.Algorithm,
				Labels:      uint8(dnswire.CountLabels(sk.name)),
				OrigTTL:     ttl,
				Expiration:  cfg.Expiration,
				Inception:   cfg.Inception,
				KeyTag:      tag,
				SignerName:  origin,
				Signature:   deriveBytes(fmt.Sprintf("sig/%s/%s/%d/%d", sk.name, sk.typ, tag, sigBits), sigBits/8),
			}
			if err := z.Add(dnswire.RR{Name: sk.name, Class: dnswire.ClassINET, TTL: ttl, Data: sig}); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordsAt lists all records owned by name.
func recordsAt(z *zone.Zone, name string) []dnswire.RR {
	var out []dnswire.RR
	for _, t := range []dnswire.Type{
		dnswire.TypeA, dnswire.TypeNS, dnswire.TypeCNAME, dnswire.TypeSOA,
		dnswire.TypePTR, dnswire.TypeMX, dnswire.TypeTXT, dnswire.TypeAAAA,
		dnswire.TypeSRV, dnswire.TypeDS, dnswire.TypeRRSIG, dnswire.TypeNSEC,
		dnswire.TypeDNSKEY,
	} {
		out = append(out, z.RRset(name, t)...)
	}
	return out
}

// DSFor returns the DS record data a parent zone should publish for the
// child's KSK.
func DSFor(childOrigin string, cfg Config) (dnswire.DS, error) {
	if err := cfg.setDefaults(); err != nil {
		return dnswire.DS{}, err
	}
	ksk := makeKey(dnswire.CanonicalName(childOrigin), flagsKSK, cfg.KSKBits, cfg.Algorithm, "ksk")
	digest := deriveBytes("ds/"+dnswire.CanonicalName(childOrigin), 32)
	return dnswire.DS{
		KeyTag:     KeyTag(ksk),
		Algorithm:  cfg.Algorithm,
		DigestType: 2, // SHA-256
		Digest:     digest,
	}, nil
}
