package dnssec

import (
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

const testZoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
www.example.com.	300	IN	A	192.0.2.80
www.example.com.	300	IN	AAAA	2001:db8::80
`

func signedZone(t *testing.T, cfg Config) *zone.Zone {
	t.Helper()
	z, err := zone.Parse(strings.NewReader(testZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	if err := SignZone(z, cfg); err != nil {
		t.Fatal(err)
	}
	return z
}

func TestSignZoneAddsKeysAndSigs(t *testing.T) {
	z := signedZone(t, Config{ZSKBits: 2048})
	keys := z.RRset("example.com.", dnswire.TypeDNSKEY)
	if len(keys) != 2 { // ZSK + KSK
		t.Fatalf("DNSKEYs = %d", len(keys))
	}
	// Every original RRset has a signature.
	for _, probe := range []struct {
		name string
		t    dnswire.Type
	}{
		{"example.com.", dnswire.TypeSOA},
		{"example.com.", dnswire.TypeNS},
		{"www.example.com.", dnswire.TypeA},
		{"www.example.com.", dnswire.TypeAAAA},
		{"example.com.", dnswire.TypeDNSKEY},
	} {
		sigs := z.RRset(probe.name, dnswire.TypeRRSIG)
		found := false
		for _, rr := range sigs {
			if rr.Data.(dnswire.RRSIG).TypeCovered == probe.t {
				found = true
			}
		}
		if !found {
			t.Errorf("no RRSIG covering %s %s", probe.name, probe.t)
		}
	}
}

func TestSignatureSizesMatchKeyBits(t *testing.T) {
	for _, bits := range []int{1024, 2048} {
		z := signedZone(t, Config{ZSKBits: bits})
		for _, rr := range z.RRset("www.example.com.", dnswire.TypeRRSIG) {
			sig := rr.Data.(dnswire.RRSIG)
			if len(sig.Signature) != bits/8 {
				t.Errorf("ZSK %d: signature %d bytes, want %d", bits, len(sig.Signature), bits/8)
			}
		}
		var zskLen int
		for _, rr := range z.RRset("example.com.", dnswire.TypeDNSKEY) {
			k := rr.Data.(dnswire.DNSKEY)
			if k.Flags == flagsZSK {
				zskLen = len(k.PublicKey)
			}
		}
		if zskLen != rsaPublicKeyLen(bits) {
			t.Errorf("ZSK %d: pubkey %d bytes, want %d", bits, zskLen, rsaPublicKeyLen(bits))
		}
	}
}

func TestRolloverAddsSecondZSKAndDoubleSignsDNSKEY(t *testing.T) {
	normal := signedZone(t, Config{ZSKBits: 2048})
	roll := signedZone(t, Config{ZSKBits: 2048, Rollover: true})
	if n := len(roll.RRset("example.com.", dnswire.TypeDNSKEY)); n != 3 {
		t.Errorf("rollover DNSKEYs = %d, want 3", n)
	}
	countDNSKEYSigs := func(z *zone.Zone) int {
		n := 0
		for _, rr := range z.RRset("example.com.", dnswire.TypeRRSIG) {
			if rr.Data.(dnswire.RRSIG).TypeCovered == dnswire.TypeDNSKEY {
				n++
			}
		}
		return n
	}
	if countDNSKEYSigs(normal) != 1 || countDNSKEYSigs(roll) != 2 {
		t.Errorf("DNSKEY sigs: normal=%d roll=%d", countDNSKEYSigs(normal), countDNSKEYSigs(roll))
	}
}

func TestNSECChainClosed(t *testing.T) {
	z := signedZone(t, Config{})
	names := z.Names()
	// Every name has exactly one NSEC, and following next pointers from
	// the apex visits every name and returns to the apex.
	visited := map[string]bool{}
	cur := "example.com."
	for i := 0; i <= len(names); i++ {
		set := z.RRset(cur, dnswire.TypeNSEC)
		if len(set) != 1 {
			t.Fatalf("%s has %d NSEC records", cur, len(set))
		}
		visited[cur] = true
		cur = set[0].Data.(dnswire.NSEC).NextName
		if cur == "example.com." {
			break
		}
	}
	if len(visited) != len(names) {
		t.Errorf("NSEC chain covered %d of %d names", len(visited), len(names))
	}
}

func TestSignedResponsesLargerAndOrdered(t *testing.T) {
	z1024 := signedZone(t, Config{ZSKBits: 1024})
	z2048 := signedZone(t, Config{ZSKBits: 2048})
	plain, err := zone.Parse(strings.NewReader(testZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	respLen := func(z *zone.Zone, dnssecOK bool) int {
		res := z.Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{DNSSEC: dnssecOK})
		m := dnswire.Message{Header: dnswire.Header{QR: true}, Answer: res.Records, Authority: res.Authority}
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		return len(wire)
	}
	lPlain := respLen(plain, true)
	l1024 := respLen(z1024, true)
	l2048 := respLen(z2048, true)
	if !(lPlain < l1024 && l1024 < l2048) {
		t.Errorf("response sizes plain=%d 1024=%d 2048=%d, want strictly increasing", lPlain, l1024, l2048)
	}
	// The size step should be dominated by the signature growth (128B).
	if d := l2048 - l1024; d < 100 || d > 200 {
		t.Errorf("1024->2048 growth = %d bytes, want ~128", d)
	}
	// Without DO, signed and plain answers are the same size.
	if respLen(z2048, false)-respLen(plain, false) != 0 {
		t.Errorf("DO=0 response grew after signing")
	}
}

func TestSigningDeterministic(t *testing.T) {
	z1 := signedZone(t, Config{ZSKBits: 2048})
	z2 := signedZone(t, Config{ZSKBits: 2048})
	a, b := z1.Records(), z2.Records()
	if len(a) != len(b) {
		t.Fatalf("record counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("record %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestKeyTagStable(t *testing.T) {
	k := makeKey("example.com.", flagsZSK, 2048, 8, "zsk-a")
	t1, t2 := KeyTag(k), KeyTag(k)
	if t1 != t2 {
		t.Errorf("key tag unstable: %d %d", t1, t2)
	}
	k2 := makeKey("example.com.", flagsZSK, 2048, 8, "zsk-b")
	if KeyTag(k2) == t1 {
		t.Log("distinct keys share a tag (possible but unlikely); check derivation")
	}
}

func TestDSForMatchesKSK(t *testing.T) {
	ds, err := DSFor("example.com.", Config{})
	if err != nil {
		t.Fatal(err)
	}
	z := signedZone(t, Config{})
	var kskTag uint16
	for _, rr := range z.RRset("example.com.", dnswire.TypeDNSKEY) {
		if k := rr.Data.(dnswire.DNSKEY); k.Flags == flagsKSK {
			kskTag = KeyTag(k)
		}
	}
	if ds.KeyTag != kskTag {
		t.Errorf("DS tag %d != KSK tag %d", ds.KeyTag, kskTag)
	}
	if len(ds.Digest) != 32 || ds.DigestType != 2 {
		t.Errorf("DS = %+v", ds)
	}
}

func TestSignedZoneStillAnswers(t *testing.T) {
	z := signedZone(t, Config{})
	res := z.Lookup("www.example.com.", dnswire.TypeA, zone.LookupOptions{DNSSEC: true})
	if res.Kind != zone.Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	var haveA, haveSig bool
	for _, rr := range res.Records {
		switch d := rr.Data.(type) {
		case dnswire.A:
			if d.Addr == netip.MustParseAddr("192.0.2.80") {
				haveA = true
			}
		case dnswire.RRSIG:
			if d.TypeCovered == dnswire.TypeA {
				haveSig = true
			}
		}
	}
	if !haveA || !haveSig {
		t.Errorf("records = %v", res.Records)
	}
	// Negative answer carries NSEC + sig.
	res = z.Lookup("missing.example.com.", dnswire.TypeA, zone.LookupOptions{DNSSEC: true})
	if res.Kind != zone.NXDomain {
		t.Fatalf("kind = %v", res.Kind)
	}
	var haveNSEC bool
	for _, rr := range res.Authority {
		if rr.Type() == dnswire.TypeNSEC {
			haveNSEC = true
		}
	}
	if !haveNSEC {
		t.Errorf("NXDOMAIN authority lacks NSEC: %v", res.Authority)
	}
}
