package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/metrics"
	"ldplayer/internal/sysmodel"
	"ldplayer/internal/trace"
)

// Ablations isolate the design choices DESIGN.md calls out: connection
// reuse (the reason trace replay beats per-query models), the Nagle
// model behind the latency tails, and name compression in the wire
// encoder.

// ReuseAblationResult compares connection reuse against fresh-per-query
// connections — the paper's observation that "if all connections were
// fresh, models predict 100% overhead for TCP".
type ReuseAblationResult struct {
	RTT time.Duration
	// WithReuse and NoReuse summarize all-clients TCP latency (seconds).
	WithReuse metrics.Summary
	NoReuse   metrics.Summary
	// ConnsWithReuse and ConnsNoReuse count connection opens.
	ConnsWithReuse int64
	ConnsNoReuse   int64
}

// String renders the comparison. The headline uses the mean: medians are
// dominated by intra-burst queueing behind the burst head's handshake,
// while the mean captures the reuse wins on established connections.
func (r ReuseAblationResult) String() string {
	return fmt.Sprintf("rtt=%-5v reuse: mean=%.0fms p50=%.0fms conns=%d | no-reuse: mean=%.0fms p50=%.0fms conns=%d (mean overhead %+.0f%%)",
		r.RTT, r.WithReuse.Mean*1000, r.WithReuse.P50*1000, r.ConnsWithReuse,
		r.NoReuse.Mean*1000, r.NoReuse.P50*1000, r.ConnsNoReuse,
		(r.NoReuse.Mean/r.WithReuse.Mean-1)*100)
}

// AblationConnectionReuse runs the all-TCP workload with the normal 20 s
// idle timeout and with a timeout shorter than any inter-query gap
// (every query pays a handshake).
func AblationConnectionReuse(sc SimScale, rtt time.Duration) (*ReuseAblationResult, error) {
	run := func(timeout time.Duration) (*sysmodel.Result, error) {
		in, err := workloadReader(sc, WorkloadAllTCP)
		if err != nil {
			return nil, err
		}
		return sysmodel.Simulate(in, sysmodel.Config{
			RTT: rtt, IdleTimeout: timeout, KeepLatencies: true,
			SampleEvery: 30 * time.Second,
		})
	}
	withReuse, err := run(20 * time.Second)
	if err != nil {
		return nil, err
	}
	noReuse, err := run(time.Nanosecond) // closes before any reuse
	if err != nil {
		return nil, err
	}
	lat := func(r *sysmodel.Result) metrics.Summary {
		all := make([]float64, len(r.Latencies))
		for i, s := range r.Latencies {
			all[i] = s.Seconds
		}
		return metrics.Summarize(all)
	}
	return &ReuseAblationResult{
		RTT:            rtt,
		WithReuse:      lat(withReuse),
		NoReuse:        lat(noReuse),
		ConnsWithReuse: withReuse.ConnsOpened,
		ConnsNoReuse:   noReuse.ConnsOpened,
	}, nil
}

// NagleAblationResult compares latency tails with and without the
// Nagle/delayed-ACK model (the paper's suggested mitigation is disabling
// Nagle on the server).
type NagleAblationResult struct {
	RTT       time.Duration
	WithNagle metrics.Summary
	NoNagle   metrics.Summary
}

// String renders the tails.
func (r NagleAblationResult) String() string {
	return fmt.Sprintf("rtt=%-5v nagle on : p75=%.0fms p95=%.0fms | nagle off: p75=%.0fms p95=%.0fms",
		r.RTT, r.WithNagle.P75*1000, r.WithNagle.P95*1000,
		r.NoNagle.P75*1000, r.NoNagle.P95*1000)
}

// AblationNagle measures the reassembly-delay tail the paper discovered
// and what disabling Nagle buys back.
func AblationNagle(sc SimScale, rtt time.Duration) (*NagleAblationResult, error) {
	run := func(nagle bool) (metrics.Summary, error) {
		in, err := workloadReader(sc, WorkloadAllTCP)
		if err != nil {
			return metrics.Summary{}, err
		}
		res, err := sysmodel.Simulate(in, sysmodel.Config{
			RTT: rtt, IdleTimeout: 20 * time.Second, Nagle: nagle,
			KeepLatencies: true, SampleEvery: 30 * time.Second,
		})
		if err != nil {
			return metrics.Summary{}, err
		}
		all := make([]float64, len(res.Latencies))
		for i, s := range res.Latencies {
			all[i] = s.Seconds
		}
		return metrics.Summarize(all), nil
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	return &NagleAblationResult{RTT: rtt, WithNagle: on, NoNagle: off}, nil
}

// CompressionAblationResult reports the wire-size effect of DNS name
// compression on realistic responses.
type CompressionAblationResult struct {
	Responses       int
	CompressedBytes int64
	// NaiveBytes estimates the same responses with every name encoded
	// uncompressed.
	NaiveBytes int64
}

// String renders the savings.
func (r CompressionAblationResult) String() string {
	save := 0.0
	if r.NaiveBytes > 0 {
		save = (1 - float64(r.CompressedBytes)/float64(r.NaiveBytes)) * 100
	}
	return fmt.Sprintf("responses=%d compressed=%dB naive=%dB (saving %.1f%%)",
		r.Responses, r.CompressedBytes, r.NaiveBytes, save)
}

// AblationNameCompression packs a referral-heavy response sample with the
// production encoder and compares against the uncompressed size bound.
func AblationNameCompression() (*CompressionAblationResult, error) {
	// A representative root referral: 6 NS + 12 glue records sharing the
	// gtld suffix — the compression-friendly shape root responses have.
	resp := &dnswire.Message{Header: dnswire.Header{ID: 1, QR: true}}
	resp.Question = []dnswire.Question{{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 6; i++ {
		host := fmt.Sprintf("%c.gtld-servers.net.", 'a'+i)
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: "com.", Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.NS{Host: host}})
		resp.Additional = append(resp.Additional, dnswire.RR{
			Name: host, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.A{Addr: addr4(192, 5, 6, byte(30+i))}})
		resp.Additional = append(resp.Additional, dnswire.RR{
			Name: host, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.AAAA{Addr: addr16(i)}})
	}
	const n = 1000
	out := &CompressionAblationResult{Responses: n}
	wire, err := resp.Pack(nil)
	if err != nil {
		return nil, err
	}
	out.CompressedBytes = int64(n * len(wire))
	out.NaiveBytes = int64(n * naiveLen(resp))
	return out, nil
}

// naiveLen computes the uncompressed encoding size of m.
func naiveLen(m *dnswire.Message) int {
	nameLen := func(name string) int {
		if name == "." {
			return 1
		}
		return len(dnswire.CanonicalName(name)) + 1
	}
	n := 12
	for _, q := range m.Question {
		n += nameLen(q.Name) + 4
	}
	for _, sec := range [][]dnswire.RR{m.Answer, m.Authority, m.Additional} {
		for _, rr := range sec {
			n += nameLen(rr.Name) + 10
			switch d := rr.Data.(type) {
			case dnswire.NS:
				n += nameLen(d.Host)
			case dnswire.A:
				n += 4
			case dnswire.AAAA:
				n += 16
			default:
				n += 16 // rough
			}
		}
	}
	return n
}

func addr4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }

func addr16(i int) netip.Addr {
	var out [16]byte
	out[0], out[1] = 0x20, 0x01
	out[15] = byte(i)
	return netip.AddrFrom16(out)
}

// syntheticSrc builds a distinct source address-port from a counter.
func syntheticSrc(i int64) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{172, byte(i >> 16), byte(i >> 8), byte(i)}), 5353)
}

// ReplayDistributionAblation compares sticky source distribution against
// what the server would see with the affinity invariant broken: the same
// trace replayed with every source isolated (upper bound on connection
// count) versus all sources collapsed onto one (lower bound) — bounding
// the value of §2.6's same-source delivery guarantee.
type ReplayDistributionAblation struct {
	StickyConns    int64
	PerQueryConns  int64
	CollapsedConns int64
}

// String renders the bound.
func (r ReplayDistributionAblation) String() string {
	return fmt.Sprintf("connections: sticky=%d per-query=%d collapsed=%d",
		r.StickyConns, r.PerQueryConns, r.CollapsedConns)
}

// AblationSourceAffinity simulates the all-TCP workload under the three
// source-mapping policies.
func AblationSourceAffinity(sc SimScale) (*ReplayDistributionAblation, error) {
	run := func(mapSrc func(i int64, e *trace.Entry)) (int64, error) {
		in, err := workloadReader(sc, WorkloadAllTCP)
		if err != nil {
			return 0, err
		}
		var i int64
		wrapped := readerFunc(func() (trace.Entry, error) {
			e, err := in.Next()
			if err != nil {
				return e, err
			}
			i++
			if mapSrc != nil {
				mapSrc(i, &e)
			}
			return e, nil
		})
		res, err := sysmodel.Simulate(wrapped, sysmodel.Config{
			RTT: time.Millisecond, IdleTimeout: 20 * time.Second,
			SampleEvery: 30 * time.Second,
		})
		if err != nil {
			return 0, err
		}
		return res.ConnsOpened, nil
	}
	sticky, err := run(nil)
	if err != nil {
		return nil, err
	}
	perQuery, err := run(func(i int64, e *trace.Entry) {
		// Every query pretends to be a brand-new source: no reuse ever.
		e.Src = syntheticSrc(i)
	})
	if err != nil {
		return nil, err
	}
	collapsed, err := run(func(i int64, e *trace.Entry) {
		e.Src = syntheticSrc(0)
	})
	if err != nil {
		return nil, err
	}
	return &ReplayDistributionAblation{
		StickyConns:    sticky,
		PerQueryConns:  perQuery,
		CollapsedConns: collapsed,
	}, nil
}

// readerFunc adapts a closure to trace.Reader.
type readerFunc func() (trace.Entry, error)

// Next implements trace.Reader.
func (f readerFunc) Next() (trace.Entry, error) { return f() }
