package experiments

import (
	"testing"
	"time"
)

func TestAblationConnectionReuse(t *testing.T) {
	res, err := AblationConnectionReuse(tinySim(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	// Without reuse every TCP query pays the handshake (the "100%
	// overhead" prediction the paper cites); the mean shows it even when
	// intra-burst queueing pins the median near 2 RTT in both runs.
	if ratio := res.NoReuse.Mean / res.WithReuse.Mean; ratio < 1.2 {
		t.Errorf("no-reuse/reuse mean ratio = %.2f, want the handshake penalty", ratio)
	}
	if res.ConnsNoReuse <= res.ConnsWithReuse {
		t.Errorf("connection counts: no-reuse %d <= reuse %d", res.ConnsNoReuse, res.ConnsWithReuse)
	}
}

func TestAblationNagle(t *testing.T) {
	res, err := AblationNagle(tinySim(), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !(res.WithNagle.P95 > res.NoNagle.P95) {
		t.Errorf("Nagle p95 %.3f not above no-Nagle %.3f", res.WithNagle.P95, res.NoNagle.P95)
	}
	// Medians should be close: the stalls are a tail phenomenon.
	if res.WithNagle.P50 > res.NoNagle.P50*1.5+0.001 {
		t.Errorf("Nagle moved the median too much: %.3f vs %.3f", res.WithNagle.P50, res.NoNagle.P50)
	}
}

func TestAblationNameCompression(t *testing.T) {
	res, err := AblationNameCompression()
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.CompressedBytes >= res.NaiveBytes {
		t.Errorf("compression saved nothing: %d vs %d", res.CompressedBytes, res.NaiveBytes)
	}
	saving := 1 - float64(res.CompressedBytes)/float64(res.NaiveBytes)
	if saving < 0.25 {
		t.Errorf("saving = %.1f%%, referral responses should compress hard", saving*100)
	}
}

func TestAblationSourceAffinity(t *testing.T) {
	res, err := AblationSourceAffinity(tinySim())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if !(res.CollapsedConns <= res.StickyConns && res.StickyConns < res.PerQueryConns) {
		t.Errorf("ordering violated: %+v", res)
	}
	// Breaking affinity costs orders of magnitude in connection load.
	if res.PerQueryConns < res.StickyConns*3 {
		t.Errorf("per-query conns %d not far above sticky %d", res.PerQueryConns, res.StickyConns)
	}
}
