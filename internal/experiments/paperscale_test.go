package experiments

import (
	"testing"
	"time"
)

func TestPaperScaleFootprint(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("paper-scale run")
	}
	sc := PaperSimScale()
	tcp, err := FigFootprint(sc, WorkloadAllTCP, []time.Duration{20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tls, err := FigFootprint(sc, WorkloadAllTLS, []time.Duration{20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TCP: %s", tcp[0])
	t.Logf("TLS: %s", tls[0])
}
