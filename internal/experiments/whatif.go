package experiments

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnssec"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/metrics"
	"ldplayer/internal/mutate"
	"ldplayer/internal/sysmodel"
	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
	"ldplayer/internal/zone"
)

// The what-if experiments (§5) replay mutated B-Root traffic through the
// sysmodel discrete-event simulation in virtual time, with response sizes
// supplied by the real authoritative engine, so hours of root traffic run
// in seconds while connection dynamics and response content stay honest.

// SimScale sets the virtual workload for the simulation experiments.
type SimScale struct {
	// Rate is the median query rate (paper: ~39000 for B-Root-17a).
	Rate float64
	// Duration is the virtual trace length.
	Duration time.Duration
	// Clients is the client population (paper: 1.17 M).
	Clients int
	Seed    int64
}

// DefaultSimScale keeps each simulated figure under ~1 minute while
// preserving the client-skew and reuse dynamics.
func DefaultSimScale() SimScale {
	return SimScale{Rate: 4000, Duration: 3 * time.Minute, Clients: 120000, Seed: 1}
}

// PaperSimScale reproduces the paper's absolute operating point (slower:
// tens of millions of simulated queries).
func PaperSimScale() SimScale {
	return SimScale{Rate: 39000, Duration: 10 * time.Minute, Clients: 1170000, Seed: 1}
}

// brootSim builds the simulation input trace.
func brootSim(sc SimScale, tcpFraction, doFraction float64) (trace.Reader, error) {
	return traceg.BRoot(traceg.BRootConfig{
		Duration: sc.Duration, MedianRate: sc.Rate, Clients: sc.Clients,
		TCPFraction: tcpFraction, DOFraction: doFraction, Seed: sc.Seed,
	})
}

// Fig10Row is one bar of Figure 10: response bandwidth for a DNSSEC
// configuration.
type Fig10Row struct {
	Label     string
	ZSKBits   int
	Rollover  bool
	DOPercent float64
	// Bandwidth summarizes response Mbit/s over the run (median,
	// quartiles, 5th/95th like the paper's boxes).
	Bandwidth metrics.Summary
}

// String renders the bar.
func (r Fig10Row) String() string {
	return fmt.Sprintf("%-28s median=%.2f Mb/s p25=%.2f p75=%.2f p5=%.2f p95=%.2f",
		r.Label, r.Bandwidth.P50, r.Bandwidth.P25, r.Bandwidth.P75, r.Bandwidth.P5, r.Bandwidth.P95)
}

// Fig10DNSSEC measures response bandwidth under {1024, 2048, rollover}
// ZSKs × {72.3%, 100%} DO-bit fractions, replaying the B-Root-like trace
// against a real signed root zone.
func Fig10DNSSEC(sc SimScale) ([]Fig10Row, error) {
	type variant struct {
		label    string
		zsk      int
		rollover bool
		doFrac   float64
	}
	variants := []variant{
		{"72.3%DO zsk1024", 1024, false, 0.723},
		{"72.3%DO zsk2048", 2048, false, 0.723},
		{"72.3%DO zsk2048 rollover", 2048, true, 0.723},
		{"100%DO zsk1024", 1024, false, 1.0},
		{"100%DO zsk2048", 2048, false, 1.0},
		{"100%DO zsk2048 rollover", 2048, true, 1.0},
	}
	var rows []Fig10Row
	for _, v := range variants {
		h, err := hierarchy.Build(rootSLDs, hierarchy.Options{
			Signed:         true,
			ServersPerZone: 6, // typical TLD NS-set size (gTLDs run 6-13)
			DNSSEC:         dnssec.Config{ZSKBits: v.zsk, Rollover: v.rollover},
		})
		if err != nil {
			return nil, err
		}
		// B-Root replay answers from the root zone alone (§4.1): glue-rich
		// referrals for delegated TLDs, NXDOMAIN for junk.
		engine := authserver.NewEngine()
		if err := engine.AddView(&authserver.View{Name: "root", Zones: []*zone.Zone{h.Root}}); err != nil {
			return nil, err
		}
		in, err := brootSim(sc, 0.03, v.doFrac)
		if err != nil {
			return nil, err
		}
		res, err := sysmodel.Simulate(in, sysmodel.Config{
			RTT:         time.Millisecond,
			SampleEvery: 10 * time.Second,
			Responder: func(query []byte, src netip.Addr) int {
				out, err := engine.Respond(query, src, authserver.UDP)
				if err != nil {
					return 0
				}
				return len(out)
			},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			Label: v.label, ZSKBits: v.zsk, Rollover: v.rollover,
			DOPercent: v.doFrac * 100,
			Bandwidth: res.BandwidthMb.SteadyState(20 * time.Second),
		})
	}
	return rows, nil
}

// Workload names the three §5.2 traffic mixes.
type Workload string

// The §5.2 workloads.
const (
	WorkloadOriginal Workload = "original(3%TCP)"
	WorkloadAllTCP   Workload = "all-TCP"
	WorkloadAllTLS   Workload = "all-TLS"
)

// workloadReader applies the §5.2 protocol mutation to the base trace.
func workloadReader(sc SimScale, w Workload) (trace.Reader, error) {
	base, err := brootSim(sc, 0.03, 0.723)
	if err != nil {
		return nil, err
	}
	switch w {
	case WorkloadOriginal:
		return base, nil
	case WorkloadAllTCP:
		return mutate.NewPipeline(mutate.SetProtocol(trace.TCP)).Reader(base), nil
	case WorkloadAllTLS:
		return mutate.NewPipeline(mutate.SetProtocol(trace.TLS)).Reader(base), nil
	}
	return nil, fmt.Errorf("experiments: unknown workload %q", w)
}

// Fig11Row is one point of Figure 11: server CPU at a TCP timeout.
type Fig11Row struct {
	Workload Workload
	Timeout  time.Duration
	CPU      metrics.Summary // percent of all cores
}

// String renders the point.
func (r Fig11Row) String() string {
	return fmt.Sprintf("%-16s timeout=%-4v cpu median=%.1f%% p25=%.1f%% p75=%.1f%%",
		r.Workload, r.Timeout, r.CPU.P50, r.CPU.P25, r.CPU.P75)
}

// Fig11CPU sweeps the connection timeout for the three workloads.
func Fig11CPU(sc SimScale, timeouts []time.Duration) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, w := range []Workload{WorkloadOriginal, WorkloadAllTCP, WorkloadAllTLS} {
		for _, to := range timeouts {
			in, err := workloadReader(sc, w)
			if err != nil {
				return nil, err
			}
			res, err := sysmodel.Simulate(in, sysmodel.Config{
				RTT: time.Millisecond, IdleTimeout: to, SampleEvery: 10 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig11Row{
				Workload: w, Timeout: to,
				CPU: res.CPUPercent.SteadyState(30 * time.Second),
			})
		}
	}
	return rows, nil
}

// FootprintRow is one timeout's steady-state server footprint
// (Figures 13 and 14: memory, established, TIME_WAIT).
type FootprintRow struct {
	Workload    Workload
	Timeout     time.Duration
	MemoryGB    metrics.Summary
	Established metrics.Summary
	TimeWait    metrics.Summary
	// Series retains the raw curves for time-axis plots.
	MemorySeries, EstablishedSeries, TimeWaitSeries *metrics.TimeSeries
}

// String renders the steady-state row.
func (r FootprintRow) String() string {
	return fmt.Sprintf("%-16s timeout=%-4v mem=%.2fGB established=%.0f time_wait=%.0f",
		r.Workload, r.Timeout, r.MemoryGB.P50, r.Established.P50, r.TimeWait.P50)
}

// FigFootprint sweeps connection timeouts for one workload, producing the
// Figure 13 (TCP) or Figure 14 (TLS) panels.
func FigFootprint(sc SimScale, w Workload, timeouts []time.Duration) ([]FootprintRow, error) {
	var rows []FootprintRow
	for _, to := range timeouts {
		in, err := workloadReader(sc, w)
		if err != nil {
			return nil, err
		}
		res, err := sysmodel.Simulate(in, sysmodel.Config{
			RTT: time.Millisecond, IdleTimeout: to, SampleEvery: 10 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		warm := 30 * time.Second
		memGB := metrics.Summary{}
		{
			raw := res.Memory.SteadyState(warm)
			memGB = raw
			memGB.Min /= 1 << 30
			memGB.Max /= 1 << 30
			memGB.P5 /= 1 << 30
			memGB.P25 /= 1 << 30
			memGB.P50 /= 1 << 30
			memGB.P75 /= 1 << 30
			memGB.P95 /= 1 << 30
			memGB.Mean /= 1 << 30
			memGB.Std /= 1 << 30
		}
		rows = append(rows, FootprintRow{
			Workload: w, Timeout: to,
			MemoryGB:          memGB,
			Established:       res.Established.SteadyState(warm),
			TimeWait:          res.TimeWait.SteadyState(warm),
			MemorySeries:      res.Memory,
			EstablishedSeries: res.Established,
			TimeWaitSeries:    res.TimeWait,
		})
	}
	return rows, nil
}

// LatencyRow is one (workload, RTT) cell of Figure 15.
type LatencyRow struct {
	Workload Workload
	RTT      time.Duration
	// All summarizes latency over all clients (Figure 15a); NonBusy over
	// clients sending < 250 queries (Figure 15b). Units: seconds.
	All     metrics.Summary
	NonBusy metrics.Summary
}

// String renders both panels' medians in milliseconds and RTT units.
func (r LatencyRow) String() string {
	inRTT := func(s float64) float64 {
		if r.RTT <= 0 {
			return 0
		}
		return s / r.RTT.Seconds()
	}
	return fmt.Sprintf("%-16s rtt=%-5v all: p50=%6.1fms (%.1f RTT) p75=%6.1fms | non-busy: p50=%6.1fms (%.1f RTT) p75=%6.1fms",
		r.Workload, r.RTT,
		r.All.P50*1000, inRTT(r.All.P50), r.All.P75*1000,
		r.NonBusy.P50*1000, inRTT(r.NonBusy.P50), r.NonBusy.P75*1000)
}

// NonBusyThreshold is the paper's Figure 15b client cutoff.
const NonBusyThreshold = 250

// Fig15Latency sweeps client RTT for the three workloads with a 20 s
// connection timeout, reporting latency over all clients and over
// non-busy clients.
func Fig15Latency(sc SimScale, rtts []time.Duration) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, w := range []Workload{WorkloadOriginal, WorkloadAllTCP, WorkloadAllTLS} {
		for _, rtt := range rtts {
			in, err := workloadReader(sc, w)
			if err != nil {
				return nil, err
			}
			res, err := sysmodel.Simulate(in, sysmodel.Config{
				RTT: rtt, IdleTimeout: 20 * time.Second,
				Nagle: true, KeepLatencies: true,
				TLSComputeLatency: 2 * time.Millisecond,
				SampleEvery:       30 * time.Second,
			})
			if err != nil {
				return nil, err
			}
			all := make([]float64, len(res.Latencies))
			for i, s := range res.Latencies {
				all[i] = s.Seconds
			}
			nonBusy := sysmodel.FilterLatencies(res, func(c int) bool { return c < NonBusyThreshold })
			rows = append(rows, LatencyRow{
				Workload: w, RTT: rtt,
				All:     metrics.Summarize(all),
				NonBusy: metrics.Summarize(nonBusy),
			})
		}
	}
	return rows, nil
}

// ClientLoadResult is Figure 15c: the distribution of query load per
// client.
type ClientLoadResult struct {
	CDF *metrics.CDF
	// Top1PctShare is the load fraction from the busiest 1% of clients
	// (paper: ~3/4); InactiveShare is the fraction of clients sending
	// <10 queries (paper: ~81%).
	Top1PctShare  float64
	InactiveShare float64
}

// String renders the Figure 15c headline.
func (r ClientLoadResult) String() string {
	return fmt.Sprintf("clients=%d: top 1%% of clients carry %.1f%% of load; %.1f%% of clients send <10 queries",
		r.CDF.N(), r.Top1PctShare*100, r.InactiveShare*100)
}

// Fig15cClientLoad computes the per-client load distribution of the
// B-Root-like trace.
func Fig15cClientLoad(sc SimScale) (*ClientLoadResult, error) {
	in, err := brootSim(sc, 0.03, 0.723)
	if err != nil {
		return nil, err
	}
	res, err := sysmodel.Simulate(in, sysmodel.Config{RTT: time.Millisecond, SampleEvery: time.Minute})
	if err != nil {
		return nil, err
	}
	counts := make([]int, 0, len(res.PerClientCount))
	total := 0
	for _, c := range res.PerClientCount {
		counts = append(counts, c)
		total += c
	}
	// Top-1% share.
	sortDesc(counts)
	top := len(counts) / 100
	if top == 0 {
		top = 1
	}
	topLoad := 0
	for _, c := range counts[:top] {
		topLoad += c
	}
	inactive := 0
	for _, c := range counts {
		if c < 10 {
			inactive++
		}
	}
	out := &ClientLoadResult{CDF: sysmodel.ClientLoadCDF(res)}
	if total > 0 {
		out.Top1PctShare = float64(topLoad) / float64(total)
	}
	if len(counts) > 0 {
		out.InactiveShare = float64(inactive) / float64(len(counts))
	}
	return out, nil
}

func sortDesc(s []int) {
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
}
