package experiments

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/resolver"
	"ldplayer/internal/traceg"
	"ldplayer/internal/vclock"
)

// Virtual-time what-if sweeps: the LDplayer premise is that controlled
// parameter scans (TTL policy, link RTT, retry timers) over real traffic
// are how operators answer "what would change if…" questions — but at
// real-time replay a day-long trace costs a day per cell. Under a
// SimClock the resolver's timeouts, the exchange round-trips, and the
// trace's pacing all run in simulated time, so a sweep cell costs CPU
// proportional to its event count, not its duration, and every cell is
// exactly reproducible for a given seed.

// VirtualSweepConfig parameterizes a TTL×RTT what-if scan over a
// generated recursive trace.
type VirtualSweepConfig struct {
	// TTLCaps are the cache-TTL policies to scan: every RRset TTL in
	// upstream responses is clamped to this many seconds before caching,
	// emulating an operator-imposed cache ceiling. Zero means uncapped.
	TTLCaps []uint32
	// RTTs are the virtual client↔hierarchy round-trip times to scan.
	RTTs []time.Duration
	// Zones is the number of distinct SLD zones in the workload
	// (default 25).
	Zones int
	// Duration is the virtual trace length (default 2 minutes).
	Duration time.Duration
	// MeanInterArrival paces the stub trace (default 50 ms).
	MeanInterArrival time.Duration
	Seed             int64
}

// VirtualCell is one (TTL cap, RTT) point of the sweep.
type VirtualCell struct {
	TTLCap uint32
	RTT    time.Duration
	// Queries is the stub queries issued; Failures the resolutions that
	// errored (iteration loops, no servers).
	Queries  int
	Failures int
	// Upstream, CacheHits, CacheMisses expose the cache interplay the
	// TTL policy controls.
	Upstream    int64
	CacheHits   int64
	CacheMisses int64
	// VirtualElapsed is the simulated duration of the cell's run.
	VirtualElapsed time.Duration
}

// String renders the cell.
func (c VirtualCell) String() string {
	return fmt.Sprintf("ttl_cap=%-5ds rtt=%-6v queries=%-5d upstream=%-6d cache=%d/%d hit/miss virtual=%v",
		c.TTLCap, c.RTT, c.Queries, c.Upstream, c.CacheHits, c.CacheMisses, c.VirtualElapsed.Round(time.Millisecond))
}

// VirtualSweepResult is the full scan plus its time accounting: the
// compression ratio VirtualTotal/WallTotal is the headline number.
type VirtualSweepResult struct {
	Cells []VirtualCell
	// VirtualTotal sums simulated time across cells; WallTotal is the
	// real time the whole sweep took.
	VirtualTotal time.Duration
	WallTotal    time.Duration
}

// Compression returns simulated seconds per wall second.
func (r *VirtualSweepResult) Compression() float64 {
	if r.WallTotal <= 0 {
		return 0
	}
	return r.VirtualTotal.Seconds() / r.WallTotal.Seconds()
}

// String renders the sweep summary.
func (r *VirtualSweepResult) String() string {
	return fmt.Sprintf("%d cells: %v simulated in %v wall (%.0fx)",
		len(r.Cells), r.VirtualTotal.Round(time.Second), r.WallTotal.Round(time.Millisecond), r.Compression())
}

// virtualExchanger adds a virtual round-trip to every upstream exchange
// and clamps response TTLs to the cell's cache policy. The Sleep keeps
// the exchange inside the SimClock's idle barrier, so simulated time
// pays for each exchange exactly once.
type virtualExchanger struct {
	inner  resolver.Exchanger
	clk    vclock.Clock
	rtt    time.Duration
	ttlCap uint32
}

// Exchange implements resolver.Exchanger.
func (v *virtualExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	v.clk.Sleep(v.rtt)
	resp, err := v.inner.Exchange(ctx, server, q)
	if err != nil || v.ttlCap == 0 {
		return resp, err
	}
	for _, sec := range [][]dnswire.RR{resp.Answer, resp.Authority, resp.Additional} {
		for i := range sec {
			if sec[i].TTL > v.ttlCap {
				sec[i].TTL = v.ttlCap
			}
		}
	}
	return resp, nil
}

// VirtualWhatIf runs the TTL×RTT sweep: each cell replays the same
// seeded recursive trace through a fresh resolver under its own
// SimClock, with one virtual client issuing the stub queries at their
// trace offsets.
func VirtualWhatIf(cfg VirtualSweepConfig) (*VirtualSweepResult, error) {
	if len(cfg.TTLCaps) == 0 {
		cfg.TTLCaps = []uint32{0}
	}
	if len(cfg.RTTs) == 0 {
		cfg.RTTs = []time.Duration{time.Millisecond}
	}
	if cfg.Zones <= 0 {
		cfg.Zones = 25
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Minute
	}
	if cfg.MeanInterArrival <= 0 {
		cfg.MeanInterArrival = 50 * time.Millisecond
	}

	wallStart := time.Now()

	// One hierarchy and engine serve every cell: the engine is stateless
	// across queries, so cells differ only in clock, cache, and policy.
	probe, err := traceg.Recursive(traceg.RecursiveConfig{
		Duration:         cfg.Duration,
		MeanInterArrival: cfg.MeanInterArrival,
		Zones:            cfg.Zones,
		Seed:             cfg.Seed,
		Start:            time.Unix(0, 0),
	})
	if err != nil {
		return nil, err
	}
	h, err := hierarchy.Build(probe.Zones(), hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	engine := authserver.NewEngine()
	for _, v := range h.Views() {
		if err := engine.AddView(v); err != nil {
			return nil, err
		}
	}
	roots := h.NSAddrs["."]
	if len(roots) > 3 {
		roots = roots[:3]
	}

	out := &VirtualSweepResult{}
	for _, ttlCap := range cfg.TTLCaps {
		for _, rtt := range cfg.RTTs {
			cell, err := runVirtualCell(cfg, engine, roots, ttlCap, rtt)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, *cell)
			out.VirtualTotal += cell.VirtualElapsed
		}
	}
	out.WallTotal = time.Since(wallStart)
	return out, nil
}

// runVirtualCell replays the trace once under a fresh SimClock.
func runVirtualCell(cfg VirtualSweepConfig, engine *authserver.Engine, roots []netip.Addr, ttlCap uint32, rtt time.Duration) (*VirtualCell, error) {
	clk := vclock.NewSim(time.Time{})
	gen, err := traceg.Recursive(traceg.RecursiveConfig{
		Duration:         cfg.Duration,
		MeanInterArrival: cfg.MeanInterArrival,
		Zones:            cfg.Zones,
		Seed:             cfg.Seed,
		Start:            clk.Now(),
	})
	if err != nil {
		return nil, err
	}
	res, err := resolver.New(resolver.Config{
		Roots:     roots,
		Exchanger: &virtualExchanger{inner: &engineExchanger{engine: engine}, clk: clk, rtt: rtt, ttlCap: ttlCap},
		Clock:     clk,
	})
	if err != nil {
		return nil, err
	}

	cell := &VirtualCell{TTLCap: ttlCap, RTT: rtt}
	start := clk.Now()
	var runErr error
	// A single virtual client walks the trace in order: sleep to each
	// entry's offset, then resolve it synchronously. Sequential issue
	// keeps the rng draw order — and therefore every counter — identical
	// across runs.
	clk.Go(func() {
		for {
			e, err := gen.Next()
			if err != nil {
				if err != io.EOF {
					runErr = err
				}
				return
			}
			if d := e.Time.Sub(clk.Now()); d > 0 {
				clk.Sleep(d)
			}
			var q dnswire.Message
			if err := q.Unpack(e.Message); err != nil || len(q.Question) == 0 {
				continue
			}
			cell.Queries++
			ans, err := res.Resolve(context.Background(), q.Question[0].Name, q.Question[0].Type)
			if err != nil || ans.Rcode == dnswire.RcodeServFail {
				cell.Failures++
			}
		}
	})
	end := clk.Run()
	if runErr != nil {
		return nil, runErr
	}

	cell.Upstream = res.QueriesSent()
	cell.CacheHits, cell.CacheMisses = res.Cache().HitsMisses()
	cell.VirtualElapsed = end.Sub(start)
	return cell, nil
}
