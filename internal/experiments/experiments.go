// Package experiments regenerates every data-bearing table and figure of
// the paper's evaluation (§4, §5). Each function returns printable rows;
// the repository-root benchmarks and cmd/ldplayer drive them. Workloads
// are scaled from the paper's testbed (38 k q/s, 1.17 M clients, hours)
// to laptop budgets; EXPERIMENTS.md records the paper-vs-measured shape
// comparison and the scaling factors.
package experiments

import (
	"context"
	"fmt"
	"time"

	"ldplayer/internal/core"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/metrics"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
)

// Scale sets the workload size for the live-replay experiments.
type Scale struct {
	// Rate is the B-Root-like median query rate (paper: 38000).
	Rate float64
	// Duration is the replayed trace length (paper: 20–60 min).
	Duration time.Duration
	// Clients is the client population (paper: 1.17 M).
	Clients int
	// Seed keeps runs reproducible.
	Seed int64
}

// DefaultScale runs each live experiment in a few seconds.
func DefaultScale() Scale {
	return Scale{Rate: 2000, Duration: 8 * time.Second, Clients: 20000, Seed: 1}
}

// rootSLDs gives the hierarchy builder one SLD per popular TLD so the
// synthesized root zone delegates a realistic TLD set.
var rootSLDs = []string{
	"example.com.", "example.net.", "example.org.", "example.de.",
	"example.uk.", "example.jp.", "example.fr.", "example.nl.",
	"example.br.", "example.it.", "example.ru.", "example.info.",
	"example.io.", "example.edu.", "example.gov.", "example.cn.",
	"example.au.", "example.ca.", "example.eu.", "example.arpa.",
}

// Table1Row is one trace family's statistics (Table 1's columns).
type Table1Row struct {
	Name   string
	Stats  traceg.Stats
	Target string // the paper's corresponding figure for the column
}

// String renders the row like Table 1.
func (r Table1Row) String() string {
	return fmt.Sprintf("%-10s records=%-9d clients=%-8d interarrival=%.6fs ±%.6fs",
		r.Name, r.Stats.Records, r.Stats.Clients,
		r.Stats.MeanInterArriv.Seconds(), r.Stats.StdInterArriv.Seconds())
}

// Table1 generates each trace family at the given scale and computes its
// statistics, regenerating Table 1.
func Table1(sc Scale) ([]Table1Row, error) {
	var rows []Table1Row

	broot, err := traceg.BRoot(traceg.BRootConfig{
		Duration: sc.Duration, MedianRate: sc.Rate, Clients: sc.Clients,
		TCPFraction: 0.03, DOFraction: 0.723, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	st, err := traceg.ComputeStats(broot)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Name: "B-Root-16", Stats: *st,
		Target: "paper: inter-arrival 27µs±619µs at 38k q/s (scaled)"})

	rec, err := traceg.Recursive(traceg.RecursiveConfig{Duration: sc.Duration * 10, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	st, err = traceg.ComputeStats(rec)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{Name: "Rec-17", Stats: *st,
		Target: "paper: 91 clients, inter-arrival 0.1808s±0.3554s"})

	for i, gap := range []time.Duration{time.Second, 100 * time.Millisecond,
		10 * time.Millisecond, time.Millisecond, 100 * time.Microsecond} {
		g, err := traceg.Synthetic(traceg.SyntheticConfig{
			InterArrival: gap, Duration: sc.Duration, Clients: 1000, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		st, err := traceg.ComputeStats(g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Name: fmt.Sprintf("syn-%d", i), Stats: *st,
			Target: fmt.Sprintf("paper: fixed %v inter-arrival", gap)})
	}
	return rows, nil
}

// newRootPlayer stands up a live meta server hosting the synthesized root
// zone as its default view, the §4.1 configuration ("we use a real DNS
// root zone file in server for B-Root trace replay").
func newRootPlayer(cfg core.Config) (*core.Player, error) {
	h, err := hierarchy.Build(rootSLDs, hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	cfg.Zones = append(cfg.Zones, h.Root)
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.Start(); err != nil {
		return nil, err
	}
	return p, nil
}

// TimingRow is one trace family's replay-timing accuracy (Figure 6).
type TimingRow struct {
	Name string
	// Err summarizes per-query scheduling error in seconds; the paper
	// reports quartiles within ±2.5 ms (±8 ms at the 0.1 s inter-arrival).
	Err metrics.Summary
}

// String renders a Figure 6 row in milliseconds.
func (r TimingRow) String() string {
	ms := func(v float64) float64 { return v * 1000 }
	return fmt.Sprintf("%-12s err(ms): p25=%+.3f p50=%+.3f p75=%+.3f min=%+.3f max=%+.3f",
		r.Name, ms(r.Err.P25), ms(r.Err.P50), ms(r.Err.P75), ms(r.Err.Min), ms(r.Err.Max))
}

// synGaps are the syn-0..4 inter-arrival times, smallest last so the
// hardest case runs with a warm engine.
var synGaps = []time.Duration{time.Second, 100 * time.Millisecond,
	10 * time.Millisecond, time.Millisecond, 100 * time.Microsecond}

// Fig6TimingError replays the synthetic traces and a B-Root-like trace
// over UDP in real time and reports per-query timing error.
func Fig6TimingError(sc Scale) ([]TimingRow, error) {
	p, err := newRootPlayer(core.Config{})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	var rows []TimingRow
	for i, gap := range synGaps {
		dur := sc.Duration
		// Keep the slow traces from dominating wall-clock time while
		// still collecting enough samples.
		if n := time.Duration(30) * gap; n < dur {
			dur = maxDur(n, 2*time.Second)
		}
		g, err := traceg.Synthetic(traceg.SyntheticConfig{
			InterArrival: gap, Duration: dur, Clients: 1000, Seed: sc.Seed,
			Start: time.Now(),
		})
		if err != nil {
			return nil, err
		}
		rep, err := p.Replay(context.Background(), g)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TimingRow{Name: fmt.Sprintf("syn-%d(%v)", i, gap), Err: rep.TimingError})
	}

	broot, err := liveBRoot(sc)
	if err != nil {
		return nil, err
	}
	rep, err := p.Replay(context.Background(), broot)
	if err != nil {
		return nil, err
	}
	rows = append(rows, TimingRow{Name: "B-Root", Err: rep.TimingError})
	return rows, nil
}

// liveBRoot builds a B-Root-like trace anchored at the current wall time
// so real-time replay starts immediately.
func liveBRoot(sc Scale) (trace.Reader, error) {
	return traceg.BRoot(traceg.BRootConfig{
		Start: time.Now(), Duration: sc.Duration, MedianRate: sc.Rate,
		Clients: sc.Clients, TCPFraction: 0, DOFraction: 0.723, Seed: sc.Seed,
	})
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// InterArrivalRow compares original and replayed inter-arrival
// distributions (Figure 7).
type InterArrivalRow struct {
	Name     string
	Original *metrics.CDF
	Replayed *metrics.CDF
	// MedianGapError is |median(replay) - median(original)| in seconds.
	MedianGapError float64
}

// String renders key quantiles of both CDFs.
func (r InterArrivalRow) String() string {
	return fmt.Sprintf("%-12s orig p50=%.6fs replay p50=%.6fs (Δ=%.6fs)  orig p90=%.6fs replay p90=%.6fs",
		r.Name, r.Original.InverseAt(0.5), r.Replayed.InverseAt(0.5), r.MedianGapError,
		r.Original.InverseAt(0.9), r.Replayed.InverseAt(0.9))
}

// Fig7InterArrival replays traces and compares inter-arrival CDFs.
func Fig7InterArrival(sc Scale) ([]InterArrivalRow, error) {
	p, err := newRootPlayer(core.Config{})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	run := func(name string, mk func() (trace.Reader, error)) (InterArrivalRow, error) {
		// Original gaps come from one pass of the generator; the replay
		// uses an identical second pass (same seed).
		orig, err := mk()
		if err != nil {
			return InterArrivalRow{}, err
		}
		var gaps []float64
		var prev time.Time
		first := true
		for {
			e, nerr := orig.Next()
			if nerr != nil {
				break
			}
			if !first {
				gaps = append(gaps, e.Time.Sub(prev).Seconds())
			}
			prev, first = e.Time, false
		}
		replayIn, err := mk()
		if err != nil {
			return InterArrivalRow{}, err
		}
		rep, err := p.Replay(context.Background(), replayIn)
		if err != nil {
			return InterArrivalRow{}, err
		}
		row := InterArrivalRow{
			Name:     name,
			Original: metrics.NewCDF(gaps),
			Replayed: metrics.NewCDF(rep.SendInterArrivals),
		}
		d := row.Replayed.InverseAt(0.5) - row.Original.InverseAt(0.5)
		if d < 0 {
			d = -d
		}
		row.MedianGapError = d
		return row, nil
	}

	var rows []InterArrivalRow
	for i, gap := range synGaps[1:4] { // 100ms, 10ms, 1ms
		gap := gap
		row, err := run(fmt.Sprintf("syn(%v)", gap), func() (trace.Reader, error) {
			return traceg.Synthetic(traceg.SyntheticConfig{
				InterArrival: gap, Duration: maxDur(time.Duration(40)*gap, 2*time.Second),
				Clients: 1000, Seed: sc.Seed + int64(i), Start: time.Now(),
			})
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	row, err := run("B-Root", func() (trace.Reader, error) { return liveBRoot(sc) })
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	return rows, nil
}

// RateRow is one trial's per-second rate-difference distribution
// (Figure 8: ±0.1% for almost all seconds).
type RateRow struct {
	Trial int
	// Diffs are per-second (replay-original)/original values.
	Diffs *metrics.CDF
	// Within01 is the fraction of seconds within ±0.1%.
	Within01 float64
}

// String renders the Figure 8 headline.
func (r RateRow) String() string {
	return fmt.Sprintf("trial %d: %.1f%% of seconds within ±0.1%% (p5=%+.4f%% p95=%+.4f%%)",
		r.Trial, r.Within01*100, r.Diffs.InverseAt(0.05)*100, r.Diffs.InverseAt(0.95)*100)
}

// Fig8RateAccuracy replays the B-Root-like trace `trials` times and
// compares per-second query rates against the original.
func Fig8RateAccuracy(sc Scale, trials int) ([]RateRow, error) {
	p, err := newRootPlayer(core.Config{})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	var rows []RateRow
	for trial := 0; trial < trials; trial++ {
		orig, err := liveBRoot(sc)
		if err != nil {
			return nil, err
		}
		origRates := metrics.NewRateCounter(time.Second)
		var entries []trace.Entry
		for {
			e, nerr := orig.Next()
			if nerr != nil {
				break
			}
			origRates.Add(e.Time)
			entries = append(entries, e)
		}
		rep, err := p.Replay(context.Background(), trace.NewSliceReader(entries))
		if err != nil {
			return nil, err
		}
		diffs := metrics.RelativeDifferences(trimEdges(origRates.Rates()), trimEdges(rep.SendRates))
		within := 0
		for _, d := range diffs {
			if d >= -0.001 && d <= 0.001 {
				within++
			}
		}
		row := RateRow{Trial: trial + 1, Diffs: metrics.NewCDF(diffs)}
		if len(diffs) > 0 {
			row.Within01 = float64(within) / float64(len(diffs))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// trimEdges drops the first and last window, which are partial.
func trimEdges(rates []float64) []float64 {
	if len(rates) <= 2 {
		return nil
	}
	return rates[1 : len(rates)-1]
}

// ThroughputResult is the Figure 9 fast-replay measurement.
type ThroughputResult struct {
	QueriesPerSec float64
	MbitPerSec    float64
	Sent          int64
	Duration      time.Duration
}

// String renders the Figure 9 headline.
func (r ThroughputResult) String() string {
	return fmt.Sprintf("fast replay: %.0f q/s, %.1f Mb/s response traffic (%d queries in %v)",
		r.QueriesPerSec, r.MbitPerSec, r.Sent, r.Duration.Round(time.Millisecond))
}

// Fig9Throughput replays a continuous stream of identical queries
// (www.example.com, the paper's §4.3 setup) in fast mode with one
// distributor and six queriers, and reports the sustained rate.
func Fig9Throughput(queries int) (*ThroughputResult, error) {
	p, err := newRootPlayer(core.Config{
		Engine: replay.Config{
			Distributors:           1,
			QueriersPerDistributor: 6,
			FastMode:               true,
		},
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	entries := make([]trace.Entry, queries)
	proto, err := traceg.Synthetic(traceg.SyntheticConfig{
		InterArrival: time.Microsecond, Duration: time.Duration(queries) * time.Microsecond,
		Clients: 6, BaseName: "example.com.", Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	for i := range entries {
		e, err := proto.Next()
		if err != nil {
			entries = entries[:i]
			break
		}
		entries[i] = e
	}

	start := time.Now()
	rep, err := p.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	sendDur := rep.Duration
	if sendDur <= 0 {
		sendDur = elapsed
	}
	qps := float64(rep.Sent) / sendDur.Seconds()
	mbps := float64(rep.ServerStats.ResponseBytes) * 8 / sendDur.Seconds() / 1e6
	return &ThroughputResult{
		QueriesPerSec: qps,
		MbitPerSec:    mbps,
		Sent:          rep.Sent,
		Duration:      sendDur,
	}, nil
}
