package experiments

import (
	"reflect"
	"testing"
	"time"
)

// TestVirtualWhatIfSweep runs the TTL×RTT scan twice and checks the
// three virtual-time claims: the sweep simulates far more time than it
// spends (≥100× compression), the TTL policy visibly moves the cache
// interplay, and every counter is identical across runs.
func TestVirtualWhatIfSweep(t *testing.T) {
	cfg := VirtualSweepConfig{
		TTLCaps:          []uint32{1, 3600},
		RTTs:             []time.Duration{time.Millisecond, 100 * time.Millisecond},
		Zones:            25,
		Duration:         2 * time.Minute,
		MeanInterArrival: 50 * time.Millisecond,
		Seed:             7,
	}

	r1, err := VirtualWhatIf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := VirtualWhatIf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep: %v", r1)
	for _, c := range r1.Cells {
		t.Logf("  %v", c)
	}

	if len(r1.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(r1.Cells))
	}

	// Stability: the scan is a pure function of its seed.
	if !reflect.DeepEqual(r1.Cells, r2.Cells) {
		t.Errorf("sweep results differ across runs:\n run1: %+v\n run2: %+v", r1.Cells, r2.Cells)
	}

	byCell := map[[2]int64]VirtualCell{}
	for _, c := range r1.Cells {
		byCell[[2]int64{int64(c.TTLCap), int64(c.RTT)}] = c
	}
	for _, rtt := range cfg.RTTs {
		short := byCell[[2]int64{1, int64(rtt)}]
		long := byCell[[2]int64{3600, int64(rtt)}]
		// Sanity: cells actually resolved the trace.
		for _, c := range []VirtualCell{short, long} {
			if c.Queries < 1000 {
				t.Fatalf("cell %v issued only %d queries", c, c.Queries)
			}
			if c.Failures > c.Queries/20 {
				t.Errorf("cell %v: %d failures", c, c.Failures)
			}
			// The last trace entry lands one inter-arrival short of the
			// nominal duration, so allow a second of slack.
			if c.VirtualElapsed < cfg.Duration-time.Second {
				t.Errorf("cell %v: virtual elapsed %v < trace duration %v", c, c.VirtualElapsed, cfg.Duration)
			}
		}
		// TTL policy effect: a 1 s cache ceiling forces re-fetches a 1 h
		// ceiling avoids, so upstream traffic and cache misses both rise.
		if short.Upstream <= long.Upstream {
			t.Errorf("rtt=%v: upstream with 1s TTL cap (%d) not above 3600s cap (%d)",
				rtt, short.Upstream, long.Upstream)
		}
		if short.CacheMisses <= long.CacheMisses {
			t.Errorf("rtt=%v: cache misses with 1s TTL cap (%d) not above 3600s cap (%d)",
				rtt, short.CacheMisses, long.CacheMisses)
		}
	}

	// Faster than real time: 4 cells × 2 min simulate 8 minutes. The
	// ≥100× floor is the issue's acceptance bar; the race detector's
	// ~10-20× slowdown would make it flaky, so the exact ratio is only
	// enforced in the non-race suite.
	if r1.VirtualTotal < 8*time.Minute {
		t.Errorf("virtual total = %v, want ≥ 8m", r1.VirtualTotal)
	}
	if comp := r1.Compression(); !raceEnabled && comp < 100 {
		t.Errorf("wall-time compression = %.0fx (%v simulated in %v), want ≥ 100x",
			comp, r1.VirtualTotal, r1.WallTotal)
	}
}
