package experiments

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/hierarchy"
	"ldplayer/internal/replay"
	"ldplayer/internal/resolver"
	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
)

// Recursive replay (§2.2's optional path, §2.4's Rec-17 scale point): a
// department-level recursive trace is replayed against a live recursive
// server whose resolver walks an emulated hierarchy — the paper's
// headline "549 valid zones in a 1-hour trace" hosted by one
// meta-DNS-server instance behind split-horizon views.

// RecursiveReplayConfig parameterizes the run.
type RecursiveReplayConfig struct {
	// Zones is the number of distinct SLD zones in the workload
	// (Rec-17: 549).
	Zones int
	// Duration is the live replay length.
	Duration time.Duration
	// MeanInterArrival compresses the trace (Rec-17's real 180 ms mean
	// would make short runs tiny).
	MeanInterArrival time.Duration
	Seed             int64
}

// RecursiveReplayResult reports the run.
type RecursiveReplayResult struct {
	Zones         int
	Views         int
	StubQueries   int64
	StubResponses int64
	Upstream      int64
	Failures      int64
	// Amplification is upstream queries per stub query; it starts near 3
	// (cold-cache hierarchy walks) and collapses as the cache warms —
	// the caching interplay §2.3 insists real replay must reproduce.
	AmplificationFirst float64 // first half of the run
	AmplificationLast  float64 // second half
	CacheHits          int64
	CacheMisses        int64
}

// String renders the result.
func (r RecursiveReplayResult) String() string {
	return fmt.Sprintf("zones=%d views=%d stub=%d answered=%d upstream=%d (amplification %.2f -> %.2f) failures=%d cache=%d/%d hit/miss",
		r.Zones, r.Views, r.StubQueries, r.StubResponses, r.Upstream,
		r.AmplificationFirst, r.AmplificationLast, r.Failures, r.CacheHits, r.CacheMisses)
}

// RecursiveReplay builds the hierarchy for every zone the Rec-17-like
// generator will query, serves all of it from one split-horizon engine,
// stands up a live recursive server in front, and replays the stub trace
// over UDP with real timing.
func RecursiveReplay(cfg RecursiveReplayConfig) (*RecursiveReplayResult, error) {
	if cfg.Zones <= 0 {
		cfg.Zones = 549
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.MeanInterArrival <= 0 {
		cfg.MeanInterArrival = 2 * time.Millisecond
	}

	gen, err := traceg.Recursive(traceg.RecursiveConfig{
		Duration:         cfg.Duration,
		MeanInterArrival: cfg.MeanInterArrival,
		Zones:            cfg.Zones,
		Seed:             cfg.Seed,
		Start:            time.Now(),
	})
	if err != nil {
		return nil, err
	}

	// The complete hierarchy for every zone the trace can touch, all
	// served by one engine.
	h, err := hierarchy.Build(gen.Zones(), hierarchy.Options{})
	if err != nil {
		return nil, err
	}
	engine := authserver.NewEngine()
	views := h.Views()
	for _, v := range views {
		if err := engine.AddView(v); err != nil {
			return nil, err
		}
	}

	// The recursive server resolving through the engine. The exchanger
	// passes the queried server address as the split-horizon source —
	// the proxies' OQDA transformation (§2.4), validated end-to-end over
	// netsim in the resolver integration tests.
	res, err := resolver.New(resolver.Config{
		Roots:     h.NSAddrs["."][:3],
		Exchanger: &engineExchanger{engine: engine},
	})
	if err != nil {
		return nil, err
	}
	recServer := &resolver.Server{Resolver: res, Workers: 16}
	if err := recServer.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer recServer.Close()

	// Live replay of the stub trace.
	en, err := replay.New(replay.Config{
		UDPTarget:    recServer.Addr().String(),
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		return nil, err
	}

	// Split the run in half to expose cache warm-up.
	var half1Stub, half1Up int64
	halfAt := time.Now().Add(cfg.Duration / 2)
	marked := false
	stats, err := en.Replay(context.Background(), &halfMarker{
		inner: gen,
		at:    halfAt,
		mark: func() {
			half1Stub = recServer.Queries()
			half1Up = res.QueriesSent()
			marked = true
		},
	})
	if err != nil {
		return nil, err
	}
	if !marked {
		half1Stub = recServer.Queries()
		half1Up = res.QueriesSent()
	}

	hits, misses := res.Cache().HitsMisses()
	out := &RecursiveReplayResult{
		Zones:         cfg.Zones,
		Views:         len(views),
		StubQueries:   recServer.Queries(),
		StubResponses: stats.Responses,
		Upstream:      res.QueriesSent(),
		Failures:      recServer.Failures(),
		CacheHits:     hits,
		CacheMisses:   misses,
	}
	if half1Stub > 0 {
		out.AmplificationFirst = float64(half1Up) / float64(half1Stub)
	}
	if rest := out.StubQueries - half1Stub; rest > 0 {
		out.AmplificationLast = float64(out.Upstream-half1Up) / float64(rest)
	}
	return out, nil
}

// halfMarker wraps a trace reader and invokes mark once the stream
// crosses the wall-clock midpoint, so the run's two halves can be
// compared (cache cold vs warm).
type halfMarker struct {
	inner  trace.Reader
	at     time.Time
	mark   func()
	marked bool
}

// Next implements trace.Reader.
func (m *halfMarker) Next() (trace.Entry, error) {
	if !m.marked && time.Now().After(m.at) {
		m.marked = true
		m.mark()
	}
	return m.inner.Next()
}

// engineExchanger answers resolver exchanges straight from an authserver
// engine, passing the queried server's address as the split-horizon
// source — semantically the proxies' OQDA rewrite of §2.4 without the
// packet plumbing (which the netsim integration tests exercise).
type engineExchanger struct {
	engine *authserver.Engine
}

// Exchange implements resolver.Exchanger.
func (e *engineExchanger) Exchange(ctx context.Context, server netip.AddrPort, q *dnswire.Message) (*dnswire.Message, error) {
	wire, err := q.Pack(nil)
	if err != nil {
		return nil, err
	}
	out, err := e.engine.Respond(wire, server.Addr(), authserver.UDP)
	if err != nil {
		return nil, err
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		return nil, err
	}
	return &resp, nil
}
