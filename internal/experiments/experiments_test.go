package experiments

import (
	"testing"
	"time"
)

// tinyScale keeps live-replay tests fast.
func tinyScale() Scale {
	return Scale{Rate: 300, Duration: 2 * time.Second, Clients: 2000, Seed: 1}
}

// tinySim keeps simulation tests fast.
func tinySim() SimScale {
	return SimScale{Rate: 800, Duration: 60 * time.Second, Clients: 20000, Seed: 1}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // B-Root, Rec-17, syn-0..4
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Records == 0 {
			t.Errorf("%s: empty trace", r.Name)
		}
		t.Log(r)
	}
	// syn-2 (10ms) has zero inter-arrival deviation.
	if rows[4].Stats.StdInterArriv != 0 {
		t.Errorf("syn-2 std = %v", rows[4].Stats.StdInterArriv)
	}
}

func TestFig6TimingError(t *testing.T) {
	rows, err := Fig6TimingError(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Log(r)
		if raceEnabled {
			continue // the race detector makes high-rate replay fall behind
		}
		// Quartile timing error within a loose ±20ms CI budget (the paper
		// reports ±2.5ms on dedicated hardware).
		if r.Err.P25 < -0.020 || r.Err.P75 > 0.020 {
			t.Errorf("%s: quartiles out of band: %+v", r.Name, r.Err)
		}
	}
}

func TestFig7InterArrival(t *testing.T) {
	rows, err := Fig7InterArrival(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Log(r)
		if r.Original.N() == 0 || r.Replayed.N() == 0 {
			t.Errorf("%s: empty CDF", r.Name)
			continue
		}
		// Medians agree within 20% or 2ms, whichever is larger.
		tol := 0.2 * r.Original.InverseAt(0.5)
		if tol < 0.002 {
			tol = 0.002
		}
		if r.MedianGapError > tol {
			t.Errorf("%s: median gap error %.6fs > %.6fs", r.Name, r.MedianGapError, tol)
		}
	}
}

func TestFig8RateAccuracy(t *testing.T) {
	rows, err := Fig8RateAccuracy(Scale{Rate: 500, Duration: 5 * time.Second, Clients: 2000, Seed: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Log(r)
		if raceEnabled {
			continue
		}
		// At laptop scale with 1s windows, demand most windows within ±2%
		// (the paper achieves ±0.1% at 38k q/s where relative noise is
		// far smaller).
		within2 := r.Diffs.At(0.02) - r.Diffs.At(-0.0200001)
		if within2 < 0.6 {
			t.Errorf("trial %d: only %.0f%% of seconds within ±2%%", r.Trial, within2*100)
		}
	}
}

func TestFig9Throughput(t *testing.T) {
	res, err := Fig9Throughput(30000)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.QueriesPerSec < 5000 {
		t.Errorf("throughput = %.0f q/s, expected thousands on loopback", res.QueriesPerSec)
	}
	if res.MbitPerSec <= 0 {
		t.Errorf("bandwidth = %v", res.MbitPerSec)
	}
}

func TestFig10DNSSECOrdering(t *testing.T) {
	rows, err := Fig10DNSSEC(tinySim())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byLabel := map[string]Fig10Row{}
	for _, r := range rows {
		t.Log(r)
		byLabel[r.Label] = r
	}
	// 100% DO must beat 72.3% DO at the same key size.
	if !(byLabel["100%DO zsk2048"].Bandwidth.P50 > byLabel["72.3%DO zsk2048"].Bandwidth.P50) {
		t.Error("100% DO bandwidth not above 72.3%")
	}
	// 2048-bit keys must beat 1024-bit at the same DO mix.
	if !(byLabel["72.3%DO zsk2048"].Bandwidth.P50 > byLabel["72.3%DO zsk1024"].Bandwidth.P50) {
		t.Error("zsk2048 bandwidth not above zsk1024")
	}
	// Rollover adds a key: at least as large.
	if byLabel["100%DO zsk2048 rollover"].Bandwidth.P50 < byLabel["100%DO zsk2048"].Bandwidth.P50*0.98 {
		t.Error("rollover bandwidth below normal")
	}
	// Headline ratio: 72.3%->100% DO growth near the paper's +31%
	// (loose band: the trace mix is synthetic).
	growth := byLabel["100%DO zsk2048"].Bandwidth.P50/byLabel["72.3%DO zsk2048"].Bandwidth.P50 - 1
	if growth < 0.10 || growth > 0.60 {
		t.Errorf("DO growth = %.1f%%, want roughly +31%%", growth*100)
	}
}

func TestFig11CPUOrdering(t *testing.T) {
	rows, err := Fig11CPU(tinySim(), []time.Duration{5 * time.Second, 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	cpu := map[Workload]map[time.Duration]float64{}
	for _, r := range rows {
		t.Log(r)
		if cpu[r.Workload] == nil {
			cpu[r.Workload] = map[time.Duration]float64{}
		}
		cpu[r.Workload][r.Timeout] = r.CPU.P50
	}
	to := 20 * time.Second
	if !(cpu[WorkloadOriginal][to] > cpu[WorkloadAllTCP][to]) {
		t.Errorf("original CPU %.2f not above all-TCP %.2f (the paper's surprise)",
			cpu[WorkloadOriginal][to], cpu[WorkloadAllTCP][to])
	}
	if !(cpu[WorkloadAllTLS][to] > cpu[WorkloadAllTCP][to]) {
		t.Errorf("TLS CPU %.2f not above TCP %.2f", cpu[WorkloadAllTLS][to], cpu[WorkloadAllTCP][to])
	}
}

func TestFigFootprintShape(t *testing.T) {
	timeouts := []time.Duration{5 * time.Second, 20 * time.Second, 40 * time.Second}
	tcp, err := FigFootprint(tinySim(), WorkloadAllTCP, timeouts)
	if err != nil {
		t.Fatal(err)
	}
	tls, err := FigFootprint(tinySim(), WorkloadAllTLS, timeouts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tcp {
		t.Log(tcp[i])
		t.Log(tls[i])
	}
	// Established connections and memory grow with timeout.
	for i := 1; i < len(tcp); i++ {
		if !(tcp[i].Established.P50 > tcp[i-1].Established.P50) {
			t.Errorf("established not growing: %v -> %v", tcp[i-1].Established.P50, tcp[i].Established.P50)
		}
		if !(tcp[i].MemoryGB.P50 >= tcp[i-1].MemoryGB.P50) {
			t.Errorf("memory not growing with timeout")
		}
	}
	// TLS memory exceeds TCP at the same timeout.
	for i := range tcp {
		if !(tls[i].MemoryGB.P50 > tcp[i].MemoryGB.P50) {
			t.Errorf("timeout %v: TLS mem %.3f <= TCP mem %.3f",
				tcp[i].Timeout, tls[i].MemoryGB.P50, tcp[i].MemoryGB.P50)
		}
	}
}

func TestFig15LatencyShape(t *testing.T) {
	rtts := []time.Duration{20 * time.Millisecond, 160 * time.Millisecond}
	rows, err := Fig15Latency(tinySim(), rtts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(w Workload, rtt time.Duration) LatencyRow {
		for _, r := range rows {
			if r.Workload == w && r.RTT == rtt {
				return r
			}
		}
		t.Fatalf("missing row %v %v", w, rtt)
		return LatencyRow{}
	}
	for _, r := range rows {
		t.Log(r)
	}
	for _, rtt := range rtts {
		orig := get(WorkloadOriginal, rtt)
		tcp := get(WorkloadAllTCP, rtt)
		tls := get(WorkloadAllTLS, rtt)
		// Mostly-UDP original sits at ~1 RTT median.
		if d := orig.All.P50 - rtt.Seconds(); d < -0.001 || d > 0.5*rtt.Seconds() {
			t.Errorf("rtt %v: original median %.1fms not ~1 RTT", rtt, orig.All.P50*1000)
		}
		// TCP and TLS exceed UDP; TLS exceeds TCP for non-busy clients.
		if !(tcp.All.P50 >= orig.All.P50) {
			t.Errorf("rtt %v: TCP median below original", rtt)
		}
		if !(tls.NonBusy.P50 > tcp.NonBusy.P50) {
			t.Errorf("rtt %v: TLS non-busy median %.1fms <= TCP %.1fms",
				rtt, tls.NonBusy.P50*1000, tcp.NonBusy.P50*1000)
		}
		// Non-busy TCP median is ~2 RTT (fresh connections dominate).
		ratio := tcp.NonBusy.P50 / rtt.Seconds()
		if ratio < 1.0 || ratio > 3.0 {
			t.Errorf("rtt %v: TCP non-busy median = %.2f RTT, want ~2", rtt, ratio)
		}
	}
}

func TestFig15cClientLoad(t *testing.T) {
	res, err := Fig15cClientLoad(tinySim())
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Top1PctShare < 0.4 {
		t.Errorf("top-1%% share = %.2f, want heavy tail", res.Top1PctShare)
	}
	if res.InactiveShare < 0.4 {
		t.Errorf("inactive share = %.2f, want most clients inactive", res.InactiveShare)
	}
}
