package experiments

import (
	"testing"
	"time"
)

func TestRecursiveReplay549Zones(t *testing.T) {
	res, err := RecursiveReplay(RecursiveReplayConfig{
		Zones:            549,
		Duration:         4 * time.Second,
		MeanInterArrival: 2 * time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
	if res.Views != 570 { // 549 SLDs + 20 TLDs + root
		t.Errorf("views = %d, want 570", res.Views)
	}
	if res.StubQueries < 500 {
		t.Errorf("stub queries = %d, want a substantial run", res.StubQueries)
	}
	if res.Failures > res.StubQueries/100 {
		t.Errorf("failures = %d of %d", res.Failures, res.StubQueries)
	}
	if res.StubResponses < res.StubQueries*9/10 {
		t.Errorf("responses = %d of %d", res.StubResponses, res.StubQueries)
	}
	// Cache warm-up: the second half needs fewer upstream queries per
	// stub query than the first.
	if !(res.AmplificationLast < res.AmplificationFirst) {
		t.Errorf("amplification did not fall: %.2f -> %.2f", res.AmplificationFirst, res.AmplificationLast)
	}
}
