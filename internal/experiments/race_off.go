//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; its
// overhead makes real-time replay fall behind at sub-millisecond
// inter-arrivals, so timing-strict tests relax their bands under it.
const raceEnabled = false
