// Package proxy implements the server proxies of §2.4 (Figure 2). Both the
// recursive proxy and the authoritative proxy perform the same address
// transformation on every captured packet:
//
//	src address ← original destination address (the OQDA rule)
//	dst address ← the configured peer (the server at the other end)
//
// with ports preserved positionally. Applied at the recursive side to all
// queries (destination port 53) this makes the query's original
// destination — the public nameserver address, the only zone identifier —
// arrive as the *source* the meta-DNS-server's split-horizon views match
// on. Applied at the authoritative side to all responses (source port 53)
// it restores a reply that appears to come from the address the recursive
// queried, so the recursive accepts it without knowing any manipulation
// happened.
//
// The paper reads packets from a TUN device with one reader thread and a
// pool of rewrite workers; here the TUN is a netsim egress filter and the
// pool is a channel-fed goroutine group.
package proxy

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"ldplayer/internal/netsim"
	"ldplayer/internal/obs"
)

// Rewrite applies the OQDA transformation toward peer.
func Rewrite(d netsim.Datagram, peer netip.Addr) netsim.Datagram {
	return netsim.Datagram{
		Src:     netip.AddrPortFrom(d.Dst.Addr(), d.Src.Port()),
		Dst:     netip.AddrPortFrom(peer, d.Dst.Port()),
		Payload: d.Payload,
	}
}

// Direction selects which packets a proxy captures.
type Direction int

// Capture directions.
const (
	// CaptureQueries diverts packets with destination port 53 (the
	// recursive proxy's iptables rule).
	CaptureQueries Direction = iota
	// CaptureResponses diverts packets with source port 53 (the
	// authoritative proxy's rule).
	CaptureResponses
)

// Stats counts proxy activity. Captured = Forwarded + Dropped + in-queue,
// so a healthy idle proxy shows all three at their final values; Dropped
// growing while Forwarded stalls means the worker pool or the peer is the
// bottleneck, not the capture rule.
type Stats struct {
	Captured  int64
	Forwarded int64
	Dropped   int64
}

// ErrQueueFull reports a packet discarded because the reader-to-worker
// queue was at capacity (the saturated-TUN condition).
var ErrQueueFull = errors.New("proxy: worker queue full, packet dropped")

// ErrNoPeer reports packets discarded because the proxy was attached with
// an invalid peer address, so rewrites have nowhere to go.
var ErrNoPeer = errors.New("proxy: invalid peer address, rewrite dropped")

// Proxy captures matching egress packets on a node, rewrites them, and
// re-injects them toward the peer. Close drains the worker pool.
type Proxy struct {
	dir     Direction
	peer    netip.Addr
	network *netsim.Network

	inline bool
	queue  chan netsim.Datagram
	wg     sync.WaitGroup

	captured  atomic.Int64
	forwarded atomic.Int64
	dropped   atomic.Int64
	lastErr   atomic.Pointer[dropError]

	closeOnce sync.Once
}

// dropError records why the most recent packet was discarded.
type dropError struct{ err error }

// Options configures a Proxy.
type Options struct {
	// Workers is the rewrite worker-pool size; it mirrors the paper's
	// multi-threaded proxy. Default 4.
	Workers int
	// QueueDepth bounds the reader-to-worker queue. Default 1024.
	QueueDepth int
	// Inline rewrites and re-injects captured packets synchronously on
	// the capturing goroutine — no queue, no workers. Virtual-time
	// scenarios need this: a worker pool's pickup order depends on the
	// Go scheduler, which would break bit-reproducibility. Real-time
	// paths should keep the pool; inline forwarding stalls the sender's
	// packet path, the saturated-TUN condition Workers exists to avoid.
	Inline bool
}

// Attach creates a proxy capturing dir packets leaving node, rewriting
// them toward peer, and re-injecting them into network.
func Attach(node *netsim.Node, network *netsim.Network, dir Direction, peer netip.Addr, opts Options) *Proxy {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	p := &Proxy{
		dir:     dir,
		peer:    peer,
		network: network,
		inline:  opts.Inline,
	}
	if !p.inline {
		p.queue = make(chan netsim.Datagram, opts.QueueDepth)
		for i := 0; i < opts.Workers; i++ {
			p.wg.Add(1)
			go p.worker()
		}
	}
	node.AddEgressFilter(p.capture)
	return p
}

// capture is the egress filter: the analogue of the mangle-table rule that
// marks packets for the TUN device.
func (p *Proxy) capture(d netsim.Datagram) bool {
	match := false
	switch p.dir {
	case CaptureQueries:
		match = d.Dst.Port() == 53
	case CaptureResponses:
		match = d.Src.Port() == 53
	}
	if !match {
		return false
	}
	p.captured.Add(1)
	if p.inline {
		p.forward(d)
		return true
	}
	// A full queue drops the packet, exactly as a saturated TUN would;
	// blocking here would stall the sender's packet path.
	select {
	case p.queue <- d:
	default:
		p.drop(ErrQueueFull)
	}
	return true
}

// forward rewrites and re-injects one captured packet.
func (p *Proxy) forward(d netsim.Datagram) {
	if !p.peer.IsValid() {
		p.drop(ErrNoPeer)
		return
	}
	p.network.Inject(Rewrite(d, p.peer))
	p.forwarded.Add(1)
}

func (p *Proxy) worker() {
	defer p.wg.Done()
	for d := range p.queue {
		p.forward(d)
	}
}

// drop records a discarded packet and the reason, so operators can tell
// "no traffic" from "all traffic dropped" (and why).
func (p *Proxy) drop(err error) {
	p.dropped.Add(1)
	p.lastErr.Store(&dropError{err: err})
}

// Stats returns capture, forward, and drop counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Captured:  p.captured.Load(),
		Forwarded: p.forwarded.Load(),
		Dropped:   p.dropped.Load(),
	}
}

// LastError returns the reason the most recent packet was dropped, or nil
// if the proxy has never dropped one.
func (p *Proxy) LastError() error {
	if de := p.lastErr.Load(); de != nil {
		return de.err
	}
	return nil
}

// Instrument registers the proxy's counters and queue-depth gauge with
// reg, labelled by capture direction. Reads happen at scrape time.
func (p *Proxy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	dir := "queries"
	if p.dir == CaptureResponses {
		dir = "responses"
	}
	labels := fmt.Sprintf("direction=%q", dir)
	reg.CounterFunc("proxy_captured_total", labels, "packets diverted by the capture rule", p.captured.Load)
	reg.CounterFunc("proxy_forwarded_total", labels, "packets rewritten and re-injected", p.forwarded.Load)
	reg.CounterFunc("proxy_dropped_total", labels, "packets discarded (full queue or invalid peer)", p.dropped.Load)
	reg.GaugeFunc("proxy_queue_depth", labels, "packets waiting for a rewrite worker", func() int64 {
		return int64(len(p.queue))
	})
}

// Close stops the workers after draining queued packets. Inline proxies
// have neither and Close is a no-op.
func (p *Proxy) Close() {
	if p.inline {
		return
	}
	p.closeOnce.Do(func() {
		close(p.queue)
	})
	p.wg.Wait()
}
