// Package proxy implements the server proxies of §2.4 (Figure 2). Both the
// recursive proxy and the authoritative proxy perform the same address
// transformation on every captured packet:
//
//	src address ← original destination address (the OQDA rule)
//	dst address ← the configured peer (the server at the other end)
//
// with ports preserved positionally. Applied at the recursive side to all
// queries (destination port 53) this makes the query's original
// destination — the public nameserver address, the only zone identifier —
// arrive as the *source* the meta-DNS-server's split-horizon views match
// on. Applied at the authoritative side to all responses (source port 53)
// it restores a reply that appears to come from the address the recursive
// queried, so the recursive accepts it without knowing any manipulation
// happened.
//
// The paper reads packets from a TUN device with one reader thread and a
// pool of rewrite workers; here the TUN is a netsim egress filter and the
// pool is a channel-fed goroutine group.
package proxy

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"ldplayer/internal/netsim"
)

// Rewrite applies the OQDA transformation toward peer.
func Rewrite(d netsim.Datagram, peer netip.Addr) netsim.Datagram {
	return netsim.Datagram{
		Src:     netip.AddrPortFrom(d.Dst.Addr(), d.Src.Port()),
		Dst:     netip.AddrPortFrom(peer, d.Dst.Port()),
		Payload: d.Payload,
	}
}

// Direction selects which packets a proxy captures.
type Direction int

// Capture directions.
const (
	// CaptureQueries diverts packets with destination port 53 (the
	// recursive proxy's iptables rule).
	CaptureQueries Direction = iota
	// CaptureResponses diverts packets with source port 53 (the
	// authoritative proxy's rule).
	CaptureResponses
)

// Stats counts proxy activity.
type Stats struct {
	Captured  int64
	Forwarded int64
}

// Proxy captures matching egress packets on a node, rewrites them, and
// re-injects them toward the peer. Close drains the worker pool.
type Proxy struct {
	dir     Direction
	peer    netip.Addr
	network *netsim.Network

	queue chan netsim.Datagram
	wg    sync.WaitGroup

	captured  atomic.Int64
	forwarded atomic.Int64

	closeOnce sync.Once
}

// Options configures a Proxy.
type Options struct {
	// Workers is the rewrite worker-pool size; it mirrors the paper's
	// multi-threaded proxy. Default 4.
	Workers int
	// QueueDepth bounds the reader-to-worker queue. Default 1024.
	QueueDepth int
}

// Attach creates a proxy capturing dir packets leaving node, rewriting
// them toward peer, and re-injecting them into network.
func Attach(node *netsim.Node, network *netsim.Network, dir Direction, peer netip.Addr, opts Options) *Proxy {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	p := &Proxy{
		dir:     dir,
		peer:    peer,
		network: network,
		queue:   make(chan netsim.Datagram, opts.QueueDepth),
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	node.AddEgressFilter(p.capture)
	return p
}

// capture is the egress filter: the analogue of the mangle-table rule that
// marks packets for the TUN device.
func (p *Proxy) capture(d netsim.Datagram) bool {
	match := false
	switch p.dir {
	case CaptureQueries:
		match = d.Dst.Port() == 53
	case CaptureResponses:
		match = d.Src.Port() == 53
	}
	if !match {
		return false
	}
	p.captured.Add(1)
	// A full queue drops the packet, exactly as a saturated TUN would;
	// blocking here would stall the sender's packet path.
	select {
	case p.queue <- d:
	default:
	}
	return true
}

func (p *Proxy) worker() {
	defer p.wg.Done()
	for d := range p.queue {
		p.network.Inject(Rewrite(d, p.peer))
		p.forwarded.Add(1)
	}
}

// Stats returns capture and forward counters.
func (p *Proxy) Stats() Stats {
	return Stats{Captured: p.captured.Load(), Forwarded: p.forwarded.Load()}
}

// Close stops the workers after draining queued packets.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.queue)
	})
	p.wg.Wait()
}
