package proxy

import (
	"net/netip"
	"testing"
	"time"

	"ldplayer/internal/netsim"
)

var (
	recAddr  = netip.MustParseAddr("10.1.0.1")
	metaAddr = netip.MustParseAddr("10.2.0.1")
	oqda     = netip.MustParseAddr("192.5.6.30") // public .com nameserver
)

func TestRewriteOQDARule(t *testing.T) {
	// Query leaving the recursive: Rec:5353 -> .com:53.
	q := netsim.Datagram{
		Src:     netip.AddrPortFrom(recAddr, 5353),
		Dst:     netip.AddrPortFrom(oqda, 53),
		Payload: []byte("query"),
	}
	out := Rewrite(q, metaAddr)
	if out.Src != netip.AddrPortFrom(oqda, 5353) {
		t.Errorf("src = %v, want %v:5353 (OQDA keeps source port)", out.Src, oqda)
	}
	if out.Dst != netip.AddrPortFrom(metaAddr, 53) {
		t.Errorf("dst = %v, want meta:53", out.Dst)
	}

	// Reply leaving the meta server: Meta:53 -> OQDA:5353.
	r := netsim.Datagram{
		Src:     netip.AddrPortFrom(metaAddr, 53),
		Dst:     netip.AddrPortFrom(oqda, 5353),
		Payload: []byte("reply"),
	}
	back := Rewrite(r, recAddr)
	if back.Src != netip.AddrPortFrom(oqda, 53) {
		t.Errorf("reply src = %v, want %v:53", back.Src, oqda)
	}
	if back.Dst != netip.AddrPortFrom(recAddr, 5353) {
		t.Errorf("reply dst = %v, want rec:5353", back.Dst)
	}
}

// TestRoundTripThroughBothProxies wires the full Figure 2 path and checks
// the recursive observes a normal reply from the address it queried.
func TestRoundTripThroughBothProxies(t *testing.T) {
	n := netsim.New(0)
	defer n.Close()
	rec, err := n.AddNode("recursive", recAddr)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := n.AddNode("meta", metaAddr)
	if err != nil {
		t.Fatal(err)
	}

	recProxy := Attach(rec, n, CaptureQueries, metaAddr, Options{})
	defer recProxy.Close()
	authProxy := Attach(meta, n, CaptureResponses, recAddr, Options{})
	defer authProxy.Close()

	// Meta server: answers every query, echoing payload, from its port 53.
	meta.Handle(func(d netsim.Datagram) {
		if d.Src.Addr() != oqda {
			t.Errorf("meta saw query from %v, want OQDA %v", d.Src.Addr(), oqda)
		}
		meta.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(metaAddr, 53),
			Dst:     d.Src,
			Payload: append([]byte("re:"), d.Payload...),
		})
	})

	gotReply := make(chan netsim.Datagram, 1)
	rec.Handle(func(d netsim.Datagram) { gotReply <- d })

	// The recursive sends toward the *public* nameserver address.
	rec.Send(netsim.Datagram{
		Src:     netip.AddrPortFrom(recAddr, 40000),
		Dst:     netip.AddrPortFrom(oqda, 53),
		Payload: []byte("q1"),
	})

	select {
	case d := <-gotReply:
		if d.Src != netip.AddrPortFrom(oqda, 53) {
			t.Errorf("recursive saw reply from %v, want %v:53", d.Src, oqda)
		}
		if d.Dst != netip.AddrPortFrom(recAddr, 40000) {
			t.Errorf("reply dst = %v", d.Dst)
		}
		if string(d.Payload) != "re:q1" {
			t.Errorf("payload = %q", d.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply through proxy chain")
	}

	if s := recProxy.Stats(); s.Captured != 1 || s.Forwarded != 1 {
		t.Errorf("recursive proxy stats = %+v", s)
	}
	if s := authProxy.Stats(); s.Captured != 1 || s.Forwarded != 1 {
		t.Errorf("authoritative proxy stats = %+v", s)
	}
	if n.Dropped() != 0 {
		t.Errorf("dropped = %d", n.Dropped())
	}
}

// TestNonDNSTrafficPasses ensures the capture rule is port-based, exactly
// like the iptables mangle rule, and unrelated traffic is untouched.
func TestNonDNSTrafficPasses(t *testing.T) {
	n := netsim.New(0)
	defer n.Close()
	a, _ := n.AddNode("a", recAddr)
	b, _ := n.AddNode("b", metaAddr)
	p := Attach(a, n, CaptureQueries, metaAddr, Options{})
	defer p.Close()
	got := make(chan netsim.Datagram, 1)
	b.Handle(func(d netsim.Datagram) { got <- d })
	a.Send(netsim.Datagram{
		Src:     netip.AddrPortFrom(recAddr, 12345),
		Dst:     netip.AddrPortFrom(metaAddr, 8080),
		Payload: []byte("http"),
	})
	select {
	case d := <-got:
		if d.Src.Addr() != recAddr {
			t.Errorf("non-DNS packet was rewritten: %v", d)
		}
	case <-time.After(time.Second):
		t.Fatal("non-DNS packet lost")
	}
	if s := p.Stats(); s.Captured != 0 {
		t.Errorf("captured = %d, want 0", s.Captured)
	}
}

func TestProxyManyConcurrentQueries(t *testing.T) {
	n := netsim.New(0)
	defer n.Close()
	rec, _ := n.AddNode("recursive", recAddr)
	meta, _ := n.AddNode("meta", metaAddr)
	recProxy := Attach(rec, n, CaptureQueries, metaAddr, Options{Workers: 8})
	defer recProxy.Close()
	authProxy := Attach(meta, n, CaptureResponses, recAddr, Options{Workers: 8})
	defer authProxy.Close()

	meta.Handle(func(d netsim.Datagram) {
		meta.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(metaAddr, 53),
			Dst:     d.Src,
			Payload: d.Payload,
		})
	})
	const total = 500
	replies := make(chan netsim.Datagram, total)
	rec.Handle(func(d netsim.Datagram) { replies <- d })
	for i := 0; i < total; i++ {
		rec.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(recAddr, uint16(10000+i)),
			Dst:     netip.AddrPortFrom(oqda, 53),
			Payload: []byte{byte(i), byte(i >> 8)},
		})
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < total; i++ {
		select {
		case <-replies:
		case <-deadline:
			t.Fatalf("only %d/%d replies", i, total)
		}
	}
}
