package proxy

import (
	"net/netip"
	"testing"
	"time"

	"ldplayer/internal/netsim"
)

// Tests for the proxy chain running over an impaired network: the proxy
// still forwards everything handed to it, and loss/duplication shows up
// in the network's impairment counters, not as proxy failures.

// impairedFig2 wires the Figure-2 proxy chain (recursive -> egress proxy
// -> impaired query link -> meta, echo reply back) and returns the
// network, nodes, proxies, and a reply channel.
func impairedFig2(t *testing.T, imp netsim.Impairment) (*netsim.Network, *netsim.Node, chan netsim.Datagram) {
	t.Helper()
	n := netsim.New(0)
	t.Cleanup(n.Close)
	rec, err := n.AddNode("recursive", recAddr)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := n.AddNode("meta", metaAddr)
	if err != nil {
		t.Fatal(err)
	}
	recProxy := Attach(rec, n, CaptureQueries, metaAddr, Options{})
	t.Cleanup(recProxy.Close)
	authProxy := Attach(meta, n, CaptureResponses, recAddr, Options{})
	t.Cleanup(authProxy.Close)

	// Queries arrive at the meta server over the (oqda, meta) link after
	// the OQDA rewrite; impair only that link so replies travel clean.
	if err := n.SetLinkImpairment(oqda, metaAddr, imp); err != nil {
		t.Fatal(err)
	}

	meta.Handle(func(d netsim.Datagram) {
		meta.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(metaAddr, 53),
			Dst:     d.Src,
			Payload: d.Payload,
		})
	})
	replies := make(chan netsim.Datagram, 1024)
	rec.Handle(func(d netsim.Datagram) { replies <- d })
	return n, rec, replies
}

func sendQueries(rec *netsim.Node, total int) {
	for i := 0; i < total; i++ {
		rec.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(recAddr, uint16(10000+i)),
			Dst:     netip.AddrPortFrom(oqda, 53),
			Payload: []byte{byte(i), byte(i >> 8)},
		})
	}
}

func drainReplies(replies chan netsim.Datagram, wait time.Duration) int {
	got := 0
	for {
		select {
		case <-replies:
			got++
		case <-time.After(wait):
			return got
		}
	}
}

// TestProxyLossAccounting: dropped datagrams behind the proxy are charged
// to the impairment stats while the proxy itself counts a clean forward
// for every captured query.
func TestProxyLossAccounting(t *testing.T) {
	n, rec, replies := impairedFig2(t, netsim.Impairment{Drop: 1, Seed: 7})
	const total = 20
	sendQueries(rec, total)
	if got := drainReplies(replies, 300*time.Millisecond); got != 0 {
		t.Errorf("replies = %d through a blackholed query link", got)
	}
	st := n.ImpairStats()
	if st.Offered != total || st.Dropped != total {
		t.Errorf("impair stats = %+v, want %d offered and dropped", st, total)
	}
	if n.Dropped() != 0 {
		t.Errorf("route drops = %d; impairment loss must not count as routing failure", n.Dropped())
	}
	if ls := n.LinkImpairStats(oqda, metaAddr); ls.Dropped != total {
		t.Errorf("per-link dropped = %d, want %d", ls.Dropped, total)
	}
}

// TestProxyDuplicationDelivery: dup=1 doubles every query behind the
// proxy; the echo meta server answers each copy, so the recursive sees
// twice the replies and the duplication is visible in the counters.
func TestProxyDuplicationDelivery(t *testing.T) {
	n, rec, replies := impairedFig2(t, netsim.Impairment{Duplicate: 1, Seed: 7})
	const total = 10
	sendQueries(rec, total)
	got := drainReplies(replies, 500*time.Millisecond)
	if got != 2*total {
		t.Errorf("replies = %d, want %d (every query duplicated)", got, 2*total)
	}
	st := n.ImpairStats()
	if st.Duplicated != total {
		t.Errorf("duplicated = %d, want %d", st.Duplicated, total)
	}
}
