package replay

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

// testServer runs a live authserver answering everything under
// example.com. via a wildcard, like the paper's synthetic-replay setup.
func testServer(t *testing.T, withTLS bool) (*authserver.Server, Config) {
	t.Helper()
	const zoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
example.com.	300	IN	A	192.0.2.80
*.example.com.	300	IN	A	192.0.2.81
`
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	e := authserver.NewEngine()
	if err := e.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	s := &authserver.Server{Engine: e, IdleTimeout: 30 * time.Second}
	cfg := Config{}
	tlsAddr := ""
	if withTLS {
		server, client, err := authserver.SelfSignedTLSConfig("127.0.0.1")
		if err != nil {
			t.Fatal(err)
		}
		s.TLSConfig = server
		cfg.TLSConfig = client
		tlsAddr = "127.0.0.1:0"
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0", tlsAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	cfg.UDPTarget = s.UDPAddr().String()
	cfg.TCPTarget = s.TCPAddr().String()
	if withTLS {
		cfg.TLSTarget = s.TLSAddr().String()
	}
	return s, cfg
}

// makeTrace builds n queries spaced gap apart, cycling over nSources
// client addresses, each with a unique query name.
func makeTrace(t *testing.T, n, nSources int, gap time.Duration, proto trace.Protocol) []trace.Entry {
	t.Helper()
	base := time.Now()
	out := make([]trace.Entry, n)
	for i := range out {
		name := fmt.Sprintf("q%d.example.com.", i)
		m := dnswire.NewQuery(uint16(i), name, dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, byte(i % nSources / 256), byte(i % nSources)}), 5353)
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * gap),
			Src:      src,
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: proto,
			Message:  wire,
		}
	}
	return out
}

func TestReplayUDPBasic(t *testing.T) {
	_, cfg := testServer(t, false)
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 50, 5, time.Millisecond, trace.UDP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 50 {
		t.Errorf("sent = %d", st.Sent)
	}
	if st.Responses != 50 {
		t.Errorf("responses = %d", st.Responses)
	}
	if st.Sources != 5 {
		t.Errorf("sources = %d", st.Sources)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

func TestReplayTimingAccuracy(t *testing.T) {
	_, cfg := testServer(t, false)
	var mu sync.Mutex
	var errs []time.Duration
	cfg.OnSend = func(e *trace.Entry, at time.Time, schedErr time.Duration) {
		mu.Lock()
		errs = append(errs, schedErr)
		mu.Unlock()
	}
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 40, 4, 20*time.Millisecond, trace.UDP)
	if _, err := en.Replay(context.Background(), trace.NewSliceReader(entries)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 40 {
		t.Fatalf("observed %d sends", len(errs))
	}
	// Scheduling error must be small and non-negative-ish: queries are
	// never sent early by more than scheduler slop, nor late by more than
	// a few ms on an idle machine.
	late := 0
	for _, e := range errs {
		if e < -5*time.Millisecond {
			t.Errorf("query sent %v early", -e)
		}
		if e > 15*time.Millisecond {
			late++
		}
	}
	if late > len(errs)/4 {
		t.Errorf("%d/%d sends more than 15ms late", late, len(errs))
	}
}

func TestReplayPreservesInterArrival(t *testing.T) {
	_, cfg := testServer(t, false)
	var mu sync.Mutex
	var times []time.Time
	cfg.OnSend = func(e *trace.Entry, at time.Time, _ time.Duration) {
		mu.Lock()
		times = append(times, at)
		mu.Unlock()
	}
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const gap = 25 * time.Millisecond
	entries := makeTrace(t, 20, 1, gap, trace.UDP)
	if _, err := en.Replay(context.Background(), trace.NewSliceReader(entries)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 20 {
		t.Fatalf("sends = %d", len(times))
	}
	// Single source => single querier => sends are ordered; check gaps.
	for i := 1; i < len(times); i++ {
		got := times[i].Sub(times[i-1])
		if got < gap/2 || got > gap*2 {
			t.Errorf("inter-arrival %d = %v, want ~%v", i, got, gap)
		}
	}
}

func TestReplayTCPConnectionReuse(t *testing.T) {
	srv, cfg := testServer(t, false)
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 20, 1, time.Millisecond, trace.TCP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 20 || st.Responses != 20 {
		t.Errorf("stats = %+v", st)
	}
	if got := srv.TotalTCPConns(); got != 1 {
		t.Errorf("server saw %d connections, want 1 (same-source reuse)", got)
	}
	if st.ConnsOpened != 1 {
		t.Errorf("client opened %d conns", st.ConnsOpened)
	}
}

func TestReplayTCPDistinctSourcesDistinctConns(t *testing.T) {
	srv, cfg := testServer(t, false)
	cfg.Distributors = 2
	cfg.QueriersPerDistributor = 3
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 40, 8, time.Millisecond, trace.TCP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Responses != 40 {
		t.Errorf("responses = %d", st.Responses)
	}
	if got := srv.TotalTCPConns(); got != 8 {
		t.Errorf("server saw %d connections, want 8 (one per source)", got)
	}
}

func TestReplayTLS(t *testing.T) {
	srv, cfg := testServer(t, true)
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 10, 2, time.Millisecond, trace.TLS)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 10 || st.Responses != 10 {
		t.Errorf("stats = %+v", st)
	}
	if got := srv.TotalTCPConns(); got != 2 {
		t.Errorf("TLS connections = %d, want 2", got)
	}
}

func TestReplayClientIdleTimeoutReopens(t *testing.T) {
	srv, cfg := testServer(t, false)
	cfg.IdleTimeout = 60 * time.Millisecond
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two queries from the same source, separated by more than the client
	// idle timeout: the second must open a fresh connection.
	base := time.Now()
	mk := func(i int, at time.Time) trace.Entry {
		m := dnswire.NewQuery(uint16(i), fmt.Sprintf("idle%d.example.com.", i), dnswire.TypeA)
		wire, _ := m.Pack(nil)
		return trace.Entry{
			Time: at, Src: netip.MustParseAddrPort("10.0.0.1:5353"),
			Dst: netip.MustParseAddrPort("198.41.0.4:53"), Protocol: trace.TCP, Message: wire,
		}
	}
	entries := []trace.Entry{mk(0, base), mk(1, base.Add(300*time.Millisecond))}
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 2 {
		t.Fatalf("sent = %d (errors %d)", st.Sent, st.Errors)
	}
	if st.ConnsOpened != 2 {
		t.Errorf("conns opened = %d, want 2 (idle close forced reopen)", st.ConnsOpened)
	}
	_ = srv
}

func TestReplayFastMode(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.FastMode = true
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Timestamps spread over 100 virtual seconds; fast mode must ignore
	// them completely.
	entries := makeTrace(t, 200, 10, 500*time.Millisecond, trace.UDP)
	start := time.Now()
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 200 {
		t.Errorf("sent = %d", st.Sent)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("fast mode took %v", elapsed)
	}
}

func TestReplayNoTargetForProtocolCountsErrors(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.TCPTarget = "" // UDP-only engine
	var errCount int64
	var mu sync.Mutex
	cfg.OnError = func(e *trace.Entry, err error) {
		mu.Lock()
		errCount++
		mu.Unlock()
	}
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 5, 1, time.Millisecond, trace.TCP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 5 || st.Sent != 0 {
		t.Errorf("stats = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if errCount != 5 {
		t.Errorf("OnError called %d times", errCount)
	}
}

func TestReplayContextCancel(t *testing.T) {
	_, cfg := testServer(t, false)
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A long trace; cancel early.
	entries := makeTrace(t, 1000, 10, 50*time.Millisecond, trace.UDP)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	st, err := en.Replay(ctx, trace.NewSliceReader(entries))
	if err == nil {
		t.Error("expected context error")
	}
	if st.Sent >= 1000 {
		t.Errorf("sent = %d, should have been cut short", st.Sent)
	}
}

// TestRemoteDistribution exercises the TCP controller link: a controller
// feeding two client instances over loopback TCP, Figure 5 style.
func TestRemoteDistribution(t *testing.T) {
	srv, cfg := testServer(t, false)
	_ = srv

	type result struct {
		st  *Stats
		err error
	}
	results := make(chan result, 2)
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		clientCfg := cfg
		clientCfg.Distributors = 1
		clientCfg.QueriersPerDistributor = 2
		en, err := New(clientCfg)
		if err != nil {
			t.Fatal(err)
		}
		go func(ln net.Listener, en *Engine) {
			st, err := ServeClient(ln, en)
			results <- result{st, err}
		}(ln, en)
	}

	rc, err := DialClients(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 60, 6, time.Millisecond, trace.UDP)
	if err := rc.Run(trace.NewSliceReader(entries)); err != nil {
		t.Fatal(err)
	}

	var totalSent, totalResp int64
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatal(r.err)
			}
			totalSent += r.st.Sent
			totalResp += r.st.Responses
			if r.st.Sent == 0 {
				t.Error("a client instance sent nothing; sticky distribution starved it")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("client instance did not finish")
		}
	}
	if totalSent != 60 || totalResp != 60 {
		t.Errorf("total sent=%d responses=%d", totalSent, totalResp)
	}
}

// TestSameSourceAffinity verifies all queries from one source traverse one
// socket even with many distributors and queriers.
func TestSameSourceAffinity(t *testing.T) {
	srv, cfg := testServer(t, false)
	cfg.Distributors = 4
	cfg.QueriersPerDistributor = 4
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 64, 1, 0, trace.TCP) // one source
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 64 {
		t.Fatalf("sent = %d", st.Sent)
	}
	if got := srv.TotalTCPConns(); got != 1 {
		t.Errorf("connections = %d, want 1", got)
	}
}
