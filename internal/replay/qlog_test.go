package replay

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
)

// TestReplayClientQlog attaches a qlog pipeline to a live replay run and
// checks the client-side capture: one FlagClientSend event per
// transmitted query, with the emulated source and the question intact.
func TestReplayClientQlog(t *testing.T) {
	const n = 50
	_, cfg := testServer(t, false)
	path := filepath.Join(t.TempDir(), "client.qlog")
	fs, err := qlog.NewFileSink(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pipe := qlog.New(qlog.Config{Sinks: []qlog.Sink{fs}})
	pipe.Start()
	cfg.Qlog = pipe
	cfg.FastMode = true

	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, n, 5, time.Millisecond, trace.UDP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Sent != n {
		t.Fatalf("sent = %d, want %d", st.Sent, n)
	}
	ps := pipe.Stats()
	if ps.Published != st.Sent || ps.RingDrops != 0 {
		t.Fatalf("published=%d ringDrops=%d, want %d/0", ps.Published, ps.RingDrops, st.Sent)
	}

	wantPeer := make(map[uint16]netip.Addr, n)
	for _, e := range entries {
		id := uint16(e.Message[0])<<8 | uint16(e.Message[1])
		wantPeer[id] = e.Src.Addr()
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := qlog.NewReader(f)
	var ev qlog.Event
	seen := make(map[uint16]bool, n)
	for {
		err := r.Next(&ev)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Flags&qlog.FlagClientSend == 0 {
			t.Fatalf("event %d missing FlagClientSend", ev.ID)
		}
		if seen[ev.ID] {
			t.Fatalf("event %d captured twice", ev.ID)
		}
		seen[ev.ID] = true
		if want, ok := wantPeer[ev.ID]; !ok || ev.Peer != want {
			t.Fatalf("event %d: peer %v, want %v", ev.ID, ev.Peer, want)
		}
		if ev.Transport != uint8(trace.UDP) {
			t.Fatalf("event %d: transport %d", ev.ID, ev.Transport)
		}
		if ev.QNameLen == 0 {
			t.Fatalf("event %d: no qname", ev.ID)
		}
	}
	if len(seen) != n {
		t.Fatalf("capture holds %d distinct events, want %d", len(seen), n)
	}
}

// TestReplayConsumesQlogCapture closes the feedback loop: a server-side
// qlog capture is a replayable trace, no conversion step needed.
func TestReplayConsumesQlogCapture(t *testing.T) {
	const n = 40
	capture := makeQlogCapture(t, n)
	_, cfg := testServer(t, false)
	cfg.FastMode = true
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := en.Replay(context.Background(), qlog.NewEntryReader(bytes.NewReader(capture)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != n {
		t.Errorf("sent = %d, want %d", st.Sent, n)
	}
	if st.Responses != n {
		t.Errorf("responses = %d, want %d (wildcard answers everything)", st.Responses, n)
	}
}

// makeQlogCapture encodes the queries of makeTrace as a qlog binary
// stream, the way a server-side FileSink would have recorded them.
func makeQlogCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := qlog.NewWriter(&buf)
	for _, e := range makeTrace(t, n, 5, time.Millisecond, trace.UDP) {
		var ev qlog.Event
		fillSendEvent(&ev, &e, e.Time)
		if ev.QNameLen == 0 {
			t.Fatal("capture entry lost its qname")
		}
		if err := w.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSendEventAllocs pins the telemetry added to the send path at zero
// allocations: Reserve, field stores, Commit — nothing else. This is the
// guard that keeps accountSend's 0-alloc contract intact with qlog on.
func TestSendEventAllocs(t *testing.T) {
	p := qlog.New(qlog.Config{RingSize: 1 << 14, Sinks: []qlog.Sink{qlog.NewDiscardSink()}})
	prod := p.Producer()
	entries := makeTrace(t, 1, 1, 0, trace.UDP)
	at := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		ev := prod.Reserve()
		if ev == nil {
			t.Fatal("ring full: sized to hold every run")
		}
		fillSendEvent(ev, &entries[0], at)
		prod.Commit()
	})
	if allocs != 0 {
		t.Errorf("send-path qlog emit allocs/op = %.2f, want 0", allocs)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
