package replay

import (
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldplayer/internal/trace"
	"ldplayer/internal/vclock"
)

// Tests for the timing wheel: release ordering (including same-tick FIFO
// and beyond-horizon overflow), retransmission firing order, lazy
// cancellation when an answer lands, and goroutine/timer hygiene after
// shutdown. All run under -race in the race suite.

// collectingWheel builds a small wheel whose deliveries append to a
// shared record of (querier, entry) in release order.
func collectingWheel(t *testing.T, tick time.Duration, slots int) (*wheel, func() []trace.Entry) {
	t.Helper()
	var mu sync.Mutex
	var got []trace.Entry
	var lag atomic.Int64
	w := newWheel(nil, tick, slots, 1, &lag, func(_ int32, b []trace.Entry) {
		mu.Lock()
		got = append(got, b...)
		mu.Unlock()
		putBatch(b)
	})
	t.Cleanup(w.stop)
	return w, func() []trace.Entry {
		mu.Lock()
		defer mu.Unlock()
		return append([]trace.Entry(nil), got...)
	}
}

// TestWheelReleaseOrder schedules entries across ticks — several sharing
// a tick, one beyond the wheel horizon — and expects release in due-time
// order with same-tick FIFO preserved.
func TestWheelReleaseOrder(t *testing.T) {
	const tick = time.Millisecond
	const slots = 64 // horizon: 64ms
	w, snapshot := collectingWheel(t, tick, slots)

	base := time.Now()
	mk := func(seq uint16) trace.Entry {
		return trace.Entry{Src: mkAddrPort(1, seq), Protocol: trace.UDP}
	}
	// Insertion order is deliberately not due order; entries 3,4,5 share
	// one tick and must come out in insertion order; entry 9 lands beyond
	// the horizon and exercises the overflow path.
	type sched struct {
		seq uint16
		due time.Duration
	}
	plan := []sched{
		{3, 20 * time.Millisecond},
		{4, 20 * time.Millisecond},
		{5, 20 * time.Millisecond},
		{1, 5 * time.Millisecond},
		{2, 12 * time.Millisecond},
		{9, 100 * time.Millisecond}, // > horizon: overflow list
		{6, 30 * time.Millisecond},
	}
	for _, p := range plan {
		w.scheduleEntry(base.Add(p.due), 0, mk(p.seq))
	}

	deadline := time.Now().Add(3 * time.Second)
	for w.pacedPending() > 0 && time.Now().Before(deadline) {
		time.Sleep(tick)
	}
	got := snapshot()
	want := []uint16{1, 2, 3, 4, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("released %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Src.Port() != want[i] {
			t.Fatalf("release order %v at %d, want %v", e.Src.Port(), i, want)
		}
	}
}

// mkAddrPort builds a distinct source address for test entries.
func mkAddrPort(host byte, port uint16) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 0, host}), port)
}

// recordingServer is a UDP listener that records arrival order of DNS
// message IDs and never answers.
func recordingServer(t *testing.T) (addr string, ids func() []uint16) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var mu sync.Mutex
	var seen []uint16
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n >= 2 {
				mu.Lock()
				seen = append(seen, uint16(buf[0])<<8|uint16(buf[1]))
				mu.Unlock()
			}
		}
	}()
	return conn.LocalAddr().String(), func() []uint16 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint16(nil), seen...)
	}
}

// wheelQuerier wires a standalone querier to its own wheel against addr.
func wheelQuerier(t *testing.T, cfg Config) (*querier, *wheel) {
	t.Helper()
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lag atomic.Int64
	w := newWheel(nil, time.Millisecond, 1024, 1, &lag, func(_ int32, b []trace.Entry) { putBatch(b) })
	q := newQuerier(en, "wheel-test")
	q.wheel = w
	t.Cleanup(func() {
		w.stop()
		q.closeSockets()
	})
	return q, w
}

// TestWheelRetransFiringOrder arms two retransmission deadlines out of
// insertion order and expects them to fire in deadline order.
func TestWheelRetransFiringOrder(t *testing.T) {
	addr, ids := recordingServer(t)
	// A long engine retry timeout parks trackUDP's own deadlines far in
	// the future; the test arms its own, shorter ones below.
	q, w := wheelQuerier(t, Config{UDPTarget: addr, UDPRetries: 1, UDPRetryTimeout: time.Hour})

	src := mkAddrPort(7, 5353)
	sock, err := q.getUDP(src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// IDs in different shards so each gets seq 1 from its first track.
	msgA := []byte{0x00, 0x01, 0x00, 0x00} // id 1
	msgB := []byte{0x00, 0x02, 0x00, 0x00} // id 2
	if _, err := sock.conn.Write(msgA); err != nil {
		t.Fatal(err)
	}
	q.trackUDP(sock, msgA)
	if _, err := sock.conn.Write(msgB); err != nil {
		t.Fatal(err)
	}
	q.trackUDP(sock, msgB)

	// Arm A after B despite A being sent first: firing must follow the
	// deadlines, not insertion or send order.
	w.scheduleRetrans(120*time.Millisecond, q, sock, 1, 1)
	w.scheduleRetrans(40*time.Millisecond, q, sock, 2, 1)

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if got := ids(); len(got) >= 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	got := ids()
	want := []uint16{1, 2, 2, 1} // sends in order, retransmits by deadline
	if len(got) != len(want) {
		t.Fatalf("server saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrival order %v, want %v", got, want)
		}
	}
}

// TestWheelRetransCancelledByAnswer marks a tracked query answered before
// its retransmission deadline; the armed wheel slot must fire as a stale
// no-op (no datagram, no giveup).
func TestWheelRetransCancelledByAnswer(t *testing.T) {
	addr, ids := recordingServer(t)
	q, w := wheelQuerier(t, Config{UDPTarget: addr, UDPRetries: 2, UDPRetryTimeout: time.Hour})

	src := mkAddrPort(8, 5353)
	sock, err := q.getUDP(src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{0x00, 0x03, 0x00, 0x00} // id 3
	if _, err := sock.conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	q.trackUDP(sock, msg)
	w.scheduleRetrans(30*time.Millisecond, q, sock, 3, 1)

	// The answer lands before the deadline: pending clears, seq survives,
	// and the armed slot goes stale.
	if !sock.markAnswered(3) {
		t.Fatal("markAnswered(3) = false, want fresh answer")
	}
	time.Sleep(150 * time.Millisecond)
	if got := ids(); len(got) != 1 {
		t.Fatalf("server saw %v; cancelled retransmission still fired", got)
	}
	if g := q.en.giveups.Load(); g != 0 {
		t.Fatalf("giveups = %d after cancelled retransmission", g)
	}
	if r := q.en.udpRetransmits.Load(); r != 0 {
		t.Fatalf("udpRetransmits = %d after cancelled retransmission", r)
	}
}

// TestNoGoroutineLeakAfterReplay runs a full replay with armed
// retransmissions against a blackhole and expects every engine goroutine
// — wheel, socket readers, distributors — to exit once Replay returns.
func TestNoGoroutineLeakAfterReplay(t *testing.T) {
	addr, _ := recordingServer(t)
	before := runtime.NumGoroutine()

	en, err := New(Config{
		UDPTarget:       addr,
		UDPRetries:      2,
		UDPRetryTimeout: 20 * time.Millisecond,
		DrainTimeout:    500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 32, 8, 0, trace.UDP)
	if _, err := en.Replay(t.Context(), trace.NewSliceReader(entries)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before replay, %d after; wheel or socket reader leaked",
		before, runtime.NumGoroutine())
}

// TestWheelUnderSimClock drives the wheel from a SimClock: entries are
// scheduled at virtual offsets and must be released only when Advance
// pushes virtual time across their due tick — including an entry beyond
// the wheel horizon. The wheel goroutine wakes asynchronously off the
// sim timer channel, so observations poll with a real deadline.
func TestWheelUnderSimClock(t *testing.T) {
	clk := vclock.NewSim(time.Time{})
	var mu sync.Mutex
	var got []uint16
	var lag atomic.Int64
	w := newWheel(clk, time.Millisecond, 64, 1, &lag, func(_ int32, b []trace.Entry) {
		mu.Lock()
		for _, e := range b {
			got = append(got, e.Src.Port())
		}
		mu.Unlock()
		putBatch(b)
	})
	t.Cleanup(w.stop)

	ports := func() []uint16 {
		mu.Lock()
		defer mu.Unlock()
		return append([]uint16(nil), got...)
	}
	waitLen := func(n int) []uint16 {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if p := ports(); len(p) >= n {
				return p
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("released %v, want %d entries", ports(), n)
		return nil
	}

	base := clk.Now()
	mk := func(seq uint16) trace.Entry {
		return trace.Entry{Src: mkAddrPort(2, seq), Protocol: trace.UDP}
	}
	w.scheduleEntry(base.Add(5*time.Millisecond), 0, mk(1))
	w.scheduleEntry(base.Add(20*time.Millisecond), 0, mk(2))
	w.scheduleEntry(base.Add(100*time.Millisecond), 0, mk(3)) // beyond 64ms horizon

	// Virtual time at 4ms: nothing is due. Give the wheel goroutine a
	// real-time window to misbehave before asserting.
	clk.Advance(4 * time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	if p := ports(); len(p) != 0 {
		t.Fatalf("released %v before virtual time reached any due tick", p)
	}

	// Crossing tick 5 releases exactly the first entry.
	clk.Advance(time.Millisecond)
	if p := waitLen(1); len(p) != 1 || p[0] != 1 {
		t.Fatalf("after 5ms virtual released %v, want [1]", p)
	}

	// A big jump releases the rest, still in due order.
	clk.Advance(101 * time.Millisecond)
	p := waitLen(3)
	want := []uint16{1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("released %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("release order %v, want %v", p, want)
		}
	}
	if w.pacedPending() != 0 {
		t.Fatalf("pacedPending = %d after all releases", w.pacedPending())
	}
}
