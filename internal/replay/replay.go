// Package replay implements LDplayer's distributed query engine (§2.6,
// Figure 4): a Controller whose Reader pre-loads a window of queries and
// whose Postman distributes them stickily by original source address to
// Distributors, which distribute — again stickily — to Queriers that own
// the sockets.
//
// Timing follows the paper exactly: on the first query the controller
// broadcasts a time-synchronization point (t̄₁, t₁); for query i the
// engine computes the relative trace time Δt̄ᵢ = t̄ᵢ − t̄₁ and schedules
// the send at t₁ + Δt̄ᵢ — or immediately when the input has fallen
// behind. The scheduler is a per-distributor timing wheel (wheel.go)
// rather than a timer per query: entries are binned into sub-millisecond
// ticks and released to queriers as per-tick bursts, so the cost of
// pacing is one wakeup per tick, not one per query.
//
// The datapath is batched end to end: the reader decodes entries in
// batches, batches flow through the postman and distributors in pooled
// slices, and queriers group each burst by socket and submit it with
// sendmmsg/recvmmsg where the platform has them (internal/netio).
//
// Sticky distribution guarantees all queries from one original source
// reach the same querier, which maps sources to sockets, so DNS-over-TCP
// connection reuse is emulated faithfully; new sources open new sockets
// and idle connections close after a configurable timeout.
//
// In the paper the controller and client instances are separate hosts
// linked by TCP. Here distributors and queriers are goroutine pools in
// one process by default (the coordination logic is identical), and the
// same controller can feed remote distributors over real TCP links — see
// link.go — which is how the multi-host topology of Figure 5 is exercised
// in tests.
package replay

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/obs"
	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
	"ldplayer/internal/vclock"
)

// defaultMaxBatch is the entry-batch capacity used throughout the
// datapath (reader decode, postman/distributor hand-off, wheel bursts).
// Sized so that even with entries fanned out over six queriers and a few
// dozen sockets each, the per-socket groups still fill wide sendmmsg/GSO
// calls (64 segments per super-datagram on linux).
const defaultMaxBatch = 4096

// Timing-wheel geometry: 250µs ticks bound the pacing quantization to a
// quarter millisecond, and 32768 slots give each distributor an ~8s
// scheduling horizon — enough for the full exponential-backoff
// retransmission ladder without touching the overflow list.
const (
	defaultWheelTick  = 250 * time.Microsecond
	defaultWheelSlots = 32768
)

// Config configures an Engine.
type Config struct {
	// Distributors is the number of distributor workers (client
	// instances). Default 1.
	Distributors int
	// QueriersPerDistributor is the querier pool per distributor. The
	// paper's prototype runs six. Default 6.
	QueriersPerDistributor int
	// Window is the reader pre-load depth in queries ("the reader
	// pre-loads a window of queries to avoid falling behind real time").
	// Default 4096.
	Window int

	// UDPTarget, TCPTarget, TLSTarget are the testbed server addresses
	// ("host:port"). An entry's protocol selects among them. Empty targets
	// reject entries of that protocol.
	UDPTarget string
	TCPTarget string
	TLSTarget string
	// TLSConfig authenticates the TLS target.
	TLSConfig *tls.Config

	// IdleTimeout closes reusable TCP/TLS connections idle this long.
	// Default 20s (the paper's reference timeout).
	IdleTimeout time.Duration

	// UDPRetries is the number of retransmissions an unanswered UDP query
	// gets after its first send, stub-resolver style: retransmit after
	// UDPRetryTimeout, doubling the wait each time, then give up. 0 (the
	// default) disables retransmission — fire and forget, as before.
	UDPRetries int
	// UDPRetryTimeout is the wait before the first retransmission.
	// Default 250ms when UDPRetries > 0.
	UDPRetryTimeout time.Duration
	// StreamAttempts is how many times a TCP/TLS send is attempted across
	// reconnects before the query errors out. Default 2 (one reconnect),
	// the original hard-coded behavior.
	StreamAttempts int

	// FastMode disables timing and sends queries as fast as possible
	// (§2.6 load-testing option; the Figure 9 throughput mode).
	FastMode bool

	// DrainTimeout bounds the wait for outstanding responses after the
	// last query is sent. Default 500ms.
	DrainTimeout time.Duration

	// Clock supplies all of the engine's time: pacing (the timing
	// wheel's tick source), retransmission deadlines, idle-connection
	// timeouts, and the drain wait. Nil means the real clock —
	// production replays are untouched. A *vclock.SimClock runs the
	// engine's timing in simulated time (the sockets stay real, so this
	// is scheduling compression, not the bit-exact netsim path).
	Clock vclock.Clock

	// Qlog, if set, streams one telemetry event per transmitted query
	// into this pipeline (client-side view of the same event stream the
	// server emits). Each querier gets its own SPSC producer.
	Qlog *qlog.Pipeline

	// OnSend, if set, observes every transmitted query with the actual
	// send time and the scheduling error versus the ideal trace time.
	OnSend func(e *trace.Entry, at time.Time, schedErr time.Duration)
	// OnResponse, if set, observes every response with its arrival time.
	OnResponse func(msg []byte, at time.Time)
	// OnError, if set, observes per-query errors (connect failures etc).
	OnError func(e *trace.Entry, err error)
}

// Stats summarizes one replay run.
type Stats struct {
	Sent        int64
	Responses   int64
	Errors      int64
	ConnsOpened int64
	Retries     int64
	IdleClosed  int64
	Unanswered  int64
	// UDPRetransmits counts UDP queries re-sent after a retry timeout.
	UDPRetransmits int64
	// Giveups counts UDP queries abandoned after the retransmission
	// budget was exhausted (a subset of Unanswered).
	Giveups int64
	// Duplicates counts responses discarded because their query was
	// already answered (e.g. a duplicated datagram on the path); they are
	// not in Responses, so duplication never double-counts.
	Duplicates int64
	Sources    int
	Duration   time.Duration
}

// Engine replays traces against live servers.
type Engine struct {
	cfg   Config
	clock vclock.Clock

	sent           atomic.Int64
	responses      atomic.Int64
	errorsCount    atomic.Int64
	connsOpened    atomic.Int64
	retries        atomic.Int64
	idleClosed     atomic.Int64
	unanswered     atomic.Int64
	udpRetransmits atomic.Int64
	giveups        atomic.Int64
	dupResponses   atomic.Int64

	// latency, when instrumented, records send→response round trips in
	// nanoseconds. The measurement is per-socket (last send timestamp), so
	// pipelined same-source queries fold into one sample — fine for the
	// live-rate view this feeds.
	latency atomic.Pointer[obs.Histogram]
	// schedErrHist, when instrumented, records per-query scheduling error
	// (actual send time minus ideal trace time) in nanoseconds.
	schedErrHist atomic.Pointer[obs.Histogram]
	// batchSizeHist, when instrumented, records messages per batched UDP
	// send.
	batchSizeHist atomic.Pointer[obs.Histogram]
	// wheelLag is the most recent timing-wheel scheduling debt in
	// nanoseconds (how far tick processing trails the wall clock).
	wheelLag atomic.Int64

	seed maphash.Seed
}

// Instrument registers the engine's counters with reg and enables the
// round-trip latency histogram. Metric reads happen at scrape time via
// function metrics, so the send/receive hot paths pay nothing beyond the
// atomic adds they already perform. Safe to call for each fresh Engine
// sharing one registry: re-registration re-points the scrape functions
// at the newest engine.
func (en *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ldplayer_sent_total", "", "queries transmitted", en.sent.Load)
	reg.CounterFunc("ldplayer_responses_total", "", "responses received", en.responses.Load)
	reg.CounterFunc("ldplayer_errors_total", "", "per-query send errors", en.errorsCount.Load)
	reg.CounterFunc("ldplayer_conns_opened_total", "", "sockets and stream connections opened", en.connsOpened.Load)
	reg.CounterFunc("ldplayer_retries_total", "", "stream sends retried on a fresh connection", en.retries.Load)
	reg.CounterFunc("ldplayer_idle_closed_total", "", "stream connections closed by the idle timeout", en.idleClosed.Load)
	reg.CounterFunc("ldplayer_unanswered_total", "", "queries still unanswered at the drain deadline", en.unanswered.Load)
	reg.CounterFunc("ldplayer_udp_retransmits_total", "", "UDP queries re-sent after a retry timeout", en.udpRetransmits.Load)
	reg.CounterFunc("ldplayer_giveups_total", "", "UDP queries abandoned after the retransmission budget", en.giveups.Load)
	reg.CounterFunc("ldplayer_dup_responses_total", "", "responses discarded as duplicates of an answered query", en.dupResponses.Load)
	reg.GaugeFunc("ldplayer_in_flight", "", "queries sent and not yet answered", func() int64 {
		if d := en.sent.Load() - en.responses.Load(); d > 0 {
			return d
		}
		return 0
	})
	reg.GaugeFunc("ldplayer_wheel_lag_ns", "", "timing-wheel scheduling debt (ns)", en.wheelLag.Load)
	en.latency.Store(reg.Histogram("ldplayer_rtt_ns", "", "send to response round trip (ns)"))
	en.schedErrHist.Store(reg.Histogram("ldplayer_sched_err_ns", "", "send scheduling error vs ideal trace time (ns)"))
	en.batchSizeHist.Store(reg.Histogram("ldplayer_send_batch_size", "", "messages per batched UDP send"))
}

// New validates cfg and creates an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Distributors <= 0 {
		cfg.Distributors = 1
	}
	if cfg.QueriersPerDistributor <= 0 {
		cfg.QueriersPerDistributor = 6
	}
	if cfg.Window <= 0 {
		cfg.Window = 4096
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 20 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 500 * time.Millisecond
	}
	if cfg.UDPRetries < 0 {
		cfg.UDPRetries = 0
	}
	if cfg.UDPRetries > 0 && cfg.UDPRetryTimeout <= 0 {
		cfg.UDPRetryTimeout = 250 * time.Millisecond
	}
	if cfg.StreamAttempts <= 0 {
		cfg.StreamAttempts = 2
	}
	if cfg.UDPTarget == "" && cfg.TCPTarget == "" && cfg.TLSTarget == "" {
		return nil, errors.New("replay: no targets configured")
	}
	if cfg.TLSTarget != "" && cfg.TLSConfig == nil {
		return nil, errors.New("replay: TLS target without TLSConfig")
	}
	return &Engine{cfg: cfg, clock: vclock.Or(cfg.Clock), seed: maphash.MakeSeed()}, nil
}

// syncPoint is the broadcast time synchronization: trace epoch and the
// real time it corresponds to.
type syncPoint struct {
	traceStart time.Time
	realStart  time.Time
}

// Replay streams r through the distribution tree until EOF or ctx
// cancellation and returns run statistics.
//
// With more than one distributor, a reader that can partition itself
// (trace.Partitioner, e.g. the LDTRC02 BlockReader) and supply the
// global trace epoch (TraceStart) is split into per-distributor shards,
// each with its own decode pipeline and reader goroutine — no central
// postman on the hot path. Otherwise the classic single reader + postman
// tree runs.
func (en *Engine) Replay(ctx context.Context, r trace.Reader) (*Stats, error) {
	en.resetCounters()
	start := en.clock.Now()

	if en.cfg.Distributors > 1 {
		if st, ok, err := en.replayShards(ctx, r, start); ok {
			return st, err
		}
	}

	// Reader: pre-loads a window of queries (its own process in the
	// paper's controller), decoding in batches.
	window := make(chan []trace.Entry, max(1, en.cfg.Window/defaultMaxBatch))
	readErr := make(chan error, 1)
	go func() {
		defer close(window)
		for {
			buf := getBatch()
			n, err := trace.ReadBatch(r, buf[:cap(buf)])
			if n > 0 {
				select {
				case window <- buf[:n]:
				case <-ctx.Done():
					putBatch(buf)
					return
				}
			} else {
				putBatch(buf)
			}
			if err != nil {
				if !errors.Is(err, io.EOF) {
					readErr <- err
				}
				return
			}
		}
	}()

	// Distributors and their querier pools.
	nd := en.cfg.Distributors
	sources := newSourceTracker()
	dists := make([]*distributor, nd)
	var wg sync.WaitGroup
	for i := range dists {
		dists[i] = newDistributor(en, i, sources)
		wg.Add(1)
		go func(d *distributor) {
			defer wg.Done()
			d.run(ctx)
		}(dists[i])
	}

	// Postman: sticky source→distributor assignment, re-batching entries
	// per destination.
	var sync0 *syncPoint
	assign := make(map[netip.Addr]int, 1024)
	scratch := make([][]trace.Entry, nd)
	var err error
	flush := func(i int) bool {
		sb := scratch[i]
		scratch[i] = nil
		select {
		case dists[i].in <- sb:
			return true
		case <-ctx.Done():
			putBatch(sb)
			err = ctx.Err()
			return false
		}
	}
loop:
	for {
		select {
		case b, ok := <-window:
			if !ok {
				break loop
			}
			if sync0 == nil && len(b) > 0 {
				ts := b[0].Time
				if p, ok := r.(traceStartProvider); ok {
					if t0, have := p.TraceStart(); have {
						ts = t0
					}
				}
				sync0 = &syncPoint{traceStart: ts, realStart: en.clock.Now()}
				for _, d := range dists {
					d.sync(sync0)
				}
			}
			if nd == 1 {
				// One distributor: no source routing to do, forward the
				// reader's batch wholesale instead of re-batching per entry.
				select {
				case dists[0].in <- b:
				case <-ctx.Done():
					putBatch(b)
					err = ctx.Err()
					break loop
				}
				continue
			}
			for k := range b {
				idx := 0
				if nd > 1 {
					src := b[k].Src.Addr()
					i, ok2 := assign[src]
					if !ok2 {
						i = int(maphash.Comparable(en.seed, src)) % nd
						if i < 0 {
							i = -i
						}
						assign[src] = i
					}
					idx = i
				}
				sb := scratch[idx]
				if sb == nil {
					sb = getBatch()
				}
				sb = append(sb, b[k])
				scratch[idx] = sb
				if len(sb) == cap(sb) {
					if !flush(idx) {
						putBatch(b)
						break loop
					}
				}
			}
			putBatch(b)
			for i := range scratch {
				if scratch[i] != nil {
					if !flush(i) {
						break loop
					}
				}
			}
		case e := <-readErr:
			err = e
			break loop
		case <-ctx.Done():
			err = ctx.Err()
			break loop
		}
	}
	for i := range scratch {
		if scratch[i] != nil {
			putBatch(scratch[i])
			scratch[i] = nil
		}
	}
	for _, d := range dists {
		close(d.in)
	}
	wg.Wait()
	if err == nil {
		// The reader goroutine exits silently on cancellation; surface it.
		err = ctx.Err()
	}
	return en.finish(start, sources, dists), err
}

// replayShards is Replay's scale-out path: the trace is partitioned into
// one shard per distributor, and each shard gets a private reader
// goroutine feeding its distributor directly — decode, distribution and
// send all run per shard with no cross-shard hand-off. It requires the
// reader to partition itself and to supply the global trace epoch up
// front (per-shard first entries differ, but the time-synchronization
// point t̄₁ must be shared or shards would drift apart). Returns
// ok=false when r cannot support this, and the caller falls back to the
// postman tree.
//
// Tradeoff versus the postman: source→distributor assignment follows the
// partition (block interleaving), not the sticky source hash, so one
// source whose queries span partition boundaries is emulated by sockets
// in more than one shard. Per-source ordering still holds within each
// shard, and TCP connection reuse still happens per shard; what changes
// is the exact socket count for such straddling sources.
func (en *Engine) replayShards(ctx context.Context, r trace.Reader, start time.Time) (*Stats, bool, error) {
	p, ok := r.(trace.Partitioner)
	if !ok {
		return nil, false, nil
	}
	tsp, ok := r.(traceStartProvider)
	if !ok {
		return nil, false, nil
	}
	t0, have := tsp.TraceStart()
	if !have {
		return nil, false, nil
	}
	parts, ok := p.Partition(en.cfg.Distributors)
	if !ok || len(parts) == 0 {
		return nil, false, nil
	}

	sources := newSourceTracker()
	dists := make([]*distributor, len(parts))
	sp := &syncPoint{traceStart: t0, realStart: en.clock.Now()}
	var wg sync.WaitGroup
	for i := range dists {
		dists[i] = newDistributor(en, i, sources)
		dists[i].sync(sp)
		wg.Add(1)
		go func(d *distributor) {
			defer wg.Done()
			d.run(ctx)
		}(dists[i])
	}

	readErr := make(chan error, len(parts))
	var rwg sync.WaitGroup
	for i := range parts {
		rwg.Add(1)
		go func(shard trace.Reader, d *distributor) {
			defer rwg.Done()
			defer close(d.in)
			if c, isCloser := shard.(io.Closer); isCloser {
				// Shard readers own their decode pipelines (the owner only
				// unmaps); shut them down even on a cancelled run.
				defer c.Close()
			}
			for {
				buf := getBatch()
				n, err := trace.ReadBatch(shard, buf[:cap(buf)])
				if n > 0 {
					select {
					case d.in <- buf[:n]:
					case <-ctx.Done():
						putBatch(buf)
						return
					}
				} else {
					putBatch(buf)
				}
				if err != nil {
					if !errors.Is(err, io.EOF) {
						readErr <- err
					}
					return
				}
			}
		}(parts[i], dists[i])
	}
	rwg.Wait()
	wg.Wait()
	var err error
	select {
	case err = <-readErr:
	default:
		err = ctx.Err()
	}
	return en.finish(start, sources, dists), true, err
}

// resetCounters zeroes the per-run counters so an Engine can replay more
// than once.
func (en *Engine) resetCounters() {
	en.sent.Store(0)
	en.responses.Store(0)
	en.errorsCount.Store(0)
	en.connsOpened.Store(0)
	en.retries.Store(0)
	en.idleClosed.Store(0)
	en.unanswered.Store(0)
	en.udpRetransmits.Store(0)
	en.giveups.Store(0)
	en.dupResponses.Store(0)
}

// finish is the shared run tail: wait out the response grace period,
// tear sockets down, settle the unanswered count, and assemble Stats.
func (en *Engine) finish(start time.Time, sources *sourceTracker, dists []*distributor) *Stats {
	// Give in-flight responses a grace period, then shut sockets down.
	// Only sleep while something is actually outstanding: an all-answered
	// (or all-given-up) run must exit immediately, and a blackholed run
	// must terminate at the deadline with correct unanswered accounting
	// rather than hang.
	if en.cfg.DrainTimeout > 0 && en.outstanding() > 0 {
		deadline := en.clock.Now().Add(en.cfg.DrainTimeout)
		for en.clock.Now().Before(deadline) && en.outstanding() > 0 {
			en.clock.Sleep(5 * time.Millisecond)
		}
	}
	for _, d := range dists {
		d.closeQueriers()
	}
	if missing := en.sent.Load() - en.responses.Load(); missing > 0 {
		en.unanswered.Store(missing)
	}
	return &Stats{
		Sent:           en.sent.Load(),
		Responses:      en.responses.Load(),
		Errors:         en.errorsCount.Load(),
		ConnsOpened:    en.connsOpened.Load(),
		Retries:        en.retries.Load(),
		IdleClosed:     en.idleClosed.Load(),
		Unanswered:     en.unanswered.Load(),
		UDPRetransmits: en.udpRetransmits.Load(),
		Giveups:        en.giveups.Load(),
		Duplicates:     en.dupResponses.Load(),
		Sources:        sources.count(),
		Duration:       en.clock.Now().Sub(start),
	}
}

// outstanding is the number of sent queries neither answered nor given
// up — what the drain grace period is actually waiting for.
func (en *Engine) outstanding() int64 {
	return en.sent.Load() - en.responses.Load() - en.giveups.Load()
}

// sourceTracker counts distinct original sources across the run.
type sourceTracker struct {
	mu   sync.Mutex
	seen map[netip.Addr]struct{}
}

func newSourceTracker() *sourceTracker {
	return &sourceTracker{seen: make(map[netip.Addr]struct{}, 1024)}
}

func (s *sourceTracker) note(a netip.Addr) {
	s.mu.Lock()
	s.seen[a] = struct{}{}
	s.mu.Unlock()
}

func (s *sourceTracker) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// distributor fans entries out to its querier pool, sticky by source. In
// paced mode it is the timing authority: each entry's due time goes on
// the distributor's wheel, which releases per-tick bursts to the
// queriers. In fast mode entries are re-batched per querier and handed
// straight over.
type distributor struct {
	en        *Engine
	idx       int
	in        chan []trace.Entry
	queriers  []*querier
	sources   *sourceTracker
	wheel     *wheel
	lookahead time.Duration
	sp        atomic.Pointer[syncPoint]
}

func newDistributor(en *Engine, idx int, sources *sourceTracker) *distributor {
	d := &distributor{
		en:      en,
		idx:     idx,
		in:      make(chan []trace.Entry, 8),
		sources: sources,
	}
	d.queriers = make([]*querier, en.cfg.QueriersPerDistributor)
	for i := range d.queriers {
		d.queriers[i] = newQuerier(en, fmt.Sprintf("d%d-q%d", idx, i))
	}
	// Paced bursts are sent inline on the wheel goroutine: paced mode is
	// rate-limited, not throughput-bound, and skipping the channel +
	// goroutine hop keeps the release-to-wire latency inside the pacing
	// budget. (Fast mode bypasses the wheel and uses the querier
	// goroutines via their channels.)
	d.wheel = newWheel(en.clock, defaultWheelTick, defaultWheelSlots, len(d.queriers), &en.wheelLag,
		func(qidx int32, b []trace.Entry) {
			d.queriers[qidx].sendBatch(b)
			putBatch(b)
		})
	// Bounded lookahead: never schedule further ahead than a second (or
	// half the wheel's horizon, if smaller), so the wheel's live-item
	// footprint is proportional to rate, not trace length, and freed
	// items recycle.
	d.lookahead = min(d.wheel.horizon()/2, time.Second)
	for _, q := range d.queriers {
		q.wheel = d.wheel
	}
	return d
}

func (d *distributor) sync(sp *syncPoint) {
	d.sp.Store(sp)
	for _, q := range d.queriers {
		q.setSync(sp)
	}
}

func (d *distributor) run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, q := range d.queriers {
		wg.Add(1)
		go func(q *querier) {
			defer wg.Done()
			q.run(ctx)
		}(q)
	}
	paced := !d.en.cfg.FastMode
	nq := int32(len(d.queriers))
	assign := make(map[netip.Addr]int32, 256)
	scratch := make([][]trace.Entry, nq)
	wait := d.en.clock.NewTimer(time.Hour)
	if !wait.Stop() {
		<-wait.C()
	}
	canceled := false
	for b := range d.in {
		if canceled || ctx.Err() != nil {
			canceled = true
			putBatch(b)
			continue
		}
		sp := d.sp.Load()
		for k := range b {
			e := b[k]
			src := e.Src.Addr()
			idx, ok := assign[src]
			if !ok {
				idx = int32(maphash.Comparable(d.en.seed, src)) % nq
				if idx < 0 {
					idx = -idx
				}
				assign[src] = idx
				d.sources.note(src)
			}
			if paced && sp != nil {
				due := sp.realStart.Add(e.Time.Sub(sp.traceStart))
				if w := due.Sub(d.en.clock.Now()) - d.lookahead; w > 0 {
					wait.Reset(w)
					select {
					case <-wait.C():
					case <-ctx.Done():
						if !wait.Stop() {
							<-wait.C()
						}
						canceled = true
					}
					if canceled {
						break
					}
				}
				d.wheel.scheduleEntry(due, idx, e)
			} else {
				sb := scratch[idx]
				if sb == nil {
					sb = getBatch()
				}
				sb = append(sb, e)
				if len(sb) == cap(sb) {
					d.queriers[idx].in <- sb
					sb = nil
				}
				scratch[idx] = sb
			}
		}
		putBatch(b)
		for i, sb := range scratch {
			if sb != nil {
				d.queriers[i].in <- sb
				scratch[i] = nil
			}
		}
	}
	// Drain the wheel: every scheduled entry must be delivered (or, on
	// cancellation, discarded) before querier channels close.
	for d.wheel.pacedPending() > 0 {
		if ctx.Err() != nil {
			d.wheel.discardPaced()
		}
		d.en.clock.Sleep(d.wheel.tick)
	}
	for _, q := range d.queriers {
		close(q.in)
	}
	wg.Wait()
}

// closeQueriers stops the timing wheel — after this no retransmission can
// fire — and then tears down every querier's sockets.
func (d *distributor) closeQueriers() {
	d.wheel.stop()
	for _, q := range d.queriers {
		q.closeSockets()
	}
}
