package replay

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/trace"
)

// Failure injection: the replay engine must degrade gracefully when the
// server misbehaves — drop responses, kill connections mid-stream, or
// vanish entirely — and the controller link must surface a broken client
// rather than hanging.

// lossyUDPServer answers queries but drops every third response.
func lossyUDPServer(t *testing.T) (addr string, served *atomic.Int64) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	served = &atomic.Int64{}
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, raddr, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			i := served.Add(1)
			if i%3 == 0 {
				continue // drop
			}
			resp := append([]byte(nil), buf[:n]...)
			resp[2] |= 0x80 // QR
			_, _ = conn.WriteToUDP(resp, raddr)
		}
	}()
	return conn.LocalAddr().String(), served
}

func TestReplaySurvivesDroppedResponses(t *testing.T) {
	addr, served := lossyUDPServer(t)
	en, err := New(Config{UDPTarget: addr, DrainTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 30, 3, time.Millisecond, trace.UDP)
	done := make(chan struct{})
	var st *Stats
	go func() {
		defer close(done)
		st, err = en.Replay(context.Background(), trace.NewSliceReader(entries))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("replay hung on dropped responses")
	}
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 30 {
		t.Errorf("sent = %d", st.Sent)
	}
	if st.Responses >= st.Sent || st.Responses == 0 {
		t.Errorf("responses = %d of %d, expected partial", st.Responses, st.Sent)
	}
	if served.Load() != 30 {
		t.Errorf("server saw %d queries", served.Load())
	}
}

// rstTCPServer accepts connections and resets them after one response.
func rstTCPServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				msg, err := authserver.ReadTCPMessage(c)
				if err != nil {
					return
				}
				msg[2] |= 0x80
				_ = authserver.WriteTCPMessage(c, msg)
				// Close immediately: the next query on this connection
				// hits a dead socket and must trigger a reconnect.
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestReplayReconnectsAfterServerClose(t *testing.T) {
	addr := rstTCPServer(t)
	en, err := New(Config{TCPTarget: addr, DrainTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One source, several queries spaced out so each lands after the
	// server has closed the previous connection.
	entries := makeTrace(t, 5, 1, 60*time.Millisecond, trace.TCP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 5 {
		t.Errorf("sent = %d (errors %d)", st.Sent, st.Errors)
	}
	if st.ConnsOpened < 2 {
		t.Errorf("conns opened = %d, expected reconnects", st.ConnsOpened)
	}
}

func TestReplayServerGoneCountsErrors(t *testing.T) {
	// Reserve a port, then close it: connections are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	en, err := New(Config{TCPTarget: addr, DrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 10, 2, 0, trace.TCP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 10 || st.Sent != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServeClientControllerCrash kills the controller link mid-stream; the
// client must finish with what it received instead of hanging.
func TestServeClientControllerCrash(t *testing.T) {
	srvAddr, _ := lossyUDPServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	en, err := New(Config{UDPTarget: srvAddr, DrainTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		st  *Stats
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		st, err := ServeClient(ln, en)
		resCh <- result{st, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Send the sync frame and two entries, then slam the connection shut.
	entries := makeTrace(t, 2, 1, time.Millisecond, trace.UDP)
	rc := &RemoteController{conns: []net.Conn{conn}}
	rc.writers = append(rc.writers, newTestWriter(conn))
	if err := rc.Run(trace.NewSliceReader(entries)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.st.Sent != 2 {
			t.Errorf("client sent %d", r.st.Sent)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung after controller closed the link")
	}
}

// TestLinkReaderRejectsGarbageFrame ensures a corrupted link fails fast.
func TestLinkReaderRejectsGarbageFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		c1.Write([]byte{'X', 1, 2, 3})
		c1.Close()
	}()
	lr := newTestLinkReader(c2)
	if _, err := lr.Next(); err == nil {
		t.Error("garbage frame accepted")
	}
}
