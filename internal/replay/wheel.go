package replay

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/trace"
	"ldplayer/internal/vclock"
)

// The timing wheel is the replay clock: one per distributor, one
// goroutine, one ticker. Trace entries are binned into coarse ticks and
// released as per-querier bursts when their tick expires, and UDP
// retransmission deadlines occupy slots on the same wheel — so 100k
// in-flight queries cost 100k list nodes, not 100k kernel timers, and a
// due burst costs one wakeup instead of one timer-channel receive per
// query.
//
// Ordering: entries arrive from the distributor in trace order with
// nondecreasing due times, inserts clamp to the wheel's current tick,
// slots are FIFO, and ticks are processed strictly in order — so
// same-source sends stay in trace order end to end.
//
// Cancellation is lazy: a retransmit slot is invalidated by bumping the
// pending entry's sequence number (answer, ID reuse, close) and the item
// no-ops when its tick fires. Nothing ever searches the wheel.

// wheelItem is one scheduled event: a paced trace entry (kindEntry) or a
// retransmission deadline (kindRetrans). Items are recycled on a
// freelist under the wheel lock.
type wheelItem struct {
	next    *wheelItem
	dueTick int64
	kind    uint8

	// kindEntry
	qidx  int32
	entry trace.Entry

	// kindRetrans
	q    *querier
	sock *udpSocket
	id   uint16
	seq  uint32
}

const (
	kindEntry = iota
	kindRetrans
)

// slotList is an intrusive FIFO of wheel items.
type slotList struct{ head, tail *wheelItem }

//ldlint:noalloc
func (l *slotList) push(it *wheelItem) {
	it.next = nil
	if l.tail == nil {
		l.head = it
	} else {
		l.tail.next = it
	}
	l.tail = it
}

// The release loop sleeps coarsely and spins the final stretch: OS/timer
// wakeups here are 1ms+ late, far worse than the pacing budget, so the
// wheel wakes spinBudget early on a timer and then yields in a
// time.Now() loop until the exact release instant. When the wheel is
// empty it parks on the kick channel (poked by inserts that beat the
// current sleep target), re-checking at idleRecheck as a backstop.
const (
	spinBudget  = 2 * time.Millisecond
	tightSpin   = 30 * time.Microsecond
	idleRecheck = 100 * time.Millisecond
)

type wheel struct {
	// clock is the wheel's tick source. Real by default; under a
	// SimClock the release loop sleeps on virtual timers and skips the
	// sub-millisecond spin (spinning would busy-wait forever — simulated
	// time only moves through events).
	clock vclock.Clock
	tick  time.Duration
	mask  int64
	start time.Time

	mu       sync.Mutex
	slots    []slotList
	overflow slotList
	// overflowMin is the earliest dueTick in overflow; when it comes
	// within the horizon the overflow list is folded back into the wheel.
	overflowMin int64
	cur         int64 // next tick to process
	free        *wheelItem
	// sleepTick is the tick the release loop is currently sleeping
	// toward; an insert due sooner pokes the kick channel.
	sleepTick int64

	// paced counts kindEntry items not yet delivered; the distributor
	// drains on it at end of trace.
	paced atomic.Int64
	// lag receives the wheel's scheduling debt in nanoseconds — the
	// engine's wheel-lag gauge.
	lag *atomic.Int64

	deliver func(qidx int32, batch []trace.Entry)
	scratch [][]trace.Entry // per-querier batch assembly, advance only

	kick     chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once
}

// newWheel sizes a wheel: tick granularity, a power-of-two slot count,
// and the querier fan-out it delivers to.
func newWheel(clk vclock.Clock, tick time.Duration, slots, queriers int, lag *atomic.Int64, deliver func(int32, []trace.Entry)) *wheel {
	if slots&(slots-1) != 0 {
		panic("replay: wheel slots must be a power of two")
	}
	clk = vclock.Or(clk)
	w := &wheel{
		clock:   clk,
		tick:    tick,
		mask:    int64(slots - 1),
		start:   clk.Now(),
		slots:   make([]slotList, slots),
		lag:     lag,
		deliver: deliver,
		scratch: make([][]trace.Entry, queriers),
		kick:    make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	w.sleepTick = 1 << 62
	go w.run()
	return w
}

// horizon is the wheel's forward scheduling capacity.
func (w *wheel) horizon() time.Duration {
	return w.tick * time.Duration(len(w.slots))
}

// tickOf maps a deadline to its tick number, rounding up so releases are
// never early.
//
//ldlint:noalloc
func (w *wheel) tickOf(due time.Time) int64 {
	d := due.Sub(w.start)
	if d <= 0 {
		return 0
	}
	return int64((d + w.tick - 1) / w.tick)
}

// itemChunk is how many wheelItems are allocated at once when the
// freelist runs dry: items are population-sized (one per in-flight
// deadline), so chunking turns tens of thousands of warmup allocations
// into a few slab allocations with better locality.
const itemChunk = 256

// newItem pops the freelist, refilling it a chunk at a time; callers
// hold w.mu.
//
//ldlint:noalloc
func (w *wheel) newItem() *wheelItem {
	if w.free == nil {
		chunk := make([]wheelItem, itemChunk) //ldlint:ignore noalloc amortized slab refill, one make per itemChunk items
		for i := range chunk {
			chunk[i].next = w.free
			w.free = &chunk[i]
		}
	}
	it := w.free
	w.free = it.next
	*it = wheelItem{}
	return it
}

// recycle pushes items back on the freelist, dropping entry references;
// callers hold w.mu.
//
//ldlint:noalloc
func (w *wheel) recycle(it *wheelItem) {
	*it = wheelItem{next: w.free}
	w.free = it
}

// insert files it at dueTick (clamped to the current tick) and wakes the
// release loop if this item is due before its current sleep target;
// callers hold w.mu.
//
//ldlint:noalloc
func (w *wheel) insert(it *wheelItem) {
	if it.dueTick < w.cur {
		it.dueTick = w.cur
	}
	if it.dueTick-w.cur > w.mask {
		if w.overflow.head == nil || it.dueTick < w.overflowMin {
			w.overflowMin = it.dueTick
		}
		w.overflow.push(it)
	} else {
		w.slots[it.dueTick&w.mask].push(it)
	}
	if it.dueTick < w.sleepTick {
		w.sleepTick = it.dueTick
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// scheduleEntry bins a paced trace entry for release to querier qidx at
// due.
//
//ldlint:noalloc
func (w *wheel) scheduleEntry(due time.Time, qidx int32, e trace.Entry) {
	w.paced.Add(1)
	w.mu.Lock()
	//ldlint:ignore escapecheck amortized wheelItem slab refill inlined from newItem: one 256-item chunk per 256 insertions, recycled through the freelist
	it := w.newItem()
	it.dueTick = w.tickOf(due)
	it.kind = kindEntry
	it.qidx = qidx
	it.entry = e
	w.insert(it)
	w.mu.Unlock()
}

// scheduleRetrans arms a retransmission deadline for (sock, id, seq).
//
//ldlint:noalloc
func (w *wheel) scheduleRetrans(delay time.Duration, q *querier, sock *udpSocket, id uint16, seq uint32) {
	w.mu.Lock()
	//ldlint:ignore escapecheck amortized wheelItem slab refill inlined from newItem: one 256-item chunk per 256 insertions, recycled through the freelist
	it := w.newItem()
	it.dueTick = w.tickOf(w.clock.Now().Add(delay))
	it.kind = kindRetrans
	it.q = q
	it.sock = sock
	it.id = id
	it.seq = seq
	w.insert(it)
	w.mu.Unlock()
}

// rescanOverflow re-files overflow items now within the horizon and
// recomputes the overflow watermark; callers hold w.mu.
func (w *wheel) rescanOverflow() {
	var rest slotList
	min := int64(1) << 62
	for it := w.overflow.head; it != nil; {
		next := it.next
		if it.dueTick-w.cur <= w.mask {
			it.next = nil
			w.insert(it)
		} else {
			if it.dueTick < min {
				min = it.dueTick
			}
			rest.push(it)
		}
		it = next
	}
	w.overflow = rest
	w.overflowMin = min
}

// nextDue finds the earliest scheduled tick and records it as the sleep
// target (under the lock, so a racing insert either is seen by this scan
// or sees the fresh target and kicks).
func (w *wheel) nextDue() (int64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	best := int64(-1)
	for off := int64(0); off <= w.mask; off++ {
		t := w.cur + off
		it := w.slots[t&w.mask].head
		if it == nil {
			continue
		}
		// A slot can also hold items for future rotations; take its min.
		min := it.dueTick
		for it = it.next; it != nil; it = it.next {
			if it.dueTick < min {
				min = it.dueTick
			}
		}
		if best < 0 || min < best {
			best = min
		}
		if min == t {
			// Due this rotation: later offsets and prior future-rotation
			// candidates are all strictly later.
			break
		}
	}
	for it := w.overflow.head; it != nil; it = it.next {
		if best < 0 || it.dueTick < best {
			best = it.dueTick
		}
	}
	if best < 0 {
		w.sleepTick = 1 << 62
		return 0, false
	}
	w.sleepTick = best
	return best, true
}

// run is the release loop: process due ticks, then sleep coarsely toward
// the next scheduled tick and spin the last spinBudget for a release
// precision far under the timer subsystem's wakeup latency.
func (w *wheel) run() {
	defer close(w.doneCh)
	realTime := vclock.IsReal(w.clock)
	timer := w.clock.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C()
	}
	sleep := func(d time.Duration) (kicked bool) {
		timer.Reset(d)
		select {
		case <-w.stopCh:
			if !timer.Stop() {
				<-timer.C()
			}
			return false
		case <-w.kick:
			if !timer.Stop() {
				<-timer.C()
			}
			return true
		case <-timer.C():
			return false
		}
	}
	for {
		select {
		case <-w.stopCh:
			return
		default:
		}
		w.advance(w.clock.Now())
		next, ok := w.nextDue()
		if !ok {
			sleep(idleRecheck)
			continue
		}
		target := w.start.Add(time.Duration(next) * w.tick)
		if !realTime {
			// Simulated time: sleep the exact remaining distance — the
			// SimClock jumps straight to the due instant, so there is no
			// wakeup latency to spin away (and a spin would never end:
			// virtual time doesn't flow while this goroutine runs).
			if dt := target.Sub(w.clock.Now()); dt > 0 {
				sleep(dt)
			}
			continue
		}
		if dt := time.Until(target); dt > spinBudget {
			if sleep(dt-spinBudget) || isStopped(w.stopCh) {
				continue // re-evaluate: earlier work arrived or stopping
			}
		}
		// Yield while far out; hold the CPU for the final tightSpin so a
		// scheduler round-trip can't push the release past the deadline.
		for {
			rem := time.Until(target)
			if rem <= 0 {
				break
			}
			select {
			case <-w.stopCh:
				return
			default:
			}
			if rem > tightSpin {
				runtime.Gosched()
			}
		}
	}
}

func isStopped(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// advance processes every tick up to now: due items are collected in
// tick order under the lock, then delivered (paced bursts) and fired
// (retransmissions) outside it.
//
//ldlint:noalloc
func (w *wheel) advance(now time.Time) {
	w.mu.Lock()
	target := int64(now.Sub(w.start) / w.tick)
	if target < w.cur {
		w.mu.Unlock()
		return
	}
	w.lag.Store(int64(now.Sub(w.start.Add(time.Duration(w.cur) * w.tick))))
	var due slotList
	for w.cur <= target {
		s := &w.slots[w.cur&w.mask]
		var keep slotList
		for it := s.head; it != nil; {
			next := it.next
			if it.dueTick <= w.cur {
				due.push(it)
			} else {
				keep.push(it)
			}
			it = next
		}
		*s = keep
		w.cur++
		if w.overflow.head != nil && w.overflowMin-w.cur <= w.mask {
			w.rescanOverflow()
		}
	}
	w.mu.Unlock()

	if due.head == nil {
		return
	}
	// Assemble per-querier bursts in release order, then hand them off.
	// Retransmissions fire inline — they re-send on this goroutine, which
	// is exactly the "slots on the wheel, work on one loop" design.
	released := 0
	for it := due.head; it != nil; it = it.next {
		switch it.kind {
		case kindEntry:
			if w.scratch[it.qidx] == nil {
				//ldlint:ignore escapecheck amortized freelist refill inlined from getBatch: a fresh batch only when all 64 recycled ones are in flight
				w.scratch[it.qidx] = getBatch()
			}
			w.scratch[it.qidx] = append(w.scratch[it.qidx], it.entry)
			released++
		case kindRetrans:
			it.q.retransmitUDP(it.sock, it.id, it.seq)
		}
	}
	for qidx, b := range w.scratch {
		if b != nil {
			w.scratch[qidx] = nil
			w.deliver(int32(qidx), b)
		}
	}
	if released > 0 {
		w.paced.Add(int64(-released))
	}
	w.mu.Lock()
	for it := due.head; it != nil; {
		next := it.next
		w.recycle(it)
		it = next
	}
	w.mu.Unlock()
}

// pacedPending reports undelivered paced entries (the distributor's drain
// condition).
func (w *wheel) pacedPending() int64 { return w.paced.Load() }

// discardPaced drops every undelivered paced entry (context
// cancellation); retransmission items stay armed.
func (w *wheel) discardPaced() {
	w.mu.Lock()
	dropped := 0
	filter := func(l slotList) slotList {
		var keep slotList
		for it := l.head; it != nil; {
			next := it.next
			if it.kind == kindEntry {
				w.recycle(it)
				dropped++
			} else {
				it.next = nil
				keep.push(it)
			}
			it = next
		}
		return keep
	}
	for i := range w.slots {
		w.slots[i] = filter(w.slots[i])
	}
	w.overflow = filter(w.overflow)
	w.mu.Unlock()
	if dropped > 0 {
		w.paced.Add(int64(-dropped))
	}
}

// stop terminates the wheel goroutine and drops all scheduled work.
func (w *wheel) stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	<-w.doneCh
}

// batchFree recycles the entry batches that flow from the wheel (and the
// fast-mode distributor) to the queriers. A buffered channel rather than
// a sync.Pool: channel send/receive of a slice does not box it into an
// interface, so recycling a batch is allocation-free — with a Pool every
// Put costs one heap allocation, i.e. one allocation per released burst.
// The capacity bounds the resident recycled memory (~0.5 MiB per batch
// at the 4096-entry capacity); overflow batches are simply dropped for
// the GC. Sized to cover the datapath's worst-case in-flight batch count
// (window + distributor + querier queues), so steady state recycles
// instead of re-zeroing half-megabyte allocations.
var batchFree = make(chan []trace.Entry, 64)

func getBatch() []trace.Entry {
	select {
	case b := <-batchFree:
		return b
	default:
		//ldlint:ignore noallocprop amortized freelist refill: a fresh batch only when all 64 recycled ones are in flight
		return make([]trace.Entry, 0, defaultMaxBatch)
	}
}

func putBatch(b []trace.Entry) {
	if cap(b) < defaultMaxBatch {
		return // undersized stray; let the GC take it
	}
	// Clearing only the used prefix drops the message references so slabs
	// can be collected. The tail beyond len is already zero: fresh batches
	// come from make, recycled ones were cleared here, and producers only
	// ever write the prefix they hand off.
	clear(b)
	select {
	case batchFree <- b[:0]:
	default:
	}
}
