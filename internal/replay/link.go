package replay

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/maphash"
	"io"
	"net"
	"net/netip"
	"time"

	"ldplayer/internal/trace"
)

// The controller-to-client-instance link (Figure 4/5): the controller's
// Postman streams framed internal messages over TCP to remote client
// instances, each running its own distributor + querier pool. The paper
// chooses TCP for reliable message exchange among distributors; so do we.
//
// Frames: 'S' <int64 trace-start unixnano> broadcasts the time
// synchronization point; 'E' <uint32 len> <record> carries one entry
// (record encoding shared with the binary trace format).

const (
	frameSync  = 'S'
	frameEntry = 'E'
)

// RemoteController distributes a trace stream to remote client instances
// with the same sticky source assignment the in-process postman uses.
type RemoteController struct {
	conns   []net.Conn
	writers []*bufio.Writer
	seed    maphash.Seed
}

// DialClients connects to client instances listening at addrs.
func DialClients(addrs ...string) (*RemoteController, error) {
	if len(addrs) == 0 {
		return nil, errors.New("replay: no client addresses")
	}
	rc := &RemoteController{seed: maphash.MakeSeed()}
	for _, a := range addrs {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			rc.Close()
			return nil, err
		}
		rc.conns = append(rc.conns, conn)
		rc.writers = append(rc.writers, bufio.NewWriterSize(conn, 256*1024))
	}
	return rc, nil
}

// Run streams r to the clients until EOF, then flushes and closes the
// links (which signals end-of-trace to the clients).
func (rc *RemoteController) Run(r trace.Reader) error {
	assign := make(map[netip.Addr]int, 1024)
	synced := false
	var scratch []byte
	for {
		e, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if !synced {
			var sf [9]byte
			sf[0] = frameSync
			binary.BigEndian.PutUint64(sf[1:], uint64(e.Time.UnixNano()))
			for _, w := range rc.writers {
				if _, err := w.Write(sf[:]); err != nil {
					return err
				}
			}
			synced = true
		}
		src := e.Src.Addr()
		idx, ok := assign[src]
		if !ok {
			idx = int(maphash.Comparable(rc.seed, src)) % len(rc.writers)
			if idx < 0 {
				idx = -idx
			}
			assign[src] = idx
		}
		scratch = trace.MarshalEntry(scratch[:0], e)
		w := rc.writers[idx]
		var hdr [5]byte
		hdr[0] = frameEntry
		binary.BigEndian.PutUint32(hdr[1:], uint32(len(scratch)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(scratch); err != nil {
			return err
		}
	}
	for _, w := range rc.writers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	rc.Close()
	return nil
}

// Close closes all client links.
func (rc *RemoteController) Close() {
	for _, c := range rc.conns {
		if c != nil {
			c.Close()
		}
	}
}

// linkReader adapts an incoming controller link to trace.Reader and
// captures the broadcast sync point.
type linkReader struct {
	r          *bufio.Reader
	traceStart time.Time
	haveSync   bool
}

// TraceStart implements the provider the engine consults so the remote
// querier's Δt̄ is computed against the global trace start, not the first
// entry that happened to reach this instance.
func (lr *linkReader) TraceStart() (time.Time, bool) {
	return lr.traceStart, lr.haveSync
}

func (lr *linkReader) Next() (trace.Entry, error) {
	for {
		t, err := lr.r.ReadByte()
		if err != nil {
			return trace.Entry{}, io.EOF // link closed = end of trace
		}
		switch t {
		case frameSync:
			var buf [8]byte
			if _, err := io.ReadFull(lr.r, buf[:]); err != nil {
				return trace.Entry{}, err
			}
			lr.traceStart = time.Unix(0, int64(binary.BigEndian.Uint64(buf[:])))
			lr.haveSync = true
		case frameEntry:
			var hdr [4]byte
			if _, err := io.ReadFull(lr.r, hdr[:]); err != nil {
				return trace.Entry{}, err
			}
			n := binary.BigEndian.Uint32(hdr[:])
			if n > maxLinkRecord {
				return trace.Entry{}, fmt.Errorf("replay: link record of %d bytes", n)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(lr.r, buf); err != nil {
				return trace.Entry{}, err
			}
			return trace.UnmarshalEntry(buf)
		default:
			return trace.Entry{}, fmt.Errorf("replay: unknown link frame %q", t)
		}
	}
}

const maxLinkRecord = 8 + 1 + 2*(16+2) + 1 + 1<<16

// traceStartProvider lets a reader supply the global trace start (the
// sync broadcast) instead of the first locally seen entry.
type traceStartProvider interface {
	TraceStart() (time.Time, bool)
}

// ServeClient accepts one controller connection on ln and replays its
// stream through en. It returns the run's statistics when the controller
// closes the link.
func ServeClient(ln net.Listener, en *Engine) (*Stats, error) {
	conn, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	lr := &linkReader{r: bufio.NewReaderSize(conn, 256*1024)}
	return en.Replay(context.Background(), lr)
}

// newTestWriter and newTestLinkReader give tests access to the framing
// internals without exporting them.
func newTestWriter(conn net.Conn) *bufio.Writer { return bufio.NewWriter(conn) }

func newTestLinkReader(conn net.Conn) *linkReader {
	return &linkReader{r: bufio.NewReader(conn)}
}
