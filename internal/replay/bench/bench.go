// Package bench is the replay-datapath benchmark harness: a loopback
// self-test that drives the real Engine against an in-process UDP sink
// and reports achieved throughput, scheduling-error quantiles, and
// allocations per query. `ldplayer bench` runs it and appends the results
// to BENCH_replay.json, so the performance trajectory of the replay
// client — the paper's ~87k queries/s headline (§3) — is recorded next to
// the code that produces it.
package bench

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/netio"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
)

// Config is one benchmark run's shape.
type Config struct {
	// Name labels the run in the report (e.g. "fast-mode", "paced-25k").
	Name string
	// Queries is the synthetic trace length.
	Queries int
	// Sources is the number of distinct original source addresses the
	// trace cycles through (each becomes one replay socket).
	Sources int
	// Rate is the paced-mode target in queries/second; ignored when
	// FastMode is set.
	Rate float64
	// FastMode sends as fast as possible, ignoring trace timing.
	FastMode bool
	// Distributors and Queriers shape the engine pool (engine defaults
	// when zero).
	Distributors int
	Queriers     int
	// BlockTrace encodes the synthetic trace into an LDTRC02 block file
	// (raw blocks) and replays it through the mmap BlockReader — the
	// production ingestion path — instead of an in-memory slice.
	BlockTrace bool
	// SinkReaders is the echo-server goroutine count (default 2: GRO
	// hands each reader up to 64 messages per receive, and extra readers
	// just add scheduler churn on small machines).
	SinkReaders int
	// DrainTimeout bounds the post-send wait for responses (default
	// 250ms).
	DrainTimeout time.Duration
}

// Result is one benchmark run's measurements.
type Result struct {
	Name     string  `json:"name"`
	Queries  int     `json:"queries"`
	Sources  int     `json:"sources"`
	FastMode bool    `json:"fast_mode"`
	Block    bool    `json:"block_trace,omitempty"`
	Rate     float64 `json:"target_qps,omitempty"`

	AchievedQPS    float64 `json:"achieved_qps"`
	P50SchedErrUS  float64 `json:"p50_sched_err_us"`
	P99SchedErrUS  float64 `json:"p99_sched_err_us"`
	MaxSchedErrUS  float64 `json:"max_sched_err_us"`
	AllocsPerQuery float64 `json:"allocs_per_query"`

	Sent       int64   `json:"sent"`
	Responses  int64   `json:"responses"`
	Errors     int64   `json:"errors"`
	DurationMS float64 `json:"duration_ms"`

	// Trace-ingestion runs (TraceSuite) only: encoded trace size and the
	// size ratio versus the LDTRC01 record stream.
	TraceBytes   int64   `json:"trace_bytes,omitempty"`
	CompressionX float64 `json:"compression_vs_ldtrc01,omitempty"`
}

// sink is an in-process UDP echo server: it flips the QR bit in place and
// writes the batch back via recvmmsg/sendmmsg, allocation-free, with
// several reader goroutines so the sink never becomes the measured
// bottleneck (on one CPU a per-datagram sink would cost two syscalls per
// query and dominate the run).
type sink struct {
	conn *net.UDPConn
}

func newSink(readers int) (*sink, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	s := &sink{conn: conn}
	for i := 0; i < readers; i++ {
		// Receive buffers are GRO-sized: one coalesced super-datagram can
		// carry up to 64 segments, and echoing it back whole (same
		// segment size) costs one skb instead of 64.
		b, err := netio.NewUDPBatch(conn, 64, 8, 64<<10, true)
		if err != nil {
			conn.Close()
			return nil, err
		}
		go s.echo(b)
	}
	return s, nil
}

func (s *sink) echo(b *netio.UDPBatch) {
	for {
		n, err := b.Recv()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			m := b.Msg(i)
			seg := b.SegSize(i)
			if seg <= 0 || seg >= len(m) {
				if len(m) >= 3 {
					m[2] |= 0x80 // QR: make it a response
				}
				continue
			}
			// Coalesced buffer: flip the QR bit of every segment.
			for off := 0; off+2 < len(m); off += seg {
				m[off+2] |= 0x80
			}
		}
		_, _ = b.Echo(n)
	}
}

func (s *sink) addr() string { return s.conn.LocalAddr().String() }
func (s *sink) close()       { s.conn.Close() }

// makeTrace synthesizes cfg.Queries pre-packed queries cycling over
// cfg.Sources sources, spaced for cfg.Rate (0 gap in fast mode — the
// engine ignores timing there anyway).
func makeTrace(cfg Config) []trace.Entry {
	gap := time.Duration(0)
	if !cfg.FastMode && cfg.Rate > 0 {
		gap = time.Duration(float64(time.Second) / cfg.Rate)
	}
	base := time.Now()
	dst := netip.MustParseAddrPort("198.41.0.4:53")
	entries := make([]trace.Entry, cfg.Queries)
	for i := range entries {
		m := dnswire.NewQuery(uint16(i), fmt.Sprintf("q%d.bench.example.", i), dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			panic(err)
		}
		s := i % cfg.Sources
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 1, byte(s >> 8), byte(s)}), 5353)
		entries[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * gap),
			Src:      src,
			Dst:      dst,
			Protocol: trace.UDP,
			Message:  wire,
		}
	}
	return entries
}

// writeBlockFile encodes entries as a raw-block LDTRC02 temp file and
// returns its path.
func writeBlockFile(entries []trace.Entry) (string, error) {
	f, err := os.CreateTemp("", "ldplayer-bench-*.blk")
	if err != nil {
		return "", err
	}
	w := trace.NewBlockWriter(f)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			f.Close()
			os.Remove(f.Name())
			return "", err
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}

// Run executes one benchmark run.
func Run(cfg Config) (Result, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 50000
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 64
	}
	if cfg.SinkReaders <= 0 {
		cfg.SinkReaders = 2
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 250 * time.Millisecond
	}

	s, err := newSink(cfg.SinkReaders)
	if err != nil {
		return Result{}, err
	}
	defer s.close()

	// Scheduling errors land in a preallocated slice via an atomic cursor:
	// the observer itself must not distort the allocation measurement.
	schedErrs := make([]time.Duration, cfg.Queries)
	var cursor, lastSend atomic.Int64

	ecfg := replay.Config{
		Distributors:           cfg.Distributors,
		QueriersPerDistributor: cfg.Queriers,
		UDPTarget:              s.addr(),
		FastMode:               cfg.FastMode,
		DrainTimeout:           cfg.DrainTimeout,
		OnSend: func(_ *trace.Entry, at time.Time, schedErr time.Duration) {
			if i := cursor.Add(1) - 1; int(i) < len(schedErrs) {
				schedErrs[i] = schedErr
			}
			lastSend.Store(at.UnixNano())
		},
	}
	en, err := replay.New(ecfg)
	if err != nil {
		return Result{}, err
	}

	entries := makeTrace(cfg)
	var reader trace.Reader
	if cfg.BlockTrace {
		blk, err := writeBlockFile(entries)
		if err != nil {
			return Result{}, err
		}
		defer os.Remove(blk)
		br, err := trace.OpenBlockFile(blk)
		if err != nil {
			return Result{}, err
		}
		defer br.Close()
		entries = nil // measure the file-backed path, not the slice
		reader = br
	} else {
		reader = trace.NewSliceReader(entries)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	st, err := en.Replay(context.Background(), reader)
	if err != nil {
		return Result{}, err
	}
	// Throughput is measured over the send phase only (first to last
	// transmission), excluding whatever part of the drain window was spent
	// waiting for stragglers.
	sendDur := time.Since(start)
	if ls := lastSend.Load(); ls != 0 {
		if d := time.Unix(0, ls).Sub(start); d > 0 {
			sendDur = d
		}
	}
	runtime.ReadMemStats(&after)

	n := int(cursor.Load())
	if n > len(schedErrs) {
		n = len(schedErrs)
	}
	obs := schedErrs[:n]
	sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
	quantUS := func(q float64) float64 {
		if len(obs) == 0 {
			return 0
		}
		idx := int(q * float64(len(obs)-1))
		return float64(obs[idx]) / float64(time.Microsecond)
	}

	res := Result{
		Name:       cfg.Name,
		Queries:    cfg.Queries,
		Sources:    cfg.Sources,
		FastMode:   cfg.FastMode,
		Block:      cfg.BlockTrace,
		Rate:       cfg.Rate,
		Sent:       st.Sent,
		Responses:  st.Responses,
		Errors:     st.Errors,
		DurationMS: float64(st.Duration) / float64(time.Millisecond),
	}
	if st.Sent > 0 {
		res.AchievedQPS = float64(st.Sent) / sendDur.Seconds()
		res.AllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(st.Sent)
	}
	if !cfg.FastMode {
		res.P50SchedErrUS = quantUS(0.50)
		res.P99SchedErrUS = quantUS(0.99)
		res.MaxSchedErrUS = quantUS(1.0)
	}
	return res, nil
}

// Suite is the standard trajectory suite: a fast-mode throughput run and
// a paced run at rate qps. scale < 1 shrinks the trace for smoke runs.
func Suite(scale float64) ([]Result, error) {
	if scale <= 0 {
		scale = 1
	}
	fastN := int(300000 * scale)
	pacedRate := 25000.0
	pacedN := int(50000 * scale)
	runs := []Config{
		{Name: "fast-mode", Queries: fastN, Sources: 64, FastMode: true},
		{Name: "fast-blk", Queries: fastN, Sources: 64, FastMode: true, BlockTrace: true},
		{Name: "fast-blk-shards", Queries: fastN, Sources: 64, FastMode: true, BlockTrace: true, Distributors: 2, Queriers: 3},
		{Name: "paced-25k", Queries: pacedN, Sources: 64, Rate: pacedRate},
	}
	out := make([]Result, 0, len(runs))
	for _, c := range runs {
		r, err := Run(c)
		if err != nil {
			return out, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
