package bench

import "testing"

// TestPacedSchedErrRegression replays a paced trace at 20k q/s through
// the full engine-to-sink loopback datapath and bounds the p99 scheduling
// error. The bound is deliberately loose — shared CI machines jitter by
// milliseconds — but a regression to per-query timers or unbatched I/O
// blows past it by an order of magnitude.
func TestPacedSchedErrRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive loopback benchmark")
	}
	res, err := Run(Config{
		Name:    "regression-paced-20k",
		Queries: 30000,
		Sources: 64,
		Rate:    20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != int64(res.Queries) {
		t.Fatalf("sent %d of %d queries", res.Sent, res.Queries)
	}
	if res.AchievedQPS < 19000 {
		t.Errorf("achieved %.0f q/s, want >= 19000 (pacing fell behind)", res.AchievedQPS)
	}
	const p99BoundUS = 50000 // 50ms: loose, catches order-of-magnitude regressions
	if res.P99SchedErrUS > p99BoundUS {
		t.Errorf("p99 sched err = %.0fµs, want <= %dµs", res.P99SchedErrUS, p99BoundUS)
	}
	if res.P50SchedErrUS > 5000 {
		t.Errorf("p50 sched err = %.0fµs, want <= 5000µs", res.P50SchedErrUS)
	}
}
