package bench

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ldplayer/internal/trace"
	"ldplayer/internal/traceg"
)

// Trace-ingestion benchmarks: decode throughput of the LDTRC01 record
// stream versus the LDTRC02 block format (single-worker and parallel),
// and the block format's compression ratio, all on a traceg-generated
// Rec-17-like recursive trace so the numbers reflect realistic qname
// and client diversity rather than a synthetic best case. Results reuse
// the replay Result shape (AchievedQPS = decoded entries/second) and
// land in the same BENCH_replay.json trajectory.

// recursiveTrace generates about n entries of the Rec-17-like workload.
func recursiveTrace(n int) ([]trace.Entry, error) {
	gen, err := traceg.Recursive(traceg.RecursiveConfig{
		Duration: time.Duration(n+1) * 181 * time.Millisecond, // mean inter-arrival ≈ 180.8ms
		Seed:     7,
	})
	if err != nil {
		return nil, err
	}
	entries := make([]trace.Entry, 0, n)
	for len(entries) < n {
		e, err := gen.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		entries = append(entries, e.Clone())
	}
	return entries, nil
}

// encodeLDTRC01 renders entries as the length-prefixed record stream.
func encodeLDTRC01(entries []trace.Entry) ([]byte, error) {
	var buf bytes.Buffer
	w := trace.NewBinaryWriter(&buf)
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeRun measures one full decode of the trace through r, returning
// entries/s and allocations/entry. The reader is constructed inside the
// timed+measured region via open, so per-run pipeline setup is charged
// to the run (it amortizes to nothing at real trace sizes and keeps the
// measurement honest).
func decodeRun(open func() (trace.Reader, error), want int) (Result, error) {
	batch := make([]trace.Entry, 1024)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	r, err := open()
	if err != nil {
		return Result{}, err
	}
	decoded := 0
	for {
		n, err := trace.ReadBatch(r, batch)
		decoded += n
		if err != nil {
			if err == io.EOF {
				break
			}
			return Result{}, err
		}
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&after)
	if c, ok := r.(io.Closer); ok {
		c.Close()
	}
	if decoded != want {
		return Result{}, fmt.Errorf("decoded %d entries, want %d", decoded, want)
	}
	res := Result{
		Queries:     decoded,
		Sent:        int64(decoded),
		AchievedQPS: float64(decoded) / dur.Seconds(),
		DurationMS:  float64(dur) / float64(time.Millisecond),
	}
	if decoded > 0 {
		res.AllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(decoded)
	}
	return res, nil
}

// blockTempFile writes entries as an LDTRC02 temp file with codec.
func blockTempFile(entries []trace.Entry, codec uint8) (string, int64, error) {
	f, err := os.CreateTemp("", "ldplayer-tracebench-*.blk")
	if err != nil {
		return "", 0, err
	}
	w := trace.NewBlockWriterOptions(f, trace.BlockWriterOptions{Codec: codec})
	for _, e := range entries {
		if err := w.Write(e); err != nil {
			f.Close()
			os.Remove(f.Name())
			return "", 0, err
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(f.Name())
		return "", 0, err
	}
	return f.Name(), size, nil
}

// TraceSuite runs the ingestion benchmarks. scale < 1 shrinks the trace
// for smoke runs.
func TraceSuite(scale float64) ([]Result, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(400000 * scale)
	if n < 64 {
		n = 64
	}
	entries, err := recursiveTrace(n)
	if err != nil {
		return nil, err
	}
	n = len(entries)

	ldtrc01, err := encodeLDTRC01(entries)
	if err != nil {
		return nil, err
	}
	rawPath, rawSize, err := blockTempFile(entries, trace.BlockRaw)
	if err != nil {
		return nil, err
	}
	defer os.Remove(rawPath)
	flatePath, flateSize, err := blockTempFile(entries, trace.BlockFlate)
	if err != nil {
		return nil, err
	}
	defer os.Remove(flatePath)

	runs := []struct {
		name string
		open func() (trace.Reader, error)
	}{
		{"decode-ldtrc01", func() (trace.Reader, error) {
			return trace.NewBinaryReader(bytes.NewReader(ldtrc01)), nil
		}},
		{"decode-blk-1worker", func() (trace.Reader, error) {
			return trace.OpenBlockFileOptions(rawPath, trace.BlockReaderOptions{Workers: 1})
		}},
		{"decode-blk-parallel", func() (trace.Reader, error) {
			return trace.OpenBlockFile(rawPath)
		}},
		{"decode-blk-flate-1worker", func() (trace.Reader, error) {
			return trace.OpenBlockFileOptions(flatePath, trace.BlockReaderOptions{Workers: 1})
		}},
	}
	var out []Result
	for _, run := range runs {
		res, err := decodeRun(run.open, n)
		if err != nil {
			return out, fmt.Errorf("trace bench %s: %w", run.name, err)
		}
		res.Name = run.name
		switch run.name {
		case "decode-ldtrc01":
			res.TraceBytes = int64(len(ldtrc01))
		case "decode-blk-flate-1worker":
			res.TraceBytes = flateSize
			res.CompressionX = float64(len(ldtrc01)) / float64(flateSize)
		default:
			res.TraceBytes = rawSize
			res.CompressionX = float64(len(ldtrc01)) / float64(rawSize)
		}
		out = append(out, res)
	}
	return out, nil
}
