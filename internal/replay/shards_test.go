package replay

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ldplayer/internal/trace"
)

// blockReaderFor encodes entries as an in-memory LDTRC02 trace and opens
// a BlockReader over it (small blocks, so multi-distributor runs have
// enough blocks to partition).
func blockReaderFor(t *testing.T, entries []trace.Entry) *trace.BlockReader {
	t.Helper()
	data, err := trace.WriteBlockTrace(entries, trace.BlockWriterOptions{BlockEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	br, err := trace.NewBlockReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { br.Close() })
	return br
}

// TestReplayShardedBlockTrace drives the scale-out path: a partitionable
// block trace with Distributors > 1 replays through per-shard readers,
// and the run-level accounting (sent/responses/sources) must match the
// postman path exactly.
func TestReplayShardedBlockTrace(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.Distributors = 3
	cfg.QueriersPerDistributor = 2
	cfg.FastMode = true
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 400, 8, 0, trace.UDP)
	st, err := en.Replay(context.Background(), blockReaderFor(t, entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 400 {
		t.Errorf("sent = %d, want 400", st.Sent)
	}
	// Fast mode can legitimately overrun the test server's UDP socket
	// buffer, so responses are a liveness check, not an exact count.
	if st.Responses == 0 {
		t.Error("no responses received")
	}
	if st.Sources != 8 {
		t.Errorf("sources = %d, want 8", st.Sources)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

// TestReplayShardedPaced checks that shards share one time-sync point:
// a paced multi-distributor run must stretch over the trace's span, not
// collapse to per-shard local epochs.
func TestReplayShardedPaced(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.Distributors = 2
	cfg.QueriersPerDistributor = 2
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const gap = time.Millisecond
	entries := makeTrace(t, 150, 4, gap, trace.UDP)
	span := time.Duration(len(entries)-1) * gap
	start := time.Now()
	st, err := en.Replay(context.Background(), blockReaderFor(t, entries))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if st.Sent != int64(len(entries)) {
		t.Errorf("sent = %d, want %d", st.Sent, len(entries))
	}
	if elapsed < span {
		t.Errorf("paced sharded run finished in %v, want at least the trace span %v", elapsed, span)
	}
}

// TestReplayShardedCancel cancels mid-run; the sharded path must unwind
// (shard pipelines closed, querier goroutines joined) and surface the
// context error.
func TestReplayShardedCancel(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.Distributors = 2
	cfg.DrainTimeout = 10 * time.Millisecond
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 5000, 8, time.Millisecond, trace.UDP)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	st, err := en.Replay(ctx, blockReaderFor(t, entries))
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if st == nil {
		t.Fatal("no stats returned on cancellation")
	}
	if st.Sent >= int64(len(entries)) {
		t.Errorf("sent = %d, expected a truncated run", st.Sent)
	}
}

// TestReplayMultiDistributorFallback: a non-partitionable reader with
// Distributors > 1 must fall back to the postman tree and still deliver
// everything.
func TestReplayMultiDistributorFallback(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.Distributors = 2
	cfg.FastMode = true
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 200, 8, 0, trace.UDP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 200 || st.Responses != 200 {
		t.Errorf("sent/responses = %d/%d, want 200/200", st.Sent, st.Responses)
	}
}
