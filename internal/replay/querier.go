package replay

import (
	"context"
	"crypto/tls"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/netio"
	"ldplayer/internal/qlog"
	"ldplayer/internal/trace"
)

// UDP socket I/O geometry: sends are grouped per socket and submitted
// through sendmmsg in chunks of sendBatchCap (equal-size runs coalesce
// further into GSO super-datagrams on Linux); the reader drains up to
// recvBatchCap buffers per recvmmsg, each sized to hold a maximally
// GRO-coalesced response train (64 segments of up to ~1 KiB).
const (
	sendBatchCap = 128
	recvBatchCap = 4
	recvBufSize  = 64 * 1024
)

// querier owns sockets and transmits its share of the sources. Timing no
// longer lives here: entries arrive in pre-paced batches (from the
// distributor's timing wheel, or as fast as possible in fast mode), and
// the querier's job is to turn a batch into as few syscalls as it can.
// Same-source queries reuse the same socket while it is open; new sources
// open new sockets; idle TCP/TLS connections close after the configured
// timeout — the §2.6 connection-reuse emulation.
type querier struct {
	en    *Engine
	name  string
	wheel *wheel
	in    chan []trace.Entry

	sp atomic.Pointer[syncPoint]

	mu   sync.Mutex
	udp  map[netip.Addr]*udpSocket
	conn map[streamKey]*streamConn

	// dirty lists sockets holding queued messages for the batch being
	// sent; reused across batches.
	dirty []*udpSocket

	// io tracks socket reader and idle goroutines; they exit when
	// closeSockets runs after the drain grace period.
	io sync.WaitGroup

	// qlog is this querier's SPSC telemetry producer (nil when off).
	// SPSC holds because a querier's sends run on exactly one goroutine
	// per run: the wheel goroutine (paced) or the querier's own (fast).
	qlog *qlog.Producer
}

// streamKey identifies an emulated TCP or TLS query source. The original
// source address is the key: its queries share the connection, per the
// paper.
type streamKey struct {
	addr  netip.Addr
	proto trace.Protocol
}

func newQuerier(en *Engine, name string) *querier {
	q := &querier{
		en:   en,
		name: name,
		// Shallow queue: 4 batches of up to defaultMaxBatch is ample
		// pipelining, and the bound keeps the total in-flight batch
		// population within the recycling pool's capacity.
		in:   make(chan []trace.Entry, 4),
		udp:  make(map[netip.Addr]*udpSocket),
		conn: make(map[streamKey]*streamConn),
	}
	if en.cfg.Qlog != nil {
		q.qlog = en.cfg.Qlog.Producer()
	}
	return q
}

func (q *querier) setSync(sp *syncPoint) { q.sp.Store(sp) }

// run consumes entry batches until the channel closes. A cancelled
// context drains remaining batches without sending.
func (q *querier) run(ctx context.Context) {
	for b := range q.in {
		if ctx.Err() == nil {
			q.sendBatch(b)
		}
		putBatch(b)
	}
}

// sendBatch transmits one batch: UDP entries are grouped by socket and
// submitted via batched sends; stream entries go out inline. Per-socket
// grouping keeps same-source queries in order (a source always maps to
// one socket).
//
//ldlint:noalloc
func (q *querier) sendBatch(batch []trace.Entry) {
	for i := range batch {
		e := &batch[i]
		switch e.Protocol {
		case trace.UDP:
			//ldlint:ignore noallocprop lazy per-source socket setup: a first-seen source dials and wires its reader once; steady state is a map hit
			sock, err := q.getUDP(e.Src.Addr())
			if err != nil {
				q.fail(e, err)
				continue
			}
			if len(sock.out) == 0 {
				q.dirty = append(q.dirty, sock)
			}
			sock.out = append(sock.out, e.Message)
			sock.outIdx = append(sock.outIdx, i)
		case trace.TCP, trace.TLS:
			err := q.sendStream(*e)
			if err != nil {
				q.fail(e, err)
			} else {
				q.accountSend(e, q.en.clock.Now())
			}
		}
	}
	// Retransmission bookkeeping (pending-map insert + freshness reset) is
	// only needed when retries can fire. At UDPRetries == 0 duplicate
	// detection rides the answered ring alone — markAnswered treats a
	// pending miss identically — so fire-and-forget runs skip the
	// per-query shard lock entirely.
	retrans := q.en.cfg.UDPRetries > 0
	for _, sock := range q.dirty {
		n, err := sock.batch.Send(sock.out)
		at := q.en.clock.Now()
		if h := q.en.batchSizeHist.Load(); h != nil {
			h.Record(int64(len(sock.out)))
		}
		if n > 0 {
			sock.lastSend.Store(at.UnixNano())
		}
		for j, idx := range sock.outIdx {
			e := &batch[idx]
			if j < n {
				if retrans {
					q.trackUDP(sock, e.Message)
				}
				q.accountSend(e, at)
			} else {
				// Send guarantees n < len(out) implies err != nil.
				q.fail(e, err)
			}
		}
		sock.out = sock.out[:0]
		sock.outIdx = sock.outIdx[:0]
	}
	q.dirty = q.dirty[:0]
}

// accountSend settles a successful transmission: counters, the
// scheduling-error sample, and the OnSend callback.
//
//ldlint:noalloc
func (q *querier) accountSend(e *trace.Entry, at time.Time) {
	q.en.sent.Add(1)
	var schedErr time.Duration
	if sp := q.sp.Load(); sp != nil {
		schedErr = at.Sub(sp.realStart) - e.Time.Sub(sp.traceStart)
		if h := q.en.schedErrHist.Load(); h != nil {
			h.Record(int64(schedErr))
		}
	}
	if q.en.cfg.OnSend != nil {
		q.en.cfg.OnSend(e, at, schedErr)
	}
	if q.qlog != nil {
		if ev := q.qlog.Reserve(); ev != nil {
			fillSendEvent(ev, e, at)
			q.qlog.Commit()
		}
	}
}

// fillSendEvent records one transmitted query: the send timestamp, the
// emulated source (so a round-tripped capture preserves source
// stickiness), and the question decoded from the query wire. Latency is
// unknowable at send time.
//
//ldlint:noalloc
func fillSendEvent(ev *qlog.Event, e *trace.Entry, at time.Time) {
	ev.Time = at.UnixNano()
	ev.Latency = -1
	ev.Peer = e.Src.Addr()
	ev.View = ""
	ev.ID = 0
	if len(e.Message) >= 2 {
		ev.ID = uint16(e.Message[0])<<8 | uint16(e.Message[1])
	}
	ev.QType, ev.QClass, ev.QNameLen = 0, 0, 0
	if qlen := qlog.WireQNameLen(e.Message); qlen > 0 && qlen <= len(ev.QName) {
		ev.QNameLen = uint8(copy(ev.QName[:], e.Message[12:12+qlen]))
		ev.QType = uint16(e.Message[12+qlen])<<8 | uint16(e.Message[12+qlen+1])
		ev.QClass = uint16(e.Message[12+qlen+2])<<8 | uint16(e.Message[12+qlen+3])
	}
	ev.Rcode = 0
	ev.Transport = uint8(e.Protocol)
	ev.Flags = qlog.FlagClientSend
}

func (q *querier) fail(e *trace.Entry, err error) {
	q.en.errorsCount.Add(1)
	if q.en.cfg.OnError != nil {
		q.en.cfg.OnError(e, err)
	}
}

// pendShards splits each socket's in-flight state by DNS message ID so
// the send path (track), the wheel (retransmit), and the reader (answer)
// contend on different locks. Power of two.
const pendShards = 8

// shardRingSize bounds the recently-answered ID memory per shard.
const shardRingSize = 256

// udpSocket is one emulated UDP source. It tracks in-flight queries by
// DNS message ID so unanswered queries can be retransmitted with
// exponential backoff and duplicated responses are recognized instead of
// double-counted.
type udpSocket struct {
	conn  *net.UDPConn
	batch *netio.UDPBatch
	// lastSend is the UnixNano of the most recent write, consumed (once)
	// by the reader to produce a round-trip latency sample.
	lastSend atomic.Int64
	closed   atomic.Bool

	shards [pendShards]pendShard

	// out and outIdx queue this socket's share of the batch being sent;
	// owned by the querier goroutine.
	out    [][]byte
	outIdx []int
}

// pendShard holds one slice of a socket's pending and answered state.
type pendShard struct {
	mu sync.Mutex
	// seq stamps each pending insert; a retransmission wheel item fires
	// only while its seq still matches, which is how answers, ID reuse,
	// and close cancel timers without touching the wheel.
	seq     uint32
	pending map[uint16]pendingQuery
	// answered remembers recently answered IDs (bounded ring) so a
	// duplicate of an already-answered response is counted as such.
	answered     map[uint16]struct{}
	answeredRing [shardRingSize]uint16
	answeredN    int
	answeredLen  int
}

func (sh *pendShard) init() {
	sh.pending = make(map[uint16]pendingQuery)
	sh.answered = make(map[uint16]struct{})
}

// pendingQuery is one in-flight UDP query awaiting its response. Stored
// by value: tracking a query allocates nothing unless retransmission
// needs a wire copy.
type pendingQuery struct {
	// wire is retained only when retransmission is enabled.
	wire    []byte
	attempt int32
	seq     uint32
}

func (sock *udpSocket) shard(id uint16) *pendShard {
	return &sock.shards[id&(pendShards-1)]
}

// getUDP returns the socket for src, opening (and wiring a batched
// reader to) a new one for a first-seen source.
func (q *querier) getUDP(src netip.Addr) (*udpSocket, error) {
	q.mu.Lock()
	sock := q.udp[src]
	q.mu.Unlock()
	if sock != nil {
		return sock, nil
	}
	if q.en.cfg.UDPTarget == "" {
		return nil, noTargetErrs[trace.UDP]
	}
	raddr, err := net.ResolveUDPAddr("udp", q.en.cfg.UDPTarget)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	batch, err := netio.NewUDPBatch(conn, sendBatchCap, recvBatchCap, recvBufSize, false)
	if err != nil {
		conn.Close()
		return nil, err
	}
	sock = &udpSocket{conn: conn, batch: batch}
	for i := range sock.shards {
		sock.shards[i].init()
	}
	q.mu.Lock()
	// Re-check under the lock; a racing send for the same source wins.
	if existing := q.udp[src]; existing != nil {
		q.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	q.udp[src] = sock
	q.mu.Unlock()
	q.en.connsOpened.Add(1)
	q.io.Add(1)
	go q.readUDP(sock)
	return sock, nil
}

// trackUDP registers a just-sent query in its pending shard and arms its
// retry slot on the timing wheel. Only called when UDPRetries > 0;
// fire-and-forget sends skip it (sendBatch) and rely on the answered
// ring for duplicate detection.
//
//ldlint:noalloc
func (q *querier) trackUDP(sock *udpSocket, msg []byte) {
	if len(msg) < 2 {
		return
	}
	id := uint16(msg[0])<<8 | uint16(msg[1])
	retrans := q.en.cfg.UDPRetries > 0
	var wire []byte
	if retrans {
		// trace.Entry.Message buffers are immutable after decode (see the
		// field's contract), so retransmission retains a reference instead
		// of copying — the copy was one allocation per query.
		wire = msg
	}
	sh := sock.shard(id)
	sh.mu.Lock()
	if sock.closed.Load() {
		sh.mu.Unlock()
		return
	}
	sh.seq++
	seq := sh.seq
	// An ID reused by a later query supersedes the older in-flight one:
	// the new seq strands the old retransmission slot.
	delete(sh.answered, id)
	sh.pending[id] = pendingQuery{wire: wire, seq: seq}
	sh.mu.Unlock()
	if retrans {
		q.wheel.scheduleRetrans(q.en.cfg.UDPRetryTimeout, q, sock, id, seq)
	}
}

// retransmitUDP fires when a retry slot expires: re-send a still-pending
// query with a doubled timeout, or give up once the budget is spent.
// Stale slots (answered, superseded, or closed since arming) no-op.
//
//ldlint:noalloc
func (q *querier) retransmitUDP(sock *udpSocket, id uint16, seq uint32) {
	sh := sock.shard(id)
	sh.mu.Lock()
	pq, ok := sh.pending[id]
	if !ok || pq.seq != seq || sock.closed.Load() {
		sh.mu.Unlock()
		return
	}
	if int(pq.attempt) >= q.en.cfg.UDPRetries {
		delete(sh.pending, id)
		sh.mu.Unlock()
		q.en.giveups.Add(1)
		return
	}
	pq.attempt++
	sh.pending[id] = pq
	wire := pq.wire
	attempt := pq.attempt
	sh.mu.Unlock()
	if _, err := sock.conn.Write(wire); err != nil {
		return // socket is closing; drain accounting covers the query
	}
	q.en.udpRetransmits.Add(1)
	sock.lastSend.Store(q.en.clock.Now().UnixNano())
	// Exponential backoff: timeout doubles with each retransmission.
	q.wheel.scheduleRetrans(q.en.cfg.UDPRetryTimeout<<attempt, q, sock, id, seq)
}

// markAnswered settles a response against the pending shard. It reports
// whether the response is fresh (true) or a duplicate of an already
// answered query (false). Unknown IDs count as fresh: traces replayed
// without tracking context (e.g. ID reuse races) keep legacy accounting.
//
//ldlint:noalloc
func (sock *udpSocket) markAnswered(id uint16) bool {
	sh := sock.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.pending[id]; ok {
		delete(sh.pending, id)
		sh.rememberAnswered(id)
		return true
	}
	if _, dup := sh.answered[id]; dup {
		return false
	}
	sh.rememberAnswered(id)
	return true
}

// rememberAnswered records id in the bounded answered ring; callers hold
// sh.mu.
//
//ldlint:noalloc
func (sh *pendShard) rememberAnswered(id uint16) {
	if sh.answeredLen == shardRingSize {
		evict := sh.answeredRing[sh.answeredN]
		delete(sh.answered, evict)
	} else {
		sh.answeredLen++
	}
	sh.answeredRing[sh.answeredN] = id
	sh.answeredN = (sh.answeredN + 1) % shardRingSize
	sh.answered[id] = struct{}{}
}

// readUDP drains responses in batches until the socket closes. A
// GRO-coalesced buffer holds several responses back to back at a fixed
// segment stride (the last possibly shorter); each segment settles
// independently.
func (q *querier) readUDP(sock *udpSocket) {
	defer q.io.Done()
	for {
		n, err := sock.batch.Recv()
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			buf := sock.batch.Msg(i)
			seg := sock.batch.SegSize(i)
			if seg <= 0 || seg >= len(buf) {
				q.settleResponse(sock, buf)
				continue
			}
			for off := 0; off < len(buf); off += seg {
				end := off + seg
				if end > len(buf) {
					end = len(buf)
				}
				q.settleResponse(sock, buf[off:end])
			}
		}
	}
}

// settleResponse accounts one received response datagram.
//
//ldlint:noalloc
func (q *querier) settleResponse(sock *udpSocket, buf []byte) {
	if len(buf) >= 2 {
		id := uint16(buf[0])<<8 | uint16(buf[1])
		if !sock.markAnswered(id) {
			q.en.dupResponses.Add(1)
			return
		}
	}
	q.en.responses.Add(1)
	q.recordRTT(&sock.lastSend)
	if q.en.cfg.OnResponse != nil {
		msg := make([]byte, len(buf)) //ldlint:ignore noalloc OnResponse callback owns its copy; only paid when a sink is installed
		copy(msg, buf)
		q.en.cfg.OnResponse(msg, q.en.clock.Now())
	}
}

// streamConn is one reusable TCP or TLS connection for a source.
type streamConn struct {
	mu       sync.Mutex
	conn     net.Conn
	lastUsed time.Time
	closed   bool
	done     chan struct{}
	lastSend atomic.Int64
}

// recordRTT converts a pending send timestamp into a latency sample when
// the engine is instrumented. Swap(0) consumes the timestamp so each send
// yields at most one sample.
func (q *querier) recordRTT(lastSend *atomic.Int64) {
	h := q.en.latency.Load()
	if h == nil {
		return
	}
	if t := lastSend.Swap(0); t != 0 {
		h.Record(q.en.clock.Now().UnixNano() - t)
	}
}

func (q *querier) sendStream(e trace.Entry) error {
	target := q.en.cfg.TCPTarget
	if e.Protocol == trace.TLS {
		target = q.en.cfg.TLSTarget
	}
	if target == "" {
		return noTargetErrs[e.Protocol]
	}
	key := streamKey{addr: e.Src.Addr(), proto: e.Protocol}

	for attempt := 0; attempt < q.en.cfg.StreamAttempts; attempt++ {
		//ldlint:ignore noallocprop lazy per-stream connection setup: the dial path allocates once per stream, then every entry reuses it
		sc, err := q.getStream(key, e.Protocol, target)
		if err != nil {
			return err
		}
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			q.dropStream(key, sc)
			q.en.retries.Add(1)
			continue // reconnect once
		}
		err = authserver.WriteTCPMessage(sc.conn, e.Message)
		sc.lastUsed = q.en.clock.Now()
		if err == nil {
			sc.lastSend.Store(sc.lastUsed.UnixNano())
		}
		sc.mu.Unlock()
		if err != nil {
			q.dropStream(key, sc)
			q.en.retries.Add(1)
			continue
		}
		return nil
	}
	return errConnBroken{}
}

func (q *querier) getStream(key streamKey, proto trace.Protocol, target string) (*streamConn, error) {
	q.mu.Lock()
	sc := q.conn[key]
	q.mu.Unlock()
	if sc != nil {
		return sc, nil
	}
	var conn net.Conn
	var err error
	if proto == trace.TLS {
		conn, err = tls.Dial("tcp", target, q.en.cfg.TLSConfig)
	} else {
		conn, err = net.Dial("tcp", target)
	}
	if err != nil {
		return nil, err
	}
	sc = &streamConn{conn: conn, lastUsed: q.en.clock.Now(), done: make(chan struct{})}
	q.mu.Lock()
	if existing := q.conn[key]; existing != nil {
		q.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	q.conn[key] = sc
	q.mu.Unlock()
	q.en.connsOpened.Add(1)
	q.io.Add(1)
	go q.readStream(key, sc)
	q.io.Add(1)
	go q.idleCloser(key, sc)
	return sc, nil
}

func (q *querier) dropStream(key streamKey, sc *streamConn) {
	sc.mu.Lock()
	if !sc.closed {
		sc.closed = true
		sc.conn.Close()
		close(sc.done)
	}
	sc.mu.Unlock()
	q.mu.Lock()
	if q.conn[key] == sc {
		delete(q.conn, key)
	}
	q.mu.Unlock()
}

func (q *querier) readStream(key streamKey, sc *streamConn) {
	defer q.io.Done()
	for {
		msg, err := authserver.ReadTCPMessage(sc.conn)
		if err != nil {
			q.dropStream(key, sc)
			return
		}
		sc.mu.Lock()
		sc.lastUsed = q.en.clock.Now()
		sc.mu.Unlock()
		q.en.responses.Add(1)
		q.recordRTT(&sc.lastSend)
		if q.en.cfg.OnResponse != nil {
			q.en.cfg.OnResponse(msg, q.en.clock.Now())
		}
	}
}

// idleCloser enforces the client-side connection reuse timeout. A
// clock timer re-armed each wakeup rather than a ticker: vclock has no
// ticker, and a periodic re-Reset is the same behaviour.
func (q *querier) idleCloser(key streamKey, sc *streamConn) {
	defer q.io.Done()
	timeout := q.en.cfg.IdleTimeout
	timer := q.en.clock.NewTimer(timeout / 4)
	defer timer.Stop()
	for {
		select {
		case <-sc.done:
			return
		case <-timer.C():
			sc.mu.Lock()
			idle := q.en.clock.Now().Sub(sc.lastUsed)
			sc.mu.Unlock()
			if idle >= timeout {
				q.en.idleClosed.Add(1)
				q.dropStream(key, sc)
				return
			}
			timer.Reset(timeout / 4)
		}
	}
}

// closeSockets tears down all sockets after the drain grace period. The
// caller has already stopped the timing wheel, so no retransmission can
// fire during or after this; clearing the pending shards strands any
// still-queued wheel items for good measure.
func (q *querier) closeSockets() {
	q.mu.Lock()
	for _, s := range q.udp {
		s.closed.Store(true)
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			clear(sh.pending)
			sh.mu.Unlock()
		}
		s.conn.Close()
	}
	conns := make([]*streamConn, 0, len(q.conn))
	keys := make([]streamKey, 0, len(q.conn))
	for k, c := range q.conn {
		conns = append(conns, c)
		keys = append(keys, k)
	}
	q.mu.Unlock()
	for i, c := range conns {
		q.dropStream(keys[i], c)
	}
	q.io.Wait()
}

type errNoTarget struct{ proto trace.Protocol }

// noTargetErrs preboxes one errNoTarget per protocol: the
// missing-target check sits inside the noalloc send loop, and boxing a
// fresh struct into error on every affected entry would allocate per
// query while the target stays unconfigured.
var noTargetErrs = [...]error{
	trace.UDP: errNoTarget{trace.UDP},
	trace.TCP: errNoTarget{trace.TCP},
	trace.TLS: errNoTarget{trace.TLS},
}

func (e errNoTarget) Error() string {
	return "replay: no target configured for protocol " + e.proto.String()
}

type errConnBroken struct{}

func (errConnBroken) Error() string { return "replay: connection broke on every attempt" }
