package replay

import (
	"context"
	"crypto/tls"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/trace"
)

// querier owns sockets and replay timing for its share of the sources.
// Same-source queries reuse the same socket while it is open; new sources
// open new sockets; idle TCP/TLS connections close after the configured
// timeout — the §2.6 connection-reuse emulation.
type querier struct {
	en   *Engine
	name string
	in   chan trace.Entry

	syncMu sync.Mutex
	sp     *syncPoint

	mu   sync.Mutex
	udp  map[sourceKey]*udpSocket
	conn map[sourceKey]*streamConn

	// io tracks socket reader and idle goroutines; they exit when
	// closeSockets runs after the drain grace period.
	io sync.WaitGroup
}

// sourceKey identifies an emulated query source. The original source
// address is the key: its queries share sockets, per the paper.
type sourceKey struct {
	addr string
	// proto separates the UDP socket from the TCP/TLS connection of the
	// same source.
	proto trace.Protocol
}

func newQuerier(en *Engine, name string) *querier {
	return &querier{
		en:   en,
		name: name,
		in:   make(chan trace.Entry, 256),
		udp:  make(map[sourceKey]*udpSocket),
		conn: make(map[sourceKey]*streamConn),
	}
}

func (q *querier) setSync(sp *syncPoint) {
	q.syncMu.Lock()
	q.sp = sp
	q.syncMu.Unlock()
}

func (q *querier) run(ctx context.Context) {
	// The querier is a sequential event loop: its input arrives in trace
	// order, so sleeping until each query's ΔTᵢ and then sending preserves
	// both absolute timing and same-source ordering. A cancelled context
	// aborts the current wait immediately.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for e := range q.in {
		if !q.en.cfg.FastMode {
			q.syncMu.Lock()
			sp := q.sp
			q.syncMu.Unlock()
			if sp != nil {
				idealDelay := e.Time.Sub(sp.traceStart)     // Δt̄ᵢ
				elapsed := time.Since(sp.realStart)         // Δtᵢ
				if wait := idealDelay - elapsed; wait > 0 { // ΔTᵢ
					timer.Reset(wait)
					select {
					case <-timer.C:
					case <-ctx.Done():
						if !timer.Stop() {
							<-timer.C
						}
						return
					}
				}
				// ΔTᵢ ≤ 0: input fell behind; send immediately.
			}
		}
		q.send(e)
	}
}

// send transmits one query on the appropriate socket.
func (q *querier) send(e trace.Entry) {
	var err error
	switch e.Protocol {
	case trace.UDP:
		err = q.sendUDP(e)
	case trace.TCP, trace.TLS:
		err = q.sendStream(e)
	}
	at := time.Now()
	if err != nil {
		q.en.errorsCount.Add(1)
		if q.en.cfg.OnError != nil {
			q.en.cfg.OnError(&e, err)
		}
		return
	}
	q.en.sent.Add(1)
	if q.en.cfg.OnSend != nil {
		var schedErr time.Duration
		q.syncMu.Lock()
		sp := q.sp
		q.syncMu.Unlock()
		if sp != nil {
			schedErr = at.Sub(sp.realStart) - e.Time.Sub(sp.traceStart)
		}
		q.en.cfg.OnSend(&e, at, schedErr)
	}
}

// udpSocket is one emulated UDP source. It tracks in-flight queries by
// DNS message ID so unanswered queries can be retransmitted with
// exponential backoff and duplicated responses are recognized instead of
// double-counted.
type udpSocket struct {
	conn *net.UDPConn
	// lastSend is the UnixNano of the most recent write, consumed (once)
	// by the reader to produce a round-trip latency sample.
	lastSend atomic.Int64

	mu      sync.Mutex
	closed  bool
	pending map[uint16]*pendingQuery
	// answered remembers recently answered IDs (bounded ring) so a
	// duplicate of an already-answered response is counted as such.
	answered     map[uint16]struct{}
	answeredRing [answeredRingSize]uint16
	answeredN    int
	answeredLen  int
}

// answeredRingSize bounds the recently-answered ID memory per socket.
const answeredRingSize = 1024

// pendingQuery is one in-flight UDP query awaiting its response.
type pendingQuery struct {
	// wire is retained only when retransmission is enabled.
	wire    []byte
	attempt int
	timer   *time.Timer
}

func (q *querier) sendUDP(e trace.Entry) error {
	if q.en.cfg.UDPTarget == "" {
		return errNoTarget{trace.UDP}
	}
	key := sourceKey{addr: e.Src.Addr().String(), proto: trace.UDP}
	q.mu.Lock()
	sock := q.udp[key]
	q.mu.Unlock()
	if sock == nil {
		raddr, err := net.ResolveUDPAddr("udp", q.en.cfg.UDPTarget)
		if err != nil {
			return err
		}
		conn, err := net.DialUDP("udp", nil, raddr)
		if err != nil {
			return err
		}
		sock = &udpSocket{
			conn:     conn,
			pending:  make(map[uint16]*pendingQuery),
			answered: make(map[uint16]struct{}),
		}
		q.mu.Lock()
		// Re-check under the lock; a racing send for the same source wins.
		if existing := q.udp[key]; existing != nil {
			q.mu.Unlock()
			conn.Close()
			sock = existing
		} else {
			q.udp[key] = sock
			q.mu.Unlock()
			q.en.connsOpened.Add(1)
			q.io.Add(1)
			go q.readUDP(sock)
		}
	}
	_, err := sock.conn.Write(e.Message)
	if err == nil {
		sock.lastSend.Store(time.Now().UnixNano())
		q.trackUDP(sock, e.Message)
	}
	return err
}

// trackUDP registers a just-sent query in the socket's pending table and,
// when retransmission is enabled, arms its retry timer.
func (q *querier) trackUDP(sock *udpSocket, msg []byte) {
	if len(msg) < 2 {
		return
	}
	id := uint16(msg[0])<<8 | uint16(msg[1])
	retrans := q.en.cfg.UDPRetries > 0
	pq := &pendingQuery{}
	if retrans {
		pq.wire = append([]byte(nil), msg...)
	}
	sock.mu.Lock()
	if sock.closed {
		sock.mu.Unlock()
		return
	}
	// An ID reused by a later query supersedes the older in-flight one.
	if old := sock.pending[id]; old != nil && old.timer != nil {
		old.timer.Stop()
	}
	delete(sock.answered, id)
	sock.pending[id] = pq
	if retrans {
		pq.timer = time.AfterFunc(q.en.cfg.UDPRetryTimeout, func() {
			q.retransmitUDP(sock, id, pq)
		})
	}
	sock.mu.Unlock()
}

// retransmitUDP re-sends a still-pending query or gives up once the retry
// budget is spent.
func (q *querier) retransmitUDP(sock *udpSocket, id uint16, pq *pendingQuery) {
	sock.mu.Lock()
	if sock.closed || sock.pending[id] != pq {
		sock.mu.Unlock()
		return
	}
	if pq.attempt >= q.en.cfg.UDPRetries {
		delete(sock.pending, id)
		sock.mu.Unlock()
		q.en.giveups.Add(1)
		return
	}
	pq.attempt++
	// Exponential backoff: timeout doubles with each retransmission.
	pq.timer = time.AfterFunc(q.en.cfg.UDPRetryTimeout<<pq.attempt, func() {
		q.retransmitUDP(sock, id, pq)
	})
	wire := pq.wire
	sock.mu.Unlock()
	if _, err := sock.conn.Write(wire); err != nil {
		return // socket is closing; drain accounting covers the query
	}
	q.en.udpRetransmits.Add(1)
	sock.lastSend.Store(time.Now().UnixNano())
}

// markAnswered settles a response against the pending table. It reports
// whether the response is fresh (true) or a duplicate of an already
// answered query (false). Unknown IDs count as fresh: traces replayed
// without tracking context (e.g. ID reuse races) keep legacy accounting.
func (sock *udpSocket) markAnswered(id uint16) bool {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	if pq := sock.pending[id]; pq != nil {
		if pq.timer != nil {
			pq.timer.Stop()
		}
		delete(sock.pending, id)
		sock.rememberAnswered(id)
		return true
	}
	if _, dup := sock.answered[id]; dup {
		return false
	}
	sock.rememberAnswered(id)
	return true
}

// rememberAnswered records id in the bounded answered ring; callers hold
// sock.mu.
func (sock *udpSocket) rememberAnswered(id uint16) {
	if sock.answeredLen == answeredRingSize {
		evict := sock.answeredRing[sock.answeredN]
		delete(sock.answered, evict)
	} else {
		sock.answeredLen++
	}
	sock.answeredRing[sock.answeredN] = id
	sock.answeredN = (sock.answeredN + 1) % answeredRingSize
	sock.answered[id] = struct{}{}
}

func (q *querier) readUDP(sock *udpSocket) {
	defer q.io.Done()
	buf := make([]byte, 64*1024)
	for {
		n, err := sock.conn.Read(buf)
		if err != nil {
			return
		}
		if n >= 2 {
			id := uint16(buf[0])<<8 | uint16(buf[1])
			if !sock.markAnswered(id) {
				q.en.dupResponses.Add(1)
				continue
			}
		}
		q.en.responses.Add(1)
		q.recordRTT(&sock.lastSend)
		if q.en.cfg.OnResponse != nil {
			msg := make([]byte, n)
			copy(msg, buf[:n])
			q.en.cfg.OnResponse(msg, time.Now())
		}
	}
}

// streamConn is one reusable TCP or TLS connection for a source.
type streamConn struct {
	mu       sync.Mutex
	conn     net.Conn
	lastUsed time.Time
	closed   bool
	done     chan struct{}
	lastSend atomic.Int64
}

// recordRTT converts a pending send timestamp into a latency sample when
// the engine is instrumented. Swap(0) consumes the timestamp so each send
// yields at most one sample.
func (q *querier) recordRTT(lastSend *atomic.Int64) {
	h := q.en.latency.Load()
	if h == nil {
		return
	}
	if t := lastSend.Swap(0); t != 0 {
		h.Record(time.Now().UnixNano() - t)
	}
}

func (q *querier) sendStream(e trace.Entry) error {
	target := q.en.cfg.TCPTarget
	if e.Protocol == trace.TLS {
		target = q.en.cfg.TLSTarget
	}
	if target == "" {
		return errNoTarget{e.Protocol}
	}
	key := sourceKey{addr: e.Src.Addr().String(), proto: e.Protocol}

	for attempt := 0; attempt < q.en.cfg.StreamAttempts; attempt++ {
		sc, err := q.getStream(key, e.Protocol, target)
		if err != nil {
			return err
		}
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			q.dropStream(key, sc)
			q.en.retries.Add(1)
			continue // reconnect once
		}
		err = authserver.WriteTCPMessage(sc.conn, e.Message)
		sc.lastUsed = time.Now()
		if err == nil {
			sc.lastSend.Store(sc.lastUsed.UnixNano())
		}
		sc.mu.Unlock()
		if err != nil {
			q.dropStream(key, sc)
			q.en.retries.Add(1)
			continue
		}
		return nil
	}
	return errConnBroken{}
}

func (q *querier) getStream(key sourceKey, proto trace.Protocol, target string) (*streamConn, error) {
	q.mu.Lock()
	sc := q.conn[key]
	q.mu.Unlock()
	if sc != nil {
		return sc, nil
	}
	var conn net.Conn
	var err error
	if proto == trace.TLS {
		conn, err = tls.Dial("tcp", target, q.en.cfg.TLSConfig)
	} else {
		conn, err = net.Dial("tcp", target)
	}
	if err != nil {
		return nil, err
	}
	sc = &streamConn{conn: conn, lastUsed: time.Now(), done: make(chan struct{})}
	q.mu.Lock()
	if existing := q.conn[key]; existing != nil {
		q.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	q.conn[key] = sc
	q.mu.Unlock()
	q.en.connsOpened.Add(1)
	q.io.Add(1)
	go q.readStream(key, sc)
	q.io.Add(1)
	go q.idleCloser(key, sc)
	return sc, nil
}

func (q *querier) dropStream(key sourceKey, sc *streamConn) {
	sc.mu.Lock()
	if !sc.closed {
		sc.closed = true
		sc.conn.Close()
		close(sc.done)
	}
	sc.mu.Unlock()
	q.mu.Lock()
	if q.conn[key] == sc {
		delete(q.conn, key)
	}
	q.mu.Unlock()
}

func (q *querier) readStream(key sourceKey, sc *streamConn) {
	defer q.io.Done()
	for {
		msg, err := authserver.ReadTCPMessage(sc.conn)
		if err != nil {
			q.dropStream(key, sc)
			return
		}
		sc.mu.Lock()
		sc.lastUsed = time.Now()
		sc.mu.Unlock()
		q.en.responses.Add(1)
		q.recordRTT(&sc.lastSend)
		if q.en.cfg.OnResponse != nil {
			q.en.cfg.OnResponse(msg, time.Now())
		}
	}
}

// idleCloser enforces the client-side connection reuse timeout.
func (q *querier) idleCloser(key sourceKey, sc *streamConn) {
	defer q.io.Done()
	timeout := q.en.cfg.IdleTimeout
	ticker := time.NewTicker(timeout / 4)
	defer ticker.Stop()
	for {
		select {
		case <-sc.done:
			return
		case <-ticker.C:
			sc.mu.Lock()
			idle := time.Since(sc.lastUsed)
			sc.mu.Unlock()
			if idle >= timeout {
				q.en.idleClosed.Add(1)
				q.dropStream(key, sc)
				return
			}
		}
	}
}

// closeSockets tears down all sockets after the drain grace period,
// stopping any armed retransmission timers first.
func (q *querier) closeSockets() {
	q.mu.Lock()
	for _, s := range q.udp {
		s.mu.Lock()
		s.closed = true
		for _, pq := range s.pending {
			if pq.timer != nil {
				pq.timer.Stop()
			}
		}
		s.mu.Unlock()
		s.conn.Close()
	}
	conns := make([]*streamConn, 0, len(q.conn))
	keys := make([]sourceKey, 0, len(q.conn))
	for k, c := range q.conn {
		conns = append(conns, c)
		keys = append(keys, k)
	}
	q.mu.Unlock()
	for i, c := range conns {
		q.dropStream(keys[i], c)
	}
	q.io.Wait()
}

type errNoTarget struct{ proto trace.Protocol }

func (e errNoTarget) Error() string {
	return "replay: no target configured for protocol " + e.proto.String()
}

type errConnBroken struct{}

func (errConnBroken) Error() string { return "replay: connection broke on every attempt" }
