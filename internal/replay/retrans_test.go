package replay

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/trace"
)

// Tests for the UDP retransmission machinery and the drain condition: the
// replay engine must recover lost queries by retransmitting with backoff,
// give up cleanly when the budget is spent, never double-count duplicated
// responses, and never sleep out the drain window when nothing is
// outstanding.

// scriptedUDPServer answers queries according to fate(nthArrival) — 0
// answer once, < 0 drop, k > 0 answer k times (duplication).
func scriptedUDPServer(t *testing.T, fate func(n int64) int) (addr string, seen *[]uint16, mu *sync.Mutex) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	seen = &[]uint16{}
	mu = &sync.Mutex{}
	var arrivals int64
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, raddr, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			arrivals++
			if n >= 2 {
				mu.Lock()
				*seen = append(*seen, uint16(buf[0])<<8|uint16(buf[1]))
				mu.Unlock()
			}
			copies := fate(arrivals)
			if copies <= 0 {
				if copies == 0 {
					copies = 1
				} else {
					continue // drop
				}
			}
			resp := append([]byte(nil), buf[:n]...)
			resp[2] |= 0x80 // QR
			for i := 0; i < copies; i++ {
				_, _ = conn.WriteToUDP(resp, raddr)
			}
		}
	}()
	return conn.LocalAddr().String(), seen, mu
}

// TestDrainSkipsWhenAllAnswered is the regression test for the drain
// operator-precedence bug: an all-answered run must not sleep out the
// drain window.
func TestDrainSkipsWhenAllAnswered(t *testing.T) {
	_, cfg := testServer(t, false)
	cfg.DrainTimeout = 10 * time.Second
	en, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 10, 2, time.Millisecond, trace.UDP)
	start := time.Now()
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Responses != 10 {
		t.Fatalf("responses = %d", st.Responses)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("all-answered run took %v; drain window (%v) was slept out", elapsed, cfg.DrainTimeout)
	}
}

// TestUDPRetransmitRecoversLoss drops every first arrival of a query; the
// retransmission must get it answered.
func TestUDPRetransmitRecoversLoss(t *testing.T) {
	dropFirst := make(map[uint16]bool)
	var fmu sync.Mutex
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, raddr, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if n < 2 {
				continue
			}
			id := uint16(buf[0])<<8 | uint16(buf[1])
			fmu.Lock()
			first := !dropFirst[id]
			dropFirst[id] = true
			fmu.Unlock()
			if first {
				continue // drop the first transmission of every query
			}
			resp := append([]byte(nil), buf[:n]...)
			resp[2] |= 0x80
			_, _ = conn.WriteToUDP(resp, raddr)
		}
	}()

	en, err := New(Config{
		UDPTarget:       conn.LocalAddr().String(),
		UDPRetries:      2,
		UDPRetryTimeout: 40 * time.Millisecond,
		DrainTimeout:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 12, 3, time.Millisecond, trace.UDP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 12 || st.Responses != 12 {
		t.Errorf("sent=%d responses=%d, want 12/12 via retransmission", st.Sent, st.Responses)
	}
	if st.UDPRetransmits < 12 {
		t.Errorf("retransmits = %d, want >= 12", st.UDPRetransmits)
	}
	if st.Giveups != 0 {
		t.Errorf("giveups = %d", st.Giveups)
	}
}

// TestUDPGiveupAfterBudget blackholes everything: every query must be
// retransmitted UDPRetries times and then given up, and the run must
// terminate by the drain deadline with full unanswered accounting.
func TestUDPGiveupAfterBudget(t *testing.T) {
	addr, _, _ := scriptedUDPServer(t, func(int64) int { return -1 })
	en, err := New(Config{
		UDPTarget:       addr,
		UDPRetries:      1,
		UDPRetryTimeout: 30 * time.Millisecond,
		DrainTimeout:    3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 8, 2, 0, trace.UDP)
	start := time.Now()
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent != 8 || st.Responses != 0 {
		t.Errorf("sent=%d responses=%d", st.Sent, st.Responses)
	}
	if st.Giveups != 8 {
		t.Errorf("giveups = %d, want 8", st.Giveups)
	}
	if st.Unanswered != 8 {
		t.Errorf("unanswered = %d, want 8", st.Unanswered)
	}
	if st.UDPRetransmits != 8 {
		t.Errorf("retransmits = %d, want 8 (1 retry each)", st.UDPRetransmits)
	}
	// All giveups land well before the 3s drain window: the run must exit
	// early rather than sleep it out.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("blackholed run took %v; should exit once every query gave up", elapsed)
	}
}

// TestDuplicatedResponsesNotDoubleCounted answers every query twice; the
// engine must count each query answered exactly once and the surplus as
// duplicates.
func TestDuplicatedResponsesNotDoubleCounted(t *testing.T) {
	addr, _, _ := scriptedUDPServer(t, func(int64) int { return 2 })
	en, err := New(Config{
		UDPTarget:    addr,
		DrainTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := makeTrace(t, 20, 4, time.Millisecond, trace.UDP)
	st, err := en.Replay(context.Background(), trace.NewSliceReader(entries))
	if err != nil {
		t.Fatal(err)
	}
	if st.Responses != 20 {
		t.Errorf("responses = %d, want 20 (duplicates must not double-count)", st.Responses)
	}
	if st.Duplicates == 0 {
		t.Error("duplicates = 0, want > 0")
	}
	if st.Responses+st.Duplicates < 30 {
		t.Errorf("responses+duplicates = %d; duplicated responses went missing", st.Responses+st.Duplicates)
	}
}
