package zone

import (
	"bufio"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"ldplayer/internal/dnswire"
)

// Parse reads a master-file-format zone from r. The defaultOrigin applies
// until a $ORIGIN directive overrides it. Supported syntax: comments (;),
// $ORIGIN and $TTL directives, @, relative names, owner inheritance from
// the previous record, multi-line records with parentheses, optional TTL
// and class in either order, and quoted character-strings.
func Parse(r io.Reader, defaultOrigin string) (*Zone, error) {
	p := &parser{
		origin: dnswire.CanonicalName(defaultOrigin),
		ttl:    3600,
	}
	z := New(defaultOrigin)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	var pending []string // tokens accumulated across parenthesized lines
	parenDepth := 0
	pendingStart := 0
	for sc.Scan() {
		lineno++
		tokens, opens, closes, startsWithWS := tokenize(sc.Text())
		if parenDepth == 0 {
			pendingStart = lineno
			pending = pending[:0]
			if len(tokens) == 0 {
				continue
			}
			p.ownerImplicit = startsWithWS
		}
		pending = append(pending, tokens...)
		parenDepth += opens - closes
		if parenDepth < 0 {
			return nil, fmt.Errorf("zone parse line %d: unbalanced ')'", lineno)
		}
		if parenDepth > 0 {
			continue
		}
		if len(pending) == 0 {
			continue
		}
		rr, directive, err := p.record(pending)
		if err != nil {
			return nil, fmt.Errorf("zone parse line %d: %w", pendingStart, err)
		}
		if directive {
			continue
		}
		if err := z.Add(rr); err != nil {
			return nil, fmt.Errorf("zone parse line %d: %w", pendingStart, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parenDepth != 0 {
		return nil, fmt.Errorf("zone parse: unbalanced '(' at EOF")
	}
	return z, nil
}

// tokenize splits a master-file line into tokens, stripping comments and
// counting parentheses (which act as whitespace). Quoted strings are kept
// as single tokens with the quotes preserved.
func tokenize(line string) (tokens []string, opens, closes int, startsWithWS bool) {
	startsWithWS = len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(line) {
				i++
				cur.WriteByte(line[i])
			} else if c == '"' {
				inQuote = false
				flush()
			}
		case c == '"':
			flush()
			cur.WriteByte(c)
			inQuote = true
		case c == ';':
			flush()
			return tokens, opens, closes, startsWithWS
		case c == '(':
			flush()
			opens++
		case c == ')':
			flush()
			closes++
		case c == ' ' || c == '\t':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return tokens, opens, closes, startsWithWS
}

type parser struct {
	origin        string
	ttl           uint32
	lastOwner     string
	ownerImplicit bool
}

// absName resolves a possibly relative name token against $ORIGIN.
func (p *parser) absName(tok string) string {
	if tok == "@" {
		return p.origin
	}
	if strings.HasSuffix(tok, ".") {
		return dnswire.CanonicalName(tok)
	}
	if p.origin == "." {
		return dnswire.CanonicalName(tok + ".")
	}
	return dnswire.CanonicalName(tok + "." + p.origin)
}

// record parses one logical record (or directive) from its tokens.
func (p *parser) record(tokens []string) (dnswire.RR, bool, error) {
	switch strings.ToUpper(tokens[0]) {
	case "$ORIGIN":
		if len(tokens) != 2 {
			return dnswire.RR{}, false, fmt.Errorf("$ORIGIN needs one argument")
		}
		p.origin = dnswire.CanonicalName(tokens[1])
		return dnswire.RR{}, true, nil
	case "$TTL":
		if len(tokens) != 2 {
			return dnswire.RR{}, false, fmt.Errorf("$TTL needs one argument")
		}
		n, err := parseTTL(tokens[1])
		if err != nil {
			return dnswire.RR{}, false, err
		}
		p.ttl = n
		return dnswire.RR{}, true, nil
	case "$INCLUDE":
		return dnswire.RR{}, false, fmt.Errorf("$INCLUDE is not supported")
	}

	var rr dnswire.RR
	rr.Class = dnswire.ClassINET
	rr.TTL = p.ttl

	i := 0
	if p.ownerImplicit {
		if p.lastOwner == "" {
			return rr, false, fmt.Errorf("record with no owner and no previous owner")
		}
		rr.Name = p.lastOwner
	} else {
		rr.Name = p.absName(tokens[0])
		p.lastOwner = rr.Name
		i = 1
	}

	// TTL and class may appear in either order before the type.
	sawTTL := false
	for i < len(tokens) {
		tok := tokens[i]
		if !sawTTL {
			if n, err := parseTTL(tok); err == nil {
				rr.TTL = n
				sawTTL = true
				i++
				continue
			}
		}
		if c, err := dnswire.ParseClass(strings.ToUpper(tok)); err == nil && looksLikeClass(tok) {
			rr.Class = c
			i++
			continue
		}
		break
	}
	if i >= len(tokens) {
		return rr, false, fmt.Errorf("record for %s missing type", rr.Name)
	}
	typ, err := dnswire.ParseType(strings.ToUpper(tokens[i]))
	if err != nil {
		return rr, false, err
	}
	i++
	data, err := p.rdata(typ, tokens[i:])
	if err != nil {
		return rr, false, fmt.Errorf("%s %s: %w", rr.Name, typ, err)
	}
	rr.Data = data
	return rr, false, nil
}

// looksLikeClass avoids interpreting a type mnemonic such as "ANY" or an
// rdata token as a class: only the real class mnemonics qualify.
func looksLikeClass(tok string) bool {
	switch strings.ToUpper(tok) {
	case "IN", "CH", "HS", "CS":
		return true
	}
	return strings.HasPrefix(strings.ToUpper(tok), "CLASS")
}

// parseTTL accepts plain seconds or BIND duration shorthand (1h30m, 2d, 1w).
func parseTTL(tok string) (uint32, error) {
	if n, err := strconv.ParseUint(tok, 10, 32); err == nil {
		return uint32(n), nil
	}
	total := uint64(0)
	num := uint64(0)
	sawDigit := false
	for _, c := range strings.ToLower(tok) {
		switch {
		case c >= '0' && c <= '9':
			num = num*10 + uint64(c-'0')
			sawDigit = true
		case c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w':
			if !sawDigit {
				return 0, fmt.Errorf("bad TTL %q", tok)
			}
			mult := map[rune]uint64{'s': 1, 'm': 60, 'h': 3600, 'd': 86400, 'w': 604800}[c]
			total += num * mult
			num, sawDigit = 0, false
		default:
			return 0, fmt.Errorf("bad TTL %q", tok)
		}
	}
	if sawDigit {
		total += num
	}
	if total > 1<<31 {
		return 0, fmt.Errorf("TTL %q too large", tok)
	}
	if total == 0 && !strings.ContainsAny(tok, "0") {
		return 0, fmt.Errorf("bad TTL %q", tok)
	}
	return uint32(total), nil
}

func (p *parser) rdata(typ dnswire.Type, tokens []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(tokens) < n {
			return fmt.Errorf("need %d rdata fields, have %d", n, len(tokens))
		}
		return nil
	}
	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(tokens[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("bad IPv4 address %q", tokens[0])
		}
		return dnswire.A{Addr: a}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(tokens[0])
		if err != nil || !a.Is6() || a.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 address %q", tokens[0])
		}
		return dnswire.AAAA{Addr: a}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.NS{Host: p.absName(tokens[0])}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: p.absName(tokens[0])}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: p.absName(tokens[0])}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(tokens[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", tokens[0])
		}
		return dnswire.MX{Preference: uint16(pref), Host: p.absName(tokens[1])}, nil
	case dnswire.TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		var ss []string
		for _, tok := range tokens {
			if strings.HasPrefix(tok, `"`) {
				s, err := strconv.Unquote(tok)
				if err != nil {
					return nil, fmt.Errorf("bad quoted string %s", tok)
				}
				ss = append(ss, s)
			} else {
				ss = append(ss, tok)
			}
		}
		return dnswire.TXT{Strings: ss}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			n, err := parseTTL(tokens[2+i])
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", tokens[2+i])
			}
			nums[i] = n
		}
		return dnswire.SOA{
			MName: p.absName(tokens[0]), RName: p.absName(tokens[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	case dnswire.TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		var vals [3]uint16
		for i := 0; i < 3; i++ {
			n, err := strconv.ParseUint(tokens[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bad SRV field %q", tokens[i])
			}
			vals[i] = uint16(n)
		}
		return dnswire.SRV{Priority: vals[0], Weight: vals[1], Port: vals[2], Target: p.absName(tokens[3])}, nil
	case dnswire.TypeDS:
		if err := need(4); err != nil {
			return nil, err
		}
		tag, err1 := strconv.ParseUint(tokens[0], 10, 16)
		alg, err2 := strconv.ParseUint(tokens[1], 10, 8)
		dt, err3 := strconv.ParseUint(tokens[2], 10, 8)
		digest, err4 := hex.DecodeString(strings.ToLower(strings.Join(tokens[3:], "")))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("bad DS rdata")
		}
		return dnswire.DS{KeyTag: uint16(tag), Algorithm: uint8(alg), DigestType: uint8(dt), Digest: digest}, nil
	case dnswire.TypeDNSKEY:
		if err := need(4); err != nil {
			return nil, err
		}
		flags, err1 := strconv.ParseUint(tokens[0], 10, 16)
		proto, err2 := strconv.ParseUint(tokens[1], 10, 8)
		alg, err3 := strconv.ParseUint(tokens[2], 10, 8)
		key, err4 := base64.StdEncoding.DecodeString(strings.Join(tokens[3:], ""))
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("bad DNSKEY rdata")
		}
		return dnswire.DNSKEY{Flags: uint16(flags), Protocol: uint8(proto), Algorithm: uint8(alg), PublicKey: key}, nil
	case dnswire.TypeRRSIG:
		if err := need(9); err != nil {
			return nil, err
		}
		covered, err := dnswire.ParseType(strings.ToUpper(tokens[0]))
		if err != nil {
			return nil, err
		}
		alg, err1 := strconv.ParseUint(tokens[1], 10, 8)
		labels, err2 := strconv.ParseUint(tokens[2], 10, 8)
		origTTL, err3 := strconv.ParseUint(tokens[3], 10, 32)
		exp, err4 := strconv.ParseUint(tokens[4], 10, 32)
		inc, err5 := strconv.ParseUint(tokens[5], 10, 32)
		tag, err6 := strconv.ParseUint(tokens[6], 10, 16)
		sig, err7 := base64.StdEncoding.DecodeString(strings.Join(tokens[8:], ""))
		for _, e := range []error{err1, err2, err3, err4, err5, err6, err7} {
			if e != nil {
				return nil, fmt.Errorf("bad RRSIG rdata: %v", e)
			}
		}
		return dnswire.RRSIG{
			TypeCovered: covered, Algorithm: uint8(alg), Labels: uint8(labels),
			OrigTTL: uint32(origTTL), Expiration: uint32(exp), Inception: uint32(inc),
			KeyTag: uint16(tag), SignerName: p.absName(tokens[7]), Signature: sig,
		}, nil
	case dnswire.TypeNSEC:
		if err := need(1); err != nil {
			return nil, err
		}
		n := dnswire.NSEC{NextName: p.absName(tokens[0])}
		for _, tok := range tokens[1:] {
			t, err := dnswire.ParseType(strings.ToUpper(tok))
			if err != nil {
				return nil, err
			}
			n.Types = append(n.Types, t)
		}
		return n, nil
	case dnswire.TypeNSEC3:
		if err := need(5); err != nil {
			return nil, err
		}
		alg, err1 := strconv.ParseUint(tokens[0], 10, 8)
		flags, err2 := strconv.ParseUint(tokens[1], 10, 8)
		iter, err3 := strconv.ParseUint(tokens[2], 10, 16)
		salt, err4 := parseNSEC3Salt(tokens[3])
		next, err5 := dnswire.DecodeBase32Hex(tokens[4])
		for _, e := range []error{err1, err2, err3, err4, err5} {
			if e != nil {
				return nil, fmt.Errorf("bad NSEC3 rdata: %v", e)
			}
		}
		n := dnswire.NSEC3{
			HashAlg: uint8(alg), Flags: uint8(flags), Iterations: uint16(iter),
			Salt: salt, NextHashed: next,
		}
		for _, tok := range tokens[5:] {
			t, err := dnswire.ParseType(strings.ToUpper(tok))
			if err != nil {
				return nil, err
			}
			n.Types = append(n.Types, t)
		}
		return n, nil
	case dnswire.TypeNSEC3PARAM:
		if err := need(4); err != nil {
			return nil, err
		}
		alg, err1 := strconv.ParseUint(tokens[0], 10, 8)
		flags, err2 := strconv.ParseUint(tokens[1], 10, 8)
		iter, err3 := strconv.ParseUint(tokens[2], 10, 16)
		salt, err4 := parseNSEC3Salt(tokens[3])
		for _, e := range []error{err1, err2, err3, err4} {
			if e != nil {
				return nil, fmt.Errorf("bad NSEC3PARAM rdata: %v", e)
			}
		}
		return dnswire.NSEC3PARAM{
			HashAlg: uint8(alg), Flags: uint8(flags), Iterations: uint16(iter), Salt: salt,
		}, nil
	default:
		// RFC 3597 unknown-type syntax: \# <len> <hex>.
		if len(tokens) >= 2 && tokens[0] == `\#` {
			want, err := strconv.Atoi(tokens[1])
			if err != nil {
				return nil, fmt.Errorf("bad \\# length")
			}
			data, err := hex.DecodeString(strings.Join(tokens[2:], ""))
			if err != nil || len(data) != want {
				return nil, fmt.Errorf("bad \\# payload")
			}
			return dnswire.RawRData{RRType: typ, Data: data}, nil
		}
		return nil, fmt.Errorf("unsupported rdata for type %s", typ)
	}
}

// parseNSEC3Salt decodes the salt field: "-" means empty.
func parseNSEC3Salt(tok string) ([]byte, error) {
	if tok == "-" {
		return nil, nil
	}
	return hex.DecodeString(strings.ToLower(tok))
}

// Write serializes the zone in master-file form, deterministically ordered.
// The output starts with $ORIGIN and $TTL directives and round-trips
// through Parse.
func (z *Zone) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s\n", z.Origin)
	fmt.Fprintf(bw, "$TTL 3600\n")
	records := z.Records()
	// SOA first: conventional and required by some loaders.
	if soa, ok := z.SOA(); ok {
		fmt.Fprintln(bw, soa.String())
	}
	for _, rr := range records {
		if rr.Type() == dnswire.TypeSOA && rr.Name == z.Origin {
			continue
		}
		fmt.Fprintln(bw, rr.String())
	}
	return bw.Flush()
}
