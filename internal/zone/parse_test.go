package zone

import (
	"bytes"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
)

const sampleZoneText = `
$ORIGIN example.com.
$TTL 1h
@	3600	IN	SOA	ns1 hostmaster (
		2026070501 ; serial
		7200       ; refresh
		3600       ; retry
		1209600    ; expire
		300 )      ; minimum
@	IN	NS	ns1
	IN	NS	ns2.example.com.
ns1	IN	A	192.0.2.1
ns2	300	IN	A	192.0.2.2
www	IN	A	192.0.2.80
www	IN	AAAA	2001:db8::80
alias	IN	CNAME	www
@	IN	MX	10 mail
mail	IN	A	192.0.2.25
txt	IN	TXT	"hello world" "second string"
_dns._tcp	IN	SRV	0 5 853 ns1
sub	IN	NS	ns.sub
ns.sub	IN	A	192.0.2.53
*.wild	60	IN	A	192.0.2.99
`

func TestParseSampleZone(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA parsed")
	}
	s := soa.Data.(dnswire.SOA)
	if s.Serial != 2026070501 || s.Minimum != 300 {
		t.Errorf("SOA = %+v", s)
	}
	if s.MName != "ns1.example.com." {
		t.Errorf("SOA MName = %q (relative name resolution)", s.MName)
	}
	if got := len(z.RRset("example.com.", dnswire.TypeNS)); got != 2 {
		t.Errorf("apex NS count = %d", got)
	}
	if got := z.RRset("ns2.example.com.", dnswire.TypeA); len(got) != 1 || got[0].TTL != 300 {
		t.Errorf("explicit TTL: %v", got)
	}
	if got := z.RRset("ns1.example.com.", dnswire.TypeA); len(got) != 1 || got[0].TTL != 3600 {
		t.Errorf("$TTL 1h default: %v", got)
	}
	txt := z.RRset("txt.example.com.", dnswire.TypeTXT)
	if len(txt) != 1 {
		t.Fatalf("TXT = %v", txt)
	}
	if strs := txt[0].Data.(dnswire.TXT).Strings; len(strs) != 2 || strs[0] != "hello world" {
		t.Errorf("TXT strings = %q", strs)
	}
	srv := z.RRset("_dns._tcp.example.com.", dnswire.TypeSRV)
	if len(srv) != 1 || srv[0].Data.(dnswire.SRV).Port != 853 {
		t.Errorf("SRV = %v", srv)
	}
	if errs := z.Validate(); len(errs) != 0 {
		t.Errorf("Validate: %v", errs)
	}
}

func TestParseOwnerInheritance(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	// The bare "	IN NS ns2..." line inherits the @ owner.
	found := false
	for _, rr := range z.RRset("example.com.", dnswire.TypeNS) {
		if rr.Data.(dnswire.NS).Host == "ns2.example.com." {
			found = true
		}
	}
	if !found {
		t.Error("owner inheritance lost the second NS record")
	}
}

func TestZoneWriteParseRoundTrip(t *testing.T) {
	z, err := Parse(strings.NewReader(sampleZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := z.Write(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(bytes.NewReader(buf.Bytes()), "example.com.")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if z.NumRecords() != z2.NumRecords() {
		t.Fatalf("record count %d -> %d after round trip\n%s", z.NumRecords(), z2.NumRecords(), buf.String())
	}
	a, b := z.Records(), z2.Records()
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("record %d: %q != %q", i, a[i].String(), b[i].String())
		}
	}
}

func TestParseTTLForms(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		ok   bool
	}{
		{"300", 300, true},
		{"1h", 3600, true},
		{"1h30m", 5400, true},
		{"2d", 172800, true},
		{"1w", 604800, true},
		{"0", 0, true},
		{"ns1", 0, false},
		{"h1", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseTTL(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseTTL(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseTTL(%q) succeeded with %d", c.in, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"www IN A not-an-ip\n",
		"www IN AAAA 192.0.2.1\n",
		"www IN MX ten mail\n",
		"www IN\n",
		"$ORIGIN\n",
		"$TTL abc\n",
		"www IN A 192.0.2.1 (\n",            // unbalanced paren at EOF
		"www.example.org. IN A 192.0.2.1\n", // out of zone
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), "example.com."); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseUnknownTypeRFC3597(t *testing.T) {
	z, err := Parse(strings.NewReader("x IN TYPE999 \\# 3 010203\n"), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	set := z.RRset("x.example.com.", dnswire.Type(999))
	if len(set) != 1 {
		t.Fatalf("set = %v", set)
	}
	raw := set[0].Data.(dnswire.RawRData)
	if len(raw.Data) != 3 || raw.Data[0] != 1 {
		t.Errorf("raw = %v", raw)
	}
}

func TestParseRootZoneFragment(t *testing.T) {
	text := `
.	86400	IN	SOA	a.root-servers.net. nstld.verisign-grs.com. 2026070500 1800 900 604800 86400
.	518400	IN	NS	a.root-servers.net.
.	518400	IN	NS	b.root-servers.net.
a.root-servers.net.	518400	IN	A	198.41.0.4
b.root-servers.net.	518400	IN	A	199.9.14.201
com.	172800	IN	NS	a.gtld-servers.net.
a.gtld-servers.net.	172800	IN	A	192.5.6.30
`
	z, err := Parse(strings.NewReader(text), ".")
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup("www.google.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Referral {
		t.Fatalf("root lookup for com name: kind = %v", res.Kind)
	}
	if len(res.Authority) != 1 || res.Authority[0].Name != "com." {
		t.Errorf("authority = %v", res.Authority)
	}
	if len(res.Additional) != 1 {
		t.Errorf("glue = %v", res.Additional)
	}
}

func TestParseNSEC3Records(t *testing.T) {
	text := `
com.	86400	IN	NSEC3PARAM	1 0 0 -
ck0pojmg874ljref7efn8430qvit8bsm.com.	86400	IN	NSEC3	1 1 0 - CK0Q2D6NI4I7EQH8NA30NS61O48UL8G5 NS SOA RRSIG DNSKEY NSEC3PARAM
`
	z, err := Parse(strings.NewReader(text), "com.")
	if err != nil {
		t.Fatal(err)
	}
	param := z.RRset("com.", dnswire.TypeNSEC3PARAM)
	if len(param) != 1 {
		t.Fatalf("NSEC3PARAM = %v", param)
	}
	n3 := z.RRset("ck0pojmg874ljref7efn8430qvit8bsm.com.", dnswire.TypeNSEC3)
	if len(n3) != 1 {
		t.Fatalf("NSEC3 = %v", n3)
	}
	rec := n3[0].Data.(dnswire.NSEC3)
	if rec.Flags != 1 || len(rec.NextHashed) != 20 || len(rec.Types) != 5 {
		t.Errorf("NSEC3 = %+v", rec)
	}
	// Round trip through Write/Parse.
	var buf bytes.Buffer
	if err := z.Write(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(bytes.NewReader(buf.Bytes()), "com.")
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if z.NumRecords() != z2.NumRecords() {
		t.Errorf("round trip lost records")
	}
}
