package zone

import (
	"strings"

	"ldplayer/internal/dnswire"
)

// AnswerKind classifies the outcome of an authoritative lookup.
type AnswerKind int

// Lookup outcomes.
const (
	// Answer: authoritative data for (qname, qtype) in Records.
	Answer AnswerKind = iota
	// Referral: qname is at or below a zone cut; Authority carries the NS
	// set and Additional the glue.
	Referral
	// NoData: the name exists but has no RRset of qtype; Authority carries
	// the SOA for negative caching.
	NoData
	// NXDomain: the name does not exist; Authority carries the SOA.
	NXDomain
	// OutOfZone: qname is not within this zone at all.
	OutOfZone
)

// String returns a short mnemonic for k.
func (k AnswerKind) String() string {
	switch k {
	case Answer:
		return "ANSWER"
	case Referral:
		return "REFERRAL"
	case NoData:
		return "NODATA"
	case NXDomain:
		return "NXDOMAIN"
	case OutOfZone:
		return "OUTOFZONE"
	}
	return "?"
}

// Result is the outcome of Lookup, already split into response sections.
type Result struct {
	Kind       AnswerKind
	Records    []dnswire.RR // answer section (includes chased CNAMEs)
	Authority  []dnswire.RR
	Additional []dnswire.RR
}

// LookupOptions tunes lookup behaviour.
type LookupOptions struct {
	// DNSSEC attaches RRSIG records covering each returned RRset and NSEC
	// records on negative answers (set from the query's DO bit).
	DNSSEC bool
}

// Lookup resolves (qname, qtype) against the zone with full authoritative
// semantics. The order of checks mirrors RFC 1034 §4.3.2:
// referral cut first, then exact match, CNAME, wildcard, and finally the
// negative answers.
func (z *Zone) Lookup(qname string, qtype dnswire.Type, opts LookupOptions) Result {
	qname = dnswire.CanonicalName(qname)
	if !dnswire.IsSubdomain(qname, z.Origin) {
		return Result{Kind: OutOfZone}
	}

	// Zone cut: answer with a referral unless the query is for the DS
	// RRset exactly at the cut (which the parent owns).
	if cut := z.deepestCut(qname); cut != "" && !(qname == cut && qtype == dnswire.TypeDS) {
		return z.referral(cut, opts)
	}

	var res Result
	res.Records = z.answerChasing(qname, qtype, opts, 0)
	if len(res.Records) > 0 {
		res.Kind = Answer
		z.attachSigs(&res.Records, opts)
		return res
	}

	if z.NameExists(qname) {
		res.Kind = NoData
	} else if wname := z.matchWildcard(qname); wname != "" {
		if set := z.RRset(wname, qtype); len(set) > 0 {
			res.Kind = Answer
			for _, rr := range set {
				rr.Name = qname // wildcard expansion
				res.Records = append(res.Records, rr)
			}
			z.attachSigs(&res.Records, opts)
			return res
		}
		if set := z.RRset(wname, dnswire.TypeCNAME); len(set) > 0 {
			rr := set[0]
			rr.Name = qname
			res.Kind = Answer
			res.Records = append(res.Records, rr)
			res.Records = append(res.Records, z.answerChasing(rr.Data.(dnswire.CNAME).Target, qtype, opts, 1)...)
			z.attachSigs(&res.Records, opts)
			return res
		}
		res.Kind = NoData
	} else {
		res.Kind = NXDomain
	}

	if soa, ok := z.SOA(); ok {
		res.Authority = append(res.Authority, soa)
		if opts.DNSSEC {
			res.Authority = append(res.Authority, z.sigsFor(soa.Name, dnswire.TypeSOA)...)
			res.Authority = append(res.Authority, z.nsecFor(qname)...)
		}
	}
	return res
}

// maxCNAMEChain bounds in-zone CNAME chasing; RFC 1034 resolvers bail far
// earlier, and loops must not hang the server.
const maxCNAMEChain = 8

// answerChasing returns the RRset for (qname, qtype), following CNAMEs
// within the zone. qtype CNAME and ANY are answered directly.
func (z *Zone) answerChasing(qname string, qtype dnswire.Type, opts LookupOptions, depth int) []dnswire.RR {
	if depth > maxCNAMEChain {
		return nil
	}
	qname = dnswire.CanonicalName(qname)
	if qtype == dnswire.TypeANY {
		var out []dnswire.RR
		for key, set := range z.rrsets {
			if key.name == qname {
				out = append(out, set...)
			}
		}
		return out
	}
	if set := z.RRset(qname, qtype); len(set) > 0 {
		return append([]dnswire.RR(nil), set...)
	}
	if qtype == dnswire.TypeCNAME {
		return nil
	}
	if set := z.RRset(qname, dnswire.TypeCNAME); len(set) > 0 {
		out := append([]dnswire.RR(nil), set[0])
		target := set[0].Data.(dnswire.CNAME).Target
		if dnswire.IsSubdomain(target, z.Origin) {
			out = append(out, z.answerChasing(target, qtype, opts, depth+1)...)
		}
		return out
	}
	return nil
}

// referral builds a delegation response for the cut name.
func (z *Zone) referral(cut string, opts LookupOptions) Result {
	res := Result{Kind: Referral}
	res.Authority = append(res.Authority, z.RRset(cut, dnswire.TypeNS)...)
	if opts.DNSSEC {
		// A signed delegation carries the DS set (or its absence proof).
		if ds := z.RRset(cut, dnswire.TypeDS); len(ds) > 0 {
			res.Authority = append(res.Authority, ds...)
			res.Authority = append(res.Authority, z.sigsFor(cut, dnswire.TypeDS)...)
		}
	}
	for _, rr := range res.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		res.Additional = append(res.Additional, z.RRset(ns.Host, dnswire.TypeA)...)
		res.Additional = append(res.Additional, z.RRset(ns.Host, dnswire.TypeAAAA)...)
	}
	return res
}

// matchWildcard returns the wildcard owner ("*.parent.") that would cover
// qname, or "". The closest-encloser rule applies: only the wildcard at
// the nearest existing ancestor matches.
func (z *Zone) matchWildcard(qname string) string {
	if len(z.wildcards) == 0 {
		return ""
	}
	labels := dnswire.SplitLabels(qname)
	for i := 1; i <= len(labels); i++ {
		parent := strings.Join(labels[i:], ".")
		if parent == "" {
			parent = "."
		} else {
			parent += "."
		}
		candidate := "*." + strings.TrimPrefix(parent, ".")
		if parent == "." {
			candidate = "*."
		}
		if _, ok := z.wildcards[candidate]; ok {
			return candidate
		}
		if !dnswire.IsSubdomain(parent, z.Origin) {
			break
		}
		// If the intermediate name exists, it blocks wildcards above it
		// only when i == 1 (the direct parent); the classic rule is that
		// an existing closest encloser stops the search.
		if i < len(labels) && z.NameExists(parent) {
			break
		}
	}
	return ""
}

// attachSigs appends the RRSIGs covering every distinct (name, type) pair
// in records when DNSSEC is requested.
func (z *Zone) attachSigs(records *[]dnswire.RR, opts LookupOptions) {
	if !opts.DNSSEC {
		return
	}
	seen := make(map[rrKey]struct{})
	var sigs []dnswire.RR
	for _, rr := range *records {
		k := rrKey{name: rr.Name, typ: rr.Type()}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		sigs = append(sigs, z.sigsFor(rr.Name, rr.Type())...)
	}
	*records = append(*records, sigs...)
}

// sigsFor returns the RRSIG records covering (name, covered). Wildcard-
// expanded names fall back to the wildcard owner's signatures.
func (z *Zone) sigsFor(name string, covered dnswire.Type) []dnswire.RR {
	var out []dnswire.RR
	candidates := z.RRset(name, dnswire.TypeRRSIG)
	if len(candidates) == 0 {
		if w := z.matchWildcard(name); w != "" {
			for _, rr := range z.RRset(w, dnswire.TypeRRSIG) {
				rr.Name = name
				candidates = append(candidates, rr)
			}
		}
	}
	for _, rr := range candidates {
		if sig, ok := rr.Data.(dnswire.RRSIG); ok && sig.TypeCovered == covered {
			out = append(out, rr)
		}
	}
	return out
}

// nsecFor returns an NSEC record (plus its signature) proving the
// nonexistence of qname, when the zone carries an NSEC chain.
func (z *Zone) nsecFor(qname string) []dnswire.RR {
	// Find the closest predecessor owner name carrying an NSEC record.
	var best string
	for key := range z.rrsets {
		if key.typ != dnswire.TypeNSEC {
			continue
		}
		if dnswire.CompareNames(key.name, qname) <= 0 &&
			(best == "" || dnswire.CompareNames(key.name, best) > 0) {
			best = key.name
		}
	}
	if best == "" {
		return nil
	}
	out := append([]dnswire.RR(nil), z.RRset(best, dnswire.TypeNSEC)...)
	out = append(out, z.sigsFor(best, dnswire.TypeNSEC)...)
	return out
}
