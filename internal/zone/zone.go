// Package zone implements the DNS zone data model used by LDplayer: an
// RRset store with authoritative lookup semantics (answers, referrals at
// zone cuts, wildcard expansion, CNAME chasing, NXDOMAIN/NODATA with SOA),
// plus a master-file parser and serializer so reconstructed zones are
// reusable artifacts exactly as §2.3 of the paper requires.
package zone

import (
	"fmt"
	"sort"
	"strings"

	"ldplayer/internal/dnswire"
)

// rrKey identifies an RRset within a zone.
type rrKey struct {
	name string
	typ  dnswire.Type
}

// Zone holds the authoritative data for a single zone (one origin).
// It is safe for concurrent readers once loading is complete.
type Zone struct {
	// Origin is the canonical apex name, e.g. "com." or ".".
	Origin string

	rrsets map[rrKey][]dnswire.RR
	// dedup keeps, per RRset, the presentation form of every rdata already
	// inserted, so Add detects duplicates with one set probe instead of
	// re-rendering the whole RRset (which made loading large reconstructed
	// zones O(n²) in the RRset size).
	dedup map[rrKey]map[string]struct{}
	// names records every owner name that exists (has any RRset), for the
	// NXDOMAIN vs NODATA distinction and empty-non-terminal detection.
	names map[string]struct{}
	// cuts records delegation points: names strictly below the origin that
	// own NS RRsets. Lookups at or below a cut yield referrals.
	cuts map[string]struct{}
	// wildcards records owner names of the form *.parent for fast checks.
	wildcards map[string]struct{}
}

// New creates an empty zone rooted at origin.
func New(origin string) *Zone {
	return &Zone{
		Origin:    dnswire.CanonicalName(origin),
		rrsets:    make(map[rrKey][]dnswire.RR),
		dedup:     make(map[rrKey]map[string]struct{}),
		names:     make(map[string]struct{}),
		cuts:      make(map[string]struct{}),
		wildcards: make(map[string]struct{}),
	}
}

// Add inserts rr into the zone. Owner names outside the zone are rejected.
// Duplicate records (same name, type, rdata) are silently coalesced.
func (z *Zone) Add(rr dnswire.RR) error {
	name := dnswire.CanonicalName(rr.Name)
	if !dnswire.IsSubdomain(name, z.Origin) {
		return fmt.Errorf("zone %s: record %s out of zone", z.Origin, name)
	}
	if rr.Data == nil {
		return fmt.Errorf("zone %s: record %s has no data", z.Origin, name)
	}
	rr.Name = name
	key := rrKey{name: name, typ: rr.Type()}
	rendered := rr.Data.String()
	seen := z.dedup[key]
	if seen == nil {
		seen = make(map[string]struct{}, 1)
		z.dedup[key] = seen
	}
	if _, dup := seen[rendered]; dup {
		return nil // duplicate
	}
	seen[rendered] = struct{}{}
	z.rrsets[key] = append(z.rrsets[key], rr)
	z.names[name] = struct{}{}
	// Register empty non-terminals so intermediate names answer NODATA
	// rather than NXDOMAIN.
	for p := dnswire.ParentName(name); dnswire.IsSubdomain(p, z.Origin) && p != z.Origin; p = dnswire.ParentName(p) {
		z.names[p] = struct{}{}
	}
	if rr.Type() == dnswire.TypeNS && name != z.Origin {
		z.cuts[name] = struct{}{}
	}
	if strings.HasPrefix(name, "*.") {
		z.wildcards[name] = struct{}{}
	}
	return nil
}

// AddAll inserts every record, stopping at the first error.
func (z *Zone) AddAll(rrs []dnswire.RR) error {
	for _, rr := range rrs {
		if err := z.Add(rr); err != nil {
			return err
		}
	}
	return nil
}

// RRset returns the records for (name, type), or nil.
func (z *Zone) RRset(name string, t dnswire.Type) []dnswire.RR {
	return z.rrsets[rrKey{name: dnswire.CanonicalName(name), typ: t}]
}

// SOA returns the zone's SOA record, or false when the zone has none.
func (z *Zone) SOA() (dnswire.RR, bool) {
	set := z.RRset(z.Origin, dnswire.TypeSOA)
	if len(set) == 0 {
		return dnswire.RR{}, false
	}
	return set[0], true
}

// NameExists reports whether name owns any RRset (or is an empty
// non-terminal) in the zone.
func (z *Zone) NameExists(name string) bool {
	_, ok := z.names[dnswire.CanonicalName(name)]
	return ok
}

// NumRecords returns the total record count.
func (z *Zone) NumRecords() int {
	n := 0
	for _, set := range z.rrsets {
		n += len(set)
	}
	return n
}

// Names returns every owner name in canonical DNS order.
func (z *Zone) Names() []string {
	out := make([]string, 0, len(z.names))
	for n := range z.names {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		return dnswire.CompareNames(out[i], out[j]) < 0
	})
	return out
}

// Records returns all records, grouped by owner in canonical order and by
// ascending type within an owner. The result is deterministic, which keeps
// serialized zone files diff-stable across runs.
func (z *Zone) Records() []dnswire.RR {
	keys := make([]rrKey, 0, len(z.rrsets))
	for k := range z.rrsets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c := dnswire.CompareNames(keys[i].name, keys[j].name); c != 0 {
			return c < 0
		}
		return keys[i].typ < keys[j].typ
	})
	var out []dnswire.RR
	for _, k := range keys {
		set := append([]dnswire.RR(nil), z.rrsets[k]...)
		sort.Slice(set, func(i, j int) bool { return set[i].Data.String() < set[j].Data.String() })
		out = append(out, set...)
	}
	return out
}

// Validate checks structural invariants: the zone has a SOA and an apex NS
// set, and every in-zone NS target that is below a cut has glue.
func (z *Zone) Validate() []error {
	var errs []error
	if _, ok := z.SOA(); !ok {
		errs = append(errs, fmt.Errorf("zone %s: missing SOA", z.Origin))
	}
	if len(z.RRset(z.Origin, dnswire.TypeNS)) == 0 {
		errs = append(errs, fmt.Errorf("zone %s: missing apex NS", z.Origin))
	}
	for cut := range z.cuts {
		for _, rr := range z.RRset(cut, dnswire.TypeNS) {
			host := rr.Data.(dnswire.NS).Host
			if dnswire.IsSubdomain(host, cut) &&
				len(z.RRset(host, dnswire.TypeA)) == 0 &&
				len(z.RRset(host, dnswire.TypeAAAA)) == 0 {
				errs = append(errs, fmt.Errorf("zone %s: in-bailiwick NS %s for %s lacks glue", z.Origin, host, cut))
			}
		}
	}
	return errs
}

// deepestCut returns the highest (closest to the apex) delegation point
// strictly above-or-at qname, or "" when the name is not under any cut.
// The highest cut wins because everything below it belongs to the child.
func (z *Zone) deepestCut(qname string) string {
	labels := dnswire.SplitLabels(qname)
	origin := z.Origin
	// Walk from just below the origin toward qname.
	depthOrigin := dnswire.CountLabels(origin)
	for i := len(labels) - depthOrigin - 1; i >= 0; i-- {
		candidate := strings.Join(labels[i:], ".") + "."
		if _, ok := z.cuts[candidate]; ok {
			return candidate
		}
	}
	return ""
}
