package zone

import (
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
)

func addr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// testZone builds example.com. with a delegation, wildcard, CNAME and
// standard apex records.
func testZone(t *testing.T) *Zone {
	t.Helper()
	z := New("example.com.")
	rrs := []dnswire.RR{
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.SOA{
			MName: "ns1.example.com.", RName: "hostmaster.example.com.",
			Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns1.example.com."}},
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns2.example.com."}},
		{Name: "ns1.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: addr(t, "192.0.2.1")}},
		{Name: "ns2.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: addr(t, "192.0.2.2")}},
		{Name: "www.example.com.", Class: dnswire.ClassINET, TTL: 300, Data: dnswire.A{Addr: addr(t, "192.0.2.80")}},
		{Name: "www.example.com.", Class: dnswire.ClassINET, TTL: 300, Data: dnswire.AAAA{Addr: addr(t, "2001:db8::80")}},
		{Name: "alias.example.com.", Class: dnswire.ClassINET, TTL: 300, Data: dnswire.CNAME{Target: "www.example.com."}},
		{Name: "*.wild.example.com.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.A{Addr: addr(t, "192.0.2.99")}},
		// Delegation to sub.example.com. with in-bailiwick glue.
		{Name: "sub.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns.sub.example.com."}},
		{Name: "ns.sub.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: addr(t, "192.0.2.53")}},
		{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.MX{Preference: 10, Host: "mail.example.com."}},
		{Name: "mail.example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.A{Addr: addr(t, "192.0.2.25")}},
	}
	if err := z.AddAll(rrs); err != nil {
		t.Fatal(err)
	}
	return z
}

func TestLookupAnswer(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Records) != 1 || res.Records[0].Data.String() != "192.0.2.80" {
		t.Errorf("records = %v", res.Records)
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("WWW.Example.COM.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Answer || len(res.Records) != 1 {
		t.Errorf("kind = %v records = %v", res.Kind, res.Records)
	}
}

func TestLookupCNAMEChase(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("alias.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %v", res.Records)
	}
	if res.Records[0].Type() != dnswire.TypeCNAME || res.Records[1].Type() != dnswire.TypeA {
		t.Errorf("chase order wrong: %v", res.Records)
	}
	// Direct CNAME query returns just the CNAME.
	res = z.Lookup("alias.example.com.", dnswire.TypeCNAME, LookupOptions{})
	if res.Kind != Answer || len(res.Records) != 1 {
		t.Errorf("CNAME query: kind=%v records=%v", res.Kind, res.Records)
	}
}

func TestLookupCNAMELoopTerminates(t *testing.T) {
	z := New("example.com.")
	mustAdd(t, z, dnswire.RR{Name: "a.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "b.example.com."}})
	mustAdd(t, z, dnswire.RR{Name: "b.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: "a.example.com."}})
	res := z.Lookup("a.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Records) > 2*maxCNAMEChain+2 {
		t.Errorf("loop produced %d records", len(res.Records))
	}
}

func mustAdd(t *testing.T, z *Zone, rr dnswire.RR) {
	t.Helper()
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
}

func TestLookupReferral(t *testing.T) {
	z := testZone(t)
	for _, q := range []string{"sub.example.com.", "deep.in.sub.example.com."} {
		res := z.Lookup(q, dnswire.TypeA, LookupOptions{})
		if res.Kind != Referral {
			t.Fatalf("%s: kind = %v", q, res.Kind)
		}
		if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeNS {
			t.Errorf("%s: authority = %v", q, res.Authority)
		}
		if len(res.Additional) != 1 || res.Additional[0].Data.String() != "192.0.2.53" {
			t.Errorf("%s: glue = %v", q, res.Additional)
		}
		if len(res.Records) != 0 {
			t.Errorf("%s: referral must have empty answer", q)
		}
	}
}

func TestLookupDSAtCutIsNotReferral(t *testing.T) {
	z := testZone(t)
	mustAdd(t, z, dnswire.RR{Name: "sub.example.com.", Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.DS{KeyTag: 1, Algorithm: 8, DigestType: 2, Digest: []byte{1}}})
	res := z.Lookup("sub.example.com.", dnswire.TypeDS, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("DS at cut: kind = %v", res.Kind)
	}
	if len(res.Records) != 1 || res.Records[0].Type() != dnswire.TypeDS {
		t.Errorf("records = %v", res.Records)
	}
}

func TestLookupNXDomain(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("nope.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != NXDomain {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", res.Authority)
	}
}

func TestLookupNoData(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.com.", dnswire.TypeMX, LookupOptions{})
	if res.Kind != NoData {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", res.Authority)
	}
}

func TestLookupEmptyNonTerminal(t *testing.T) {
	z := testZone(t)
	// "wild.example.com." exists only as the parent of "*.wild...".
	res := z.Lookup("wild.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != NoData {
		t.Errorf("empty non-terminal: kind = %v, want NoData", res.Kind)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("anything.wild.example.com.", dnswire.TypeA, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Records) != 1 {
		t.Fatalf("records = %v", res.Records)
	}
	if res.Records[0].Name != "anything.wild.example.com." {
		t.Errorf("wildcard expansion kept owner %q", res.Records[0].Name)
	}
	if res.Records[0].Data.String() != "192.0.2.99" {
		t.Errorf("wildcard data = %v", res.Records[0].Data)
	}
	// Wildcard does not cover a different type.
	res = z.Lookup("anything.wild.example.com.", dnswire.TypeMX, LookupOptions{})
	if res.Kind != NoData {
		t.Errorf("wildcard wrong-type: kind = %v, want NoData", res.Kind)
	}
}

func TestLookupOutOfZone(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.org.", dnswire.TypeA, LookupOptions{})
	if res.Kind != OutOfZone {
		t.Errorf("kind = %v", res.Kind)
	}
}

func TestLookupANY(t *testing.T) {
	z := testZone(t)
	res := z.Lookup("www.example.com.", dnswire.TypeANY, LookupOptions{})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Records) != 2 { // A + AAAA
		t.Errorf("ANY records = %v", res.Records)
	}
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New("example.com.")
	err := z.Add(dnswire.RR{Name: "example.org.", Class: dnswire.ClassINET, TTL: 1,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	if err == nil {
		t.Error("expected out-of-zone error")
	}
}

func TestAddCoalescesDuplicates(t *testing.T) {
	z := New("example.com.")
	rr := dnswire.RR{Name: "a.example.com.", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}}
	mustAdd(t, z, rr)
	mustAdd(t, z, rr)
	if n := len(z.RRset("a.example.com.", dnswire.TypeA)); n != 1 {
		t.Errorf("duplicate coalescing failed: %d records", n)
	}
}

func TestValidate(t *testing.T) {
	z := testZone(t)
	if errs := z.Validate(); len(errs) != 0 {
		t.Errorf("valid zone reported: %v", errs)
	}
	z2 := New("broken.example.")
	mustAdd(t, z2, dnswire.RR{Name: "x.broken.example.", Class: dnswire.ClassINET, TTL: 1,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	errs := z2.Validate()
	if len(errs) != 2 { // missing SOA, missing apex NS
		t.Errorf("broken zone errors = %v", errs)
	}
	// Missing glue detection.
	z3 := New("example.")
	mustAdd(t, z3, dnswire.RR{Name: "example.", Class: dnswire.ClassINET, TTL: 1, Data: dnswire.SOA{
		MName: "ns.example.", RName: "root.example.", Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 1}})
	mustAdd(t, z3, dnswire.RR{Name: "example.", Class: dnswire.ClassINET, TTL: 1, Data: dnswire.NS{Host: "ns.example."}})
	mustAdd(t, z3, dnswire.RR{Name: "ns.example.", Class: dnswire.ClassINET, TTL: 1,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	mustAdd(t, z3, dnswire.RR{Name: "sub.example.", Class: dnswire.ClassINET, TTL: 1,
		Data: dnswire.NS{Host: "ns.sub.example."}}) // in-bailiwick, no glue
	if errs := z3.Validate(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "glue") {
		t.Errorf("glue validation = %v", errs)
	}
}

func TestRecordsDeterministic(t *testing.T) {
	z := testZone(t)
	a := z.Records()
	b := z.Records()
	if len(a) != len(b) || len(a) != z.NumRecords() {
		t.Fatalf("record counts differ: %d %d %d", len(a), len(b), z.NumRecords())
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestLookupDNSSECAttachesSigs(t *testing.T) {
	z := testZone(t)
	sig := dnswire.RRSIG{TypeCovered: dnswire.TypeA, Algorithm: 8, Labels: 3,
		OrigTTL: 300, Expiration: 2e9, Inception: 1e9, KeyTag: 7,
		SignerName: "example.com.", Signature: []byte{1, 2, 3}}
	mustAdd(t, z, dnswire.RR{Name: "www.example.com.", Class: dnswire.ClassINET, TTL: 300, Data: sig})
	res := z.Lookup("www.example.com.", dnswire.TypeA, LookupOptions{DNSSEC: true})
	if res.Kind != Answer {
		t.Fatalf("kind = %v", res.Kind)
	}
	var haveSig bool
	for _, rr := range res.Records {
		if rr.Type() == dnswire.TypeRRSIG {
			haveSig = true
		}
	}
	if !haveSig {
		t.Error("DO=1 answer lacks RRSIG")
	}
	// Without DNSSEC no signature appears.
	res = z.Lookup("www.example.com.", dnswire.TypeA, LookupOptions{})
	for _, rr := range res.Records {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Error("DO=0 answer carries RRSIG")
		}
	}
}

func TestLookupDNSSECNegative(t *testing.T) {
	z := testZone(t)
	soaSig := dnswire.RRSIG{TypeCovered: dnswire.TypeSOA, Algorithm: 8, Labels: 2,
		OrigTTL: 3600, Expiration: 2e9, Inception: 1e9, KeyTag: 7,
		SignerName: "example.com.", Signature: []byte{9}}
	mustAdd(t, z, dnswire.RR{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: soaSig})
	mustAdd(t, z, dnswire.RR{Name: "mail.example.com.", Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.NSEC{NextName: "ns1.example.com.", Types: []dnswire.Type{dnswire.TypeA}}})
	res := z.Lookup("nope.example.com.", dnswire.TypeA, LookupOptions{DNSSEC: true})
	if res.Kind != NXDomain {
		t.Fatalf("kind = %v", res.Kind)
	}
	types := map[dnswire.Type]int{}
	for _, rr := range res.Authority {
		types[rr.Type()]++
	}
	if types[dnswire.TypeSOA] != 1 || types[dnswire.TypeRRSIG] == 0 || types[dnswire.TypeNSEC] == 0 {
		t.Errorf("authority types = %v", types)
	}
}
