package zone

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"ldplayer/internal/dnswire"
)

// randomZone builds a structurally valid random zone under example.com.
func randomZone(rng *rand.Rand) *Zone {
	z := New("example.com.")
	must := func(rr dnswire.RR) {
		if err := z.Add(rr); err != nil {
			panic(err)
		}
	}
	must(dnswire.RR{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.example.com.", RName: "host.example.com.",
		Serial: rng.Uint32(), Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}})
	must(dnswire.RR{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns1.example.com."}})
	must(dnswire.RR{Name: "ns1.example.com.", Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})}})
	n := rng.Intn(30)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s.example.com.", randomLabel(rng))
		switch rng.Intn(5) {
		case 0:
			var b [4]byte
			rng.Read(b[:])
			must(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: rng.Uint32() % 86400,
				Data: dnswire.A{Addr: netip.AddrFrom4(b)}})
		case 1:
			var b [16]byte
			rng.Read(b[:])
			b[0] = 0x20
			must(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: rng.Uint32() % 86400,
				Data: dnswire.AAAA{Addr: netip.AddrFrom16(b)}})
		case 2:
			must(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: rng.Uint32() % 86400,
				Data: dnswire.TXT{Strings: []string{randomLabel(rng), randomLabel(rng)}}})
		case 3:
			must(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: rng.Uint32() % 86400,
				Data: dnswire.MX{Preference: uint16(rng.Intn(100)), Host: "mail.example.com."}})
		default:
			must(dnswire.RR{Name: name, Class: dnswire.ClassINET, TTL: rng.Uint32() % 86400,
				Data: dnswire.CNAME{Target: "example.com."}})
		}
	}
	return z
}

func randomLabel(rng *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	n := 1 + rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(26)]
	}
	return string(b)
}

// TestQuickZoneWriteParseRoundTrip: any zone survives serialization to
// master-file format and back, record for record.
func TestQuickZoneWriteParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := randomZone(rng)
		var buf bytes.Buffer
		if err := z.Write(&buf); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		z2, err := Parse(bytes.NewReader(buf.Bytes()), z.Origin)
		if err != nil {
			t.Logf("reparse: %v\n%s", err, buf.String())
			return false
		}
		a, b := z.Records(), z2.Records()
		if len(a) != len(b) {
			t.Logf("record counts %d vs %d", len(a), len(b))
			return false
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Logf("record %d: %q vs %q", i, a[i].String(), b[i].String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickLookupInvariants: for any zone and any query, the lookup
// outcome is internally consistent.
func TestQuickLookupInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		z := randomZone(rng)
		for i := 0; i < 20; i++ {
			var qname string
			if rng.Intn(2) == 0 {
				qname = randomLabel(rng) + ".example.com."
			} else {
				names := z.Names()
				qname = names[rng.Intn(len(names))]
			}
			qtype := []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA, dnswire.TypeTXT, dnswire.TypeMX}[rng.Intn(4)]
			res := z.Lookup(qname, qtype, LookupOptions{})
			switch res.Kind {
			case Answer:
				if len(res.Records) == 0 {
					return false
				}
				// Every answer record's owner chain starts at qname.
				if res.Records[0].Name != dnswire.CanonicalName(qname) {
					return false
				}
			case NXDomain:
				// The name must really not exist.
				if z.NameExists(qname) {
					return false
				}
				if len(res.Authority) == 0 || res.Authority[0].Type() != dnswire.TypeSOA {
					return false
				}
			case NoData:
				if len(res.Authority) == 0 || res.Authority[0].Type() != dnswire.TypeSOA {
					return false
				}
			case Referral:
				hasNS := false
				for _, rr := range res.Authority {
					if rr.Type() == dnswire.TypeNS {
						hasNS = true
					}
				}
				if !hasNS {
					return false
				}
			case OutOfZone:
				if dnswire.IsSubdomain(qname, z.Origin) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickParseNeverPanics: arbitrary text must never panic the parser.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(text string) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("panic on %q: %v", text, p)
			}
		}()
		_, _ = Parse(strings.NewReader(text), "example.com.")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
