package zone

import (
	"fmt"
	"net/netip"
	"testing"

	"ldplayer/internal/dnswire"
)

// benchZone builds a 10k-name zone with delegations and a wildcard.
func benchZone(b *testing.B) *Zone {
	b.Helper()
	z := New("example.com.")
	must := func(rr dnswire.RR) {
		if err := z.Add(rr); err != nil {
			b.Fatal(err)
		}
	}
	must(dnswire.RR{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.example.com.", RName: "host.", Serial: 1, Refresh: 1, Retry: 1, Expire: 1, Minimum: 300}})
	must(dnswire.RR{Name: "example.com.", Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns1.example.com."}})
	must(dnswire.RR{Name: "ns1.example.com.", Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 1})}})
	must(dnswire.RR{Name: "*.wild.example.com.", Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, 99})}})
	for i := 0; i < 10000; i++ {
		must(dnswire.RR{Name: fmt.Sprintf("host%d.example.com.", i), Class: dnswire.ClassINET, TTL: 300,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})}})
	}
	for i := 0; i < 500; i++ {
		sub := fmt.Sprintf("sub%d.example.com.", i)
		must(dnswire.RR{Name: sub, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns." + sub}})
		must(dnswire.RR{Name: "ns." + sub, Class: dnswire.ClassINET, TTL: 3600,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{10, 99, byte(i >> 8), byte(i)})}})
	}
	return z
}

// BenchmarkLookupAnswer measures positive lookups in a 10k-name zone.
func BenchmarkLookupAnswer(b *testing.B) {
	z := benchZone(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("host%d.example.com.", i%10000), dnswire.TypeA, LookupOptions{})
		if res.Kind != Answer {
			b.Fatal(res.Kind)
		}
	}
}

// BenchmarkLookupReferral measures delegation lookups.
func BenchmarkLookupReferral(b *testing.B) {
	z := benchZone(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("deep.sub%d.example.com.", i%500), dnswire.TypeA, LookupOptions{})
		if res.Kind != Referral {
			b.Fatal(res.Kind)
		}
	}
}

// BenchmarkLookupNXDomain measures the negative path (SOA attach).
func BenchmarkLookupNXDomain(b *testing.B) {
	z := benchZone(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("missing%d.example.com.", i), dnswire.TypeA, LookupOptions{})
		if res.Kind != NXDomain {
			b.Fatal(res.Kind)
		}
	}
}

// BenchmarkLookupWildcard measures wildcard synthesis.
func BenchmarkLookupWildcard(b *testing.B) {
	z := benchZone(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("x%d.wild.example.com.", i), dnswire.TypeA, LookupOptions{})
		if res.Kind != Answer {
			b.Fatal(res.Kind)
		}
	}
}

// BenchmarkZoneAddLargeRRset loads one huge RRset (the pattern that made
// duplicate detection O(n²) before the per-key dedup set): time per op
// must stay flat as the set grows.
func BenchmarkZoneAddLargeRRset(b *testing.B) {
	z := New("example.com.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rr := dnswire.RR{Name: "fat.example.com.", Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Strings: []string{fmt.Sprintf("record-%d", i)}}}
		if err := z.Add(rr); err != nil {
			b.Fatal(err)
		}
	}
}
