package traceg

import (
	"io"
	"math"
	"net/netip"
	"sort"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

func TestBRootRateMatchesConfig(t *testing.T) {
	g, err := BRoot(BRootConfig{
		Duration:    20 * time.Second,
		MedianRate:  500,
		Clients:     5000,
		TCPFraction: 0.03,
		DOFraction:  0.723,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(g)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(st.Records) / st.Duration.Seconds()
	if rate < 400 || rate > 620 {
		t.Errorf("rate = %.0f q/s, want ~500", rate)
	}
	if st.TCPFraction < 0.015 || st.TCPFraction > 0.05 {
		t.Errorf("TCP fraction = %.3f", st.TCPFraction)
	}
	if st.DOFraction < 0.68 || st.DOFraction > 0.77 {
		t.Errorf("DO fraction = %.3f", st.DOFraction)
	}
}

func TestBRootDeterministic(t *testing.T) {
	mk := func() []trace.Entry {
		g, err := BRoot(BRootConfig{Duration: 2 * time.Second, MedianRate: 200, Clients: 100, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		out, err := trace.ReadAll(g)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].Src != b[i].Src || string(a[i].Message) != string(b[i].Message) {
			t.Fatalf("entry %d differs", i)
		}
	}
}

// TestBRootClientSkew checks the Figure 15c shape: a tiny fraction of
// clients carries most of the load and most clients are nearly inactive.
func TestBRootClientSkew(t *testing.T) {
	g, err := BRoot(BRootConfig{Duration: 30 * time.Second, MedianRate: 2000, Clients: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[netip.Addr]int)
	total := 0
	for {
		e, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		counts[e.Src.Addr()]++
		total++
	}
	loads := make([]int, 0, len(counts))
	for _, c := range counts {
		loads = append(loads, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	top1pct := len(loads) / 100
	if top1pct == 0 {
		top1pct = 1
	}
	topLoad := 0
	for _, c := range loads[:top1pct] {
		topLoad += c
	}
	topShare := float64(topLoad) / float64(total)
	if topShare < 0.5 {
		t.Errorf("top 1%% of clients carry %.1f%% of load, want heavy tail (>50%%)", topShare*100)
	}
	inactive := 0
	for _, c := range loads {
		if c < 10 {
			inactive++
		}
	}
	inactiveShare := float64(inactive) / float64(len(loads))
	if inactiveShare < 0.5 {
		t.Errorf("only %.1f%% of clients are near-inactive, want most", inactiveShare*100)
	}
}

func TestSyntheticFixedInterArrival(t *testing.T) {
	for _, gap := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
		g, err := Synthetic(SyntheticConfig{InterArrival: gap, Duration: time.Second, Clients: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		entries, err := trace.ReadAll(g)
		if err != nil {
			t.Fatal(err)
		}
		want := int(time.Second / gap)
		if len(entries) != want {
			t.Errorf("gap %v: %d entries, want %d", gap, len(entries), want)
		}
		for i := 1; i < len(entries); i++ {
			if d := entries[i].Time.Sub(entries[i-1].Time); d != gap {
				t.Fatalf("gap %v: inter-arrival %v at %d", gap, d, i)
			}
		}
	}
}

func TestSyntheticUniqueNames(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{InterArrival: time.Millisecond, Duration: 200 * time.Millisecond, Clients: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := trace.ReadAll(g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var m dnswire.Message
	for _, e := range entries {
		if err := e.Decode(&m); err != nil {
			t.Fatal(err)
		}
		name := m.Question[0].Name
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestRecursiveStats(t *testing.T) {
	g, err := Recursive(RecursiveConfig{Duration: 10 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Zones()) != 549 {
		t.Errorf("zones = %d", len(g.Zones()))
	}
	st, err := ComputeStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Clients > 91 {
		t.Errorf("clients = %d, want <= 91", st.Clients)
	}
	mean := st.MeanInterArriv.Seconds()
	if math.Abs(mean-0.1808) > 0.03 {
		t.Errorf("mean inter-arrival = %.4fs, want ~0.1808", mean)
	}
}

func TestComputeStatsEmptyAndSingle(t *testing.T) {
	st, err := ComputeStats(trace.NewSliceReader(nil))
	if err != nil || st.Records != 0 {
		t.Errorf("empty: %+v %v", st, err)
	}
	g, _ := Synthetic(SyntheticConfig{InterArrival: time.Second, Duration: 1500 * time.Millisecond, Clients: 1})
	st, err = ComputeStats(g)
	if err != nil || st.Records != 2 {
		t.Errorf("two-record stats: %+v %v", st, err)
	}
}

func TestBRootNamesValid(t *testing.T) {
	g, err := BRoot(BRootConfig{Duration: 2 * time.Second, MedianRate: 500, Clients: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var m dnswire.Message
	for {
		e, err := g.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Decode(&m); err != nil {
			t.Fatalf("generated undecodable message: %v", err)
		}
		if !dnswire.ValidName(m.Question[0].Name) {
			t.Fatalf("invalid name %q", m.Question[0].Name)
		}
	}
}
