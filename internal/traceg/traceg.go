// Package traceg synthesizes the trace families of Table 1. Real DITL
// B-Root captures are proprietary (available only via DNS-OARC), so the
// generators reproduce the paper's published statistics instead: median
// per-second rate with second-scale variation, a heavy-tailed client
// population in which roughly 1% of clients carry three quarters of the
// load and ~81% are nearly inactive (Figure 15c), the mid-2016 protocol
// mix (~3% TCP) and DO-bit fraction (72.3%), and the synthetic syn-0..4
// traces with fixed inter-arrival times. Generation is deterministic for
// a given seed and streams entries without materializing the trace.
package traceg

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

// Popular TLDs for query-name synthesis, roughly by traffic share.
var commonTLDs = []string{
	"com", "net", "org", "arpa", "de", "uk", "jp", "fr", "nl", "br",
	"it", "ru", "info", "io", "edu", "gov", "cn", "au", "ca", "eu",
}

// qtypeMix approximates a root server's query-type distribution.
var qtypeMix = []struct {
	t dnswire.Type
	w float64
}{
	{dnswire.TypeA, 0.48},
	{dnswire.TypeAAAA, 0.21},
	{dnswire.TypeNS, 0.08},
	{dnswire.TypeDS, 0.07},
	{dnswire.TypeMX, 0.05},
	{dnswire.TypeTXT, 0.04},
	{dnswire.TypeSOA, 0.04},
	{dnswire.TypePTR, 0.03},
}

// BRootConfig parameterizes a B-Root-like workload.
type BRootConfig struct {
	// Start is the trace epoch.
	Start time.Time
	// Duration is the trace length.
	Duration time.Duration
	// MedianRate is the median queries/second (the paper's B-Root-16
	// median is 38k; scale to taste).
	MedianRate float64
	// RateSigma is the lognormal σ of per-second rate variation.
	// Default 0.12.
	RateSigma float64
	// Clients is the client population size.
	Clients int
	// ClientSkew is the Zipf s parameter for per-client load among the
	// busy population. Default 1.8.
	ClientSkew float64
	// HeavyShare is the fraction of queries from the busy ~1% of clients
	// (Figure 15c: a tiny set of clients contributes three quarters of
	// the load). Default 0.75.
	HeavyShare float64
	// TCPFraction of queries use TCP (mid-2017 B-Root: ~0.03).
	TCPFraction float64
	// DOFraction of queries set the EDNS DO bit (mid-2016: 0.723).
	DOFraction float64
	// JunkFraction of queries ask for nonexistent TLDs, as real root
	// traffic overwhelmingly does. Default 0.35.
	JunkFraction float64
	// BurstProb is the probability that a query continues the previous
	// client's burst instead of drawing a fresh client. Real resolvers
	// emit clustered queries (retries, related lookups) separated by long
	// idle gaps; this clustering is what makes fresh connections dominate
	// non-busy clients in the paper's Figure 15b. Default 0.5.
	BurstProb float64
	// Seed makes the trace reproducible.
	Seed int64
}

func (c *BRootConfig) setDefaults() error {
	if c.Duration <= 0 || c.MedianRate <= 0 || c.Clients <= 0 {
		return fmt.Errorf("traceg: Duration, MedianRate and Clients must be positive")
	}
	if c.Start.IsZero() {
		c.Start = time.Unix(1_492_000_000, 0)
	}
	if c.RateSigma == 0 {
		c.RateSigma = 0.12
	}
	if c.ClientSkew == 0 {
		c.ClientSkew = 1.8
	}
	if c.JunkFraction == 0 {
		c.JunkFraction = 0.35
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.5
	}
	if c.HeavyShare == 0 {
		c.HeavyShare = 0.75
	}
	return nil
}

// BRoot returns a streaming generator of a B-Root-like trace.
func BRoot(cfg BRootConfig) (*BRootGen, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The client population is a two-part mixture: a busy pool of ~1% of
	// clients (resolvers of large networks) carrying HeavyShare of the
	// load with Zipf-skewed popularity, and a long tail of mostly
	// one-shot clients.
	busy := cfg.Clients / 100
	if busy < 1 {
		busy = 1
	}
	zipf := rand.NewZipf(rng, cfg.ClientSkew, 8, uint64(busy-1))
	g := &BRootGen{
		cfg:  cfg,
		rng:  rng,
		zipf: zipf,
		busy: busy,
		now:  cfg.Start,
		end:  cfg.Start.Add(cfg.Duration),
	}
	g.rollRate()
	return g, nil
}

// BRootGen implements trace.Reader.
type BRootGen struct {
	cfg  BRootConfig
	rng  *rand.Rand
	zipf *rand.Zipf

	busy       int
	now        time.Time
	end        time.Time
	epochEnd   time.Time
	epochRate  float64
	serial     uint64
	lastClient uint64
	haveLast   bool
}

// rollRate draws the next one-second epoch's rate.
func (g *BRootGen) rollRate() {
	g.epochRate = g.cfg.MedianRate * math.Exp(g.rng.NormFloat64()*g.cfg.RateSigma)
	g.epochEnd = g.now.Truncate(time.Second).Add(time.Second)
	if !g.epochEnd.After(g.now) {
		g.epochEnd = g.now.Add(time.Second)
	}
}

// Next implements trace.Reader.
func (g *BRootGen) Next() (trace.Entry, error) {
	// Exponential inter-arrival at the current epoch's rate.
	gap := time.Duration(g.rng.ExpFloat64() / g.epochRate * float64(time.Second))
	g.now = g.now.Add(gap)
	for g.now.After(g.epochEnd) {
		g.rollRate()
	}
	if g.now.After(g.end) {
		return trace.Entry{}, io.EOF
	}
	g.serial++

	var idx uint64
	switch {
	case g.haveLast && g.rng.Float64() < g.cfg.BurstProb:
		idx = g.lastClient
	case g.rng.Float64() < g.cfg.HeavyShare:
		idx = g.zipf.Uint64()
	default:
		idx = uint64(g.busy + g.rng.Intn(g.cfg.Clients-g.busy+1))
	}
	g.lastClient, g.haveLast = idx, true
	client := g.clientAddr(idx)
	proto := trace.UDP
	if g.rng.Float64() < g.cfg.TCPFraction {
		proto = trace.TCP
	}
	name := g.queryName()
	qt := pickQType(g.rng)
	// A small share of root traffic targets the apex itself: priming
	// (./NS), key fetches (./DNSKEY), and SOA checks.
	if g.rng.Float64() < 0.03 {
		name = "."
		switch g.rng.Intn(3) {
		case 0:
			qt = dnswire.TypeNS
		case 1:
			qt = dnswire.TypeDNSKEY
		default:
			qt = dnswire.TypeSOA
		}
	}
	m := dnswire.NewQuery(uint16(g.rng.Intn(1<<16)), name, qt)
	m.Header.RD = g.rng.Float64() < 0.2 // some stubs leak RD to the root
	if g.rng.Float64() < g.cfg.DOFraction {
		m.Edns = &dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize, DO: true}
	} else if g.rng.Float64() < 0.5 {
		m.Edns = &dnswire.EDNS{UDPSize: 1232}
	}
	wire, err := m.Pack(nil)
	if err != nil {
		return trace.Entry{}, err
	}
	return trace.Entry{
		Time:     g.now,
		Src:      netip.AddrPortFrom(client, uint16(1024+g.rng.Intn(64000))),
		Dst:      netip.MustParseAddrPort("199.9.14.201:53"), // b.root-servers.net
		Protocol: proto,
		Message:  wire,
	}, nil
}

// clientAddr maps a client index to a stable synthetic address.
func (g *BRootGen) clientAddr(idx uint64) netip.Addr {
	// Spread across 10.x.x.x deterministically.
	return netip.AddrFrom4([4]byte{
		10,
		byte(idx >> 16),
		byte(idx >> 8),
		byte(idx),
	})
}

// queryName draws a realistic root-traffic query name.
func (g *BRootGen) queryName() string {
	if g.rng.Float64() < g.cfg.JunkFraction {
		// Chrome-style junk TLD probes and typos.
		return randLabel(g.rng, 7+g.rng.Intn(9)) + "."
	}
	tld := commonTLDs[g.rng.Intn(len(commonTLDs))]
	switch g.rng.Intn(4) {
	case 0:
		return tld + "."
	case 1:
		return randLabel(g.rng, 3+g.rng.Intn(10)) + "." + tld + "."
	default:
		return "www." + randLabel(g.rng, 3+g.rng.Intn(10)) + "." + tld + "."
	}
}

func randLabel(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(26)] // letters dominate
		if i > 0 && rng.Intn(8) == 0 {
			b[i] = alphabet[26+rng.Intn(10)]
		}
	}
	return string(b)
}

func pickQType(rng *rand.Rand) dnswire.Type {
	x := rng.Float64()
	for _, m := range qtypeMix {
		if x < m.w {
			return m.t
		}
		x -= m.w
	}
	return dnswire.TypeA
}

// SyntheticConfig parameterizes a syn-N trace: fixed inter-arrival, each
// query carrying a unique name so replays can be matched afterwards
// (§4.1).
type SyntheticConfig struct {
	Start time.Time
	// InterArrival is the fixed gap between queries (0.1ms–1s in Table 1).
	InterArrival time.Duration
	// Duration is the trace length (60 minutes in Table 1).
	Duration time.Duration
	// Clients caps the distinct source addresses (Table 1: 3k–10k).
	Clients int
	// BaseName anchors the unique names, default "example.com.".
	BaseName string
	Seed     int64
}

// Synthetic returns a fixed-inter-arrival generator.
func Synthetic(cfg SyntheticConfig) (*SyntheticGen, error) {
	if cfg.InterArrival <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("traceg: InterArrival and Duration must be positive")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1000
	}
	if cfg.BaseName == "" {
		cfg.BaseName = "example.com."
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Unix(1_492_000_000, 0)
	}
	return &SyntheticGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), now: cfg.Start}, nil
}

// SyntheticGen implements trace.Reader.
type SyntheticGen struct {
	cfg    SyntheticConfig
	rng    *rand.Rand
	now    time.Time
	serial uint64
}

// Next implements trace.Reader.
func (g *SyntheticGen) Next() (trace.Entry, error) {
	if g.serial > 0 {
		g.now = g.now.Add(g.cfg.InterArrival)
	}
	if g.now.Sub(g.cfg.Start) >= g.cfg.Duration {
		return trace.Entry{}, io.EOF
	}
	g.serial++
	name := fmt.Sprintf("u%d.%s", g.serial, g.cfg.BaseName)
	m := dnswire.NewQuery(uint16(g.serial), name, dnswire.TypeA)
	wire, err := m.Pack(nil)
	if err != nil {
		return trace.Entry{}, err
	}
	client := uint64(g.rng.Intn(g.cfg.Clients))
	return trace.Entry{
		Time:     g.now,
		Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, byte(client >> 16), byte(client >> 8), byte(client)}), 5353),
		Dst:      netip.MustParseAddrPort("192.0.2.53:53"),
		Protocol: trace.UDP,
		Message:  wire,
	}, nil
}

// RecursiveConfig parameterizes a Rec-17-like department-level recursive
// trace: slow (mean inter-arrival ~0.18s), few clients (~91), names
// spread over hundreds of zones.
type RecursiveConfig struct {
	Start    time.Time
	Duration time.Duration
	// MeanInterArrival between queries; default 180.8ms (Table 1).
	MeanInterArrival time.Duration
	// Clients defaults to 91 (Table 1).
	Clients int
	// Zones defaults to 549 distinct SLDs (§2.4).
	Zones int
	Seed  int64
}

// Recursive returns a recursive-workload generator.
func Recursive(cfg RecursiveConfig) (*RecursiveGen, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("traceg: Duration must be positive")
	}
	if cfg.MeanInterArrival <= 0 {
		cfg.MeanInterArrival = 180800 * time.Microsecond
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 91
	}
	if cfg.Zones <= 0 {
		cfg.Zones = 549
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Unix(1_504_286_520, 0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &RecursiveGen{cfg: cfg, rng: rng, now: cfg.Start}
	g.zones = make([]string, cfg.Zones)
	for i := range g.zones {
		tld := commonTLDs[rng.Intn(len(commonTLDs))]
		g.zones[i] = randLabel(rng, 4+rng.Intn(10)) + "." + tld + "."
	}
	// Zone popularity is itself skewed.
	g.zipf = rand.NewZipf(rng, 1.2, 4, uint64(cfg.Zones-1))
	return g, nil
}

// RecursiveGen implements trace.Reader.
type RecursiveGen struct {
	cfg   RecursiveConfig
	rng   *rand.Rand
	zones []string
	zipf  *rand.Zipf
	now   time.Time
}

// Zones returns the SLD origins the generator queries, so experiments can
// build the matching hierarchy.
func (g *RecursiveGen) Zones() []string {
	return append([]string(nil), g.zones...)
}

// Next implements trace.Reader.
func (g *RecursiveGen) Next() (trace.Entry, error) {
	gap := time.Duration(g.rng.ExpFloat64() * float64(g.cfg.MeanInterArrival))
	g.now = g.now.Add(gap)
	if g.now.Sub(g.cfg.Start) >= g.cfg.Duration {
		return trace.Entry{}, io.EOF
	}
	zone := g.zones[g.zipf.Uint64()]
	var name string
	switch g.rng.Intn(3) {
	case 0:
		name = zone
	case 1:
		name = "www." + zone
	default:
		name = randLabel(g.rng, 2+g.rng.Intn(8)) + "." + zone
	}
	qt := dnswire.TypeA
	if g.rng.Float64() < 0.3 {
		qt = dnswire.TypeAAAA
	}
	m := dnswire.NewQuery(uint16(g.rng.Intn(1<<16)), name, qt)
	m.Header.RD = true
	wire, err := m.Pack(nil)
	if err != nil {
		return trace.Entry{}, err
	}
	client := g.rng.Intn(g.cfg.Clients)
	return trace.Entry{
		Time:     g.now,
		Src:      netip.AddrPortFrom(netip.AddrFrom4([4]byte{192, 168, 1, byte(client)}), uint16(1024+g.rng.Intn(60000))),
		Dst:      netip.MustParseAddrPort("192.168.1.254:53"),
		Protocol: trace.UDP,
		Message:  wire,
	}, nil
}

// Stats summarizes a trace in Table 1's columns.
type Stats struct {
	Records        int
	Clients        int
	Duration       time.Duration
	MeanInterArriv time.Duration
	StdInterArriv  time.Duration
	TCPFraction    float64
	DOFraction     float64
}

// ComputeStats drains r and produces Table 1 statistics.
func ComputeStats(r trace.Reader) (*Stats, error) {
	var st Stats
	clients := make(map[netip.Addr]struct{})
	var prev time.Time
	var first time.Time
	var sum, sumSq float64
	var tcp, do int
	var m dnswire.Message
	for {
		e, err := r.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if st.Records == 0 {
			first = e.Time
		} else {
			gap := e.Time.Sub(prev).Seconds()
			sum += gap
			sumSq += gap * gap
		}
		prev = e.Time
		st.Records++
		clients[e.Src.Addr()] = struct{}{}
		if e.Protocol != trace.UDP {
			tcp++
		}
		if err := m.Unpack(e.Message); err == nil && m.Edns != nil && m.Edns.DO {
			do++
		}
	}
	st.Clients = len(clients)
	if st.Records > 1 {
		n := float64(st.Records - 1)
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		st.MeanInterArriv = time.Duration(mean * float64(time.Second))
		st.StdInterArriv = time.Duration(math.Sqrt(variance) * float64(time.Second))
		st.Duration = prev.Sub(first)
	}
	if st.Records > 0 {
		st.TCPFraction = float64(tcp) / float64(st.Records)
		st.DOFraction = float64(do) / float64(st.Records)
	}
	return &st, nil
}
