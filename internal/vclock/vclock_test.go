package vclock

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRealClockBasics sanity-checks the wall-clock veneer.
func TestRealClockBasics(t *testing.T) {
	c := Or(nil)
	if !IsReal(c) || c != Real() {
		t.Fatal("Or(nil) must resolve to the real clock")
	}
	before := c.Now()
	fired := make(chan time.Time, 1)
	tm := c.AfterFunc(time.Millisecond, func() { fired <- time.Now() })
	select {
	case at := <-fired:
		if at.Before(before) {
			t.Errorf("AfterFunc fired before scheduling: %v < %v", at, before)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if tm.Stop() {
		t.Error("Stop after fire reported pending")
	}
	nt := c.NewTimer(time.Millisecond)
	select {
	case <-nt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real NewTimer never fired")
	}
}

// TestSimEventOrder: events fire in (due, schedule-order) order, and the
// clock reads each event's timestamp while it runs.
func TestSimEventOrder(t *testing.T) {
	c := NewSim(time.Time{})
	start := c.Now()
	var log []string
	at := func(d time.Duration, tag string) {
		c.AfterFunc(d, func() {
			log = append(log, fmt.Sprintf("%s@%v", tag, c.Now().Sub(start)))
		})
	}
	at(30*time.Millisecond, "c")
	at(10*time.Millisecond, "a")
	at(10*time.Millisecond, "a2") // same due: schedule order breaks the tie
	at(20*time.Millisecond, "b")
	end := c.Run()
	want := "a@10ms a2@10ms b@20ms c@30ms"
	if got := strings.Join(log, " "); got != want {
		t.Errorf("fire order %q, want %q", got, want)
	}
	if end.Sub(start) != 30*time.Millisecond {
		t.Errorf("Run returned %v after start, want 30ms", end.Sub(start))
	}
}

// TestSimNestedScheduling: a callback scheduling further events keeps the
// total order; time only moves forward.
func TestSimNestedScheduling(t *testing.T) {
	c := NewSim(time.Time{})
	start := c.Now()
	var fires []time.Duration
	var chain func(depth int)
	chain = func(depth int) {
		fires = append(fires, c.Now().Sub(start))
		if depth < 5 {
			c.AfterFunc(10*time.Millisecond, func() { chain(depth + 1) })
		}
	}
	c.AfterFunc(0, func() { chain(0) })
	c.Run()
	if len(fires) != 6 {
		t.Fatalf("chain fired %d times, want 6", len(fires))
	}
	for i, d := range fires {
		if want := time.Duration(i) * 10 * time.Millisecond; d != want {
			t.Errorf("fire %d at %v, want %v", i, d, want)
		}
	}
}

// TestSimTimerStopReset: Stop prevents delivery, Reset re-arms from the
// current simulated instant with standard-library return values.
func TestSimTimerStopReset(t *testing.T) {
	c := NewSim(time.Time{})
	var fired atomic.Int64
	tm := c.AfterFunc(10*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Error("Stop on a pending timer must report true")
	}
	if tm.Stop() {
		t.Error("second Stop must report false")
	}
	c.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
	if tm.Reset(5 * time.Millisecond) {
		t.Error("Reset of a stopped timer must report false")
	}
	if !tm.Reset(7 * time.Millisecond) {
		t.Error("Reset of a pending timer must report true")
	}
	c.Advance(7 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("reset timer fired %d times, want 1", fired.Load())
	}

	nt := c.NewTimer(10 * time.Millisecond)
	c.Advance(10 * time.Millisecond)
	select {
	case at := <-nt.C():
		if got := at.Sub(c.Now()); got != 0 {
			t.Errorf("timer delivered %v, clock reads %v", at, c.Now())
		}
	default:
		t.Fatal("channel timer did not deliver")
	}
}

// TestSimSleepBarrier: registered goroutines sleeping in a ping-pong must
// interleave deterministically — the driver only advances while all are
// parked — so two runs produce identical logs.
func TestSimSleepBarrier(t *testing.T) {
	run := func() string {
		c := NewSim(time.Time{})
		start := c.Now()
		var mu sync.Mutex
		var log []string
		note := func(who string) {
			mu.Lock()
			log = append(log, fmt.Sprintf("%s@%v", who, c.Now().Sub(start)))
			mu.Unlock()
		}
		for _, g := range []struct {
			name string
			gap  time.Duration
		}{{"fast", 10 * time.Millisecond}, {"slow", 25 * time.Millisecond}} {
			g := g
			c.Go(func() {
				for i := 0; i < 4; i++ {
					c.Sleep(g.gap)
					note(g.name)
				}
			})
		}
		c.Run()
		return strings.Join(log, " ")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same schedule diverged:\n  %s\n  %s", a, b)
	}
	want := "fast@10ms fast@20ms slow@25ms fast@30ms fast@40ms slow@50ms slow@75ms slow@100ms"
	if a != want {
		t.Errorf("interleaving %q, want %q", a, want)
	}
}

// TestSimAdvancePartial: Advance stops at its target; later events stay
// scheduled.
func TestSimAdvancePartial(t *testing.T) {
	c := NewSim(time.Time{})
	var fired []int
	c.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	c.AfterFunc(30*time.Millisecond, func() { fired = append(fired, 2) })
	c.Advance(20 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("after Advance(20ms) fired=%v, want [1]", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", c.Pending())
	}
	c.Advance(10 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("after Advance(30ms total) fired=%v, want [1 2]", fired)
	}
}

// TestSimWithTimeout: a WithTimeout context over a SimClock expires in
// simulated time with DeadlineExceeded, and cancellation stops the timer.
func TestSimWithTimeout(t *testing.T) {
	c := NewSim(time.Time{})
	ctx, cancel := WithTimeout(context.Background(), c, 50*time.Millisecond)
	defer cancel()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh context errored: %v", err)
	}
	if d, ok := ctx.Deadline(); !ok || d.Sub(c.Now()) != 50*time.Millisecond {
		t.Fatalf("deadline %v ok=%v, want now+50ms", d, ok)
	}
	c.Advance(49 * time.Millisecond)
	if err := ctx.Err(); err != nil {
		t.Fatalf("context errored before deadline: %v", err)
	}
	c.Advance(time.Millisecond)
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context not done at deadline")
	}
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Fatalf("Err() = %v, want DeadlineExceeded", err)
	}

	ctx2, cancel2 := WithTimeout(context.Background(), c, 10*time.Millisecond)
	cancel2()
	c.Advance(20 * time.Millisecond)
	if err := ctx2.Err(); err != context.Canceled {
		t.Fatalf("canceled context Err() = %v, want Canceled", err)
	}
}

// TestSimConcurrentScheduling is the vclock-level -race hammer:
// unregistered goroutines schedule and stop timers while a driver
// advances. Only race-freedom and conservation are asserted.
func TestSimConcurrentScheduling(t *testing.T) {
	c := NewSim(time.Time{})
	var fired atomic.Int64
	var scheduled atomic.Int64
	var stopped atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Microsecond
				tm := c.AfterFunc(d, func() { fired.Add(1) })
				scheduled.Add(1)
				if rng.Intn(4) == 0 && tm.Stop() {
					stopped.Add(1)
				}
			}
		}(int64(g + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c.Advance(100 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-done
	c.Run()
	if got, want := fired.Load()+stopped.Load(), scheduled.Load(); got != want {
		t.Errorf("fired(%d) + stopped(%d) = %d, want scheduled = %d",
			fired.Load(), stopped.Load(), got, want)
	}
}
