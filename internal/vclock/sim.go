package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// SimClock is a discrete-event simulated clock: a mutex-protected event
// heap ordered by (due time, schedule order) plus an idle-detection
// barrier. Time never flows on its own — it jumps, event to event, under
// a driving goroutine calling Run or Advance. Between two events the
// driver waits until every goroutine registered with the scheduler (via
// Go, or blocked in Sleep) is parked, so exactly one registered
// goroutine is runnable at any instant and the interleaving — and
// therefore the whole experiment — is a pure function of the scheduled
// event sequence. That is what makes a seeded chaos scenario
// bit-reproducible and lets a simulated day replay in seconds.
//
// Rules for vclock-safe code (see DESIGN.md "Virtual time"):
//
//   - AfterFunc callbacks run synchronously on the driver, in timestamp
//     order (ties broken by scheduling order). They may call Now,
//     AfterFunc, NewTimer, Stop and Reset, and any amount of plain
//     computation — but must never block on the clock (Sleep inside a
//     callback deadlocks the driver) or on another goroutine.
//   - Goroutines that Sleep must be registered with Go so the barrier
//     accounts for them; a Sleep from an unregistered goroutine still
//     wakes at the right simulated time but without the exclusive-run
//     guarantee.
//   - Timer channels (NewTimer) receive fire times in event order, but
//     their *receivers* are outside the barrier: use them to drive
//     real-clock-shaped code (like the replay wheel's run loop) under
//     simulated time, not for bit-exact experiments.
//
// Now, AfterFunc, NewTimer, Sleep, Stop and Reset are safe from any
// goroutine, concurrently with a driver in Run or Advance — the heap is
// the serialization point (see the -race hammer in netsim's quick test).
type SimClock struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast when busy reaches zero

	now time.Time
	h   simHeap
	seq uint64

	// busy counts registered goroutines currently runnable. The driver
	// fires the next event only when busy <= 0 (an unregistered sleeper
	// can push it negative; that is harmless — see Sleep).
	busy int
}

// NewSim returns a SimClock starting at start. A zero start gets a fixed
// arbitrary epoch so two independently constructed clocks agree — never
// the wall clock, which would leak real time into simulated runs.
func NewSim(start time.Time) *SimClock {
	if start.IsZero() {
		start = time.Unix(1700000000, 0)
	}
	c := &SimClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// simEvent is one scheduled occurrence. Cancellation (timer Stop/Reset)
// is lazy: the event stays in the heap and is skipped when popped.
type simEvent struct {
	due      time.Time
	seq      uint64
	fire     func(now time.Time)
	canceled bool
}

// simHeap is a min-heap of events by (due, seq).
type simHeap []*simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// pushLocked schedules fire at due; callers hold c.mu.
func (c *SimClock) pushLocked(due time.Time, fire func(now time.Time)) *simEvent {
	if due.Before(c.now) {
		due = c.now
	}
	ev := &simEvent{due: due, seq: c.seq, fire: fire}
	c.seq++
	heap.Push(&c.h, ev)
	return ev
}

// Now returns the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Go spawns f as a goroutine registered with the scheduler: the driver
// counts it runnable until it exits or parks in Sleep. All goroutines of
// a bit-exact experiment must be spawned this way.
func (c *SimClock) Go(f func()) {
	c.mu.Lock()
	c.busy++
	c.mu.Unlock()
	go func() {
		defer c.release()
		f()
	}()
}

// release marks one registered goroutine parked or exited.
func (c *SimClock) release() {
	c.mu.Lock()
	c.busy--
	if c.busy <= 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Sleep parks the caller until the simulated clock passes now+d. The
// wake is an event: the driver credits the sleeper as runnable *before*
// its next idle check, so a registered sleeper is back inside the
// barrier the instant its wake fires.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	c.mu.Lock()
	c.busy--
	if c.busy <= 0 {
		c.cond.Broadcast()
	}
	c.pushLocked(c.now.Add(d), func(time.Time) {
		c.mu.Lock()
		c.busy++
		c.mu.Unlock()
		close(ch)
	})
	c.mu.Unlock()
	<-ch
}

// simTimer implements Timer on a SimClock. Channel timers deliver fire
// times on a 1-buffered channel; AfterFunc timers run their callback
// synchronously on the driver.
type simTimer struct {
	clk *SimClock
	ch  chan time.Time // nil for AfterFunc timers
	f   func()         // nil for channel timers

	// ev is the currently armed event; nil once fired or stopped.
	// Guarded by clk.mu.
	ev *simEvent
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

// fire is the armed event's body.
func (t *simTimer) fire(now time.Time) {
	t.clk.mu.Lock()
	t.ev = nil
	t.clk.mu.Unlock()
	if t.f != nil {
		t.f()
		return
	}
	select {
	case t.ch <- now:
	default: // an unconsumed previous fire keeps the slot; drop like time.Tick would
	}
}

// Stop disarms the timer, reporting whether it was still pending.
func (t *simTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if t.ev == nil {
		return false
	}
	t.ev.canceled = true
	t.ev = nil
	return true
}

// Reset re-arms the timer for d from the current simulated time,
// reporting whether it was still pending.
func (t *simTimer) Reset(d time.Duration) bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	active := t.ev != nil
	if active {
		t.ev.canceled = true
	}
	t.ev = t.clk.pushLocked(t.clk.now.Add(d), t.fire)
	return active
}

// AfterFunc schedules f to run at now+d on the driving goroutine.
func (c *SimClock) AfterFunc(d time.Duration, f func()) Timer {
	t := &simTimer{clk: c, f: f}
	c.mu.Lock()
	t.ev = c.pushLocked(c.now.Add(d), t.fire)
	c.mu.Unlock()
	return t
}

// NewTimer returns a channel timer firing at now+d.
func (c *SimClock) NewTimer(d time.Duration) Timer {
	t := &simTimer{clk: c, ch: make(chan time.Time, 1)}
	c.mu.Lock()
	t.ev = c.pushLocked(c.now.Add(d), t.fire)
	c.mu.Unlock()
	return t
}

// waitIdleLocked blocks until no registered goroutine is runnable;
// callers hold c.mu.
func (c *SimClock) waitIdleLocked() {
	for c.busy > 0 {
		c.cond.Wait()
	}
}

// popDueLocked removes and returns the earliest live event due at or
// before limit (zero limit = no bound); callers hold c.mu.
func (c *SimClock) popDueLocked(limit time.Time) *simEvent {
	for c.h.Len() > 0 {
		ev := c.h[0]
		if !limit.IsZero() && ev.due.After(limit) {
			return nil
		}
		heap.Pop(&c.h)
		if ev.canceled {
			continue
		}
		return ev
	}
	return nil
}

// step fires the next live event due at or before limit, returning false
// when none remains. The idle barrier runs before each fire.
func (c *SimClock) step(limit time.Time) bool {
	c.mu.Lock()
	c.waitIdleLocked()
	ev := c.popDueLocked(limit)
	if ev == nil {
		c.mu.Unlock()
		return false
	}
	if ev.due.After(c.now) {
		c.now = ev.due
	}
	now := c.now
	c.mu.Unlock()
	ev.fire(now)
	return true
}

// Advance moves simulated time forward by d, firing every due event in
// timestamp order (idle barrier between events), and returns the new
// simulated time. Safe to call concurrently with event scheduling; two
// concurrent drivers serialize per event.
func (c *SimClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	target := c.now.Add(d)
	c.mu.Unlock()
	for c.step(target) {
	}
	c.mu.Lock()
	c.waitIdleLocked()
	if target.After(c.now) {
		c.now = target
	}
	now := c.now
	c.mu.Unlock()
	return now
}

// Run fires events until the heap is empty and every registered
// goroutine is parked, then returns the final simulated time. This is
// the "replay a simulated day in seconds" entry point: schedule the
// workload, Run, read the counters.
func (c *SimClock) Run() time.Time {
	for c.step(time.Time{}) {
	}
	c.mu.Lock()
	c.waitIdleLocked()
	// Parking a goroutine may have scheduled new work; the caller's
	// loop below re-enters step until both conditions hold at once.
	for c.h.Len() > 0 {
		c.mu.Unlock()
		for c.step(time.Time{}) {
		}
		c.mu.Lock()
		c.waitIdleLocked()
	}
	now := c.now
	c.mu.Unlock()
	return now
}

// Pending reports the number of scheduled (live) events — a debugging
// aid for tests asserting a quiesced clock.
func (c *SimClock) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.h {
		if !ev.canceled {
			n++
		}
	}
	return n
}
