// Package vclock abstracts time for the replay pipeline: a Clock
// interface over the handful of primitives the repo's time-dependent
// code actually uses (Now, Sleep, AfterFunc, NewTimer), a real-time
// implementation that is a thin veneer over package time, and a
// discrete-event SimClock (sim.go) under which simulated time advances
// only through scheduled events — so a simulated day of trace replays in
// seconds of CPU and a seeded scenario is bit-reproducible.
//
// Everything defaults to real time: injection sites take a nil Clock and
// resolve it with Or, so production paths are untouched. Only code that
// explicitly constructs a SimClock and drives it with Run/Advance runs in
// virtual time. This is the INET/OMNeT++ discrete-event direction applied
// to LDplayer's what-if experiments: TTL policies, link RTTs, and retry
// timers become cheap parameter scans instead of wall-clock replays.
package vclock

import (
	"context"
	"sync"
	"time"
)

// Clock supplies time. Implementations: Real (wall clock) and SimClock
// (discrete-event simulated time).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the caller for d of this clock's time. Under a
	// SimClock the block is an idle-barrier event: the driver may jump
	// the simulated clock straight to the wake time.
	Sleep(d time.Duration)
	// AfterFunc schedules f to run once after d. Under a SimClock f runs
	// synchronously on the driving goroutine (inside Run/Advance), in
	// timestamp order against every other scheduled event; f must not
	// block on the clock.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTimer returns a timer that delivers the fire time on C after d.
	NewTimer(d time.Duration) Timer
}

// Timer is the portable subset of *time.Timer behaviour the pipeline
// uses. Stop and Reset carry the standard-library semantics (the return
// value reports whether the timer was still pending).
type Timer interface {
	// C returns the delivery channel. AfterFunc timers have no channel
	// and return nil.
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// realClock implements Clock on the wall clock. It is an empty
// comparable struct so Real() == Real() holds and call sites can test
// "is this the real clock" to keep real-time-only optimizations (like
// the timing wheel's release spin) off simulated paths.
type realClock struct{}

// Real returns the wall-clock Clock.
func Real() Clock { return realClock{} }

// Or resolves an injected clock: c itself, or the real clock when c is
// nil. The standard default-to-real idiom at injection sites.
func Or(c Clock) Clock {
	if c == nil {
		return Real()
	}
	return c
}

// IsReal reports whether c is the wall clock (or nil, which resolves to
// it).
func IsReal(c Clock) bool {
	return c == nil || c == Real()
}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{t: time.AfterFunc(d, f)}
}

func (realClock) NewTimer(d time.Duration) Timer {
	return realTimer{t: time.NewTimer(d)}
}

// realTimer adapts *time.Timer to the Timer interface.
type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time        { return rt.t.C }
func (rt realTimer) Stop() bool                 { return rt.t.Stop() }
func (rt realTimer) Reset(d time.Duration) bool { return rt.t.Reset(d) }

// WithTimeout is context.WithTimeout against an arbitrary clock: on the
// real clock it is exactly context.WithTimeout; on any other clock the
// deadline is an AfterFunc event, so a resolver attempt timeout or a
// replay drain deadline expires in simulated time. The returned
// CancelFunc releases the timer and must be called.
func WithTimeout(parent context.Context, c Clock, d time.Duration) (context.Context, context.CancelFunc) {
	if IsReal(c) {
		return context.WithTimeout(parent, d)
	}
	inner, cancel := context.WithCancel(parent)
	dc := &deadlineCtx{Context: inner, deadline: c.Now().Add(d)}
	t := c.AfterFunc(d, func() {
		dc.mu.Lock()
		if inner.Err() == nil {
			dc.timedOut = true
		}
		dc.mu.Unlock()
		cancel()
	})
	return dc, func() {
		t.Stop()
		cancel()
	}
}

// deadlineCtx reports a virtual deadline over a cancelable context and
// turns a timer-driven cancellation into context.DeadlineExceeded.
type deadlineCtx struct {
	context.Context
	deadline time.Time

	mu       sync.Mutex
	timedOut bool
}

// Deadline reports the virtual deadline.
func (dc *deadlineCtx) Deadline() (time.Time, bool) { return dc.deadline, true }

// Err returns DeadlineExceeded when the virtual deadline fired, else the
// inner context's error.
func (dc *deadlineCtx) Err() error {
	dc.mu.Lock()
	timedOut := dc.timedOut
	dc.mu.Unlock()
	if timedOut {
		return context.DeadlineExceeded
	}
	return dc.Context.Err()
}
