package chaostest

import (
	"context"
	"math"
	"testing"
	"time"

	"ldplayer/internal/netsim"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
)

// The seeded chaos scenarios: each stands up the full replay pipeline
// over an impaired virtual network and asserts an analytic invariant of
// the fault model.

// TestScenarioLossRetransmitBound: with per-attempt loss p on the query
// link and r retransmissions, each attempt fails independently, so the
// answered fraction must approach 1 − p^(r+1).
func TestScenarioLossRetransmitBound(t *testing.T) {
	const (
		p       = 0.4
		retries = 2
		queries = 400
	)
	res, err := Run(context.Background(), Scenario{
		Queries:  queries,
		Sources:  8,
		Gap:      100 * time.Microsecond, // pace the trace so loopback never drops
		Protocol: trace.UDP,
		RTT:      time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Drop: p,
			Seed: 42,
		},
		Replay: replay.Config{
			UDPRetries:      retries,
			UDPRetryTimeout: 30 * time.Millisecond,
			DrainTimeout:    3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries {
		t.Fatalf("sent = %d, want %d", st.Sent, queries)
	}
	want := 1 - math.Pow(p, retries+1) // 0.936
	got := float64(st.Responses) / float64(st.Sent)
	// Binomial sd at N=400 is ~0.012; 0.055 is a >4-sigma tolerance.
	if math.Abs(got-want) > 0.055 {
		t.Errorf("answered fraction = %.3f, want %.3f ± 0.055 (responses=%d giveups=%d)",
			got, want, st.Responses, st.Giveups)
	}
	if st.UDPRetransmits == 0 {
		t.Error("no retransmissions under 40% loss")
	}
	if st.Responses+st.Unanswered != st.Sent {
		t.Errorf("accounting leak: responses(%d) + unanswered(%d) != sent(%d)",
			st.Responses, st.Unanswered, st.Sent)
	}
	// Every first transmission crossed the impaired query link, plus the
	// retransmissions (a giveup's final resend may still be in flight when
	// the run ends, so this is a lower bound through Sent).
	if res.QueryLink.Offered < st.Sent {
		t.Errorf("query link offered %d, want >= sent = %d", res.QueryLink.Offered, st.Sent)
	}
	if res.QueryLink.Dropped == 0 {
		t.Error("no datagrams dropped at 40% loss; scenario is vacuous")
	}
	if res.RouteDrops != 0 {
		t.Errorf("route drops = %d, want 0", res.RouteDrops)
	}
}

// TestScenarioReorderKeepsTCPFraming: heavy reordering and jitter on both
// links may permute responses arbitrarily, but the gateway re-frames each
// message atomically, so the replay client's TCP stream must stay intact:
// every query answered, zero errors.
func TestScenarioReorderKeepsTCPFraming(t *testing.T) {
	const queries = 60
	imp := netsim.Impairment{
		Reorder:       0.4,
		ReorderWindow: 20 * time.Millisecond,
		Jitter:        3 * time.Millisecond,
		Seed:          7,
	}
	res, err := Run(context.Background(), Scenario{
		Queries:            queries,
		Sources:            4,
		Protocol:           trace.TCP,
		RTT:                time.Millisecond,
		QueryImpairment:    imp,
		ResponseImpairment: imp,
		Replay: replay.Config{
			DrainTimeout: 3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries || st.Responses != queries {
		t.Errorf("sent=%d responses=%d, want %d/%d: reordering corrupted the stream",
			st.Sent, st.Responses, queries, queries)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	if res.QueryLink.Reordered+res.ResponseLink.Reordered == 0 {
		t.Error("no datagrams were actually reordered; scenario is vacuous")
	}
}

// TestScenarioDuplicateNoDoubleCount: dup=1 duplicates every query, the
// meta server answers each copy, and the replay engine must still count
// each query answered exactly once.
func TestScenarioDuplicateNoDoubleCount(t *testing.T) {
	const queries = 40
	res, err := Run(context.Background(), Scenario{
		Queries:  queries,
		Sources:  4,
		Protocol: trace.UDP,
		RTT:      time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Duplicate: 1,
			Seed:      9,
		},
		Replay: replay.Config{
			DrainTimeout: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Responses != queries {
		t.Errorf("responses = %d, want %d (duplicates must not double-count)", st.Responses, queries)
	}
	if st.Duplicates < queries*3/4 {
		t.Errorf("duplicates = %d, want ~%d surplus responses detected", st.Duplicates, queries)
	}
	if res.QueryLink.Duplicated != queries {
		t.Errorf("link duplicated %d datagrams, want %d", res.QueryLink.Duplicated, queries)
	}
	if st.Unanswered != 0 {
		t.Errorf("unanswered = %d", st.Unanswered)
	}
}

// TestScenarioBlackholeTerminates: 100% loss must never hang the replay —
// once every query has exhausted its retransmission budget the drain
// loop sees nothing outstanding and the run ends before the deadline,
// with every query accounted unanswered.
func TestScenarioBlackholeTerminates(t *testing.T) {
	const queries = 30
	res, err := Run(context.Background(), Scenario{
		Queries:  queries,
		Sources:  4,
		Protocol: trace.UDP,
		RTT:      time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Drop: 1,
			Seed: 3,
		},
		Replay: replay.Config{
			UDPRetries:      1,
			UDPRetryTimeout: 30 * time.Millisecond,
			DrainTimeout:    5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries || st.Responses != 0 {
		t.Errorf("sent=%d responses=%d, want %d/0", st.Sent, st.Responses, queries)
	}
	if st.Unanswered != queries {
		t.Errorf("unanswered = %d, want %d (every query must be accounted)", st.Unanswered, queries)
	}
	if st.Giveups != queries {
		t.Errorf("giveups = %d, want %d", st.Giveups, queries)
	}
	if res.Elapsed > 4*time.Second {
		t.Errorf("blackholed run took %v; must terminate before the 5s drain deadline", res.Elapsed)
	}
	if res.QueryLink.Dropped != res.QueryLink.Offered {
		t.Errorf("blackhole leaked: dropped %d of %d offered", res.QueryLink.Dropped, res.QueryLink.Offered)
	}
}

// TestScenarioSeedStability runs the loss scenario twice with the same
// seed and small sequentially-paced load: the impairment decision
// sequence is a pure function of seed and arrival order, so the two runs
// must drop the same number of datagrams.
func TestScenarioSeedStability(t *testing.T) {
	run := func() Result {
		t.Helper()
		res, err := Run(context.Background(), Scenario{
			Queries:  40,
			Sources:  1, // one querier socket => sequential sends
			Gap:      2 * time.Millisecond,
			Protocol: trace.UDP,
			QueryImpairment: netsim.Impairment{
				Drop: 0.5,
				Seed: 1234,
			},
			Replay: replay.Config{
				DrainTimeout: time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.QueryLink.Dropped != b.QueryLink.Dropped || a.Stats.Responses != b.Stats.Responses {
		t.Errorf("same seed diverged: run A dropped %d / answered %d, run B dropped %d / answered %d",
			a.QueryLink.Dropped, a.Stats.Responses, b.QueryLink.Dropped, b.Stats.Responses)
	}
}
