package chaostest

import (
	"context"
	"testing"
	"time"

	"ldplayer/internal/netsim"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
)

// The seeded chaos scenarios. The loss/duplicate/blackhole/seed-
// stability invariants moved to virtual time (sim_test.go), where they
// run in microseconds with exact accounting instead of drain windows;
// what stays here is the coverage only real sockets can give — the
// gateway's TCP re-framing under reordering, and the batched server
// behind a real lossy relay (server_chaos_test.go).

// TestScenarioReorderKeepsTCPFraming: heavy reordering and jitter on both
// links may permute responses arbitrarily, but the gateway re-frames each
// message atomically, so the replay client's TCP stream must stay intact:
// every query answered, zero errors.
func TestScenarioReorderKeepsTCPFraming(t *testing.T) {
	const queries = 60
	imp := netsim.Impairment{
		Reorder:       0.4,
		ReorderWindow: 20 * time.Millisecond,
		Jitter:        3 * time.Millisecond,
		Seed:          7,
	}
	res, err := Run(context.Background(), Scenario{
		Queries:            queries,
		Sources:            4,
		Protocol:           trace.TCP,
		RTT:                time.Millisecond,
		QueryImpairment:    imp,
		ResponseImpairment: imp,
		Replay: replay.Config{
			DrainTimeout: 3 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries || st.Responses != queries {
		t.Errorf("sent=%d responses=%d, want %d/%d: reordering corrupted the stream",
			st.Sent, st.Responses, queries, queries)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
	if res.QueryLink.Reordered+res.ResponseLink.Reordered == 0 {
		t.Error("no datagrams were actually reordered; scenario is vacuous")
	}
}
