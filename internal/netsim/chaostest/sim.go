package chaostest

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/proxy"
	"ldplayer/internal/vclock"
	"ldplayer/internal/zone"
)

// SimScenario is the virtual-time twin of Scenario: the same Figure-2
// topology — meta-DNS engine, both OQDA proxies, seeded impairments —
// but with no real sockets, no replay engine, and no wall clock. A
// discrete-event SimClock times every link traversal and retransmission,
// the proxies forward inline, and the engine answers synchronously, so
// the whole run is a single-threaded event loop: the event sequence and
// every counter are a pure function of the scenario, bit-identical
// across runs, and a scenario spanning simulated minutes completes in
// microseconds of CPU (no drain windows, no sleeps).
type SimScenario struct {
	// Queries is the number of queries driven. Default 50.
	Queries int
	// Gap spaces consecutive first transmissions in virtual time.
	// Default 1ms.
	Gap time.Duration
	// RTT is the virtual round-trip time between any two nodes.
	RTT time.Duration
	// Retries is the per-query retransmission budget (default 0) and
	// RetryTimeout the first retransmission timeout (default 100ms,
	// doubling per attempt).
	Retries      int
	RetryTimeout time.Duration

	// QueryImpairment sits on the post-rewrite query link
	// (ServerAddr, MetaAddr); ResponseImpairment on the response link
	// (ServerAddr, ClientAddr) — the same identities Scenario uses.
	QueryImpairment    netsim.Impairment
	ResponseImpairment netsim.Impairment
}

// SimResult pairs the querier's counters with the network accounting and
// the bit-reproducibility evidence: the full event log in virtual time.
type SimResult struct {
	Stats        netsim.SimQuerierStats
	QueryLink    netsim.ImpairStats
	ResponseLink netsim.ImpairStats
	RouteDrops   int64
	// EventLog is every send/rto/ans/dup/giveup with its virtual
	// timestamp. Two runs of the same scenario must produce identical
	// logs.
	EventLog []string
	// SimElapsed is how much simulated time the run spanned; Elapsed is
	// the wall-clock cost of computing it. Their ratio is the
	// time-compression factor.
	SimElapsed time.Duration
	Elapsed    time.Duration
}

// RunSim executes the scenario under a fresh SimClock and returns when
// every query is answered or given up (the clock runs to quiescence —
// there is no drain timeout because there is no waiting).
func RunSim(s SimScenario) (SimResult, error) {
	if s.Queries <= 0 {
		s.Queries = 50
	}
	if s.Gap <= 0 {
		s.Gap = time.Millisecond
	}

	clk := vclock.NewSim(time.Time{})
	n := netsim.NewWithClock(s.RTT, clk)
	defer n.Close()
	client, err := n.AddNode("replay-client", ClientAddr)
	if err != nil {
		return SimResult{}, err
	}
	meta, err := n.AddNode("meta-dns", MetaAddr)
	if err != nil {
		return SimResult{}, err
	}

	// The Figure-2 proxy pair, forwarding inline: a worker pool's pickup
	// order would depend on the Go scheduler and break reproducibility.
	proxy.Attach(client, n, proxy.CaptureQueries, MetaAddr, proxy.Options{Inline: true})
	proxy.Attach(meta, n, proxy.CaptureResponses, ClientAddr, proxy.Options{Inline: true})

	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		return SimResult{}, err
	}
	engine := authserver.NewEngine()
	if err := engine.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		return SimResult{}, err
	}
	authserver.AttachNetsim(engine, meta)

	if err := n.SetLinkImpairment(ServerAddr, MetaAddr, s.QueryImpairment); err != nil {
		return SimResult{}, err
	}
	if err := n.SetLinkImpairment(ServerAddr, ClientAddr, s.ResponseImpairment); err != nil {
		return SimResult{}, err
	}

	sq := netsim.NewSimQuerier(client, ClientAddr, netip.AddrPortFrom(ServerAddr, 53), netsim.SimQuerierConfig{
		Timeout: s.RetryTimeout,
		Retries: s.Retries,
	})
	for i := 0; i < s.Queries; i++ {
		m := dnswire.NewQuery(uint16(i+1), fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			return SimResult{}, err
		}
		sq.StartAt(time.Duration(i)*s.Gap, fmt.Sprintf("q%d", i), wire)
	}

	start := clk.Now()
	wallStart := time.Now() //ldlint:ignore determinism wall-clock cost measurement for reporting; never feeds the simulation
	end := clk.Run()
	return SimResult{
		Stats:        sq.Stats(),
		QueryLink:    n.LinkImpairStats(ServerAddr, MetaAddr),
		ResponseLink: n.LinkImpairStats(ServerAddr, ClientAddr),
		RouteDrops:   n.Dropped(),
		EventLog:     sq.EventLog(),
		SimElapsed:   end.Sub(start),
		Elapsed:      time.Since(wallStart), //ldlint:ignore determinism wall-clock cost measurement for reporting; never feeds the simulation
	}, nil
}
