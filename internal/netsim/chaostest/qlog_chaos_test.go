package chaostest

import (
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/qlog"
	"ldplayer/internal/zone"
)

// flakyCollector is a TCP qlog collector that tears down its first
// connection mid-stream, forcing the TCPSink through its redial path.
// Every decoded event is counted; stream tears are expected, not fatal.
type flakyCollector struct {
	ln      net.Listener
	decoded atomic.Int64
	conns   atomic.Int64
	wg      sync.WaitGroup
}

func newFlakyCollector(t *testing.T) *flakyCollector {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &flakyCollector{ln: ln}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := c.conns.Add(1)
			c.wg.Add(1)
			go func(conn net.Conn, kill bool) {
				defer c.wg.Done()
				defer conn.Close()
				r := qlog.NewReader(conn)
				var ev qlog.Event
				for {
					if err := r.Next(&ev); err != nil {
						return // EOF, tear, or our own kill below
					}
					c.decoded.Add(1)
					if kill && c.decoded.Load() >= 20 {
						return // drop the connection mid-stream
					}
				}
			}(conn, n == 1)
		}
	}()
	return c
}

func (c *flakyCollector) close() {
	c.ln.Close()
	c.wg.Wait()
}

// TestScenarioQlogExportUnderChaos runs the batched server scenario with
// the telemetry pipeline attached and chaos on both planes: the query
// path crosses a seeded lossy UDP relay, and the qlog TCP export lands
// on a collector that kills its first connection mid-stream. The service
// invariant must be exactly the one the telemetry-free scenario proves,
// and the pipeline's books must balance: every query the engine saw is
// either a published event or a counted ring drop, and every published
// event was either written to the sink or shed with a drop counter —
// nothing blocks, nothing goes missing silently.
func TestScenarioQlogExportUnderChaos(t *testing.T) {
	const (
		p       = 0.25
		retries = 2
		queries = 300
	)
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	e := authserver.NewEngine()
	if err := e.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}

	coll := newFlakyCollector(t)
	defer coll.close()
	// Small batches: several TCP writes per round, so a killed connection
	// surfaces as a write error (detecting an RST takes a write or two)
	// while traffic is still flowing, and the sink's redial gets a shot.
	pipe := qlog.New(qlog.Config{
		BatchSize: 32,
		Sinks:     []qlog.Sink{qlog.NewTCPSink(coll.ln.Addr().String(), 200*time.Millisecond)},
	})
	pipe.Start()
	e.SetQlog(pipe)

	srv := &authserver.Server{Engine: e, UDPWorkers: 2, ReusePort: true, Batch: true}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}

	relay, err := netsim.NewUDPRelay("127.0.0.1:0", srv.UDPAddr().String(),
		netsim.Impairment{Drop: p, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	conn, err := net.Dial("udp", relay.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	wires := make([][]byte, queries)
	for i := range wires {
		w, err := dnswire.NewQuery(uint16(i+1), "q.example.com.", dnswire.TypeA).Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	answered := make([]bool, queries+1)
	got := 0
	buf := make([]byte, 4096)
	for round := 0; round <= retries && got < queries; round++ {
		for i, w := range wires {
			if answered[i+1] {
				continue
			}
			if _, err := conn.Write(w); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(2 * time.Second)
		for got < queries && time.Now().Before(deadline) {
			_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				break // quiet: everything still unanswered was dropped
			}
			var resp dnswire.Message
			if err := resp.Unpack(buf[:n]); err != nil {
				t.Fatalf("corrupt response through drop-only relay: %v", err)
			}
			id := int(resp.Header.ID)
			if id < 1 || id > queries || answered[id] {
				continue
			}
			answered[id] = true
			got++
		}
	}

	// Service plane: the answered-fraction invariant is unchanged by the
	// attached telemetry (same formula and tolerance as the qlog-free
	// scenario).
	want := 1 - math.Pow(1-(1-p)*(1-p), retries+1)
	frac := float64(got) / float64(queries)
	if math.Abs(frac-want) > 0.07 {
		t.Errorf("answered fraction = %.3f, want %.3f ± 0.07 (%d/%d)", frac, want, got, queries)
	}
	if rs := relay.Stats(); rs.Dropped == 0 {
		t.Error("relay dropped nothing at 25% loss; scenario is vacuous")
	}

	// Server down first (emits stop), then drain the pipeline, then stop
	// the collector so its counters are final.
	srv.Close()
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	coll.close()

	// Telemetry plane: exact books at every stage.
	st := pipe.Stats()
	es := e.Stats()
	if es.Queries != st.Published+st.RingDrops {
		t.Errorf("engine queries %d != events %d + ring drops %d",
			es.Queries, st.Published, st.RingDrops)
	}
	if st.SinkWritten+st.SinkDropped != st.Published {
		t.Errorf("sink written %d + sink dropped %d != published %d",
			st.SinkWritten, st.SinkDropped, st.Published)
	}
	dec := coll.decoded.Load()
	if dec == 0 {
		t.Error("collector decoded no events")
	}
	if dec > st.Published {
		t.Errorf("collector decoded %d > published %d", dec, st.Published)
	}
	if coll.conns.Load() < 2 {
		t.Errorf("collector saw %d connections; redial path not exercised", coll.conns.Load())
	}
}
