package chaostest

import (
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"ldplayer/internal/authserver"
	"ldplayer/internal/netsim"
)

// Gateway bridges real sockets to a netsim node so the replay engine —
// which dials genuine UDP/TCP sockets — can drive traffic across an
// impaired virtual network. Each real peer (a replay socket or TCP
// connection) is assigned a virtual source port on the node; queries
// enter the simulation as datagrams toward the target nameserver and
// responses arriving at that virtual port are written back to the real
// peer.
//
// TCP responses are re-framed with the RFC 1035 length prefix under a
// per-connection lock, so datagram-level reordering inside the
// simulation can delay or permute messages but can never corrupt the
// stream framing the replay client reads.
type Gateway struct {
	node   *netsim.Node
	src    netip.Addr
	target netip.AddrPort

	udp   *net.UDPConn
	tcpLn net.Listener

	mu       sync.Mutex
	nextPort uint16
	udpPeers map[uint16]*net.UDPAddr
	udpPorts map[string]uint16 // real peer -> vport, for socket affinity
	tcpConns map[uint16]*gwConn

	closed atomic.Bool
	wg     sync.WaitGroup
}

// gwConn is one accepted TCP connection; mu serializes response frames.
type gwConn struct {
	conn net.Conn
	mu   sync.Mutex
}

// NewGateway listens on loopback UDP and TCP and installs itself as
// node's datagram handler. Queries are emitted from src toward target
// (so the node's egress proxy captures them like any port-53 traffic).
func NewGateway(node *netsim.Node, src netip.Addr, target netip.AddrPort) (*Gateway, error) {
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	// A replay burst can outrun the read loop; a deep kernel buffer keeps
	// loopback loss out of the seeded fault model (best effort — the OS
	// may cap it lower).
	_ = udp.SetReadBuffer(4 << 20)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		udp.Close()
		return nil, err
	}
	g := &Gateway{
		node:     node,
		src:      src,
		target:   target,
		udp:      udp,
		tcpLn:    ln,
		nextPort: 20000,
		udpPeers: make(map[uint16]*net.UDPAddr),
		udpPorts: make(map[string]uint16),
		tcpConns: make(map[uint16]*gwConn),
	}
	node.Handle(g.deliver)
	g.wg.Add(2)
	go g.readUDP()
	go g.acceptTCP()
	return g, nil
}

// UDPAddr returns the real UDP listen address ("host:port").
func (g *Gateway) UDPAddr() string { return g.udp.LocalAddr().String() }

// TCPAddr returns the real TCP listen address ("host:port").
func (g *Gateway) TCPAddr() string { return g.tcpLn.Addr().String() }

// Close tears down the listeners and waits for the pump goroutines.
func (g *Gateway) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	g.udp.Close()
	g.tcpLn.Close()
	g.mu.Lock()
	//ldlint:ignore determinism close-all teardown; order is irrelevant and no fault decision is taken
	for _, c := range g.tcpConns {
		c.conn.Close()
	}
	g.mu.Unlock()
	g.wg.Wait()
}

// allocPort reserves an unused virtual source port. Caller holds g.mu.
func (g *Gateway) allocPort() uint16 {
	for {
		g.nextPort++
		if g.nextPort < 20000 {
			g.nextPort = 20000
		}
		p := g.nextPort
		if _, u := g.udpPeers[p]; u {
			continue
		}
		if _, t := g.tcpConns[p]; t {
			continue
		}
		return p
	}
}

// deliver routes a datagram arriving at the node back to the real peer
// that owns its destination port.
func (g *Gateway) deliver(d netsim.Datagram) {
	port := d.Dst.Port()
	g.mu.Lock()
	peer := g.udpPeers[port]
	tc := g.tcpConns[port]
	g.mu.Unlock()
	switch {
	case peer != nil:
		_, _ = g.udp.WriteToUDP(d.Payload, peer)
	case tc != nil:
		tc.mu.Lock()
		_ = authserver.WriteTCPMessage(tc.conn, d.Payload)
		tc.mu.Unlock()
	}
}

func (g *Gateway) readUDP() {
	defer g.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := g.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		key := raddr.String()
		g.mu.Lock()
		vport, ok := g.udpPorts[key]
		if !ok {
			vport = g.allocPort()
			g.udpPorts[key] = vport
			g.udpPeers[vport] = raddr
		}
		g.mu.Unlock()
		g.node.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(g.src, vport),
			Dst:     g.target,
			Payload: append([]byte(nil), buf[:n]...),
		})
	}
}

func (g *Gateway) acceptTCP() {
	defer g.wg.Done()
	for {
		conn, err := g.tcpLn.Accept()
		if err != nil {
			return
		}
		tc := &gwConn{conn: conn}
		g.mu.Lock()
		vport := g.allocPort()
		g.tcpConns[vport] = tc
		g.mu.Unlock()
		g.wg.Add(1)
		go g.readTCP(tc, vport)
	}
}

func (g *Gateway) readTCP(tc *gwConn, vport uint16) {
	defer g.wg.Done()
	defer func() {
		g.mu.Lock()
		delete(g.tcpConns, vport)
		g.mu.Unlock()
		tc.conn.Close()
	}()
	for {
		msg, err := authserver.ReadTCPMessage(tc.conn)
		if err != nil {
			return
		}
		g.node.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(g.src, vport),
			Dst:     g.target,
			Payload: msg,
		})
	}
}
