package chaostest

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/zone"
)

// TestScenarioBatchedServerThroughLossyRelay covers the batched UDP
// datapath with chaos in front of real sockets: a live Server on the
// sendmmsg/recvmmsg+GSO path behind a seeded lossy UDPRelay (the same
// relay `metadns -impair` deploys). A round-based client retransmits
// unanswered queries up to r times; with per-attempt drop p applied
// independently to each crossing (query and response), the answered
// fraction must approach 1 − (1 − (1−p)²)^(r+1), every response that
// does arrive must be a correct, uncorrupted answer, and the per-shard
// counters must still federate into a consistent engine-wide view.
func TestScenarioBatchedServerThroughLossyRelay(t *testing.T) {
	const (
		p       = 0.25
		retries = 2
		queries = 300
	)
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	e := authserver.NewEngine()
	if err := e.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	srv := &authserver.Server{
		Engine:     e,
		UDPWorkers: 2,
		ReusePort:  true,
		Batch:      true,
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	relay, err := netsim.NewUDPRelay("127.0.0.1:0", srv.UDPAddr().String(),
		netsim.Impairment{Drop: p, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	conn, err := net.Dial("udp", relay.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	wires := make([][]byte, queries)
	for i := range wires {
		w, err := dnswire.NewQuery(uint16(i+1), "q.example.com.", dnswire.TypeA).Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		wires[i] = w
	}
	answered := make([]bool, queries+1)
	got := 0
	buf := make([]byte, 4096)
	for round := 0; round <= retries && got < queries; round++ {
		for i, w := range wires {
			if answered[i+1] {
				continue
			}
			if _, err := conn.Write(w); err != nil {
				t.Fatal(err)
			}
		}
		// Collect this round's survivors until the link goes quiet.
		deadline := time.Now().Add(2 * time.Second)
		for got < queries && time.Now().Before(deadline) {
			_ = conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				break // quiet: everything still unanswered was dropped
			}
			var resp dnswire.Message
			if err := resp.Unpack(buf[:n]); err != nil {
				t.Fatalf("corrupt response through drop-only relay: %v", err)
			}
			id := int(resp.Header.ID)
			if id < 1 || id > queries {
				t.Fatalf("response ID %d out of range", id)
			}
			if answered[id] {
				continue // late duplicate from a retransmitted query
			}
			if !resp.Header.QR || resp.Header.Rcode != dnswire.RcodeNoError ||
				len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.81" {
				t.Fatalf("ID %d: bad answer %+v", id, resp)
			}
			answered[id] = true
			got++
		}
	}

	// Each attempt must survive two independent p-crossings, so the
	// per-attempt success is (1−p)² and r+1 attempts give
	// 1 − (1 − (1−p)²)^(r+1) ≈ 0.916 at p=0.25, r=2.
	want := 1 - math.Pow(1-(1-p)*(1-p), retries+1)
	frac := float64(got) / float64(queries)
	// Binomial sd at N=300 is ~0.016; 0.07 is a >4-sigma tolerance.
	if math.Abs(frac-want) > 0.07 {
		t.Errorf("answered fraction = %.3f, want %.3f ± 0.07 (%d/%d)", frac, want, got, queries)
	}
	if rs := relay.Stats(); rs.Dropped == 0 {
		t.Error("relay dropped nothing at 25% loss; scenario is vacuous")
	}
	// Shard counters federate: the server answered at least every query
	// the client saw, and never more than the attempts that reached it.
	st := e.Stats()
	if st.Responses < int64(got) {
		t.Errorf("engine responses = %d < client received %d", st.Responses, got)
	}
	if rs := relay.Stats(); st.Queries > rs.Offered {
		t.Errorf("engine queries = %d > relay offered %d", st.Queries, rs.Offered)
	}
}
