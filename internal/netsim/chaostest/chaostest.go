// Package chaostest is a deterministic fault-injection harness for the
// replay pipeline. A Scenario stands up the full Figure-2 topology inside
// one process — meta-DNS engine, both OQDA proxies, a seeded-impairment
// virtual network, and a real-socket gateway — then drives the actual
// replay engine (real UDP/TCP sockets, real retransmission timers) across
// it and returns the replay statistics next to the network's impairment
// accounting so tests can assert analytic invariants: with per-attempt
// loss p and r retransmissions the answered fraction approaches
// 1 − p^(r+1); reordering may permute responses but can never corrupt
// TCP framing; total loss must terminate at the drain deadline with every
// query accounted unanswered.
//
// Determinism: all impairment decisions flow from the Scenario's seeded
// Impairments, so a scenario's fault pattern is a pure function of seed
// and packet arrival order. Arrival order is exactly reproducible for
// sequential load and statistically stable under the replay engine's
// concurrency — the invariants asserted here hold for every seed.
package chaostest

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netsim"
	"ldplayer/internal/proxy"
	"ldplayer/internal/replay"
	"ldplayer/internal/trace"
	"ldplayer/internal/zone"
)

// Topology addresses: the replay client node, the meta-DNS node, and the
// public nameserver address the traces query (the OQDA identity).
var (
	ClientAddr = netip.MustParseAddr("10.1.0.1")
	MetaAddr   = netip.MustParseAddr("10.2.0.1")
	ServerAddr = netip.MustParseAddr("192.0.2.53")
)

// Scenario describes one chaos run.
type Scenario struct {
	// Queries is the trace length. Default 50.
	Queries int
	// Sources is the number of distinct original source addresses the
	// trace cycles through (each gets its own replay socket). Default 4.
	Sources int
	// Gap spaces consecutive trace entries. Default 0 (as fast as the
	// replay clock allows).
	Gap time.Duration
	// Protocol selects UDP or TCP transport for every entry.
	Protocol trace.Protocol
	// RTT is the virtual round-trip time between any two nodes.
	RTT time.Duration

	// QueryImpairment is installed on the query path — the link the
	// OQDA-rewritten queries traverse toward the meta server. Each UDP
	// transmission attempt crosses it independently, which is what makes
	// the 1−p^(r+1) bound exact.
	QueryImpairment netsim.Impairment
	// ResponseImpairment is installed on the response path back to the
	// client node.
	ResponseImpairment netsim.Impairment

	// Replay seeds the engine configuration; Run fills in the gateway
	// targets. Zero-value fields keep the engine defaults.
	Replay replay.Config
}

// Result pairs the replay statistics with the network-side accounting.
type Result struct {
	Stats *replay.Stats
	// QueryLink and ResponseLink are the per-link impairment counters.
	QueryLink    netsim.ImpairStats
	ResponseLink netsim.ImpairStats
	// RouteDrops counts datagrams the virtual network dropped for lack
	// of a route — always 0 in a correctly wired scenario.
	RouteDrops int64
	// Elapsed is the wall-clock duration of the replay call.
	Elapsed time.Duration
}

// zoneText answers everything under example.com via a wildcard, like the
// synthetic-replay setup of the paper's testbed experiments.
const zoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
*.example.com.	300	IN	A	192.0.2.81
`

// BuildTrace constructs the scenario's query stream: unique query names
// and message IDs, cycling over s.Sources original source addresses.
func BuildTrace(s Scenario) ([]trace.Entry, error) {
	base := time.Unix(1700000000, 0)
	out := make([]trace.Entry, s.Queries)
	for i := range out {
		m := dnswire.NewQuery(uint16(i+1), fmt.Sprintf("q%d.example.com.", i), dnswire.TypeA)
		wire, err := m.Pack(nil)
		if err != nil {
			return nil, err
		}
		src := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, byte(i % s.Sources >> 8), byte(i % s.Sources)}), 5353)
		out[i] = trace.Entry{
			Time:     base.Add(time.Duration(i) * s.Gap),
			Src:      src,
			Dst:      netip.AddrPortFrom(ServerAddr, 53),
			Protocol: s.Protocol,
			Message:  wire,
		}
	}
	return out, nil
}

// Run executes the scenario and returns the paired accounting.
func Run(ctx context.Context, s Scenario) (Result, error) {
	if s.Queries <= 0 {
		s.Queries = 50
	}
	if s.Sources <= 0 {
		s.Sources = 4
	}

	n := netsim.New(s.RTT)
	defer n.Close()
	client, err := n.AddNode("replay-client", ClientAddr)
	if err != nil {
		return Result{}, err
	}
	meta, err := n.AddNode("meta-dns", MetaAddr)
	if err != nil {
		return Result{}, err
	}

	// Figure-2 proxy pair: queries leaving the client toward the public
	// nameserver are rewritten to the meta server; responses leaving the
	// meta server are rewritten back to the client.
	clientProxy := proxy.Attach(client, n, proxy.CaptureQueries, MetaAddr, proxy.Options{})
	defer clientProxy.Close()
	authProxy := proxy.Attach(meta, n, proxy.CaptureResponses, ClientAddr, proxy.Options{})
	defer authProxy.Close()

	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		return Result{}, err
	}
	engine := authserver.NewEngine()
	if err := engine.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		return Result{}, err
	}
	authserver.AttachNetsim(engine, meta)

	// Post-rewrite link identities: queries traverse (ServerAddr, MetaAddr),
	// responses traverse (ServerAddr, ClientAddr).
	if err := n.SetLinkImpairment(ServerAddr, MetaAddr, s.QueryImpairment); err != nil {
		return Result{}, err
	}
	if err := n.SetLinkImpairment(ServerAddr, ClientAddr, s.ResponseImpairment); err != nil {
		return Result{}, err
	}

	gw, err := NewGateway(client, ClientAddr, netip.AddrPortFrom(ServerAddr, 53))
	if err != nil {
		return Result{}, err
	}
	defer gw.Close()

	cfg := s.Replay
	cfg.UDPTarget = gw.UDPAddr()
	cfg.TCPTarget = gw.TCPAddr()
	en, err := replay.New(cfg)
	if err != nil {
		return Result{}, err
	}

	entries, err := BuildTrace(s)
	if err != nil {
		return Result{}, err
	}
	start := time.Now() //ldlint:ignore determinism wall-clock Elapsed measurement for reporting; never feeds a fault decision
	st, err := en.Replay(ctx, trace.NewSliceReader(entries))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Stats:        st,
		QueryLink:    n.LinkImpairStats(ServerAddr, MetaAddr),
		ResponseLink: n.LinkImpairStats(ServerAddr, ClientAddr),
		RouteDrops:   n.Dropped(),
		Elapsed:      time.Since(start), //ldlint:ignore determinism wall-clock Elapsed measurement for reporting; never feeds a fault decision
	}, nil
}
