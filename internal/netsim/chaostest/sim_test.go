package chaostest

import (
	"math"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/netsim"
)

// The virtual-time chaos scenarios. These are the SimClock conversions
// of the original real-socket scenarios: the same topology and fault
// models, but timed by a discrete-event clock, so there are no drain
// windows, no sleeps, and no tolerances where none are needed — two runs
// of a seeded scenario are asserted *bit-identical*, event for event.

// TestSimScenarioSeedBitReproducible: the full fault mix (loss,
// duplication, reordering, jitter, corruption) with retransmissions,
// run twice with the same seeds, must produce identical event sequences
// — every send, retransmission, answer, duplicate, and giveup at the
// same virtual instant — and identical final counters.
func TestSimScenarioSeedBitReproducible(t *testing.T) {
	scenario := SimScenario{
		Queries:      200,
		Gap:          3 * time.Millisecond,
		RTT:          8 * time.Millisecond,
		Retries:      2,
		RetryTimeout: 40 * time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Drop:      0.25,
			Duplicate: 0.15,
			Reorder:   0.2,
			Jitter:    2 * time.Millisecond,
			Seed:      1234,
		},
		ResponseImpairment: netsim.Impairment{
			Drop:    0.1,
			Reorder: 0.3,
			Jitter:  time.Millisecond,
			Seed:    5678,
		},
	}
	a, err := RunSim(scenario)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("same seed diverged: stats A %+v, B %+v", a.Stats, b.Stats)
	}
	if a.QueryLink != b.QueryLink || a.ResponseLink != b.ResponseLink {
		t.Errorf("same seed diverged: links A %+v/%+v, B %+v/%+v",
			a.QueryLink, a.ResponseLink, b.QueryLink, b.ResponseLink)
	}
	la, lb := strings.Join(a.EventLog, "\n"), strings.Join(b.EventLog, "\n")
	if la != lb {
		// Find the first diverging line for a useful failure message.
		al, bl := a.EventLog, b.EventLog
		for i := 0; i < len(al) && i < len(bl); i++ {
			if al[i] != bl[i] {
				t.Fatalf("event logs diverge at event %d: %q vs %q", i, al[i], bl[i])
			}
		}
		t.Fatalf("event logs diverge in length: %d vs %d events", len(al), len(bl))
	}
	if a.Stats.Answered == 0 || a.QueryLink.Dropped == 0 || a.QueryLink.Duplicated == 0 {
		t.Errorf("scenario is vacuous: %+v / %+v", a.Stats, a.QueryLink)
	}
	if a.RouteDrops != 0 {
		t.Errorf("route drops = %d, want 0", a.RouteDrops)
	}
}

// TestSimScenarioLossRetransmitBound is the 1 − p^(r+1) invariant under
// virtual time: per-attempt loss p on the query link, r retransmissions,
// answered fraction within a binomial tolerance of the bound — with
// exact accounting (answered + giveups == sent) instead of a drain
// window.
func TestSimScenarioLossRetransmitBound(t *testing.T) {
	const (
		p       = 0.4
		retries = 2
		queries = 400
	)
	res, err := RunSim(SimScenario{
		Queries:      queries,
		Gap:          time.Millisecond,
		RTT:          2 * time.Millisecond,
		Retries:      retries,
		RetryTimeout: 30 * time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Drop: p,
			Seed: 42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries {
		t.Fatalf("sent = %d, want %d", st.Sent, queries)
	}
	want := 1 - math.Pow(p, retries+1) // 0.936
	got := float64(st.Answered) / float64(st.Sent)
	// Binomial sd at N=400 is ~0.012; 0.055 is a >4-sigma tolerance.
	if math.Abs(got-want) > 0.055 {
		t.Errorf("answered fraction = %.3f, want %.3f ± 0.055 (answered=%d giveups=%d)",
			got, want, st.Answered, st.GiveUps)
	}
	if st.Retransmits == 0 {
		t.Error("no retransmissions under 40% loss")
	}
	// Virtual time gives exact conservation: no in-flight tail, no drain
	// tolerance.
	if st.Answered+st.GiveUps != st.Sent {
		t.Errorf("accounting leak: answered(%d) + giveups(%d) != sent(%d)",
			st.Answered, st.GiveUps, st.Sent)
	}
	if res.QueryLink.Offered != st.Sent+st.Retransmits {
		t.Errorf("query link offered %d, want sent+retransmits = %d",
			res.QueryLink.Offered, st.Sent+st.Retransmits)
	}
	if res.QueryLink.Dropped == 0 {
		t.Error("no datagrams dropped at 40% loss; scenario is vacuous")
	}
	if res.RouteDrops != 0 {
		t.Errorf("route drops = %d, want 0", res.RouteDrops)
	}
}

// TestSimScenarioDuplicateNoDoubleCount: dup=1 duplicates every query,
// the meta server answers each copy, and the querier must count each
// query answered exactly once — with the surplus responses accounted as
// duplicates, exactly.
func TestSimScenarioDuplicateNoDoubleCount(t *testing.T) {
	const queries = 40
	res, err := RunSim(SimScenario{
		Queries: queries,
		Gap:     time.Millisecond,
		RTT:     2 * time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Duplicate: 1,
			Seed:      9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Answered != queries {
		t.Errorf("answered = %d, want %d (duplicates must not double-count)", st.Answered, queries)
	}
	// Every query was duplicated on the query link and both copies
	// answered, so exactly one surplus response per query.
	if st.Duplicates != queries {
		t.Errorf("duplicates = %d, want exactly %d", st.Duplicates, queries)
	}
	if res.QueryLink.Duplicated != queries {
		t.Errorf("link duplicated %d datagrams, want %d", res.QueryLink.Duplicated, queries)
	}
	if st.GiveUps != 0 {
		t.Errorf("giveups = %d, want 0", st.GiveUps)
	}
}

// TestSimScenarioBlackholeTerminates: 100% loss must never hang the
// simulation — once every query exhausts its retransmission budget the
// event heap is empty and Run returns, with every query accounted a
// giveup. The run spans seconds of simulated time and must cost almost
// no wall clock: there is no drain deadline because there is no waiting.
func TestSimScenarioBlackholeTerminates(t *testing.T) {
	const queries = 30
	res, err := RunSim(SimScenario{
		Queries:      queries,
		Gap:          10 * time.Millisecond,
		RTT:          2 * time.Millisecond,
		Retries:      3,
		RetryTimeout: 100 * time.Millisecond,
		QueryImpairment: netsim.Impairment{
			Drop: 1,
			Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Sent != queries || st.Answered != 0 {
		t.Errorf("sent=%d answered=%d, want %d/0", st.Sent, st.Answered, queries)
	}
	if st.GiveUps != queries {
		t.Errorf("giveups = %d, want %d (every query must be accounted)", st.GiveUps, queries)
	}
	if res.QueryLink.Dropped != res.QueryLink.Offered {
		t.Errorf("blackhole leaked: dropped %d of %d offered", res.QueryLink.Dropped, res.QueryLink.Offered)
	}
	// Each query gives up 100+200+400+800ms after its first send; the
	// last starts at 290ms, so the run spans 1.79s of simulated time.
	if want := 290*time.Millisecond + 1500*time.Millisecond; res.SimElapsed != want {
		t.Errorf("simulated span = %v, want exactly %v", res.SimElapsed, want)
	}
	if res.Elapsed > time.Second {
		t.Errorf("blackholed sim burned %v wall clock; virtual time must not wait", res.Elapsed)
	}
}
