// Package netsim is an in-process virtual IP network. It stands in for the
// DETER testbed topology, the TUN devices, and the iptables mangle rules
// of the paper's deployment (§2.4, Figure 2): nodes own IP addresses,
// links impose round-trip latency, and per-node egress filters divert
// matching datagrams to proxy hooks exactly the way port-based routing
// diverts packets to a TUN interface.
//
// Datagrams whose destination no node owns are dropped and counted — the
// in-simulation equivalent of "leaked packets are non-routable and
// dropped" — so replay bugs surface as drop counts, never as traffic to
// the real Internet.
package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/obs"
	"ldplayer/internal/vclock"
)

// Datagram is a raw UDP-like packet as a proxy would read it from a TUN
// device: addresses, ports, and payload.
type Datagram struct {
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Payload []byte
}

// String returns a tcpdump-ish one-liner for logs and tests.
func (d Datagram) String() string {
	return fmt.Sprintf("%v > %v: %d bytes", d.Src, d.Dst, len(d.Payload))
}

// Clone deep-copies the datagram so filters may mutate it safely.
func (d Datagram) Clone() Datagram {
	d.Payload = append([]byte(nil), d.Payload...)
	return d
}

// Handler consumes datagrams delivered to a node.
type Handler func(Datagram)

// Filter inspects an egress datagram. Returning true diverts the packet
// (it is NOT delivered); the filter owns it from then on, typically
// rewriting addresses and re-injecting via Network.Inject. This is the
// TUN-redirect analogue.
type Filter func(Datagram) (diverted bool)

// Network is a virtual packet network. The zero value is not usable; call
// New.
type Network struct {
	mu    sync.RWMutex
	nodes map[netip.Addr]*Node
	// linkRTT maps unordered address pairs to their round-trip time.
	linkRTT map[[2]netip.Addr]time.Duration
	// defaultRTT applies to pairs without an explicit link entry.
	defaultRTT time.Duration
	// impairers maps unordered address pairs to their fault model;
	// defaultImpairer (may be nil) applies to pairs without an entry.
	impairers       map[[2]netip.Addr]*impairer
	defaultImpairer *impairer

	// clock schedules link-latency deliveries. The real clock by default;
	// a vclock.SimClock turns the network into a discrete-event
	// simulation where every delivery runs inline on the driving
	// goroutine, in timestamp order.
	clock vclock.Clock

	dropped   atomic.Int64
	delivered atomic.Int64
	// inFlight counts datagrams scheduled (in a latency timer or a deliver
	// goroutine) but not yet handed to a handler — the virtual link queue.
	inFlight atomic.Int64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// Instrument registers the network's delivery counters and the virtual
// link-queue depth gauge with reg. Reads happen at scrape time; the
// packet path pays only the atomic adds it already performs.
func (n *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("netsim_delivered_total", "", "datagrams delivered to a handler", n.delivered.Load)
	reg.CounterFunc("netsim_dropped_total", "", "datagrams dropped (no route or no handler)", n.dropped.Load)
	reg.GaugeFunc("netsim_queue_depth", "", "datagrams in flight on virtual links", n.inFlight.Load)
	reg.CounterFunc("netsim_impair_offered_total", "", "datagrams presented to link impairers", func() int64 {
		return n.ImpairStats().Offered
	})
	reg.CounterFunc("netsim_impair_dropped_total", "", "datagrams dropped by link impairment", func() int64 {
		return n.ImpairStats().Dropped
	})
	reg.CounterFunc("netsim_impair_duplicated_total", "", "datagrams duplicated by link impairment", func() int64 {
		return n.ImpairStats().Duplicated
	})
	reg.CounterFunc("netsim_impair_reordered_total", "", "datagram copies held back by reorder impairment", func() int64 {
		return n.ImpairStats().Reordered
	})
	reg.CounterFunc("netsim_impair_corrupted_total", "", "datagram copies corrupted by link impairment", func() int64 {
		return n.ImpairStats().Corrupted
	})
}

// InFlight returns the number of datagrams currently traversing virtual
// links (scheduled but not yet delivered or dropped).
func (n *Network) InFlight() int64 { return n.inFlight.Load() }

// New creates an empty network with the given default round-trip time
// between any two nodes (0 = immediate delivery). Deliveries are timed
// by the wall clock; use NewWithClock for simulated time.
func New(defaultRTT time.Duration) *Network {
	return NewWithClock(defaultRTT, nil)
}

// NewWithClock is New with an injected clock (nil = real time). Under a
// *vclock.SimClock every delivery — including zero-delay ones — becomes
// a scheduled event fired synchronously by the clock's driver, so a
// seeded topology plus impairment set replays bit-identically.
func NewWithClock(defaultRTT time.Duration, clk vclock.Clock) *Network {
	return &Network{
		nodes:      make(map[netip.Addr]*Node),
		linkRTT:    make(map[[2]netip.Addr]time.Duration),
		impairers:  make(map[[2]netip.Addr]*impairer),
		defaultRTT: defaultRTT,
		clock:      vclock.Or(clk),
	}
}

// Clock returns the clock timing this network's deliveries.
func (n *Network) Clock() vclock.Clock { return n.clock }

// Node is an attachment point owning one or more addresses.
type Node struct {
	net   *Network
	name  string
	addrs []netip.Addr

	mu      sync.RWMutex
	handler Handler
	filters []Filter
}

// AddNode attaches a node owning addrs. Adding an address that is already
// owned is an error: address ownership is how routing works.
func (n *Network) AddNode(name string, addrs ...netip.Addr) (*Node, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netsim: node %q needs at least one address", name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range addrs {
		if _, taken := n.nodes[a]; taken {
			return nil, fmt.Errorf("netsim: address %v already owned", a)
		}
	}
	node := &Node{net: n, name: name, addrs: addrs}
	for _, a := range addrs {
		n.nodes[a] = node
	}
	return node, nil
}

// AddAddrs grants node ownership of additional addresses. The meta-DNS
// deployment uses this to give the authoritative proxy every nameserver
// address harvested from the trace.
func (n *Network) AddAddrs(node *Node, addrs ...netip.Addr) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range addrs {
		if owner, taken := n.nodes[a]; taken && owner != node {
			return fmt.Errorf("netsim: address %v already owned by %s", a, owner.name)
		}
	}
	for _, a := range addrs {
		n.nodes[a] = node
		node.addrs = append(node.addrs, a)
	}
	return nil
}

// SetLinkRTT sets the round-trip time between two addresses (order
// irrelevant), overriding the default.
func (n *Network) SetLinkRTT(a, b netip.Addr, rtt time.Duration) {
	k := linkKey(a, b)
	n.mu.Lock()
	n.linkRTT[k] = rtt
	n.mu.Unlock()
}

func linkKey(a, b netip.Addr) [2]netip.Addr {
	if b.Less(a) {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

func (n *Network) rttBetween(a, b netip.Addr) time.Duration {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if rtt, ok := n.linkRTT[linkKey(a, b)]; ok {
		return rtt
	}
	return n.defaultRTT
}

// SetLinkImpairment installs a fault model on the link between two
// addresses (order irrelevant), overriding the network default. A zero
// Impairment restores the perfect link. Returns imp.Validate()'s error.
func (n *Network) SetLinkImpairment(a, b netip.Addr, imp Impairment) error {
	if err := imp.Validate(); err != nil {
		return err
	}
	k := linkKey(a, b)
	n.mu.Lock()
	defer n.mu.Unlock()
	if imp.IsZero() {
		delete(n.impairers, k)
		return nil
	}
	n.impairers[k] = newImpairer(imp)
	return nil
}

// SetDefaultImpairment installs a fault model on every link without an
// explicit SetLinkImpairment entry. A zero Impairment restores perfect
// default links.
func (n *Network) SetDefaultImpairment(imp Impairment) error {
	if err := imp.Validate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if imp.IsZero() {
		n.defaultImpairer = nil
		return nil
	}
	n.defaultImpairer = newImpairer(imp)
	return nil
}

// impairerFor returns the impairer governing the (a,b) link, or nil.
func (n *Network) impairerFor(a, b netip.Addr) *impairer {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if ip, ok := n.impairers[linkKey(a, b)]; ok {
		return ip
	}
	return n.defaultImpairer
}

// ImpairStats aggregates impairment counters across every impaired link
// (including the default impairer).
func (n *Network) ImpairStats() ImpairStats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var s ImpairStats
	//ldlint:ignore determinism stat aggregation is commutative; iteration order never feeds the fault sequence
	for _, ip := range n.impairers {
		s = s.add(ip.stats())
	}
	if n.defaultImpairer != nil {
		s = s.add(n.defaultImpairer.stats())
	}
	return s
}

// LinkImpairStats returns the impairment counters of the (a,b) link's
// governing impairer (the default impairer when no per-link entry exists).
func (n *Network) LinkImpairStats(a, b netip.Addr) ImpairStats {
	if ip := n.impairerFor(a, b); ip != nil {
		return ip.stats()
	}
	return ImpairStats{}
}

// Dropped returns the number of datagrams dropped for lack of a route.
func (n *Network) Dropped() int64 { return n.dropped.Load() }

// Delivered returns the number of datagrams delivered to a handler.
func (n *Network) Delivered() int64 { return n.delivered.Load() }

// Close stops accepting traffic and waits for in-flight deliveries.
func (n *Network) Close() {
	n.closed.Store(true)
	n.wg.Wait()
}

// Handle installs the node's delivery handler. Datagrams arriving before a
// handler is installed are dropped.
func (nd *Node) Handle(h Handler) {
	nd.mu.Lock()
	nd.handler = h
	nd.mu.Unlock()
}

// AddEgressFilter appends an egress filter; filters run in order and the
// first to divert wins.
func (nd *Node) AddEgressFilter(f Filter) {
	nd.mu.Lock()
	nd.filters = append(nd.filters, f)
	nd.mu.Unlock()
}

// Name returns the node's human-readable name.
func (nd *Node) Name() string { return nd.name }

// Addrs returns the addresses the node owns.
func (nd *Node) Addrs() []netip.Addr {
	nd.mu.RLock()
	defer nd.mu.RUnlock()
	return append([]netip.Addr(nil), nd.addrs...)
}

// Send transmits d from the node, running egress filters first. It is the
// analogue of a sendto(2) that iptables may divert to a TUN device.
func (nd *Node) Send(d Datagram) {
	nd.mu.RLock()
	filters := nd.filters
	nd.mu.RUnlock()
	for _, f := range filters {
		if f(d) {
			return
		}
	}
	nd.net.Inject(d)
}

// Inject delivers d to the owner of d.Dst, bypassing egress filters. The
// proxies use this to re-insert rewritten packets. The link's impairment
// model (if any) decides the datagram's fate: drop, duplication, extra
// delay, or payload corruption.
func (n *Network) Inject(d Datagram) {
	if n.closed.Load() {
		return
	}
	n.mu.RLock()
	dst, ok := n.nodes[d.Dst.Addr()]
	n.mu.RUnlock()
	if !ok {
		n.dropped.Add(1)
		return
	}
	// One-way latency is half the round trip.
	oneWay := n.rttBetween(d.Src.Addr(), d.Dst.Addr()) / 2
	ip := n.impairerFor(d.Src.Addr(), d.Dst.Addr())
	if ip == nil {
		n.schedule(dst, d, oneWay)
		return
	}
	drop, dels, copies := ip.decide(len(d.Payload), oneWay)
	if drop {
		return
	}
	for i := 0; i < copies; i++ {
		cp := d
		if at := dels[i].corruptAt; at >= 0 {
			cp.Payload = corruptPayload(d.Payload, at)
		}
		n.schedule(dst, cp, oneWay+dels[i].extraDelay)
	}
}

// schedule arranges delivery of d to dst after delay.
func (n *Network) schedule(dst *Node, d Datagram, delay time.Duration) {
	n.wg.Add(1)
	n.inFlight.Add(1)
	deliver := func() {
		defer n.wg.Done()
		defer n.inFlight.Add(-1)
		dst.mu.RLock()
		h := dst.handler
		dst.mu.RUnlock()
		if h == nil {
			n.dropped.Add(1)
			return
		}
		n.delivered.Add(1)
		h(d)
	}
	if delay <= 0 {
		if vclock.IsReal(n.clock) {
			// Real-time fast path: zero-latency links skip the timer
			// queue entirely.
			go deliver()
			return
		}
		// Simulated time: even "immediate" delivery is an event, so it
		// fires on the driver in deterministic order.
		delay = 0
	}
	n.clock.AfterFunc(delay, deliver)
}
