package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickDeliveryConservation: for any burst of datagrams from many
// concurrent senders, delivered + dropped == sent, and every datagram to
// an owned address with a handler is delivered intact.
func TestQuickDeliveryConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New(0)
		defer n.Close()

		nNodes := 2 + rng.Intn(5)
		nodes := make([]*Node, nNodes)
		var received atomic.Int64
		var payloadSum atomic.Int64
		for i := range nodes {
			node, err := n.AddNode(fmt.Sprintf("n%d", i), netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}))
			if err != nil {
				t.Log(err)
				return false
			}
			node.Handle(func(d Datagram) {
				received.Add(1)
				if len(d.Payload) > 0 {
					payloadSum.Add(int64(d.Payload[0]))
				}
			})
			nodes[i] = node
		}

		total := 20 + rng.Intn(100)
		toOwned := 0
		var wantSum int64
		var wg sync.WaitGroup
		for i := 0; i < total; i++ {
			src := nodes[rng.Intn(nNodes)]
			var dst netip.Addr
			owned := rng.Intn(4) != 0
			if owned {
				dst = netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + rng.Intn(nNodes))})
				toOwned++
			} else {
				dst = netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))})
			}
			b := byte(rng.Intn(256))
			if owned {
				wantSum += int64(b)
			}
			wg.Add(1)
			go func(src *Node, dst netip.Addr, b byte) {
				defer wg.Done()
				src.Send(Datagram{
					Src:     netip.AddrPortFrom(src.Addrs()[0], 1000),
					Dst:     netip.AddrPortFrom(dst, 53),
					Payload: []byte{b},
				})
			}(src, dst, b)
		}
		wg.Wait()
		// Wait for async deliveries to land.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if n.Delivered()+n.Dropped() == int64(total) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if n.Delivered() != int64(toOwned) {
			t.Logf("delivered %d, want %d", n.Delivered(), toOwned)
			return false
		}
		if n.Dropped() != int64(total-toOwned) {
			t.Logf("dropped %d, want %d", n.Dropped(), total-toOwned)
			return false
		}
		if received.Load() != int64(toOwned) || payloadSum.Load() != wantSum {
			t.Logf("handler saw %d (sum %d), want %d (sum %d)",
				received.Load(), payloadSum.Load(), toOwned, wantSum)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
