package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"ldplayer/internal/vclock"
)

// TestQuickDeliveryConservation: for any burst of datagrams from many
// concurrent senders, delivered + dropped == sent, and every datagram to
// an owned address with a handler is delivered intact.
func TestQuickDeliveryConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New(0)
		defer n.Close()

		nNodes := 2 + rng.Intn(5)
		nodes := make([]*Node, nNodes)
		var received atomic.Int64
		var payloadSum atomic.Int64
		for i := range nodes {
			node, err := n.AddNode(fmt.Sprintf("n%d", i), netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}))
			if err != nil {
				t.Log(err)
				return false
			}
			node.Handle(func(d Datagram) {
				received.Add(1)
				if len(d.Payload) > 0 {
					payloadSum.Add(int64(d.Payload[0]))
				}
			})
			nodes[i] = node
		}

		total := 20 + rng.Intn(100)
		toOwned := 0
		var wantSum int64
		var wg sync.WaitGroup
		for i := 0; i < total; i++ {
			src := nodes[rng.Intn(nNodes)]
			var dst netip.Addr
			owned := rng.Intn(4) != 0
			if owned {
				dst = netip.AddrFrom4([4]byte{10, 0, 0, byte(1 + rng.Intn(nNodes))})
				toOwned++
			} else {
				dst = netip.AddrFrom4([4]byte{192, 0, 2, byte(rng.Intn(256))})
			}
			b := byte(rng.Intn(256))
			if owned {
				wantSum += int64(b)
			}
			wg.Add(1)
			go func(src *Node, dst netip.Addr, b byte) {
				defer wg.Done()
				src.Send(Datagram{
					Src:     netip.AddrPortFrom(src.Addrs()[0], 1000),
					Dst:     netip.AddrPortFrom(dst, 53),
					Payload: []byte{b},
				})
			}(src, dst, b)
		}
		wg.Wait()
		// Wait for async deliveries to land.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if n.Delivered()+n.Dropped() == int64(total) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if n.Delivered() != int64(toOwned) {
			t.Logf("delivered %d, want %d", n.Delivered(), toOwned)
			return false
		}
		if n.Dropped() != int64(total-toOwned) {
			t.Logf("dropped %d, want %d", n.Dropped(), total-toOwned)
			return false
		}
		if received.Load() != int64(toOwned) || payloadSum.Load() != wantSum {
			t.Logf("handler saw %d (sum %d), want %d (sum %d)",
				received.Load(), payloadSum.Load(), toOwned, wantSum)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// simRun builds a random seeded topology with random link RTTs and
// impairments under a fresh SimClock, schedules a seeded burst of
// datagrams as clock events, runs the simulation to quiescence, and
// returns the complete delivery ordering (with virtual timestamps and
// payloads) plus the final counters as one string. Everything — topology,
// workload, impairment fates, delivery interleaving — is a pure function
// of seed, so two invocations must return byte-identical strings.
func simRun(t *testing.T, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	clk := vclock.NewSim(time.Time{})
	start := clk.Now()
	n := NewWithClock(time.Duration(rng.Intn(20))*time.Millisecond, clk)
	defer n.Close()

	var mu sync.Mutex
	var log []string
	nNodes := 2 + rng.Intn(5)
	nodes := make([]*Node, nNodes)
	addrs := make([]netip.Addr, nNodes)
	for i := range nodes {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)})
		node, err := n.AddNode(fmt.Sprintf("n%d", i), addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		i := i
		node.Handle(func(d Datagram) {
			mu.Lock()
			log = append(log, fmt.Sprintf("n%d<-%v %x @%v", i, d.Src, d.Payload, clk.Now().Sub(start)))
			mu.Unlock()
		})
		nodes[i] = node
	}
	// Random per-link RTTs and impairments over a few pairs.
	for i := 0; i < nNodes; i++ {
		for j := i + 1; j < nNodes; j++ {
			if rng.Intn(2) == 0 {
				n.SetLinkRTT(addrs[i], addrs[j], time.Duration(rng.Intn(50))*time.Millisecond)
			}
			if rng.Intn(3) == 0 {
				imp := Impairment{
					Drop:      rng.Float64() * 0.3,
					Duplicate: rng.Float64() * 0.3,
					Reorder:   rng.Float64() * 0.3,
					Jitter:    time.Duration(rng.Intn(10)) * time.Millisecond,
					Corrupt:   rng.Float64() * 0.2,
					Seed:      rng.Int63(),
				}
				if err := n.SetLinkImpairment(addrs[i], addrs[j], imp); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// The workload: a seeded burst of sends, each an event on the clock.
	total := 50 + rng.Intn(100)
	for k := 0; k < total; k++ {
		src := nodes[rng.Intn(nNodes)]
		dst := addrs[rng.Intn(nNodes)]
		payload := []byte{byte(k), byte(rng.Intn(256))}
		offset := time.Duration(rng.Intn(1000)) * time.Millisecond
		srcAP := netip.AddrPortFrom(src.Addrs()[0], uint16(1000+k))
		clk.AfterFunc(offset, func() {
			src.Send(Datagram{Src: srcAP, Dst: netip.AddrPortFrom(dst, 53), Payload: payload})
		})
	}
	end := clk.Run()
	mu.Lock()
	defer mu.Unlock()
	return fmt.Sprintf("%s | delivered=%d dropped=%d impair=%+v end=%v",
		strings.Join(log, "\n"), n.Delivered(), n.Dropped(), n.ImpairStats(), end.Sub(start))
}

// TestQuickSimDeterminism: random seeded topologies + impairments
// replayed twice under SimClock yield byte-identical delivery orderings
// and counters.
func TestQuickSimDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a, b := simRun(t, seed), simRun(t, seed)
		if a != b {
			t.Logf("seed %d diverged:\n--- run A ---\n%s\n--- run B ---\n%s", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSimAdvanceInjectRace is the -race hammer: goroutines Inject
// concurrently with a driver calling Advance. Only race-freedom and
// conservation are asserted — concurrent injection is outside the
// bit-reproducibility barrier by design.
func TestSimAdvanceInjectRace(t *testing.T) {
	clk := vclock.NewSim(time.Time{})
	n := NewWithClock(5*time.Millisecond, clk)
	defer n.Close()
	var received atomic.Int64
	node, err := n.AddNode("sink", netip.AddrFrom4([4]byte{10, 0, 0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	node.Handle(func(Datagram) { received.Add(1) })

	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				n.Inject(Datagram{
					Src:     netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 1}), uint16(g+1)),
					Dst:     netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 53),
					Payload: []byte{byte(i)},
				})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			clk.Advance(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	clk.Run()
	if got := received.Load(); got != senders*perSender {
		t.Fatalf("received %d datagrams, want %d", got, senders*perSender)
	}
	if n.Delivered() != senders*perSender || n.Dropped() != 0 {
		t.Fatalf("delivered=%d dropped=%d, want %d/0", n.Delivered(), n.Dropped(), senders*perSender)
	}
}
