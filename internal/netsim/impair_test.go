package netsim

import (
	"net"
	"net/netip"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestParseImpairment(t *testing.T) {
	imp, err := ParseImpairment("drop=0.1,dup=0.05,reorder=0.25:40ms,jitter=5ms,corrupt=0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Impairment{
		Drop: 0.1, Duplicate: 0.05, Reorder: 0.25, ReorderWindow: 40 * time.Millisecond,
		Jitter: 5 * time.Millisecond, Corrupt: 0.01, Seed: 7,
	}
	if imp != want {
		t.Errorf("parsed %+v, want %+v", imp, want)
	}
	// The String rendering must parse back to the same impairment.
	back, err := ParseImpairment(imp.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != imp {
		t.Errorf("round trip %+v != %+v", back, imp)
	}
	for _, spec := range []string{"", "none"} {
		imp, err := ParseImpairment(spec)
		if err != nil || !imp.IsZero() {
			t.Errorf("ParseImpairment(%q) = %+v, %v", spec, imp, err)
		}
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "frob=1", "drop", "reorder=0.5:xx", "jitter=abc"} {
		if _, err := ParseImpairment(bad); err == nil {
			t.Errorf("ParseImpairment(%q) accepted", bad)
		}
	}
}

// TestImpairmentDeterministic is the seed-determinism guarantee: two
// networks with the same impairment seed, offered the same sequential
// datagram sequence, produce the identical multiset of delivered
// payloads. (Duplicate copies of one packet are delivered at the same
// instant by independent goroutines, so their relative order is not part
// of the guarantee — the comparison sorts deliveries.)
func TestImpairmentDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		n := New(0)
		defer n.Close()
		a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
		b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
		_ = a
		if err := n.SetLinkImpairment(a.Addrs()[0], b.Addrs()[0], Impairment{
			Drop: 0.3, Duplicate: 0.2, Corrupt: 0.2, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []string
		done := make(chan struct{}, 1)
		b.Handle(func(d Datagram) {
			mu.Lock()
			got = append(got, string(d.Payload))
			mu.Unlock()
			select {
			case done <- struct{}{}:
			default:
			}
		})
		// Sequential offered load: send, then wait for the network to go
		// idle before the next packet, so arrival order is deterministic.
		for i := 0; i < 60; i++ {
			a.Send(Datagram{
				Src:     ap("10.0.0.1:1000"),
				Dst:     ap("10.0.0.2:53"),
				Payload: []byte{byte('A' + i%26), byte(i)},
			})
			deadline := time.Now().Add(time.Second)
			for n.InFlight() > 0 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		}
		n.Close()
		mu.Lock()
		defer mu.Unlock()
		out := append([]string(nil), got...)
		sort.Strings(out)
		return out
	}
	first := run(42)
	second := run(42)
	if len(first) != len(second) {
		t.Fatalf("runs delivered %d vs %d datagrams", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, first[i], second[i])
		}
	}
	other := run(43)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fate sequences")
	}
}

func TestImpairmentDropAndStats(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	if err := n.SetLinkImpairment(a.Addrs()[0], b.Addrs()[0], Impairment{Drop: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Datagram, 16)
	b.Handle(func(d Datagram) { got <- d })
	for i := 0; i < 5; i++ {
		a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: []byte("x")})
	}
	n.Close()
	select {
	case <-got:
		t.Error("datagram delivered through a 100%-loss link")
	default:
	}
	st := n.ImpairStats()
	if st.Offered != 5 || st.Dropped != 5 {
		t.Errorf("impair stats = %+v, want offered=5 dropped=5", st)
	}
	if ls := n.LinkImpairStats(a.Addrs()[0], b.Addrs()[0]); ls.Dropped != 5 {
		t.Errorf("link impair stats = %+v", ls)
	}
	// Blackholed datagrams are an impairment fate, not a routing drop.
	if n.Dropped() != 0 {
		t.Errorf("route-dropped = %d, want 0", n.Dropped())
	}
}

func TestImpairmentDuplicateDelivery(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	if err := n.SetLinkImpairment(a.Addrs()[0], b.Addrs()[0], Impairment{Duplicate: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Datagram, 16)
	b.Handle(func(d Datagram) { got <- d })
	a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: []byte("q")})
	for i := 0; i < 2; i++ {
		select {
		case <-got:
		case <-time.After(time.Second):
			t.Fatalf("copy %d not delivered", i)
		}
	}
	if st := n.ImpairStats(); st.Duplicated != 1 {
		t.Errorf("duplicated = %d, want 1", st.Duplicated)
	}
}

func TestImpairmentCorruptionClonesPayload(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	if err := n.SetLinkImpairment(a.Addrs()[0], b.Addrs()[0], Impairment{Corrupt: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Datagram, 1)
	b.Handle(func(d Datagram) { got <- d })
	orig := []byte{1, 2, 3, 4}
	a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: orig})
	select {
	case d := <-got:
		diff := 0
		for i := range orig {
			if d.Payload[i] != [...]byte{1, 2, 3, 4}[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("corruption flipped %d bytes, want exactly 1 (payload %v)", diff, d.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("corrupted datagram not delivered")
	}
	// The sender's buffer must never be mutated.
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 || orig[3] != 4 {
		t.Errorf("sender buffer mutated: %v", orig)
	}
	if st := n.ImpairStats(); st.Corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", st.Corrupted)
	}
}

func TestDefaultImpairmentAppliesToAllLinks(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	if err := n.SetDefaultImpairment(Impairment{Drop: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	got := make(chan Datagram, 1)
	b.Handle(func(d Datagram) { got <- d })
	a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: []byte("x")})
	n.Close()
	select {
	case <-got:
		t.Error("default impairment not applied")
	default:
	}
	// Clearing restores perfect links.
	if err := n.SetDefaultImpairment(Impairment{}); err != nil {
		t.Fatal(err)
	}
}

// TestUDPRelayImpairedPath checks the real-socket relay: an echo server
// behind a perfect relay answers everything; behind a blackhole relay,
// nothing — and the relay's counters say why.
func TestUDPRelayImpairedPath(t *testing.T) {
	echo, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		buf := make([]byte, 2048)
		for {
			n, raddr, err := echo.ReadFromUDP(buf)
			if err != nil {
				return
			}
			echo.WriteToUDP(buf[:n], raddr)
		}
	}()

	run := func(imp Impairment, msgs int) (answered int) {
		relay, err := NewUDPRelay("127.0.0.1:0", echo.LocalAddr().String(), imp)
		if err != nil {
			t.Fatal(err)
		}
		defer relay.Close()
		c, err := net.Dial("udp", relay.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < msgs; i++ {
			if _, err := c.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		buf := make([]byte, 2048)
		for {
			if _, err := c.Read(buf); err != nil {
				return answered
			}
			answered++
		}
	}

	if got := run(Impairment{Seed: 1}, 5); got != 5 {
		t.Errorf("perfect relay answered %d/5", got)
	}
	if got := run(Impairment{Drop: 1, Seed: 1}, 5); got != 0 {
		t.Errorf("blackhole relay answered %d/5", got)
	}
}
