package netsim

import (
	"net/netip"
	"sync"
	"testing"
	"time"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestDeliveryByAddressOwnership(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, err := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan Datagram, 1)
	b.Handle(func(d Datagram) { got <- d })
	a.Send(Datagram{Src: ap("10.0.0.1:1000"), Dst: ap("10.0.0.2:53"), Payload: []byte("q")})
	select {
	case d := <-got:
		if string(d.Payload) != "q" {
			t.Errorf("payload = %q", d.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("datagram not delivered")
	}
}

func TestUnroutableDropped(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	a.Send(Datagram{Src: ap("10.0.0.1:1000"), Dst: ap("192.0.2.99:53"), Payload: []byte("leak")})
	n.Close()
	if n.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped())
	}
	if n.Delivered() != 0 {
		t.Errorf("delivered = %d, want 0", n.Delivered())
	}
}

func TestEgressFilterDiverts(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	delivered := make(chan Datagram, 1)
	b.Handle(func(d Datagram) { delivered <- d })

	diverted := make(chan Datagram, 1)
	// Divert port-53 traffic like the recursive TUN rule; let others pass.
	a.AddEgressFilter(func(d Datagram) bool {
		if d.Dst.Port() == 53 {
			diverted <- d
			return true
		}
		return false
	})

	a.Send(Datagram{Src: ap("10.0.0.1:1000"), Dst: ap("10.0.0.2:53"), Payload: []byte("dns")})
	select {
	case <-diverted:
	case <-time.After(time.Second):
		t.Fatal("port-53 packet not diverted")
	}
	a.Send(Datagram{Src: ap("10.0.0.1:1000"), Dst: ap("10.0.0.2:80"), Payload: []byte("web")})
	select {
	case d := <-delivered:
		if d.Dst.Port() != 80 {
			t.Errorf("wrong packet delivered: %v", d)
		}
	case <-time.After(time.Second):
		t.Fatal("port-80 packet not delivered")
	}
}

func TestInjectBypassesFilters(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	_ = a
	got := make(chan Datagram, 1)
	b.Handle(func(d Datagram) { got <- d })
	n.Inject(Datagram{Src: ap("198.51.100.7:53"), Dst: ap("10.0.0.2:4444"), Payload: []byte("rewritten")})
	select {
	case d := <-got:
		if d.Src.Addr() != netip.MustParseAddr("198.51.100.7") {
			t.Errorf("src = %v", d.Src)
		}
	case <-time.After(time.Second):
		t.Fatal("injected datagram lost")
	}
}

func TestLinkRTTDelaysDelivery(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	const rtt = 60 * time.Millisecond
	n.SetLinkRTT(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), rtt)
	got := make(chan time.Time, 1)
	b.Handle(func(Datagram) { got <- time.Now() })
	start := time.Now()
	a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: []byte("x")})
	select {
	case at := <-got:
		oneWay := at.Sub(start)
		if oneWay < rtt/2-5*time.Millisecond {
			t.Errorf("delivered after %v, want >= %v", oneWay, rtt/2)
		}
	case <-time.After(time.Second):
		t.Fatal("datagram not delivered")
	}
}

func TestMultiAddressNode(t *testing.T) {
	n := New(0)
	defer n.Close()
	a, _ := n.AddNode("client", netip.MustParseAddr("10.0.0.1"))
	meta, err := n.AddNode("meta", netip.MustParseAddr("198.41.0.4"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddAddrs(meta, netip.MustParseAddr("192.5.6.30"), netip.MustParseAddr("216.239.32.10")); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[netip.Addr]int{}
	done := make(chan struct{}, 3)
	meta.Handle(func(d Datagram) {
		mu.Lock()
		seen[d.Dst.Addr()]++
		mu.Unlock()
		done <- struct{}{}
	})
	for _, dst := range []string{"198.41.0.4:53", "192.5.6.30:53", "216.239.32.10:53"} {
		a.Send(Datagram{Src: ap("10.0.0.1:999"), Dst: ap(dst), Payload: []byte("q")})
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatal("missing delivery")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Errorf("addresses seen = %v", seen)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	n := New(0)
	defer n.Close()
	if _, err := n.AddNode("a", netip.MustParseAddr("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode("b", netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := n.AddNode("c"); err == nil {
		t.Error("node with no addresses accepted")
	}
}

func TestCloseStopsTraffic(t *testing.T) {
	n := New(0)
	a, _ := n.AddNode("a", netip.MustParseAddr("10.0.0.1"))
	b, _ := n.AddNode("b", netip.MustParseAddr("10.0.0.2"))
	got := make(chan Datagram, 16)
	b.Handle(func(d Datagram) { got <- d })
	n.Close()
	a.Send(Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:53"), Payload: []byte("late")})
	select {
	case <-got:
		t.Error("datagram delivered after Close")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestDatagramClone(t *testing.T) {
	d := Datagram{Src: ap("10.0.0.1:1"), Dst: ap("10.0.0.2:2"), Payload: []byte{1, 2, 3}}
	c := d.Clone()
	c.Payload[0] = 9
	if d.Payload[0] != 1 {
		t.Error("Clone shares payload")
	}
}
