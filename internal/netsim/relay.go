package netsim

import (
	"net"
	"sync"
	"sync/atomic"

	"ldplayer/internal/vclock"
)

// UDPRelay is an impaired datagram path between real sockets: it listens
// on a local UDP address and forwards each datagram to a fixed target
// through an Impairment, with responses impaired on the way back. It is
// how `ldplayer replay -impair` and `metadns -impair` put a fault model
// in front of components that own real sockets rather than netsim nodes.
//
// Per distinct client address the relay opens one upstream socket, so the
// target sees one peer per client — source-to-socket affinity through the
// relay is preserved.
type UDPRelay struct {
	conn   *net.UDPConn
	target *net.UDPAddr
	ip     *impairer
	// clock times deferred (jittered) writes. Always the real clock
	// today — the relay bridges real sockets — but routed through the
	// interface so the package stays in deterministic lint scope.
	clock vclock.Clock

	mu       sync.Mutex
	sessions map[string]*relaySession

	closed atomic.Bool
	wg     sync.WaitGroup
	// timers tracks delayed writes so Close can wait for them.
	timerWG sync.WaitGroup
}

type relaySession struct {
	client   *net.UDPAddr
	upstream *net.UDPConn
}

// NewUDPRelay starts a relay listening on listen (host:port, port 0 for
// ephemeral) forwarding to target through imp.
func NewUDPRelay(listen, target string, imp Impairment) (*UDPRelay, error) {
	if err := imp.Validate(); err != nil {
		return nil, err
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, err
	}
	taddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	r := &UDPRelay{
		conn:     conn,
		target:   taddr,
		ip:       newImpairer(imp),
		clock:    vclock.Real(),
		sessions: make(map[string]*relaySession),
	}
	r.wg.Add(1)
	go r.readClients()
	return r, nil
}

// Addr returns the client-facing listen address.
func (r *UDPRelay) Addr() net.Addr { return r.conn.LocalAddr() }

// Stats returns the relay's impairment counters (both directions share
// one impairer, so Offered counts queries plus responses).
func (r *UDPRelay) Stats() ImpairStats { return r.ip.stats() }

// Close stops the relay and waits for in-flight deliveries.
func (r *UDPRelay) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.conn.Close()
	r.mu.Lock()
	//ldlint:ignore determinism close-all teardown; order is irrelevant and no fault decision is taken
	for _, s := range r.sessions {
		s.upstream.Close()
	}
	r.mu.Unlock()
	r.timerWG.Wait()
	r.wg.Wait()
	return nil
}

func (r *UDPRelay) readClients() {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, client, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s, err := r.session(client)
		if err != nil {
			continue
		}
		r.impairedWrite(buf[:n], func(p []byte) { s.upstream.Write(p) })
	}
}

// session returns (creating if needed) the upstream socket for client.
func (r *UDPRelay) session(client *net.UDPAddr) (*relaySession, error) {
	key := client.String()
	r.mu.Lock()
	s := r.sessions[key]
	r.mu.Unlock()
	if s != nil {
		return s, nil
	}
	up, err := net.DialUDP("udp", nil, r.target)
	if err != nil {
		return nil, err
	}
	s = &relaySession{client: client, upstream: up}
	r.mu.Lock()
	if existing := r.sessions[key]; existing != nil {
		r.mu.Unlock()
		up.Close()
		return existing, nil
	}
	r.sessions[key] = s
	r.mu.Unlock()
	r.wg.Add(1)
	go r.readUpstream(s)
	return s, nil
}

func (r *UDPRelay) readUpstream(s *relaySession) {
	defer r.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, err := s.upstream.Read(buf)
		if err != nil {
			return
		}
		r.impairedWrite(buf[:n], func(p []byte) { r.conn.WriteToUDP(p, s.client) })
	}
}

// impairedWrite rolls payload's fate and performs (possibly delayed,
// duplicated, corrupted) writes via w. The payload is copied before any
// deferred write since the caller reuses its buffer.
func (r *UDPRelay) impairedWrite(payload []byte, w func([]byte)) {
	drop, dels, copies := r.ip.decide(len(payload), 0)
	if drop {
		return
	}
	for i := 0; i < copies; i++ {
		var p []byte
		if at := dels[i].corruptAt; at >= 0 {
			p = corruptPayload(payload, at)
		} else {
			p = append([]byte(nil), payload...)
		}
		if d := dels[i].extraDelay; d > 0 {
			r.timerWG.Add(1)
			r.clock.AfterFunc(d, func() {
				defer r.timerWG.Done()
				if !r.closed.Load() {
					w(p)
				}
			})
			continue
		}
		w(p)
	}
}
