package netsim

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"ldplayer/internal/vclock"
)

// SimQuerier is a discrete-event query driver for virtual-time
// scenarios: it sends payloads from a node toward a destination, matches
// responses back by source port (one ephemeral port per query, the same
// demultiplexing the replay engine's pending tables use), retransmits on
// a per-query exponential backoff, suppresses duplicate responses, and
// gives up after the configured attempts — all through the network's
// clock, so under a *vclock.SimClock every send, retransmission, answer,
// and giveup is an event fired in deterministic timestamp order.
//
// The querier keeps an event log ("send/rto/ans/dup/giveup <tag> @<t>")
// with virtual timestamps. Two runs of the same seeded scenario must
// produce byte-identical logs — that is the bit-reproducibility contract
// the chaos sim scenarios and the quick-test determinism property
// assert.
type SimQuerier struct {
	clk   vclock.Clock
	node  *Node
	src   netip.Addr
	dst   netip.AddrPort
	cfg   SimQuerierConfig
	start time.Time

	mu       sync.Mutex
	nextPort uint16
	pending  map[uint16]*simQuery
	done     map[uint16]string // answered port → tag, for duplicate attribution
	stats    SimQuerierStats
	log      []string
}

// SimQuerierConfig tunes retransmission behaviour.
type SimQuerierConfig struct {
	// Timeout is the first retransmission timeout; each retry doubles
	// it. Default 100ms.
	Timeout time.Duration
	// Retries is the number of retransmissions after the initial send
	// before giving up. Default 0 (single shot).
	Retries int
	// BasePort is the first ephemeral source port. Default 40000.
	BasePort uint16
}

// SimQuerierStats are the querier's final counters. Under a SimClock
// they are a pure function of the scenario seed.
type SimQuerierStats struct {
	Sent        int64 // distinct queries sent
	Retransmits int64 // extra sends on timeout
	Answered    int64 // queries that got a first response
	Duplicates  int64 // responses beyond the first per query
	GiveUps     int64 // queries abandoned after all retries
}

// simQuery is one outstanding query.
type simQuery struct {
	tag     string
	payload []byte
	port    uint16
	attempt int
	timer   vclock.Timer
}

// NewSimQuerier attaches a querier to node (installing its delivery
// handler) sending from src toward dst on network's clock.
func NewSimQuerier(node *Node, src netip.Addr, dst netip.AddrPort, cfg SimQuerierConfig) *SimQuerier {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	if cfg.BasePort == 0 {
		cfg.BasePort = 40000
	}
	clk := node.net.Clock()
	sq := &SimQuerier{
		clk:      clk,
		node:     node,
		src:      src,
		dst:      dst,
		cfg:      cfg,
		start:    clk.Now(),
		nextPort: cfg.BasePort,
		pending:  make(map[uint16]*simQuery),
		done:     make(map[uint16]string),
	}
	node.Handle(sq.onDatagram)
	return sq
}

// StartAt schedules a query's first transmission at offset past the
// querier's construction instant. tag labels the query in the event log.
func (sq *SimQuerier) StartAt(offset time.Duration, tag string, payload []byte) {
	sq.mu.Lock()
	q := &simQuery{tag: tag, payload: payload, port: sq.nextPort}
	sq.nextPort++
	sq.pending[q.port] = q
	sq.mu.Unlock()
	sq.clk.AfterFunc(offset, func() { sq.transmit(q, "send") })
}

// transmit sends (or resends) q and arms its retransmission timer.
func (sq *SimQuerier) transmit(q *simQuery, kind string) {
	sq.mu.Lock()
	if _, live := sq.pending[q.port]; !live {
		sq.mu.Unlock()
		return
	}
	if kind == "send" {
		sq.stats.Sent++
	} else {
		sq.stats.Retransmits++
	}
	sq.note(kind, q.tag)
	rto := sq.cfg.Timeout << q.attempt
	q.timer = sq.clk.AfterFunc(rto, func() { sq.onTimeout(q) })
	sq.mu.Unlock()
	sq.node.Send(Datagram{
		Src:     netip.AddrPortFrom(sq.src, q.port),
		Dst:     sq.dst,
		Payload: q.payload,
	})
}

// onTimeout retransmits q or gives up once the retry budget is spent.
func (sq *SimQuerier) onTimeout(q *simQuery) {
	sq.mu.Lock()
	if _, live := sq.pending[q.port]; !live {
		sq.mu.Unlock()
		return
	}
	if q.attempt >= sq.cfg.Retries {
		delete(sq.pending, q.port)
		sq.stats.GiveUps++
		sq.note("giveup", q.tag)
		sq.mu.Unlock()
		return
	}
	q.attempt++
	sq.mu.Unlock()
	sq.transmit(q, "rto")
}

// onDatagram is the node handler: responses demultiplex by destination
// port.
func (sq *SimQuerier) onDatagram(d Datagram) {
	port := d.Dst.Port()
	sq.mu.Lock()
	defer sq.mu.Unlock()
	q, live := sq.pending[port]
	if !live {
		if tag, answered := sq.done[port]; answered {
			sq.stats.Duplicates++
			sq.note("dup", tag)
		}
		return
	}
	delete(sq.pending, port)
	sq.done[port] = q.tag
	if q.timer != nil {
		q.timer.Stop()
	}
	sq.stats.Answered++
	sq.note("ans", q.tag)
}

// note appends an event-log line; callers hold sq.mu.
func (sq *SimQuerier) note(kind, tag string) {
	sq.log = append(sq.log, fmt.Sprintf("%s %s @%v", kind, tag, sq.clk.Now().Sub(sq.start)))
}

// Stats returns the counters accumulated so far.
func (sq *SimQuerier) Stats() SimQuerierStats {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return sq.stats
}

// EventLog returns a copy of the event log.
func (sq *SimQuerier) EventLog() []string {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return append([]string(nil), sq.log...)
}

// Outstanding reports queries still awaiting an answer or giveup.
func (sq *SimQuerier) Outstanding() int {
	sq.mu.Lock()
	defer sq.mu.Unlock()
	return len(sq.pending)
}
