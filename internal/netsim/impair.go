package netsim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Impairment is a per-link fault model: the in-simulation analogue of a
// lossy, jittery WAN path. Every probability is per datagram traversal;
// all randomness is drawn from a single seeded PRNG per impairer, so a
// given seed and a given offered-load sequence reproduce the exact same
// per-packet fate sequence (see TestImpairmentDeterministic).
//
// The determinism contract is enforced by ldlint's determinism analyzer
// over all of internal/netsim (and any package opting in with a
// //ldlint:deterministic directive): no wall-clock reads, no global
// math/rand, no map-iteration-order-dependent logic.
//
// The zero value is a perfect link (no impairment).
type Impairment struct {
	// Drop is the probability a datagram is silently discarded.
	Drop float64
	// Duplicate is the probability a datagram is delivered twice. Each
	// copy draws its own corruption/jitter/reorder fate.
	Duplicate float64
	// Reorder is the probability a datagram is held back an extra random
	// delay in (0, ReorderWindow], letting later packets overtake it.
	Reorder float64
	// ReorderWindow bounds the extra hold-back delay. Defaults to 4x the
	// link's one-way latency when zero (and to 1ms on zero-RTT links).
	ReorderWindow time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) to every delivery.
	Jitter time.Duration
	// Corrupt is the probability one payload byte is bit-flipped.
	Corrupt float64
	// Seed seeds the impairer's PRNG. Zero means seed 1, so the empty
	// spec is still reproducible.
	Seed int64
}

// IsZero reports whether the impairment is a no-op (perfect link).
func (imp Impairment) IsZero() bool {
	return imp.Drop == 0 && imp.Duplicate == 0 && imp.Reorder == 0 &&
		imp.Jitter == 0 && imp.Corrupt == 0
}

// Validate checks probabilities and durations.
func (imp Impairment) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", imp.Drop}, {"dup", imp.Duplicate}, {"reorder", imp.Reorder}, {"corrupt", imp.Corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netsim: impairment %s=%v out of [0,1]", p.name, p.v)
		}
	}
	if imp.ReorderWindow < 0 || imp.Jitter < 0 {
		return fmt.Errorf("netsim: impairment delays must be non-negative")
	}
	return nil
}

// String renders the impairment in the ParseImpairment grammar.
func (imp Impairment) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", imp.Drop)
	add("dup", imp.Duplicate)
	if imp.Reorder != 0 {
		s := "reorder=" + strconv.FormatFloat(imp.Reorder, 'g', -1, 64)
		if imp.ReorderWindow != 0 {
			s += ":" + imp.ReorderWindow.String()
		}
		parts = append(parts, s)
	}
	if imp.Jitter != 0 {
		parts = append(parts, "jitter="+imp.Jitter.String())
	}
	add("corrupt", imp.Corrupt)
	if imp.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(imp.Seed, 10))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseImpairment parses the -impair spec grammar: a comma-separated list
// of KEY=VALUE clauses,
//
//	drop=0.1,dup=0.05,reorder=0.25:40ms,jitter=5ms,corrupt=0.01,seed=7
//
// where drop/dup/reorder/corrupt take probabilities in [0,1], reorder
// optionally carries its hold-back window after a colon, jitter takes a
// duration, and seed an integer. "none" or "" is a perfect link.
func ParseImpairment(spec string) (Impairment, error) {
	var imp Impairment
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return imp, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return imp, fmt.Errorf("netsim: bad impairment clause %q (want KEY=VALUE)", clause)
		}
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("netsim: bad %s probability %q", key, val)
			}
			return p, nil
		}
		var err error
		switch key {
		case "drop":
			imp.Drop, err = prob()
		case "dup":
			imp.Duplicate, err = prob()
		case "reorder":
			pStr, wStr, hasWindow := strings.Cut(val, ":")
			val = pStr
			if imp.Reorder, err = prob(); err == nil && hasWindow {
				imp.ReorderWindow, err = time.ParseDuration(wStr)
			}
		case "jitter":
			imp.Jitter, err = time.ParseDuration(val)
		case "corrupt":
			imp.Corrupt, err = prob()
		case "seed":
			imp.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return imp, fmt.Errorf("netsim: unknown impairment key %q", key)
		}
		if err != nil {
			return imp, err
		}
	}
	if err := imp.Validate(); err != nil {
		return imp, err
	}
	return imp, nil
}

// ImpairStats counts impairment decisions on a link (or aggregate).
type ImpairStats struct {
	// Offered is the number of datagrams presented to the impairer.
	Offered int64
	// Dropped, Duplicated, Reordered, Corrupted count the respective
	// fates; a duplicated datagram's two copies each count their own
	// corruption/reorder fate.
	Dropped    int64
	Duplicated int64
	Reordered  int64
	Corrupted  int64
}

func (s ImpairStats) add(o ImpairStats) ImpairStats {
	s.Offered += o.Offered
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Reordered += o.Reordered
	s.Corrupted += o.Corrupted
	return s
}

// impDelivery is the fate of one delivered copy of a datagram.
type impDelivery struct {
	extraDelay time.Duration
	corruptAt  int // payload byte index to bit-flip, -1 = intact
}

// impairer applies one Impairment. All PRNG draws happen under mu in a
// fixed per-packet order, so the decision sequence is a pure function of
// the seed and the order datagrams arrive.
type impairer struct {
	imp Impairment

	mu  sync.Mutex
	rng *rand.Rand

	offered    atomic.Int64
	dropped    atomic.Int64
	duplicated atomic.Int64
	reordered  atomic.Int64
	corrupted  atomic.Int64
}

func newImpairer(imp Impairment) *impairer {
	seed := imp.Seed
	if seed == 0 {
		seed = 1
	}
	return &impairer{imp: imp, rng: rand.New(rand.NewSource(seed))}
}

// reorderWindow resolves the hold-back window against the link latency.
func (ip *impairer) reorderWindow(oneWay time.Duration) time.Duration {
	if ip.imp.ReorderWindow > 0 {
		return ip.imp.ReorderWindow
	}
	if oneWay > 0 {
		return 4 * oneWay
	}
	return time.Millisecond
}

// decide rolls one datagram's fate. It returns drop=true, or up to two
// deliveries in dels[:n], each with its extra delay beyond the link
// latency and an optional corruption position.
func (ip *impairer) decide(payloadLen int, oneWay time.Duration) (drop bool, dels [2]impDelivery, n int) {
	ip.mu.Lock()
	defer ip.mu.Unlock()
	ip.offered.Add(1)
	if ip.imp.Drop > 0 && ip.rng.Float64() < ip.imp.Drop {
		ip.dropped.Add(1)
		return true, dels, 0
	}
	n = 1
	if ip.imp.Duplicate > 0 && ip.rng.Float64() < ip.imp.Duplicate {
		n = 2
		ip.duplicated.Add(1)
	}
	for i := 0; i < n; i++ {
		d := impDelivery{corruptAt: -1}
		if ip.imp.Corrupt > 0 && payloadLen > 0 && ip.rng.Float64() < ip.imp.Corrupt {
			d.corruptAt = ip.rng.Intn(payloadLen)
			ip.corrupted.Add(1)
		}
		if ip.imp.Jitter > 0 {
			d.extraDelay += time.Duration(ip.rng.Int63n(int64(ip.imp.Jitter)))
		}
		if ip.imp.Reorder > 0 && ip.rng.Float64() < ip.imp.Reorder {
			w := ip.reorderWindow(oneWay)
			d.extraDelay += time.Duration(1 + ip.rng.Int63n(int64(w)))
			ip.reordered.Add(1)
		}
		dels[i] = d
	}
	return false, dels, n
}

// corruptPayload returns a copy of payload with one byte bit-flipped. The
// original is never mutated: senders may retain their buffers.
func corruptPayload(payload []byte, at int) []byte {
	out := append([]byte(nil), payload...)
	out[at] ^= 0x20
	return out
}

// stats snapshots the impairer's counters.
func (ip *impairer) stats() ImpairStats {
	return ImpairStats{
		Offered:    ip.offered.Load(),
		Dropped:    ip.dropped.Load(),
		Duplicated: ip.duplicated.Load(),
		Reordered:  ip.reordered.Load(),
		Corrupted:  ip.corrupted.Load(),
	}
}
