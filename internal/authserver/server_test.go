package authserver

import (
	"crypto/tls"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
)

func startServer(t *testing.T, withTLS bool) (*Server, *tls.Config) {
	t.Helper()
	e := hierarchyEngine(t)
	s := &Server{Engine: e, IdleTimeout: 500 * time.Millisecond}
	var clientTLS *tls.Config
	tlsAddr := ""
	if withTLS {
		var err error
		s.TLSConfig, clientTLS, err = SelfSignedTLSConfig("127.0.0.1")
		if err != nil {
			t.Fatal(err)
		}
		tlsAddr = "127.0.0.1:0"
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0", tlsAddr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, clientTLS
}

func TestServerUDP(t *testing.T) {
	s, _ := startServer(t, false)
	conn, err := net.DialUDP("udp", nil, s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Localhost is not a configured view source, so expect REFUSED — which
	// still proves the full UDP path works.
	q := dnswire.NewQuery(77, "www.example.com.", dnswire.TypeA)
	wire, _ := q.Pack(nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 77 || !resp.Header.QR {
		t.Errorf("header = %+v", resp.Header)
	}
	if resp.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v", resp.Header.Rcode)
	}
}

func TestServerUDPWithDefaultView(t *testing.T) {
	e := hierarchyEngine(t)
	// Promote the example zone to a default view so loopback clients get
	// real answers.
	exView := e.ViewFor(exNSAddr)
	if err := e.AddView(&View{Name: "default", Zones: exView.Zones}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Engine: e}
	if err := s.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.DialUDP("udp", nil, s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(78, "www.example.com.", dnswire.TypeA)
	wire, _ := q.Pack(nil)
	conn.Write(wire)
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
		t.Errorf("answer = %v", resp.Answer)
	}
}

// TestServerTCPConnectionReuse sends several queries over one connection,
// the behaviour connection-oriented DNS depends on.
func TestServerTCPConnectionReuse(t *testing.T) {
	s, _ := startServer(t, false)
	conn, err := net.Dial("tcp", s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(uint16(100+i), "www.example.com.", dnswire.TypeA)
		wire, _ := q.Pack(nil)
		if err := WriteTCPMessage(conn, wire); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		respWire, err := ReadTCPMessage(conn)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		var resp dnswire.Message
		if err := resp.Unpack(respWire); err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(100+i) {
			t.Errorf("query %d: ID = %d", i, resp.Header.ID)
		}
	}
	if got := s.TotalTCPConns(); got != 1 {
		t.Errorf("total TCP conns = %d, want 1 (reuse)", got)
	}
}

func TestServerTCPIdleTimeout(t *testing.T) {
	s, _ := startServer(t, false)
	conn, err := net.Dial("tcp", s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Don't send anything; the server must close the connection after the
	// idle timeout (500 ms here).
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("expected connection close")
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond || elapsed > 2500*time.Millisecond {
		t.Errorf("closed after %v, want ~500ms", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.OpenTCPConns() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.OpenTCPConns(); got != 0 {
		t.Errorf("open conns = %d after timeout", got)
	}
}

func TestServerTLS(t *testing.T) {
	s, clientTLS := startServer(t, true)
	conn, err := tls.Dial("tcp", s.TLSAddr().String(), clientTLS)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(200, "www.example.com.", dnswire.TypeA)
	wire, _ := q.Pack(nil)
	if err := WriteTCPMessage(conn, wire); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	respWire, err := ReadTCPMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(respWire); err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 200 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
}

func TestServerTCPGarbageDropsConnection(t *testing.T) {
	s, _ := startServer(t, false)
	conn, err := net.Dial("tcp", s.TCPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Length prefix of zero is a protocol violation.
	conn.Write([]byte{0, 0})
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection survived zero-length frame")
	}
}

// TestServerConcurrentClients hammers the UDP listener from many
// goroutines to exercise the worker pool under contention.
func TestServerConcurrentClients(t *testing.T) {
	e := hierarchyEngine(t)
	exView := e.ViewFor(exNSAddr)
	if err := e.AddView(&View{Name: "default", Zones: exView.Zones}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Engine: e, UDPWorkers: 8}
	if err := s.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 16
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.DialUDP("udp", nil, s.UDPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			for i := 0; i < perClient; i++ {
				q := dnswire.NewQuery(uint16(c*1000+i), "www.example.com.", dnswire.TypeA)
				wire, _ := q.Pack(nil)
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
				n, err := conn.Read(buf)
				if err != nil {
					errs <- err
					return
				}
				var resp dnswire.Message
				if err := resp.Unpack(buf[:n]); err != nil {
					errs <- err
					return
				}
				if resp.Header.ID != uint16(c*1000+i) {
					errs <- fmt.Errorf("client %d: wrong ID %d", c, resp.Header.ID)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := e.Stats().Queries; got != clients*perClient {
		t.Errorf("served %d queries, want %d", got, clients*perClient)
	}
}

// TestServerReusePortUDP serves through per-worker SO_REUSEPORT sockets
// (Linux) and checks queries are answered; elsewhere it checks the
// silent single-socket fallback.
func TestServerReusePortUDP(t *testing.T) {
	e := hierarchyEngine(t)
	exView := e.ViewFor(exNSAddr)
	if err := e.AddView(&View{Name: "default", Zones: exView.Zones}); err != nil {
		t.Fatal(err)
	}
	s := &Server{Engine: e, UDPWorkers: 4, ReusePort: true}
	if err := s.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if runtime.GOOS == "linux" {
		if got := len(s.udpConns); got != 4 {
			t.Errorf("udp sockets = %d, want 4 (one per worker)", got)
		}
		for i, c := range s.udpConns[1:] {
			if c.LocalAddr().String() != s.udpConns[0].LocalAddr().String() {
				t.Errorf("socket %d bound to %v, want %v", i+1, c.LocalAddr(), s.udpConns[0].LocalAddr())
			}
		}
	} else if got := len(s.udpConns); got != 1 {
		t.Errorf("udp sockets = %d, want 1 (fallback)", got)
	}
	// Many short-lived client sockets: the kernel hashes each 4-tuple to
	// some member of the reuseport group, so this exercises every socket
	// with high probability.
	for i := 0; i < 32; i++ {
		conn, err := net.DialUDP("udp", nil, s.UDPAddr())
		if err != nil {
			t.Fatal(err)
		}
		q := dnswire.NewQuery(uint16(300+i), "www.example.com.", dnswire.TypeA)
		wire, _ := q.Pack(nil)
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			conn.Close()
			t.Fatalf("query %d: %v", i, err)
		}
		var resp dnswire.Message
		if err := resp.Unpack(buf[:n]); err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(300+i) || len(resp.Answer) != 1 {
			t.Errorf("query %d: header=%+v answers=%d", i, resp.Header, len(resp.Answer))
		}
		conn.Close()
	}
}
