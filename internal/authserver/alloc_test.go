package authserver

import (
	"testing"

	"ldplayer/internal/dnswire"
)

// TestRespondCachedAllocs pins the cache-hit fast path at ≤1 allocation
// per query (the caller-owned response copy). A regression here means a
// future change re-introduced per-query garbage on the hot path.
func TestRespondCachedAllocs(t *testing.T) {
	e := hierarchyEngine(t)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cached Respond allocs/op = %.2f, want ≤ 1", allocs)
	}
	if cs := e.CacheStats(); cs.Hits == 0 {
		t.Fatal("fast path never hit the cache")
	}
}

// TestRespondCachedAllocsEDNS covers the fast path's OPT parse too.
func TestRespondCachedAllocsEDNS(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA)
	q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: true}
	wire, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cached EDNS Respond allocs/op = %.2f, want ≤ 1", allocs)
	}
}
