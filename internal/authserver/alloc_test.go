package authserver

import (
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
)

// TestRespondCachedAllocs pins the cache-hit fast path at ≤1 allocation
// per query (the caller-owned response copy). A regression here means a
// future change re-introduced per-query garbage on the hot path.
func TestRespondCachedAllocs(t *testing.T) {
	e := hierarchyEngine(t)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cached Respond allocs/op = %.2f, want ≤ 1", allocs)
	}
	if cs := e.CacheStats(); cs.Hits == 0 {
		t.Fatal("fast path never hit the cache")
	}
}

// TestRespondCachedAllocsInstrumented pins the same guarantee with full
// observability enabled at the worst case — every query sampled, timed,
// and traced (sampleEvery=1). Spans are pooled and the ring stores span
// values, so the steady state stays at the one caller-owned response copy.
func TestRespondCachedAllocsInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc counts are meaningless")
	}
	e := hierarchyEngine(t)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256, 1)
	e.Instrument(reg, tracer, 1)
	wire, err := dnswire.NewQuery(3, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache and the span pool.
	for i := 0; i < 16; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("instrumented cached Respond allocs/op = %.2f, want ≤ 1", allocs)
	}
	if tracer.Total() == 0 {
		t.Fatal("tracer captured no spans")
	}
	if s, ok := reg.Find("metadns_respond_latency_ns", ""); !ok || s.Hist == nil || s.Hist.Count == 0 {
		t.Fatal("latency histogram recorded nothing")
	}
}

// TestRespondCachedAllocsEDNS covers the fast path's OPT parse too.
func TestRespondCachedAllocsEDNS(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA)
	q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: true}
	wire, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cached EDNS Respond allocs/op = %.2f, want ≤ 1", allocs)
	}
}
