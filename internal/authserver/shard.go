package authserver

import (
	"net/netip"
	"sync/atomic"
	"time"

	"ldplayer/internal/obs"
	"ldplayer/internal/qlog"
)

// EngineShard is one batch-path worker's private slice of the engine: a
// shard-local packed-response cache (a plain map, no mutex — the owning
// goroutine is its only reader and writer), a private coreStats counter
// set, and a private scratch. The batched UDP datapath pairs one shard
// with each SO_REUSEPORT worker socket so the receive→respond→send hot
// path touches no cross-shard mutable state: no shared cache lock, no
// contended counter cache lines, no sync.Pool traffic. Shared *read-only*
// state (the routing snapshot, the cache capacity, the obs sampling
// state) is still loaded atomically from the engine, which costs nothing
// under contention-free reads.
//
// Concurrency contract: AppendRespond and EndBatch must be called from a
// single goroutine (the worker that owns the shard). Stats readers only
// touch the shard's atomic counters, never the cache map, so Engine.Stats
// and obs scrapes stay race-free while the shard serves. That contract
// is machine-checked: the directive below makes ldlint's shardconfine
// analyzer flag any shard value escaping its owning goroutine (channel
// sends, go-closure captures, package-level or cross-shard stores).
//
//ldlint:confined
type EngineShard struct {
	e *Engine

	// sc is the shard-owned scratch: unlike the shared path there is no
	// pool round-trip per query.
	sc scratch

	// cache is the shard-local packed-response cache. Keys and entries
	// have the same shape as the shared respCache; the map itself is
	// confined to the owning goroutine.
	cache map[string]*cacheEntry
	// gen is the cache-generation snapshot; EndBatch clears the map when
	// the engine bumps cacheGen (cap change / disablement).
	gen uint64

	// cacheEntries/cacheEvictions mirror the map's size and eviction
	// count for CacheStats readers, which must not touch the map itself.
	cacheEntries   atomic.Int64
	cacheEvictions atomic.Int64

	// stats is the shard-private counter set, summed into Engine.Stats.
	stats coreStats

	// Run-length batched per-view accounting: consecutive queries routed
	// to the same view accumulate locally and flush with one atomic add
	// on view change or batch end, so the (shared) per-view counter is
	// touched ~once per batch instead of once per query.
	pendVR *viewRoute
	pendN  int64

	// qlog is the shard's SPSC telemetry producer (nil when telemetry is
	// off); qlogNow is the batch-wide receive timestamp BeginBatch stamps.
	qlog    *qlog.Producer
	qlogNow int64
}

// NewShard registers and returns a new batch-path shard.
func (e *Engine) NewShard() *EngineShard {
	sh := &EngineShard{
		e:     e,
		cache: make(map[string]*cacheEntry),
		gen:   e.cacheGen.Load(),
	}
	sh.sc.key = make([]byte, 0, 280)
	sh.sc.buf = make([]byte, 0, 2048)
	e.addMu.Lock()
	if qs := e.qlogSt.Load(); qs != nil {
		sh.qlog = qs.pipe.Producer()
	}
	cur := *e.shards.Load()
	next := make([]*EngineShard, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = sh
	e.shards.Store(&next)
	e.addMu.Unlock()
	return sh
}

// AppendRespond answers the wire-format query arriving from src over
// transport, appending the response to dst and returning the extended
// slice. A response was produced iff the result is longer than dst; on
// error (or a drop) dst is returned unchanged. The caller owns dst and
// typically reuses one slab across a whole receive batch, so the
// cache-hit steady state allocates nothing.
//
//ldlint:noalloc
func (sh *EngineShard) AppendRespond(dst, query []byte, src netip.Addr, transport Transport) ([]byte, error) {
	e := sh.e
	st := &sh.stats
	qn := uint64(st.queries.Add(1))
	st.queryBytes.Add(int64(len(query)))
	if t := int(transport); t >= 0 && t < len(st.qByTransport) {
		st.qByTransport[t].Add(1)
	}

	// Sampled observability: the shard's own query counter gates, so each
	// shard samples 1 in N of its own traffic.
	ob := e.obsState.Load()
	var sp *obs.Span
	var t0 time.Time
	if ob != nil && qn&ob.mask == 0 {
		t0 = time.Now()
		sp = ob.tracer.Begin("query")
		if sp != nil {
			sp.Transport = transport.String()
		}
	}

	vr := e.routing.Load().route(src)
	if vr != nil {
		if vr == sh.pendVR {
			sh.pendN++
		} else {
			sh.flushViewCount()
			sh.pendVR = vr
			sh.pendN = 1
		}
		if sp != nil {
			sp.View = vr.view.Name
		}
	}
	sp.Mark("view")

	sc := &sh.sc
	cacheable := false
	qlen := 0
	if vr != nil && e.cacheCap.Load() > 0 {
		if qnameLen, ok := buildCacheKey(sc, query, transport); ok {
			cacheable = true
			qlen = qnameLen
			sc.qnameLen = qnameLen
			setSpanQName(sp, query[12:12+qnameLen])
			if ent := sh.cache[string(sc.key)]; ent != nil {
				st.cacheHits.Add(1)
				dst = appendCached(st, dst, ent, query, qnameLen)
				if sp != nil {
					sp.Detail = "cache_hit"
					sp.Rcode = int(ent.rcode)
				}
				sp.Mark("cache_hit")
				e.finishSample(ob, sp, t0)
				sh.qlogEmit(query, src, transport, vr, qnameLen, ent.rcode, qlog.FlagCacheHit, t0)
				return dst, nil
			}
			st.cacheMisses.Add(1)
		}
	}

	out, meta, err := e.respondSlow(st, sc, dst, query, vr, transport, sp)
	if err == nil && cacheable && meta.cacheable && len(out) > len(dst) {
		sh.cachePut(sc.key, out[len(dst):], sc.qnameLen, meta, int(e.cacheCap.Load()))
	}
	if sp != nil {
		sp.Rcode = int(meta.rcode)
	}
	e.finishSample(ob, sp, t0)
	if err != nil {
		sh.qlogEmit(query, src, transport, vr, qlen, meta.rcode, qlog.FlagDropped, t0)
		return dst, err
	}
	var flags uint8
	if len(out) == len(dst) {
		flags = qlog.FlagDropped
	}
	sh.qlogEmit(query, src, transport, vr, qlen, meta.rcode, flags, t0)
	return out, nil
}

// EndBatch flushes the pending per-view count and applies any cache
// invalidation. Call it once per receive batch, after the batch's last
// AppendRespond.
//
//ldlint:noalloc
func (sh *EngineShard) EndBatch() {
	sh.flushViewCount()
	if g := sh.e.cacheGen.Load(); g != sh.gen {
		sh.gen = g
		clear(sh.cache)
		sh.cacheEntries.Store(0)
	}
}

// flushViewCount publishes the accumulated run of same-view queries.
//
//ldlint:noalloc
func (sh *EngineShard) flushViewCount() {
	if sh.pendVR != nil && sh.pendN > 0 {
		sh.pendVR.queries.Add(sh.pendN)
	}
	sh.pendVR = nil
	sh.pendN = 0
}

// cachePut stores a copy of resp in the shard-local cache under key,
// evicting an arbitrary entry at capacity. Mirrors respCache.put but
// needs no lock: the owning goroutine is the only mutator.
func (sh *EngineShard) cachePut(key, resp []byte, qnameLen int, meta respMeta, capacity int) {
	if capacity <= 0 || len(resp) < 12+qnameLen+4 {
		return
	}
	//ldlint:ignore noallocprop the documented per-miss allocation: the shard cache keeps a private copy of the response image
	wire := make([]byte, len(resp))
	copy(wire, resp)
	wire[0], wire[1] = 0, 0
	if _, exists := sh.cache[string(key)]; !exists {
		for len(sh.cache) >= capacity {
			for k := range sh.cache {
				delete(sh.cache, k)
				break
			}
			sh.cacheEvictions.Add(1)
		}
	}
	sh.cache[string(key)] = &cacheEntry{wire: wire, truncated: meta.truncated, refused: meta.refused, rcode: meta.rcode}
	sh.cacheEntries.Store(int64(len(sh.cache)))
}
