//go:build !linux

package authserver

import (
	"errors"
	"syscall"
)

const reusePortSupported = false

// reusePortControl is never reached when reusePortSupported is false;
// Server.listenUDP falls back to a single shared socket instead.
func reusePortControl(network, address string, c syscall.RawConn) error {
	return errors.New("authserver: SO_REUSEPORT not supported on this platform")
}
