package authserver

import (
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/qlog"
)

func qlogEngine(t *testing.T) (*Engine, *qlog.Pipeline) {
	t.Helper()
	e := hierarchyEngine(t)
	p := qlog.New(qlog.Config{Sinks: []qlog.Sink{qlog.NewDiscardSink()}})
	p.Start()
	e.SetQlog(p)
	t.Cleanup(func() { p.Close() })
	return e, p
}

// TestShardAppendRespondAllocsQlog pins the batch cache-hit path at the
// same ≤1 allocation budget as without telemetry: the qlog emit is field
// stores into a reserved ring slot, nothing more.
func TestShardAppendRespondAllocsQlog(t *testing.T) {
	e, p := qlogEngine(t)
	sh := e.NewShard()
	sh.BeginBatch()
	wire, err := dnswire.NewQuery(9, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]byte, 0, 4096)
	if _, err := sh.AppendRespond(slab, wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	sh.EndBatch()
	allocs := testing.AllocsPerRun(1000, func() {
		out, err := sh.AppendRespond(slab[:0], wire, exNSAddr, UDP)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty response")
		}
	})
	if allocs > 1 {
		t.Errorf("shard cache-hit allocs/op with qlog = %.2f, want ≤ 1", allocs)
	}
	if st := p.Stats(); st.Published+st.RingDrops < 1000 {
		t.Fatalf("qlog recorded %d+%d events; emit path not exercised", st.Published, st.RingDrops)
	}
}

// TestRespondCachedAllocsQlog pins the shared-path cache hit with
// telemetry at its usual ≤1 allocation (the caller-owned response copy).
func TestRespondCachedAllocsQlog(t *testing.T) {
	e, p := qlogEngine(t)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("cached Respond allocs/op with qlog = %.2f, want ≤ 1", allocs)
	}
	if st := p.Stats(); st.Published+st.RingDrops < 1000 {
		t.Fatalf("qlog recorded %d+%d events; emit path not exercised", st.Published, st.RingDrops)
	}
}

// TestQlogStalledPipelineNeverBlocksServing wedges the collector (never
// started) behind a tiny ring and proves the serving path at full tilt
// neither blocks nor loses accounting: every query is answered, every
// event is either published or counted shed, and the whole burst clears
// in datapath time, not collector time.
func TestQlogStalledPipelineNeverBlocksServing(t *testing.T) {
	const queries = 5000
	e := hierarchyEngine(t)
	p := qlog.New(qlog.Config{RingSize: 64, Sinks: []qlog.Sink{qlog.NewDiscardSink()}})
	// Deliberately not started: the worst stall a sink can cause.
	e.SetQlog(p)
	sh := e.NewShard()
	wire, err := dnswire.NewQuery(3, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]byte, 0, 4096)
	start := time.Now()
	sh.BeginBatch()
	for i := 0; i < queries; i++ {
		out, err := sh.AppendRespond(slab[:0], wire, exNSAddr, UDP)
		if err != nil || len(out) == 0 {
			t.Fatalf("query %d: err=%v len=%d", i, err, len(out))
		}
	}
	sh.EndBatch()
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Errorf("%d queries with a stalled pipeline took %v; emit blocked", queries, elapsed)
	}
	st := p.Stats()
	if st.Published+st.RingDrops != queries {
		t.Errorf("published %d + shed %d != %d queries", st.Published, st.RingDrops, queries)
	}
	if st.RingDrops == 0 {
		t.Error("64-slot ring with no collector shed nothing; test is vacuous")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQlogEventFields spot-checks what the emit path records on the
// shared path: identity, question, flags, and the events==queries
// invariant across hit, miss, and refused exits.
func TestQlogEventFields(t *testing.T) {
	e := hierarchyEngine(t)
	var got []qlog.Event
	sink := &captureSink{into: &got}
	p := qlog.New(qlog.Config{Sinks: []qlog.Sink{sink}})
	e.SetQlog(p) // never started: Close drains inline, deterministically

	wire, err := dnswire.NewQuery(77, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, TCP); err != nil { // TCP: separate cache key
		t.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil { // hit
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("captured %d events, want 3", len(got))
	}
	wantView := e.ViewFor(exNSAddr).Name
	for i, ev := range got {
		if ev.Peer != exNSAddr {
			t.Errorf("event %d: peer %v", i, ev.Peer)
		}
		if ev.ID != 77 || ev.QType != uint16(dnswire.TypeA) || ev.QNameString() != "www.example.com." {
			t.Errorf("event %d: question %d %d %q", i, ev.ID, ev.QType, ev.QNameString())
		}
		if ev.View != wantView {
			t.Errorf("event %d: view %q, want %q", i, ev.View, wantView)
		}
	}
	if got[0].Flags&qlog.FlagCacheHit != 0 {
		t.Error("first query flagged as cache hit")
	}
	if got[1].Transport != uint8(TCP) {
		t.Errorf("second event transport %d, want TCP", got[1].Transport)
	}
	if got[2].Flags&qlog.FlagCacheHit == 0 {
		t.Error("repeat query not flagged as cache hit")
	}
}

// captureSink stores events for assertions.
type captureSink struct {
	into    *[]qlog.Event
	written int64
}

func (s *captureSink) Name() string { return "capture" }
func (s *captureSink) WriteBatch(evs []qlog.Event) {
	*s.into = append(*s.into, evs...)
	s.written += int64(len(evs))
}
func (s *captureSink) Stats() qlog.SinkStats { return qlog.SinkStats{Written: s.written} }
func (s *captureSink) Close() error          { return nil }
