// Package authserver implements the meta-DNS-server of §2.4: a single
// authoritative server instance that correctly emulates multiple
// independent levels of the DNS hierarchy. Zones are organized into
// split-horizon views selected by the query's *source address* — which,
// after the recursive proxy's OQDA rewrite, is the public address of the
// nameserver the query was originally destined for. One engine therefore
// answers as the root, the TLDs, and every SLD, each from the correct
// zone, as if they were independent servers.
//
// The engine is transport-agnostic; UDP, TCP and TLS listeners (live mode)
// and a netsim adapter (testbed mode) all feed it.
//
// The query hot path is engineered for replay-scale rates (§4.5): view
// routing is an atomically-swapped immutable snapshot (no per-packet
// locks), zone selection is a longest-enclosing-origin suffix-map walk
// (O(qname labels), not O(zones)), and fully-encoded responses are kept
// in a per-view packed-response cache so repeated questions are answered
// by patching two ID bytes and the echoed question into a copy of the
// cached wire image.
package authserver

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
	"ldplayer/internal/qlog"
	"ldplayer/internal/zone"
)

// Transport identifies how a query arrived, which controls truncation.
type Transport int

// Transports.
const (
	UDP Transport = iota
	TCP
	TLS
)

// String returns the transport mnemonic.
func (t Transport) String() string {
	switch t {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case TLS:
		return "tls"
	}
	return "?"
}

// View is a split-horizon view: the zones served to queries arriving from
// Sources. It corresponds to a BIND view with match-clients.
type View struct {
	Name    string
	Sources []netip.Addr
	Zones   []*zone.Zone
}

// viewRoute is the immutable per-view runtime state built when the view
// is registered: the origin suffix map for O(labels) zone selection and
// the packed-response cache. Zones are immutable after load (§2.3 zone
// files are fixed artifacts for a run), so neither structure ever needs
// invalidation.
type viewRoute struct {
	view *View
	// zones maps canonical zone origin → zone.
	zones map[string]*zone.Zone
	cache *respCache
	// queries counts queries routed to this view (exposed as
	// metadns_view_queries_total{view=...} when instrumented).
	queries atomic.Int64
}

// newViewRoute precomputes the routing state for v.
func newViewRoute(v *View) *viewRoute {
	vr := &viewRoute{
		view:  v,
		zones: make(map[string]*zone.Zone, len(v.Zones)),
		cache: newRespCache(),
	}
	for _, z := range v.Zones {
		// First zone with a given origin wins, matching the old
		// first-longest linear scan on (pathological) duplicate origins.
		if _, dup := vr.zones[z.Origin]; !dup {
			vr.zones[z.Origin] = z
		}
	}
	return vr
}

// zoneFor selects the view's zone with the longest origin enclosing
// qname by walking qname's ancestor chain through the origin map. qname
// must be canonical (lowercase, dot-terminated), which holds for every
// name produced by dnswire unpacking.
//
//ldlint:noalloc
func (vr *viewRoute) zoneFor(qname string) *zone.Zone {
	for name := qname; ; {
		if z, ok := vr.zones[name]; ok {
			return z
		}
		if name == "." {
			return nil
		}
		if i := strings.IndexByte(name, '.'); i+1 < len(name) {
			name = name[i+1:]
		} else {
			name = "."
		}
	}
}

// routing is the immutable source→view snapshot the hot path reads with
// a single atomic load. AddView builds a new snapshot and swaps it in.
type routing struct {
	bySource    map[netip.Addr]*viewRoute
	defaultView *viewRoute
}

// route returns the view route matching src (or the default, or nil).
//
//ldlint:noalloc
func (rt *routing) route(src netip.Addr) *viewRoute {
	if vr, ok := rt.bySource[src]; ok {
		return vr
	}
	return rt.defaultView
}

// DefaultResponseCacheCap bounds each view's packed-response cache. The
// recursive experiment's 549 zones stay well under it while replayed
// B-Root traffic (heavy-tailed repeat questions) gets near-total hits.
const DefaultResponseCacheCap = 8192

// coreStats is one full set of per-query counters. The engine embeds one
// instance charged by the shared Respond path (UDP fallback, TCP, TLS,
// netsim); every EngineShard owns a private instance charged by its
// batch path. Shard instances live on their own cache lines and are only
// ever written by their owning worker goroutine, so the batched hot path
// performs no cross-core counter contention; readers (Stats, obs scrape)
// sum the engine instance and every shard instance.
type coreStats struct {
	queries     atomic.Int64
	responses   atomic.Int64
	truncated   atomic.Int64
	formErrs    atomic.Int64
	refused     atomic.Int64
	notImpl     atomic.Int64
	respBytes   atomic.Int64
	queryBytes  atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Dimensioned stats: queries by arrival transport and responses by
	// rcode. Plain atomic adds indexed by small constants — the hot path
	// never formats a label.
	qByTransport [3]atomic.Int64
	respByRcode  [16]atomic.Int64
}

// Engine answers DNS queries from a set of views. It is safe for
// concurrent use; views may even be added while serving.
type Engine struct {
	addMu    sync.Mutex // serializes AddView / cache-cap / shard changes
	routing  atomic.Pointer[routing]
	cacheCap atomic.Int64
	// cacheGen invalidates shard-local caches: shards compare it to their
	// snapshot at batch boundaries and clear on mismatch.
	cacheGen atomic.Uint64

	// coreStats is the shared-path counter set; see the type comment.
	coreStats

	// shards is the copy-on-write list of batch-path shards (read at
	// Stats/scrape time, swapped under addMu by NewShard).
	shards atomic.Pointer[[]*EngineShard]

	routingSwaps atomic.Int64

	// obsState enables sampled latency/tracing when non-nil; obsReg
	// (guarded by addMu) lets AddView register per-view counters for
	// views added after Instrument.
	obsState atomic.Pointer[engineObs]
	obsReg   *obs.Registry

	// qlogSt enables per-query telemetry events when non-nil; see
	// SetQlog in qlog.go.
	qlogSt atomic.Pointer[engineQlog]
}

// engineObs is the sampled-observability state installed by Instrument.
type engineObs struct {
	tracer  *obs.Tracer    // may be nil: metrics without spans
	latency *obs.Histogram // sampled Respond latency, nanoseconds
	// mask gates sampling as queries&mask == 0 — the period is rounded up
	// to a power of two so the hot path avoids an integer division, and
	// the query counter the engine already increments doubles as the
	// sampling counter, so the gate costs no extra atomic.
	mask uint64
}

// DefaultObsSampleEvery is the default 1-in-N sampling period for Respond
// latency timing and lifecycle spans. At replay rates the sampled path
// (two time.Now calls plus a pooled span) is amortized to noise.
const DefaultObsSampleEvery = 64

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	e := &Engine{}
	e.cacheCap.Store(DefaultResponseCacheCap)
	e.routing.Store(&routing{bySource: make(map[netip.Addr]*viewRoute)})
	e.shards.Store(&[]*EngineShard{})
	return e
}

// SetResponseCacheCap sets the per-view packed-response cache capacity.
// n <= 0 disables the cache entirely. Existing cached entries are
// dropped so a smaller cap (or disablement) takes effect immediately.
func (e *Engine) SetResponseCacheCap(n int) {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	e.cacheCap.Store(int64(n))
	rt := e.routing.Load()
	seen := make(map[*respCache]struct{})
	for _, vr := range rt.bySource {
		seen[vr.cache] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView.cache] = struct{}{}
	}
	for c := range seen {
		c.clear()
	}
	// Shard-local caches are owned by their worker goroutines; bumping the
	// generation makes each shard clear its map at its next batch boundary.
	e.cacheGen.Add(1)
}

// AddView registers v. Views with no Sources become the default view; a
// source address may belong to only one view. The new routing snapshot
// becomes visible atomically; in-flight queries finish on the old one.
func (e *Engine) AddView(v *View) error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	cur := e.routing.Load()
	next := &routing{
		bySource:    make(map[netip.Addr]*viewRoute, len(cur.bySource)+len(v.Sources)),
		defaultView: cur.defaultView,
	}
	for src, vr := range cur.bySource {
		next.bySource[src] = vr
	}
	vr := newViewRoute(v)
	if len(v.Sources) == 0 {
		if cur.defaultView != nil {
			return fmt.Errorf("authserver: second default view %q", v.Name)
		}
		next.defaultView = vr
	} else {
		for _, src := range v.Sources {
			if owner, dup := next.bySource[src]; dup {
				return fmt.Errorf("authserver: source %v already matched by view %q", src, owner.view.Name)
			}
		}
		for _, src := range v.Sources {
			next.bySource[src] = vr
		}
	}
	e.routing.Store(next)
	e.routingSwaps.Add(1)
	if e.obsReg != nil {
		registerViewCounter(e.obsReg, vr)
	}
	return nil
}

// Instrument registers the engine's counters and gauges with reg — all of
// them read the existing atomics at scrape time, so the query path gains
// nothing — and enables sampled latency timing plus (when tracer is
// non-nil) query-lifecycle spans: one query in sampleEvery is timed into
// the metadns_respond_latency_ns histogram and traced recv → view-select →
// cache-hit/lookup → pack. sampleEvery <= 0 means DefaultObsSampleEvery;
// it is rounded up to a power of two. The tracer's own sampling should be
// 1 (NewTracer(n, 1)) — the engine already gates which queries trace.
func (e *Engine) Instrument(reg *obs.Registry, tracer *obs.Tracer, sampleEvery int) {
	if sampleEvery <= 0 {
		sampleEvery = DefaultObsSampleEvery
	}
	period := uint64(1)
	for period < uint64(sampleEvery) {
		period <<= 1
	}
	e.addMu.Lock()
	defer e.addMu.Unlock()
	e.obsReg = reg

	for t := UDP; t <= TLS; t++ {
		idx := int(t)
		reg.CounterFunc("metadns_queries_total", obs.LabelValue("transport", t.String()),
			"queries received by arrival transport",
			func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.qByTransport[idx] }) })
	}
	for _, rc := range []dnswire.Rcode{dnswire.RcodeNoError, dnswire.RcodeFormErr,
		dnswire.RcodeServFail, dnswire.RcodeNXDomain, dnswire.RcodeNotImp, dnswire.RcodeRefused} {
		idx := int(rc) & 0xF
		reg.CounterFunc("metadns_responses_total", obs.LabelValue("rcode", rc.String()),
			"responses sent by rcode",
			func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.respByRcode[idx] }) })
	}
	reg.CounterFunc("metadns_query_bytes_total", "", "query bytes received",
		func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.queryBytes }) })
	reg.CounterFunc("metadns_response_bytes_total", "", "response bytes sent",
		func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.respBytes }) })
	reg.CounterFunc("metadns_truncated_total", "", "UDP responses truncated",
		func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.truncated }) })
	reg.CounterFunc("metadns_cache_hits_total", "", "packed-response cache hits",
		func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.cacheHits }) })
	reg.CounterFunc("metadns_cache_misses_total", "", "packed-response cache misses",
		func() int64 { return e.sumCounter(func(cs *coreStats) *atomic.Int64 { return &cs.cacheMisses }) })
	reg.CounterFunc("metadns_cache_evictions_total", "", "packed-response cache evictions",
		func() int64 { return e.CacheStats().Evictions })
	reg.GaugeFunc("metadns_cache_entries", "", "packed responses currently cached",
		func() int64 { return e.CacheStats().Entries })
	reg.CounterFunc("metadns_routing_swaps_total", "", "routing snapshot swaps (view additions)",
		e.routingSwaps.Load)

	rt := e.routing.Load()
	seen := make(map[*viewRoute]struct{})
	for _, vr := range rt.bySource {
		seen[vr] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView] = struct{}{}
	}
	for vr := range seen {
		registerViewCounter(reg, vr)
	}

	st := &engineObs{
		tracer:  tracer,
		latency: reg.Histogram("metadns_respond_latency_ns", "", "sampled Respond latency (ns)"),
		mask:    period - 1,
	}
	e.obsState.Store(st)
}

// registerViewCounter exposes one view's query counter.
func registerViewCounter(reg *obs.Registry, vr *viewRoute) {
	reg.CounterFunc("metadns_view_queries_total", obs.LabelValue("view", vr.view.Name),
		"queries routed to each split-horizon view", vr.queries.Load)
}

// ViewFor returns the view matching src (or the default view, or nil).
func (e *Engine) ViewFor(src netip.Addr) *View {
	if vr := e.routing.Load().route(src); vr != nil {
		return vr.view
	}
	return nil
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Queries       int64
	Responses     int64
	Truncated     int64
	FormErrs      int64
	Refused       int64
	NotImpl       int64
	QueryBytes    int64
	ResponseBytes int64
}

// Stats returns a snapshot of the engine counters, summed across the
// shared path and every batch shard.
func (e *Engine) Stats() Stats {
	var s Stats
	e.eachStats(func(cs *coreStats) {
		s.Queries += cs.queries.Load()
		s.Responses += cs.responses.Load()
		s.Truncated += cs.truncated.Load()
		s.FormErrs += cs.formErrs.Load()
		s.Refused += cs.refused.Load()
		s.NotImpl += cs.notImpl.Load()
		s.QueryBytes += cs.queryBytes.Load()
		s.ResponseBytes += cs.respBytes.Load()
	})
	return s
}

// eachStats visits the shared-path counter set and every shard's.
func (e *Engine) eachStats(f func(*coreStats)) {
	f(&e.coreStats)
	for _, sh := range *e.shards.Load() {
		f(&sh.stats)
	}
}

// sumCounter folds one counter across the shared path and all shards.
func (e *Engine) sumCounter(get func(*coreStats) *atomic.Int64) int64 {
	var n int64
	e.eachStats(func(cs *coreStats) { n += get(cs).Load() })
	return n
}

// CacheStats is a snapshot of the packed-response cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int64
	Evictions int64
}

// CacheStats returns hit/miss counters and the current entry and eviction
// counts across every view's response cache and every shard-local cache.
func (e *Engine) CacheStats() CacheStats {
	var st CacheStats
	e.eachStats(func(cs *coreStats) {
		st.Hits += cs.cacheHits.Load()
		st.Misses += cs.cacheMisses.Load()
	})
	rt := e.routing.Load()
	seen := make(map[*respCache]struct{})
	for _, vr := range rt.bySource {
		seen[vr.cache] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView.cache] = struct{}{}
	}
	for c := range seen {
		st.Entries += int64(c.len())
		st.Evictions += c.evictions.Load()
	}
	for _, sh := range *e.shards.Load() {
		st.Entries += sh.cacheEntries.Load()
		st.Evictions += sh.cacheEvictions.Load()
	}
	return st
}

// scratch bundles the per-call reusable state: unpack/response messages,
// the pack buffer, the cache key, and the echoed OPT. Pooled so the
// steady-state Respond path performs no per-query setup allocations.
type scratch struct {
	q        dnswire.Message
	resp     dnswire.Message
	edns     dnswire.EDNS
	key      []byte
	buf      []byte
	qnameLen int
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			key: make([]byte, 0, 280),
			buf: make([]byte, 0, 2048),
		}
	},
}

// respMeta records which stat counters a packed response charged, so
// cache hits can replay the same accounting.
type respMeta struct {
	cacheable bool
	truncated bool
	refused   bool
	rcode     dnswire.Rcode
}

// Respond answers the wire-format query arriving from src over transport.
// It always returns a response to send when err is nil; unparseable
// queries yield FORMERR when at least the header was readable, and a nil
// response (drop) otherwise. The returned slice is freshly allocated and
// owned by the caller.
//
//ldlint:noalloc
func (e *Engine) Respond(query []byte, src netip.Addr, transport Transport) ([]byte, error) {
	qn := uint64(e.queries.Add(1))
	e.queryBytes.Add(int64(len(query)))
	if t := int(transport); t >= 0 && t < len(e.qByTransport) {
		e.qByTransport[t].Add(1)
	}

	// Sampled observability: the query counter gates; unsampled queries
	// pay nothing further (span methods are nil-safe no-ops).
	ob := e.obsState.Load()
	var sp *obs.Span
	var t0 time.Time
	if ob != nil && qn&ob.mask == 0 {
		t0 = time.Now()
		sp = ob.tracer.Begin("query")
		if sp != nil {
			sp.Transport = transport.String()
		}
	}

	vr := e.routing.Load().route(src)
	if vr != nil {
		vr.queries.Add(1)
		if sp != nil {
			sp.View = vr.view.Name
		}
	}
	sp.Mark("view")

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	qs := e.qlogSt.Load()
	cacheable := false
	qlen := 0
	if vr != nil && e.cacheCap.Load() > 0 {
		if qnameLen, ok := buildCacheKey(sc, query, transport); ok {
			cacheable = true
			qlen = qnameLen
			sc.qnameLen = qnameLen
			setSpanQName(sp, query[12:12+qnameLen])
			if ent := vr.cache.get(sc.key); ent != nil {
				e.cacheHits.Add(1)
				out := appendCached(&e.coreStats, nil, ent, query, qnameLen)
				if sp != nil {
					sp.Detail = "cache_hit"
					sp.Rcode = int(ent.rcode)
				}
				sp.Mark("cache_hit")
				e.finishSample(ob, sp, t0)
				if qs != nil {
					e.qlogEmitShared(qs, query, src, transport, vr, qnameLen, ent.rcode, qlog.FlagCacheHit, t0)
				}
				return out, nil
			}
			e.cacheMisses.Add(1)
		}
	}

	out, meta, err := e.respondSlow(&e.coreStats, sc, nil, query, vr, transport, sp)
	if err == nil && cacheable && meta.cacheable {
		vr.cache.put(sc.key, out, sc.qnameLen, meta, int(e.cacheCap.Load()))
	}
	if sp != nil {
		sp.Rcode = int(meta.rcode)
	}
	e.finishSample(ob, sp, t0)
	if qs != nil {
		var flags uint8
		if err != nil || out == nil {
			flags = qlog.FlagDropped
		}
		e.qlogEmitShared(qs, query, src, transport, vr, qlen, meta.rcode, flags, t0)
	}
	return out, err
}

// finishSample records the sampled latency and publishes the span.
//
//ldlint:noalloc
func (e *Engine) finishSample(ob *engineObs, sp *obs.Span, t0 time.Time) {
	if ob == nil || t0.IsZero() {
		return
	}
	ob.latency.Record(time.Since(t0).Nanoseconds())
	ob.tracer.Finish(sp)
}

// setSpanQName converts a wire-form qname (length-prefixed labels) to
// presentation form into the span's fixed buffer. Sampled path only; the
// stack buffer never escapes.
//
//ldlint:noalloc
func setSpanQName(sp *obs.Span, wire []byte) {
	if sp == nil {
		return
	}
	var buf [128]byte
	n := 0
	for off := 0; off < len(wire); {
		l := int(wire[off])
		off++
		if l == 0 || off+l > len(wire) || n+l+1 > len(buf) {
			break
		}
		n += copy(buf[n:], wire[off:off+l])
		buf[n] = '.'
		n++
		off += l
	}
	if n == 0 {
		buf[0] = '.'
		n = 1
	}
	sp.SetNameBytes(buf[:n])
}

// respondSlow is the full parse → route → lookup → pack path, appending
// the response to dst (nil dst yields a fresh caller-owned slice). st is
// the counter set to charge — the engine's own on the shared path, a
// shard's on the batch path. sp may be nil (unsampled).
//
//ldlint:noalloc
func (e *Engine) respondSlow(st *coreStats, sc *scratch, dst, query []byte, vr *viewRoute, transport Transport, sp *obs.Span) ([]byte, respMeta, error) {
	q := &sc.q
	//ldlint:ignore noallocprop cache-miss decode boundary: Unpack amortizes into reused scratch; construct rules stop here and BenchmarkEngineRespond pins the measured 0 allocs/op
	if err := q.Unpack(query); err != nil {
		if len(query) >= 12 {
			st.formErrs.Add(1)
			out, err := errorResponse(st, sc, dst, query, dnswire.RcodeFormErr)
			return out, respMeta{rcode: dnswire.RcodeFormErr}, err
		}
		//ldlint:ignore noallocprop cold error constructor: only queries under 12 bytes reach it, and they are dropped, not answered
		return dst, respMeta{}, errUndecodable(err)
	}
	sp.Mark("parse")
	if q.Header.Opcode != dnswire.OpcodeQuery {
		// NOTIFY/UPDATE/IQUERY are out of scope for an authoritative
		// replay target; answer NOTIMP like NSD does.
		st.notImpl.Add(1)
		out, err := errorResponse(st, sc, dst, query, dnswire.RcodeNotImp)
		return out, respMeta{rcode: dnswire.RcodeNotImp}, err
	}
	if q.Header.QR || len(q.Question) != 1 {
		st.formErrs.Add(1)
		out, err := errorResponse(st, sc, dst, query, dnswire.RcodeFormErr)
		return out, respMeta{rcode: dnswire.RcodeFormErr}, err
	}

	resp := &sc.resp
	resp.SetResponseTo(q)
	// Echo EDNS: respond with our own OPT advertising a large buffer and
	// mirroring the DO bit, as real authoritative servers do.
	dnssecOK := false
	udpLimit := dnswire.MaxUDPSize
	if q.Edns != nil {
		dnssecOK = q.Edns.DO
		if int(q.Edns.UDPSize) > udpLimit {
			udpLimit = int(q.Edns.UDPSize)
		}
		sc.edns = dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize, DO: q.Edns.DO}
		resp.Edns = &sc.edns
	}

	meta := respMeta{cacheable: true}
	question := q.Question[0]
	var z *zone.Zone
	if vr != nil {
		z = vr.zoneFor(question.Name)
	}
	if z == nil {
		st.refused.Add(1)
		meta.refused = true
		resp.Header.Rcode = dnswire.RcodeRefused
		out, err := packResponse(st, sc, dst, resp, transport, udpLimit, &meta, sp)
		return out, meta, err
	}

	if sp != nil {
		sp.Detail = "lookup"
	}
	//ldlint:ignore noallocprop zone-lookup boundary: Lookup returns views over preassembled zone data; its rare growth paths are amortized and guarded by the respond benchmarks
	res := z.Lookup(question.Name, question.Type, zone.LookupOptions{DNSSEC: dnssecOK})
	sp.Mark("lookup")
	switch res.Kind {
	case zone.Answer:
		resp.Header.AA = true
		resp.Answer = res.Records
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.NoData:
		resp.Header.AA = true
		resp.Authority = res.Authority
	case zone.NXDomain:
		resp.Header.AA = true
		resp.Header.Rcode = dnswire.RcodeNXDomain
		resp.Authority = res.Authority
	case zone.Referral:
		// Referrals are not authoritative answers: AA stays clear.
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.OutOfZone:
		st.refused.Add(1)
		meta.refused = true
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	out, err := packResponse(st, sc, dst, resp, transport, udpLimit, &meta, sp)
	return out, meta, err
}

// errUndecodable wraps the parse error for a query too short to answer.
// Kept out of the annotated respondSlow so the fmt machinery stays off
// the fast path; queries this malformed are dropped, not answered, so
// the allocation is already off the steady-state rate.
func errUndecodable(err error) error {
	return fmt.Errorf("authserver: undecodable query: %w", err)
}

// packResponse encodes resp into the scratch buffer, applying UDP
// truncation when necessary, and appends the encoding to dst. With a nil
// dst the append is the response's one intended allocation (the shared
// path's caller-owned copy); the batch path passes its reusable slab and
// allocates nothing at steady state. Truncated responses shrink to the
// question + OPT, which also drops them out of any GSO run their
// full-size siblings form (unequal sizes never coalesce).
//
//ldlint:noalloc
func packResponse(st *coreStats, sc *scratch, dst []byte, resp *dnswire.Message, transport Transport, udpLimit int, meta *respMeta, sp *obs.Span) ([]byte, error) {
	wire, err := resp.Pack(sc.buf[:0])
	if err != nil {
		return dst, err
	}
	sc.buf = wire[:0]
	if transport == UDP && len(wire) > udpLimit {
		st.truncated.Add(1)
		meta.truncated = true
		resp.Header.TC = true
		// RFC 2181 §9: truncate to an empty answer; the client retries
		// over TCP. Keep the question and OPT only.
		resp.Answer = nil
		resp.Authority = nil
		resp.Additional = nil
		if wire, err = resp.Pack(sc.buf[:0]); err != nil {
			return dst, err
		}
		sc.buf = wire[:0]
	}
	meta.rcode = resp.Header.Rcode
	st.responses.Add(1)
	st.respByRcode[int(resp.Header.Rcode)&0xF].Add(1)
	st.respBytes.Add(int64(len(wire)))
	sp.Mark("pack")
	return append(dst, wire...), nil
}

// errorResponse builds a minimal response with rcode from a raw query
// whose header (at least) was parseable, appending it to dst.
//
//ldlint:noalloc
func errorResponse(st *coreStats, sc *scratch, dst, query []byte, rcode dnswire.Rcode) ([]byte, error) {
	resp := &sc.resp
	resp.Reset()
	resp.Header.ID = uint16(query[0])<<8 | uint16(query[1])
	resp.Header.QR = true
	resp.Header.Rcode = rcode
	wire, err := resp.Pack(sc.buf[:0])
	if err != nil {
		return dst, err
	}
	sc.buf = wire[:0]
	st.responses.Add(1)
	st.respByRcode[int(rcode)&0xF].Add(1)
	st.respBytes.Add(int64(len(wire)))
	return append(dst, wire...), nil
}
