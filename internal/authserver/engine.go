// Package authserver implements the meta-DNS-server of §2.4: a single
// authoritative server instance that correctly emulates multiple
// independent levels of the DNS hierarchy. Zones are organized into
// split-horizon views selected by the query's *source address* — which,
// after the recursive proxy's OQDA rewrite, is the public address of the
// nameserver the query was originally destined for. One engine therefore
// answers as the root, the TLDs, and every SLD, each from the correct
// zone, as if they were independent servers.
//
// The engine is transport-agnostic; UDP, TCP and TLS listeners (live mode)
// and a netsim adapter (testbed mode) all feed it.
package authserver

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

// Transport identifies how a query arrived, which controls truncation.
type Transport int

// Transports.
const (
	UDP Transport = iota
	TCP
	TLS
)

// String returns the transport mnemonic.
func (t Transport) String() string {
	switch t {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case TLS:
		return "tls"
	}
	return "?"
}

// View is a split-horizon view: the zones served to queries arriving from
// Sources. It corresponds to a BIND view with match-clients.
type View struct {
	Name    string
	Sources []netip.Addr
	Zones   []*zone.Zone
}

// Engine answers DNS queries from a set of views. It is safe for
// concurrent use once configured.
type Engine struct {
	mu sync.RWMutex
	// bySource maps a match address to its view.
	bySource map[netip.Addr]*View
	// defaultView answers queries from unmatched sources ("" match-all).
	defaultView *View

	// Stats
	queries    atomic.Int64
	responses  atomic.Int64
	truncated  atomic.Int64
	formErrs   atomic.Int64
	refused    atomic.Int64
	respBytes  atomic.Int64
	queryBytes atomic.Int64
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{bySource: make(map[netip.Addr]*View)}
}

// AddView registers v. Views with no Sources become the default view; a
// source address may belong to only one view.
func (e *Engine) AddView(v *View) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(v.Sources) == 0 {
		if e.defaultView != nil {
			return fmt.Errorf("authserver: second default view %q", v.Name)
		}
		e.defaultView = v
		return nil
	}
	for _, src := range v.Sources {
		if owner, dup := e.bySource[src]; dup {
			return fmt.Errorf("authserver: source %v already matched by view %q", src, owner.Name)
		}
	}
	for _, src := range v.Sources {
		e.bySource[src] = v
	}
	return nil
}

// ViewFor returns the view matching src (or the default view, or nil).
func (e *Engine) ViewFor(src netip.Addr) *View {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if v, ok := e.bySource[src]; ok {
		return v
	}
	return e.defaultView
}

// zoneFor selects the view's zone with the longest origin enclosing qname.
func (v *View) zoneFor(qname string) *zone.Zone {
	var best *zone.Zone
	bestLabels := -1
	for _, z := range v.Zones {
		if dnswire.IsSubdomain(qname, z.Origin) {
			if n := dnswire.CountLabels(z.Origin); n > bestLabels {
				best, bestLabels = z, n
			}
		}
	}
	return best
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Queries       int64
	Responses     int64
	Truncated     int64
	FormErrs      int64
	Refused       int64
	QueryBytes    int64
	ResponseBytes int64
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:       e.queries.Load(),
		Responses:     e.responses.Load(),
		Truncated:     e.truncated.Load(),
		FormErrs:      e.formErrs.Load(),
		Refused:       e.refused.Load(),
		QueryBytes:    e.queryBytes.Load(),
		ResponseBytes: e.respBytes.Load(),
	}
}

// Respond answers the wire-format query arriving from src over transport.
// It always returns a response to send when err is nil; unparseable
// queries yield FORMERR when at least the header was readable, and a nil
// response (drop) otherwise.
func (e *Engine) Respond(query []byte, src netip.Addr, transport Transport) ([]byte, error) {
	e.queries.Add(1)
	e.queryBytes.Add(int64(len(query)))

	var q dnswire.Message
	if err := q.Unpack(query); err != nil {
		if len(query) >= 12 {
			e.formErrs.Add(1)
			return e.errorResponse(query, dnswire.RcodeFormErr)
		}
		return nil, fmt.Errorf("authserver: undecodable query: %w", err)
	}
	if q.Header.Opcode != dnswire.OpcodeQuery {
		// NOTIFY/UPDATE/IQUERY are out of scope for an authoritative
		// replay target; answer NOTIMP like NSD does.
		return e.errorResponse(query, dnswire.RcodeNotImp)
	}
	if q.Header.QR || len(q.Question) != 1 {
		e.formErrs.Add(1)
		return e.errorResponse(query, dnswire.RcodeFormErr)
	}

	view := e.ViewFor(src)
	resp := dnswire.ResponseTo(&q)
	// Echo EDNS: respond with our own OPT advertising a large buffer and
	// mirroring the DO bit, as real authoritative servers do.
	dnssecOK := false
	udpLimit := dnswire.MaxUDPSize
	if q.Edns != nil {
		dnssecOK = q.Edns.DO
		if int(q.Edns.UDPSize) > udpLimit {
			udpLimit = int(q.Edns.UDPSize)
		}
		resp.Edns = &dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize, DO: q.Edns.DO}
	}

	question := q.Question[0]
	var z *zone.Zone
	if view != nil {
		z = view.zoneFor(question.Name)
	}
	if z == nil {
		e.refused.Add(1)
		resp.Header.Rcode = dnswire.RcodeRefused
		return e.pack(resp, transport, udpLimit)
	}

	res := z.Lookup(question.Name, question.Type, zone.LookupOptions{DNSSEC: dnssecOK})
	switch res.Kind {
	case zone.Answer:
		resp.Header.AA = true
		resp.Answer = res.Records
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.NoData:
		resp.Header.AA = true
		resp.Authority = res.Authority
	case zone.NXDomain:
		resp.Header.AA = true
		resp.Header.Rcode = dnswire.RcodeNXDomain
		resp.Authority = res.Authority
	case zone.Referral:
		// Referrals are not authoritative answers: AA stays clear.
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.OutOfZone:
		e.refused.Add(1)
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	return e.pack(resp, transport, udpLimit)
}

// pack encodes resp, applying UDP truncation when necessary.
func (e *Engine) pack(resp *dnswire.Message, transport Transport, udpLimit int) ([]byte, error) {
	wire, err := resp.Pack(nil)
	if err != nil {
		return nil, err
	}
	if transport == UDP && len(wire) > udpLimit {
		e.truncated.Add(1)
		resp.Header.TC = true
		// RFC 2181 §9: truncate to an empty answer; the client retries
		// over TCP. Keep the question and OPT only.
		resp.Answer = nil
		resp.Authority = nil
		resp.Additional = nil
		if wire, err = resp.Pack(nil); err != nil {
			return nil, err
		}
	}
	e.responses.Add(1)
	e.respBytes.Add(int64(len(wire)))
	return wire, nil
}

// errorResponse builds a minimal response with rcode from a raw query
// whose header (at least) was parseable.
func (e *Engine) errorResponse(query []byte, rcode dnswire.Rcode) ([]byte, error) {
	resp := &dnswire.Message{}
	resp.Header.ID = uint16(query[0])<<8 | uint16(query[1])
	resp.Header.QR = true
	resp.Header.Rcode = rcode
	wire, err := resp.Pack(nil)
	if err != nil {
		return nil, err
	}
	e.responses.Add(1)
	e.respBytes.Add(int64(len(wire)))
	return wire, nil
}
