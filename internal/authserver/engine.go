// Package authserver implements the meta-DNS-server of §2.4: a single
// authoritative server instance that correctly emulates multiple
// independent levels of the DNS hierarchy. Zones are organized into
// split-horizon views selected by the query's *source address* — which,
// after the recursive proxy's OQDA rewrite, is the public address of the
// nameserver the query was originally destined for. One engine therefore
// answers as the root, the TLDs, and every SLD, each from the correct
// zone, as if they were independent servers.
//
// The engine is transport-agnostic; UDP, TCP and TLS listeners (live mode)
// and a netsim adapter (testbed mode) all feed it.
//
// The query hot path is engineered for replay-scale rates (§4.5): view
// routing is an atomically-swapped immutable snapshot (no per-packet
// locks), zone selection is a longest-enclosing-origin suffix-map walk
// (O(qname labels), not O(zones)), and fully-encoded responses are kept
// in a per-view packed-response cache so repeated questions are answered
// by patching two ID bytes and the echoed question into a copy of the
// cached wire image.
package authserver

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
	"ldplayer/internal/zone"
)

// Transport identifies how a query arrived, which controls truncation.
type Transport int

// Transports.
const (
	UDP Transport = iota
	TCP
	TLS
)

// String returns the transport mnemonic.
func (t Transport) String() string {
	switch t {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case TLS:
		return "tls"
	}
	return "?"
}

// View is a split-horizon view: the zones served to queries arriving from
// Sources. It corresponds to a BIND view with match-clients.
type View struct {
	Name    string
	Sources []netip.Addr
	Zones   []*zone.Zone
}

// viewRoute is the immutable per-view runtime state built when the view
// is registered: the origin suffix map for O(labels) zone selection and
// the packed-response cache. Zones are immutable after load (§2.3 zone
// files are fixed artifacts for a run), so neither structure ever needs
// invalidation.
type viewRoute struct {
	view *View
	// zones maps canonical zone origin → zone.
	zones map[string]*zone.Zone
	cache *respCache
	// queries counts queries routed to this view (exposed as
	// metadns_view_queries_total{view=...} when instrumented).
	queries atomic.Int64
}

// newViewRoute precomputes the routing state for v.
func newViewRoute(v *View) *viewRoute {
	vr := &viewRoute{
		view:  v,
		zones: make(map[string]*zone.Zone, len(v.Zones)),
		cache: newRespCache(),
	}
	for _, z := range v.Zones {
		// First zone with a given origin wins, matching the old
		// first-longest linear scan on (pathological) duplicate origins.
		if _, dup := vr.zones[z.Origin]; !dup {
			vr.zones[z.Origin] = z
		}
	}
	return vr
}

// zoneFor selects the view's zone with the longest origin enclosing
// qname by walking qname's ancestor chain through the origin map. qname
// must be canonical (lowercase, dot-terminated), which holds for every
// name produced by dnswire unpacking.
//
//ldlint:noalloc
func (vr *viewRoute) zoneFor(qname string) *zone.Zone {
	for name := qname; ; {
		if z, ok := vr.zones[name]; ok {
			return z
		}
		if name == "." {
			return nil
		}
		if i := strings.IndexByte(name, '.'); i+1 < len(name) {
			name = name[i+1:]
		} else {
			name = "."
		}
	}
}

// routing is the immutable source→view snapshot the hot path reads with
// a single atomic load. AddView builds a new snapshot and swaps it in.
type routing struct {
	bySource    map[netip.Addr]*viewRoute
	defaultView *viewRoute
}

// route returns the view route matching src (or the default, or nil).
//
//ldlint:noalloc
func (rt *routing) route(src netip.Addr) *viewRoute {
	if vr, ok := rt.bySource[src]; ok {
		return vr
	}
	return rt.defaultView
}

// DefaultResponseCacheCap bounds each view's packed-response cache. The
// recursive experiment's 549 zones stay well under it while replayed
// B-Root traffic (heavy-tailed repeat questions) gets near-total hits.
const DefaultResponseCacheCap = 8192

// Engine answers DNS queries from a set of views. It is safe for
// concurrent use; views may even be added while serving.
type Engine struct {
	addMu    sync.Mutex // serializes AddView / cache-cap changes
	routing  atomic.Pointer[routing]
	cacheCap atomic.Int64

	// Stats
	queries     atomic.Int64
	responses   atomic.Int64
	truncated   atomic.Int64
	formErrs    atomic.Int64
	refused     atomic.Int64
	notImpl     atomic.Int64
	respBytes   atomic.Int64
	queryBytes  atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Dimensioned stats: queries by arrival transport and responses by
	// rcode. Plain atomic adds indexed by small constants — the hot path
	// never formats a label.
	qByTransport [3]atomic.Int64
	respByRcode  [16]atomic.Int64
	routingSwaps atomic.Int64

	// obsState enables sampled latency/tracing when non-nil; obsReg
	// (guarded by addMu) lets AddView register per-view counters for
	// views added after Instrument.
	obsState atomic.Pointer[engineObs]
	obsReg   *obs.Registry
}

// engineObs is the sampled-observability state installed by Instrument.
type engineObs struct {
	tracer  *obs.Tracer    // may be nil: metrics without spans
	latency *obs.Histogram // sampled Respond latency, nanoseconds
	// mask gates sampling as queries&mask == 0 — the period is rounded up
	// to a power of two so the hot path avoids an integer division, and
	// the query counter the engine already increments doubles as the
	// sampling counter, so the gate costs no extra atomic.
	mask uint64
}

// DefaultObsSampleEvery is the default 1-in-N sampling period for Respond
// latency timing and lifecycle spans. At replay rates the sampled path
// (two time.Now calls plus a pooled span) is amortized to noise.
const DefaultObsSampleEvery = 64

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	e := &Engine{}
	e.cacheCap.Store(DefaultResponseCacheCap)
	e.routing.Store(&routing{bySource: make(map[netip.Addr]*viewRoute)})
	return e
}

// SetResponseCacheCap sets the per-view packed-response cache capacity.
// n <= 0 disables the cache entirely. Existing cached entries are
// dropped so a smaller cap (or disablement) takes effect immediately.
func (e *Engine) SetResponseCacheCap(n int) {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	e.cacheCap.Store(int64(n))
	rt := e.routing.Load()
	seen := make(map[*respCache]struct{})
	for _, vr := range rt.bySource {
		seen[vr.cache] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView.cache] = struct{}{}
	}
	for c := range seen {
		c.clear()
	}
}

// AddView registers v. Views with no Sources become the default view; a
// source address may belong to only one view. The new routing snapshot
// becomes visible atomically; in-flight queries finish on the old one.
func (e *Engine) AddView(v *View) error {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	cur := e.routing.Load()
	next := &routing{
		bySource:    make(map[netip.Addr]*viewRoute, len(cur.bySource)+len(v.Sources)),
		defaultView: cur.defaultView,
	}
	for src, vr := range cur.bySource {
		next.bySource[src] = vr
	}
	vr := newViewRoute(v)
	if len(v.Sources) == 0 {
		if cur.defaultView != nil {
			return fmt.Errorf("authserver: second default view %q", v.Name)
		}
		next.defaultView = vr
	} else {
		for _, src := range v.Sources {
			if owner, dup := next.bySource[src]; dup {
				return fmt.Errorf("authserver: source %v already matched by view %q", src, owner.view.Name)
			}
		}
		for _, src := range v.Sources {
			next.bySource[src] = vr
		}
	}
	e.routing.Store(next)
	e.routingSwaps.Add(1)
	if e.obsReg != nil {
		registerViewCounter(e.obsReg, vr)
	}
	return nil
}

// Instrument registers the engine's counters and gauges with reg — all of
// them read the existing atomics at scrape time, so the query path gains
// nothing — and enables sampled latency timing plus (when tracer is
// non-nil) query-lifecycle spans: one query in sampleEvery is timed into
// the metadns_respond_latency_ns histogram and traced recv → view-select →
// cache-hit/lookup → pack. sampleEvery <= 0 means DefaultObsSampleEvery;
// it is rounded up to a power of two. The tracer's own sampling should be
// 1 (NewTracer(n, 1)) — the engine already gates which queries trace.
func (e *Engine) Instrument(reg *obs.Registry, tracer *obs.Tracer, sampleEvery int) {
	if sampleEvery <= 0 {
		sampleEvery = DefaultObsSampleEvery
	}
	period := uint64(1)
	for period < uint64(sampleEvery) {
		period <<= 1
	}
	e.addMu.Lock()
	defer e.addMu.Unlock()
	e.obsReg = reg

	for t := UDP; t <= TLS; t++ {
		idx := int(t)
		reg.CounterFunc("metadns_queries_total", obs.LabelValue("transport", t.String()),
			"queries received by arrival transport",
			func() int64 { return e.qByTransport[idx].Load() })
	}
	for _, rc := range []dnswire.Rcode{dnswire.RcodeNoError, dnswire.RcodeFormErr,
		dnswire.RcodeServFail, dnswire.RcodeNXDomain, dnswire.RcodeNotImp, dnswire.RcodeRefused} {
		idx := int(rc) & 0xF
		reg.CounterFunc("metadns_responses_total", obs.LabelValue("rcode", rc.String()),
			"responses sent by rcode",
			func() int64 { return e.respByRcode[idx].Load() })
	}
	reg.CounterFunc("metadns_query_bytes_total", "", "query bytes received", e.queryBytes.Load)
	reg.CounterFunc("metadns_response_bytes_total", "", "response bytes sent", e.respBytes.Load)
	reg.CounterFunc("metadns_truncated_total", "", "UDP responses truncated", e.truncated.Load)
	reg.CounterFunc("metadns_cache_hits_total", "", "packed-response cache hits", e.cacheHits.Load)
	reg.CounterFunc("metadns_cache_misses_total", "", "packed-response cache misses", e.cacheMisses.Load)
	reg.CounterFunc("metadns_cache_evictions_total", "", "packed-response cache evictions",
		func() int64 { return e.CacheStats().Evictions })
	reg.GaugeFunc("metadns_cache_entries", "", "packed responses currently cached",
		func() int64 { return e.CacheStats().Entries })
	reg.CounterFunc("metadns_routing_swaps_total", "", "routing snapshot swaps (view additions)",
		e.routingSwaps.Load)

	rt := e.routing.Load()
	seen := make(map[*viewRoute]struct{})
	for _, vr := range rt.bySource {
		seen[vr] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView] = struct{}{}
	}
	for vr := range seen {
		registerViewCounter(reg, vr)
	}

	st := &engineObs{
		tracer:  tracer,
		latency: reg.Histogram("metadns_respond_latency_ns", "", "sampled Respond latency (ns)"),
		mask:    period - 1,
	}
	e.obsState.Store(st)
}

// registerViewCounter exposes one view's query counter.
func registerViewCounter(reg *obs.Registry, vr *viewRoute) {
	reg.CounterFunc("metadns_view_queries_total", obs.LabelValue("view", vr.view.Name),
		"queries routed to each split-horizon view", vr.queries.Load)
}

// ViewFor returns the view matching src (or the default view, or nil).
func (e *Engine) ViewFor(src netip.Addr) *View {
	if vr := e.routing.Load().route(src); vr != nil {
		return vr.view
	}
	return nil
}

// Stats is a snapshot of engine counters.
type Stats struct {
	Queries       int64
	Responses     int64
	Truncated     int64
	FormErrs      int64
	Refused       int64
	NotImpl       int64
	QueryBytes    int64
	ResponseBytes int64
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:       e.queries.Load(),
		Responses:     e.responses.Load(),
		Truncated:     e.truncated.Load(),
		FormErrs:      e.formErrs.Load(),
		Refused:       e.refused.Load(),
		NotImpl:       e.notImpl.Load(),
		QueryBytes:    e.queryBytes.Load(),
		ResponseBytes: e.respBytes.Load(),
	}
}

// CacheStats is a snapshot of the packed-response cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int64
	Evictions int64
}

// CacheStats returns hit/miss counters and the current entry and eviction
// counts across every view's response cache.
func (e *Engine) CacheStats() CacheStats {
	st := CacheStats{Hits: e.cacheHits.Load(), Misses: e.cacheMisses.Load()}
	rt := e.routing.Load()
	seen := make(map[*respCache]struct{})
	for _, vr := range rt.bySource {
		seen[vr.cache] = struct{}{}
	}
	if rt.defaultView != nil {
		seen[rt.defaultView.cache] = struct{}{}
	}
	for c := range seen {
		st.Entries += int64(c.len())
		st.Evictions += c.evictions.Load()
	}
	return st
}

// scratch bundles the per-call reusable state: unpack/response messages,
// the pack buffer, the cache key, and the echoed OPT. Pooled so the
// steady-state Respond path performs no per-query setup allocations.
type scratch struct {
	q        dnswire.Message
	resp     dnswire.Message
	edns     dnswire.EDNS
	key      []byte
	buf      []byte
	qnameLen int
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			key: make([]byte, 0, 280),
			buf: make([]byte, 0, 2048),
		}
	},
}

// respMeta records which stat counters a packed response charged, so
// cache hits can replay the same accounting.
type respMeta struct {
	cacheable bool
	truncated bool
	refused   bool
	rcode     dnswire.Rcode
}

// Respond answers the wire-format query arriving from src over transport.
// It always returns a response to send when err is nil; unparseable
// queries yield FORMERR when at least the header was readable, and a nil
// response (drop) otherwise. The returned slice is freshly allocated and
// owned by the caller.
//
//ldlint:noalloc
func (e *Engine) Respond(query []byte, src netip.Addr, transport Transport) ([]byte, error) {
	qn := uint64(e.queries.Add(1))
	e.queryBytes.Add(int64(len(query)))
	if t := int(transport); t >= 0 && t < len(e.qByTransport) {
		e.qByTransport[t].Add(1)
	}

	// Sampled observability: the query counter gates; unsampled queries
	// pay nothing further (span methods are nil-safe no-ops).
	st := e.obsState.Load()
	var sp *obs.Span
	var t0 time.Time
	if st != nil && qn&st.mask == 0 {
		t0 = time.Now()
		sp = st.tracer.Begin("query")
		if sp != nil {
			sp.Transport = transport.String()
		}
	}

	vr := e.routing.Load().route(src)
	if vr != nil {
		vr.queries.Add(1)
		if sp != nil {
			sp.View = vr.view.Name
		}
	}
	sp.Mark("view")

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	cacheable := false
	if vr != nil && e.cacheCap.Load() > 0 {
		if qnameLen, ok := buildCacheKey(sc, query, transport); ok {
			cacheable = true
			sc.qnameLen = qnameLen
			setSpanQName(sp, query[12:12+qnameLen])
			if out, rcode := vr.cache.get(sc.key, query, qnameLen, e); out != nil {
				e.cacheHits.Add(1)
				if sp != nil {
					sp.Detail = "cache_hit"
					sp.Rcode = int(rcode)
				}
				sp.Mark("cache_hit")
				e.finishSample(st, sp, t0)
				return out, nil
			}
			e.cacheMisses.Add(1)
		}
	}

	out, meta, err := e.respondSlow(sc, query, vr, transport, sp)
	if err == nil && cacheable && meta.cacheable {
		vr.cache.put(sc.key, out, sc.qnameLen, meta, int(e.cacheCap.Load()))
	}
	if sp != nil {
		sp.Rcode = int(meta.rcode)
	}
	e.finishSample(st, sp, t0)
	return out, err
}

// finishSample records the sampled latency and publishes the span.
//
//ldlint:noalloc
func (e *Engine) finishSample(st *engineObs, sp *obs.Span, t0 time.Time) {
	if st == nil || t0.IsZero() {
		return
	}
	st.latency.Record(time.Since(t0).Nanoseconds())
	st.tracer.Finish(sp)
}

// setSpanQName converts a wire-form qname (length-prefixed labels) to
// presentation form into the span's fixed buffer. Sampled path only; the
// stack buffer never escapes.
//
//ldlint:noalloc
func setSpanQName(sp *obs.Span, wire []byte) {
	if sp == nil {
		return
	}
	var buf [128]byte
	n := 0
	for off := 0; off < len(wire); {
		l := int(wire[off])
		off++
		if l == 0 || off+l > len(wire) || n+l+1 > len(buf) {
			break
		}
		n += copy(buf[n:], wire[off:off+l])
		buf[n] = '.'
		n++
		off += l
	}
	if n == 0 {
		buf[0] = '.'
		n = 1
	}
	sp.SetNameBytes(buf[:n])
}

// respondSlow is the full parse → route → lookup → pack path. sp may be
// nil (unsampled).
//
//ldlint:noalloc
func (e *Engine) respondSlow(sc *scratch, query []byte, vr *viewRoute, transport Transport, sp *obs.Span) ([]byte, respMeta, error) {
	q := &sc.q
	if err := q.Unpack(query); err != nil {
		if len(query) >= 12 {
			e.formErrs.Add(1)
			out, err := e.errorResponse(sc, query, dnswire.RcodeFormErr)
			return out, respMeta{rcode: dnswire.RcodeFormErr}, err
		}
		return nil, respMeta{}, errUndecodable(err)
	}
	sp.Mark("parse")
	if q.Header.Opcode != dnswire.OpcodeQuery {
		// NOTIFY/UPDATE/IQUERY are out of scope for an authoritative
		// replay target; answer NOTIMP like NSD does.
		e.notImpl.Add(1)
		out, err := e.errorResponse(sc, query, dnswire.RcodeNotImp)
		return out, respMeta{rcode: dnswire.RcodeNotImp}, err
	}
	if q.Header.QR || len(q.Question) != 1 {
		e.formErrs.Add(1)
		out, err := e.errorResponse(sc, query, dnswire.RcodeFormErr)
		return out, respMeta{rcode: dnswire.RcodeFormErr}, err
	}

	resp := &sc.resp
	resp.SetResponseTo(q)
	// Echo EDNS: respond with our own OPT advertising a large buffer and
	// mirroring the DO bit, as real authoritative servers do.
	dnssecOK := false
	udpLimit := dnswire.MaxUDPSize
	if q.Edns != nil {
		dnssecOK = q.Edns.DO
		if int(q.Edns.UDPSize) > udpLimit {
			udpLimit = int(q.Edns.UDPSize)
		}
		sc.edns = dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize, DO: q.Edns.DO}
		resp.Edns = &sc.edns
	}

	meta := respMeta{cacheable: true}
	question := q.Question[0]
	var z *zone.Zone
	if vr != nil {
		z = vr.zoneFor(question.Name)
	}
	if z == nil {
		e.refused.Add(1)
		meta.refused = true
		resp.Header.Rcode = dnswire.RcodeRefused
		out, err := e.pack(sc, resp, transport, udpLimit, &meta, sp)
		return out, meta, err
	}

	if sp != nil {
		sp.Detail = "lookup"
	}
	res := z.Lookup(question.Name, question.Type, zone.LookupOptions{DNSSEC: dnssecOK})
	sp.Mark("lookup")
	switch res.Kind {
	case zone.Answer:
		resp.Header.AA = true
		resp.Answer = res.Records
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.NoData:
		resp.Header.AA = true
		resp.Authority = res.Authority
	case zone.NXDomain:
		resp.Header.AA = true
		resp.Header.Rcode = dnswire.RcodeNXDomain
		resp.Authority = res.Authority
	case zone.Referral:
		// Referrals are not authoritative answers: AA stays clear.
		resp.Authority = res.Authority
		resp.Additional = res.Additional
	case zone.OutOfZone:
		e.refused.Add(1)
		meta.refused = true
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	out, err := e.pack(sc, resp, transport, udpLimit, &meta, sp)
	return out, meta, err
}

// errUndecodable wraps the parse error for a query too short to answer.
// Kept out of the annotated respondSlow so the fmt machinery stays off
// the fast path; queries this malformed are dropped, not answered, so
// the allocation is already off the steady-state rate.
func errUndecodable(err error) error {
	return fmt.Errorf("authserver: undecodable query: %w", err)
}

// pack encodes resp into the scratch buffer, applying UDP truncation when
// necessary, and returns a caller-owned copy — the response's one
// intended allocation.
//
//ldlint:noalloc
func (e *Engine) pack(sc *scratch, resp *dnswire.Message, transport Transport, udpLimit int, meta *respMeta, sp *obs.Span) ([]byte, error) {
	wire, err := resp.Pack(sc.buf[:0])
	if err != nil {
		return nil, err
	}
	sc.buf = wire[:0]
	if transport == UDP && len(wire) > udpLimit {
		e.truncated.Add(1)
		meta.truncated = true
		resp.Header.TC = true
		// RFC 2181 §9: truncate to an empty answer; the client retries
		// over TCP. Keep the question and OPT only.
		resp.Answer = nil
		resp.Authority = nil
		resp.Additional = nil
		if wire, err = resp.Pack(sc.buf[:0]); err != nil {
			return nil, err
		}
		sc.buf = wire[:0]
	}
	meta.rcode = resp.Header.Rcode
	e.responses.Add(1)
	e.respByRcode[int(resp.Header.Rcode)&0xF].Add(1)
	e.respBytes.Add(int64(len(wire)))
	sp.Mark("pack")
	out := make([]byte, len(wire)) //ldlint:ignore noalloc caller-owned copy is the contract's one allocation per response
	copy(out, wire)
	return out, nil
}

// errorResponse builds a minimal response with rcode from a raw query
// whose header (at least) was parseable.
//
//ldlint:noalloc
func (e *Engine) errorResponse(sc *scratch, query []byte, rcode dnswire.Rcode) ([]byte, error) {
	resp := &sc.resp
	resp.Reset()
	resp.Header.ID = uint16(query[0])<<8 | uint16(query[1])
	resp.Header.QR = true
	resp.Header.Rcode = rcode
	wire, err := resp.Pack(sc.buf[:0])
	if err != nil {
		return nil, err
	}
	sc.buf = wire[:0]
	e.responses.Add(1)
	e.respByRcode[int(rcode)&0xF].Add(1)
	e.respBytes.Add(int64(len(wire)))
	out := make([]byte, len(wire)) //ldlint:ignore noalloc caller-owned copy is the contract's one allocation per response
	copy(out, wire)
	return out, nil
}
