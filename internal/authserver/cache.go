package authserver

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ldplayer/internal/dnswire"
)

// Packed-response cache. Zones are immutable for the lifetime of a run
// (§2.3: reconstructed zone files are fixed artifacts), so a response to
// a given (view, question, DO, transport-class, size-limit) tuple never
// changes and can be cached as a fully-encoded wire image. A hit copies
// the image and patches only the 2-byte ID, the echoed RD bit, and the
// question bytes (preserving the client's 0x20 label case), skipping
// parse, zone lookup, and packing entirely.

// Cache key layout (built into scratch.key, so the map probe via
// m[string(key)] compiles to a no-allocation lookup):
//
//	lowercased qname in wire form (length-prefixed labels, no terminator)
//	qtype (2) | qclass (2) | flag byte | effective UDP limit (2)
const (
	keyDO      = 1 << 0 // query asked for DNSSEC records
	keyHasEDNS = 1 << 1 // response must echo an OPT
	keyStream  = 1 << 2 // TCP/TLS: truncation never applies
)

// buildCacheKey validates that query has the canonical cacheable shape —
// opcode QUERY, QR clear, exactly one question with an uncompressed
// qname, no answer/authority records, and at most a well-formed OPT in
// additional — and assembles the cache key into sc.key. It returns the
// wire length of the question name (for ID/question patching) and
// whether the query is cacheable. Anything unusual (compression pointers
// in the qname, TSIG, multiple questions) falls back to the slow path
// and is simply not cached, which keeps hit behaviour bit-identical to
// the slow path by construction.
//
//ldlint:noalloc
func buildCacheKey(sc *scratch, query []byte, transport Transport) (int, bool) {
	if len(query) < 12 {
		return 0, false
	}
	flags := binary.BigEndian.Uint16(query[2:])
	if flags&0x8000 != 0 { // QR: a response, not a query
		return 0, false
	}
	if (flags>>11)&0xF != 0 { // non-QUERY opcode
		return 0, false
	}
	qd := binary.BigEndian.Uint16(query[4:])
	an := binary.BigEndian.Uint16(query[6:])
	ns := binary.BigEndian.Uint16(query[8:])
	ar := binary.BigEndian.Uint16(query[10:])
	if qd != 1 || an != 0 || ns != 0 || ar > 1 {
		return 0, false
	}

	key := sc.key[:0]
	off := 12
	for {
		if off >= len(query) {
			return 0, false
		}
		b := int(query[off])
		if b == 0 {
			off++
			break
		}
		if b&0xC0 != 0 { // compressed or reserved label: slow path
			return 0, false
		}
		if off+1+b > len(query) || off+1+b-12 > 255 {
			return 0, false
		}
		key = append(key, byte(b))
		for _, c := range query[off+1 : off+1+b] {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			key = append(key, c)
		}
		off += 1 + b
	}
	qnameLen := off - 12
	if off+4 > len(query) {
		return 0, false
	}
	key = append(key, query[off:off+4]...) // qtype, qclass
	off += 4

	var kf byte
	limit := uint16(dnswire.MaxUDPSize)
	if ar == 1 {
		// The single additional record must be an OPT at the root owner;
		// anything else (e.g. TSIG) is not cacheable.
		if off+11 > len(query) || query[off] != 0 {
			return 0, false
		}
		if dnswire.Type(binary.BigEndian.Uint16(query[off+1:])) != dnswire.TypeOPT {
			return 0, false
		}
		sz := binary.BigEndian.Uint16(query[off+3:])
		ttl := binary.BigEndian.Uint32(query[off+5:])
		rdlen := int(binary.BigEndian.Uint16(query[off+9:]))
		if off+11+rdlen > len(query) {
			return 0, false
		}
		kf |= keyHasEDNS
		if ttl&(1<<15) != 0 {
			kf |= keyDO
		}
		if sz > limit {
			limit = sz
		}
	}
	if transport != UDP {
		kf |= keyStream
		limit = 0 // normalize: stream responses are never truncated
	}
	key = append(key, kf, byte(limit>>8), byte(limit))
	sc.key = key
	return qnameLen, true
}

// cacheEntry is one packed response. wire holds the full encoding with a
// zeroed ID and the canonical (lowercase) question; truncated/refused/
// rcode replay the stat accounting the original slow-path build performed.
type cacheEntry struct {
	wire      []byte
	truncated bool
	refused   bool
	rcode     dnswire.Rcode
}

// respCache is a bounded map from cache key to packed response. Reads
// take an RLock; inserts are rare once the (bounded) key space has been
// seen, so the write lock is effectively never contended at steady state.
type respCache struct {
	mu sync.RWMutex
	m  map[string]*cacheEntry

	// evictions counts entries displaced at capacity (observability).
	evictions atomic.Int64
}

func newRespCache() *respCache {
	return &respCache{m: make(map[string]*cacheEntry)}
}

// get returns the cached entry for key, or nil on miss. Entries are
// immutable once stored, so the caller may read ent.wire lock-free.
//
//ldlint:noalloc
func (c *respCache) get(key []byte) *cacheEntry {
	c.mu.RLock()
	ent := c.m[string(key)]
	c.mu.RUnlock()
	return ent
}

// appendCached appends ent's packed response to dst, patched with query's
// ID, RD bit, and question bytes (preserving the client's 0x20 label
// case), and charges st's response counters exactly as the slow path
// would have. With a nil dst the append is the contract's one allocation
// per response; the batch path passes a reusable slab and allocates
// nothing at steady state.
//
//ldlint:noalloc
func appendCached(st *coreStats, dst []byte, ent *cacheEntry, query []byte, qnameLen int) []byte {
	base := len(dst)
	dst = append(dst, ent.wire...)
	out := dst[base:]
	out[0], out[1] = query[0], query[1]
	out[2] = out[2]&^0x01 | query[2]&0x01
	copy(out[12:12+qnameLen+4], query[12:12+qnameLen+4])
	st.responses.Add(1)
	st.respByRcode[int(ent.rcode)&0xF].Add(1)
	st.respBytes.Add(int64(len(out)))
	if ent.truncated {
		st.truncated.Add(1)
	}
	if ent.refused {
		st.refused.Add(1)
	}
	return dst
}

// put stores a copy of out under key, evicting an arbitrary entry when
// the cache is at capacity. The stored image gets a zeroed ID (hits
// always overwrite it) but is otherwise byte-identical to what the slow
// path returned.
func (c *respCache) put(key, out []byte, qnameLen int, meta respMeta, capacity int) {
	if capacity <= 0 || len(out) < 12+qnameLen+4 {
		return
	}
	//ldlint:ignore noallocprop the documented per-miss allocation: the cache keeps a private copy of the response image
	wire := make([]byte, len(out))
	copy(wire, out)
	wire[0], wire[1] = 0, 0
	ent := &cacheEntry{wire: wire, truncated: meta.truncated, refused: meta.refused, rcode: meta.rcode}
	c.mu.Lock()
	if _, exists := c.m[string(key)]; !exists {
		for len(c.m) >= capacity {
			for k := range c.m {
				delete(c.m, k)
				break
			}
			c.evictions.Add(1)
		}
	}
	c.m[string(key)] = ent
	c.mu.Unlock()
}

// len returns the current entry count.
func (c *respCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// clear drops every entry.
func (c *respCache) clear() {
	c.mu.Lock()
	c.m = make(map[string]*cacheEntry)
	c.mu.Unlock()
}
