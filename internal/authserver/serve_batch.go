package authserver

import (
	"net/netip"

	"ldplayer/internal/netio"
)

// Batched UDP datapath: the server-side twin of the PR 4 replay client.
// Each worker owns one SO_REUSEPORT socket (or a share of the single
// socket), one netio.UDPBatch, and one EngineShard, and loops
//
//	recvmmsg (GRO-coalesced) → shard respond into a reusable slab →
//	sendmmsg (equal-size same-peer responses GSO-coalesced)
//
// so a batch of B queries crosses the kernel twice instead of 2B times,
// and the respond stage touches no cross-shard mutable state. This file
// is portable — the netio fallback presents the same API — but Start
// only routes here when netio.BatchSyscalls is true; elsewhere the
// per-datagram serveUDP loop remains the fallback.

// DefaultUDPBatchSize is the default per-worker receive batch width.
const DefaultUDPBatchSize = 32

// batchBufSize sizes each receive buffer for a full GRO super-datagram
// (up to 64 coalesced segments).
const batchBufSize = 64 << 10

// startUDPBatch spawns the batched workers. Each gets its own socket
// when ReusePort provided one per worker; otherwise they share (separate
// UDPBatch instances keep per-worker state disjoint, and concurrent
// recvmmsg on one fd is kernel-arbitrated like the per-datagram loop).
func (s *Server) startUDPBatch() error {
	size := s.BatchSize
	if size <= 0 {
		size = DefaultUDPBatchSize
	}
	for i := 0; i < s.UDPWorkers; i++ {
		conn := s.udpConns[i%len(s.udpConns)]
		// A deep socket buffer absorbs bursts between batch drains;
		// best-effort, the kernel clamps to its limits.
		_ = conn.SetReadBuffer(4 << 20)
		b, err := netio.NewUDPBatchConfig(conn, netio.BatchConfig{
			SendMsgs:  size,
			RecvMsgs:  size,
			BufSize:   batchBufSize,
			Addrs:     true,
			NoOffload: s.NoOffload,
		})
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go s.serveUDPBatch(b, s.Engine.NewShard())
	}
	return nil
}

// serveUDPBatch is one worker's receive→respond→send loop.
func (s *Server) serveUDPBatch(b *netio.UDPBatch, sh *EngineShard) {
	defer s.wg.Done()
	// slab collects the batch's response images; staged reply slices
	// alias it (and, after growth, its predecessors — still-live arrays).
	slab := make([]byte, 0, batchBufSize)
	for {
		n, err := b.Recv()
		if err != nil {
			return // socket closed
		}
		sh.BeginBatch()
		slab = s.respondBatch(b, sh, slab[:0], n)
		sh.EndBatch()
		// Send errors are per-batch UDP best-effort, like the fallback
		// loop's ignored WriteToUDPAddrPort errors.
		_, _ = b.SendStaged()
	}
}

// respondBatch answers every datagram of the received batch — splitting
// GRO-coalesced buffers into their segments — staging responses against
// their source buffers. It returns the (possibly grown) slab.
//
//ldlint:noalloc
func (s *Server) respondBatch(b *netio.UDPBatch, sh *EngineShard, slab []byte, n int) []byte {
	for i := 0; i < n; i++ {
		m := b.Msg(i)
		src := b.PeerAddr(i).Addr()
		seg := b.SegSize(i)
		if seg <= 0 || seg >= len(m) {
			slab = s.respondOne(b, sh, slab, i, m, src)
			continue
		}
		// Coalesced buffer: every segment is one query from the same
		// peer (GRO only merges one flow), the last possibly shorter.
		for off := 0; off < len(m); off += seg {
			end := off + seg
			if end > len(m) {
				end = len(m)
			}
			slab = s.respondOne(b, sh, slab, i, m[off:end], src)
		}
	}
	return slab
}

// respondOne answers a single query, staging the response when one was
// produced.
//
//ldlint:noalloc
func (s *Server) respondOne(b *netio.UDPBatch, sh *EngineShard, slab []byte, i int, query []byte, src netip.Addr) []byte {
	out, err := sh.AppendRespond(slab, query, src, UDP)
	if err == nil && len(out) > len(slab) {
		b.Stage(i, out[len(slab):])
	}
	return out
}
