package authserver

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ldplayer/internal/netio"
)

// Server runs an Engine behind live UDP, TCP, and (optionally) TLS
// listeners. It is the "real DNS server" role of the testbed: NSD in the
// paper's experiments, ours here. The TCP path implements RFC 1035
// two-octet framing, persistent connections with a configurable idle
// timeout (the paper sweeps 5–40 s), and pipelined queries.
type Server struct {
	Engine *Engine

	// IdleTimeout closes TCP/TLS connections idle for this long. Zero
	// means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// TLSConfig enables the TLS listener when non-nil.
	TLSConfig *tls.Config
	// UDPWorkers sets the UDP read-loop worker pool size (default 4).
	UDPWorkers int
	// ReusePort opens one SO_REUSEPORT UDP socket per worker so the
	// kernel fans incoming packets out across workers instead of all
	// workers contending on one socket's receive queue. Silently falls
	// back to a single shared socket on platforms without SO_REUSEPORT.
	ReusePort bool
	// Batch enables the batched UDP datapath on platforms with real
	// sendmmsg/recvmmsg: each worker drains up to BatchSize datagrams per
	// recvmmsg (GRO-coalesced where the kernel supports it), answers them
	// through a private engine shard, and replies with one sendmmsg,
	// coalescing equal-size same-peer responses into GSO super-datagrams.
	// On other platforms (or when false) the per-datagram loop serves.
	Batch bool
	// BatchSize is the per-worker receive batch width (default
	// DefaultUDPBatchSize, clamped to netio.MaxBatch).
	BatchSize int
	// NoOffload disables UDP GSO/GRO on the batched datapath, keeping
	// plain per-datagram sendmmsg/recvmmsg. For A/B measurement.
	NoOffload bool

	udpConns []*net.UDPConn
	tcpLn    net.Listener
	tlsLn    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// connection gauges for experiment sampling
	tcpOpen  atomic.Int64
	tcpTotal atomic.Int64
}

// DefaultIdleTimeout matches the 20 s suggested by prior work and used as
// the paper's reference point.
const DefaultIdleTimeout = 20 * time.Second

// Start begins serving on the given addresses ("127.0.0.1:0" forms are
// accepted; pass empty strings to skip a listener). It returns once all
// listeners are bound.
func (s *Server) Start(udpAddr, tcpAddr, tlsAddr string) error {
	if s.Engine == nil {
		return errors.New("authserver: Server.Engine is nil")
	}
	if s.IdleTimeout <= 0 {
		s.IdleTimeout = DefaultIdleTimeout
	}
	if s.UDPWorkers <= 0 {
		s.UDPWorkers = 4
	}
	s.conns = make(map[net.Conn]struct{})

	if udpAddr != "" {
		if err := s.listenUDP(udpAddr); err != nil {
			return err
		}
		if s.Batch && netio.BatchSyscalls {
			if err := s.startUDPBatch(); err != nil {
				s.Close()
				return err
			}
		} else {
			for i := 0; i < s.UDPWorkers; i++ {
				s.wg.Add(1)
				go s.serveUDP(s.udpConns[i%len(s.udpConns)])
			}
		}
	}
	if tcpAddr != "" {
		ln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			s.Close()
			return err
		}
		s.tcpLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln, TCP)
	}
	if tlsAddr != "" {
		if s.TLSConfig == nil {
			s.Close()
			return errors.New("authserver: TLS listener requested without TLSConfig")
		}
		ln, err := tls.Listen("tcp", tlsAddr, s.TLSConfig)
		if err != nil {
			s.Close()
			return err
		}
		s.tlsLn = ln
		s.wg.Add(1)
		go s.acceptLoop(ln, TLS)
	}
	return nil
}

// listenUDP binds the UDP socket(s): one socket shared by all workers,
// or — with ReusePort on a supporting platform — one per worker, all
// bound to the same address so the kernel distributes load.
func (s *Server) listenUDP(udpAddr string) error {
	addr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return err
	}
	sockets := 1
	if s.ReusePort && reusePortSupported && s.UDPWorkers > 1 {
		sockets = s.UDPWorkers
	}
	if sockets == 1 {
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			return err
		}
		s.udpConns = []*net.UDPConn{conn}
		return nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	bind := addr.String()
	for i := 0; i < sockets; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bind)
		if err != nil {
			for _, c := range s.udpConns {
				c.Close()
			}
			s.udpConns = nil
			return err
		}
		conn := pc.(*net.UDPConn)
		s.udpConns = append(s.udpConns, conn)
		if i == 0 {
			// A ":0" request resolves on the first bind; the remaining
			// sockets must share that concrete port.
			bind = conn.LocalAddr().String()
		}
	}
	return nil
}

// UDPAddr returns the bound UDP address, or nil.
func (s *Server) UDPAddr() *net.UDPAddr {
	if len(s.udpConns) == 0 {
		return nil
	}
	return s.udpConns[0].LocalAddr().(*net.UDPAddr)
}

// TCPAddr returns the bound TCP address, or nil.
func (s *Server) TCPAddr() *net.TCPAddr {
	if s.tcpLn == nil {
		return nil
	}
	return s.tcpLn.Addr().(*net.TCPAddr)
}

// TLSAddr returns the bound TLS address, or nil.
func (s *Server) TLSAddr() *net.TCPAddr {
	if s.tlsLn == nil {
		return nil
	}
	return s.tlsLn.Addr().(*net.TCPAddr)
}

// OpenTCPConns returns the number of currently open TCP/TLS connections.
func (s *Server) OpenTCPConns() int64 { return s.tcpOpen.Load() }

// TotalTCPConns returns the number of TCP/TLS connections ever accepted.
func (s *Server) TotalTCPConns() int64 { return s.tcpTotal.Load() }

// Close shuts down all listeners and open connections and waits for the
// serving goroutines to finish.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for _, c := range s.udpConns {
		c.Close()
	}
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	if s.tlsLn != nil {
		s.tlsLn.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	// One read buffer per worker: the engine never retains the query
	// bytes, so the buffer is reused for every packet.
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			return // closed
		}
		resp, err := s.Engine.Respond(buf[:n], raddr.Addr(), UDP)
		if err != nil || resp == nil {
			continue
		}
		_, _ = conn.WriteToUDPAddrPort(resp, raddr)
	}
}

func (s *Server) acceptLoop(ln net.Listener, transport Transport) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.tcpOpen.Add(1)
		s.tcpTotal.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn, transport)
	}
}

func (s *Server) serveConn(conn net.Conn, transport Transport) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.tcpOpen.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	src := remoteAddr(conn)
	// Per-connection reusable read buffer: the engine never retains the
	// query bytes, so each message overwrites the last.
	var rbuf []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		query, err := readTCPMessage(conn, &rbuf)
		if err != nil {
			return // idle timeout, EOF, or garbage: drop the connection
		}
		resp, err := s.Engine.Respond(query, src, transport)
		if err != nil || resp == nil {
			return
		}
		if err := WriteTCPMessage(conn, resp); err != nil {
			return
		}
	}
}

func remoteAddr(conn net.Conn) netip.Addr {
	if ap, err := netip.ParseAddrPort(conn.RemoteAddr().String()); err == nil {
		return ap.Addr().Unmap()
	}
	return netip.Addr{}
}

// ReadTCPMessage reads one RFC 1035 §4.2.2 length-prefixed DNS message
// into a fresh buffer.
func ReadTCPMessage(r io.Reader) ([]byte, error) {
	var buf []byte
	return readTCPMessage(r, &buf)
}

// readTCPMessage reads one length-prefixed message into *buf, growing it
// as needed; the returned slice aliases *buf and is valid until the next
// call with the same buffer.
func readTCPMessage(r io.Reader, buf *[]byte) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(lenBuf[:]))
	if n == 0 {
		return nil, errors.New("authserver: zero-length TCP message")
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	msg := (*buf)[:n]
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// framePool recycles TCP framing buffers so writing a response does not
// allocate a fresh 2+len(msg) slice per message.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteTCPMessage writes one length-prefixed DNS message in a single
// Write call, so a message is never split across two writes at this layer
// (the analogue of disabling Nagle-sensitive write patterns). The frame
// is assembled in a pooled buffer, not a per-message allocation.
func WriteTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		//ldlint:ignore noallocprop cold error constructor: fires only for >64KiB messages, which are unframeable and rejected
		return errFrameTooLarge(len(msg))
	}
	bp := framePool.Get().(*[]byte)
	//ldlint:ignore noallocprop pooled amortized growth: buf extends the framePool backing array and is stored back via *bp = buf[:0] below
	buf := append((*bp)[:0], byte(len(msg)>>8), byte(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// errFrameTooLarge builds the oversized-message error. Kept out of
// WriteTCPMessage so the fmt machinery stays off the framing path the
// replay querier and engine share.
func errFrameTooLarge(n int) error {
	return fmt.Errorf("authserver: message too large for TCP framing: %d", n)
}
