package authserver

import (
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

var (
	rootNSAddr = netip.MustParseAddr("198.41.0.4") // a.root-servers.net
	comNSAddr  = netip.MustParseAddr("192.5.6.30") // a.gtld-servers.net
	exNSAddr   = netip.MustParseAddr("192.0.2.1")  // ns1.example.com
	clientAddr = netip.MustParseAddr("10.9.9.9")
)

const rootZoneText = `
.	86400	IN	SOA	a.root-servers.net. nstld. 1 1800 900 604800 86400
.	518400	IN	NS	a.root-servers.net.
a.root-servers.net.	518400	IN	A	198.41.0.4
com.	172800	IN	NS	a.gtld-servers.net.
a.gtld-servers.net.	172800	IN	A	192.5.6.30
`

// Note: a.gtld-servers.net lives under net., so the com. zone legitimately
// carries no glue for its own apex NS — resolvers learn that address from
// the root zone, exactly as in the real hierarchy.
const comZoneText = `
com.	900	IN	SOA	a.gtld-servers.net. nstld. 1 1800 900 604800 86400
com.	172800	IN	NS	a.gtld-servers.net.
example.com.	172800	IN	NS	ns1.example.com.
ns1.example.com.	172800	IN	A	192.0.2.1
`

const exZoneText = `
example.com.	3600	IN	SOA	ns1.example.com. hostmaster.example.com. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
www.example.com.	300	IN	A	192.0.2.80
`

// hierarchyEngine builds the three-level split-horizon engine of Fig 2.
func hierarchyEngine(t *testing.T) *Engine {
	t.Helper()
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	e := NewEngine()
	for _, v := range []*View{
		{Name: "root", Sources: []netip.Addr{rootNSAddr}, Zones: []*zone.Zone{parse(rootZoneText, ".")}},
		{Name: "com", Sources: []netip.Addr{comNSAddr}, Zones: []*zone.Zone{parse(comZoneText, "com.")}},
		{Name: "example", Sources: []netip.Addr{exNSAddr}, Zones: []*zone.Zone{parse(exZoneText, "example.com.")}},
	} {
		if err := e.AddView(v); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func respond(t *testing.T, e *Engine, q *dnswire.Message, src netip.Addr, tr Transport) *dnswire.Message {
	t.Helper()
	wire, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Respond(wire, src, tr)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// TestSplitHorizonSelectsZoneBySource is the heart of §2.4: the same query
// content gets three different answers depending only on source address.
func TestSplitHorizonSelectsZoneBySource(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA)

	// From the root's address: referral to com.
	resp := respond(t, e, q, rootNSAddr, UDP)
	if resp.Header.AA || len(resp.Answer) != 0 {
		t.Errorf("root view gave an answer: %+v", resp)
	}
	if len(resp.Authority) == 0 || resp.Authority[0].Name != "com." {
		t.Errorf("root view authority = %v", resp.Authority)
	}

	// From com's address: referral to example.com.
	resp = respond(t, e, q, comNSAddr, UDP)
	if len(resp.Authority) == 0 || resp.Authority[0].Name != "example.com." {
		t.Errorf("com view authority = %v", resp.Authority)
	}
	if len(resp.Additional) == 0 || resp.Additional[0].Data.String() != "192.0.2.1" {
		t.Errorf("com view glue = %v", resp.Additional)
	}

	// From example.com's address: the authoritative answer.
	resp = respond(t, e, q, exNSAddr, UDP)
	if !resp.Header.AA {
		t.Error("example view answer not authoritative")
	}
	if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
		t.Errorf("example view answer = %v", resp.Answer)
	}
}

func TestUnknownSourceRefusedWithoutDefaultView(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA)
	resp := respond(t, e, q, clientAddr, UDP)
	if resp.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("rcode = %v, want REFUSED", resp.Header.Rcode)
	}
}

func TestDefaultViewCatchesUnmatched(t *testing.T) {
	e := hierarchyEngine(t)
	z, err := zone.Parse(strings.NewReader(exZoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddView(&View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(3, "www.example.com.", dnswire.TypeA)
	resp := respond(t, e, q, clientAddr, UDP)
	if len(resp.Answer) != 1 {
		t.Errorf("default view answer = %v", resp.Answer)
	}
	// Second default view is rejected.
	if err := e.AddView(&View{Name: "dup-default"}); err == nil {
		t.Error("second default view accepted")
	}
}

func TestDuplicateSourceRejected(t *testing.T) {
	e := hierarchyEngine(t)
	err := e.AddView(&View{Name: "dup", Sources: []netip.Addr{rootNSAddr}})
	if err == nil {
		t.Error("duplicate source accepted")
	}
}

func TestLongestOriginWinsWithinView(t *testing.T) {
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			t.Fatal(err)
		}
		return z
	}
	e := NewEngine()
	com := parse(comZoneText, "com.")
	ex := parse(exZoneText, "example.com.")
	if err := e.AddView(&View{Name: "both", Sources: []netip.Addr{comNSAddr}, Zones: []*zone.Zone{com, ex}}); err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(4, "www.example.com.", dnswire.TypeA)
	resp := respond(t, e, q, comNSAddr, UDP)
	if len(resp.Answer) != 1 {
		t.Errorf("longest-origin selection failed: %+v", resp)
	}
}

func TestUDPTruncationAndTCPFullAnswer(t *testing.T) {
	// Build a zone with a deliberately huge RRset.
	z := zone.New("big.example.")
	mustRR := func(rr dnswire.RR) {
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	mustRR(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.SOA{
		MName: "ns.big.example.", RName: "root.big.example.", Serial: 1,
		Refresh: 1, Retry: 1, Expire: 1, Minimum: 1}})
	mustRR(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.NS{Host: "ns.big.example."}})
	for i := 0; i < 80; i++ {
		mustRR(dnswire.RR{Name: "fat.big.example.", Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Strings: []string{strings.Repeat("x", 50) + string(rune('a'+i%26)) + strings.Repeat("y", i%7)}}})
	}
	e := NewEngine()
	if err := e.AddView(&View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(5, "fat.big.example.", dnswire.TypeTXT)

	udpResp := respond(t, e, q, clientAddr, UDP)
	if !udpResp.Header.TC {
		t.Error("oversized UDP response not truncated")
	}
	if len(udpResp.Answer) != 0 {
		t.Errorf("truncated response still has %d answers", len(udpResp.Answer))
	}

	tcpResp := respond(t, e, q, clientAddr, TCP)
	if tcpResp.Header.TC {
		t.Error("TCP response truncated")
	}
	if len(tcpResp.Answer) != 80 {
		t.Errorf("TCP answers = %d, want 80", len(tcpResp.Answer))
	}

	// EDNS raises the UDP limit enough for the full answer.
	q.Edns = &dnswire.EDNS{UDPSize: 65000}
	bigUDP := respond(t, e, q, clientAddr, UDP)
	if bigUDP.Header.TC {
		t.Error("EDNS-sized UDP response truncated")
	}
}

func TestEDNSEchoAndDOBit(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(6, "www.example.com.", dnswire.TypeA)
	q.Edns = &dnswire.EDNS{UDPSize: 1232, DO: true}
	resp := respond(t, e, q, exNSAddr, UDP)
	if resp.Edns == nil {
		t.Fatal("response lacks OPT")
	}
	if !resp.Edns.DO {
		t.Error("DO bit not mirrored")
	}
	// Without EDNS in the query, none in the response.
	q2 := dnswire.NewQuery(7, "www.example.com.", dnswire.TypeA)
	resp = respond(t, e, q2, exNSAddr, UDP)
	if resp.Edns != nil {
		t.Error("unsolicited OPT in response")
	}
}

func TestFormErrOnGarbageAndResponses(t *testing.T) {
	e := hierarchyEngine(t)
	// A QR=1 message (a response) must not be answered with data.
	q := dnswire.NewQuery(8, "www.example.com.", dnswire.TypeA)
	q.Header.QR = true
	wire, _ := q.Pack(nil)
	out, err := e.Respond(wire, exNSAddr, UDP)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeFormErr {
		t.Errorf("rcode = %v, want FORMERR", resp.Header.Rcode)
	}
	// Complete garbage shorter than a header is dropped.
	if out, err := e.Respond([]byte{1, 2, 3}, exNSAddr, UDP); err == nil || out != nil {
		t.Error("short garbage not dropped")
	}
	// Garbage with a plausible header gets FORMERR with the same ID.
	garbage := make([]byte, 20)
	garbage[0], garbage[1] = 0xAB, 0xCD
	garbage[5] = 1   // QDCOUNT=1
	garbage[12] = 63 // question name label runs past the end of the packet
	out, err = e.Respond(garbage, exNSAddr, UDP)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Unpack(out); err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 0xABCD || resp.Header.Rcode != dnswire.RcodeFormErr {
		t.Errorf("garbage response header = %+v", resp.Header)
	}
}

func TestEngineStats(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(9, "www.example.com.", dnswire.TypeA)
	for i := 0; i < 5; i++ {
		respond(t, e, q, exNSAddr, UDP)
	}
	st := e.Stats()
	if st.Queries != 5 || st.Responses != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.ResponseBytes == 0 || st.QueryBytes == 0 {
		t.Errorf("byte counters = %+v", st)
	}
}

func TestUnsupportedOpcodeNotImp(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(11, "example.com.", dnswire.TypeSOA)
	q.Header.Opcode = dnswire.OpcodeNotify
	wire, _ := q.Pack(nil)
	out, err := e.Respond(wire, exNSAddr, UDP)
	if err != nil {
		t.Fatal(err)
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Rcode != dnswire.RcodeNotImp {
		t.Errorf("rcode = %v, want NOTIMP", resp.Header.Rcode)
	}
	if resp.Header.ID != 11 {
		t.Errorf("ID = %d", resp.Header.ID)
	}
	if st := e.Stats(); st.NotImpl != 1 {
		t.Errorf("NotImpl = %d, want 1 (NOTIMP traffic must be counted)", st.NotImpl)
	}
}
