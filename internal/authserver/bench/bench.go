// Package bench is the server-datapath benchmark harness: a loopback
// self-test that drives a real authserver.Server over UDP with a
// credit-windowed blaster client and reports the achieved service rate.
// `metadns bench` runs it and appends the results to BENCH_server.json,
// recording the single-datagram baseline next to the batched
// (sendmmsg/recvmmsg + GSO/GRO) datapath so the speedup is measured, not
// asserted.
package bench

import (
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/dnswire"
	"ldplayer/internal/netio"
	"ldplayer/internal/zone"
)

// Config is one benchmark run's shape.
type Config struct {
	// Name labels the run in the report (e.g. "single-datagram",
	// "batched").
	Name string
	// Queries is the total number of queries the client sends.
	Queries int
	// Clients is the number of blaster goroutines, each with its own
	// connected socket (default 1: on small machines extra clients just
	// contend with the server for cores).
	Clients int
	// Names is the number of distinct qnames the trace cycles through.
	// All are fixed-width, so every query — and every cached response —
	// is the same size: the GSO-coalescing sweet spot (default 64).
	Names int
	// Window is the per-client in-flight credit: the client stops
	// sending until responses catch up, so the server's socket buffer
	// never overflows and the measurement is a service rate, not a blind
	// blast (default 512).
	Window int
	// SendBatch is the number of queries per client Send call (default 64).
	SendBatch int
	// Workers is the server's UDP worker count (default 2).
	Workers int
	// Batch selects the server's batched datapath; BatchSize and
	// NoOffload pass through to the Server.
	Batch     bool
	BatchSize int
	NoOffload bool
	// RecvTimeout bounds each client receive while queries are in
	// flight, so a lost datagram costs one timeout, not the run
	// (default 100ms).
	RecvTimeout time.Duration
}

// Result is one benchmark run's measurements.
type Result struct {
	Name          string `json:"name"`
	Queries       int    `json:"queries"`
	Clients       int    `json:"clients"`
	ServerWorkers int    `json:"server_workers"`
	Batched       bool   `json:"batched"`
	Offload       bool   `json:"offload"`

	AchievedQPS    float64 `json:"achieved_qps"`
	Sent           int64   `json:"sent"`
	Responses      int64   `json:"responses"`
	LossPct        float64 `json:"loss_pct"`
	DurationMS     float64 `json:"duration_ms"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
}

// benchZone builds bench.example. with names fixed-width A records.
func benchZone(names int) (*zone.Zone, error) {
	z := zone.New("bench.example.")
	add := func(rr dnswire.RR) error { return z.Add(rr) }
	if err := add(dnswire.RR{Name: "bench.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.SOA{
		MName: "ns.bench.example.", RName: "root.bench.example.", Serial: 1,
		Refresh: 1, Retry: 1, Expire: 1, Minimum: 1}}); err != nil {
		return nil, err
	}
	if err := add(dnswire.RR{Name: "bench.example.", Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.NS{Host: "ns.bench.example."}}); err != nil {
		return nil, err
	}
	for i := 0; i < names; i++ {
		rr := dnswire.RR{Name: qname(i), Class: dnswire.ClassINET, TTL: 300,
			Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i%250 + 1)})}}
		if err := add(rr); err != nil {
			return nil, err
		}
	}
	return z, nil
}

// qname is fixed-width so all queries (and responses) are equal size.
func qname(i int) string { return fmt.Sprintf("q%04d.bench.example.", i) }

// makeRing pre-packs a reusable ring of queries cycling over the name
// set. IDs vary, sizes do not.
func makeRing(ringLen, names int) ([][]byte, error) {
	ring := make([][]byte, ringLen)
	for i := range ring {
		wire, err := dnswire.NewQuery(uint16(i), qname(i%names), dnswire.TypeA).Pack(nil)
		if err != nil {
			return nil, err
		}
		ring[i] = wire
	}
	return ring, nil
}

// blast runs one client's credit-windowed send/receive loop and returns
// sent/received counts plus the measurement window edges.
func blast(conn *net.UDPConn, ring [][]byte, cfg Config) (sent, recvd int64, first, last time.Time, err error) {
	b, err := netio.NewUDPBatch(conn, cfg.SendBatch, 32, 64<<10, false)
	if err != nil {
		return 0, 0, first, last, err
	}
	inflight, qi := 0, 0
	for int(sent) < cfg.Queries || inflight > 0 {
		for int(sent) < cfg.Queries && inflight < cfg.Window {
			k := cfg.SendBatch
			if rem := cfg.Queries - int(sent); k > rem {
				k = rem
			}
			if room := cfg.Window - inflight; k > room {
				k = room
			}
			if wrap := len(ring) - qi; k > wrap {
				k = wrap
			}
			if first.IsZero() {
				first = time.Now()
			}
			n, serr := b.Send(ring[qi : qi+k])
			sent += int64(n)
			inflight += n
			qi = (qi + n) % len(ring)
			if serr != nil {
				return sent, recvd, first, last, serr
			}
		}
		_ = conn.SetReadDeadline(time.Now().Add(cfg.RecvTimeout))
		n, rerr := b.Recv()
		if rerr != nil {
			// Timeout: the outstanding credits are lost datagrams; write
			// them off and keep going (or finish if all were sent).
			if int(sent) >= cfg.Queries {
				break
			}
			inflight = 0
			continue
		}
		for i := 0; i < n; i++ {
			m := b.Msg(i)
			segs := 1
			if seg := b.SegSize(i); seg > 0 && seg < len(m) {
				segs = (len(m) + seg - 1) / seg
			}
			recvd += int64(segs)
			inflight -= segs
		}
		if inflight < 0 {
			inflight = 0
		}
		last = time.Now()
	}
	return sent, recvd, first, last, nil
}

// Run executes one benchmark run: start a server in the requested
// datapath shape, blast it over loopback, and report the service rate
// measured from first send to last response.
func Run(cfg Config) (Result, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 200000
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Names <= 0 {
		cfg.Names = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.SendBatch <= 0 {
		cfg.SendBatch = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RecvTimeout <= 0 {
		cfg.RecvTimeout = 100 * time.Millisecond
	}

	z, err := benchZone(cfg.Names)
	if err != nil {
		return Result{}, err
	}
	e := authserver.NewEngine()
	if err := e.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		return Result{}, err
	}
	srv := &authserver.Server{
		Engine:     e,
		UDPWorkers: cfg.Workers,
		ReusePort:  cfg.Workers > 1,
		Batch:      cfg.Batch,
		BatchSize:  cfg.BatchSize,
		NoOffload:  cfg.NoOffload,
	}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		return Result{}, err
	}
	defer srv.Close()

	ring, err := makeRing(1024, cfg.Names)
	if err != nil {
		return Result{}, err
	}

	type clientStats struct {
		sent, recvd int64
		first, last time.Time
		err         error
	}
	stats := make([]clientStats, cfg.Clients)
	per := cfg.Queries / cfg.Clients

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	done := make(chan int, cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		go func(c int) {
			defer func() { done <- c }()
			conn, err := net.DialUDP("udp", nil, srv.UDPAddr())
			if err != nil {
				stats[c].err = err
				return
			}
			defer conn.Close()
			// A deep receive buffer absorbs response bursts that land
			// while the client is inside a send syscall; best-effort.
			_ = conn.SetReadBuffer(4 << 20)
			ccfg := cfg
			ccfg.Queries = per
			stats[c].sent, stats[c].recvd, stats[c].first, stats[c].last, stats[c].err =
				blast(conn, ring, ccfg)
		}(c)
	}
	for range stats {
		<-done
	}
	runtime.ReadMemStats(&after)

	res := Result{
		Name:          cfg.Name,
		Queries:       cfg.Queries,
		Clients:       cfg.Clients,
		ServerWorkers: cfg.Workers,
		Batched:       cfg.Batch,
		Offload:       cfg.Batch && !cfg.NoOffload && netio.BatchSyscalls,
	}
	var first, last time.Time
	for _, st := range stats {
		if st.err != nil {
			return res, st.err
		}
		res.Sent += st.sent
		res.Responses += st.recvd
		if first.IsZero() || (!st.first.IsZero() && st.first.Before(first)) {
			first = st.first
		}
		if st.last.After(last) {
			last = st.last
		}
	}
	if res.Responses == 0 || last.IsZero() || !last.After(first) {
		return res, fmt.Errorf("bench %s: no responses measured", cfg.Name)
	}
	dur := last.Sub(first)
	res.AchievedQPS = float64(res.Responses) / dur.Seconds()
	res.DurationMS = float64(dur) / float64(time.Millisecond)
	res.LossPct = 100 * float64(res.Sent-res.Responses) / float64(res.Sent)
	res.AllocsPerQuery = float64(after.Mallocs-before.Mallocs) / float64(res.Sent)
	return res, nil
}

// Suite is the standard before/after trajectory: the pre-PR
// single-datagram baseline, the batched datapath, and batched with
// offloads disabled (isolating sendmmsg/recvmmsg from GSO/GRO). scale <
// 1 shrinks the query counts for smoke runs.
func Suite(scale float64) ([]Result, error) {
	if scale <= 0 {
		scale = 1
	}
	n := int(200000 * scale)
	runs := []Config{
		{Name: "single-datagram", Queries: n, Batch: false},
		{Name: "batched-no-offload", Queries: n, Batch: true, NoOffload: true},
		{Name: "batched", Queries: n, Batch: true},
	}
	out := make([]Result, 0, len(runs))
	for _, c := range runs {
		r, err := Run(c)
		if err != nil {
			return out, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
