package authserver

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"time"
)

// SelfSignedTLSConfig generates an in-memory self-signed certificate for
// host (a DNS name or IP) and returns server and client tls.Configs wired
// to trust each other. Experiments use it so DNS-over-TLS replay needs no
// external PKI; the paper's testbed patched NSD the same way.
func SelfSignedTLSConfig(host string) (server, client *tls.Config, err error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: host, Organization: []string{"ldplayer testbed"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	if ip := net.ParseIP(host); ip != nil {
		tmpl.IPAddresses = []net.IP{ip}
	} else {
		tmpl.DNSNames = []string{host}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, nil, err
	}
	cert := tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	pool := x509.NewCertPool()
	parsed, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, err
	}
	pool.AddCert(parsed)
	server = &tls.Config{Certificates: []tls.Certificate{cert}}
	client = &tls.Config{RootCAs: pool, ServerName: host}
	return server, client, nil
}
