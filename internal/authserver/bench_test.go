package authserver

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/obs"
	"ldplayer/internal/zone"
)

// benchEngine builds the three-level split-horizon engine for benchmarks.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			b.Fatal(err)
		}
		return z
	}
	e := NewEngine()
	for _, v := range []*View{
		{Name: "root", Sources: []netip.Addr{rootNSAddr}, Zones: []*zone.Zone{parse(rootZoneText, ".")}},
		{Name: "com", Sources: []netip.Addr{comNSAddr}, Zones: []*zone.Zone{parse(comZoneText, "com.")}},
		{Name: "example", Sources: []netip.Addr{exNSAddr}, Zones: []*zone.Zone{parse(exZoneText, "example.com.")}},
	} {
		if err := e.AddView(v); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkEngineRespondAnswer measures the full query→response path of
// the meta-DNS engine — view selection, lookup, packing — on an
// authoritative answer: the per-query server cost behind Figure 9's
// throughput ceiling.
func BenchmarkEngineRespondAnswer(b *testing.B) {
	e := benchEngine(b)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondAnswerInstrumented is BenchmarkEngineRespondAnswer
// with the full observability layer enabled at the default 1-in-64
// sampling: dimensioned counters on every query, latency timing and a
// lifecycle span on sampled ones. The delta against the uninstrumented
// benchmark is the total observability overhead (budget: <10%).
func BenchmarkEngineRespondAnswerInstrumented(b *testing.B) {
	e := benchEngine(b)
	e.Instrument(obs.NewRegistry(), obs.NewTracer(1024, 1), DefaultObsSampleEvery)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondAnswerSampledAlways is the worst case: every query
// pays two time.Now calls and a pooled span.
func BenchmarkEngineRespondAnswerSampledAlways(b *testing.B) {
	e := benchEngine(b)
	e.Instrument(obs.NewRegistry(), obs.NewTracer(1024, 1), 1)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondReferral measures the referral path from the root
// view (the dominant response class in B-Root replay).
func BenchmarkEngineRespondReferral(b *testing.B) {
	e := benchEngine(b)
	wire, err := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, rootNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondDNSSEC measures a DO-bit query against the same
// engine (signature-attachment path).
func BenchmarkEngineRespondDNSSEC(b *testing.B) {
	e := benchEngine(b)
	q := dnswire.NewQuery(3, "www.example.com.", dnswire.TypeA)
	q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: true}
	wire, err := q.Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondCached measures the packed-response fast path:
// repeated identical questions are answered from the cache by patching a
// copy of the stored wire image (≤1 alloc/op — the caller-owned copy).
func BenchmarkEngineRespondCached(b *testing.B) {
	e := benchEngine(b)
	wire, err := dnswire.NewQuery(4, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Respond(wire, exNSAddr, UDP); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if cs := e.CacheStats(); cs.Hits < int64(b.N) {
		b.Fatalf("cache hits = %d, want ≥ %d", cs.Hits, b.N)
	}
}

// BenchmarkEngineRespondMiss measures the full parse→route→lookup→pack
// path with the response cache disabled: the cost of every first-seen
// question, and the baseline the cache is compared against.
func BenchmarkEngineRespondMiss(b *testing.B) {
	e := benchEngine(b)
	e.SetResponseCacheCap(0)
	wire, err := dnswire.NewQuery(5, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondManyZones exercises zone selection in a view
// hosting 549 zones (the paper's Rec-17 recursive experiment scale).
// With the origin suffix map this costs O(qname labels), independent of
// the zone count; the old linear scan was O(zones) per query.
func BenchmarkEngineRespondManyZones(b *testing.B) {
	zones := make([]*zone.Zone, 0, 549)
	for i := 0; i < 549; i++ {
		origin := fmt.Sprintf("z%03d.example.", i)
		z := zone.New(origin)
		for _, rr := range []dnswire.RR{
			{Name: origin, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.SOA{
				MName: "ns." + origin, RName: "root." + origin, Serial: 1,
				Refresh: 1, Retry: 1, Expire: 1, Minimum: 300}},
			{Name: origin, Class: dnswire.ClassINET, TTL: 3600, Data: dnswire.NS{Host: "ns." + origin}},
			{Name: "www." + origin, Class: dnswire.ClassINET, TTL: 300,
				Data: dnswire.A{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})}},
		} {
			if err := z.Add(rr); err != nil {
				b.Fatal(err)
			}
		}
		zones = append(zones, z)
	}
	e := NewEngine()
	e.SetResponseCacheCap(0) // isolate routing + lookup, not the cache
	if err := e.AddView(&View{Name: "default", Zones: zones}); err != nil {
		b.Fatal(err)
	}
	queries := make([][]byte, 64)
	for i := range queries {
		wire, err := dnswire.NewQuery(uint16(i), fmt.Sprintf("www.z%03d.example.", i*7%549), dnswire.TypeA).Pack(nil)
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = wire
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(queries[i%len(queries)], clientAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}
