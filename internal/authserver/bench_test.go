package authserver

import (
	"net/netip"
	"strings"
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

// benchEngine builds the three-level split-horizon engine for benchmarks.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	parse := func(text, origin string) *zone.Zone {
		z, err := zone.Parse(strings.NewReader(text), origin)
		if err != nil {
			b.Fatal(err)
		}
		return z
	}
	e := NewEngine()
	for _, v := range []*View{
		{Name: "root", Sources: []netip.Addr{rootNSAddr}, Zones: []*zone.Zone{parse(rootZoneText, ".")}},
		{Name: "com", Sources: []netip.Addr{comNSAddr}, Zones: []*zone.Zone{parse(comZoneText, "com.")}},
		{Name: "example", Sources: []netip.Addr{exNSAddr}, Zones: []*zone.Zone{parse(exZoneText, "example.com.")}},
	} {
		if err := e.AddView(v); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkEngineRespondAnswer measures the full query→response path of
// the meta-DNS engine — view selection, lookup, packing — on an
// authoritative answer: the per-query server cost behind Figure 9's
// throughput ceiling.
func BenchmarkEngineRespondAnswer(b *testing.B) {
	e := benchEngine(b)
	wire, err := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondReferral measures the referral path from the root
// view (the dominant response class in B-Root replay).
func BenchmarkEngineRespondReferral(b *testing.B) {
	e := benchEngine(b)
	wire, err := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, rootNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRespondDNSSEC measures a DO-bit query against the same
// engine (signature-attachment path).
func BenchmarkEngineRespondDNSSEC(b *testing.B) {
	e := benchEngine(b)
	q := dnswire.NewQuery(3, "www.example.com.", dnswire.TypeA)
	q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: true}
	wire, err := q.Pack(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Respond(wire, exNSAddr, UDP); err != nil {
			b.Fatal(err)
		}
	}
}
