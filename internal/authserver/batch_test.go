package authserver

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/netio"
	"ldplayer/internal/zone"
)

// bigZone builds a zone whose fat.big.example. TXT RRset overflows the
// classic 512-byte UDP limit, forcing TC on non-EDNS UDP queries.
func bigZone(t *testing.T) *zone.Zone {
	t.Helper()
	z := zone.New("big.example.")
	mustRR := func(rr dnswire.RR) {
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	mustRR(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.SOA{
		MName: "ns.big.example.", RName: "root.big.example.", Serial: 1,
		Refresh: 1, Retry: 1, Expire: 1, Minimum: 1}})
	mustRR(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.NS{Host: "ns.big.example."}})
	for i := 0; i < 40; i++ {
		mustRR(dnswire.RR{Name: "fat.big.example.", Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Strings: []string{strings.Repeat("x", 50) + string(rune('a' + i%26))}}})
	}
	return z
}

// startBatchServer starts a Server on the batched UDP datapath (falling
// back to the per-datagram loop where netio.BatchSyscalls is false, so
// the same tests validate the portable path) with a default view
// answering loopback clients.
func startBatchServer(t *testing.T, workers int, noOffload bool) *Server {
	t.Helper()
	e := hierarchyEngine(t)
	exView := e.ViewFor(exNSAddr)
	zones := append([]*zone.Zone{bigZone(t)}, exView.Zones...)
	if err := e.AddView(&View{Name: "default", Zones: zones}); err != nil {
		t.Fatal(err)
	}
	s := &Server{
		Engine:     e,
		UDPWorkers: workers,
		ReusePort:  workers > 1,
		Batch:      true,
		BatchSize:  8,
		NoOffload:  noOffload,
	}
	if err := s.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// sendAndCollect fires the packed queries at the server through a
// client-side UDPBatch (so equal-size queries GSO-coalesce on the way in
// where supported) and collects responses by ID until all IDs are seen
// or the deadline passes.
func sendAndCollect(t *testing.T, s *Server, queries [][]byte, ids []uint16) map[uint16]*dnswire.Message {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cb, err := netio.NewUDPBatch(conn, len(queries), 32, 64<<10, false)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cb.Send(queries); err != nil || n != len(queries) {
		t.Fatalf("Send = %d, %v; want %d", n, err, len(queries))
	}
	want := make(map[uint16]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	got := make(map[uint16]*dnswire.Message, len(ids))
	deadline := time.Now().Add(3 * time.Second)
	for len(got) < len(want) && time.Now().Before(deadline) {
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, err := cb.Recv()
		if err != nil {
			continue // deadline tick; retry until the outer deadline
		}
		for i := 0; i < n; i++ {
			m := cb.Msg(i)
			seg := cb.SegSize(i)
			if seg <= 0 || seg >= len(m) {
				seg = len(m)
			}
			// Split GRO-coalesced responses back into messages.
			for off := 0; off < len(m); off += seg {
				end := off + seg
				if end > len(m) {
					end = len(m)
				}
				resp := new(dnswire.Message)
				if err := resp.Unpack(m[off:end]); err != nil {
					t.Fatalf("unpack response: %v", err)
				}
				if !want[resp.Header.ID] {
					t.Fatalf("unexpected response ID %d", resp.Header.ID)
				}
				got[resp.Header.ID] = resp
			}
		}
	}
	return got
}

// TestServerBatchUDP drives the batched datapath end to end: a burst of
// equal-size queries (distinct IDs, same question) whose responses are
// all equal-size cache hits — the GSO-coalescing sweet spot — must each
// come back correct, and the per-shard counters must aggregate to the
// full total.
func TestServerBatchUDP(t *testing.T) {
	for _, tc := range []struct {
		name      string
		noOffload bool
	}{{"offload", false}, {"no-offload", true}} {
		t.Run(tc.name, func(t *testing.T) {
			s := startBatchServer(t, 2, tc.noOffload)
			const k = 100
			queries := make([][]byte, k)
			ids := make([]uint16, k)
			for i := range queries {
				id := uint16(1000 + i)
				wire, err := dnswire.NewQuery(id, "www.example.com.", dnswire.TypeA).Pack(nil)
				if err != nil {
					t.Fatal(err)
				}
				queries[i] = wire
				ids[i] = id
			}
			got := sendAndCollect(t, s, queries, ids)
			if len(got) != k {
				t.Fatalf("got %d/%d responses", len(got), k)
			}
			for id, resp := range got {
				if !resp.Header.QR || resp.Header.Rcode != dnswire.RcodeNoError {
					t.Fatalf("ID %d: header = %+v", id, resp.Header)
				}
				if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
					t.Fatalf("ID %d: answer = %v", id, resp.Answer)
				}
			}
			// Shard counters federate into the engine-wide view.
			if st := s.Engine.Stats(); st.Queries < k || st.Responses < k {
				t.Errorf("aggregated stats = %+v, want ≥ %d queries", st, k)
			}
			if cs := s.Engine.CacheStats(); cs.Hits == 0 {
				t.Error("batch path never hit a shard cache")
			}
		})
	}
}

// TestServerBatchTruncation is the batch-path regression test for UDP
// truncation: oversized responses must carry TC within the 512-byte
// limit, and — because a TC'd response shrinks to question+OPT — must
// fall out of GSO coalescing rather than clip or inflate the full-size
// answers interleaved around them in the same batch.
func TestServerBatchTruncation(t *testing.T) {
	s := startBatchServer(t, 1, false)
	const pairs = 20
	var queries [][]byte
	var ids []uint16
	for i := 0; i < pairs; i++ {
		bigID, smallID := uint16(2*i), uint16(2*i+1)
		bw, err := dnswire.NewQuery(bigID, "fat.big.example.", dnswire.TypeTXT).Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := dnswire.NewQuery(smallID, "www.example.com.", dnswire.TypeA).Pack(nil)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, bw, sw)
		ids = append(ids, bigID, smallID)
	}
	got := sendAndCollect(t, s, queries, ids)
	if len(got) != 2*pairs {
		t.Fatalf("got %d/%d responses", len(got), 2*pairs)
	}
	for id, resp := range got {
		if id%2 == 0 { // oversized TXT query, no EDNS
			if !resp.Header.TC {
				t.Fatalf("ID %d: oversized response not truncated", id)
			}
			if len(resp.Answer) != 0 {
				t.Fatalf("ID %d: truncated response carries %d answers", id, len(resp.Answer))
			}
		} else { // small A query
			if resp.Header.TC {
				t.Fatalf("ID %d: small response truncated", id)
			}
			if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
				t.Fatalf("ID %d: answer = %v", id, resp.Answer)
			}
		}
	}
	if st := s.Engine.Stats(); st.Truncated < pairs {
		t.Errorf("aggregated Truncated = %d, want ≥ %d", st.Truncated, pairs)
	}
}

// TestShardAppendRespondAllocs pins the shard cache-hit path at ≤1
// allocation per query. With the response appended into a caller-reused
// slab the steady state is zero; the ≤1 budget leaves room for the
// platform's map-probe internals.
func TestShardAppendRespondAllocs(t *testing.T) {
	e := hierarchyEngine(t)
	sh := e.NewShard()
	wire, err := dnswire.NewQuery(9, "www.example.com.", dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	slab := make([]byte, 0, 4096)
	// Warm the shard cache.
	if _, err := sh.AppendRespond(slab, wire, exNSAddr, UDP); err != nil {
		t.Fatal(err)
	}
	sh.EndBatch()
	allocs := testing.AllocsPerRun(1000, func() {
		out, err := sh.AppendRespond(slab[:0], wire, exNSAddr, UDP)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty response")
		}
	})
	if allocs > 1 {
		t.Errorf("shard cache-hit allocs/op = %.2f, want ≤ 1", allocs)
	}
	if cs := e.CacheStats(); cs.Hits == 0 {
		t.Fatal("shard path never hit its cache")
	}
}

// TestShardsConcurrent hammers several shards from their own goroutines
// while the scrape-side aggregation and a cache-capacity change run
// concurrently. Under -race this proves the shard isolation contract: no
// cross-shard mutable state on the hot path, scrape reads only atomics.
func TestShardsConcurrent(t *testing.T) {
	e := hierarchyEngine(t)
	exView := e.ViewFor(exNSAddr)
	if err := e.AddView(&View{Name: "default", Zones: exView.Zones}); err != nil {
		t.Fatal(err)
	}
	const shards, perShard = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < shards; g++ {
		sh := e.NewShard()
		wg.Add(1)
		go func(g int, sh *EngineShard) {
			defer wg.Done()
			slab := make([]byte, 0, 4096)
			for i := 0; i < perShard; i++ {
				var q *dnswire.Message
				if i%3 == 0 {
					// Unique miss → NXDOMAIN via the slow path.
					q = dnswire.NewQuery(uint16(i), fmt.Sprintf("m%d-%d.example.com.", g, i), dnswire.TypeA)
				} else {
					q = dnswire.NewQuery(uint16(i), "www.example.com.", dnswire.TypeA)
				}
				wire, err := q.Pack(nil)
				if err != nil {
					t.Error(err)
					return
				}
				out, err := sh.AppendRespond(slab[:0], wire, clientAddr, UDP)
				if err != nil || len(out) == 0 {
					t.Errorf("shard %d query %d: %v", g, i, err)
					return
				}
				if i%32 == 31 {
					sh.EndBatch()
				}
			}
			sh.EndBatch()
		}(g, sh)
	}
	// Concurrent scrapes and a capacity change mid-flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = e.Stats()
			_ = e.CacheStats()
			if i == 25 {
				e.SetResponseCacheCap(64)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if st := e.Stats(); st.Queries != shards*perShard {
		t.Errorf("aggregated queries = %d, want %d", st.Queries, shards*perShard)
	}
}
