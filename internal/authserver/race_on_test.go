//go:build race

package authserver

// raceEnabled reports whether the race detector is active; allocation
// guards skip under it (the detector changes sync.Pool behaviour).
const raceEnabled = true
