package authserver

import (
	"net/netip"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/qlog"
)

// Query-log emit points. Each served query — batch path or shared path —
// publishes exactly one event, so the pipeline's accounting invariant
// (events + ring drops == engine queries) holds by construction. Batch
// shards own SPSC producers (one worker goroutine each); the shared
// Respond path (per-datagram UDP fallback, TCP, TLS, netsim adapters) is
// multi-goroutine and goes through one mutex-guarded producer. Emitting
// is stores into a ring slot — no syscall, no block, no allocation — and
// a full ring sheds the event, never the response.

// engineQlog is the telemetry state installed by SetQlog.
type engineQlog struct {
	pipe   *qlog.Pipeline
	shared *qlog.LockedProducer
}

// SetQlog attaches (or, with nil, detaches for future shards) the
// query-log pipeline. Call before Server.Start: batch shards bind their
// producer at NewShard and never re-check, keeping the per-query path
// free of an extra atomic load.
func (e *Engine) SetQlog(p *qlog.Pipeline) {
	e.addMu.Lock()
	defer e.addMu.Unlock()
	if p == nil {
		e.qlogSt.Store(nil)
		return
	}
	e.qlogSt.Store(&engineQlog{pipe: p, shared: p.SharedProducer()})
}

// BeginBatch stamps the receive time shared by every event the next
// receive batch emits. One clock read per recvmmsg return bounds the
// timestamp error by the batch's service time (tens of microseconds at
// full load) and keeps time.Now off the per-query path.
//
//ldlint:noalloc
func (sh *EngineShard) BeginBatch() {
	if sh.qlog != nil {
		sh.qlogNow = time.Now().UnixNano()
	}
}

// qlogEmit publishes one event for a batch-path query. Flags carries the
// caller-known bits (cache hit, dropped).
//
//ldlint:noalloc
func (sh *EngineShard) qlogEmit(query []byte, src netip.Addr, transport Transport, vr *viewRoute, qnameLen int, rcode dnswire.Rcode, flags uint8, t0 time.Time) {
	p := sh.qlog
	if p == nil {
		return
	}
	ev := p.Reserve()
	if ev == nil {
		return
	}
	fillQueryEvent(ev, sh.qlogNow, query, src, transport, vr, qnameLen, rcode, flags, t0)
	p.Commit()
}

// qlogEmitShared publishes one event for a shared-path query through the
// locked producer. qs is non-nil (the caller gates).
//
//ldlint:noalloc
func (e *Engine) qlogEmitShared(qs *engineQlog, query []byte, src netip.Addr, transport Transport, vr *viewRoute, qnameLen int, rcode dnswire.Rcode, flags uint8, t0 time.Time) {
	ev := qs.shared.Reserve()
	if ev == nil {
		return
	}
	fillQueryEvent(ev, time.Now().UnixNano(), query, src, transport, vr, qnameLen, rcode, flags, t0)
	qs.shared.Commit()
}

// fillQueryEvent fills a reserved ring slot from the raw query wire.
// qnameLen, when the cache path already parsed it, is the question name
// length including the root terminator; 0 makes this helper scan the
// wire itself (refused/FORMERR/cache-off paths). Latency is recorded
// only for queries the obs sampler timed (t0 set); the rest carry -1.
//
//ldlint:noalloc
func fillQueryEvent(ev *qlog.Event, now int64, query []byte, src netip.Addr, transport Transport, vr *viewRoute, qnameLen int, rcode dnswire.Rcode, flags uint8, t0 time.Time) {
	ev.Time = now
	ev.Latency = -1
	if !t0.IsZero() {
		ev.Latency = time.Since(t0).Nanoseconds()
	}
	ev.Peer = src
	ev.View = ""
	if vr != nil {
		ev.View = vr.view.Name
	}
	ev.ID = 0
	if len(query) >= 2 {
		ev.ID = uint16(query[0])<<8 | uint16(query[1])
	}
	if qnameLen == 0 {
		qnameLen = qlog.WireQNameLen(query)
	}
	ev.QType, ev.QClass, ev.QNameLen = 0, 0, 0
	if qnameLen > 0 && 12+qnameLen+4 <= len(query) && qnameLen <= len(ev.QName) {
		ev.QNameLen = uint8(copy(ev.QName[:], query[12:12+qnameLen]))
		ev.QType = uint16(query[12+qnameLen])<<8 | uint16(query[12+qnameLen+1])
		ev.QClass = uint16(query[12+qnameLen+2])<<8 | uint16(query[12+qnameLen+3])
	}
	ev.Rcode = uint8(rcode)
	ev.Transport = uint8(transport)
	ev.Flags = flags
}
