package authserver

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/zone"
)

// TestCacheIDPatching: two queries for the same question with different
// IDs must get responses carrying their own IDs, with the second served
// from the cache.
func TestCacheIDPatching(t *testing.T) {
	e := hierarchyEngine(t)
	for i, id := range []uint16{0x1111, 0x2B2B} {
		q := dnswire.NewQuery(id, "www.example.com.", dnswire.TypeA)
		resp := respond(t, e, q, exNSAddr, UDP)
		if resp.Header.ID != id {
			t.Errorf("query %d: ID = %#x, want %#x", i, resp.Header.ID, id)
		}
		if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
			t.Errorf("query %d: answer = %v", i, resp.Answer)
		}
	}
	cs := e.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", cs)
	}
}

// TestCacheRDEcho: the cached image must echo each client's RD flag, not
// the flag of the query that populated the entry.
func TestCacheRDEcho(t *testing.T) {
	e := hierarchyEngine(t)
	q := dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA) // RD set
	if resp := respond(t, e, q, exNSAddr, UDP); !resp.Header.RD {
		t.Error("RD-set query: response RD clear")
	}
	q2 := dnswire.NewQuery(2, "www.example.com.", dnswire.TypeA)
	q2.Header.RD = false
	if resp := respond(t, e, q2, exNSAddr, UDP); resp.Header.RD {
		t.Error("RD-clear query served from cache with RD set")
	}
	if cs := e.CacheStats(); cs.Hits != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 hit", cs)
	}
}

// bigRRsetEngine serves a deliberately oversized RRset behind a default
// view, so UDP responses truncate and TCP responses do not.
func bigRRsetEngine(t *testing.T) *Engine {
	t.Helper()
	z := zone.New("big.example.")
	must := func(rr dnswire.RR) {
		if err := z.Add(rr); err != nil {
			t.Fatal(err)
		}
	}
	must(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.SOA{
		MName: "ns.big.example.", RName: "root.big.example.", Serial: 1,
		Refresh: 1, Retry: 1, Expire: 1, Minimum: 1}})
	must(dnswire.RR{Name: "big.example.", Class: dnswire.ClassINET, TTL: 60, Data: dnswire.NS{Host: "ns.big.example."}})
	for i := 0; i < 60; i++ {
		must(dnswire.RR{Name: "fat.big.example.", Class: dnswire.ClassINET, TTL: 60,
			Data: dnswire.TXT{Strings: []string{strings.Repeat("x", 40) + fmt.Sprintf("%03d", i)}}})
	}
	e := NewEngine()
	if err := e.AddView(&View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCacheTransportKeying: a UDP-truncated answer and the TCP full
// answer must not share a cache entry, in either warm-up order.
func TestCacheTransportKeying(t *testing.T) {
	e := bigRRsetEngine(t)
	q := dnswire.NewQuery(1, "fat.big.example.", dnswire.TypeTXT)

	udp1 := respond(t, e, q, clientAddr, UDP)
	tcp1 := respond(t, e, q, clientAddr, TCP)
	// Both entries are now cached; hit them again.
	udp2 := respond(t, e, q, clientAddr, UDP)
	tcp2 := respond(t, e, q, clientAddr, TCP)

	for i, resp := range []*dnswire.Message{udp1, udp2} {
		if !resp.Header.TC || len(resp.Answer) != 0 {
			t.Errorf("UDP response %d not truncated: TC=%v answers=%d", i, resp.Header.TC, len(resp.Answer))
		}
	}
	for i, resp := range []*dnswire.Message{tcp1, tcp2} {
		if resp.Header.TC || len(resp.Answer) != 60 {
			t.Errorf("TCP response %d: TC=%v answers=%d, want full 60", i, resp.Header.TC, len(resp.Answer))
		}
	}
	if cs := e.CacheStats(); cs.Hits != 2 || cs.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 hits / 2 misses", cs)
	}
	// Truncation accounting must replay on cached hits too.
	if st := e.Stats(); st.Truncated != 2 {
		t.Errorf("truncated = %d, want 2 (one build, one cached hit)", st.Truncated)
	}
}

// TestCacheDOKeying: DO and non-DO queries must map to different entries
// (signed answers differ), and the EDNS echo must match each query.
func TestCacheDOKeying(t *testing.T) {
	e := hierarchyEngine(t)
	mk := func(id uint16, do, edns bool) *dnswire.Message {
		q := dnswire.NewQuery(id, "www.example.com.", dnswire.TypeA)
		if edns {
			q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: do}
		}
		return q
	}
	// Warm all three variants, then hit each again.
	for round := 0; round < 2; round++ {
		resp := respond(t, e, mk(1, true, true), exNSAddr, UDP)
		if resp.Edns == nil || !resp.Edns.DO {
			t.Fatalf("round %d: DO query: EDNS = %+v", round, resp.Edns)
		}
		resp = respond(t, e, mk(2, false, true), exNSAddr, UDP)
		if resp.Edns == nil || resp.Edns.DO {
			t.Fatalf("round %d: non-DO EDNS query: EDNS = %+v", round, resp.Edns)
		}
		resp = respond(t, e, mk(3, false, false), exNSAddr, UDP)
		if resp.Edns != nil {
			t.Fatalf("round %d: plain query got unsolicited OPT", round)
		}
	}
	if cs := e.CacheStats(); cs.Hits != 3 || cs.Misses != 3 {
		t.Errorf("cache stats = %+v, want 3 hits / 3 misses", cs)
	}
}

// TestCacheCaseInsensitiveHit: a mixed-case (0x20-style) repeat of a
// cached question must hit, and the response must echo the client's
// exact question bytes.
func TestCacheCaseInsensitiveHit(t *testing.T) {
	e := hierarchyEngine(t)
	respond(t, e, dnswire.NewQuery(1, "www.example.com.", dnswire.TypeA), exNSAddr, UDP)

	q := dnswire.NewQuery(2, "wWw.ExAmPlE.cOm.", dnswire.TypeA)
	// Pack preserving the mixed case: NewQuery canonicalizes, so build
	// the question by hand.
	q.Question[0].Name = "wWw.ExAmPlE.cOm."
	wire := packPreservingCase(t, q)
	out, err := e.Respond(wire, exNSAddr, UDP)
	if err != nil {
		t.Fatal(err)
	}
	if cs := e.CacheStats(); cs.Hits != 1 {
		t.Fatalf("mixed-case repeat did not hit: %+v", cs)
	}
	var resp dnswire.Message
	if err := resp.Unpack(out); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].Data.String() != "192.0.2.80" {
		t.Errorf("answer = %v", resp.Answer)
	}
	// The echoed question region must be byte-identical to the query's.
	qnameLen := len("www.example.com.") + 1
	if !bytes.Equal(out[12:12+qnameLen], wire[12:12+qnameLen]) {
		t.Errorf("question case not echoed: got % x want % x", out[12:12+qnameLen], wire[12:12+qnameLen])
	}
}

// packPreservingCase packs q without canonicalizing the question name's
// case (compression is case-preserving for the first occurrence, but
// CanonicalName lowercases, so splice the raw name in by hand).
func packPreservingCase(t *testing.T, q *dnswire.Message) []byte {
	t.Helper()
	name := q.Question[0].Name
	q.Question[0].Name = strings.ToLower(name)
	wire, err := q.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The question name starts at offset 12 as length-prefixed labels.
	off := 13
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		copy(wire[off:], label)
		off += len(label) + 1
	}
	return wire
}

// TestCacheCapEviction: the cache must never exceed the configured cap.
func TestCacheCapEviction(t *testing.T) {
	e := hierarchyEngine(t)
	e.SetResponseCacheCap(4)
	for i := 0; i < 10; i++ {
		q := dnswire.NewQuery(uint16(i), fmt.Sprintf("h%d.example.com.", i), dnswire.TypeA)
		respond(t, e, q, exNSAddr, UDP)
	}
	if cs := e.CacheStats(); cs.Entries > 4 {
		t.Errorf("entries = %d, want ≤ 4", cs.Entries)
	}
	// Disabling drops everything and stops caching.
	e.SetResponseCacheCap(0)
	if cs := e.CacheStats(); cs.Entries != 0 {
		t.Errorf("entries after disable = %d", cs.Entries)
	}
	respond(t, e, dnswire.NewQuery(99, "www.example.com.", dnswire.TypeA), exNSAddr, UDP)
	respond(t, e, dnswire.NewQuery(99, "www.example.com.", dnswire.TypeA), exNSAddr, UDP)
	if cs := e.CacheStats(); cs.Entries != 0 {
		t.Errorf("cache grew while disabled: %+v", cs)
	}
}

// TestCacheRefusedAccounting: REFUSED responses served from the cache
// must keep bumping the refused counter.
func TestCacheRefusedAccounting(t *testing.T) {
	e := hierarchyEngine(t)
	// The example view only hosts example.com., so an org. query has no
	// enclosing zone → REFUSED.
	q := dnswire.NewQuery(1, "www.example.org.", dnswire.TypeA)
	for i := 0; i < 3; i++ {
		resp := respond(t, e, q, exNSAddr, UDP)
		if resp.Header.Rcode != dnswire.RcodeRefused {
			t.Fatalf("rcode = %v", resp.Header.Rcode)
		}
	}
	if st := e.Stats(); st.Refused != 3 {
		t.Errorf("refused = %d, want 3", st.Refused)
	}
	if cs := e.CacheStats(); cs.Hits != 2 {
		t.Errorf("cache stats = %+v, want 2 hits", cs)
	}
}

// TestConcurrentRespondWithRouting hammers Respond from many goroutines
// — mixed qnames, transports, and DO bits — while views are concurrently
// added, exercising the routing snapshot and cache under -race.
func TestConcurrentRespondWithRouting(t *testing.T) {
	e := hierarchyEngine(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				q := dnswire.NewQuery(uint16(i), fmt.Sprintf("h%d.example.com.", i%7), dnswire.TypeA)
				if g%2 == 0 {
					q.Edns = &dnswire.EDNS{UDPSize: 4096, DO: i%2 == 0}
				}
				tr := UDP
				if g%3 == 0 {
					tr = TCP
				}
				wire, err := q.Pack(nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Respond(wire, exNSAddr, tr); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent view registration must not disturb in-flight queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		z, err := zone.Parse(strings.NewReader(exZoneText), "example.com.")
		if err != nil {
			t.Error(err)
			return
		}
		if err := e.AddView(&View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if st := e.Stats(); st.Queries != 8*300 || st.Responses != 8*300 {
		t.Errorf("stats = %+v", st)
	}
}
