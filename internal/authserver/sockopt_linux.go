//go:build linux

package authserver

import "syscall"

// soReusePort is SO_REUSEPORT (not exported by the syscall package on
// all Go versions); 0xf on every Linux architecture.
const soReusePort = 0xf

const reusePortSupported = true

// reusePortControl is a net.ListenConfig.Control hook that sets
// SO_REUSEPORT before bind, letting several UDP sockets share one
// address so the kernel hashes incoming packets across them.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
