package authserver

import (
	"net/netip"

	"ldplayer/internal/netsim"
)

// AttachNetsim serves the engine on a netsim node: every datagram arriving
// at the node is answered from the engine, with the reply's source set to
// the address the query was sent to (so, post-proxy, the recursive sees a
// reply from the nameserver it queried). This is the testbed-mode
// frontend of the meta-DNS-server.
func AttachNetsim(e *Engine, node *netsim.Node) {
	node.Handle(func(d netsim.Datagram) {
		resp, err := e.Respond(d.Payload, d.Src.Addr(), UDP)
		if err != nil || resp == nil {
			return
		}
		node.Send(netsim.Datagram{
			Src:     netip.AddrPortFrom(d.Dst.Addr(), 53),
			Dst:     d.Src,
			Payload: resp,
		})
	})
}
