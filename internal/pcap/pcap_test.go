package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"time"

	"ldplayer/internal/dnswire"
	"ldplayer/internal/trace"
)

func dnsQuery(t *testing.T, id uint16, name string) []byte {
	t.Helper()
	wire, err := dnswire.NewQuery(id, name, dnswire.TypeA).Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func sampleTrace(t *testing.T) []trace.Entry {
	t.Helper()
	base := time.Unix(1700000000, 500000000)
	return []trace.Entry{
		{
			Time:     base,
			Src:      netip.MustParseAddrPort("10.0.0.1:5353"),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: trace.UDP,
			Message:  dnsQuery(t, 1, "a.example.com."),
		},
		{
			Time:     base.Add(time.Millisecond),
			Src:      netip.MustParseAddrPort("10.0.0.2:41000"),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: trace.TCP,
			Message:  dnsQuery(t, 2, "b.example.com."),
		},
		{
			Time:     base.Add(2 * time.Millisecond),
			Src:      netip.MustParseAddrPort("10.0.0.2:41000"),
			Dst:      netip.MustParseAddrPort("198.41.0.4:53"),
			Protocol: trace.TCP,
			Message:  dnsQuery(t, 3, "c.example.com."),
		},
	}
}

func TestPcapRoundTrip(t *testing.T) {
	entries := sampleTrace(t)
	var buf bytes.Buffer
	if err := WriteDNSPcap(&buf, entries); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip %d -> %d entries", len(entries), len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i].Message, entries[i].Message) {
			t.Errorf("entry %d: message bytes differ", i)
		}
		if got[i].Src != entries[i].Src || got[i].Dst != entries[i].Dst {
			t.Errorf("entry %d: addressing %v->%v, want %v->%v",
				i, got[i].Src, got[i].Dst, entries[i].Src, entries[i].Dst)
		}
		if got[i].Protocol != entries[i].Protocol {
			t.Errorf("entry %d: protocol %v, want %v", i, got[i].Protocol, entries[i].Protocol)
		}
		// Microsecond-precision timestamps.
		if d := got[i].Time.Sub(entries[i].Time); d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("entry %d: timestamp off by %v", i, d)
		}
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header accepted")
	}
}

func TestPcapTruncatedPacket(t *testing.T) {
	entries := sampleTrace(t)[:1]
	var buf bytes.Buffer
	if err := WriteDNSPcap(&buf, entries); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	pr, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.Next(); err == nil {
		t.Error("truncated packet accepted")
	}
}

// TestTCPSegmentSplitAcrossPackets checks the reassembler joins a DNS
// message split mid-frame.
func TestTCPSegmentSplitAcrossPackets(t *testing.T) {
	msg := dnsQuery(t, 9, "split.example.com.")
	framed := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(framed, uint16(len(msg)))
	copy(framed[2:], msg)

	src := netip.MustParseAddrPort("10.0.0.3:50000")
	dst := netip.MustParseAddrPort("198.41.0.4:53")
	mk := func(seq uint32, payload []byte) []byte {
		var pkt []byte
		eth := Ethernet{EtherType: EtherTypeIPv4}
		pkt = eth.AppendTo(pkt)
		ip := IPv4{Protocol: IPProtoTCP, Src: src.Addr(), Dst: dst.Addr()}
		pkt = ip.AppendTo(pkt, 20+len(payload))
		tcp := TCP{SrcPort: src.Port(), DstPort: dst.Port(), Seq: seq, ACK: true}
		pkt = tcp.AppendTo(pkt)
		return append(pkt, payload...)
	}

	x := NewExtractor()
	info := PacketInfo{Timestamp: time.Unix(1, 0)}
	half := len(framed) / 2

	out, err := x.Packet(LinkTypeEthernet, info, mk(0, framed[:half]))
	if err != nil || len(out) != 0 {
		t.Fatalf("first half: out=%v err=%v", out, err)
	}
	out, err = x.Packet(LinkTypeEthernet, info, mk(uint32(half), framed[half:]))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !bytes.Equal(out[0].Message, msg) {
		t.Fatalf("reassembly failed: %v", out)
	}
}

func TestTCPOutOfOrderCounted(t *testing.T) {
	msg := dnsQuery(t, 10, "ooo.example.com.")
	framed := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(framed, uint16(len(msg)))
	copy(framed[2:], msg)
	src := netip.MustParseAddrPort("10.0.0.4:50001")
	dst := netip.MustParseAddrPort("198.41.0.4:53")
	var pkt []byte
	eth := Ethernet{EtherType: EtherTypeIPv4}
	pkt = eth.AppendTo(pkt)
	ip := IPv4{Protocol: IPProtoTCP, Src: src.Addr(), Dst: dst.Addr()}
	pkt = ip.AppendTo(pkt, 20+len(framed))
	tcp := TCP{SrcPort: src.Port(), DstPort: dst.Port(), Seq: 0, ACK: true}
	pkt = tcp.AppendTo(pkt)
	pkt = append(pkt, framed...)

	x := NewExtractor()
	info := PacketInfo{Timestamp: time.Unix(1, 0)}
	if _, err := x.Packet(LinkTypeEthernet, info, pkt); err != nil {
		t.Fatal(err)
	}
	// Replaying the same segment is now out of order (seq regressed).
	if _, err := x.Packet(LinkTypeEthernet, info, pkt); err != nil {
		t.Fatal(err)
	}
	if x.OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d, want 1", x.OutOfOrder)
	}
}

func TestNonDNSSkipped(t *testing.T) {
	var pkt []byte
	eth := Ethernet{EtherType: EtherTypeIPv4}
	pkt = eth.AppendTo(pkt)
	ip := IPv4{Protocol: IPProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	pkt = ip.AppendTo(pkt, 8+4)
	udp := UDP{SrcPort: 1234, DstPort: 4321}
	pkt = udp.AppendTo(pkt, 4)
	pkt = append(pkt, "data"...)
	x := NewExtractor()
	out, err := x.Packet(LinkTypeEthernet, PacketInfo{}, pkt)
	if err != nil || out != nil {
		t.Errorf("out=%v err=%v", out, err)
	}
	if x.NonDNS != 1 {
		t.Errorf("NonDNS = %d", x.NonDNS)
	}
}

func TestRawLinkType(t *testing.T) {
	// Write a raw-IP pcap by hand.
	var buf bytes.Buffer
	pw := NewWriter(&buf, LinkTypeRaw)
	msg := dnsQuery(t, 11, "raw.example.com.")
	var pkt []byte
	ip := IPv4{Protocol: IPProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("198.41.0.4")}
	pkt = ip.AppendTo(pkt, 8+len(msg))
	udp := UDP{SrcPort: 5353, DstPort: 53}
	pkt = udp.AppendTo(pkt, len(msg))
	pkt = append(pkt, msg...)
	if err := pw.WritePacket(time.Unix(2, 0), pkt); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(tr)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Message, msg) {
		t.Fatalf("raw link extraction = %v", got)
	}
}

func TestIPv6Extraction(t *testing.T) {
	msg := dnsQuery(t, 12, "v6.example.com.")
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::53")
	var pkt []byte
	eth := Ethernet{EtherType: EtherTypeIPv6}
	pkt = eth.AppendTo(pkt)
	// Hand-build the IPv6 fixed header.
	hdr := make([]byte, 40)
	hdr[0] = 6 << 4
	binary.BigEndian.PutUint16(hdr[4:6], uint16(8+len(msg)))
	hdr[6] = IPProtoUDP
	s16, d16 := src.As16(), dst.As16()
	copy(hdr[8:24], s16[:])
	copy(hdr[24:40], d16[:])
	pkt = append(pkt, hdr...)
	udp := UDP{SrcPort: 5353, DstPort: 53}
	pkt = udp.AppendTo(pkt, len(msg))
	pkt = append(pkt, msg...)

	x := NewExtractor()
	out, err := x.Packet(LinkTypeEthernet, PacketInfo{Timestamp: time.Unix(3, 0)}, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Src.Addr() != src {
		t.Fatalf("v6 extraction = %v", out)
	}
}
