package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"time"

	"ldplayer/internal/trace"
)

// DNS extraction: the "DNS parser" stage of the trace mutator (Figure 3).
// UDP payloads on port 53 are taken verbatim; TCP flows on ports 53/853
// are reassembled in order and carved on the RFC 1035 two-octet framing.

// flowKey identifies one direction of a TCP flow.
type flowKey struct {
	src, dst netip.AddrPort
}

// flowState is the in-order reassembly buffer for one TCP direction.
type flowState struct {
	nextSeq  uint32
	synSeen  bool
	buf      []byte
	lastSeen time.Time
}

// Extractor converts raw packets into trace entries.
type Extractor struct {
	flows map[flowKey]*flowState
	// OutOfOrder counts TCP segments dropped because they were not the
	// next expected sequence number (the extractor reassembles in-order
	// flows only, which covers testbed captures).
	OutOfOrder int64
	// NonDNS counts packets skipped for not being DNS traffic.
	NonDNS int64
}

// NewExtractor creates an Extractor.
func NewExtractor() *Extractor {
	return &Extractor{flows: make(map[flowKey]*flowState)}
}

// maxFlowBuffer bounds a single direction's pending bytes so a broken
// capture cannot balloon memory.
const maxFlowBuffer = 1 << 20

// Packet processes one captured packet and returns any complete DNS
// messages it yields (zero or more: a TCP segment can complete several).
func (x *Extractor) Packet(linkType uint32, info PacketInfo, data []byte) ([]trace.Entry, error) {
	payload := data
	var etherType uint16
	switch linkType {
	case LinkTypeEthernet:
		var eth Ethernet
		var err error
		payload, err = eth.DecodeFromBytes(data)
		if err != nil {
			return nil, err
		}
		etherType = eth.EtherType
	case LinkTypeRaw:
		if len(data) == 0 {
			return nil, errShortPacket
		}
		switch data[0] >> 4 {
		case 4:
			etherType = EtherTypeIPv4
		case 6:
			etherType = EtherTypeIPv6
		default:
			return nil, fmt.Errorf("pcap: unknown IP version %d", data[0]>>4)
		}
	default:
		return nil, fmt.Errorf("pcap: unsupported link type %d", linkType)
	}

	var srcAddr, dstAddr netip.Addr
	var ipProto uint8
	switch etherType {
	case EtherTypeIPv4:
		var ip IPv4
		var err error
		payload, err = ip.DecodeFromBytes(payload)
		if err != nil {
			return nil, err
		}
		srcAddr, dstAddr, ipProto = ip.Src, ip.Dst, ip.Protocol
	case EtherTypeIPv6:
		var ip IPv6
		var err error
		payload, err = ip.DecodeFromBytes(payload)
		if err != nil {
			return nil, err
		}
		srcAddr, dstAddr, ipProto = ip.Src, ip.Dst, ip.NextHeader
	default:
		x.NonDNS++
		return nil, nil
	}

	switch ipProto {
	case IPProtoUDP:
		var udp UDP
		dns, err := udp.DecodeFromBytes(payload)
		if err != nil {
			return nil, err
		}
		if udp.SrcPort != 53 && udp.DstPort != 53 {
			x.NonDNS++
			return nil, nil
		}
		if len(dns) < 12 {
			return nil, nil
		}
		return []trace.Entry{{
			Time:     info.Timestamp,
			Src:      netip.AddrPortFrom(srcAddr, udp.SrcPort),
			Dst:      netip.AddrPortFrom(dstAddr, udp.DstPort),
			Protocol: trace.UDP,
			Message:  append([]byte(nil), dns...),
		}}, nil
	case IPProtoTCP:
		var tcp TCP
		seg, err := tcp.DecodeFromBytes(payload)
		if err != nil {
			return nil, err
		}
		proto := trace.TCP
		switch {
		case tcp.SrcPort == 853 || tcp.DstPort == 853:
			proto = trace.TLS
		case tcp.SrcPort == 53 || tcp.DstPort == 53:
		default:
			x.NonDNS++
			return nil, nil
		}
		return x.tcpSegment(info, srcAddr, dstAddr, tcp, seg, proto), nil
	default:
		x.NonDNS++
		return nil, nil
	}
}

// tcpSegment feeds one segment into its flow's reassembly buffer and
// carves complete length-prefixed messages.
func (x *Extractor) tcpSegment(info PacketInfo, srcAddr, dstAddr netip.Addr, tcp TCP, seg []byte, proto trace.Protocol) []trace.Entry {
	key := flowKey{
		src: netip.AddrPortFrom(srcAddr, tcp.SrcPort),
		dst: netip.AddrPortFrom(dstAddr, tcp.DstPort),
	}
	st := x.flows[key]
	if tcp.SYN {
		st = &flowState{nextSeq: tcp.Seq + 1, synSeen: true}
		x.flows[key] = st
		return nil
	}
	if tcp.FIN || tcp.RST {
		delete(x.flows, key)
		return nil
	}
	if len(seg) == 0 {
		return nil
	}
	if st == nil {
		// Mid-flow capture: accept the segment as the start of the stream.
		st = &flowState{nextSeq: tcp.Seq}
		x.flows[key] = st
	}
	if tcp.Seq != st.nextSeq {
		x.OutOfOrder++
		return nil
	}
	st.nextSeq += uint32(len(seg))
	st.buf = append(st.buf, seg...)
	st.lastSeen = info.Timestamp
	if len(st.buf) > maxFlowBuffer {
		delete(x.flows, key)
		return nil
	}

	var out []trace.Entry
	for len(st.buf) >= 2 {
		n := int(binary.BigEndian.Uint16(st.buf))
		if n == 0 {
			delete(x.flows, key)
			break
		}
		if len(st.buf) < 2+n {
			break
		}
		msg := append([]byte(nil), st.buf[2:2+n]...)
		st.buf = st.buf[2+n:]
		if len(msg) >= 12 {
			out = append(out, trace.Entry{
				Time:     info.Timestamp,
				Src:      key.src,
				Dst:      key.dst,
				Protocol: proto,
				Message:  msg,
			})
		}
	}
	return out
}

// TraceReader adapts a pcap stream into a trace.Reader of DNS entries.
type TraceReader struct {
	pr      *Reader
	x       *Extractor
	pending []trace.Entry
}

// NewTraceReader wraps a pcap stream.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	pr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return &TraceReader{pr: pr, x: NewExtractor()}, nil
}

// Next implements trace.Reader, skipping non-DNS and undecodable packets.
func (tr *TraceReader) Next() (trace.Entry, error) {
	for {
		if len(tr.pending) > 0 {
			e := tr.pending[0]
			tr.pending = tr.pending[1:]
			return e, nil
		}
		info, data, err := tr.pr.Next()
		if err != nil {
			return trace.Entry{}, err
		}
		entries, err := tr.x.Packet(tr.pr.LinkType, info, data)
		if err != nil {
			continue // tolerate undecodable packets in real captures
		}
		tr.pending = entries
	}
}

// WriteDNSPcap writes entries as an Ethernet/IPv4/UDP (or TCP) pcap file:
// the inverse pipeline, used to build fixtures and to interoperate with
// standard tools. TCP entries are emitted as one self-contained segment
// per message with correct sequence progression per flow.
func WriteDNSPcap(w io.Writer, entries []trace.Entry) error {
	pw := NewWriter(w, LinkTypeEthernet)
	seqs := make(map[flowKey]uint32)
	for _, e := range entries {
		var pkt []byte
		eth := Ethernet{EtherType: EtherTypeIPv4}
		pkt = eth.AppendTo(pkt)
		switch e.Protocol {
		case trace.UDP:
			ip := IPv4{Protocol: IPProtoUDP, Src: e.Src.Addr(), Dst: e.Dst.Addr()}
			pkt = ip.AppendTo(pkt, 8+len(e.Message))
			udp := UDP{SrcPort: e.Src.Port(), DstPort: e.Dst.Port()}
			pkt = udp.AppendTo(pkt, len(e.Message))
			pkt = append(pkt, e.Message...)
		default: // TCP and TLS share TCP framing on the wire
			key := flowKey{src: e.Src, dst: e.Dst}
			seq := seqs[key]
			framed := make([]byte, 2+len(e.Message))
			binary.BigEndian.PutUint16(framed, uint16(len(e.Message)))
			copy(framed[2:], e.Message)
			ip := IPv4{Protocol: IPProtoTCP, Src: e.Src.Addr(), Dst: e.Dst.Addr()}
			pkt = ip.AppendTo(pkt, 20+len(framed))
			tcp := TCP{SrcPort: e.Src.Port(), DstPort: e.Dst.Port(), Seq: seq, ACK: true}
			pkt = tcp.AppendTo(pkt)
			pkt = append(pkt, framed...)
			seqs[key] = seq + uint32(len(framed))
		}
		if err := pw.WritePacket(e.Time, pkt); err != nil {
			return err
		}
	}
	return nil
}
