package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol layer decoding in the gopacket DecodingLayer style: each layer
// is a value struct with DecodeFromBytes filling its fields and returning
// the payload slice, so a full decode chain allocates nothing.

// Ethernet header fields LDplayer cares about.
type Ethernet struct {
	EtherType uint16
}

// EtherTypes.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

var errShortPacket = errors.New("pcap: packet too short")

// DecodeFromBytes parses an Ethernet II header and returns its payload.
func (e *Ethernet) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 14 {
		return nil, errShortPacket
	}
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[14:], nil
}

// AppendTo serializes the header with zero MAC addresses (testbed traffic
// has no meaningful L2 identity).
func (e *Ethernet) AppendTo(buf []byte) []byte {
	var hdr [14]byte
	binary.BigEndian.PutUint16(hdr[12:14], e.EtherType)
	return append(buf, hdr[:]...)
}

// IPProto values.
const (
	IPProtoTCP uint8 = 6
	IPProtoUDP uint8 = 17
)

// IPv4 header fields.
type IPv4 struct {
	Protocol uint8
	Src, Dst netip.Addr
	// TotalLen is the IP total length, needed to strip Ethernet padding.
	TotalLen int
}

// DecodeFromBytes parses an IPv4 header and returns its payload with any
// link-layer padding removed.
func (ip *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, errShortPacket
	}
	if data[0]>>4 != 4 {
		return nil, fmt.Errorf("pcap: not IPv4 (version %d)", data[0]>>4)
	}
	ihl := int(data[0]&0x0F) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, errShortPacket
	}
	ip.TotalLen = int(binary.BigEndian.Uint16(data[2:4]))
	if ip.TotalLen < ihl || ip.TotalLen > len(data) {
		ip.TotalLen = len(data) // tolerate truncated captures
	}
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	return data[ihl:ip.TotalLen], nil
}

// AppendTo serializes a minimal IPv4 header for payloadLen payload bytes.
func (ip *IPv4) AppendTo(buf []byte, payloadLen int) []byte {
	var hdr [20]byte
	hdr[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(hdr[2:4], uint16(20+payloadLen))
	hdr[8] = 64 // TTL
	hdr[9] = ip.Protocol
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], ipChecksum(hdr[:]))
	return append(buf, hdr[:]...)
}

func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// IPv6 header fields (no extension-header support; DNS traces do not use
// them in practice).
type IPv6 struct {
	NextHeader uint8
	Src, Dst   netip.Addr
}

// DecodeFromBytes parses an IPv6 fixed header and returns its payload.
func (ip *IPv6) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 40 {
		return nil, errShortPacket
	}
	if data[0]>>4 != 6 {
		return nil, fmt.Errorf("pcap: not IPv6 (version %d)", data[0]>>4)
	}
	payloadLen := int(binary.BigEndian.Uint16(data[4:6]))
	ip.NextHeader = data[6]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	end := 40 + payloadLen
	if end > len(data) {
		end = len(data)
	}
	return data[40:end], nil
}

// UDP header fields.
type UDP struct {
	SrcPort, DstPort uint16
}

// DecodeFromBytes parses a UDP header and returns its payload.
func (u *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, errShortPacket
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	ulen := int(binary.BigEndian.Uint16(data[4:6]))
	if ulen < 8 || ulen > len(data) {
		ulen = len(data)
	}
	return data[8:ulen], nil
}

// AppendTo serializes a UDP header (checksum 0 = unset, legal for IPv4).
func (u *UDP) AppendTo(buf []byte, payloadLen int) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(8+payloadLen))
	return append(buf, hdr[:]...)
}

// TCP header fields.
type TCP struct {
	SrcPort, DstPort uint16
	Seq              uint32
	SYN, FIN, RST    bool
	ACK              bool
}

// DecodeFromBytes parses a TCP header and returns its payload.
func (t *TCP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, errShortPacket
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	off := int(data[12]>>4) * 4
	if off < 20 || len(data) < off {
		return nil, errShortPacket
	}
	flags := data[13]
	t.FIN = flags&0x01 != 0
	t.SYN = flags&0x02 != 0
	t.RST = flags&0x04 != 0
	t.ACK = flags&0x10 != 0
	return data[off:], nil
}

// AppendTo serializes a minimal TCP header (no options).
func (t *TCP) AppendTo(buf []byte) []byte {
	var hdr [20]byte
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	hdr[12] = 5 << 4
	var flags byte
	if t.FIN {
		flags |= 0x01
	}
	if t.SYN {
		flags |= 0x02
	}
	if t.RST {
		flags |= 0x04
	}
	if t.ACK {
		flags |= 0x10
	}
	hdr[13] = flags
	return append(buf, hdr[:]...)
}
