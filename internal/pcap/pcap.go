// Package pcap reads and writes libpcap capture files and decodes the
// Ethernet/IPv4/IPv6/UDP/TCP layers LDplayer needs to lift DNS messages
// out of network traces. The layer design follows gopacket's
// DecodingLayer idiom: fixed structs decoded in place from byte slices,
// no per-packet allocation on the hot path.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Link types (pcap network field).
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101 // raw IP, no link header
)

const (
	magicMicros        = 0xa1b2c3d4
	magicNanos         = 0xa1b23c4d
	magicMicrosSwapped = 0xd4c3b2a1
	magicNanosSwapped  = 0x4d3cb2a1
)

// PacketInfo is the per-packet record header.
type PacketInfo struct {
	Timestamp time.Time
	// CaptureLength is the number of octets present in the file.
	CaptureLength int
	// OriginalLength is the packet's length on the wire.
	OriginalLength int
}

// Reader reads packets from a pcap file.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	LinkType uint32
	snapLen  uint32
	hdr      [16]byte
}

// NewReader parses the global header from r.
func NewReader(r io.Reader) (*Reader, error) {
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	pr := &Reader{r: r}
	magic := binary.LittleEndian.Uint32(gh[:4])
	switch magic {
	case magicMicros:
		pr.order = binary.LittleEndian
	case magicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicMicrosSwapped:
		pr.order = binary.BigEndian
	case magicNanosSwapped:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", magic)
	}
	pr.snapLen = pr.order.Uint32(gh[16:20])
	pr.LinkType = pr.order.Uint32(gh[20:24])
	return pr, nil
}

// Next returns the next packet's info and data. Data is freshly allocated
// per packet.
func (pr *Reader) Next() (PacketInfo, []byte, error) {
	if _, err := io.ReadFull(pr.r, pr.hdr[:]); err != nil {
		if err == io.EOF {
			return PacketInfo{}, nil, io.EOF
		}
		return PacketInfo{}, nil, fmt.Errorf("pcap: packet header: %w", err)
	}
	sec := int64(pr.order.Uint32(pr.hdr[0:4]))
	sub := int64(pr.order.Uint32(pr.hdr[4:8]))
	incl := pr.order.Uint32(pr.hdr[8:12])
	orig := pr.order.Uint32(pr.hdr[12:16])
	if pr.snapLen > 0 && incl > pr.snapLen+65536 {
		return PacketInfo{}, nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return PacketInfo{}, nil, fmt.Errorf("pcap: truncated packet: %w", err)
	}
	ts := time.Unix(sec, sub*1000)
	if pr.nanos {
		ts = time.Unix(sec, sub)
	}
	return PacketInfo{
		Timestamp:      ts,
		CaptureLength:  int(incl),
		OriginalLength: int(orig),
	}, data, nil
}

// Writer writes packets to a pcap file (microsecond timestamps).
type Writer struct {
	w        io.Writer
	linkType uint32
	wrote    bool
}

// NewWriter creates a Writer producing linkType packets.
func NewWriter(w io.Writer, linkType uint32) *Writer {
	return &Writer{w: w, linkType: linkType}
}

func (pw *Writer) writeGlobalHeader() error {
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], magicMicros)
	binary.LittleEndian.PutUint16(gh[4:6], 2)        // version major
	binary.LittleEndian.PutUint16(gh[6:8], 4)        // version minor
	binary.LittleEndian.PutUint32(gh[16:20], 262144) // snaplen
	binary.LittleEndian.PutUint32(gh[20:24], pw.linkType)
	_, err := pw.w.Write(gh[:])
	return err
}

// WritePacket appends one packet.
func (pw *Writer) WritePacket(ts time.Time, data []byte) error {
	if !pw.wrote {
		if err := pw.writeGlobalHeader(); err != nil {
			return err
		}
		pw.wrote = true
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}
