package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"ldplayer/internal/trace"
)

// pcapng reading (the format modern tcpdump/wireshark default to).
// LDplayer consumes Section Header, Interface Description, Enhanced
// Packet, and (legacy) Simple Packet blocks; every other block type is
// skipped. Multiple sections and per-interface timestamp resolutions are
// handled.

// pcapng block type codes.
const (
	blockSectionHeader  = 0x0A0D0D0A
	blockInterfaceDesc  = 0x00000001
	blockEnhancedPacket = 0x00000006
	blockSimplePacket   = 0x00000003
)

const byteOrderMagic = 0x1A2B3C4D

// ngInterface records what LDplayer needs per interface.
type ngInterface struct {
	linkType uint32
	// tsDivisor converts raw timestamps to seconds (units per second).
	tsDivisor uint64
}

// NgReader reads packets from a pcapng stream.
type NgReader struct {
	r          io.Reader
	order      binary.ByteOrder
	interfaces []ngInterface
}

// NewNgReader parses the first Section Header Block from r.
func NewNgReader(r io.Reader) (*NgReader, error) {
	ng := &NgReader{r: r}
	if err := ng.readSectionHeader(); err != nil {
		return nil, err
	}
	return ng, nil
}

func (ng *NgReader) readSectionHeader() error {
	// Block type (4) + length (4) + byte-order magic (4).
	var head [12]byte
	if _, err := io.ReadFull(ng.r, head[:]); err != nil {
		return fmt.Errorf("pcapng: section header: %w", err)
	}
	if binary.LittleEndian.Uint32(head[0:4]) != blockSectionHeader {
		return fmt.Errorf("pcapng: not a section header block")
	}
	switch binary.LittleEndian.Uint32(head[8:12]) {
	case byteOrderMagic:
		ng.order = binary.LittleEndian
	case 0x4D3C2B1A:
		ng.order = binary.BigEndian
	default:
		return fmt.Errorf("pcapng: bad byte-order magic")
	}
	total := ng.order.Uint32(head[4:8])
	if total < 28 || total%4 != 0 {
		return fmt.Errorf("pcapng: bad section header length %d", total)
	}
	// Skip the rest of the block (version, section length, options,
	// trailing length).
	rest := make([]byte, total-12)
	if _, err := io.ReadFull(ng.r, rest); err != nil {
		return err
	}
	ng.interfaces = ng.interfaces[:0]
	return nil
}

// readBlock returns the next block's type and body (without the trailing
// length field).
func (ng *NgReader) readBlock() (uint32, []byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(ng.r, head[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	typ := ng.order.Uint32(head[0:4])
	total := ng.order.Uint32(head[4:8])
	if total < 12 || total%4 != 0 || total > 1<<26 {
		return 0, nil, fmt.Errorf("pcapng: bad block length %d", total)
	}
	body := make([]byte, total-8)
	if _, err := io.ReadFull(ng.r, body); err != nil {
		return 0, nil, fmt.Errorf("pcapng: truncated block: %w", err)
	}
	// Verify the trailing total-length copy.
	if got := ng.order.Uint32(body[len(body)-4:]); got != total {
		return 0, nil, fmt.Errorf("pcapng: block length mismatch %d != %d", got, total)
	}
	return typ, body[:len(body)-4], nil
}

// handleInterfaceDesc parses an IDB, extracting link type and timestamp
// resolution (the if_tsresol option, default 10^-6).
func (ng *NgReader) handleInterfaceDesc(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcapng: short interface description")
	}
	iface := ngInterface{
		linkType:  uint32(ng.order.Uint16(body[0:2])),
		tsDivisor: 1_000_000,
	}
	// Options start after linktype(2) + reserved(2) + snaplen(4).
	opts := body[8:]
	for len(opts) >= 4 {
		code := ng.order.Uint16(opts[0:2])
		olen := int(ng.order.Uint16(opts[2:4]))
		opts = opts[4:]
		if olen > len(opts) {
			break
		}
		if code == 9 && olen >= 1 { // if_tsresol
			v := opts[0]
			if v&0x80 != 0 {
				iface.tsDivisor = 1 << (v & 0x7F)
			} else {
				iface.tsDivisor = pow10(int(v))
			}
		}
		if code == 0 { // opt_endofopt
			break
		}
		opts = opts[(olen+3)&^3:]
	}
	ng.interfaces = append(ng.interfaces, iface)
	return nil
}

func pow10(n int) uint64 {
	out := uint64(1)
	for i := 0; i < n && i < 19; i++ {
		out *= 10
	}
	return out
}

// Next returns the next packet with its link type.
func (ng *NgReader) Next() (PacketInfo, uint32, []byte, error) {
	for {
		typ, body, err := ng.readBlock()
		if err != nil {
			return PacketInfo{}, 0, nil, err
		}
		switch typ {
		case blockSectionHeader:
			// A new section starts mid-stream: body begins with the
			// byte-order magic; re-derive endianness.
			if len(body) >= 4 {
				switch binary.LittleEndian.Uint32(body[0:4]) {
				case byteOrderMagic:
					ng.order = binary.LittleEndian
				default:
					ng.order = binary.BigEndian
				}
			}
			ng.interfaces = ng.interfaces[:0]
		case blockInterfaceDesc:
			if err := ng.handleInterfaceDesc(body); err != nil {
				return PacketInfo{}, 0, nil, err
			}
		case blockEnhancedPacket:
			if len(body) < 20 {
				return PacketInfo{}, 0, nil, fmt.Errorf("pcapng: short EPB")
			}
			ifIdx := ng.order.Uint32(body[0:4])
			if int(ifIdx) >= len(ng.interfaces) {
				return PacketInfo{}, 0, nil, fmt.Errorf("pcapng: EPB references unknown interface %d", ifIdx)
			}
			iface := ng.interfaces[ifIdx]
			ts := uint64(ng.order.Uint32(body[4:8]))<<32 | uint64(ng.order.Uint32(body[8:12]))
			capLen := int(ng.order.Uint32(body[12:16]))
			origLen := int(ng.order.Uint32(body[16:20]))
			if 20+capLen > len(body) {
				return PacketInfo{}, 0, nil, fmt.Errorf("pcapng: EPB capture length %d overflows block", capLen)
			}
			sec := ts / iface.tsDivisor
			frac := ts % iface.tsDivisor
			nanos := frac * uint64(time.Second) / iface.tsDivisor
			info := PacketInfo{
				Timestamp:      time.Unix(int64(sec), int64(nanos)),
				CaptureLength:  capLen,
				OriginalLength: origLen,
			}
			data := append([]byte(nil), body[20:20+capLen]...)
			return info, iface.linkType, data, nil
		case blockSimplePacket:
			if len(ng.interfaces) == 0 {
				return PacketInfo{}, 0, nil, fmt.Errorf("pcapng: SPB before any interface")
			}
			if len(body) < 4 {
				return PacketInfo{}, 0, nil, fmt.Errorf("pcapng: short SPB")
			}
			origLen := int(ng.order.Uint32(body[0:4]))
			capLen := origLen
			if capLen > len(body)-4 {
				capLen = len(body) - 4
			}
			info := PacketInfo{CaptureLength: capLen, OriginalLength: origLen}
			data := append([]byte(nil), body[4:4+capLen]...)
			return info, ng.interfaces[0].linkType, data, nil
		default:
			// Name resolution, statistics, custom blocks: skip.
		}
	}
}

// NewNgTraceReader adapts a pcapng stream into a trace.Reader of DNS
// entries, mirroring NewTraceReader for classic pcap.
func NewNgTraceReader(r io.Reader) (*NgTraceReader, error) {
	ng, err := NewNgReader(r)
	if err != nil {
		return nil, err
	}
	return &NgTraceReader{ng: ng, x: NewExtractor()}, nil
}

// NgTraceReader extracts DNS entries from a pcapng stream.
type NgTraceReader struct {
	ng      *NgReader
	x       *Extractor
	pending []trace.Entry
}

// Next implements trace.Reader.
func (tr *NgTraceReader) Next() (trace.Entry, error) {
	for {
		if len(tr.pending) > 0 {
			e := tr.pending[0]
			tr.pending = tr.pending[1:]
			return e, nil
		}
		info, linkType, data, err := tr.ng.Next()
		if err != nil {
			return trace.Entry{}, err
		}
		entries, err := tr.x.Packet(linkType, info, data)
		if err != nil {
			continue
		}
		tr.pending = entries
	}
}
