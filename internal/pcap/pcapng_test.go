package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"ldplayer/internal/trace"
)

// writeNgBlock emits one pcapng block with padding and trailing length.
func writeNgBlock(buf *bytes.Buffer, typ uint32, body []byte) {
	pad := (4 - len(body)%4) % 4
	total := uint32(8 + len(body) + pad + 4)
	binary.Write(buf, binary.LittleEndian, typ)
	binary.Write(buf, binary.LittleEndian, total)
	buf.Write(body)
	buf.Write(make([]byte, pad))
	binary.Write(buf, binary.LittleEndian, total)
}

// buildNgCapture assembles SHB + IDB + one EPB per packet.
func buildNgCapture(t *testing.T, linkType uint32, packets [][]byte, ts []time.Time) []byte {
	t.Helper()
	var buf bytes.Buffer
	// Section header: magic, version 1.0, section length -1.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	binary.LittleEndian.PutUint64(shb[8:16], 0xFFFFFFFFFFFFFFFF)
	writeNgBlock(&buf, blockSectionHeader, shb)
	// Interface description: linktype, reserved, snaplen (no options ->
	// default microsecond resolution).
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:2], uint16(linkType))
	binary.LittleEndian.PutUint32(idb[4:8], 262144)
	writeNgBlock(&buf, blockInterfaceDesc, idb)
	for i, pkt := range packets {
		micros := uint64(ts[i].UnixMicro())
		epb := make([]byte, 20+len(pkt))
		binary.LittleEndian.PutUint32(epb[0:4], 0) // interface 0
		binary.LittleEndian.PutUint32(epb[4:8], uint32(micros>>32))
		binary.LittleEndian.PutUint32(epb[8:12], uint32(micros))
		binary.LittleEndian.PutUint32(epb[12:16], uint32(len(pkt)))
		binary.LittleEndian.PutUint32(epb[16:20], uint32(len(pkt)))
		copy(epb[20:], pkt)
		writeNgBlock(&buf, blockEnhancedPacket, epb)
	}
	return buf.Bytes()
}

func TestPcapngExtractsDNS(t *testing.T) {
	// Reuse the classic-pcap fixture entries, re-encapsulated in pcapng.
	entries := sampleTrace(t)[:1]
	var classic bytes.Buffer
	if err := WriteDNSPcap(&classic, entries); err != nil {
		t.Fatal(err)
	}
	pr, err := NewReader(&classic)
	if err != nil {
		t.Fatal(err)
	}
	var pkts [][]byte
	var tss []time.Time
	for {
		info, data, err := pr.Next()
		if err != nil {
			break
		}
		pkts = append(pkts, data)
		tss = append(tss, info.Timestamp)
	}
	ng := buildNgCapture(t, LinkTypeEthernet, pkts, tss)

	tr, err := NewNgTraceReader(bytes.NewReader(ng))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("entries = %d", len(got))
	}
	if !bytes.Equal(got[0].Message, entries[0].Message) {
		t.Error("message bytes differ")
	}
	if d := got[0].Time.Sub(entries[0].Time); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("timestamp off by %v", d)
	}
}

func TestPcapngSkipsUnknownBlocks(t *testing.T) {
	entries := sampleTrace(t)[:1]
	var classic bytes.Buffer
	WriteDNSPcap(&classic, entries)
	pr, _ := NewReader(&classic)
	info, data, _ := pr.Next()

	var buf bytes.Buffer
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint64(shb[8:16], 0xFFFFFFFFFFFFFFFF)
	writeNgBlock(&buf, blockSectionHeader, shb)
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:2], uint16(LinkTypeEthernet))
	writeNgBlock(&buf, blockInterfaceDesc, idb)
	// A name-resolution block (type 4) that must be skipped.
	writeNgBlock(&buf, 4, []byte{1, 2, 3, 4})
	epb := make([]byte, 20+len(data))
	binary.LittleEndian.PutUint32(epb[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(epb[16:20], uint32(len(data)))
	micros := uint64(info.Timestamp.UnixMicro())
	binary.LittleEndian.PutUint32(epb[4:8], uint32(micros>>32))
	binary.LittleEndian.PutUint32(epb[8:12], uint32(micros))
	copy(epb[20:], data)
	writeNgBlock(&buf, blockEnhancedPacket, epb)

	tr, err := NewNgTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("entries = %d", len(got))
	}
}

func TestPcapngRejectsGarbage(t *testing.T) {
	if _, err := NewNgReader(bytes.NewReader([]byte("definitely not pcapng"))); err == nil {
		t.Error("garbage accepted")
	}
	// Valid SHB then a block with mismatched trailing length.
	var buf bytes.Buffer
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	writeNgBlock(&buf, blockSectionHeader, shb)
	binary.Write(&buf, binary.LittleEndian, uint32(blockEnhancedPacket))
	binary.Write(&buf, binary.LittleEndian, uint32(16))
	buf.Write([]byte{0, 0, 0, 0})
	binary.Write(&buf, binary.LittleEndian, uint32(99)) // wrong trailer
	ng, err := NewNgReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ng.Next(); err == nil || err == io.EOF {
		t.Errorf("mismatched trailer: err = %v", err)
	}
}
