package obs_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldplayer/internal/authserver"
	"ldplayer/internal/obs"
	"ldplayer/internal/replay"
	"ldplayer/internal/traceg"
	"ldplayer/internal/zone"
)

// TestObsSmoke is the `make obs-smoke` end-to-end check: a live
// meta-DNS-server and a fast-mode replay engine share one registry, the
// replay runs, and the /metrics endpoint must expose non-zero series from
// both sides plus lifecycle spans on /trace.
func TestObsSmoke(t *testing.T) {
	const zoneText = `
example.com.	3600	IN	SOA	ns1.example.com. host. 1 7200 3600 1209600 300
example.com.	3600	IN	NS	ns1.example.com.
ns1.example.com.	3600	IN	A	192.0.2.1
*.example.com.	300	IN	A	192.0.2.81
`
	z, err := zone.Parse(strings.NewReader(zoneText), "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	engine := authserver.NewEngine()
	if err := engine.AddView(&authserver.View{Name: "default", Zones: []*zone.Zone{z}}); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(256, 1)
	engine.Instrument(reg, tracer, 4)

	srv := &authserver.Server{Engine: engine, IdleTimeout: 10 * time.Second}
	if err := srv.Start("127.0.0.1:0", "", ""); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	osrv, err := obs.Serve("127.0.0.1:0", reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer osrv.Close()

	en, err := replay.New(replay.Config{
		UDPTarget: srv.UDPAddr().String(),
		FastMode:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Instrument(reg)

	gen, err := traceg.Synthetic(traceg.SyntheticConfig{
		InterArrival: time.Millisecond, Duration: 200 * time.Millisecond, Clients: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := en.Replay(context.Background(), gen)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent == 0 || st.Responses == 0 {
		t.Fatalf("replay moved no traffic: %+v", st)
	}

	get := func(path string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + osrv.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	body := get("/metrics")
	for _, series := range []string{
		`metadns_queries_total{transport="udp"}`,
		`metadns_responses_total{rcode="NOERROR"}`,
		`metadns_view_queries_total{view="default"}`,
		"metadns_respond_latency_ns_count",
		"ldplayer_sent_total",
		"ldplayer_responses_total",
		"ldplayer_rtt_ns_count",
	} {
		idx := strings.Index(body, series)
		if idx < 0 {
			t.Errorf("/metrics missing series %s", series)
			continue
		}
		line := body[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("series never incremented: %s", line)
		}
	}

	if body := get("/trace?n=5"); !strings.Contains(body, `"kind": "query"`) {
		t.Errorf("/trace has no query spans:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"metadns_cache_hits_total"`) {
		t.Errorf("/metrics.json missing cache counters")
	}
}
