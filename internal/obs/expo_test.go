package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func testRegistry() (*Registry, *Tracer) {
	reg := NewRegistry()
	reg.Counter("q_total", `transport="udp"`, "queries by transport").Add(12)
	reg.Counter("q_total", `transport="tcp"`, "").Add(3)
	reg.Gauge("inflight", "", "outstanding queries").Set(5)
	h := reg.Histogram("lat_ns", "", "latency")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	tr := NewTracer(8, 1)
	sp := tr.Begin("query")
	sp.Transport = "udp"
	sp.SetNameBytes([]byte("example.com."))
	sp.Mark("lookup")
	tr.Finish(sp)
	return reg, tr
}

func TestWritePrometheus(t *testing.T) {
	reg, _ := testRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE q_total counter",
		`q_total{transport="udp"} 12`,
		`q_total{transport="tcp"} 3`,
		"# TYPE inflight gauge",
		"inflight 5",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="+Inf"} 100`,
		"lat_ns_count 100",
		"lat_ns_sum 5050000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// TYPE header must appear once per name, before its series.
	if strings.Count(out, "# TYPE q_total counter") != 1 {
		t.Error("duplicate TYPE header")
	}
	// Cumulative bucket counts must be non-decreasing in le order.
	var prevCum int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_ns_bucket") || strings.Contains(line, "+Inf") {
			continue
		}
		var cum int64
		if _, err := fmtSscan(line, &cum); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if cum < prevCum {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prevCum)
		}
		prevCum = cum
	}
}

// fmtSscan pulls the trailing integer off a prometheus sample line.
func fmtSscan(line string, v *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseInt(line[i+1:])
	return 1, err
}

func parseInt(s string) (int64, error) {
	var n int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, io.ErrUnexpectedEOF
		}
		n = n*10 + int64(c-'0')
	}
	return n, nil
}

func TestWriteJSON(t *testing.T) {
	reg, _ := testRegistry()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, reg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Kind  string  `json:"kind"`
			Value int64   `json:"value"`
			Count int64   `json:"count"`
			P50   float64 `json:"p50"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	for i, m := range doc.Metrics {
		byName[m.Name+"|"+m.Kind] = i
	}
	if i, ok := byName["lat_ns|histogram"]; !ok {
		t.Fatal("histogram missing from JSON")
	} else if doc.Metrics[i].Count != 100 || doc.Metrics[i].P50 <= 0 {
		t.Fatalf("histogram JSON = %+v", doc.Metrics[i])
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg, tr := testRegistry()
	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) (string, string) {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, `q_total{transport="udp"} 12`) {
		t.Errorf("/metrics missing series:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	body, _ = get("/metrics.json")
	if !strings.Contains(body, `"lat_ns"`) {
		t.Errorf("/metrics.json missing histogram:\n%s", body)
	}

	body, _ = get("/trace?n=10")
	var traceDoc struct {
		Spans []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &traceDoc); err != nil {
		t.Fatalf("/trace JSON: %v", err)
	}
	if len(traceDoc.Spans) != 1 || traceDoc.Spans[0].Name != "example.com." {
		t.Errorf("/trace spans = %+v", traceDoc.Spans)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}

func TestSampler(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "", "")
	h := reg.Histogram("h_ns", "", "")
	s := NewSampler(reg, time.Hour) // manual ticks only
	defer s.Stop()

	t0 := time.Unix(100, 0)
	c.Add(5)
	h.Record(1)
	s.SampleOnce(t0)
	c.Add(5)
	h.Record(2)
	s.SampleOnce(t0.Add(time.Second))

	ts := s.Series("x_total")
	if ts == nil {
		t.Fatal("no series for x_total")
	}
	if vals := ts.Values(); len(vals) != 2 || vals[0] != 5 || vals[1] != 10 {
		t.Fatalf("x_total samples = %v", vals)
	}
	hs := s.Series("h_ns")
	if hs == nil {
		t.Fatal("no series for h_ns")
	}
	if vals := hs.Values(); len(vals) != 2 || vals[1] != 2 {
		t.Fatalf("h_ns samples = %v", vals)
	}
	if got := len(s.AllSeries()); got != 2 {
		t.Fatalf("AllSeries = %d series", got)
	}
}

func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", "")
	s := NewSampler(reg, 5*time.Millisecond)
	s.Start()
	time.Sleep(30 * time.Millisecond)
	s.Stop()
	ts := s.Series("x_total")
	if ts == nil || len(ts.Values()) == 0 {
		t.Fatal("sampler loop collected nothing")
	}
}
