// Package obs is the live observability layer: lock-free runtime metrics
// (atomic counters, gauges, and fixed-bucket log-scale latency histograms
// with O(1) zero-allocation record paths), a registry that names them and
// snapshots them on demand, a sampled query-lifecycle tracer, and HTTP
// exposition in Prometheus text and JSON formats.
//
// The paper's evaluation (§4, Figures 8–14) measures latency, rate, and
// resource use while an experiment runs; this package is how a replay, the
// meta-DNS-server, and the proxies are watched in flight without giving
// back the hot-path allocation guarantees. Everything on a record path is
// a handful of atomic adds: no locks, no maps, no allocation. Locks exist
// only on cold paths (registration, scraping, trace-ring publication).
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; Inc/Add are lock-free and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket geometry: the first 2^(histSubBits+1) buckets hold one
// integer value each; above that, each power-of-two range is split into
// 2^histSubBits log-spaced sub-buckets, bounding the relative bucket width
// at 1/2^histSubBits (12.5%) of the value. Bucket selection is two shifts
// and a bits.Len64 — O(1), branch-light, no floating point.
const (
	histSubBits    = 3
	histSub        = 1 << histSubBits // sub-buckets per power of two
	histNumBuckets = 2*histSub + (63-histSubBits)*histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	k := bits.Len64(u) // u in [2^(k-1), 2^k), k >= histSubBits+2
	g := k - histSubBits - 2
	return 2*histSub + g*histSub + int(u>>(uint(k-histSubBits-1))) - histSub
}

// BucketBoundsFor returns the [lo, hi) value range of the bucket a record
// of v lands in. hi-lo is the bucket width the quantile estimates are
// accurate to.
func BucketBoundsFor(v int64) (lo, hi int64) {
	return bucketBounds(bucketIndex(v))
}

// bucketBounds returns bucket i's [lo, hi) range.
func bucketBounds(i int) (lo, hi int64) {
	if i < 2*histSub {
		return int64(i), int64(i) + 1
	}
	g := (i - 2*histSub) / histSub
	r := (i - 2*histSub) % histSub
	lo = int64(histSub+r) << uint(g+1)
	hi = int64(histSub+r+1) << uint(g+1)
	return lo, hi
}

// Histogram is a fixed-bucket log-scale histogram of non-negative int64
// samples (latencies in nanoseconds, sizes in bytes, depths in hops).
// Record is O(1), lock-free, and allocation-free; quantile estimates are
// within one bucket width (≤12.5% of the value) of the exact sample
// quantile. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histNumBuckets]atomic.Int64
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the exact mean of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0..1) of the recorded samples: it
// locates the bucket holding the rank q*(n-1) and interpolates linearly
// within it. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	buckets [histNumBuckets]int64
}

// Snapshot copies the histogram counters. The per-bucket reads are not
// mutually atomic, so a snapshot taken mid-record may be off by the
// records in flight — fine for monitoring, which is its only use.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.buckets[i] = c
		total += c
	}
	// Keep Count consistent with the bucket sum so quantile ranks line up.
	s.Count = total
	return s
}

// Quantile estimates the q-quantile of the snapshot (see Histogram.Quantile).
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1) // same convention as metrics.Quantile
	var seen int64
	for i := range s.buckets {
		c := s.buckets[i]
		if c == 0 {
			continue
		}
		// Bucket i holds sample indices [seen, seen+c).
		if rank < float64(seen+c) || seen+c == s.Count {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(seen)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return float64(lo) + frac*float64(hi-lo)
		}
		seen += c
	}
	return math.NaN()
}

// Buckets returns the non-empty buckets as (upper-bound, cumulative-count)
// pairs, ready for Prometheus histogram exposition.
func (s *HistogramSnapshot) Buckets() []BucketCount {
	var out []BucketCount
	var cum int64
	for i := range s.buckets {
		if s.buckets[i] == 0 {
			continue
		}
		cum += s.buckets[i]
		_, hi := bucketBounds(i)
		out = append(out, BucketCount{UpperBound: hi, CumulativeCount: cum})
	}
	return out
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperBound      int64
	CumulativeCount int64
}

// Kind discriminates metric types in snapshots and exposition.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metricEntry is one registered metric: exactly one of counter, gauge,
// hist, or fn is set (fn covers CounterFunc/GaugeFunc).
type metricEntry struct {
	name   string
	labels string // preformatted, e.g. `transport="udp"`, no braces
	help   string
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      atomic.Pointer[func() int64]
}

// Registry names metrics and snapshots them. Registration is idempotent:
// asking for an existing (name, labels) pair returns the same Counter /
// Gauge / Histogram, and re-registering a Func metric swaps in the new
// function (so a restarted component re-points the metric at its fresh
// state). Registration takes a lock; record paths never touch the
// registry.
type Registry struct {
	mu      sync.Mutex
	entries []*metricEntry
	index   map[string]*metricEntry
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metricEntry)}
}

// lookupOrAdd returns the existing entry for (name, labels) or registers a
// new one built by mk.
func (r *Registry) lookupOrAdd(name, labels, help string, kind Kind, mk func(*metricEntry)) *metricEntry {
	key := name + "\x00" + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		return e
	}
	e := &metricEntry{name: name, labels: labels, help: help, kind: kind}
	mk(e)
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// Counter returns the counter registered under (name, labels), creating
// it if needed. labels is a preformatted Prometheus label list without
// braces (e.g. `transport="udp"`) or "".
func (r *Registry) Counter(name, labels, help string) *Counter {
	e := r.lookupOrAdd(name, labels, help, KindCounter, func(e *metricEntry) {
		e.counter = &Counter{}
	})
	return e.counter
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	e := r.lookupOrAdd(name, labels, help, KindGauge, func(e *metricEntry) {
		e.gauge = &Gauge{}
	})
	return e.gauge
}

// Histogram returns the histogram registered under (name, labels).
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	e := r.lookupOrAdd(name, labels, help, KindHistogram, func(e *metricEntry) {
		e.hist = &Histogram{}
	})
	return e.hist
}

// CounterFunc registers (or re-points) a counter whose value is read from
// fn at snapshot time — the bridge to components that already keep their
// own atomic counters, costing the hot path nothing.
func (r *Registry) CounterFunc(name, labels, help string, fn func() int64) {
	e := r.lookupOrAdd(name, labels, help, KindCounter, func(*metricEntry) {})
	e.fn.Store(&fn)
}

// GaugeFunc registers (or re-points) a gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() int64) {
	e := r.lookupOrAdd(name, labels, help, KindGauge, func(*metricEntry) {})
	e.fn.Store(&fn)
}

// Sample is one metric's state in a snapshot.
type Sample struct {
	Name   string
	Labels string
	Help   string
	Kind   Kind
	// Value holds counter/gauge values; Hist is set for histograms.
	Value int64
	Hist  *HistogramSnapshot
}

// Snapshot reads every registered metric. Samples appear in registration
// order (stable across scrapes).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*metricEntry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels, Help: e.help, Kind: e.kind}
		switch {
		case e.counter != nil:
			s.Value = e.counter.Value()
		case e.gauge != nil:
			s.Value = e.gauge.Value()
		case e.hist != nil:
			s.Hist = e.hist.Snapshot()
		default:
			if fp := e.fn.Load(); fp != nil {
				s.Value = (*fp)()
			}
		}
		out = append(out, s)
	}
	return out
}

// Find returns the snapshot sample for (name, labels), or false. Test and
// assertion helper.
func (r *Registry) Find(name, labels string) (Sample, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name && s.Labels == labels {
			return s, true
		}
	}
	return Sample{}, false
}

// SeriesKey renders the canonical series identity, name{labels}.
func (s Sample) SeriesKey() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// SortedSeriesKeys lists every registered series key, sorted — a cheap way
// for smoke tests to assert required series are present.
func (r *Registry) SortedSeriesKeys() []string {
	snap := r.Snapshot()
	keys := make([]string, len(snap))
	for i, s := range snap {
		keys[i] = s.SeriesKey()
	}
	sort.Strings(keys)
	return keys
}

// LabelValue formats one key="value" label pair, escaping the value.
func LabelValue(key, value string) string {
	return fmt.Sprintf("%s=%q", key, value)
}
