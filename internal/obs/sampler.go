package obs

import (
	"sort"
	"sync"
	"time"

	"ldplayer/internal/metrics"
)

// Sampler periodically converts registry snapshots into internal/metrics
// time series — the bridge from the live endpoint to the paper's offline
// analysis (Figures 13 and 14 plot exactly such resource-over-time
// series). Counters and gauges become one series each, keyed by
// name{labels}, carrying the raw sampled value; histograms contribute
// their cumulative count (rates and deltas are computed by the analysis
// side, e.g. metrics.RelativeDifferences or TimeSeries.SteadyState).
type Sampler struct {
	reg      *Registry
	interval time.Duration

	mu     sync.Mutex
	series map[string]*metrics.TimeSeries

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool
}

// NewSampler creates a sampler over reg with the given interval (default
// 1s). Start begins sampling; SampleOnce is available for manual ticks.
func NewSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		series:   make(map[string]*metrics.TimeSeries),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling loop.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-t.C:
				s.SampleOnce(now)
			}
		}
	}()
}

// Stop halts the loop (idempotent) and waits for it to exit. Safe to call
// even if Start never ran.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// SampleOnce appends one sample per metric at time now.
func (s *Sampler) SampleOnce(now time.Time) {
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sm := range snap {
		key := sm.SeriesKey()
		ts := s.series[key]
		if ts == nil {
			ts = metrics.NewTimeSeries(key)
			s.series[key] = ts
		}
		v := float64(sm.Value)
		if sm.Hist != nil {
			v = float64(sm.Hist.Count)
		}
		ts.Add(now, v)
	}
}

// Series returns the time series for a series key (name{labels}), or nil.
func (s *Sampler) Series(key string) *metrics.TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.series[key]
}

// AllSeries returns every collected series, sorted by key.
func (s *Sampler) AllSeries() []*metrics.TimeSeries {
	s.mu.Lock()
	keys := make([]string, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metrics.TimeSeries, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.series[k])
	}
	s.mu.Unlock()
	return out
}
