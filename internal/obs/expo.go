package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative _bucket
// series for their non-empty buckets plus _sum and _count.
func WritePrometheus(w io.Writer, reg *Registry) error {
	typed := make(map[string]bool)
	for _, s := range reg.Snapshot() {
		if !typed[s.Name] {
			typed[s.Name] = true
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if s.Hist == nil {
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(s.Name, s.Labels, ""), s.Value); err != nil {
				return err
			}
			continue
		}
		for _, b := range s.Hist.Buckets() {
			le := LabelValue("le", strconv.FormatInt(b.UpperBound, 10))
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(s.Name+"_bucket", s.Labels, le), b.CumulativeCount); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(s.Name+"_bucket", s.Labels, `le="+Inf"`), s.Hist.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(s.Name+"_sum", s.Labels, ""), s.Hist.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(s.Name+"_count", s.Labels, ""), s.Hist.Count); err != nil {
			return err
		}
	}
	return nil
}

// promSeries renders name{labels,extra} with empty parts omitted.
func promSeries(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	}
	return name + "{" + labels + "," + extra + "}"
}

// jsonMetric is one metric in the /metrics.json document.
type jsonMetric struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  int64   `json:"value,omitempty"`
	Count  int64   `json:"count,omitempty"`
	Sum    int64   `json:"sum,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
	P50    float64 `json:"p50,omitempty"`
	P90    float64 `json:"p90,omitempty"`
	P99    float64 `json:"p99,omitempty"`
}

// WriteJSON renders a registry snapshot as a JSON document; histograms
// carry count/sum/mean and interpolated p50/p90/p99.
func WriteJSON(w io.Writer, reg *Registry) error {
	snap := reg.Snapshot()
	out := make([]jsonMetric, 0, len(snap))
	for _, s := range snap {
		m := jsonMetric{Name: s.Name, Labels: s.Labels, Kind: s.Kind.String(), Value: s.Value}
		if s.Hist != nil {
			m.Count = s.Hist.Count
			m.Sum = s.Hist.Sum
			if s.Hist.Count > 0 {
				m.Mean = float64(s.Hist.Sum) / float64(s.Hist.Count)
				m.P50 = s.Hist.Quantile(0.50)
				m.P90 = s.Hist.Quantile(0.90)
				m.P99 = s.Hist.Quantile(0.99)
			}
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonMetric `json:"metrics"`
	}{out})
}

// jsonSpan is one span in the /trace document.
type jsonSpan struct {
	Seq       uint64     `json:"seq"`
	Kind      string     `json:"kind"`
	Start     time.Time  `json:"start"`
	DurNs     int64      `json:"dur_ns"`
	Name      string     `json:"name,omitempty"`
	Transport string     `json:"transport,omitempty"`
	View      string     `json:"view,omitempty"`
	Detail    string     `json:"detail,omitempty"`
	Rcode     int        `json:"rcode"`
	Marks     []jsonMark `json:"marks,omitempty"`
}

// jsonMark is one stage boundary in a span.
type jsonMark struct {
	Label string `json:"label"`
	AtNs  int64  `json:"at_ns"`
}

// WriteTraceJSON renders up to n recent spans, newest first.
func WriteTraceJSON(w io.Writer, tr *Tracer, n int) error {
	spans := tr.Recent(n)
	out := make([]jsonSpan, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		js := jsonSpan{
			Seq: s.Seq, Kind: s.Kind, Start: s.Start, DurNs: s.Dur.Nanoseconds(),
			Name: s.Name(), Transport: s.Transport, View: s.View,
			Detail: s.Detail, Rcode: s.Rcode,
		}
		for _, m := range s.Marks() {
			js.Marks = append(js.Marks, jsonMark{Label: m.Label, AtNs: m.At.Nanoseconds()})
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []jsonSpan `json:"spans"`
	}{out})
}

// Handler builds the observability mux: /metrics (Prometheus text),
// /metrics.json, /trace?n=100 (recent spans, newest first), and the
// net/http/pprof endpoints under /debug/pprof/. tr may be nil, in which
// case /trace serves an empty span list.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTraceJSON(w, tr, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a running observability endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" forms accepted) and serves the observability
// handler until Close. It returns once the listener is bound.
func Serve(addr string, reg *Registry, tr *Tracer) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: Handler(reg, tr)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address.
func (s *HTTPServer) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the endpoint down.
func (s *HTTPServer) Close() error { return s.srv.Close() }
