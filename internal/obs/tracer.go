package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one traced query lifecycle: a start time, a bounded sequence of
// named stage marks (recv → view-select → lookup/cache-hit → pack → send),
// and a few fixed attribute slots. Spans hold no pointers to per-query
// data: the query name is copied into a fixed buffer and mark labels must
// be static strings, so a live span allocates nothing.
type Span struct {
	Seq   uint64
	Kind  string
	Start time.Time
	// Dur is the total span duration, set by Tracer.Finish.
	Dur time.Duration

	// Fixed attribute slots filled by the instrumented component.
	Transport string // static: "udp", "tcp", "tls"
	View      string
	Detail    string // static: e.g. "cache_hit", "lookup"
	Rcode     int

	nameBuf [maxSpanName]byte
	nameLen uint8

	marks  [maxSpanMarks]Mark
	nmarks uint8
}

// Mark is one stage timestamp, as elapsed time since the span start.
type Mark struct {
	Label string
	At    time.Duration
}

const (
	maxSpanName  = 96
	maxSpanMarks = 8
)

// SetNameBytes copies a wire-form or presentation-form name into the
// span's fixed buffer (truncating if oversized) without allocating.
// Nil-safe: unsampled callers pass the nil span straight through.
func (s *Span) SetNameBytes(b []byte) {
	if s == nil {
		return
	}
	n := copy(s.nameBuf[:], b)
	s.nameLen = uint8(n)
}

// Name returns the captured name.
func (s *Span) Name() string { return string(s.nameBuf[:s.nameLen]) }

// Mark records a stage boundary. label must be a static string. Nil-safe.
func (s *Span) Mark(label string) {
	if s == nil || s.nmarks >= maxSpanMarks {
		return
	}
	s.marks[s.nmarks] = Mark{Label: label, At: time.Since(s.Start)}
	s.nmarks++
}

// Marks returns the recorded stage marks.
func (s *Span) Marks() []Mark { return s.marks[:s.nmarks] }

// reset clears a pooled span for reuse.
func (s *Span) reset() {
	*s = Span{}
}

// spanPool recycles spans so steady-state tracing does not allocate.
var spanPool = sync.Pool{New: func() any { return new(Span) }}

// Tracer samples query lifecycles into a bounded ring buffer. Begin
// returns nil for unsampled queries (one atomic add, no other work), so
// tracing can stay enabled at full replay rate; Span methods are nil-safe
// so instrumented code calls them unconditionally. Finished spans are
// copied into the ring under a mutex — a cold path taken once per sampled
// query — and the span struct returns to a pool, so the steady state
// allocates nothing.
type Tracer struct {
	every uint64
	seq   atomic.Uint64

	mu   sync.Mutex
	ring []Span
	pos  uint64 // total finished spans; ring[pos%len] is next slot
}

// NewTracer creates a tracer keeping the last size spans and sampling one
// query in every sampleEvery (1 = trace everything). size defaults to
// 1024, sampleEvery to 1.
func NewTracer(size, sampleEvery int) *Tracer {
	if size <= 0 {
		size = 1024
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{every: uint64(sampleEvery), ring: make([]Span, size)}
}

// SampleEvery returns the sampling period.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Begin starts a span of the given kind, or returns nil when this query is
// not sampled (or the tracer itself is nil). kind must be a static string.
func (t *Tracer) Begin(kind string) *Span {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	if t.every > 1 && n%t.every != 0 {
		return nil
	}
	s := spanPool.Get().(*Span)
	s.reset()
	s.Seq = n
	s.Kind = kind
	s.Start = time.Now()
	return s
}

// Finish stamps the span's duration, publishes a copy into the ring, and
// recycles the span. Nil-safe in both receiver and argument.
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.Dur = time.Since(s.Start)
	t.mu.Lock()
	t.ring[t.pos%uint64(len(t.ring))] = *s
	t.pos++
	t.mu.Unlock()
	spanPool.Put(s)
}

// Recent returns up to n finished spans, newest first.
func (t *Tracer) Recent(n int) []Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	have := t.pos
	if have > uint64(len(t.ring)) {
		have = uint64(len(t.ring))
	}
	if uint64(n) > have {
		n = int(have)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.pos - 1 - uint64(i)) % uint64(len(t.ring))
		out = append(out, t.ring[idx])
	}
	return out
}

// Total returns the number of spans finished so far (not the ring size).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pos
}
