package obs

import (
	"sync"
	"testing"
)

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16, 4)
	sampled := 0
	for i := 0; i < 100; i++ {
		if sp := tr.Begin("q"); sp != nil {
			sampled++
			tr.Finish(sp)
		}
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 with 1-in-4 sampling", sampled)
	}
	if tr.Total() != 25 {
		t.Fatalf("total finished = %d", tr.Total())
	}
}

func TestTracerRingAndRecent(t *testing.T) {
	tr := NewTracer(4, 1)
	for i := 0; i < 10; i++ {
		sp := tr.Begin("q")
		sp.Rcode = i
		tr.Finish(sp)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("ring of 4 returned %d spans", len(recent))
	}
	// Newest first: rcodes 9, 8, 7, 6.
	for i, sp := range recent {
		if sp.Rcode != 9-i {
			t.Fatalf("recent[%d].Rcode = %d, want %d", i, sp.Rcode, 9-i)
		}
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) returned %d", got)
	}
}

func TestSpanFields(t *testing.T) {
	tr := NewTracer(8, 1)
	sp := tr.Begin("query")
	sp.Transport = "udp"
	sp.View = "root"
	sp.Detail = "cache_hit"
	sp.SetNameBytes([]byte("example.com."))
	sp.Mark("view")
	sp.Mark("pack")
	tr.Finish(sp)

	got := tr.Recent(1)[0]
	if got.Name() != "example.com." || got.Transport != "udp" || got.View != "root" {
		t.Fatalf("span = %+v", got)
	}
	marks := got.Marks()
	if len(marks) != 2 || marks[0].Label != "view" || marks[1].Label != "pack" {
		t.Fatalf("marks = %+v", marks)
	}
	if marks[1].At < marks[0].At {
		t.Fatal("marks not monotone")
	}
	if got.Dur < marks[1].At {
		t.Fatal("span duration shorter than last mark")
	}
}

func TestSpanNameTruncates(t *testing.T) {
	tr := NewTracer(1, 1)
	sp := tr.Begin("q")
	long := make([]byte, 3*maxSpanName)
	for i := range long {
		long[i] = 'a'
	}
	sp.SetNameBytes(long)
	tr.Finish(sp)
	if n := tr.Recent(1)[0].Name(); len(n) != maxSpanName {
		t.Fatalf("name length = %d, want %d", len(n), maxSpanName)
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("q")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.Mark("x")
	sp.SetNameBytes([]byte("y"))
	tr.Finish(sp)
	if tr.Recent(5) != nil || tr.Total() != 0 || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer accessors must be inert")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp := tr.Begin("q")
				sp.Mark("a")
				tr.Finish(sp)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Recent(64)
		}
	}()
	wg.Wait()
	<-done
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
}
