package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ldplayer/internal/metrics"
)

// TestHistogramQuantileVsExact is the histogram-correctness property test:
// over random lognormal samples (the shape of real DNS latency
// distributions), every quantile estimate must land within one bucket
// width of the exact metrics.Quantile answer. Seeds are fixed, so the
// check is deterministic.
func TestHistogramQuantileVsExact(t *testing.T) {
	quantiles := []float64{0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}
	cases := []struct {
		seed  int64
		n     int
		mu    float64 // log-mean of the lognormal
		sigma float64 // log-stddev
		scale float64 // multiplier into "nanoseconds"
	}{
		{seed: 1, n: 5000, mu: 0, sigma: 0.5, scale: 1e6},   // ~1ms latencies
		{seed: 2, n: 5000, mu: 0, sigma: 1.0, scale: 1e6},   // heavier tail
		{seed: 3, n: 2000, mu: 1, sigma: 0.25, scale: 1e3},  // tight µs-scale
		{seed: 4, n: 10000, mu: 0, sigma: 2.0, scale: 1e4},  // very heavy tail
		{seed: 5, n: 777, mu: 2, sigma: 0.75, scale: 1e8},   // 100ms–seconds
		{seed: 6, n: 3000, mu: 0, sigma: 0.1, scale: 1e2},   // near-constant
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(tc.seed))
		var h Histogram
		exact := make([]float64, 0, tc.n)
		for i := 0; i < tc.n; i++ {
			v := math.Exp(tc.mu+tc.sigma*rng.NormFloat64()) * tc.scale
			iv := int64(v)
			h.Record(iv)
			// Compare against what the histogram actually ingested (the
			// integer-truncated sample), isolating bucketing error from
			// float→int conversion.
			exact = append(exact, float64(iv))
		}
		sort.Float64s(exact)
		snap := h.Snapshot()
		for _, q := range quantiles {
			want := metrics.Quantile(exact, q)
			got := snap.Quantile(q)
			lo, hi := BucketBoundsFor(int64(want))
			width := float64(hi - lo)
			if diff := math.Abs(got - want); diff > width {
				t.Errorf("seed=%d q=%v: histogram %.0f vs exact %.0f, |diff|=%.0f exceeds bucket width %.0f",
					tc.seed, q, got, want, diff, width)
			}
		}
	}
}

// TestHistogramQuantileSmallN covers degenerate sample counts where rank
// arithmetic is most fragile.
func TestHistogramQuantileSmallN(t *testing.T) {
	var h Histogram
	h.Record(7)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		lo, hi := BucketBoundsFor(7)
		if got < float64(lo) || got > float64(hi) {
			t.Fatalf("n=1 quantile(%v) = %v outside [%d,%d]", q, got, lo, hi)
		}
	}
	h.Record(7_000_000)
	if p0, p1 := h.Quantile(0), h.Quantile(1); p0 >= p1 {
		t.Fatalf("n=2 p0=%v should be < p100=%v", p0, p1)
	}
}
