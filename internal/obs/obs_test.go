package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 63, 64, 100, 1000,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, idx, prev)
		}
		if idx >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		lo, hi := bucketBounds(idx)
		if v < lo || (hi > lo && v >= hi) {
			t.Fatalf("value %d outside its bucket [%d, %d)", v, lo, hi)
		}
		prev = idx
	}
}

func TestBucketRelativeWidth(t *testing.T) {
	// Above the exact range, bucket width must stay ≤ 12.5% of the lower
	// bound — the accuracy contract the quantile estimates rely on.
	for _, v := range []int64{16, 100, 1024, 999_999, 1 << 30, 1 << 50} {
		lo, hi := BucketBoundsFor(v)
		if w := hi - lo; float64(w) > float64(lo)/float64(histSub)+1 {
			t.Fatalf("bucket [%d,%d) width %d exceeds %d%% of lower bound", lo, hi, w, 100/histSub)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	p50 := h.Quantile(0.5)
	lo, hi := BucketBoundsFor(50)
	if p50 < float64(lo)-float64(hi-lo) || p50 > float64(hi)+float64(hi-lo) {
		t.Fatalf("p50 = %v, want near 50 (bucket [%d,%d))", p50, lo, hi)
	}
	if !math.IsNaN((&Histogram{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%d after negative record", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("quantile = %v, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Record(seed*1000 + i%997)
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	snap := h.Snapshot()
	if snap.Count != goroutines*per {
		t.Fatalf("snapshot count = %d", snap.Count)
	}
	bs := snap.Buckets()
	if len(bs) == 0 || bs[len(bs)-1].CumulativeCount != goroutines*per {
		t.Fatalf("cumulative bucket count mismatch: %+v", bs)
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", `k="a"`, "help a")
	c2 := reg.Counter("x_total", `k="a"`, "ignored on re-register")
	if c1 != c2 {
		t.Fatal("same (name, labels) must return the same counter")
	}
	cB := reg.Counter("x_total", `k="b"`, "")
	if cB == c1 {
		t.Fatal("different labels must return a different counter")
	}
	c1.Add(5)
	cB.Add(7)
	reg.Gauge("g", "", "a gauge").Set(-3)
	reg.Histogram("h_ns", "", "a histogram").Record(100)
	val := int64(11)
	reg.GaugeFunc("fn_gauge", "", "func-backed", func() int64 { return val })

	s, ok := reg.Find("x_total", `k="a"`)
	if !ok || s.Value != 5 || s.Kind != KindCounter {
		t.Fatalf("x_total{k=a} = %+v ok=%v", s, ok)
	}
	s, _ = reg.Find("fn_gauge", "")
	if s.Value != 11 {
		t.Fatalf("fn_gauge = %d", s.Value)
	}
	// Re-pointing a func metric (component restart) swaps the source.
	val2 := int64(99)
	reg.GaugeFunc("fn_gauge", "", "func-backed", func() int64 { return val2 })
	s, _ = reg.Find("fn_gauge", "")
	if s.Value != 99 {
		t.Fatalf("fn_gauge after re-register = %d", s.Value)
	}
	s, _ = reg.Find("h_ns", "")
	if s.Hist == nil || s.Hist.Count != 1 {
		t.Fatalf("h_ns snapshot = %+v", s.Hist)
	}

	keys := reg.SortedSeriesKeys()
	want := `x_total{k="a"}`
	found := false
	for _, k := range keys {
		if k == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("series keys %v missing %s", keys, want)
	}
}

// TestRecordPathAllocs pins the metric record paths at zero allocations —
// the contract that lets the authserver hot path stay instrumented.
func TestRecordPathAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", "")
	g := reg.Gauge("g", "", "")
	h := reg.Histogram("h_ns", "", "")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-1)
		h.Record(12345)
	}); allocs != 0 {
		t.Errorf("record path allocs/op = %v, want 0", allocs)
	}
}

// TestTracerUnsampledAllocs pins the unsampled Begin path (the common
// case at full replay rate) at zero allocations.
func TestTracerUnsampledAllocs(t *testing.T) {
	tr := NewTracer(64, 1<<30) // effectively never samples
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("query")
		sp.Mark("lookup") // nil-safe no-op
		tr.Finish(sp)
	}); allocs != 0 {
		t.Errorf("unsampled trace path allocs/op = %v, want 0", allocs)
	}
}

// TestTracerSampledSteadyStateAllocs verifies the sampled path reuses
// pooled spans rather than allocating per span.
func TestTracerSampledSteadyStateAllocs(t *testing.T) {
	tr := NewTracer(64, 1)
	name := []byte("www.example.com.")
	// Warm the pool.
	for i := 0; i < 100; i++ {
		sp := tr.Begin("query")
		sp.SetNameBytes(name)
		sp.Mark("lookup")
		tr.Finish(sp)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("query")
		sp.SetNameBytes(name)
		sp.Mark("lookup")
		sp.Mark("pack")
		tr.Finish(sp)
	})
	// sync.Pool may rarely miss under GC pressure; the steady state must
	// still be far below one allocation per span.
	if allocs > 0.1 {
		t.Errorf("sampled trace path allocs/op = %v, want ~0", allocs)
	}
}
