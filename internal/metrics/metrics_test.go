package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnownValues(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(vals)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 5.5 {
		t.Errorf("median = %v, want 5.5", s.P50)
	}
	if s.Mean != 5.5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2.872) > 0.01 {
		t.Errorf("std = %v", s.Std)
	}
	if s.P25 != 3.25 || s.P75 != 7.75 {
		t.Errorf("quartiles = %v %v", s.P25, s.P75)
	}
}

// TestSummarizeLargeOffset is the catastrophic-cancellation regression:
// with values offset by 1e12 (timestamps), the naive E[X²]−E[X]² variance
// loses every significant digit of the spread and returns 0 (or garbage),
// while Welford's update keeps the exact answer. {d, d+1, d+2} has
// population variance 2/3 regardless of d.
func TestSummarizeLargeOffset(t *testing.T) {
	const d = 1e12
	wantStd := math.Sqrt(2.0 / 3.0)
	s := Summarize([]float64{d + 1, d + 2, d + 3})
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v (offset cancellation)", s.Std, wantStd)
	}
	if s.Mean != d+2 {
		t.Errorf("mean = %v, want %v", s.Mean, d+2)
	}

	// On a random offset dataset, the result must match a ground truth
	// computed on the identical samples rebased to remove the offset
	// (rebasing is exact: the values are within a factor of two of d).
	rng := rand.New(rand.NewSource(7))
	shifted := make([]float64, 1000)
	rebased := make([]float64, 1000)
	for i := range shifted {
		shifted[i] = rng.NormFloat64() + d
		rebased[i] = shifted[i] - d
	}
	var sum float64
	for _, v := range rebased {
		sum += v
	}
	mean := sum / float64(len(rebased))
	var m2 float64
	for _, v := range rebased {
		m2 += (v - mean) * (v - mean)
	}
	want := math.Sqrt(m2 / float64(len(rebased)))
	if got := Summarize(shifted).Std; math.Abs(got-want) > 1e-6*want {
		t.Errorf("offset std = %v, want %v", got, want)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 3 {
		t.Error("quantile edges wrong")
	}
	if Quantile(sorted, 0.5) != 2 {
		t.Error("median wrong")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Error("CDF points not monotone")
		}
	}
}

func TestRateCounter(t *testing.T) {
	r := NewRateCounter(time.Second)
	base := time.Unix(100, 0)
	for i := 0; i < 10; i++ {
		r.Add(base.Add(time.Duration(i) * 200 * time.Millisecond)) // 2s span
	}
	rates := r.Rates()
	if len(rates) != 2 {
		t.Fatalf("rates = %v", rates)
	}
	if rates[0] != 5 || rates[1] != 5 {
		t.Errorf("rates = %v", rates)
	}
}

func TestRateCounterZeroFill(t *testing.T) {
	r := NewRateCounter(time.Second)
	base := time.Unix(100, 0)
	r.Add(base)
	r.Add(base.Add(3 * time.Second))
	rates := r.Rates()
	if len(rates) != 4 || rates[1] != 0 || rates[2] != 0 {
		t.Errorf("rates = %v", rates)
	}
}

func TestRelativeDifferences(t *testing.T) {
	orig := []float64{100, 200, 0, 400}
	repl := []float64{101, 198, 5, 400}
	d := RelativeDifferences(orig, repl)
	if len(d) != 3 { // zero-original window skipped
		t.Fatalf("diffs = %v", d)
	}
	if math.Abs(d[0]-0.01) > 1e-9 || math.Abs(d[1]+0.01) > 1e-9 || d[2] != 0 {
		t.Errorf("diffs = %v", d)
	}
}

func TestLatencyRecorder(t *testing.T) {
	l := NewLatencyRecorder()
	base := time.Unix(0, 0)
	l.Send("q1", base)
	l.Send("q2", base)
	l.Recv("q1", base.Add(30*time.Millisecond))
	l.Recv("unknown", base.Add(time.Millisecond))
	lat := l.Latencies()
	if len(lat) != 1 || math.Abs(lat[0]-0.030) > 1e-9 {
		t.Errorf("latencies = %v", lat)
	}
	if l.Unmatched != 1 {
		t.Errorf("unmatched = %d", l.Unmatched)
	}
	if l.Outstanding() != 1 {
		t.Errorf("outstanding = %d", l.Outstanding())
	}
}

func TestTimeSeriesSteadyState(t *testing.T) {
	ts := NewTimeSeries("mem")
	base := time.Unix(0, 0)
	// Ramp for 5 samples then steady at 100.
	for i := 0; i < 5; i++ {
		ts.Add(base.Add(time.Duration(i)*time.Second), float64(i*20))
	}
	for i := 5; i < 10; i++ {
		ts.Add(base.Add(time.Duration(i)*time.Second), 100)
	}
	s := ts.SteadyState(5 * time.Second)
	if s.Min != 100 || s.Max != 100 {
		t.Errorf("steady state = %+v", s)
	}
	if got := ts.SteadyState(0); got.N != 10 {
		t.Errorf("no-warmup N = %d", got.N)
	}
}

// TestQuickQuantileMonotone: quantiles are monotone in q and bounded by
// min/max for any input.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(sorted, q)
			if v < prev || v < sorted[0] || v > sorted[n-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCDFInverse: At and InverseAt are approximately inverse.
func TestQuickCDFInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		c := NewCDF(vals)
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			x := c.InverseAt(p)
			got := c.At(x)
			// Allow discretization slack of 2/n.
			if math.Abs(got-p) > 2.0/float64(n)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
