// Package metrics is LDplayer's measurement toolkit: exact quantiles and
// CDFs for the paper's box-and-whisker figures, per-second rate counters
// (Figure 8), a latency recorder that matches queries to responses by the
// unique-name tag (§4.2), and generic time series for resource sampling
// (Figures 13 and 14).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Summary is the five-number summary plus mean/std the paper's figures
// report (medians, quartiles, 5th and 95th percentiles).
type Summary struct {
	N                      int
	Min, Max               float64
	P5, P25, P50, P75, P95 float64
	Mean, Std              float64
}

// Summarize computes a Summary over values. It copies and sorts.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Welford's online algorithm: the textbook E[X²]−E[X]² form
	// catastrophically cancels when the mean dwarfs the spread (e.g.
	// nanosecond timestamps around 1e12). Welford's running-delta update
	// avoids that, and shifting the origin to the minimum first keeps the
	// running mean at the spread's magnitude, where its ulp is harmless
	// (v−off is correctly rounded, so the shift loses nothing).
	off := sorted[0]
	var mean, m2 float64
	for i, v := range sorted {
		delta := (v - off) - mean
		mean += delta / float64(i+1)
		m2 += delta * ((v - off) - mean)
	}
	mean += off
	variance := m2 / float64(len(sorted))
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:    len(sorted),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P5:   Quantile(sorted, 0.05),
		P25:  Quantile(sorted, 0.25),
		P50:  Quantile(sorted, 0.50),
		P75:  Quantile(sorted, 0.75),
		P95:  Quantile(sorted, 0.95),
		Mean: mean,
		Std:  math.Sqrt(variance),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f p5=%.3f p25=%.3f p50=%.3f p75=%.3f p95=%.3f max=%.3f mean=%.3f std=%.3f",
		s.N, s.Min, s.P5, s.P25, s.P50, s.P75, s.P95, s.Max, s.Mean, s.Std)
}

// Quantile returns the q-quantile (0..1) of sorted values with linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF over values (copied and sorted).
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is P(X <= x), not P(X < x).
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// InverseAt returns the p-quantile (the x with At(x) ≈ p).
func (c *CDF) InverseAt(p float64) float64 {
	return Quantile(c.sorted, p)
}

// Points samples n evenly spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 0.5
		}
		x := Quantile(c.sorted, q)
		out = append(out, [2]float64{x, q})
	}
	return out
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// RateCounter bins events into fixed windows and reports per-window
// rates — the Figure 8 per-second query-rate comparison.
type RateCounter struct {
	mu     sync.Mutex
	window time.Duration
	base   time.Time
	counts map[int64]int64
}

// NewRateCounter creates a counter with the given window (e.g. 1s).
func NewRateCounter(window time.Duration) *RateCounter {
	return &RateCounter{window: window, counts: make(map[int64]int64)}
}

// Add records one event at t.
func (r *RateCounter) Add(t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.base.IsZero() {
		r.base = t
	}
	bin := int64(t.Sub(r.base) / r.window)
	r.counts[bin]++
}

// Rates returns events-per-window for every window from the first to the
// last observed, zero-filled.
func (r *RateCounter) Rates() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) == 0 {
		return nil
	}
	var maxBin int64
	for b := range r.counts {
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]float64, maxBin+1)
	for b, c := range r.counts {
		if b >= 0 {
			out[b] = float64(c)
		}
	}
	return out
}

// RelativeDifferences compares two rate series pointwise, returning
// (replay-original)/original for each window where original is non-zero.
func RelativeDifferences(original, replay []float64) []float64 {
	n := len(original)
	if len(replay) < n {
		n = len(replay)
	}
	var out []float64
	for i := 0; i < n; i++ {
		if original[i] != 0 {
			out = append(out, (replay[i]-original[i])/original[i])
		}
	}
	return out
}

// LatencyRecorder matches sends to receives by an opaque key (the unique
// query-name tag) and accumulates latencies.
type LatencyRecorder struct {
	mu      sync.Mutex
	sends   map[string]time.Time
	samples []float64 // seconds
	// Unmatched counts receives with no recorded send.
	Unmatched int64
}

// NewLatencyRecorder creates an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{sends: make(map[string]time.Time)}
}

// Send records the transmit time for key.
func (l *LatencyRecorder) Send(key string, t time.Time) {
	l.mu.Lock()
	l.sends[key] = t
	l.mu.Unlock()
}

// Recv records the response time for key and accumulates the latency.
func (l *LatencyRecorder) Recv(key string, t time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sent, ok := l.sends[key]
	if !ok {
		l.Unmatched++
		return
	}
	delete(l.sends, key)
	l.samples = append(l.samples, t.Sub(sent).Seconds())
}

// Latencies returns the collected samples in seconds.
func (l *LatencyRecorder) Latencies() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]float64(nil), l.samples...)
}

// Outstanding returns the number of sends with no matched response.
func (l *LatencyRecorder) Outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sends)
}

// TimeSeries accumulates (time, value) samples — memory curves,
// connection counts, bandwidth over time.
type TimeSeries struct {
	mu     sync.Mutex
	Name   string
	points []TimePoint
}

// TimePoint is one sample.
type TimePoint struct {
	T time.Time
	V float64
}

// NewTimeSeries creates a named series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{Name: name}
}

// Add appends a sample.
func (ts *TimeSeries) Add(t time.Time, v float64) {
	ts.mu.Lock()
	ts.points = append(ts.points, TimePoint{T: t, V: v})
	ts.mu.Unlock()
}

// Points returns a copy of the samples.
func (ts *TimeSeries) Points() []TimePoint {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]TimePoint(nil), ts.points...)
}

// Values returns just the sample values.
func (ts *TimeSeries) Values() []float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]float64, len(ts.points))
	for i, p := range ts.points {
		out[i] = p.V
	}
	return out
}

// SteadyState summarizes the series after skipping the warmup prefix —
// the paper ignores the first minutes before resource usage stabilizes.
func (ts *TimeSeries) SteadyState(warmup time.Duration) Summary {
	pts := ts.Points()
	if len(pts) == 0 {
		return Summary{}
	}
	start := pts[0].T.Add(warmup)
	var vals []float64
	for _, p := range pts {
		if !p.T.Before(start) {
			vals = append(vals, p.V)
		}
	}
	return Summarize(vals)
}
