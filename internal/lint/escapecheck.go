package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// EscapeCheckName names the build-mode escape-analysis pass for
// -only/-disable, -list, and //ldlint:ignore.
const EscapeCheckName = "escapecheck"

// EscapeCheckDoc is the one-line description shown by ldlint -list.
const EscapeCheckDoc = "diff the compiler's escape verdicts (go build -gcflags='-m -m') against the //ldlint:noalloc set"

// runEscapeCheck is the escapecheck build-mode pass: it compiles the
// module with `go build -gcflags='-m -m' ./...` and cross-checks the
// compiler's escape-analysis verdicts against the //ldlint:noalloc
// annotation set. The AST analyzers reason about constructs that *can*
// allocate; the compiler reports what *does* — including regressions
// the AST can never see, like an inlining decision changing under a new
// Go release and boxing a value that used to stay on the stack. Every
// "escapes to heap" or "moved to heap" verdict positioned inside an
// annotated function body becomes a diagnostic.
//
// The verdicts are a function of the Go toolchain version: a compiler
// upgrade can add or remove heap moves with no source change, which is
// exactly the regression class this pass exists to catch — but it means
// a fresh toolchain may require revisiting the suppression set before
// the tree is clean again.
//
// Suppression: a line-level //ldlint:ignore escapecheck works as usual,
// and //ldlint:ignore noalloc on the same line is honored too — the two
// analyzers enforce one contract from two sides, and the in-tree
// deliberate-allocation sites (amortized slab refills) should not need
// to state the same reason twice.
//
// The go command replays cached compile diagnostics, so warm runs cost
// one cache lookup per package rather than a rebuild.
func runEscapeCheck(moduleDir string, pkgs []*Package, out *[]Diagnostic) error {
	spans := noallocSpans(pkgs)
	if len(spans) == 0 {
		return nil
	}
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./...")
	cmd.Dir = moduleDir
	raw, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("escapecheck: go build -gcflags='-m -m' failed: %v\n%s", err, raw)
	}
	// -m -m states each heap move more than once — a "v escapes to
	// heap:" header introducing the dataflow explanation plus a "moved
	// to heap: v" verdict at the same position. One diagnostic per
	// position is enough to fail the gate, so deduplicate on position.
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue // package banners and -m -m flow explanations
		}
		file, lineNo, col, msg, ok := parseCompilerLine(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		dedup := fmt.Sprintf("%s:%d:%d", file, lineNo, col)
		if seen[dedup] {
			continue
		}
		seen[dedup] = true
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(moduleDir, file)
		}
		span := spanAt(spans, abs, lineNo)
		if span == nil {
			continue
		}
		*out = append(*out, Diagnostic{
			Analyzer: EscapeCheckName,
			Pos:      token.Position{Filename: abs, Line: lineNo, Column: col},
			Message: fmt.Sprintf("compiler escape analysis: %s in //ldlint:noalloc function %s",
				msg, span.name),
		})
	}
	return nil
}

// funcSpan is the source range of one annotated function body.
type funcSpan struct {
	name       string
	start, end int // lines, inclusive
}

// noallocSpans indexes every //ldlint:noalloc function's body by file.
func noallocSpans(pkgs []*Package) map[string][]funcSpan {
	spans := make(map[string][]funcSpan)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasDirective(fn.Doc, directiveNoAlloc) {
					continue
				}
				start := pkg.Fset.Position(fn.Pos())
				end := pkg.Fset.Position(fn.End())
				spans[start.Filename] = append(spans[start.Filename], funcSpan{
					name:  fn.Name.Name,
					start: start.Line,
					end:   end.Line,
				})
			}
		}
	}
	return spans
}

func spanAt(spans map[string][]funcSpan, file string, line int) *funcSpan {
	for i := range spans[file] {
		s := &spans[file][i]
		if line >= s.start && line <= s.end {
			return s
		}
	}
	return nil
}

// parseCompilerLine splits one "path/file.go:12:34: message" compiler
// diagnostic.
func parseCompilerLine(line string) (file string, lineNo, col int, msg string, ok bool) {
	// Split from the left: path, line, column, then the message (which
	// may itself contain colons).
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	lineNo, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return file, lineNo, col, strings.TrimSpace(parts[2]), true
}
