package lint

import (
	"go/ast"
	"go/token"
)

// DetermReach propagates the determinism contract across the call
// graph: everything transitively reachable from the seeded-fault-model
// event scope (package ldplayer/internal/netsim and its subpackages)
// or from a //ldlint:deterministic-annotated function must obey the
// same vclock rules the intra-function determinism analyzer enforces
// inside the scope — no wall-clock reads or timers, no global
// math/rand, no map iteration. A netsim event handler that calls a
// helper in another package which calls time.Now two frames down
// breaks seed-stable replay exactly as thoroughly as a direct call,
// and before this pass nothing fired.
//
// Safe sinks: the ldplayer/internal/vclock package is the sanctioned
// clock boundary — its Real() implementation necessarily reads the
// wall clock, and code that reaches time only through an injected
// vclock.Clock is precisely the contract-conformant shape — so
// traversal stops at its package boundary. Interface method calls
// (clk.Now(), clk.Sleep()) are dynamic and never traversed, which
// makes the injected-clock pattern invisible to this analyzer by
// construction: only static paths to the time package itself fire.
//
// Functions already inside the scope are each their own root and are
// checked by the per-package determinism analyzer; this pass reports
// only out-of-scope functions, with the call path from the scope edge:
//
//	time.Now reads the wall clock ... (reached from deterministic
//	scope via netsim.Link.deliver -> trace.stampEntry)
var DetermReach = &ModuleAnalyzer{
	Name: "determreach",
	Doc:  "enforce the vclock determinism contract over everything reachable from netsim event scope and //ldlint:deterministic roots",
	Run:  runDetermReach,
}

func runDetermReach(p *ModulePass) {
	g := p.Module.Graph
	inScope := func(n *FuncNode) bool {
		return inDeterministicScope(n.Pkg.Path) ||
			hasDirective(n.Decl.Doc, directiveDeterministic) ||
			fileHasDirective(enclosingFile(n), directiveDeterministic)
	}
	// Reachability roots are the netsim package proper plus explicit
	// //ldlint:deterministic annotations — NOT netsim's subpackages.
	// netsim/chaostest exists to drive *real-socket* engines under the
	// seeded fault model, so everything in the engine is reachable from
	// it and wall-clock use beyond the bridge is by design; its own body
	// still carries the intra-package determinism contract (inScope
	// covers subpackages, so its functions are skipped as roots-of-their-
	// own below, and the per-package analyzer checks them directly).
	rootScope := func(n *FuncNode) bool {
		return n.Pkg.Path == deterministicScopePrefix ||
			hasDirective(n.Decl.Doc, directiveDeterministic) ||
			fileHasDirective(enclosingFile(n), directiveDeterministic)
	}
	roots := annotatedRoots(g, rootScope)
	findings := make(map[*FuncNode][]Diagnostic)
	reported := make(map[token.Position]bool)
	for _, root := range roots {
		g.Reach(root,
			func(e *CallEdge) bool {
				// Goroutines spawned from deterministic scope run inside the
				// same simulation, so KindGo edges are followed too. The
				// vclock package is the sanctioned clock boundary: stop.
				// A //ldlint:ignore determreach on the call site cuts the
				// edge, the reasoned escape hatch for deliberate bridges
				// out of the simulated world.
				return pathBase(e.Callee.Pkg.Path) != "vclock" && !p.EdgeSuppressed(e.Pos)
			},
			func(node *FuncNode, path []*CallEdge) bool {
				if inScope(node) {
					return false // its own root; covered by the intra analyzer
				}
				ds, ok := findings[node]
				if !ok {
					var out []Diagnostic
					checkDeterminismNode(p.subPass(node.Pkg, &out), node.Decl.Body)
					findings[node] = out
					ds = out
				}
				for _, d := range ds {
					if reported[d.Pos] {
						continue
					}
					reported[d.Pos] = true
					d.Message += " (reached from deterministic scope via " + PathString(root, path) + ")"
					*p.out = append(*p.out, d)
				}
				return true
			})
	}
}

// enclosingFile returns the *ast.File containing the node's
// declaration, or nil.
func enclosingFile(n *FuncNode) *ast.File {
	for _, f := range n.Pkg.Files {
		if f.Pos() <= n.Decl.Pos() && n.Decl.Pos() <= f.End() {
			return f
		}
	}
	return nil
}
