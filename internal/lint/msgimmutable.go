package lint

import (
	"go/ast"
	"go/types"
)

// MsgImmutable enforces the trace.Entry.Message immutability contract:
// readers carve each message out of fresh memory, and every downstream
// stage (the replay retransmission tracker above all) retains
// references to that buffer instead of copying it. A single in-place
// write corrupts an in-flight query for every aliasing holder.
//
// The analyzer flags, in every package:
//
//   - element writes through the field: e.Message[i] = b, including
//     op-assign and ++/--;
//   - writes through an alias: x := e.Message (or a reslice of it)
//     followed by x[i] = b;
//   - copy(dst, ...) where dst aliases a Message buffer;
//   - append(msg, ...) on a Message-rooted slice: when spare capacity
//     exists append writes into the shared backing array.
//
// Replacing the whole field (e.Message = freshBuf) is legal — that is
// how producers and mutators publish a new immutable buffer. Alias
// tracking is intra-function; reasoned //ldlint:ignore suppressions
// cover code that provably owns a private buffer.
var MsgImmutable = &Analyzer{
	Name: "msgimmutable",
	Doc:  "flag writes into trace.Entry.Message buffers (immutable once an entry is produced)",
	Run:  runMsgImmutable,
}

// traceEntryPath/Field identify the protected field.
const (
	traceEntryPath  = "ldplayer/internal/trace"
	traceEntryName  = "Entry"
	traceEntryField = "Message"
)

func runMsgImmutable(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkMsgFunc(pass, fn.Body)
			}
		}
	}
}

// checkMsgFunc runs the alias-and-write scan over one function body.
func checkMsgFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	tainted := make(map[types.Object]bool)

	// isMsgRooted reports whether e reads (possibly a reslice of) a
	// trace.Entry.Message buffer or a tainted alias of one.
	var isMsgRooted func(e ast.Expr) bool
	isMsgRooted = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return tainted[info.Uses[e]]
		case *ast.SelectorExpr:
			return isEntryMessageSel(info, e)
		case *ast.SliceExpr:
			return isMsgRooted(e.X)
		case *ast.IndexExpr:
			// msg[i] is a byte, not an alias; only slicing keeps aliasing.
			return false
		}
		return false
	}

	// Two passes: aliases may be established after a textually earlier
	// closure that writes through them.
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for j, rhs := range a.Rhs {
				if !isMsgRooted(rhs) {
					continue
				}
				if id, ok := ast.Unparen(a.Lhs[j]).(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						tainted[obj] = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportMsgElemWrite(pass, lhs, isMsgRooted)
			}
		case *ast.IncDecStmt:
			reportMsgElemWrite(pass, n.X, isMsgRooted)
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := info.Uses[id].(*types.Builtin)
			if !ok || len(n.Args) == 0 {
				return true
			}
			switch b.Name() {
			case "copy":
				if len(n.Args) == 2 && isMsgRooted(n.Args[0]) {
					pass.Reportf(n.Pos(), "copy into a trace.Entry.Message buffer; the buffer is immutable once the entry is produced")
				}
			case "append":
				if isMsgRooted(n.Args[0]) {
					pass.Reportf(n.Pos(), "append to a trace.Entry.Message buffer may write into the shared backing array; build a fresh buffer instead")
				}
			}
		}
		return true
	})
}

// reportMsgElemWrite flags lhs when it is an element write into a
// Message-rooted buffer.
func reportMsgElemWrite(pass *Pass, lhs ast.Expr, isMsgRooted func(ast.Expr) bool) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if isMsgRooted(ix.X) {
		pass.Reportf(lhs.Pos(), "write into a trace.Entry.Message buffer; the buffer is immutable once the entry is produced (clone it first)")
	}
}

// isEntryMessageSel reports whether sel is <trace.Entry value>.Message.
func isEntryMessageSel(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != traceEntryField {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == traceEntryPath && obj.Name() == traceEntryName
}

// objOf resolves an identifier to its object in either Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
