package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCopy flags by-value copies of types that transitively contain
// sync or sync/atomic state. Copying a mutex forks its lock word;
// copying an atomic forks the value every other goroutine is
// publishing through — both turn a synchronization point into two
// unsynchronized ones. go vet's copylocks covers the common cases;
// this analyzer re-checks them plus the shapes vet stays silent on
// (interface boxing of lock-containing values, value receivers and
// results on lock-containing types).
//
// Flagged: value parameters, value receivers, value results, range
// copies, assignments copying an existing lock-containing value, and
// interface boxing of lock-containing values. Constructing a fresh
// value (composite literal, make, new) is legal.
var AtomicCopy = &Analyzer{
	Name: "atomiccopy",
	Doc:  "flag by-value copies of structs containing sync or sync/atomic fields",
	Run:  runAtomicCopy,
}

func runAtomicCopy(pass *Pass) {
	c := &lockCache{memo: make(map[types.Type]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, c, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, c, nil, n.Type)
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := exprType(pass.Info, n.Value); t != nil && c.containsLock(t) {
						pass.Reportf(n.Value.Pos(), "range copies %s by value; it contains %s — iterate by index or pointer", t, c.why(t))
					}
				}
			case *ast.AssignStmt:
				checkAssignCopies(pass, c, n)
			case *ast.CallExpr:
				checkCallCopies(pass, c, n)
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isCopyingExpr(res) {
						if t := exprType(pass.Info, res); t != nil && c.containsLock(t) {
							pass.Reportf(res.Pos(), "return copies %s by value; it contains %s", t, c.why(t))
						}
					}
				}
			}
			return true
		})
	}
}

// checkFuncSig flags value receivers, params, and results whose types
// contain locks.
func checkFuncSig(pass *Pass, c *lockCache, recv *ast.FieldList, ft *ast.FuncType) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := exprType(pass.Info, field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if c.containsLock(t) {
				pass.Reportf(field.Type.Pos(), "%s passes %s by value; it contains %s — use a pointer", what, t, c.why(t))
			}
		}
	}
	flag(recv, "receiver")
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
}

// checkAssignCopies flags assignments that copy an existing
// lock-containing value (reading through a variable, field, index, or
// dereference). Fresh construction on the RHS is fine.
func checkAssignCopies(pass *Pass, c *lockCache, a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, rhs := range a.Rhs {
		if !isCopyingExpr(rhs) {
			continue
		}
		t := exprType(pass.Info, rhs)
		if t == nil || !c.containsLock(t) {
			continue
		}
		if id, ok := ast.Unparen(a.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		pass.Reportf(a.Pos(), "assignment copies %s by value; it contains %s", t, c.why(t))
	}
}

// checkCallCopies flags lock-containing values passed by value as call
// arguments, including the implicit copy of interface boxing (which
// vet's copylocks does not model).
func checkCallCopies(pass *Pass, c *lockCache, call *ast.CallExpr) {
	info := pass.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x) copies x when T is an interface or value type.
		if len(call.Args) == 1 {
			if t := exprType(info, call.Args[0]); t != nil && c.containsLock(t) {
				pass.Reportf(call.Args[0].Pos(), "conversion copies %s by value; it contains %s", t, c.why(t))
			}
		}
		return
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && !call.Ellipsis.IsValid():
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isPtr := pt.Underlying().(*types.Pointer); isPtr {
			continue
		}
		t := exprType(info, arg)
		if t == nil || !c.containsLock(t) {
			continue
		}
		if types.IsInterface(pt.Underlying()) {
			pass.Reportf(arg.Pos(), "argument boxes %s into %s, copying its %s (not reported by vet copylocks)", t, pt, c.why(t))
		} else {
			pass.Reportf(arg.Pos(), "argument copies %s by value; it contains %s", t, c.why(t))
		}
	}
}

// isCopyingExpr reports whether evaluating e copies an existing value
// rather than constructing a fresh one.
func isCopyingExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func exprType(info *types.Info, e ast.Expr) types.Type {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := objOf(info, id); obj != nil {
			if _, isType := obj.(*types.TypeName); !isType {
				return obj.Type()
			}
			return obj.Type()
		}
	}
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// lockCache memoizes containsLock over types and remembers which
// component made a type lock-containing, for diagnostics.
type lockCache struct {
	memo   map[types.Type]bool
	reason map[types.Type]string
}

// lockTypes are the sync and sync/atomic types whose copy is a bug.
var lockTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Pool": true, "Map": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Value": true, "Pointer": true,
	},
}

func (c *lockCache) why(t types.Type) string {
	if c.reason == nil {
		c.reason = make(map[types.Type]string)
	}
	if r, ok := c.reason[t]; ok && r != "" {
		return r
	}
	return "synchronization state"
}

func (c *lockCache) containsLock(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // cycle guard: recursive types via pointers only
	v, why := c.scan(t)
	c.memo[t] = v
	if v {
		if c.reason == nil {
			c.reason = make(map[types.Type]string)
		}
		c.reason[t] = why
	}
	return v
}

func (c *lockCache) scan(t types.Type) (bool, string) {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if names, ok := lockTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return true, obj.Pkg().Path() + "." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				return true, c.why(u.Field(i).Type())
			}
		}
	case *types.Array:
		if c.containsLock(u.Elem()) {
			return true, c.why(u.Elem())
		}
	}
	return false, ""
}
