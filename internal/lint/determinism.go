package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the seeded-fault-model contract from the chaos
// harness: a link's per-packet fate sequence must be a pure function
// of its seed and the order datagrams arrive, so a chaos scenario
// replays bit-identically (TestImpairmentDeterministic and the five
// seeded chaostest scenarios depend on it). In scoped packages it
// forbids:
//
//   - time.Now and time.Since: wall-clock reads leak real time into
//     simulated behaviour;
//   - wall-clock timer scheduling (time.AfterFunc, time.Sleep,
//     time.NewTimer, time.Tick): since the virtual-clock netsim, all
//     delivery and retry timing must flow through an injected
//     vclock.Clock, so a SimClock can run it in simulated time —
//     clock.AfterFunc / clock.Sleep are interface method calls and
//     stay legal;
//   - the global math/rand PRNG (rand.Intn, rand.Float64, ...): it is
//     shared, unseeded state; constructors (rand.New, rand.NewSource,
//     rand.NewZipf) for per-impairer seeded PRNGs are the sanctioned
//     pattern;
//   - ranging over maps: iteration order is randomized per run, so any
//     map-range whose body feeds the fault sequence breaks seed
//     stability. Order-independent aggregations (stat sums, close-all
//     loops) carry a reasoned //ldlint:ignore.
//
// Scope: packages under ldplayer/internal/netsim, any package with a
// //ldlint:deterministic directive comment, and individual functions
// carrying the directive in their doc comment (the function-level form
// also roots the interprocedural determreach analyzer).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads and timers, global math/rand, and map iteration in seeded-fault-model packages",
	Run:  runDeterminism,
}

// deterministicScopePrefix hardcodes the fault-model packages so the
// contract cannot be silently dropped by deleting a directive comment.
const deterministicScopePrefix = "ldplayer/internal/netsim"

// randConstructors are the math/rand package-level functions that build
// seeded per-instance PRNGs rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2 spellings
}

func runDeterminism(pass *Pass) {
	inScope := pass.Path == deterministicScopePrefix ||
		strings.HasPrefix(pass.Path, deterministicScopePrefix+"/")
	if !inScope {
		for _, f := range pass.Files {
			if fileHasDirective(f, directiveDeterministic) {
				inScope = true
				break
			}
		}
	}
	for _, f := range pass.Files {
		if inScope {
			checkDeterminismNode(pass, f)
			continue
		}
		// Out-of-scope package: only functions that opt in individually.
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && hasDirective(fn.Doc, directiveDeterministic) {
				checkDeterminismNode(pass, fn.Body)
			}
		}
	}
}

// checkDeterminismNode applies the determinism construct rules to every
// node under root. Shared by the per-package analyzer (whole files or
// opted-in function bodies) and the interprocedural determreach
// analyzer (bodies of functions reached from deterministic scope).
func checkDeterminismNode(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := packageLevelCallee(pass.Info, sel)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
				pass.Reportf(n.Pos(), "time.%s reads the wall clock in deterministic fault-model code", name)
			case pkgPath == "time" && (name == "AfterFunc" || name == "Sleep" || name == "NewTimer" || name == "Tick"):
				pass.Reportf(n.Pos(), "time.%s schedules on the wall clock; thread an injected vclock.Clock and call its %s so simulated time can drive it", name, name)
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(n.Pos(), "rand.%s uses the global math/rand PRNG; draw from a seeded per-impairer *rand.Rand instead", name)
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration order is nondeterministic; it must not feed the fault sequence")
				}
			}
		}
		return true
	})
}

// inDeterministicScope reports whether the package at path is inside
// the hardcoded netsim fault-model scope.
func inDeterministicScope(path string) bool {
	return path == deterministicScopePrefix ||
		strings.HasPrefix(path, deterministicScopePrefix+"/")
}
