package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// NoAllocProp propagates the //ldlint:noalloc contract across the call
// graph: every module-local function transitively reachable from an
// annotated root must itself be alloc-clean — pass the same construct
// checks the intra-function noalloc analyzer applies to annotated
// bodies — or be explicitly annotated (making it a root with its own
// contract) or suppressed at the offending construct. Without this
// pass a noalloc function could delegate its allocation to an
// unannotated helper and the suite would never notice; the dynamic
// AllocsPerRun guards only catch that on the exact path a test drives.
//
// Each diagnostic carries the shortest call path from the root to the
// offending function, so the report explains *why* a function two
// frames from any annotation is being held to the contract:
//
//	make allocates in noalloc function (on //ldlint:noalloc path
//	qlog.Producer.Reserve -> qlog.helperA -> qlog.helperB)
//
// Goroutine-spawn edges (go statements, vclock Clock.Go) are not
// followed: an allocation on a freshly spawned goroutine is not on the
// caller's allocation count. Unresolved dynamic calls (interface
// methods, function-typed variables) are not followed either — the
// analysis is conservative only over what the static graph sees.
//
// A //ldlint:ignore noallocprop on a call site cuts traversal at that
// edge: the sanctioned way to mark a deliberate cold-path boundary
// (respondSlow handing off to the full decoder on a cache miss)
// without suppressing every construct in the callee's subtree.
var NoAllocProp = &ModuleAnalyzer{
	Name: "noallocprop",
	Doc:  "require every function reachable from a //ldlint:noalloc root to be alloc-clean, reporting the call path",
	Run:  runNoAllocProp,
}

func runNoAllocProp(p *ModulePass) {
	g := p.Module.Graph
	roots := annotatedRoots(g, func(n *FuncNode) bool {
		return hasDirective(n.Decl.Doc, directiveNoAlloc)
	})
	// One construct scan per function, shared across every root that
	// reaches it; one report per construct, attributed to the first
	// (shortest, earliest-root) path that reaches it.
	findings := make(map[*FuncNode][]Diagnostic)
	reported := make(map[token.Position]bool)
	for _, root := range roots {
		g.Reach(root,
			func(e *CallEdge) bool { return e.Kind != KindGo && !p.EdgeSuppressed(e.Pos) },
			func(node *FuncNode, path []*CallEdge) bool {
				if hasDirective(node.Decl.Doc, directiveNoAlloc) {
					return false // its own root; its own subtree, its own contract
				}
				ds, ok := findings[node]
				if !ok {
					var out []Diagnostic
					checkNoAllocFunc(p.subPass(node.Pkg, &out), node.Decl)
					findings[node] = out
					ds = out
				}
				for _, d := range ds {
					if reported[d.Pos] {
						continue
					}
					reported[d.Pos] = true
					d.Message += " (on //ldlint:noalloc path " + PathString(root, path) + ")"
					*p.out = append(*p.out, d)
				}
				return true
			})
	}
}

// annotatedRoots collects the graph nodes matching the predicate,
// sorted by declaration position so traversal order — and with it the
// "first path wins" attribution — is deterministic run to run.
func annotatedRoots(g *CallGraph, match func(*FuncNode) bool) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if match(n) {
			roots = append(roots, n)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		pi := roots[i].Pkg.Fset.Position(roots[i].Decl.Pos())
		pj := roots[j].Pkg.Fset.Position(roots[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return roots
}

// funcDeclDirective reports whether decl is a function declaration
// carrying the directive in its doc comment.
func funcDeclDirective(decl ast.Decl, directive string) bool {
	fn, ok := decl.(*ast.FuncDecl)
	return ok && hasDirective(fn.Doc, directive)
}
