package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallKind classifies one call-graph edge.
type CallKind uint8

const (
	// KindCall is a direct static call: a plain function call, or a
	// method call whose receiver has a concrete (non-interface) type.
	KindCall CallKind = iota
	// KindGo is a call that starts a new goroutine: the callee of a go
	// statement, or a function value handed to vclock's Clock.Go (the
	// sim-registered spawn primitive).
	KindGo
	// KindRef is a function value passed as an argument to a call site:
	// the callee may invoke it, so propagation analyses treat the edge
	// as a (possible) call.
	KindRef
)

func (k CallKind) String() string {
	switch k {
	case KindGo:
		return "go"
	case KindRef:
		return "ref"
	}
	return "call"
}

// CallEdge is one resolved call from Caller to Callee at Pos.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	Kind   CallKind
}

// FuncNode is one module-local function declaration in the call graph.
// Function literals are not separate nodes: calls lexically inside a
// literal are attributed to the enclosing declaration, a conservative
// over-approximation (the literal might never run) that errs toward
// reporting on contract paths.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*CallEdge
}

// DisplayName renders the node for call-path diagnostics:
// "pkg.Func" for functions, "pkg.Type.Method" for methods (pointer
// receivers print without the star — the path identifies code, not
// value shapes).
func (n *FuncNode) DisplayName() string {
	obj := n.Obj
	pkg := obj.Pkg().Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + obj.Name()
		}
	}
	return pkg + "." + obj.Name()
}

// CallGraph is the module-wide static call graph: every function and
// method declared in the module, with edges for direct calls, resolved
// method calls, goroutine spawns, and function values passed to call
// sites. Dynamic dispatch through interface methods and calls through
// function-typed variables are not resolved (no points-to analysis);
// the one deliberate exception documented per analyzer is that the
// vclock.Clock boundary is treated as a safe sink, not a blind spot.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
}

// Node returns the graph node for obj (resolving generic instantiations
// to their declaration), or nil for functions outside the module.
func (g *CallGraph) Node(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return g.Nodes[obj.Origin()]
}

// buildCallGraph indexes every FuncDecl in the module and resolves the
// static call edges out of each body.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					g.Nodes[obj] = &FuncNode{Obj: obj, Decl: fn, Pkg: pkg}
				}
			}
		}
	}
	for _, node := range g.Nodes {
		collectEdges(m, g, node)
	}
	return g
}

// collectEdges walks one declaration body and records its outgoing
// edges.
func collectEdges(m *Module, g *CallGraph, node *FuncNode) {
	info := node.Pkg.Info

	// goCalls marks the CallExpr of each go statement so the edge it
	// resolves to is tagged KindGo.
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goCalls[gs.Call] = true
		}
		return true
	})

	addEdge := func(callee *types.Func, pos token.Pos, kind CallKind) {
		target := g.Node(callee)
		if target == nil {
			return // stdlib or unresolved: construct checks cover what they can
		}
		node.Out = append(node.Out, &CallEdge{Caller: node, Callee: target, Pos: pos, Kind: kind})
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := KindCall
		if goCalls[call] {
			kind = KindGo
		}
		if callee := staticCallee(info, call); callee != nil {
			addEdge(callee, call.Pos(), kind)
		}
		// Function values passed as arguments: the callee may invoke
		// them, so record a KindRef edge from this caller — or KindGo
		// when the call site is a goroutine-spawning primitive
		// (vclock's Clock.Go).
		argKind := KindRef
		if isGoroutineSpawner(info, call) {
			argKind = KindGo
		}
		for _, arg := range call.Args {
			if fv := funcValue(info, arg); fv != nil {
				addEdge(fv, arg.Pos(), argKind)
			}
		}
		return true
	})
}

// staticCallee resolves call to the *types.Func it statically invokes:
// package-level functions (local or dot-imported), qualified pkg.Func
// selectors, and method calls on concrete receivers. Interface method
// calls and calls through function-typed variables return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // field of function type: dynamic
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch: not resolved
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// No selection entry: a qualified identifier (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcValue resolves expr to the *types.Func it names when used as a
// value (not called): a function identifier or a method value on a
// concrete receiver.
func funcValue(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isGoroutineSpawner reports whether call invokes a primitive that runs
// its function argument on a new goroutine: vclock's Clock.Go (both the
// interface method and SimClock's concrete method). The builtin go
// statement is handled separately by the caller.
func isGoroutineSpawner(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Go" {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return pathBase(fn.Pkg().Path()) == "vclock"
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// Reach walks the graph from root over edges whose kind passes the
// follow filter, invoking visit once per reached node (root excluded)
// with the edge path from root to it. visit returning false stops
// descent below that node (its own subtree is someone else's contract).
func (g *CallGraph) Reach(root *FuncNode, follow func(*CallEdge) bool, visit func(node *FuncNode, path []*CallEdge) bool) {
	seen := map[*FuncNode]bool{root: true}
	// Breadth-first so the recorded path to each node is the shortest
	// one — diagnostics should show the most direct route from the
	// contract root to the violation.
	type item struct {
		node *FuncNode
		path []*CallEdge
	}
	queue := []item{{node: root}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range it.node.Out {
			if !follow(e) || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			path := append(append([]*CallEdge(nil), it.path...), e)
			if visit(e.Callee, path) {
				queue = append(queue, item{node: e.Callee, path: path})
			}
		}
	}
}

// PathString renders a call path for a diagnostic message:
// "root -> a -> b".
func PathString(root *FuncNode, path []*CallEdge) string {
	s := root.DisplayName()
	for _, e := range path {
		s += " -> " + e.Callee.DisplayName()
	}
	return s
}
