package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the //ldlint:noalloc annotation: a function so
// marked is on a measured zero-allocation hot path (guarded elsewhere
// by AllocsPerRun regression tests) and must not contain
// allocation-prone constructs. The checks are lexical and conservative
// — escape analysis is deliberately not modelled, because the contract
// these paths document is "no construct that *can* allocate", with
// explicit reasoned suppressions where an allocation is part of the
// contract (e.g. the single caller-owned response copy).
//
// Flagged constructs:
//
//   - calls into fmt (every fmt function allocates for its variadic
//     any boxing alone) and errors.New (hoist to a package-level var);
//   - non-constant string concatenation;
//   - map and slice composite literals, make, and new;
//   - append whose result is not assigned back to the expression it
//     extends (the amortized-growth pattern) and is not directly
//     returned (the append-style encoder pattern);
//   - string(b) conversions from byte/rune slices, except the
//     m[string(b)] map-index form the compiler optimizes to no
//     allocation;
//   - implicit interface conversions of non-pointer-shaped values
//     (call arguments, assignments, returns): boxing copies the value
//     to the heap;
//   - closures that capture a variable mutated in the enclosing
//     function: capture-by-reference forces the variable (and the
//     closure) to the heap.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flag allocation-prone constructs in //ldlint:noalloc annotated functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, directiveNoAlloc) {
				continue
			}
			checkNoAllocFunc(pass, fn)
		}
	}
}

// checkNoAllocFunc applies every noalloc rule to one annotated function.
func checkNoAllocFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Info
	parents := buildParentMap(fn.Body)
	allowedAppends := collectAllowedAppends(info, fn.Body)
	mutated := collectMutatedObjects(info, fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, parents, allowedAppends)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in noalloc function")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in noalloc function (use an array literal for a fixed element set)")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && tv.Type != nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates in noalloc function")
				}
			}
		case *ast.FuncLit:
			checkNoAllocClosure(pass, n, fn, mutated)
		case *ast.ReturnStmt:
			// Returns inside nested closures resolve against the closure's
			// signature, which the closure rule already covers.
			if enclosingFuncLit(parents, n) == nil {
				checkBoxingInStmt(pass, n, fn)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				if t := info.Types[n.Lhs[0]].Type; t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation allocates in noalloc function")
				}
			}
			checkBoxingInStmt(pass, n, fn)
		}
		return true
	})
}

// checkNoAllocCall handles every CallExpr rule: builtins, forbidden
// packages, string conversions, and interface-boxing arguments.
func checkNoAllocCall(pass *Pass, call *ast.CallExpr, parents map[ast.Node]ast.Node, allowedAppends map[*ast.CallExpr]bool) {
	info := pass.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				if !allowedAppends[call] {
					pass.Reportf(call.Pos(), "append result is not assigned back to %s (amortized-growth pattern) or returned; the fresh backing array allocates", types.ExprString(call.Args[0]))
				}
			case "new":
				pass.Reportf(call.Pos(), "new allocates in noalloc function")
			case "make":
				pass.Reportf(call.Pos(), "make allocates in noalloc function")
			}
			return
		}
	case *ast.SelectorExpr:
		if pkgPath, name, ok := packageLevelCallee(info, fun); ok {
			switch {
			case pkgPath == "fmt":
				pass.Reportf(call.Pos(), "fmt.%s allocates (variadic any boxing and formatting state) in noalloc function", name)
				return
			case pkgPath == "errors" && name == "New":
				pass.Reportf(call.Pos(), "errors.New allocates per call; hoist the error to a package-level var")
				return
			case pkgPath == "runtime" && name == "KeepAlive":
				// Compiler intrinsic: its any parameter never actually boxes.
				return
			}
		}
	}

	// Conversions: string(b) from byte/rune slices, and explicit
	// interface conversions like any(v).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if dst != nil && src != nil && isString(dst) && isByteOrRuneSlice(src) && !isMapIndexKey(parents, call) {
			pass.Reportf(call.Pos(), "string(%s) conversion allocates outside the optimized map-index form", types.ExprString(call.Args[0]))
		}
		reportBoxing(pass, call.Args[0], dst, "conversion")
		return
	}

	checkBoxingArgs(pass, call)
}

// collectAllowedAppends gathers append calls used in one of the two
// non-flagged shapes: `x = append(x, ...)` (same target, any op= form
// excluded — only plain assignment writes back) and `return append(x,
// ...)` (append-style encoders that hand the grown slice to the
// caller). Appends chained through the first argument of an enclosing
// allowed append (`x = append(append(x, a), b)`) inherit the allowance.
func collectAllowedAppends(info *types.Info, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	isAppend := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return nil, false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return call, ok && b.Name() == "append" && len(call.Args) > 0
	}
	// allow marks call and any append chained through its first arg.
	var allow func(call *ast.CallExpr, target string)
	allow = func(call *ast.CallExpr, target string) {
		if target != "" && types.ExprString(ast.Unparen(call.Args[0])) != target {
			if inner, ok := isAppend(call.Args[0]); ok {
				allow(inner, target)
				allowed[call] = true
			}
			return
		}
		allowed[call] = true
		if inner, ok := isAppend(call.Args[0]); ok {
			allow(inner, target)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := isAppend(rhs); ok {
					allow(call, types.ExprString(n.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := isAppend(res); ok {
					allow(call, "")
				}
			}
		}
		return true
	})
	return allowed
}

// collectMutatedObjects returns the variables assigned (with =, op=,
// ++ or --) anywhere in body, beyond their defining statement. A
// closure capturing one of these captures it by reference.
func collectMutatedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	mutated := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				mutated[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // the defining write is not a mutation
			}
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return true
	})
	return mutated
}

// checkNoAllocClosure flags closures that capture a mutated variable
// of the enclosing function: those captures are by reference, forcing
// the variable (and with it the closure) onto the heap.
func checkNoAllocClosure(pass *Pass, lit *ast.FuncLit, fn *ast.FuncDecl, mutated map[types.Object]bool) {
	info := pass.Info
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || reported[obj] || !mutated[obj] {
			return true
		}
		// Captured: declared in the enclosing function, outside the literal.
		if obj.Pos() < fn.Body.Pos() || obj.Pos() > fn.Body.End() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		reported[obj] = true
		pass.Reportf(id.Pos(), "closure captures mutated variable %s by reference, forcing it to the heap", obj.Name())
		return true
	})
}

// checkBoxingArgs flags call arguments implicitly converted to an
// interface parameter when the argument's concrete type is not
// pointer-shaped: that conversion heap-allocates a copy of the value.
func checkBoxingArgs(pass *Pass, call *ast.CallExpr) {
	info := pass.Info
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, pt, "argument")
	}
}

// checkBoxingInStmt flags interface boxing in return statements and
// assignments to interface-typed destinations.
func checkBoxingInStmt(pass *Pass, stmt ast.Stmt, fn *ast.FuncDecl) {
	info := pass.Info
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		sig, ok := info.Defs[fn.Name].Type().(*types.Signature)
		if !ok || sig.Results().Len() != len(s.Results) {
			return
		}
		for i, res := range s.Results {
			reportBoxing(pass, res, sig.Results().At(i).Type(), "return value")
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) || s.Tok == token.DEFINE {
			return // := infers the RHS type: no conversion happens
		}
		for i, rhs := range s.Rhs {
			reportBoxing(pass, rhs, lhsType(info, s.Lhs[i]), "assignment")
		}
	}
}

// lhsType resolves the declared type of an assignment destination.
func lhsType(info *types.Info, lhs ast.Expr) types.Type {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		return nil
	}
	if tv, ok := info.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

// enclosingFuncLit returns the innermost FuncLit containing n, or nil.
func enclosingFuncLit(parents map[ast.Node]ast.Node, n ast.Node) *ast.FuncLit {
	for p := parents[n]; p != nil; p = parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			return lit
		}
	}
	return nil
}

// reportBoxing reports expr if converting it to dst is an
// allocation-carrying interface boxing.
func reportBoxing(pass *Pass, expr ast.Expr, dst types.Type, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || isPointerShaped(src) || isZeroSized(src) {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxes %s into %s, allocating a heap copy", what, src, dst)
}

// --- shared type helpers ---

// packageLevelCallee resolves sel to (package path, func name) when the
// selector is pkg.Func on an imported package (not a method call).
func packageLevelCallee(info *types.Info, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit in an interface word
// without allocating: pointers, maps, chans, funcs, unsafe pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isZeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !isZeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || isZeroSized(u.Elem())
	}
	return false
}

// isMapIndexKey reports whether expr is the index operand of a map
// index expression (the m[string(b)] lookup the compiler keeps
// allocation-free).
func isMapIndexKey(parents map[ast.Node]ast.Node, expr ast.Expr) bool {
	p := parents[expr]
	for {
		if pe, ok := p.(*ast.ParenExpr); ok {
			p = parents[pe]
			continue
		}
		break
	}
	ix, ok := p.(*ast.IndexExpr)
	return ok && ix.Index == expr
}

// buildParentMap records each node's parent within root.
func buildParentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
