// Package seeded contains deliberate contract violations. The driver
// test asserts that ldlint run over this module exits non-zero and
// reports every one of them.
package seeded

import "fmt"

var sink string

//ldlint:noalloc
func hot(n int) {
	sink = fmt.Sprint(n)
}

//ldlint:ignore noalloc
func unreasoned() {}

//ldlint:ignore nosuchanalyzer because reasons
func unknown() {}
